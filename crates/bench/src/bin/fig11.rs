//! Regenerates Figure 11: run-to-run latency distribution, benchmark vs
//! application.

fn main() {
    let r = aitax_core::experiment::fig11(aitax_bench::opts_from_env());
    aitax_bench::emit(
        "Figure 11 — run-to-run variability (MobileNet v1, CPU)",
        &r.table,
    );
    println!(
        "max deviation from median: benchmark {:.1}%, app {:.1}% (paper: app up to ~30%)",
        r.benchmark_deviation * 100.0,
        r.app_deviation * 100.0
    );
}
