//! Regenerates Figure 11: run-to-run latency distribution, benchmark vs
//! application.
//!
//! Runs the `fig11` grid through the aitax-lab sweep engine: each mode
//! is repeated over independent seeds in parallel and the repeats pool
//! into one distribution per mode (percentiles, CV, CDF) — the paper's
//! many-runs methodology, not a single long run.

use aitax_lab::{render, scenarios, SweepReport};

fn main() {
    let opts = aitax_bench::opts_from_env();
    let grid = scenarios::fig11(opts.iterations, opts.seed);
    let results = aitax_lab::run_jobs(grid.expand(), aitax_lab::default_threads());
    let report = SweepReport::aggregate(&grid, &results);
    aitax_bench::emit(
        "Figure 11 — run-to-run variability (MobileNet v1, CPU)",
        &render::distribution_table(&report),
    );
    let dev = |label: &str| {
        report
            .scenario(label)
            .map(|s| s.e2e.max_dev_from_median)
            .unwrap_or(f64::NAN)
    };
    println!(
        "max deviation from median: benchmark {:.1}%, app {:.1}% (paper: app up to ~30%)",
        dev("cli-benchmark") * 100.0,
        dev("android-app") * 100.0
    );
}
