//! The energy shootout: what latency numbers hide.
//!
//! Table 1 — per-backend energy per inference on the SD845 (Pixel 3) for
//! a quantized MobileNet-class model: CPU ×1 vs CPU ×4 vs GPU vs Hexagon
//! DSP vs NNAPI. Latency alone makes multi-threaded CPU look close to
//! the accelerators; pricing the same runs with the per-rail power model
//! shows the DSP winning energy per inference outright (race-to-idle on
//! a power-gated rail), and CPU ×4 beating CPU ×1 on energy despite
//! burning more watts — shorter wall time under the same static floor.
//!
//! Table 2 — the §III-C chipset sweep (SD835 → SD865): the energy tax
//! fraction grows alongside the time tax as inference itself gets
//! cheaper faster than the pipeline around it.
//!
//! Honors `AITAX_ITERS`, `AITAX_SEED` and `AITAX_TSV=1`.

use aitax_bench::{emit, opts_from_env};
use aitax_core::pipeline::{E2eConfig, E2eReport};
use aitax_core::report::{fmt_pct, Table};
use aitax_core::runmode::RunMode;
use aitax_framework::Engine;
use aitax_models::zoo::ModelId;
use aitax_soc::SocId;
use aitax_tensor::DType;

/// One traced run of MobileNet v1 on `soc` through `engine`.
fn run(engine: Engine, dtype: DType, soc: SocId, iters: usize, seed: u64) -> E2eReport {
    E2eConfig::new(ModelId::MobileNetV1, dtype)
        .engine(engine)
        .soc(soc)
        .run_mode(RunMode::CliBenchmark)
        .iterations(iters)
        .seed(seed)
        .tracing(true)
        .run()
}

/// The SD845 backends of the shootout, in presentation order.
fn backends() -> Vec<(&'static str, Engine, DType)> {
    vec![
        ("cpu-1thread", Engine::tflite_cpu(1), DType::I8),
        ("cpu-4threads", Engine::tflite_cpu(4), DType::I8),
        ("gpu", Engine::TfLiteGpu { threads: 4 }, DType::F32),
        ("hexagon", Engine::TfLiteHexagon { threads: 4 }, DType::I8),
        ("nnapi", Engine::nnapi(), DType::I8),
    ]
}

fn main() {
    let opts = opts_from_env();
    let iters = opts.iterations.clamp(10, 60);

    let mut t = Table::new(vec![
        "backend",
        "latency_ms",
        "energy_mj",
        "edp_mj_ms",
        "mean_w",
        "energy_tax",
    ]);
    for (name, engine, dtype) in backends() {
        let r = run(engine, dtype, SocId::Sd845, iters, opts.seed);
        let e = r.energy.as_ref().expect("tracing enabled");
        let lat_ms = r.e2e_summary().mean_ms();
        let mj = e.energy_per_inference_j() * 1e3;
        // EDP in mJ·ms: energy per inference × mean e2e latency.
        let edp = mj * lat_ms;
        t.row(vec![
            name.into(),
            format!("{lat_ms:.2}"),
            format!("{mj:.2}"),
            format!("{edp:.1}"),
            format!("{:.2}", e.mean_power_w()),
            fmt_pct(e.energy_tax_fraction()),
        ]);
    }
    emit(
        "Energy shootout — MobileNet v1 on SD845 (quantized where supported)",
        &t,
    );

    let mut sweep = Table::new(vec![
        "soc",
        "latency_ms",
        "energy_mj",
        "time_tax",
        "energy_tax",
    ]);
    for soc in [SocId::Sd835, SocId::Sd845, SocId::Sd855, SocId::Sd865] {
        let r = E2eConfig::new(ModelId::MobileNetV1, DType::I8)
            .engine(Engine::nnapi())
            .soc(soc)
            .run_mode(RunMode::AndroidApp)
            .iterations(iters)
            .seed(opts.seed)
            .tracing(true)
            .run();
        let e = r.energy.as_ref().expect("tracing enabled");
        sweep.row(vec![
            format!("{soc:?}"),
            format!("{:.2}", r.e2e_summary().mean_ms()),
            format!("{:.2}", e.energy_per_inference_j() * 1e3),
            fmt_pct(r.ai_tax_fraction()),
            fmt_pct(e.energy_tax_fraction()),
        ]);
    }
    emit(
        "Chipset sweep — NNAPI app mode, time tax vs energy tax",
        &sweep,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use aitax_core::Stage;

    /// The headline result the binary exists to print: for quantized
    /// MobileNet-class work the DSP wins energy per inference, and four
    /// CPU threads beat one (race-to-idle under a shared static floor).
    #[test]
    fn dsp_beats_cpu4_beats_cpu1_on_energy() {
        let energy_mj = |engine: Engine, dtype: DType| {
            let r = run(engine, dtype, SocId::Sd845, 12, 3);
            r.energy.unwrap().energy_per_inference_j() * 1e3
        };
        let cpu1 = energy_mj(Engine::tflite_cpu(1), DType::I8);
        let cpu4 = energy_mj(Engine::tflite_cpu(4), DType::I8);
        let dsp = energy_mj(Engine::TfLiteHexagon { threads: 4 }, DType::I8);
        assert!(
            dsp < cpu4 && cpu4 < cpu1,
            "expected dsp < cpu4 < cpu1, got dsp={dsp:.1} cpu4={cpu4:.1} cpu1={cpu1:.1} mJ"
        );
    }

    /// The DSP can lose the latency race to 4 big cores and still win
    /// on energy — the point latency-only comparisons miss.
    #[test]
    fn dsp_energy_win_does_not_require_latency_win() {
        let r_dsp = run(
            Engine::TfLiteHexagon { threads: 4 },
            DType::I8,
            SocId::Sd845,
            12,
            3,
        );
        let r_cpu = run(Engine::tflite_cpu(4), DType::I8, SocId::Sd845, 12, 3);
        let e_dsp = r_dsp.energy.as_ref().unwrap().energy_per_inference_j();
        let e_cpu = r_cpu.energy.as_ref().unwrap().energy_per_inference_j();
        assert!(
            e_dsp < e_cpu * 0.8,
            "DSP should win energy by a clear margin"
        );
        // Whatever the latency outcome, the inference stage itself must
        // be accounted in both runs.
        assert!(r_dsp.summary(Stage::Inference).mean_ms() > 0.0);
        assert!(r_cpu.summary(Stage::Inference).mean_ms() > 0.0);
    }
}
