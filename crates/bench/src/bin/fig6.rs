//! Regenerates Figure 6: Snapdragon-Profiler-style execution profiles of
//! EfficientNet-Lite0 under CPU, Hexagon delegate and NNAPI.

fn main() {
    print!(
        "{}",
        aitax_core::experiment::fig6(aitax_bench::opts_from_env())
    );
}
