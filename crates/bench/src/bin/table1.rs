//! Regenerates Table I: the benchmark/model list.

fn main() {
    aitax_bench::emit(
        "Table I — Comprehensive list of benchmarks",
        &aitax_core::experiment::table1(),
    );
}
