//! Regenerates Table I: the benchmark/model list, plus a measured
//! companion — every listed benchmark swept end to end through the
//! aitax-lab engine.

use aitax_lab::{render, scenarios, SweepReport};

fn main() {
    aitax_bench::emit(
        "Table I — Comprehensive list of benchmarks",
        &aitax_core::experiment::table1(),
    );
    let opts = aitax_bench::opts_from_env();
    let grid = scenarios::table1(opts.iterations, opts.seed);
    let results = aitax_lab::run_jobs(grid.expand(), aitax_lab::default_threads());
    let report = SweepReport::aggregate(&grid, &results);
    aitax_bench::emit(
        "Table I (measured) — end-to-end latency per benchmark, CPU CLI",
        &render::model_latency_table(&report),
    );
}
