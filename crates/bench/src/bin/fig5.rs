//! Regenerates Figure 5: quantized EfficientNet-Lite0 across execution
//! targets, exposing the NNAPI CPU-fallback degradation.

fn main() {
    let r = aitax_core::experiment::fig5(aitax_bench::opts_from_env());
    aitax_bench::emit(
        "Figure 5 — EfficientNet-Lite0 int8 target comparison",
        &r.table,
    );
    println!(
        "NNAPI vs single-thread CPU: {:.1}x (paper: ~7x)",
        r.nnapi_vs_cpu1
    );
}
