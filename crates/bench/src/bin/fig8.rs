//! Regenerates Figure 8: offload overhead amortization over consecutive
//! inferences.

fn main() {
    let t = aitax_core::experiment::fig8(aitax_bench::opts_from_env());
    aitax_bench::emit(
        "Figure 8 — offload amortization (MobileNet v1 int8, Hexagon)",
        &t,
    );
}
