//! Simulator-throughput benchmark: how fast is the DES engine itself?
//!
//! The paper's §III-D warns that measurement must not perturb the system
//! under test; for us the "measurement apparatus" is the simulator, and
//! its own overhead bounds how many repeated end-to-end runs a sweep can
//! afford. This bin measures the event loop in isolation and emits
//! `BENCH_sim.json` (schema `aitax-sim-bench/v1`) so the perf trajectory
//! is tracked in version control.
//!
//! Ten scenarios, all seeded and deterministic:
//!
//! * `calendar-churn` — schedule/fire/cancel churn through [`Calendar`]
//!   with a rolling population of pending events,
//! * `wheel-churn`   — the same churn with ~10% far-future timers, so
//!   events land at high timing-wheel levels and cascade down as the
//!   clock crosses slot boundaries (the wheel's worst case),
//! * `trace-record`  — [`TraceBuffer`] append throughput plus one
//!   `exec_intervals` extraction,
//! * `trace-stream`  — the same append loop through a bounded ring
//!   (streaming mode): constant memory, oldest events overwritten,
//! * `machine-hot`   — the steady-state `Machine::step` loop (time-sliced
//!   foreground tasks, tracing on): the loop that must stay
//!   allocation-free,
//! * `machine-mixed` — a realistic mix: noise timers, DSP ping-pong,
//!   wandering NNAPI-fallback tasks,
//! * `init-tax-fresh` / `init-tax-reused` — the simulator's **own** init
//!   tax: N repeated short runs (the probe/sweep/CI-smoke shape) paying
//!   the pre-cache setup — graph build, plan compile, machine boot —
//!   every run, vs the same N runs resolving the compiled-artifact
//!   caches and resetting one reused [`SimContext`]. The payload is
//!   deliberately tiny so the setup share dominates, exactly as it does
//!   in short probe runs. The gated digests pin that both arms simulate
//!   identical histories; the wall ratio is the amortization,
//! * `init-tax-fleet-fresh` / `init-tax-fleet-reused` — the end-to-end
//!   version of the same split on the fleet's per-device path
//!   (a throwaway context per device vs `run_device_in` with a shared
//!   context, full inference payloads).
//!
//! Wall-clock events/sec is **informational** (it varies with the host);
//! the deterministic counters (events scheduled/fired/cancelled, trace
//! bytes, steady-state allocation count) are the **gated** values: CI
//! runs `sim_throughput --quick --check` and fails on any drift.
//!
//! Usage: `sim_throughput [--quick] [--check]`
//!
//! * default: full-size run, rewrites `BENCH_sim.json` in the CWD,
//! * `--quick`: CI-sized run (~10× smaller),
//! * `--check`: do not rewrite; verify this mode's counter block is
//!   byte-identical to the committed `BENCH_sim.json` (exit 1 on drift).

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use aitax_core::SimContext;
use aitax_des::trace::{TraceKind, TraceResource};
use aitax_des::{Calendar, SimRng, SimSpan, TraceBuffer};
use aitax_fleet::{run_device_in, DevicePartial, PopulationSpec};
use aitax_framework::{Engine, Session};
use aitax_kernel::{Machine, NoiseConfig, TaskSpec, Work};
use aitax_models::zoo::{ModelId, Zoo};
use aitax_soc::{SocCatalog, SocId};
use aitax_tensor::DType;

// ------------------------------------------------------- counting allocator

/// Global allocator wrapper that counts heap operations, so the benchmark
/// can report *allocations per event* — the probe-effect number the
/// steady-state hot loop pins at zero.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static FREES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        FREES.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_now() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

// ------------------------------------------------------------------ sizing

#[derive(Clone, Copy)]
struct Sizes {
    mode: &'static str,
    calendar_iters: u64,
    wheel_iters: u64,
    trace_events: u64,
    stream_events: u64,
    hot_events: u64,
    mixed_events: u64,
    init_runs: u64,
    fleet_devices: usize,
}

const FULL: Sizes = Sizes {
    mode: "full",
    calendar_iters: 3_000_000,
    wheel_iters: 2_000_000,
    trace_events: 4_000_000,
    stream_events: 4_000_000,
    hot_events: 1_000_000,
    mixed_events: 600_000,
    init_runs: 20_000,
    fleet_devices: 32,
};

const QUICK: Sizes = Sizes {
    mode: "quick",
    calendar_iters: 300_000,
    wheel_iters: 200_000,
    trace_events: 400_000,
    stream_events: 400_000,
    hot_events: 120_000,
    mixed_events: 80_000,
    init_runs: 2_000,
    fleet_devices: 6,
};

/// Ring capacity for the `trace-stream` scenario — same in both modes so
/// the window mechanics (wraparound, eviction accounting) are identical.
const STREAM_RING_CAP: usize = 65_536;

// --------------------------------------------------------------- baseline

/// Pre-refactor full-mode wall numbers, measured in this same container
/// immediately before the interner/tombstone-calendar rework (commit
/// a51bc96, boxed-label `TraceBuffer` + `BinaryHeap`+`HashSet` calendar).
/// Informational denominators for the speedup column; never gated.
const BASELINE_FULL_WALL: [(&str, f64); 4] = [
    ("calendar-churn", 3_410_996.0),
    ("trace-record", 1_229_831.0),
    ("machine-hot", 2_815_641.0),
    ("machine-mixed", 2_121_045.0),
];

fn baseline_for(name: &str) -> Option<f64> {
    BASELINE_FULL_WALL
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, eps)| *eps)
}

// -------------------------------------------------------------- scenarios

struct ScenarioResult {
    name: &'static str,
    /// Events processed by the scenario's main loop.
    events: u64,
    /// Wall-clock events per second (informational).
    events_per_sec: f64,
    /// Deterministic counters, as stable (key, value) pairs.
    counters: Vec<(&'static str, u64)>,
}

/// Schedule/fire/cancel churn through the raw calendar: a rolling window
/// of ~64 pending events, one fire + one schedule per iteration, and an
/// extra schedule + cancel attempt every third iteration.
fn calendar_churn(iters: u64) -> ScenarioResult {
    let mut cal = Calendar::new();
    let mut rng = SimRng::seed_from(0xCA1E_17DA);
    let mut ring = [None; 32];
    let mut scheduled = 0u64;
    let mut fired = 0u64;
    let mut cancelled = 0u64;
    for _ in 0..64 {
        let tok = cal.schedule_after(SimSpan::from_ns(rng.uniform_u64(1, 5_000)));
        ring[(scheduled % 32) as usize] = Some(tok);
        scheduled += 1;
    }
    let start = Instant::now();
    for i in 0..iters {
        let (_, _tok) = cal.next().expect("population never drains");
        fired += 1;
        let tok = cal.schedule_after(SimSpan::from_ns(rng.uniform_u64(1, 5_000)));
        ring[(scheduled % 32) as usize] = Some(tok);
        scheduled += 1;
        if i % 3 == 0 {
            let extra = cal.schedule_after(SimSpan::from_ns(rng.uniform_u64(1, 5_000)));
            ring[(scheduled % 32) as usize] = Some(extra);
            scheduled += 1;
            let victim = ring[rng.uniform_u64(0, 32) as usize];
            if let Some(v) = victim {
                if cal.cancel(v) {
                    cancelled += 1;
                }
            }
        }
    }
    let secs = start.elapsed().as_secs_f64();
    ScenarioResult {
        name: "calendar-churn",
        events: fired,
        events_per_sec: fired as f64 / secs,
        counters: vec![
            ("scheduled", scheduled),
            ("fired", fired),
            ("cancelled", cancelled),
            ("pending_after", cal.pending() as u64),
        ],
    }
}

/// Calendar churn with ~10% far-future timers: the wheel's worst case.
/// Far events land at levels 2-4 of the hierarchy and cascade down slot
/// by slot as near-term fires drag the clock across level boundaries;
/// cancels hit the far population too, retiring tombstones mid-cascade.
fn wheel_churn(iters: u64) -> ScenarioResult {
    let mut cal = Calendar::new();
    let mut rng = SimRng::seed_from(0x57EE_1CDA);
    let mut ring = [None; 32];
    let mut scheduled = 0u64;
    let mut fired = 0u64;
    let mut cancelled = 0u64;
    let pick = |rng: &mut SimRng| {
        if rng.chance(0.1) {
            // Far future: high wheel levels, fires only after cascading.
            SimSpan::from_ns(rng.uniform_u64(1 << 16, 1 << 28))
        } else {
            SimSpan::from_ns(rng.uniform_u64(1, 5_000))
        }
    };
    for _ in 0..64 {
        let tok = cal.schedule_after(pick(&mut rng));
        ring[(scheduled % 32) as usize] = Some(tok);
        scheduled += 1;
    }
    let start = Instant::now();
    for i in 0..iters {
        let (_, _tok) = cal.next().expect("population never drains");
        fired += 1;
        let tok = cal.schedule_after(pick(&mut rng));
        ring[(scheduled % 32) as usize] = Some(tok);
        scheduled += 1;
        if i % 3 == 0 {
            let extra = cal.schedule_after(pick(&mut rng));
            ring[(scheduled % 32) as usize] = Some(extra);
            scheduled += 1;
            let victim = ring[rng.uniform_u64(0, 32) as usize];
            if let Some(v) = victim {
                if cal.cancel(v) {
                    cancelled += 1;
                }
            }
        }
    }
    let secs = start.elapsed().as_secs_f64();
    ScenarioResult {
        name: "wheel-churn",
        events: fired,
        events_per_sec: fired as f64 / secs,
        counters: vec![
            ("scheduled", scheduled),
            ("fired", fired),
            ("cancelled", cancelled),
            ("pending_after", cal.pending() as u64),
        ],
    }
}

/// Trace-append throughput: paired ExecStart/ExecEnd across ten resources
/// with periodic AXI bursts and IRQs, then one `exec_intervals` pass.
fn trace_record(n: u64) -> ScenarioResult {
    const RESOURCES: [TraceResource; 10] = [
        TraceResource::CpuCore(0),
        TraceResource::CpuCore(1),
        TraceResource::CpuCore(2),
        TraceResource::CpuCore(3),
        TraceResource::CpuCore(4),
        TraceResource::CpuCore(5),
        TraceResource::CpuCore(6),
        TraceResource::CpuCore(7),
        TraceResource::Dsp,
        TraceResource::Gpu,
    ];
    const LABELS: [&str; 8] = [
        "inference",
        "preprocess",
        "postprocess",
        "dma-wait",
        "glue",
        "conv2d",
        "pooling",
        "fully-connected",
    ];
    let mut buf = TraceBuffer::enabled();
    // Labels are interned once up front, as the kernel does at task
    // submission; the recording loop then never touches strings.
    let symbols: Vec<aitax_des::Symbol> = LABELS.iter().map(|l| buf.intern(l)).collect();
    let mut open = [None::<u64>; 10];
    let mut next_task = 1u64;
    let start = Instant::now();
    for i in 0..n {
        let t = aitax_des::SimTime::from_ns(100 * i);
        let slot = (i % 10) as usize;
        match open[slot] {
            Some(task) => {
                buf.record(t, RESOURCES[slot], TraceKind::ExecEnd { task });
                open[slot] = None;
            }
            None => {
                buf.record(
                    t,
                    RESOURCES[slot],
                    TraceKind::ExecStart {
                        task: next_task,
                        label: symbols[(i % 8) as usize],
                    },
                );
                open[slot] = Some(next_task);
                next_task += 1;
            }
        }
        if i % 16 == 0 {
            buf.record(t, TraceResource::Axi, TraceKind::AxiBurst { bytes: 4096 });
        }
    }
    let record_secs = start.elapsed().as_secs_f64();
    let intervals = buf.exec_intervals();
    let total = buf.len() as u64;
    ScenarioResult {
        name: "trace-record",
        events: total,
        events_per_sec: total as f64 / record_secs,
        counters: vec![
            ("recorded", total),
            ("intervals", intervals.len() as u64),
            (
                "bytes_traced",
                total * std::mem::size_of::<aitax_des::TraceEvent>() as u64,
            ),
        ],
    }
}

/// Streaming-mode trace append: the same event mix as `trace-record`,
/// but through a bounded ring ([`STREAM_RING_CAP`] events). Memory stays
/// constant no matter how long the recording runs; the oldest events are
/// overwritten in place and interval extraction sees only the window.
fn trace_stream(n: u64) -> ScenarioResult {
    const RESOURCES: [TraceResource; 10] = [
        TraceResource::CpuCore(0),
        TraceResource::CpuCore(1),
        TraceResource::CpuCore(2),
        TraceResource::CpuCore(3),
        TraceResource::CpuCore(4),
        TraceResource::CpuCore(5),
        TraceResource::CpuCore(6),
        TraceResource::CpuCore(7),
        TraceResource::Dsp,
        TraceResource::Gpu,
    ];
    let mut buf = TraceBuffer::enabled_ring(STREAM_RING_CAP);
    let label = buf.intern("inference");
    let mut open = [None::<u64>; 10];
    let mut next_task = 1u64;
    let start = Instant::now();
    for i in 0..n {
        let t = aitax_des::SimTime::from_ns(100 * i);
        let slot = (i % 10) as usize;
        match open[slot] {
            Some(task) => {
                buf.record(t, RESOURCES[slot], TraceKind::ExecEnd { task });
                open[slot] = None;
            }
            None => {
                buf.record(
                    t,
                    RESOURCES[slot],
                    TraceKind::ExecStart {
                        task: next_task,
                        label,
                    },
                );
                open[slot] = Some(next_task);
                next_task += 1;
            }
        }
        if i % 16 == 0 {
            buf.record(t, TraceResource::Axi, TraceKind::AxiBurst { bytes: 4096 });
        }
    }
    let record_secs = start.elapsed().as_secs_f64();
    let intervals = buf.exec_intervals();
    let total = buf.len() as u64 + buf.dropped();
    ScenarioResult {
        name: "trace-stream",
        events: total,
        events_per_sec: total as f64 / record_secs,
        counters: vec![
            ("recorded", total),
            ("window", buf.len() as u64),
            ("dropped", buf.dropped()),
            ("window_intervals", intervals.len() as u64),
            (
                "window_bytes",
                buf.len() as u64 * std::mem::size_of::<aitax_des::TraceEvent>() as u64,
            ),
        ],
    }
}

/// The steady-state machine hot loop: eight long foreground tasks
/// time-slicing over the big cores with tracing enabled. After a warmup
/// fifth, every heap allocation in the loop is counted — the number the
/// refactored simulator pins at zero.
fn machine_hot(n: u64) -> ScenarioResult {
    let mut m = Machine::new(SocCatalog::get(SocId::Sd845), 42);
    m.set_tracing(true);
    // Pre-size the trace storage (~3 trace events per step) so the
    // measured window never pays a Vec doubling — the same idiom the
    // e2e pipeline uses before its iteration loop.
    m.trace.reserve_events(3 * n as usize + 64);
    for i in 0..8 {
        // Work far larger than the run: no task completes mid-measurement.
        m.submit_cpu(
            TaskSpec::foreground(format!("fg{i}"), Work::Fp32Flops(1e18)),
            |_| {},
        );
    }
    let warmup = n / 5;
    let mut events = 0u64;
    while events < warmup && m.step() {
        events += 1;
    }
    let alloc_before = allocs_now();
    let start = Instant::now();
    while events < n && m.step() {
        events += 1;
    }
    let secs = start.elapsed().as_secs_f64();
    let steady_allocs = allocs_now() - alloc_before;
    let measured = n - warmup;
    ScenarioResult {
        name: "machine-hot",
        events: measured,
        events_per_sec: measured as f64 / secs,
        counters: vec![
            ("events", measured),
            ("steady_allocs", steady_allocs),
            ("context_switches", m.stats().context_switches),
            ("trace_events", m.trace.len() as u64),
        ],
    }
}

fn dsp_pump(m: &mut Machine) {
    m.submit_dsp_raw("dsp-pump", SimSpan::from_us(700.0), dsp_pump);
}

/// A realistic mixed load: ambient Android noise (timer churn), a DSP
/// ping-pong stream, wandering NNAPI-fallback threads and background
/// work. Informational — timers and task churn allocate by design.
fn machine_mixed(n: u64) -> ScenarioResult {
    let mut m = Machine::new(SocCatalog::get(SocId::Sd845), 77);
    m.set_tracing(true);
    m.start_noise(NoiseConfig::android_app());
    for i in 0..4 {
        m.submit_cpu(
            TaskSpec::foreground(format!("fg{i}"), Work::Fp32Flops(1e18)),
            |_| {},
        );
    }
    for i in 0..2 {
        m.submit_cpu(
            TaskSpec::nnapi_fallback(format!("nn{i}"), Work::Int8Ops(1e18)),
            |_| {},
        );
    }
    dsp_pump(&mut m);
    let mut events = 0u64;
    let start = Instant::now();
    while events < n && m.step() {
        events += 1;
    }
    let secs = start.elapsed().as_secs_f64();
    ScenarioResult {
        name: "machine-mixed",
        events,
        events_per_sec: events as f64 / secs,
        counters: vec![
            ("events", events),
            ("migrations", m.stats().migrations),
            ("dsp_jobs", m.stats().dsp_jobs),
            ("trace_events", m.trace.len() as u64),
        ],
    }
}

// ---------------------------------------------------------------- init tax

/// Folds one 64-bit observation into an order-sensitive digest.
fn fold(digest: &mut u64, bits: u64) {
    *digest = digest.rotate_left(7) ^ bits;
}

/// One short run's worth of simulated work on a checked-out machine: two
/// small foreground tasks drained to quiescence (bounded at 64 events).
/// The payload is deliberately tiny so the per-run setup share dominates
/// — the shape of probe runs, grid sweeps and CI smokes, where the init
/// tax hurts most. The simulated history is folded into `digest`.
fn short_run(m: &mut Machine, digest: &mut u64) {
    for i in 0..2 {
        m.submit_cpu(
            TaskSpec::foreground(format!("short{i}"), Work::Fp32Flops(2e7)),
            |_| {},
        );
    }
    let mut steps = 0u64;
    while steps < 64 && m.step() {
        steps += 1;
    }
    fold(digest, steps);
    fold(digest, m.now().as_ns());
    fold(digest, m.stats().context_switches);
}

/// The simulator's own init tax: `runs` repeated short runs, each paying
/// the full pre-cache setup — graph rebuilt, plan recompiled, machine
/// booted from nothing (the workspace's per-run behavior before the
/// compiled-artifact caches and `Machine::reset`) — vs the same `runs`
/// resolving the caches and resetting one reused [`SimContext`].
///
/// The digests are gated: they fold the session shape and every run's
/// simulated history, so a reset that diverges from a fresh boot by even
/// one event or one nanosecond drifts the counter block and fails CI.
/// The wall ratio between the two arms is the amortization headline
/// (informational — it varies with the host).
fn init_tax(runs: u64) -> (ScenarioResult, ScenarioResult) {
    let mut fresh_digest = 0u64;
    let start = Instant::now();
    for k in 0..runs {
        // The pre-cache setup path: build + compile from scratch, boot a
        // brand-new machine via a throwaway context.
        let graph =
            std::sync::Arc::new(Zoo::entry(ModelId::MobileNetV1).build_graph_with(DType::F32));
        let session = Session::compile(Engine::tflite_cpu(4), graph, SocCatalog::get(SocId::Sd845))
            .expect("supported combo");
        fold(&mut fresh_digest, session.graph().input_elements());
        let mut ctx = SimContext::new();
        let m = ctx.checkout(SocId::Sd845, k + 1);
        short_run(m, &mut fresh_digest);
    }
    let fresh_secs = start.elapsed().as_secs_f64();

    let mut reused_digest = 0u64;
    let mut ctx = SimContext::new();
    let start = Instant::now();
    for k in 0..runs {
        let session = Session::compile_cached(
            Engine::tflite_cpu(4),
            ModelId::MobileNetV1,
            DType::F32,
            SocId::Sd845,
        )
        .expect("supported combo");
        fold(&mut reused_digest, session.graph().input_elements());
        let m = ctx.checkout(SocId::Sd845, k + 1);
        short_run(m, &mut reused_digest);
    }
    let reused_secs = start.elapsed().as_secs_f64();
    assert_eq!(
        fresh_digest, reused_digest,
        "context reuse changed simulated results"
    );

    let result = |name, secs, digest| ScenarioResult {
        name,
        events: runs,
        events_per_sec: runs as f64 / secs,
        counters: vec![("runs", runs), ("digest", digest)],
    };
    (
        result("init-tax-fresh", fresh_secs, fresh_digest),
        result("init-tax-reused", reused_secs, reused_digest),
    )
}

/// Digest of one device's fleet contribution.
fn partial_digest(digest: &mut u64, p: &DevicePartial) {
    fold(digest, p.requests);
    fold(digest, p.latency.mean().to_bits());
    fold(digest, p.tax_fraction.to_bits());
    fold(digest, p.energy_mj.to_bits());
}

/// The same split on the fleet path: every device through a throwaway
/// context (one machine boot per device — the shard behavior before
/// worker-held contexts) vs all devices through one shared context.
fn init_tax_fleet(devices: usize) -> (ScenarioResult, ScenarioResult) {
    let pop = PopulationSpec::new("init-tax").devices(devices).seed(13);
    let requests = 4 * devices as u64;

    let mut fresh_digest = 0u64;
    let start = Instant::now();
    for k in 0..devices {
        let mut ctx = SimContext::new();
        let p = run_device_in(&mut ctx, &pop.device(k), pop.requests_for(k, requests));
        partial_digest(&mut fresh_digest, &p);
    }
    let fresh_secs = start.elapsed().as_secs_f64();

    let mut reused_digest = 0u64;
    let mut ctx = SimContext::new();
    let start = Instant::now();
    for k in 0..devices {
        let p = run_device_in(&mut ctx, &pop.device(k), pop.requests_for(k, requests));
        partial_digest(&mut reused_digest, &p);
    }
    let reused_secs = start.elapsed().as_secs_f64();
    assert_eq!(
        fresh_digest, reused_digest,
        "context reuse changed fleet partials"
    );

    let result = |name, secs, digest| ScenarioResult {
        name,
        events: devices as u64,
        events_per_sec: devices as f64 / secs,
        counters: vec![("devices", devices as u64), ("digest", digest)],
    };
    (
        result("init-tax-fleet-fresh", fresh_secs, fresh_digest),
        result("init-tax-fleet-reused", reused_secs, reused_digest),
    )
}

// ------------------------------------------------------------------ output

fn run_all(sizes: Sizes) -> Vec<ScenarioResult> {
    let (init_fresh, init_reused) = init_tax(sizes.init_runs);
    let (fleet_fresh, fleet_reused) = init_tax_fleet(sizes.fleet_devices);
    vec![
        calendar_churn(sizes.calendar_iters),
        wheel_churn(sizes.wheel_iters),
        trace_record(sizes.trace_events),
        trace_stream(sizes.stream_events),
        machine_hot(sizes.hot_events),
        machine_mixed(sizes.mixed_events),
        init_fresh,
        init_reused,
        fleet_fresh,
        fleet_reused,
    ]
}

/// Renders one mode's gated counter block. Byte-stable: `--check`
/// compares this exact string against the committed `BENCH_sim.json`.
fn counters_block(mode: &str, results: &[ScenarioResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "    \"{mode}\": {{");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(out, "      \"{}\": {{", r.name);
        for (j, (k, v)) in r.counters.iter().enumerate() {
            let _ = write!(out, "\"{k}\": {v}");
            if j + 1 < r.counters.len() {
                out.push_str(", ");
            }
        }
        out.push('}');
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("    }");
    out
}

fn wall_block(results: &[ScenarioResult], with_baseline: bool) -> String {
    let mut out = String::new();
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            out,
            "      {{\"scenario\": \"{}\", \"events\": {}, \"events_per_sec\": {:.0}",
            r.name, r.events, r.events_per_sec
        );
        if with_baseline {
            if let Some(base) = baseline_for(r.name) {
                let _ = write!(
                    out,
                    ", \"baseline_events_per_sec\": {:.0}, \"speedup\": {:.2}",
                    base,
                    r.events_per_sec / base
                );
            }
        }
        out.push('}');
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out
}

/// Aggregate DES-layer throughput (calendar-churn + trace-record): total
/// events over total wall time, against the same aggregate of the
/// pre-refactor baseline. This is the headline >=3x number.
fn des_composite(results: &[ScenarioResult]) -> String {
    let des: Vec<&ScenarioResult> = results
        .iter()
        .filter(|r| r.name == "calendar-churn" || r.name == "trace-record")
        .collect();
    let events: f64 = des.iter().map(|r| r.events as f64).sum();
    let secs: f64 = des.iter().map(|r| r.events as f64 / r.events_per_sec).sum();
    let base_secs: f64 = des
        .iter()
        .filter_map(|r| baseline_for(r.name).map(|b| r.events as f64 / b))
        .sum();
    let eps = events / secs;
    let base_eps = events / base_secs;
    format!(
        "    \"des_composite\": {{\"events\": {:.0}, \"events_per_sec\": {:.0}, \
         \"baseline_events_per_sec\": {:.0}, \"speedup\": {:.2}}}",
        events,
        eps,
        base_eps,
        eps / base_eps
    )
}

/// The setup-amortization ratios: reused-arm throughput over fresh-arm
/// throughput for the short-run and fleet init-tax pairs. Informational
/// — these are wall-clock ratios; the digests inside the pairs are what
/// CI gates.
fn init_tax_composite(results: &[ScenarioResult]) -> String {
    let eps = |name: &str| {
        results
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.events_per_sec)
            .unwrap_or(f64::NAN)
    };
    format!(
        "    \"init_tax_amortization\": {{\"short_run_speedup\": {:.2}, \
         \"fleet_speedup\": {:.2}}}",
        eps("init-tax-reused") / eps("init-tax-fresh"),
        eps("init-tax-fleet-reused") / eps("init-tax-fleet-fresh")
    )
}

fn print_human(sizes: Sizes, results: &[ScenarioResult]) {
    println!("## Simulator throughput ({} mode)\n", sizes.mode);
    for r in results {
        println!(
            "{:<16} {:>12} events   {:>12.0} events/sec",
            r.name, r.events, r.events_per_sec
        );
        for (k, v) in &r.counters {
            println!("    {k:<22} {v}");
        }
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let sizes = if quick { QUICK } else { FULL };

    let results = run_all(sizes);
    print_human(sizes, &results);

    let block = counters_block(sizes.mode, &results);
    if check {
        let committed = std::fs::read_to_string("BENCH_sim.json").unwrap_or_else(|e| {
            eprintln!("cannot read BENCH_sim.json: {e}");
            std::process::exit(2);
        });
        if committed.contains(&block) {
            println!("OK: {} counters match committed BENCH_sim.json", sizes.mode);
        } else {
            eprintln!(
                "DRIFT: deterministic {} counters differ from committed \
                 BENCH_sim.json.\nExpected block:\n{block}\n\nRegenerate with \
                 `cargo run --release -p aitax-bench --bin sim_throughput` and \
                 review the diff.",
                sizes.mode
            );
            std::process::exit(1);
        }
        return;
    }

    // Full (non-check) runs rewrite BENCH_sim.json with counters for both
    // modes; wall numbers are informational and refreshed from this run.
    let other = if quick { FULL } else { QUICK };
    let other_results = run_all(other);
    let (quick_block, full_block) = if quick {
        (
            counters_block("quick", &results),
            counters_block("full", &other_results),
        )
    } else {
        (
            counters_block("quick", &other_results),
            counters_block("full", &results),
        )
    };
    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"aitax-sim-bench/v1\",\n");
    let _ = writeln!(json, "  \"measured_mode\": \"{}\",", sizes.mode);
    json.push_str("  \"gated_counters\": {\n");
    json.push_str(&quick_block);
    json.push_str(",\n");
    json.push_str(&full_block);
    json.push_str("\n  },\n");
    json.push_str("  \"informational_wall\": {\n");
    json.push_str("    \"note\": \"host-dependent; never gated\",\n");
    json.push_str(
        "    \"baseline\": \"pre-refactor (commit a51bc96), full mode, same container\",\n",
    );
    let full_results = if quick { &other_results } else { &results };
    json.push_str(&des_composite(full_results));
    json.push_str(",\n");
    json.push_str(&init_tax_composite(full_results));
    json.push_str(",\n");
    json.push_str("    \"scenarios\": [\n");
    json.push_str(&wall_block(full_results, true));
    json.push_str("    ]\n  }\n}\n");
    std::fs::write("BENCH_sim.json", &json).expect("write BENCH_sim.json");
    println!("wrote BENCH_sim.json");
}
