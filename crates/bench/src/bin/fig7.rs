//! Regenerates Figure 7: the FastRPC call flow with phase timestamps.

fn main() {
    aitax_bench::emit(
        "Figure 7 — FastRPC call flow (steady-state invocation)",
        &aitax_core::experiment::fig7(),
    );
}
