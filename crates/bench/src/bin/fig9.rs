//! Regenerates Figure 9: app latency breakdown with background inferences
//! contending for the DSP.

fn main() {
    let t = aitax_core::experiment::fig9(aitax_bench::opts_from_env());
    aitax_bench::emit(
        "Figure 9 — multi-tenancy, background inferences on the DSP",
        &t,
    );
}
