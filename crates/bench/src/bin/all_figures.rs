//! Runs every table and figure in sequence — the full evaluation
//! reproduction (EXPERIMENTS.md is generated from this output).

use aitax_core::experiment as exp;

fn main() {
    let opts = aitax_bench::opts_from_env();
    eprintln!(
        "running all exhibits with {} iterations/config...",
        opts.iterations
    );
    aitax_bench::emit("Table I — Comprehensive list of benchmarks", &exp::table1());
    aitax_bench::emit("Table II — Platforms", &exp::table2());
    aitax_bench::emit(
        "Figure 3 — benchmark vs app E2E latency (CPU)",
        &exp::fig3(opts),
    );
    aitax_bench::emit(
        "Figure 4 — capture/pre-processing vs inference (NNAPI)",
        &exp::fig4(opts),
    );
    let f5 = exp::fig5(opts);
    aitax_bench::emit("Figure 5 — EfficientNet-Lite0 int8 targets", &f5.table);
    println!("NNAPI vs cpu-1t: {:.1}x (paper ~7x)\n", f5.nnapi_vs_cpu1);
    println!("## Figure 6 — execution profiles\n");
    print!("{}", exp::fig6(opts));
    aitax_bench::emit("Figure 7 — FastRPC call flow", &exp::fig7());
    aitax_bench::emit("Figure 8 — offload amortization", &exp::fig8(opts));
    aitax_bench::emit("Figure 9 — background inferences on DSP", &exp::fig9(opts));
    aitax_bench::emit(
        "Figure 10 — background inferences on CPU",
        &exp::fig10(opts),
    );
    let f11 = exp::fig11(opts);
    aitax_bench::emit("Figure 11 — run-to-run variability", &f11.table);
    println!(
        "max deviation from median: benchmark {:.1}%, app {:.1}%",
        f11.benchmark_deviation * 100.0,
        f11.app_deviation * 100.0
    );
    aitax_bench::emit(
        "Extra — libc++/libstdc++ input-generation asymmetry (§IV-A)",
        &exp::stdlib_asymmetry(opts),
    );
}
