//! Runs every table and figure in sequence — the full evaluation
//! reproduction (EXPERIMENTS.md is generated from this output).
//!
//! Sweep-shaped exhibits (Tables I/II measured companions, Figs. 10 and
//! 11) run through the aitax-lab engine in parallel; the single-run
//! exhibits keep their direct `experiment::` implementations.

use aitax_core::experiment as exp;
use aitax_lab::{render, scenarios, SweepReport};

fn lab_sweep(name: &str, iters: usize, seed: u64) -> SweepReport {
    let grid = scenarios::by_name(name, iters, seed).expect("registered grid");
    let results = aitax_lab::run_jobs(grid.expand(), aitax_lab::default_threads());
    SweepReport::aggregate(&grid, &results)
}

fn main() {
    let opts = aitax_bench::opts_from_env();
    eprintln!(
        "running all exhibits with {} iterations/config...",
        opts.iterations
    );
    aitax_bench::emit("Table I — Comprehensive list of benchmarks", &exp::table1());
    aitax_bench::emit("Table II — Platforms", &exp::table2());
    aitax_bench::emit(
        "Table II (measured) — NNAPI app per platform",
        &render::platform_table(&lab_sweep("table2", opts.iterations, opts.seed)),
    );
    aitax_bench::emit(
        "Figure 3 — benchmark vs app E2E latency (CPU)",
        &exp::fig3(opts),
    );
    aitax_bench::emit(
        "Figure 4 — capture/pre-processing vs inference (NNAPI)",
        &exp::fig4(opts),
    );
    let f5 = exp::fig5(opts);
    aitax_bench::emit("Figure 5 — EfficientNet-Lite0 int8 targets", &f5.table);
    println!("NNAPI vs cpu-1t: {:.1}x (paper ~7x)\n", f5.nnapi_vs_cpu1);
    println!("## Figure 6 — execution profiles\n");
    print!("{}", exp::fig6(opts));
    aitax_bench::emit("Figure 7 — FastRPC call flow", &exp::fig7());
    aitax_bench::emit("Figure 8 — offload amortization", &exp::fig8(opts));
    aitax_bench::emit("Figure 9 — background inferences on DSP", &exp::fig9(opts));
    aitax_bench::emit(
        "Figure 10 — background inferences on CPU",
        &render::multitenancy_table(&lab_sweep("fig10", opts.iterations, opts.seed)),
    );
    let f11 = lab_sweep("fig11", opts.iterations, opts.seed);
    aitax_bench::emit(
        "Figure 11 — run-to-run variability",
        &render::distribution_table(&f11),
    );
    let dev = |label: &str| {
        f11.scenario(label)
            .map(|s| s.e2e.max_dev_from_median)
            .unwrap_or(f64::NAN)
    };
    println!(
        "max deviation from median: benchmark {:.1}%, app {:.1}%",
        dev("cli-benchmark") * 100.0,
        dev("android-app") * 100.0
    );
    aitax_bench::emit(
        "Extra — libc++/libstdc++ input-generation asymmetry (§IV-A)",
        &exp::stdlib_asymmetry(opts),
    );
}
