//! Regenerates Table II: the hardware platforms, plus a measured
//! companion — quantized MobileNet through NNAPI on each platform,
//! traced for energy, swept through the aitax-lab engine.

use aitax_lab::{render, scenarios, SweepReport};

fn main() {
    aitax_bench::emit(
        "Table II — Platforms used to conduct the study",
        &aitax_core::experiment::table2(),
    );
    let opts = aitax_bench::opts_from_env();
    let grid = scenarios::table2(opts.iterations, opts.seed);
    let results = aitax_lab::run_jobs(grid.expand(), aitax_lab::default_threads());
    let report = SweepReport::aggregate(&grid, &results);
    aitax_bench::emit(
        "Table II (measured) — MobileNet v1 int8 via NNAPI app per platform",
        &render::platform_table(&report),
    );
}
