//! Regenerates Table II: the hardware platforms.

fn main() {
    aitax_bench::emit(
        "Table II — Platforms used to conduct the study",
        &aitax_core::experiment::table2(),
    );
}
