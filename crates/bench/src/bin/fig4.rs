//! Regenerates Figure 4: data capture + pre-processing vs inference
//! through NNAPI (absolute and relative).

fn main() {
    let t = aitax_core::experiment::fig4(aitax_bench::opts_from_env());
    aitax_bench::emit("Figure 4 — capture/pre-processing vs inference (NNAPI)", &t);
}
