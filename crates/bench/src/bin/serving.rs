//! Multi-tenant serving experiment: the contention scenario the paper's
//! single-app methodology cannot see.
//!
//! Runs every committed `aitax-serve` scenario — an interactive
//! viewfinder, a best-effort photo enhancer and a background indexer
//! sharing one SoC — through the attribution pass (N solo baselines plus
//! the mix) and prints, per tenant, what multi-tenancy cost it and who
//! paid. `AITAX_ITERS` caps per-tenant request counts for quick runs
//! (the committed scenarios already stay under the default).

use aitax_core::report::Table;
use aitax_serve::{run_report, scenarios};

fn main() {
    let opts = aitax_bench::opts_from_env();
    for name in scenarios::NAMES {
        let mut cfg = scenarios::by_name(name)
            .expect("committed scenario")
            .seed(opts.seed);
        for t in &mut cfg.tenants {
            t.requests = t.requests.min(opts.iterations);
        }
        let (report, _) = run_report(&cfg, aitax_lab::default_threads());

        let mut table = Table::new(vec![
            "tenant", "qos", "engine", "done", "shed", "solo p99", "mix p99", "infl", "suffered",
            "caused", "self",
        ]);
        for t in &report.tenants {
            table.row(vec![
                t.label.clone(),
                t.qos.label().to_string(),
                t.engine.clone(),
                t.completed.to_string(),
                t.shed.to_string(),
                format!("{:.2}", t.solo.p99),
                format!("{:.2}", t.multi.p99),
                format!("{:.2}x", t.multi.p99 / t.solo.p99.max(1e-9)),
                format!("{:.1}", t.suffered_ms),
                format!("{:.1}", t.caused_ms),
                format!("{:.1}", t.self_ms),
            ]);
        }
        aitax_bench::emit(
            &format!(
                "serving '{}' — mix added {:.1} ms over solo (all attributed)",
                report.scenario, report.added_ms
            ),
            &table,
        );
    }
}
