//! Fault-injection sweep: graceful degradation under deterministic
//! failures of the accelerator path.
//!
//! Replays the paper's Fig. 6 streaming scenario (quantized MobileNet
//! through NNAPI in app mode, DSP-offloaded when healthy) under each
//! fault kind via the aitax-lab sweep engine — all fault scenarios run
//! in parallel, with byte-identical aggregates for any thread count —
//! and prints the degradation shape: end-to-end slowdown,
//! retry/fallback counters, and the added tax attributed to each fault.
//! The "AI tax of failure" beside the paper's AI tax of success.
//!
//! Honors `AITAX_ITERS`, `AITAX_SEED`, `AITAX_THREADS` and `AITAX_TSV=1`.

use aitax_lab::{render, scenarios, SweepReport};

fn sweep(iters: usize, seed: u64, threads: usize) -> SweepReport {
    let grid = scenarios::faults(iters, seed);
    let results = aitax_lab::run_jobs(grid.expand(), threads);
    SweepReport::aggregate(&grid, &results)
}

fn main() {
    let opts = aitax_bench::opts_from_env();
    let report = sweep(opts.iterations, opts.seed, aitax_lab::default_threads());
    aitax_bench::emit(
        "Fault sweep — MobileNet v1 int8 via NNAPI, app mode (Fig. 6 scenario)",
        &render::fault_table(&report),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sweep's headline: a sustained DSP outage at least doubles
    /// end-to-end latency and attributes the loss.
    #[test]
    fn dsp_outage_at_least_doubles_e2e() {
        let report = sweep(6, 3, 1);
        let h = report.scenario("none").unwrap().e2e.mean;
        let broken = report.scenario("dsp-signal-timeout").unwrap();
        let b = broken.e2e.mean;
        assert!(
            b >= 2.0 * h,
            "expected >=2x slowdown, got {h:.2} -> {b:.2} ms"
        );
        assert!(broken.degradation.added_tax_ms > 0.0);
    }

    /// The whole sweep is reproducible — and independent of thread count.
    #[test]
    fn sweep_is_deterministic_across_thread_counts() {
        let serial = sweep(4, 5, 1);
        let parallel = sweep(4, 5, 4);
        assert_eq!(serial, parallel, "aggregates must not depend on threads");
        for s in &serial.scenarios {
            if s.label != "none" {
                assert!(
                    s.degradation.faults_injected > 0,
                    "{}: fault plan must actually fire",
                    s.label
                );
            }
        }
    }
}
