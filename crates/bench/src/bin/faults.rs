//! Fault-injection sweep: graceful degradation under deterministic
//! failures of the accelerator path.
//!
//! Replays the paper's Fig. 6 streaming scenario (quantized MobileNet
//! through NNAPI in app mode, DSP-offloaded when healthy) under each
//! fault kind and prints the degradation shape: end-to-end slowdown,
//! retry/fallback counters, and the added tax the DegradationReport
//! attributes — the "AI tax of failure" beside the paper's AI tax of
//! success.
//!
//! Honors `AITAX_ITERS`, `AITAX_SEED` and `AITAX_TSV=1`.

use aitax_bench::{emit, opts_from_env};
use aitax_core::pipeline::{E2eConfig, E2eReport};
use aitax_core::report::Table;
use aitax_core::runmode::RunMode;
use aitax_des::fault::{FaultKind, FaultPlan};
use aitax_des::SimTime;
use aitax_framework::Engine;
use aitax_models::zoo::ModelId;
use aitax_tensor::DType;

/// One traced Fig. 6-style run, optionally under a fault plan.
fn run(iters: usize, seed: u64, plan: Option<FaultPlan>) -> E2eReport {
    let mut cfg = E2eConfig::new(ModelId::MobileNetV1, DType::I8)
        .engine(Engine::nnapi())
        .run_mode(RunMode::AndroidApp)
        .iterations(iters)
        .seed(seed)
        .tracing(true);
    if let Some(plan) = plan {
        cfg = cfg.fault_plan(plan);
    }
    cfg.run()
}

/// The sweep: one sustained window per fault kind, from t = 0.
fn scenarios(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    let sustained = |kind: FaultKind| FaultPlan::new(seed).sustained(kind, SimTime::ZERO);
    vec![
        ("rpc-ioctl-error", sustained(FaultKind::RpcIoctlError)),
        ("dsp-signal-timeout", sustained(FaultKind::DspSignalTimeout)),
        (
            "dsp-response-dropped",
            sustained(FaultKind::DspResponseDropped),
        ),
        (
            "thermal-emergency",
            FaultPlan::new(seed).at(FaultKind::ThermalEmergency, SimTime::from_ns(10_000_000)),
        ),
        ("cache-flush-storm", sustained(FaultKind::CacheFlushStorm)),
        (
            "background-burst",
            FaultPlan::new(seed).at(FaultKind::BackgroundBurst, SimTime::from_ns(10_000_000)),
        ),
    ]
}

fn main() {
    let opts = opts_from_env();
    let iters = opts.iterations.clamp(4, 40);

    let healthy = run(iters, opts.seed, None);
    let h_ms = healthy.e2e_summary().mean_ms();

    let mut t = Table::new(vec![
        "fault",
        "e2e_ms",
        "slowdown",
        "retries",
        "giveups",
        "fallbacks",
        "added_tax_ms",
        "added_energy_mj",
    ]);
    t.row(vec![
        "none".into(),
        format!("{h_ms:.2}"),
        "1.00x".into(),
        "0".into(),
        "0".into(),
        "0".into(),
        "0.00".into(),
        "0.00".into(),
    ]);
    for (name, plan) in scenarios(opts.seed) {
        let r = run(iters, opts.seed, Some(plan));
        let d = &r.degradation;
        let ms = r.e2e_summary().mean_ms();
        t.row(vec![
            name.into(),
            format!("{ms:.2}"),
            format!("{:.2}x", ms / h_ms),
            d.stats.rpc_retries.to_string(),
            d.stats.rpc_giveups.to_string(),
            d.stats.cpu_fallbacks.to_string(),
            format!("{:.2}", d.added_tax_ms),
            d.added_energy_mj
                .map(|mj| format!("{mj:.2}"))
                .unwrap_or_else(|| "n/a".into()),
        ]);
    }
    emit(
        "Fault sweep — MobileNet v1 int8 via NNAPI, app mode (Fig. 6 scenario)",
        &t,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sweep's headline: a sustained DSP outage at least doubles
    /// end-to-end latency and attributes the loss.
    #[test]
    fn dsp_outage_at_least_doubles_e2e() {
        let healthy = run(6, 3, None);
        let plan = FaultPlan::new(3).sustained(FaultKind::DspSignalTimeout, SimTime::ZERO);
        let broken = run(6, 3, Some(plan));
        let h = healthy.e2e_summary().mean_ms();
        let b = broken.e2e_summary().mean_ms();
        assert!(
            b >= 2.0 * h,
            "expected >=2x slowdown, got {h:.2} -> {b:.2} ms"
        );
        assert!(broken.degradation.added_tax_ms > 0.0);
    }

    /// Every scenario the binary sweeps completes and stays deterministic.
    #[test]
    fn all_scenarios_complete_deterministically() {
        for (name, plan) in scenarios(5) {
            let a = run(4, 5, Some(plan.clone()));
            let b = run(4, 5, Some(plan));
            assert_eq!(
                a.degradation, b.degradation,
                "{name}: degradation must be reproducible"
            );
        }
    }
}
