//! Regenerates Figure 10: app latency breakdown with background
//! inferences contending for the CPU.
//!
//! Runs the declarative `fig10` grid through the aitax-lab sweep engine
//! (parallel across background counts, deterministic for any thread
//! count) instead of looping configs by hand.

use aitax_lab::{render, scenarios, SweepReport};

fn main() {
    let opts = aitax_bench::opts_from_env();
    let grid = scenarios::fig10(opts.iterations, opts.seed);
    let results = aitax_lab::run_jobs(grid.expand(), aitax_lab::default_threads());
    let report = SweepReport::aggregate(&grid, &results);
    aitax_bench::emit(
        "Figure 10 — multi-tenancy, background inferences on the CPU",
        &render::multitenancy_table(&report),
    );
}
