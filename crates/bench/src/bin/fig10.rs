//! Regenerates Figure 10: app latency breakdown with background
//! inferences contending for the CPU.

fn main() {
    let t = aitax_core::experiment::fig10(aitax_bench::opts_from_env());
    aitax_bench::emit(
        "Figure 10 — multi-tenancy, background inferences on the CPU",
        &t,
    );
}
