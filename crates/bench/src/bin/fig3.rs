//! Regenerates Figure 3: CLI benchmark vs benchmark app vs application
//! end-to-end latency on the CPU.

fn main() {
    let t = aitax_core::experiment::fig3(aitax_bench::opts_from_env());
    aitax_bench::emit("Figure 3 — benchmark vs app end-to-end latency (CPU)", &t);
}
