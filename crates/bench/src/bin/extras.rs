//! Extension studies beyond the numbered exhibits: thermal methodology
//! (§III-D), cold start per engine (§IV-C), NNAPI execution preferences
//! (§II-D) and the cross-chipset sweep (§III-C).

use aitax_core::extras;

fn main() {
    let opts = aitax_bench::opts_from_env();
    aitax_bench::emit(
        "Thermal methodology — cooled vs pre-heated chip (§III-D)",
        &extras::thermal_methodology(opts),
    );
    aitax_bench::emit(
        "Cold start — init + first inference per engine (§IV-C)",
        &extras::cold_start(opts),
    );
    aitax_bench::emit(
        "NNAPI execution preferences (§II-D)",
        &extras::preference_sweep(opts),
    );
    aitax_bench::emit(
        "Chipset sweep — same app across Table II platforms (§III-C)",
        &extras::chipset_sweep(opts),
    );
    aitax_bench::emit(
        "Ablation — migration share of the Fig. 5 NNAPI slowdown",
        &extras::migration_ablation(opts),
    );
    aitax_bench::emit(
        "Design study — FastCV-style DSP pre-processing (conclusion)",
        &extras::preproc_offload_study(opts),
    );
    println!(
        "## Figure 1 taxonomy, measured
"
    );
    print!("{}", extras::taxonomy_trees(opts));
}
