//! Shared plumbing for the figure/table regeneration binaries.
//!
//! Every binary accepts the environment variables:
//!
//! * `AITAX_ITERS` — iterations per configuration (default 100; the paper
//!   used 500 — set `AITAX_ITERS=500` for the full methodology),
//! * `AITAX_SEED` — base random seed (default 1),
//! * `AITAX_TSV=1` — emit TSV instead of aligned text.

use aitax_core::experiment::ExperimentOpts;
use aitax_core::report::Table;

/// Reads experiment options from the environment.
pub fn opts_from_env() -> ExperimentOpts {
    let mut opts = ExperimentOpts::default();
    if let Ok(v) = std::env::var("AITAX_ITERS") {
        if let Ok(n) = v.parse::<usize>() {
            opts.iterations = n.max(1);
        }
    }
    if let Ok(v) = std::env::var("AITAX_SEED") {
        if let Ok(s) = v.parse::<u64>() {
            opts.seed = s;
        }
    }
    opts
}

/// Whether TSV output was requested.
pub fn tsv_requested() -> bool {
    std::env::var("AITAX_TSV")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Prints a table in the requested format, with a heading.
pub fn emit(title: &str, table: &Table) {
    if tsv_requested() {
        print!("{}", table.render_tsv());
    } else {
        println!("## {title}\n");
        print!("{}", table.render_text());
        println!();
    }
}

/// Times `f` over `iters` iterations (after one warm-up call) and prints
/// the mean per-iteration latency. The `cargo bench` harnesses use this
/// instead of an external benchmarking framework so the workspace stays
/// dependency-free.
pub fn bench_case<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) {
    std::hint::black_box(f());
    let start = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let per_us = start.elapsed().as_secs_f64() / f64::from(iters) * 1e6;
    println!("{name:<44} {per_us:>12.1} us/iter   ({iters} iters)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_opts_sane() {
        let o = opts_from_env();
        assert!(o.iterations >= 1);
    }

    #[test]
    fn emit_does_not_panic() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1".into()]);
        emit("test", &t);
    }
}
