//! Microbenchmarks of the real post-processing implementations (§II-E):
//! topK, SSD decode + NMS, mask flattening, keypoint decoding and
//! WordPiece tokenization. Plain `Instant`-based timing — run with
//! `cargo bench`.

use aitax_bench::bench_case;
use aitax_pipeline::post::detection::{anchor_grid, decode_ssd, nms};
use aitax_pipeline::post::keypoints::decode_keypoints;
use aitax_pipeline::post::nlp::WordPieceTokenizer;
use aitax_pipeline::post::segmentation::flatten_mask;
use aitax_pipeline::post::topk::top_k;
use std::hint::black_box;

fn scores(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| ((i.wrapping_mul(2654435761)) % 10_000) as f32 / 10_000.0)
        .collect()
}

fn bench_topk() {
    let s = scores(1001);
    bench_case("topk/top5_of_1001", 30, || top_k(black_box(&s), 5));
}

fn bench_detection() {
    let anchors = anchor_grid(19, 19, &[0.1, 0.2, 0.35, 0.5, 0.7, 0.9]);
    let raw = scores(anchors.len() * 4);
    let cls = scores(anchors.len() * 91);
    bench_case("detection/ssd_decode_2166_anchors_91_classes", 20, || {
        decode_ssd(black_box(&anchors), &raw, &cls, 91, 0.6)
    });
    let dets = decode_ssd(&anchors, &raw, &cls, 91, 0.4);
    bench_case("detection/nms", 20, || {
        nms(black_box(dets.clone()), 0.5, 100)
    });
}

fn bench_segmentation() {
    // The full DeepLab output: 513×513×21 logits.
    let logits = scores(513 * 513 * 21);
    bench_case("segmentation/flatten_mask_513x513x21", 10, || {
        flatten_mask(black_box(&logits), 513, 513, 21)
    });
}

fn bench_keypoints() {
    let heat = scores(14 * 14 * 17);
    let off = scores(14 * 14 * 34);
    bench_case("keypoints/posenet_decode_14x14x17", 30, || {
        decode_keypoints(black_box(&heat), &off, 14, 14, 17, 16)
    });
}

fn bench_tokenizer() {
    let t = WordPieceTokenizer::demo();
    let text = "the quick brown fox jumps over the lazy dog while running \
                a deep learning benchmark on a mobile phone to measure the \
                ai tax of machine learning works";
    bench_case("tokenizer/wordpiece_encode_pair", 30, || {
        t.encode_pair(black_box("what is the ai tax"), black_box(text), 128)
    });
}

fn main() {
    bench_topk();
    bench_detection();
    bench_segmentation();
    bench_keypoints();
    bench_tokenizer();
}
