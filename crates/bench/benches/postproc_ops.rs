//! Criterion microbenchmarks of the real post-processing implementations
//! (§II-E): topK, SSD decode + NMS, mask flattening, keypoint decoding
//! and WordPiece tokenization.

use aitax_pipeline::post::detection::{anchor_grid, decode_ssd, nms};
use aitax_pipeline::post::keypoints::decode_keypoints;
use aitax_pipeline::post::nlp::WordPieceTokenizer;
use aitax_pipeline::post::segmentation::flatten_mask;
use aitax_pipeline::post::topk::top_k;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn scores(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| ((i.wrapping_mul(2654435761)) % 10_000) as f32 / 10_000.0)
        .collect()
}

fn bench_topk(c: &mut Criterion) {
    let mut g = c.benchmark_group("topk");
    g.sample_size(30);
    let s = scores(1001);
    g.bench_function("top5_of_1001", |b| b.iter(|| top_k(black_box(&s), 5)));
    g.finish();
}

fn bench_detection(c: &mut Criterion) {
    let mut g = c.benchmark_group("detection");
    g.sample_size(20);
    let anchors = anchor_grid(19, 19, &[0.1, 0.2, 0.35, 0.5, 0.7, 0.9]);
    let raw = scores(anchors.len() * 4);
    let cls = scores(anchors.len() * 91);
    g.bench_function("ssd_decode_2166_anchors_91_classes", |b| {
        b.iter(|| decode_ssd(black_box(&anchors), &raw, &cls, 91, 0.6))
    });
    let dets = decode_ssd(&anchors, &raw, &cls, 91, 0.4);
    g.bench_function("nms", |b| {
        b.iter(|| nms(black_box(dets.clone()), 0.5, 100))
    });
    g.finish();
}

fn bench_segmentation(c: &mut Criterion) {
    let mut g = c.benchmark_group("segmentation");
    g.sample_size(10);
    // The full DeepLab output: 513×513×21 logits.
    let logits = scores(513 * 513 * 21);
    g.bench_function("flatten_mask_513x513x21", |b| {
        b.iter(|| flatten_mask(black_box(&logits), 513, 513, 21))
    });
    g.finish();
}

fn bench_keypoints(c: &mut Criterion) {
    let mut g = c.benchmark_group("keypoints");
    g.sample_size(30);
    let heat = scores(14 * 14 * 17);
    let off = scores(14 * 14 * 34);
    g.bench_function("posenet_decode_14x14x17", |b| {
        b.iter(|| decode_keypoints(black_box(&heat), &off, 14, 14, 17, 16))
    });
    g.finish();
}

fn bench_tokenizer(c: &mut Criterion) {
    let mut g = c.benchmark_group("tokenizer");
    g.sample_size(30);
    let t = WordPieceTokenizer::demo();
    let text = "the quick brown fox jumps over the lazy dog while running \
                a deep learning benchmark on a mobile phone to measure the \
                ai tax of machine learning works";
    g.bench_function("wordpiece_encode_pair", |b| {
        b.iter(|| t.encode_pair(black_box("what is the ai tax"), black_box(text), 128))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_topk,
    bench_detection,
    bench_segmentation,
    bench_keypoints,
    bench_tokenizer
);
criterion_main!(benches);
