//! Criterion microbenchmarks of the *real* pre-processing
//! implementations (the §II-B algorithm inventory), across the input
//! resolutions of Table I. These measure the host implementations that
//! back the calibrated cost model.

use aitax_pipeline::image::YuvNv21Image;
use aitax_pipeline::preprocess;
use aitax_tensor::QuantParams;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_nv21_to_argb(c: &mut Criterion) {
    let mut g = c.benchmark_group("nv21_to_argb");
    g.sample_size(20);
    for (w, h) in [(320, 240), (640, 480), (1280, 720)] {
        let frame = YuvNv21Image::synthetic(w, h, 1);
        g.bench_with_input(BenchmarkId::from_parameter(format!("{w}x{h}")), &frame, |b, f| {
            b.iter(|| preprocess::nv21_to_argb(black_box(f)));
        });
    }
    g.finish();
}

fn bench_resize(c: &mut Criterion) {
    let mut g = c.benchmark_group("resize_bilinear");
    g.sample_size(20);
    let src = preprocess::nv21_to_argb(&YuvNv21Image::synthetic(640, 480, 2));
    // Table I model input resolutions.
    for side in [224usize, 227, 299, 300, 331, 513] {
        g.bench_with_input(BenchmarkId::from_parameter(side), &side, |b, &s| {
            b.iter(|| preprocess::resize_bilinear(black_box(&src), s, s));
        });
    }
    g.finish();
}

fn bench_normalize_and_quantize(c: &mut Criterion) {
    let mut g = c.benchmark_group("type_conversion");
    g.sample_size(20);
    let src = preprocess::resize_bilinear(
        &preprocess::nv21_to_argb(&YuvNv21Image::synthetic(640, 480, 3)),
        224,
        224,
    );
    g.bench_function("normalize_fp32_224", |b| {
        b.iter(|| preprocess::normalize_to_tensor(black_box(&src), 127.5, 127.5));
    });
    let params = QuantParams::from_range(0.0, 255.0);
    g.bench_function("quantize_int8_224", |b| {
        b.iter(|| preprocess::quantize_to_tensor(black_box(&src), params));
    });
    g.finish();
}

fn bench_rotate_and_crop(c: &mut Criterion) {
    let mut g = c.benchmark_group("geometry");
    g.sample_size(20);
    let src = preprocess::resize_bilinear(
        &preprocess::nv21_to_argb(&YuvNv21Image::synthetic(640, 480, 4)),
        224,
        224,
    );
    g.bench_function("rotate90_224", |b| {
        b.iter(|| preprocess::rotate(black_box(&src), preprocess::Rotation::Cw90));
    });
    let big = preprocess::nv21_to_argb(&YuvNv21Image::synthetic(640, 480, 5));
    g.bench_function("center_crop_480_from_vga", |b| {
        b.iter(|| preprocess::center_crop(black_box(&big), 480, 480));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_nv21_to_argb,
    bench_resize,
    bench_normalize_and_quantize,
    bench_rotate_and_crop
);
criterion_main!(benches);
