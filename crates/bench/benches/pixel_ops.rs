//! Microbenchmarks of the *real* pre-processing implementations (the
//! §II-B algorithm inventory), across the input resolutions of Table I.
//! These measure the host implementations that back the calibrated cost
//! model. Plain `Instant`-based timing — run with `cargo bench`.

use aitax_bench::bench_case;
use aitax_pipeline::image::YuvNv21Image;
use aitax_pipeline::preprocess;
use aitax_tensor::QuantParams;
use std::hint::black_box;

fn bench_nv21_to_argb() {
    for (w, h) in [(320, 240), (640, 480), (1280, 720)] {
        let frame = YuvNv21Image::synthetic(w, h, 1);
        bench_case(&format!("nv21_to_argb/{w}x{h}"), 20, || {
            preprocess::nv21_to_argb(black_box(&frame))
        });
    }
}

fn bench_resize() {
    let src = preprocess::nv21_to_argb(&YuvNv21Image::synthetic(640, 480, 2));
    // Table I model input resolutions.
    for side in [224usize, 227, 299, 300, 331, 513] {
        bench_case(&format!("resize_bilinear/{side}"), 20, || {
            preprocess::resize_bilinear(black_box(&src), side, side)
        });
    }
}

fn bench_normalize_and_quantize() {
    let src = preprocess::resize_bilinear(
        &preprocess::nv21_to_argb(&YuvNv21Image::synthetic(640, 480, 3)),
        224,
        224,
    );
    bench_case("type_conversion/normalize_fp32_224", 20, || {
        preprocess::normalize_to_tensor(black_box(&src), 127.5, 127.5)
    });
    let params = QuantParams::from_range(0.0, 255.0);
    bench_case("type_conversion/quantize_int8_224", 20, || {
        preprocess::quantize_to_tensor(black_box(&src), params)
    });
}

fn bench_rotate_and_crop() {
    let src = preprocess::resize_bilinear(
        &preprocess::nv21_to_argb(&YuvNv21Image::synthetic(640, 480, 4)),
        224,
        224,
    );
    bench_case("geometry/rotate90_224", 20, || {
        preprocess::rotate(black_box(&src), preprocess::Rotation::Cw90)
    });
    let big = preprocess::nv21_to_argb(&YuvNv21Image::synthetic(640, 480, 5));
    bench_case("geometry/center_crop_480_from_vga", 20, || {
        preprocess::center_crop(black_box(&big), 480, 480)
    });
}

fn main() {
    bench_nv21_to_argb();
    bench_resize();
    bench_normalize_and_quantize();
    bench_rotate_and_crop();
}
