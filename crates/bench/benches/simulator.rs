//! Benchmarks of the simulator itself: event-calendar throughput,
//! scheduler overhead, NNAPI partitioning, and full end-to-end pipeline
//! iterations — the cost of *running* each paper experiment. Plain
//! `Instant`-based timing — run with `cargo bench`.

use aitax_bench::bench_case;
use aitax_core::pipeline::E2eConfig;
use aitax_core::runmode::RunMode;
use aitax_des::{Calendar, SimSpan};
use aitax_framework::{Engine, Session};
use aitax_kernel::{Machine, TaskSpec, Work};
use aitax_models::zoo::{ModelId, Zoo};
use aitax_soc::{SocCatalog, SocId};
use aitax_tensor::DType;
use std::hint::black_box;
use std::sync::Arc;

fn bench_calendar() {
    bench_case("des/calendar_10k_events", 30, || {
        let mut cal = Calendar::new();
        for i in 0..10_000u64 {
            cal.schedule_after(SimSpan::from_ns((i * 7919) % 100_000));
        }
        while cal.next().is_some() {}
        black_box(cal.now())
    });
}

fn bench_scheduler() {
    bench_case("scheduler/1000_mixed_tasks", 20, || {
        let mut m = Machine::new(SocCatalog::get(SocId::Sd845), 1);
        for i in 0..1000 {
            let spec = match i % 3 {
                0 => TaskSpec::foreground("f", Work::Fp32Flops(5e6)),
                1 => TaskSpec::background("b", Work::Cycles(3e5)),
                _ => TaskSpec::nnapi_fallback("n", Work::Int8Ops(5e6)),
            };
            m.submit_cpu(spec, |_| {});
        }
        m.run_until_idle();
        black_box(m.now())
    });
}

fn bench_compilation() {
    let soc = SocCatalog::get(SocId::Sd845);
    for (name, id) in [
        ("mobilenet_v1", ModelId::MobileNetV1),
        ("inception_v4", ModelId::InceptionV4),
    ] {
        let graph = Arc::new(Zoo::entry(id).build_graph_with(DType::I8));
        bench_case(&format!("nnapi_compile/{name}"), 30, || {
            Session::compile(Engine::nnapi(), black_box(graph.clone()), soc).unwrap()
        });
    }
}

fn bench_e2e_iteration() {
    // Host cost of simulating 10 app iterations — the building block of
    // every figure harness.
    bench_case("e2e_simulation/mobilenet_app_10_iterations", 10, || {
        E2eConfig::new(ModelId::MobileNetV1, DType::I8)
            .engine(Engine::nnapi())
            .run_mode(RunMode::AndroidApp)
            .iterations(10)
            .seed(1)
            .run()
    });
    bench_case(
        "e2e_simulation/inception_v3_benchmark_5_iterations",
        10,
        || {
            E2eConfig::new(ModelId::InceptionV3, DType::F32)
                .iterations(5)
                .seed(1)
                .run()
        },
    );
}

fn main() {
    bench_calendar();
    bench_scheduler();
    bench_compilation();
    bench_e2e_iteration();
}
