//! Criterion benchmarks of the simulator itself: event-calendar
//! throughput, scheduler overhead, NNAPI partitioning, and full
//! end-to-end pipeline iterations — the cost of *running* each paper
//! experiment.

use aitax_core::pipeline::E2eConfig;
use aitax_core::runmode::RunMode;
use aitax_des::{Calendar, SimSpan};
use aitax_framework::{Engine, Session};
use aitax_kernel::{Machine, TaskSpec, Work};
use aitax_models::zoo::{ModelId, Zoo};
use aitax_soc::{SocCatalog, SocId};
use aitax_tensor::DType;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::rc::Rc;

fn bench_calendar(c: &mut Criterion) {
    let mut g = c.benchmark_group("des");
    g.sample_size(30);
    g.bench_function("calendar_10k_events", |b| {
        b.iter(|| {
            let mut cal = Calendar::new();
            for i in 0..10_000u64 {
                cal.schedule_after(SimSpan::from_ns((i * 7919) % 100_000));
            }
            while cal.next().is_some() {}
            black_box(cal.now())
        })
    });
    g.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler");
    g.sample_size(20);
    g.bench_function("1000_mixed_tasks", |b| {
        b.iter(|| {
            let mut m = Machine::new(SocCatalog::get(SocId::Sd845), 1);
            for i in 0..1000 {
                let spec = match i % 3 {
                    0 => TaskSpec::foreground("f", Work::Fp32Flops(5e6)),
                    1 => TaskSpec::background("b", Work::Cycles(3e5)),
                    _ => TaskSpec::nnapi_fallback("n", Work::Int8Ops(5e6)),
                };
                m.submit_cpu(spec, |_| {});
            }
            m.run_until_idle();
            black_box(m.now())
        })
    });
    g.finish();
}

fn bench_compilation(c: &mut Criterion) {
    let mut g = c.benchmark_group("nnapi_compile");
    g.sample_size(30);
    let soc = SocCatalog::get(SocId::Sd845);
    for (name, id) in [
        ("mobilenet_v1", ModelId::MobileNetV1),
        ("inception_v4", ModelId::InceptionV4),
    ] {
        let graph = Rc::new(Zoo::entry(id).build_graph_with(DType::I8));
        g.bench_function(name, |b| {
            b.iter(|| {
                Session::compile(Engine::nnapi(), black_box(graph.clone()), &soc).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_e2e_iteration(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2e_simulation");
    g.sample_size(10);
    // Host cost of simulating 10 app iterations — the building block of
    // every figure harness.
    g.bench_function("mobilenet_app_10_iterations", |b| {
        b.iter(|| {
            E2eConfig::new(ModelId::MobileNetV1, DType::I8)
                .engine(Engine::nnapi())
                .run_mode(RunMode::AndroidApp)
                .iterations(10)
                .seed(1)
                .run()
        })
    });
    g.bench_function("inception_v3_benchmark_5_iterations", |b| {
        b.iter(|| {
            E2eConfig::new(ModelId::InceptionV3, DType::F32)
                .iterations(5)
                .seed(1)
                .run()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_calendar,
    bench_scheduler,
    bench_compilation,
    bench_e2e_iteration
);
criterion_main!(benches);
