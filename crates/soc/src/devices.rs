//! Accelerator block specifications: GPU, compute DSP, NPU.

use aitax_des::SimSpan;

/// An Adreno-class mobile GPU.
///
/// GPUs execute fp16/fp32 graphs through a delegate; each delegated
/// invocation pays a kernel-launch/synchronization overhead on top of the
/// arithmetic time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"Adreno 630"`.
    pub name: &'static str,
    /// Peak fp16 throughput in FLOP/s.
    pub fp16_flops: f64,
    /// Peak fp32 throughput in FLOP/s (usually half of fp16).
    pub fp32_flops: f64,
    /// Per-invocation launch + synchronization overhead.
    pub launch_overhead: SimSpan,
}

impl GpuSpec {
    /// Arithmetic time for `flops` floating-point operations at the given
    /// delivered efficiency (0–1], excluding launch overhead.
    ///
    /// # Panics
    ///
    /// Panics if `efficiency` is not in `(0, 1]`.
    pub fn exec_span(&self, flops: f64, fp16: bool, efficiency: f64) -> SimSpan {
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "efficiency must be in (0, 1]"
        );
        let peak = if fp16 {
            self.fp16_flops
        } else {
            self.fp32_flops
        };
        SimSpan::from_secs(flops / (peak * efficiency))
    }
}

/// A Hexagon-class compute DSP with HVX vector extensions.
///
/// The paper describes it as "reminiscent of a VLIW vector processing
/// engine" commonly marketed as an NPU. It is *loosely coupled*: every
/// invocation is a FastRPC round trip through the kernel driver (Fig. 7),
/// whose costs live in [`MemorySpec`](crate::MemorySpec) and
/// `aitax-kernel::fastrpc`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DspSpec {
    /// Marketing name, e.g. `"Hexagon 685"`.
    pub name: &'static str,
    /// Peak int8 throughput in op/s (HVX lanes × freq).
    pub int8_ops: f64,
    /// Peak fp32-equivalent throughput in FLOP/s. Small: HVX has no native
    /// float path on these generations, so fp32 graphs emulate or bounce
    /// back to the CPU.
    pub fp32_flops: f64,
    /// One-time cost of mapping the DSP process into an application
    /// (the "initial setup" of Fig. 8, paid at first use).
    pub session_setup: SimSpan,
    /// Fixed per-invocation processing overhead on the DSP side
    /// (argument unmarshalling, thread wake).
    pub invoke_overhead: SimSpan,
}

impl DspSpec {
    /// Arithmetic time for `ops` int8 operations at the given delivered
    /// efficiency (0–1], excluding RPC and invoke overheads.
    ///
    /// # Panics
    ///
    /// Panics if `efficiency` is not in `(0, 1]`.
    pub fn exec_span_int8(&self, ops: f64, efficiency: f64) -> SimSpan {
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "efficiency must be in (0, 1]"
        );
        SimSpan::from_secs(ops / (self.int8_ops * efficiency))
    }
}

/// A dedicated tensor accelerator (SD865-class chipsets).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NpuSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Peak int8 throughput in op/s.
    pub int8_ops: f64,
    /// Per-invocation overhead.
    pub invoke_overhead: SimSpan,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> GpuSpec {
        GpuSpec {
            name: "test-gpu",
            fp16_flops: 1e12,
            fp32_flops: 5e11,
            launch_overhead: SimSpan::from_us(200.0),
        }
    }

    #[test]
    fn gpu_fp16_twice_as_fast() {
        let g = gpu();
        let h = g.exec_span(1e9, true, 0.5);
        let f = g.exec_span(1e9, false, 0.5);
        assert_eq!(f.as_ns(), h.as_ns() * 2);
    }

    #[test]
    fn dsp_int8_scaling() {
        let d = DspSpec {
            name: "test-dsp",
            int8_ops: 2e11,
            fp32_flops: 1e9,
            session_setup: SimSpan::from_ms(20.0),
            invoke_overhead: SimSpan::from_us(100.0),
        };
        let full = d.exec_span_int8(2e11, 1.0);
        assert!((full.as_secs() - 1.0).abs() < 1e-9);
        let half_eff = d.exec_span_int8(2e11, 0.5);
        assert!((half_eff.as_secs() - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn gpu_rejects_zero_efficiency() {
        gpu().exec_span(1.0, true, 0.0);
    }
}
