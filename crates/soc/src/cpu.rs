//! CPU core and cluster specifications.

use aitax_des::SimSpan;

/// Whether a core belongs to the performance or efficiency cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClusterKind {
    /// Performance ("gold"/"prime") cores.
    Big,
    /// Efficiency ("silver") cores.
    Little,
}

/// Static description of one CPU core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuCoreSpec {
    /// Which cluster the core belongs to.
    pub kind: ClusterKind,
    /// Nominal (un-throttled) clock in Hz.
    pub freq_hz: f64,
    /// Peak fp32 FLOPs retired per cycle (NEON FMA width × pipes × 2).
    pub fp32_flops_per_cycle: f64,
    /// Peak int8 ops retired per cycle (dot-product instructions).
    pub int8_ops_per_cycle: f64,
    /// Cache-warmup penalty charged when a task migrates onto this core.
    ///
    /// The paper's Figure 6 attributes NNAPI's fallback slowness partly to
    /// "frequent CPU migrations"; this is the per-migration cost.
    pub migration_penalty: SimSpan,
}

impl CpuCoreSpec {
    /// Peak fp32 throughput in FLOP/s at nominal frequency.
    pub fn peak_fp32_flops(&self) -> f64 {
        self.freq_hz * self.fp32_flops_per_cycle
    }

    /// Peak int8 throughput in op/s at nominal frequency.
    pub fn peak_int8_ops(&self) -> f64 {
        self.freq_hz * self.int8_ops_per_cycle
    }

    /// Time to retire `cycles` core-cycles at a frequency multiplier
    /// (`1.0` = nominal; thermal throttling passes `< 1.0`).
    ///
    /// # Panics
    ///
    /// Panics if `freq_multiplier` is not positive.
    pub fn span_for_cycles(&self, cycles: f64, freq_multiplier: f64) -> SimSpan {
        assert!(
            freq_multiplier > 0.0,
            "frequency multiplier must be positive"
        );
        let secs = cycles / (self.freq_hz * freq_multiplier);
        SimSpan::from_secs(secs.max(0.0))
    }

    /// Cycles retired in `span` at a frequency multiplier.
    pub fn cycles_in_span(&self, span: SimSpan, freq_multiplier: f64) -> f64 {
        span.as_secs() * self.freq_hz * freq_multiplier
    }
}

/// A homogeneous cluster of cores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuClusterSpec {
    /// The per-core spec.
    pub core: CpuCoreSpec,
    /// How many cores the cluster has.
    pub count: usize,
}

/// Convenience constructor for a big cluster.
///
/// `flops_per_cycle` captures the microarchitecture generation (A73-class
/// ≈6, A75 ≈8, A76 ≈9, A77 ≈10 effective fp32 FLOPs/cycle). The int8
/// rate is 2× the fp32 rate: these cores predate the `sdot` dot-product
/// instructions, so quantized kernels run on widening multiplies.
pub fn big_cluster(
    count: usize,
    freq_ghz: f64,
    migration_penalty_us: f64,
    flops_per_cycle: f64,
) -> CpuClusterSpec {
    CpuClusterSpec {
        core: CpuCoreSpec {
            kind: ClusterKind::Big,
            freq_hz: freq_ghz * 1e9,
            fp32_flops_per_cycle: flops_per_cycle,
            int8_ops_per_cycle: flops_per_cycle * 2.0,
            migration_penalty: SimSpan::from_us(migration_penalty_us),
        },
        count,
    }
}

/// Convenience constructor for a little cluster.
pub fn little_cluster(count: usize, freq_ghz: f64, migration_penalty_us: f64) -> CpuClusterSpec {
    CpuClusterSpec {
        core: CpuCoreSpec {
            kind: ClusterKind::Little,
            freq_hz: freq_ghz * 1e9,
            // Single 128-bit NEON pipe → 4 fp32 FLOPs/cycle.
            fp32_flops_per_cycle: 4.0,
            int8_ops_per_cycle: 8.0,
            migration_penalty: SimSpan::from_us(migration_penalty_us),
        },
        count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core() -> CpuCoreSpec {
        big_cluster(1, 2.0, 50.0, 8.0).core
    }

    #[test]
    fn peak_throughputs() {
        let c = core();
        assert_eq!(c.peak_fp32_flops(), 16e9);
        assert_eq!(c.peak_int8_ops(), 32e9);
    }

    #[test]
    fn span_for_cycles_at_nominal() {
        let c = core();
        // 2e9 cycles at 2 GHz = 1 s.
        let s = c.span_for_cycles(2e9, 1.0);
        assert!((s.as_secs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn throttling_slows_execution() {
        let c = core();
        let nominal = c.span_for_cycles(1e9, 1.0);
        let throttled = c.span_for_cycles(1e9, 0.5);
        assert_eq!(throttled.as_ns(), nominal.as_ns() * 2);
    }

    #[test]
    fn cycles_span_round_trip() {
        let c = core();
        let span = c.span_for_cycles(123_456_789.0, 0.8);
        let cycles = c.cycles_in_span(span, 0.8);
        assert!((cycles - 123_456_789.0).abs() / 123_456_789.0 < 1e-6);
    }

    #[test]
    fn big_faster_than_little_per_cycle() {
        let b = big_cluster(1, 2.0, 50.0, 8.0).core;
        let l = little_cluster(1, 2.0, 50.0).core;
        assert!(b.peak_fp32_flops() > l.peak_fp32_flops());
        assert_eq!(b.kind, ClusterKind::Big);
        assert_eq!(l.kind, ClusterKind::Little);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_multiplier_panics() {
        core().span_for_cycles(1.0, 0.0);
    }
}
