//! Thermal model with frequency throttling.
//!
//! Mobile SoCs are "particularly susceptible to thermal throttling"
//! (paper §III-D); the authors only start runs once the CPU has cooled to
//! its ~33 °C idle temperature. We model chip temperature as a first-order
//! system: heating proportional to how many cores are busy, exponential
//! cooling toward ambient, and a piecewise frequency-multiplier curve.

use aitax_des::{SimSpan, SimTime};

/// Static thermal parameters of a chipset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalModel {
    /// Idle / ambient-coupled temperature in °C (paper: ≈33 °C).
    pub idle_temp_c: f64,
    /// Steady-state temperature rise in °C with all cores busy.
    pub max_rise_c: f64,
    /// Thermal time constant (how fast the chip heats/cools).
    pub time_constant: SimSpan,
    /// Temperature at which light throttling begins.
    pub soft_limit_c: f64,
    /// Temperature at which aggressive throttling begins.
    pub hard_limit_c: f64,
}

impl ThermalModel {
    /// Frequency multiplier for a given temperature.
    ///
    /// `1.0` below the soft limit, `0.85` between soft and hard limits,
    /// `0.7` above the hard limit — a coarse but representative governor.
    pub fn freq_multiplier(&self, temp_c: f64) -> f64 {
        if temp_c < self.soft_limit_c {
            1.0
        } else if temp_c < self.hard_limit_c {
            0.85
        } else {
            0.7
        }
    }
}

/// Evolving thermal state of a running chip.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalState {
    model: ThermalModel,
    temp_c: f64,
    last_update: SimTime,
}

impl ThermalState {
    /// Starts at the idle temperature (the paper's cool-down protocol).
    pub fn new(model: ThermalModel) -> Self {
        ThermalState {
            temp_c: model.idle_temp_c,
            model,
            last_update: SimTime::ZERO,
        }
    }

    /// Starts at an explicit temperature (for warm-start experiments).
    pub fn with_temp(model: ThermalModel, temp_c: f64) -> Self {
        ThermalState {
            temp_c,
            model,
            last_update: SimTime::ZERO,
        }
    }

    /// Current temperature in °C.
    pub fn temp_c(&self) -> f64 {
        self.temp_c
    }

    /// Current frequency multiplier.
    pub fn freq_multiplier(&self) -> f64 {
        self.model.freq_multiplier(self.temp_c)
    }

    /// Advances the thermal state to `now` given the average busy fraction
    /// (0–1: fraction of cores active) since the last update.
    ///
    /// Uses the exact first-order step toward the utilization-dependent
    /// equilibrium `idle + busy_fraction × max_rise`.
    ///
    /// # Panics
    ///
    /// Panics if `busy_fraction` is outside `[0, 1]`.
    pub fn advance(&mut self, now: SimTime, busy_fraction: f64) {
        assert!(
            (0.0..=1.0).contains(&busy_fraction),
            "busy fraction must be in [0,1], got {busy_fraction}"
        );
        let dt = now.since(self.last_update);
        self.last_update = now;
        if dt.is_zero() {
            return;
        }
        let target = self.model.idle_temp_c + busy_fraction * self.model.max_rise_c;
        let tau = self.model.time_constant.as_secs();
        let alpha = if tau > 0.0 {
            1.0 - (-dt.as_secs() / tau).exp()
        } else {
            1.0
        };
        self.temp_c += (target - self.temp_c) * alpha;
    }
}

/// A representative phone thermal envelope.
pub fn default_phone_thermals() -> ThermalModel {
    ThermalModel {
        idle_temp_c: 33.0,
        max_rise_c: 45.0,
        time_constant: SimSpan::from_secs(20.0),
        soft_limit_c: 65.0,
        hard_limit_c: 78.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_idle_temperature() {
        let st = ThermalState::new(default_phone_thermals());
        assert_eq!(st.temp_c(), 33.0);
        assert_eq!(st.freq_multiplier(), 1.0);
    }

    #[test]
    fn heats_toward_equilibrium_under_load() {
        let mut st = ThermalState::new(default_phone_thermals());
        st.advance(SimTime::from_ns(0), 1.0);
        st.advance(SimTime::ZERO + SimSpan::from_secs(200.0), 1.0);
        // After 10 time constants, essentially at equilibrium 33 + 45 = 78.
        assert!((st.temp_c() - 78.0).abs() < 0.1, "temp {}", st.temp_c());
        assert!(st.freq_multiplier() < 1.0);
    }

    #[test]
    fn cools_back_when_idle() {
        let model = default_phone_thermals();
        let mut st = ThermalState::with_temp(model, 70.0);
        st.advance(SimTime::ZERO + SimSpan::from_secs(200.0), 0.0);
        assert!((st.temp_c() - 33.0).abs() < 0.1);
    }

    #[test]
    fn throttle_curve_is_monotone() {
        let m = default_phone_thermals();
        assert_eq!(m.freq_multiplier(40.0), 1.0);
        assert_eq!(m.freq_multiplier(70.0), 0.85);
        assert_eq!(m.freq_multiplier(90.0), 0.7);
    }

    #[test]
    fn zero_dt_is_noop() {
        let mut st = ThermalState::new(default_phone_thermals());
        let before = st.temp_c();
        st.advance(SimTime::ZERO, 1.0);
        assert_eq!(st.temp_c(), before);
    }

    #[test]
    #[should_panic(expected = "busy fraction")]
    fn invalid_busy_fraction_panics() {
        let mut st = ThermalState::new(default_phone_thermals());
        st.advance(SimTime::from_ns(1), 1.5);
    }
}
