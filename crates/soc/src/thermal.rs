//! Thermal model with frequency throttling.
//!
//! Mobile SoCs are "particularly susceptible to thermal throttling"
//! (paper §III-D); the authors only start runs once the CPU has cooled to
//! its ~33 °C idle temperature. We model chip temperature as a first-order
//! system: heating proportional to dissipated power (watts metered from
//! the per-rail power model), exponential cooling toward ambient, and a
//! piecewise frequency-multiplier curve — closing the power → heat →
//! throttle → performance loop.

use aitax_des::{SimSpan, SimTime};

/// Static thermal parameters of a chipset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalModel {
    /// Idle / ambient-coupled temperature in °C (paper: ≈33 °C).
    pub idle_temp_c: f64,
    /// Steady-state temperature rise per watt of sustained dissipation,
    /// in °C/W — the junction-to-ambient thermal resistance of a
    /// passively cooled handset.
    pub rise_c_per_watt: f64,
    /// Thermal time constant (how fast the chip heats/cools).
    pub time_constant: SimSpan,
    /// Temperature at which light throttling begins.
    pub soft_limit_c: f64,
    /// Temperature at which aggressive throttling begins.
    pub hard_limit_c: f64,
}

impl ThermalModel {
    /// Frequency multiplier for a given temperature.
    ///
    /// `1.0` below the soft limit, `0.85` between soft and hard limits,
    /// `0.7` above the hard limit — a coarse but representative governor.
    pub fn freq_multiplier(&self, temp_c: f64) -> f64 {
        if temp_c < self.soft_limit_c {
            1.0
        } else if temp_c < self.hard_limit_c {
            0.85
        } else {
            0.7
        }
    }

    /// Equilibrium temperature under a sustained power draw.
    pub fn equilibrium_c(&self, watts: f64) -> f64 {
        self.idle_temp_c + watts * self.rise_c_per_watt
    }
}

/// Evolving thermal state of a running chip.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalState {
    model: ThermalModel,
    temp_c: f64,
    last_update: SimTime,
}

impl ThermalState {
    /// Starts at the idle temperature (the paper's cool-down protocol).
    pub fn new(model: ThermalModel) -> Self {
        ThermalState {
            temp_c: model.idle_temp_c,
            model,
            last_update: SimTime::ZERO,
        }
    }

    /// Starts at an explicit temperature (for warm-start experiments).
    pub fn with_temp(model: ThermalModel, temp_c: f64) -> Self {
        ThermalState {
            temp_c,
            model,
            last_update: SimTime::ZERO,
        }
    }

    /// Current temperature in °C.
    pub fn temp_c(&self) -> f64 {
        self.temp_c
    }

    /// Forces the temperature to `temp_c` at instant `now`, e.g. to model
    /// a skin-temperature emergency injected mid-run. Unlike
    /// [`ThermalState::with_temp`] this keeps the integration clock
    /// consistent, so the next [`ThermalState::advance`] relaxes from the
    /// forced temperature rather than replaying the whole elapsed run.
    pub fn force_temp(&mut self, now: SimTime, temp_c: f64) {
        assert!(temp_c.is_finite(), "temperature must be finite");
        self.temp_c = temp_c;
        self.last_update = now;
    }

    /// Current frequency multiplier.
    pub fn freq_multiplier(&self) -> f64 {
        self.model.freq_multiplier(self.temp_c)
    }

    /// Advances the thermal state to `now` given the average power
    /// dissipated (in watts) since the last update.
    ///
    /// Uses the exact first-order step toward the power-dependent
    /// equilibrium `idle + watts × rise_per_watt`.
    ///
    /// # Panics
    ///
    /// Panics if `watts` is negative or not finite.
    pub fn advance(&mut self, now: SimTime, watts: f64) {
        assert!(
            watts.is_finite() && watts >= 0.0,
            "power must be finite and non-negative, got {watts} W"
        );
        let dt = now.since(self.last_update);
        self.last_update = now;
        if dt.is_zero() {
            return;
        }
        let target = self.model.equilibrium_c(watts);
        let tau = self.model.time_constant.as_secs();
        let alpha = if tau > 0.0 {
            1.0 - (-dt.as_secs() / tau).exp()
        } else {
            1.0
        };
        self.temp_c += (target - self.temp_c) * alpha;
    }
}

/// A representative phone thermal envelope.
///
/// `rise_c_per_watt` is calibrated so a sustained four-big-core inference
/// loop on the SD845 (≈9 W package power) settles in the mid-50s °C —
/// warm but unthrottled — while adding GPU or full-chip load pushes past
/// the 65 °C soft limit, reproducing the §III-D throttling regime.
pub fn default_phone_thermals() -> ThermalModel {
    ThermalModel {
        idle_temp_c: 33.0,
        rise_c_per_watt: 2.5,
        time_constant: SimSpan::from_secs(20.0),
        soft_limit_c: 65.0,
        hard_limit_c: 78.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_idle_temperature() {
        let st = ThermalState::new(default_phone_thermals());
        assert_eq!(st.temp_c(), 33.0);
        assert_eq!(st.freq_multiplier(), 1.0);
    }

    #[test]
    fn heats_toward_power_equilibrium() {
        let mut st = ThermalState::new(default_phone_thermals());
        st.advance(SimTime::from_ns(0), 14.0);
        st.advance(SimTime::ZERO + SimSpan::from_secs(200.0), 14.0);
        // After 10 time constants, essentially at equilibrium 33 + 14 × 2.5 = 68.
        assert!((st.temp_c() - 68.0).abs() < 0.1, "temp {}", st.temp_c());
        assert!(st.freq_multiplier() < 1.0);
    }

    #[test]
    fn moderate_cpu_load_stays_unthrottled() {
        // A 4-big-core inference loop (~9 W) must not throttle: the paper's
        // benchmark-mode figures are measured unthrottled after cool-down.
        let m = default_phone_thermals();
        assert!(m.equilibrium_c(9.0) < m.soft_limit_c);
        assert!(m.equilibrium_c(14.0) > m.soft_limit_c);
    }

    #[test]
    fn cools_back_when_idle() {
        let model = default_phone_thermals();
        let mut st = ThermalState::with_temp(model, 70.0);
        st.advance(SimTime::ZERO + SimSpan::from_secs(200.0), 0.0);
        assert!((st.temp_c() - 33.0).abs() < 0.1);
    }

    #[test]
    fn throttle_curve_is_monotone() {
        let m = default_phone_thermals();
        assert_eq!(m.freq_multiplier(40.0), 1.0);
        assert_eq!(m.freq_multiplier(70.0), 0.85);
        assert_eq!(m.freq_multiplier(90.0), 0.7);
    }

    #[test]
    fn zero_dt_is_noop() {
        let mut st = ThermalState::new(default_phone_thermals());
        let before = st.temp_c();
        st.advance(SimTime::ZERO, 5.0);
        assert_eq!(st.temp_c(), before);
    }

    #[test]
    fn force_temp_keeps_integration_clock() {
        let mut st = ThermalState::new(default_phone_thermals());
        st.advance(SimTime::ZERO + SimSpan::from_secs(10.0), 0.0);
        st.force_temp(SimTime::ZERO + SimSpan::from_secs(10.0), 85.0);
        assert_eq!(st.temp_c(), 85.0);
        assert_eq!(st.freq_multiplier(), 0.7);
        // A zero-length advance must not relax the forced temperature.
        st.advance(SimTime::ZERO + SimSpan::from_secs(10.0), 0.0);
        assert_eq!(st.temp_c(), 85.0);
        // But cooling proceeds normally from the forced point.
        st.advance(SimTime::ZERO + SimSpan::from_secs(210.0), 0.0);
        assert!((st.temp_c() - 33.0).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "power must be finite")]
    fn negative_power_panics() {
        let mut st = ThermalState::new(default_phone_thermals());
        st.advance(SimTime::from_ns(1), -1.0);
    }
}
