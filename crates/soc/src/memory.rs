//! Memory subsystem: AXI interconnect, DMA and cache-maintenance costs.
//!
//! The DSP on these chipsets is *loosely coupled* (paper §II-D): it sits
//! behind the AXI fabric with its own memory subsystem, so every offload
//! crosses the interconnect and requires CPU cache maintenance to keep the
//! shared buffers coherent (the "cache flush" arrow in Fig. 7).

use aitax_des::SimSpan;

/// Memory/interconnect parameters of an SoC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemorySpec {
    /// Sustained AXI/DRAM bandwidth in bytes/s seen by one initiator.
    pub axi_bytes_per_sec: f64,
    /// Fixed latency of starting a DMA transfer.
    pub dma_setup: SimSpan,
    /// Cache maintenance cost per byte (clean+invalidate walk).
    pub cache_flush_ns_per_byte: f64,
    /// Fixed cost of any cache-maintenance call (kernel entry, barriers).
    pub cache_flush_fixed: SimSpan,
}

impl MemorySpec {
    /// Time to move `bytes` across the AXI fabric, including DMA setup.
    pub fn transfer_span(&self, bytes: u64) -> SimSpan {
        self.dma_setup + SimSpan::from_secs(bytes as f64 / self.axi_bytes_per_sec)
    }

    /// Time to clean/invalidate `bytes` of cached data before handing a
    /// buffer to a loosely-coupled accelerator.
    pub fn cache_flush_span(&self, bytes: u64) -> SimSpan {
        self.cache_flush_fixed
            + SimSpan::from_ns((bytes as f64 * self.cache_flush_ns_per_byte) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> MemorySpec {
        MemorySpec {
            axi_bytes_per_sec: 10e9,
            dma_setup: SimSpan::from_us(5.0),
            cache_flush_ns_per_byte: 0.1,
            cache_flush_fixed: SimSpan::from_us(10.0),
        }
    }

    #[test]
    fn transfer_includes_setup() {
        let m = mem();
        // 10 GB/s → 1 MB in 100 µs, plus 5 µs setup.
        let s = m.transfer_span(1_000_000);
        assert!((s.as_us() - 105.0).abs() < 0.1, "{}", s);
    }

    #[test]
    fn flush_scales_with_bytes() {
        let m = mem();
        let small = m.cache_flush_span(1_000);
        let large = m.cache_flush_span(1_000_000);
        assert!(large > small);
        // 1 MB × 0.1 ns/B = 100 µs + 10 µs fixed.
        assert!((large.as_us() - 110.0).abs() < 0.1, "{}", large);
    }

    #[test]
    fn zero_bytes_costs_only_fixed_overheads() {
        let m = mem();
        assert_eq!(m.transfer_span(0), m.dma_setup);
        assert_eq!(m.cache_flush_span(0), m.cache_flush_fixed);
    }
}
