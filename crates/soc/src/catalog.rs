//! The Table II platform catalog.
//!
//! Calibrated [`SocSpec`] instances for the four Snapdragon chipsets the
//! paper studied. Peak numbers are derived from public microarchitecture
//! data (NEON/HVX widths × clocks); invocation overheads are calibrated so
//! the SD845 ("Google Pixel 3") reproduces the latencies the paper quotes
//! (e.g. Inception-v3 fp32 ≈ 250 ms CPU benchmark inference, MobileNet-v1
//! int8 DSP inference ≈ 10 ms, FastRPC session setup amortizing per Fig. 8).

use aitax_des::SimSpan;
use aitax_power::{AccelRailSpec, CoreRailSpec, InterconnectPowerSpec, PowerSpec};

use crate::cpu::{big_cluster, little_cluster};
use crate::devices::{DspSpec, GpuSpec, NpuSpec};
use crate::memory::MemorySpec;
use crate::thermal::default_phone_thermals;
use crate::SocSpec;

/// Identifier for a catalog platform (one row of Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SocId {
    /// Snapdragon 835 (Open-Q 835 µSOM): Adreno 540, Hexagon 682.
    Sd835,
    /// Snapdragon 845 (Google Pixel 3): Adreno 630, Hexagon 685. The
    /// platform all headline results are reported on.
    Sd845,
    /// Snapdragon 855 HDK: Adreno 640, Hexagon 690.
    Sd855,
    /// Snapdragon 865 HDK: Adreno 650, Hexagon 698 (+ tensor accelerator).
    Sd865,
}

impl SocId {
    /// All platforms, oldest first.
    pub const ALL: [SocId; 4] = [SocId::Sd835, SocId::Sd845, SocId::Sd855, SocId::Sd865];
}

impl std::fmt::Display for SocId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SocId::Sd835 => "SD835",
            SocId::Sd845 => "SD845",
            SocId::Sd855 => "SD855",
            SocId::Sd865 => "SD865",
        };
        f.write_str(s)
    }
}

/// Factory for catalog platforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SocCatalog;

/// The lazily-built catalog. Table II is immutable data, so every caller
/// shares one `'static` copy: a run's setup path borrows its spec instead
/// of rebuilding four cluster/rail vectors per lookup.
static CATALOG: std::sync::OnceLock<[SocSpec; 4]> = std::sync::OnceLock::new();

impl SocCatalog {
    /// The spec for a platform, borrowed from the shared static catalog.
    pub fn get(id: SocId) -> &'static SocSpec {
        let idx = match id {
            SocId::Sd835 => 0,
            SocId::Sd845 => 1,
            SocId::Sd855 => 2,
            SocId::Sd865 => 3,
        };
        &Self::all()[idx]
    }

    /// All specs, oldest first (same order as [`SocId::ALL`]).
    pub fn all() -> &'static [SocSpec; 4] {
        CATALOG.get_or_init(|| [sd835(), sd845(), sd855(), sd865()])
    }
}

/// Builds flattened per-core rails from `(name, count, GHz, peak dynamic W,
/// leakage W)` cluster tuples, big clusters first — mirroring how
/// [`SocSpec::cores`] flattens [`CpuClusterSpec`](crate::CpuClusterSpec)s.
///
/// CPU rails are not power-gated: cluster rails stay up between scheduler
/// ticks, so idle cores pay their leakage floor. That static term (plus
/// the uncore floor) is what makes race-to-idle win — the same dynamic
/// work done on more cores finishes sooner and pays less leakage.
fn cpu_rails(clusters: &[(&'static str, usize, f64, f64, f64)]) -> Vec<CoreRailSpec> {
    clusters
        .iter()
        .flat_map(|&(name, count, ghz, peak_w, leak_w)| {
            (0..count).map(move |_| CoreRailSpec::scaled(name, ghz * 1e9, peak_w, leak_w, false))
        })
        .collect()
}

fn common_memory() -> MemorySpec {
    MemorySpec {
        axi_bytes_per_sec: 12.0e9,
        dma_setup: SimSpan::from_us(8.0),
        cache_flush_ns_per_byte: 0.08,
        cache_flush_fixed: SimSpan::from_us(15.0),
    }
}

fn sd835() -> SocSpec {
    SocSpec {
        name: "Snapdragon 835",
        host_system: "Open-Q 835 \u{00b5}SOM",
        clusters: vec![
            big_cluster(4, 2.45, 60.0, 6.0),
            little_cluster(4, 1.90, 80.0),
        ],
        gpu: GpuSpec {
            name: "Adreno 540",
            fp16_flops: 1.13e12,
            fp32_flops: 0.567e12,
            launch_overhead: SimSpan::from_us(350.0),
        },
        dsp: DspSpec {
            name: "Hexagon 682",
            int8_ops: 200.0e9,
            fp32_flops: 8.0e9,
            session_setup: SimSpan::from_ms(28.0),
            invoke_overhead: SimSpan::from_us(180.0),
        },
        npu: None,
        memory: MemorySpec {
            axi_bytes_per_sec: 10.0e9,
            ..common_memory()
        },
        thermal: default_phone_thermals(),
        power: PowerSpec {
            core_rails: cpu_rails(&[("big", 4, 2.45, 1.6, 0.06), ("little", 4, 1.90, 0.40, 0.02)]),
            gpu: AccelRailSpec::new("adreno-540", 2.2, 0.10, true),
            dsp: AccelRailSpec::new("hexagon-682", 0.9, 0.05, true),
            npu: None,
            interconnect: InterconnectPowerSpec {
                energy_per_byte_j: 90e-12,
                uncore_w: 0.85,
            },
        },
    }
}

fn sd845() -> SocSpec {
    SocSpec {
        name: "Snapdragon 845",
        host_system: "Google Pixel 3",
        clusters: vec![
            big_cluster(4, 2.80, 60.0, 8.0),
            little_cluster(4, 1.77, 80.0),
        ],
        gpu: GpuSpec {
            name: "Adreno 630",
            fp16_flops: 1.45e12,
            fp32_flops: 0.727e12,
            launch_overhead: SimSpan::from_us(300.0),
        },
        dsp: DspSpec {
            name: "Hexagon 685",
            int8_ops: 300.0e9,
            fp32_flops: 10.0e9,
            session_setup: SimSpan::from_ms(25.0),
            invoke_overhead: SimSpan::from_us(150.0),
        },
        npu: None,
        memory: common_memory(),
        thermal: default_phone_thermals(),
        power: PowerSpec {
            core_rails: cpu_rails(&[("big", 4, 2.80, 1.9, 0.07), ("little", 4, 1.77, 0.45, 0.02)]),
            gpu: AccelRailSpec::new("adreno-630", 2.5, 0.10, true),
            dsp: AccelRailSpec::new("hexagon-685", 0.8, 0.05, true),
            npu: None,
            interconnect: InterconnectPowerSpec {
                energy_per_byte_j: 80e-12,
                uncore_w: 0.90,
            },
        },
    }
}

fn sd855() -> SocSpec {
    SocSpec {
        name: "Snapdragon 855",
        host_system: "Snapdragon 855 HDK",
        clusters: vec![
            big_cluster(1, 2.84, 60.0, 9.0),
            big_cluster(3, 2.42, 60.0, 9.0),
            little_cluster(4, 1.78, 80.0),
        ],
        gpu: GpuSpec {
            name: "Adreno 640",
            fp16_flops: 1.80e12,
            fp32_flops: 0.90e12,
            launch_overhead: SimSpan::from_us(280.0),
        },
        dsp: DspSpec {
            name: "Hexagon 690",
            int8_ops: 500.0e9,
            fp32_flops: 12.0e9,
            session_setup: SimSpan::from_ms(22.0),
            invoke_overhead: SimSpan::from_us(130.0),
        },
        npu: None,
        memory: MemorySpec {
            axi_bytes_per_sec: 15.0e9,
            ..common_memory()
        },
        thermal: default_phone_thermals(),
        power: PowerSpec {
            core_rails: cpu_rails(&[
                ("prime", 1, 2.84, 2.1, 0.08),
                ("big", 3, 2.42, 1.5, 0.07),
                ("little", 4, 1.78, 0.40, 0.02),
            ]),
            gpu: AccelRailSpec::new("adreno-640", 2.8, 0.12, true),
            dsp: AccelRailSpec::new("hexagon-690", 0.9, 0.05, true),
            npu: None,
            interconnect: InterconnectPowerSpec {
                energy_per_byte_j: 70e-12,
                uncore_w: 0.95,
            },
        },
    }
}

fn sd865() -> SocSpec {
    SocSpec {
        name: "Snapdragon 865",
        host_system: "Snapdragon 865 HDK",
        clusters: vec![
            big_cluster(1, 2.84, 60.0, 10.0),
            big_cluster(3, 2.42, 60.0, 10.0),
            little_cluster(4, 1.80, 80.0),
        ],
        gpu: GpuSpec {
            name: "Adreno 650",
            fp16_flops: 2.50e12,
            fp32_flops: 1.25e12,
            launch_overhead: SimSpan::from_us(250.0),
        },
        dsp: DspSpec {
            name: "Hexagon 698",
            int8_ops: 800.0e9,
            fp32_flops: 15.0e9,
            session_setup: SimSpan::from_ms(20.0),
            invoke_overhead: SimSpan::from_us(110.0),
        },
        npu: Some(NpuSpec {
            name: "Hexagon Tensor Accelerator",
            int8_ops: 1.6e12,
            invoke_overhead: SimSpan::from_us(100.0),
        }),
        memory: MemorySpec {
            axi_bytes_per_sec: 17.0e9,
            ..common_memory()
        },
        thermal: default_phone_thermals(),
        power: PowerSpec {
            core_rails: cpu_rails(&[
                ("prime", 1, 2.84, 2.2, 0.08),
                ("big", 3, 2.42, 1.5, 0.07),
                ("little", 4, 1.80, 0.40, 0.02),
            ]),
            gpu: AccelRailSpec::new("adreno-650", 3.2, 0.12, true),
            dsp: AccelRailSpec::new("hexagon-698", 1.0, 0.05, true),
            npu: Some(AccelRailSpec::new("hta", 1.3, 0.04, true)),
            interconnect: InterconnectPowerSpec {
                energy_per_byte_j: 60e-12,
                uncore_w: 1.00,
            },
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClusterKind;

    #[test]
    fn catalog_has_all_table2_rows() {
        let all = SocCatalog::all();
        assert_eq!(all.len(), 4);
        let names: Vec<&str> = all.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            [
                "Snapdragon 835",
                "Snapdragon 845",
                "Snapdragon 855",
                "Snapdragon 865"
            ]
        );
    }

    #[test]
    fn every_platform_has_eight_cores() {
        for soc in SocCatalog::all() {
            assert_eq!(soc.core_count(), 8, "{}", soc.name);
            let big = soc.big_core_ids().len();
            let little = soc.little_core_ids().len();
            assert_eq!(big, 4, "{}", soc.name);
            assert_eq!(little, 4, "{}", soc.name);
        }
    }

    #[test]
    fn newer_chipsets_have_faster_dsps() {
        let specs = SocCatalog::all();
        for pair in specs.windows(2) {
            assert!(
                pair[1].dsp.int8_ops > pair[0].dsp.int8_ops,
                "{} should beat {}",
                pair[1].dsp.name,
                pair[0].dsp.name
            );
        }
    }

    #[test]
    fn only_sd865_has_npu() {
        assert!(SocCatalog::get(SocId::Sd835).npu.is_none());
        assert!(SocCatalog::get(SocId::Sd845).npu.is_none());
        assert!(SocCatalog::get(SocId::Sd855).npu.is_none());
        assert!(SocCatalog::get(SocId::Sd865).npu.is_some());
    }

    #[test]
    fn pixel3_is_the_sd845() {
        let soc = SocCatalog::get(SocId::Sd845);
        assert_eq!(soc.host_system, "Google Pixel 3");
        assert_eq!(soc.gpu.name, "Adreno 630");
        assert_eq!(soc.dsp.name, "Hexagon 685");
    }

    #[test]
    fn big_cores_listed_before_little() {
        let soc = SocCatalog::get(SocId::Sd855);
        let cores = soc.cores();
        let first_little = cores.iter().position(|c| c.kind == ClusterKind::Little);
        let last_big = cores.iter().rposition(|c| c.kind == ClusterKind::Big);
        assert!(last_big < first_little || first_little.is_none());
    }

    #[test]
    fn big_core_fp32_throughput_calibration() {
        // SD845 big core: 2.8 GHz × 8 FLOPs/cycle = 22.4 GFLOP/s peak.
        let soc = SocCatalog::get(SocId::Sd845);
        let big = soc.cores()[0];
        assert!((big.peak_fp32_flops() - 22.4e9).abs() < 1e6);
    }

    #[test]
    fn display_names() {
        assert_eq!(SocId::Sd845.to_string(), "SD845");
        assert_eq!(SocId::ALL.len(), 4);
    }

    #[test]
    fn power_rails_align_with_cores() {
        for soc in SocCatalog::all() {
            assert_eq!(soc.power.core_rails.len(), soc.core_count(), "{}", soc.name);
            // Phones idle cool: the ungated floor stays well under 1.5 W.
            assert!(soc.power.idle_floor_w() < 1.5, "{}", soc.name);
        }
        assert!(SocCatalog::get(SocId::Sd865).power.npu.is_some());
        assert!(SocCatalog::get(SocId::Sd845).power.npu.is_none());
    }

    #[test]
    fn dsp_energy_per_op_improves_across_generations() {
        // §III-C: newer chipsets spend fewer picojoules per int8 op on the
        // DSP, which is what makes offload the energy winner over time.
        let specs = SocCatalog::all();
        for pair in specs.windows(2) {
            let pj = |s: &SocSpec| s.power.dsp.busy_w / s.dsp.int8_ops;
            assert!(
                pj(&pair[1]) < pj(&pair[0]),
                "{} should be more efficient than {}",
                pair[1].name,
                pair[0].name
            );
        }
    }
}
