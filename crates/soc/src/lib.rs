//! Mobile SoC hardware models for the `aitax` simulator.
//!
//! The paper's measurements span four Qualcomm Snapdragon chipsets
//! (Table II: SD835, SD845, SD855, SD865), each pairing a big.LITTLE CPU
//! with an Adreno-class GPU and a Hexagon-class compute DSP. Real silicon is
//! not available in this environment, so this crate models the *performance-
//! relevant* properties of those parts:
//!
//! * [`CpuCoreSpec`]/[`CpuClusterSpec`] — per-core frequency and peak
//!   per-cycle arithmetic throughput, plus the migration (cache-warmup)
//!   penalty the scheduler charges when a task hops cores,
//! * [`GpuSpec`] / [`DspSpec`] — accelerator throughput and invocation
//!   overheads (kernel launch, FastRPC),
//! * [`MemorySpec`] — AXI bandwidth, DMA and cache-flush costs that dominate
//!   the offload path of Figure 7,
//! * [`ThermalModel`] — the throttling behaviour that motivates the paper's
//!   §III-D cool-down methodology,
//! * [`catalog`] — calibrated instances for all four Table II platforms.
//!
//! Throughputs are *peak* numbers; achievable efficiency per operator kind
//! lives in `aitax-framework`'s cost model, mirroring how real frameworks
//! (not the silicon) determine delivered performance.

pub mod catalog;
pub mod cpu;
pub mod devices;
pub mod memory;
pub mod thermal;

pub use aitax_power::PowerSpec;
pub use catalog::{SocCatalog, SocId};
pub use cpu::{ClusterKind, CpuClusterSpec, CpuCoreSpec};
pub use devices::{DspSpec, GpuSpec, NpuSpec};
pub use memory::MemorySpec;
pub use thermal::{ThermalModel, ThermalState};

/// Full specification of one SoC platform (one row of Table II).
#[derive(Debug, Clone, PartialEq)]
pub struct SocSpec {
    /// Marketing name, e.g. `"Snapdragon 845"`.
    pub name: &'static str,
    /// Host system the paper measured it in, e.g. `"Google Pixel 3"`.
    pub host_system: &'static str,
    /// CPU clusters (big first).
    pub clusters: Vec<CpuClusterSpec>,
    /// The GPU block.
    pub gpu: GpuSpec,
    /// The compute DSP block.
    pub dsp: DspSpec,
    /// Dedicated NPU, when the chipset has one (SD865's tensor accelerator).
    pub npu: Option<NpuSpec>,
    /// Memory subsystem.
    pub memory: MemorySpec,
    /// Thermal behaviour.
    pub thermal: ThermalModel,
    /// Per-rail power description (one core rail per entry of [`cores`]).
    ///
    /// [`cores`]: SocSpec::cores
    pub power: PowerSpec,
}

impl SocSpec {
    /// Total number of CPU cores.
    pub fn core_count(&self) -> usize {
        self.clusters.iter().map(|c| c.count).sum()
    }

    /// Flattens clusters into one spec per core, big cores first.
    ///
    /// Core indices returned here are the canonical core ids used by the
    /// scheduler and the profiler.
    pub fn cores(&self) -> Vec<CpuCoreSpec> {
        let mut out = Vec::with_capacity(self.core_count());
        for cluster in &self.clusters {
            for _ in 0..cluster.count {
                out.push(cluster.core);
            }
        }
        out
    }

    /// Indices of the big (performance) cores.
    pub fn big_core_ids(&self) -> Vec<usize> {
        self.cores()
            .iter()
            .enumerate()
            .filter(|(_, c)| c.kind == ClusterKind::Big)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of the little (efficiency) cores.
    pub fn little_core_ids(&self) -> Vec<usize> {
        self.cores()
            .iter()
            .enumerate()
            .filter(|(_, c)| c.kind == ClusterKind::Little)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cores_flatten_big_first() {
        let soc = catalog::SocCatalog::get(SocId::Sd845);
        let cores = soc.cores();
        assert_eq!(cores.len(), 8);
        assert_eq!(cores[0].kind, ClusterKind::Big);
        assert_eq!(cores[7].kind, ClusterKind::Little);
        assert_eq!(soc.big_core_ids(), vec![0, 1, 2, 3]);
        assert_eq!(soc.little_core_ids(), vec![4, 5, 6, 7]);
    }
}
