//! # aitax-fleet — the population-scale device simulator
//!
//! The paper measures AI tax on a handful of phones; its conclusion —
//! that tax varies wildly with chipset, thermal state and co-running
//! load — only becomes actionable at population scale, the way MLPerf
//! Mobile and AI Benchmark report cross-device distributions over
//! thousands of handsets. This crate drives ~1M simulated inference
//! requests through a sampled device fleet and emits population-level
//! tax/latency/energy distributions with cohort breakdowns.
//!
//! Pipeline:
//!
//! 1. [`population`] — a [`PopulationSpec`] samples device *k* from
//!    weighted distributions (chipset mix, ambient thermal profile,
//!    battery state, background pressure, fault rate, workload mix)
//!    via the pure stream `root.derive2(STREAM, k)`;
//! 2. [`shard`] — contiguous device ranges become tasks for the lab's
//!    work-stealing pool; each task lazily samples and runs its devices
//!    and returns raw per-device partials, never pre-merging;
//! 3. [`device`] — one `AndroidApp`-mode latency run per device plus a
//!    tiny traced energy probe;
//! 4. [`agg`] — partials fold in canonical device order into streaming
//!    cohorts ([`StreamDist`] + [`Welford`], constant memory);
//! 5. [`artifact`] — canonical `aitax-fleet/v1` JSON/CSV and the
//!    `BENCH_fleet.json` trajectory file.
//!
//! ## Determinism contract
//!
//! Artifact bytes are identical for any `--shards` × `--threads`
//! combination because (a) every device is a pure function of
//! `(population seed, k)`, (b) partials come back in device order
//! regardless of scheduling, and (c) the aggregation folds in that
//! canonical order — the float moments never see a different merge
//! sequence, and the histogram half is exactly order-independent
//! anyway. `tests/fleet_determinism.rs` pins the property across
//! thread counts 1/2/8 and several shard splits.
//!
//! ## Example
//!
//! ```
//! use aitax_fleet::{FleetReport, PopulationSpec};
//!
//! let spec = PopulationSpec::new("example").devices(8).seed(7);
//! let partials = aitax_fleet::run_fleet(&spec, 64, 4, 2);
//! let report = FleetReport::aggregate(&spec, &partials);
//! assert_eq!(report.requests, 64);
//! assert_eq!(report.total.latency.count(), 64);
//! ```
//!
//! [`PopulationSpec`]: population::PopulationSpec
//! [`StreamDist`]: aitax_core::StreamDist
//! [`Welford`]: aitax_core::Welford

pub mod agg;
pub mod artifact;
pub mod device;
pub mod population;
pub mod shard;

pub use agg::{Cohort, FleetReport};
pub use artifact::{bench_json, fleet_csv, fleet_json, write_artifacts, write_bench_json};
pub use device::{run_device, run_device_in, DevicePartial, PROBE_ITERS};
pub use population::{DeviceSpec, ExecPath, PopulationSpec, ThermalBand, WorkloadSpec};
pub use shard::{run_fleet, ShardPlan};
