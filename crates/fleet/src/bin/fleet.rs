//! `fleet` — run a sampled device population through the fleet engine.
//!
//! ```text
//! cargo run --release --bin fleet -- --population 4096 --requests 1000000
//! ```
//!
//! Prints a cohort summary, writes `fleet_<name>.json` /
//! `fleet_<name>.csv` under `--out` and the `BENCH_fleet.json`
//! population-trajectory file. Artifacts contain only simulated metrics,
//! so their bytes are identical for any `--threads` and any `--shards`
//! split; wall-clock timing of the run itself goes to stderr.
//! `--verify-determinism` proves the property on the spot by re-running
//! serially under a different shard split and comparing bytes.
//!
//! Environment: `AITAX_SEED` (default for `--seed`), `AITAX_THREADS`
//! (default for `--threads`).

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use aitax_fleet::{artifact, FleetReport, PopulationSpec};

struct Opts {
    help: bool,
    name: String,
    population: usize,
    requests: u64,
    shards: usize,
    threads: usize,
    seed: u64,
    fault_rate: f64,
    multi_tenant_rate: f64,
    out: PathBuf,
    bench: PathBuf,
    verify: bool,
}

fn env_parse<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn usage() -> &'static str {
    "usage: fleet [--population N] [--requests N] [--shards N] [--threads N] [--seed N]\n\
     \x20            [--name S] [--fault-rate F] [--multi-tenant-rate F] [--out DIR]\n\
     \x20            [--bench PATH] [--verify-determinism] [--help]\n\
     \n\
     options:\n\
     \x20 --population N        devices to sample (default 256)\n\
     \x20 --requests N          total requests across the fleet (default 100000)\n\
     \x20 --shards N            deterministic work split (default 64); artifact bytes\n\
     \x20                       do not depend on this\n\
     \x20 --threads N           worker threads (default: AITAX_THREADS or all cores)\n\
     \x20 --seed N              root seed (default: AITAX_SEED or 1)\n\
     \x20 --name S              population name for artifacts (default 'default')\n\
     \x20 --fault-rate F        per-request fault probability in [0,1] (default 0.03)\n\
     \x20 --multi-tenant-rate F probability a device runs a co-resident tenant\n\
     \x20                       workload, in [0,1] (default 0: single-tenant)\n\
     \x20 --out DIR             artifact directory (default target/fleet)\n\
     \x20 --bench PATH          trajectory file (default BENCH_fleet.json)\n\
     \x20 --verify-determinism  re-run serially under a different shard split and\n\
     \x20                       byte-compare artifacts (roughly doubles the runtime)\n\
     \x20 --help, -h            print this help"
}

fn parse(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        help: false,
        name: "default".into(),
        population: 256,
        requests: 100_000,
        shards: 64,
        threads: aitax_lab::default_threads(),
        seed: env_parse("AITAX_SEED", 1),
        fault_rate: 0.03,
        multi_tenant_rate: 0.0,
        out: PathBuf::from("target/fleet"),
        bench: PathBuf::from("BENCH_fleet.json"),
        verify: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => {
                opts.help = true;
                return Ok(opts);
            }
            "--name" => opts.name = value("--name")?,
            "--population" => {
                opts.population = value("--population")?
                    .parse()
                    .map_err(|_| "--population must be a positive integer".to_string())?;
                if opts.population == 0 {
                    return Err("--population must be >= 1".into());
                }
            }
            "--requests" => {
                opts.requests = value("--requests")?
                    .parse()
                    .map_err(|_| "--requests must be a non-negative integer".to_string())?;
            }
            "--shards" => {
                opts.shards = value("--shards")?
                    .parse()
                    .map_err(|_| "--shards must be a positive integer".to_string())?;
                if opts.shards == 0 {
                    return Err("--shards must be >= 1".into());
                }
            }
            "--threads" => {
                opts.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads must be a positive integer".to_string())?;
                if opts.threads == 0 {
                    return Err("--threads must be >= 1".into());
                }
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed must be an integer".to_string())?;
            }
            "--fault-rate" => {
                opts.fault_rate = value("--fault-rate")?
                    .parse()
                    .map_err(|_| "--fault-rate must be a number in [0,1]".to_string())?;
                if !(0.0..=1.0).contains(&opts.fault_rate) {
                    return Err("--fault-rate must be in [0,1]".into());
                }
            }
            "--multi-tenant-rate" => {
                opts.multi_tenant_rate = value("--multi-tenant-rate")?
                    .parse()
                    .map_err(|_| "--multi-tenant-rate must be a number in [0,1]".to_string())?;
                if !(0.0..=1.0).contains(&opts.multi_tenant_rate) {
                    return Err("--multi-tenant-rate must be in [0,1]".into());
                }
            }
            "--out" => opts.out = PathBuf::from(value("--out")?),
            "--bench" => opts.bench = PathBuf::from(value("--bench")?),
            "--verify-determinism" => opts.verify = true,
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(opts)
}

/// Runs the fleet and returns the aggregate plus wall-clock seconds.
fn simulate(
    spec: &PopulationSpec,
    requests: u64,
    shards: usize,
    threads: usize,
) -> (FleetReport, f64) {
    let start = Instant::now();
    let partials = aitax_fleet::run_fleet(spec, requests, shards, threads);
    let secs = start.elapsed().as_secs_f64();
    (FleetReport::aggregate(spec, &partials), secs)
}

fn print_summary(report: &FleetReport) {
    let t = &report.total;
    println!(
        "## fleet '{}' — {} devices, {} requests\n",
        report.population, report.devices, report.requests
    );
    println!(
        "{:<10} {:<18} {:>7} {:>10} {:>10} {:>10} {:>10} {:>8} {:>10}",
        "group", "label", "devices", "p50 ms", "p95 ms", "p99 ms", "mean ms", "tax", "energy mJ"
    );
    let row = |group: &str, label: &str, c: &aitax_fleet::Cohort| {
        println!(
            "{:<10} {:<18} {:>7} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>8.3} {:>10.3}",
            group,
            label,
            c.devices,
            c.latency.p50_ms(),
            c.latency.p95_ms(),
            c.latency.p99_ms(),
            c.latency.mean(),
            c.tax.mean(),
            c.energy_mj.mean(),
        );
    };
    row("total", "fleet", t);
    for (label, c) in &report.by_chipset {
        row("chipset", label, c);
    }
    for (label, c) in &report.by_thermal {
        row("thermal", label, c);
    }
    for (label, c) in &report.by_engine {
        row("engine", label, c);
    }
    println!();
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            return ExitCode::from(2);
        }
    };

    if opts.help {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }

    let spec = PopulationSpec::new(opts.name.clone())
        .devices(opts.population)
        .seed(opts.seed)
        .fault_rate(opts.fault_rate)
        .multi_tenant_rate(opts.multi_tenant_rate);

    let (report, secs) = simulate(&spec, opts.requests, opts.shards, opts.threads);
    eprintln!(
        "fleet: population '{}' — {} devices / {} requests on {} shard(s) × {} thread(s) \
         in {:.2}s wall ({:.0} req/s)",
        spec.name,
        report.devices,
        report.requests,
        opts.shards,
        opts.threads,
        secs,
        report.requests as f64 / secs.max(1e-9),
    );

    if opts.verify {
        // Serial re-run under a different shard split: byte-identity
        // must hold across BOTH axes at once.
        let alt_shards = if opts.shards == 1 { 7 } else { 1 };
        let (serial, serial_secs) = simulate(&spec, opts.requests, alt_shards, 1);
        if artifact::fleet_json(&serial) != artifact::fleet_json(&report)
            || artifact::fleet_csv(&serial) != artifact::fleet_csv(&report)
            || artifact::bench_json(&serial) != artifact::bench_json(&report)
        {
            eprintln!("fleet: DETERMINISM VIOLATION — parallel artifacts differ from serial");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "fleet: determinism verified ({} shard(s) × {} thread(s) vs {} × 1, \
             byte-identical); speedup {:.2}x ({:.2}s -> {:.2}s)",
            opts.shards,
            opts.threads,
            alt_shards,
            serial_secs / secs.max(1e-9),
            serial_secs,
            secs
        );
    }

    print_summary(&report);

    match artifact::write_artifacts(&report, &opts.out) {
        Ok(paths) => {
            for p in paths {
                eprintln!("fleet: wrote {}", p.display());
            }
        }
        Err(e) => {
            eprintln!("fleet: failed to write artifacts: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = artifact::write_bench_json(&report, &opts.bench) {
        eprintln!("fleet: failed to write {}: {e}", opts.bench.display());
        return ExitCode::FAILURE;
    }
    eprintln!("fleet: wrote {}", opts.bench.display());
    ExitCode::SUCCESS
}
