//! Sharded fleet execution on the lab's work-stealing pool.
//!
//! A [`ShardPlan`] cuts the device index space into contiguous ranges;
//! each range becomes one task for [`aitax_lab::run_tasks_ctx`], and a
//! task expands its devices lazily — sampling [`DeviceSpec`]s and
//! running them one at a time — so the (device, request) grid never
//! materializes. Each pool worker keeps one
//! [`SimContext`](aitax_core::SimContext), so consecutive devices on a
//! worker (and the main-run/energy-probe pair within one device) reuse
//! a machine instead of re-allocating calendar, trace and run-queue
//! storage per run.
//!
//! **Shards never pre-merge.** A task returns its devices' raw
//! [`DevicePartial`]s, and because [`run_tasks_ctx`] returns results in
//! input (= shard, = device) order, flattening them reconstructs the
//! canonical device sequence no matter how many shards or threads ran.
//! That is what keeps the downstream float folds byte-identical for any
//! `--shards` × `--threads` combination.
//!
//! [`run_tasks_ctx`]: aitax_lab::run_tasks_ctx
//! [`DeviceSpec`]: crate::population::DeviceSpec

use std::ops::Range;

use aitax_core::SimContext;
use aitax_lab::run_tasks_ctx;

use crate::device::{run_device_in, DevicePartial};
use crate::population::PopulationSpec;

/// A contiguous partition of `devices` into at most `shards` ranges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    devices: usize,
    shards: usize,
}

impl ShardPlan {
    /// Plans `shards` contiguous ranges over `devices` (clamped to at
    /// least one shard, at most one per device).
    pub fn new(devices: usize, shards: usize) -> ShardPlan {
        ShardPlan {
            devices,
            shards: shards.clamp(1, devices.max(1)),
        }
    }

    /// The effective shard count after clamping.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The device ranges, in device order: sizes differ by at most one,
    /// larger shards first.
    pub fn ranges(&self) -> Vec<Range<usize>> {
        let base = self.devices / self.shards;
        let rem = self.devices % self.shards;
        let mut out = Vec::with_capacity(self.shards);
        let mut start = 0;
        for s in 0..self.shards {
            let len = base + usize::from(s < rem);
            out.push(start..start + len);
            start += len;
        }
        out
    }
}

/// Runs the whole fleet: `requests` total requests over `spec`'s
/// devices, cut into `shards` tasks executed on `threads` workers.
///
/// Returns per-device partials **in device order** — the canonical
/// sequence every aggregation folds in.
pub fn run_fleet(
    spec: &PopulationSpec,
    requests: u64,
    shards: usize,
    threads: usize,
) -> Vec<DevicePartial> {
    let plan = ShardPlan::new(spec.devices, shards);
    let per_shard: Vec<Vec<DevicePartial>> =
        run_tasks_ctx(plan.ranges(), threads, SimContext::new, |ctx, range| {
            range
                .clone()
                .map(|k| run_device_in(ctx, &spec.device(k), spec.requests_for(k, requests)))
                .collect()
        });
    per_shard.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_partition_exactly() {
        for (devices, shards) in [(10, 3), (7, 7), (5, 16), (1, 1), (100, 8)] {
            let plan = ShardPlan::new(devices, shards);
            let ranges = plan.ranges();
            assert_eq!(ranges.len(), plan.shards());
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, devices);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start, "contiguous");
                assert!(w[0].len() >= w[1].len(), "larger shards first");
                assert!(w[0].len() - w[1].len() <= 1, "balanced");
            }
        }
    }

    #[test]
    fn degenerate_plans_are_clamped() {
        assert_eq!(ShardPlan::new(4, 0).shards(), 1);
        assert_eq!(ShardPlan::new(4, 99).shards(), 4);
        assert_eq!(ShardPlan::new(0, 3).shards(), 1);
        assert_eq!(ShardPlan::new(0, 3).ranges(), vec![0..0]);
    }

    #[test]
    fn fleet_partials_come_back_in_device_order() {
        let spec = PopulationSpec::new("t").devices(6).seed(2);
        let partials = run_fleet(&spec, 18, 3, 1);
        assert_eq!(partials.len(), 6);
        for (k, p) in partials.iter().enumerate() {
            assert_eq!(p.device_id, k);
            assert_eq!(p.requests, 3);
        }
    }

    #[test]
    fn partials_are_identical_for_any_shard_and_thread_split() {
        let spec = PopulationSpec::new("t").devices(6).seed(5);
        let reference = run_fleet(&spec, 13, 1, 1);
        for (shards, threads) in [(2, 1), (3, 2), (6, 4), (1, 2)] {
            let got = run_fleet(&spec, 13, shards, threads);
            assert_eq!(
                got, reference,
                "{shards} shards × {threads} threads must match serial"
            );
        }
    }
}
