//! Streaming cohort aggregation over per-device partials.
//!
//! The aggregator folds [`DevicePartial`]s **in device order** — the
//! canonical sequence [`run_fleet`] returns — into one fleet-wide
//! [`Cohort`] plus per-chipset, per-thermal-band and per-engine
//! breakdowns. Because the fold order is fixed and every input partial
//! is itself a pure function of `(population seed, device id, request
//! budget)`, the aggregate (and the artifact bytes rendered from it) is
//! identical for any shard split or thread count. No sample vector ever
//! materializes: cohorts accumulate [`StreamDist`]s and [`Welford`]
//! moments, so a million-request fleet aggregates in constant memory.
//!
//! [`run_fleet`]: crate::shard::run_fleet

use std::collections::BTreeMap;

use aitax_core::{StreamDist, Welford};
use aitax_lab::agg::DegradationTotals;
use aitax_soc::SocId;

use crate::device::DevicePartial;
use crate::population::{PopulationSpec, ThermalBand};

/// Streaming accumulator of one device cohort.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Cohort {
    /// Devices folded in.
    pub devices: usize,
    /// Requests those devices served.
    pub requests: u64,
    /// Per-request end-to-end latency distribution.
    pub latency: StreamDist,
    /// AI-tax fraction over active devices.
    pub tax: Welford,
    /// Model-initialization latency over active devices (ms).
    pub init: Welford,
    /// Energy per inference over active devices (mJ).
    pub energy_mj: Welford,
    /// Non-inference energy share over active devices.
    pub energy_tax: Welford,
    /// Mean power draw over active devices (W).
    pub power: Welford,
    /// Summed degradation counters.
    pub degradation: DegradationTotals,
}

impl Cohort {
    /// Folds one device's partial in. Call in device order — the float
    /// moments are merge-order-sensitive in the last bits, and the
    /// canonical order is what keeps artifacts byte-identical.
    pub fn fold(&mut self, p: &DevicePartial) {
        self.devices += 1;
        self.requests += p.requests;
        self.latency.merge(&p.latency);
        if p.requests > 0 {
            self.tax.push(p.tax_fraction);
            self.init.push(p.model_init_ms);
            self.energy_mj.push(p.energy_mj);
            self.energy_tax.push(p.energy_tax);
            self.power.push(p.mean_power_w);
            self.degradation.faults_injected += p.degradation.faults_injected;
            self.degradation.rpc_retries += p.degradation.rpc_retries;
            self.degradation.rpc_giveups += p.degradation.rpc_giveups;
            self.degradation.cpu_fallbacks += p.degradation.cpu_fallbacks;
            self.degradation.added_tax_ms += p.degradation.added_tax_ms;
        }
    }
}

/// The aggregated fleet: totals plus cohort breakdowns.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Artifact schema version.
    pub schema: &'static str,
    /// Population name.
    pub population: String,
    /// Population seed.
    pub seed: u64,
    /// Devices simulated.
    pub devices: usize,
    /// Total requests served.
    pub requests: u64,
    /// Fleet-wide aggregate.
    pub total: Cohort,
    /// Per-chipset cohorts, [`SocId::ALL`] order (sampled chipsets only).
    pub by_chipset: Vec<(String, Cohort)>,
    /// Per-thermal-band cohorts, coldest first (sampled bands only).
    pub by_thermal: Vec<(String, Cohort)>,
    /// Per-engine cohorts, label order (sampled engines only).
    pub by_engine: Vec<(String, Cohort)>,
}

impl FleetReport {
    /// Aggregates `partials` (device order) for `spec`.
    ///
    /// # Panics
    ///
    /// Panics if the partials are not exactly the population in device
    /// order.
    pub fn aggregate(spec: &PopulationSpec, partials: &[DevicePartial]) -> FleetReport {
        assert_eq!(
            partials.len(),
            spec.devices,
            "partial count must match population"
        );
        assert!(
            partials.iter().enumerate().all(|(k, p)| p.device_id == k),
            "partials must arrive in device order"
        );
        let mut total = Cohort::default();
        let mut chipset: [Cohort; 4] = std::array::from_fn(|_| Cohort::default());
        let mut thermal: [Cohort; 4] = std::array::from_fn(|_| Cohort::default());
        let mut engine: BTreeMap<String, Cohort> = BTreeMap::new();
        for p in partials {
            total.fold(p);
            chipset[soc_index(p.soc)].fold(p);
            thermal[p.band.index()].fold(p);
            engine.entry(p.engine_label.clone()).or_default().fold(p);
        }
        let requests = total.requests;
        FleetReport {
            schema: "aitax-fleet/v1",
            population: spec.name.clone(),
            seed: spec.seed,
            devices: spec.devices,
            requests,
            total,
            by_chipset: SocId::ALL
                .iter()
                .zip(chipset)
                .filter(|(_, c)| c.devices > 0)
                .map(|(soc, c)| (soc.to_string(), c))
                .collect(),
            by_thermal: ThermalBand::ALL
                .iter()
                .zip(thermal)
                .filter(|(_, c)| c.devices > 0)
                .map(|(band, c)| (band.label().to_string(), c))
                .collect(),
            by_engine: engine.into_iter().collect(),
        }
    }

    /// The cohort with the given label in the given group, if sampled.
    pub fn cohort<'a>(group: &'a [(String, Cohort)], label: &str) -> Option<&'a Cohort> {
        group.iter().find(|(l, _)| l == label).map(|(_, c)| c)
    }
}

fn soc_index(soc: SocId) -> usize {
    match soc {
        SocId::Sd835 => 0,
        SocId::Sd845 => 1,
        SocId::Sd855 => 2,
        SocId::Sd865 => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::run_fleet;

    fn small_fleet() -> (PopulationSpec, Vec<DevicePartial>) {
        let spec = PopulationSpec::new("agg-test").devices(24).seed(3);
        let partials = run_fleet(&spec, 96, 4, 1);
        (spec, partials)
    }

    #[test]
    fn aggregate_reconciles_counts() {
        let (spec, partials) = small_fleet();
        let rep = FleetReport::aggregate(&spec, &partials);
        assert_eq!(rep.schema, "aitax-fleet/v1");
        assert_eq!(rep.devices, 24);
        assert_eq!(rep.requests, 96);
        assert_eq!(rep.total.latency.count(), 96);
        // Every cohort group partitions the fleet exactly.
        for group in [&rep.by_chipset, &rep.by_thermal, &rep.by_engine] {
            let devices: usize = group.iter().map(|(_, c)| c.devices).sum();
            let requests: u64 = group.iter().map(|(_, c)| c.requests).sum();
            let samples: u64 = group.iter().map(|(_, c)| c.latency.count()).sum();
            assert_eq!(devices, rep.devices);
            assert_eq!(requests, rep.requests);
            assert_eq!(samples, rep.total.latency.count());
        }
        assert!(rep.total.tax.mean() > 0.0);
        assert!(rep.total.energy_mj.mean() > 0.0);
        assert!(rep.total.latency.p50_ms() <= rep.total.latency.p99_ms());
    }

    #[test]
    fn aggregate_is_shard_and_thread_invariant() {
        let (spec, partials) = small_fleet();
        let reference = FleetReport::aggregate(&spec, &partials);
        for (shards, threads) in [(1, 1), (5, 2), (24, 3)] {
            let again = FleetReport::aggregate(&spec, &run_fleet(&spec, 96, shards, threads));
            assert_eq!(
                again, reference,
                "{shards} shards × {threads} threads must aggregate identically"
            );
        }
    }

    #[test]
    fn cohort_lookup_finds_sampled_groups() {
        let (spec, partials) = small_fleet();
        let rep = FleetReport::aggregate(&spec, &partials);
        assert!(!rep.by_chipset.is_empty());
        let (label, _) = &rep.by_chipset[0];
        assert!(FleetReport::cohort(&rep.by_chipset, label).is_some());
        assert!(FleetReport::cohort(&rep.by_chipset, "SD000").is_none());
    }

    #[test]
    #[should_panic(expected = "device order")]
    fn out_of_order_partials_panic() {
        let (spec, mut partials) = small_fleet();
        partials.swap(0, 1);
        let _ = FleetReport::aggregate(&spec, &partials);
    }
}
