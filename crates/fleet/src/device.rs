//! Per-device execution: one latency run plus one traced energy probe.
//!
//! A device's share of the fleet's requests runs as a single
//! [`E2eConfig`] invocation in `AndroidApp` mode (the packaging real
//! fleets ship, and the only one whose frame pacing keeps million-request
//! populations CI-runnable). Tracing is off for the main run — traced
//! runs reserve event buffers per iteration and would make large request
//! counts memory-bound — so energy metrics come from a second, tiny
//! traced probe run ([`PROBE_ITERS`] iterations) under an independent
//! derived seed.

use aitax_core::pipeline::E2eConfig;
use aitax_core::{RunMode, SimContext, StreamDist};
use aitax_des::fault::FaultPlan;
use aitax_des::SimTime;
use aitax_framework::Engine;
use aitax_lab::agg::DegradationTotals;
use aitax_soc::SocId;

use crate::population::{DeviceSpec, ThermalBand};

/// Iterations of the traced energy-probe run.
pub const PROBE_ITERS: usize = 5;

/// Ring capacity (events) for the probe's trace — bounds probe memory no
/// matter how the workload mix lands, while staying far above what
/// [`PROBE_ITERS`] iterations can emit, so nothing is ever evicted and
/// the probe's energy report is byte-identical to an unbounded trace
/// (asserted by `bounded_probe_ring_never_evicts`).
pub const PROBE_TRACE_EVENTS: usize = 1 << 20;

/// Background inference loops run the light CPU engine.
pub const BACKGROUND_ENGINE: Engine = Engine::TfLiteCpu { threads: 2 };

/// Everything one device contributes to the aggregation — plain owned
/// data (`Send`), **never pre-merged across devices** so the aggregator
/// can fold partials in canonical device order.
#[derive(Debug, Clone, PartialEq)]
pub struct DevicePartial {
    /// Population index of the device.
    pub device_id: usize,
    /// Chipset cohort key.
    pub soc: SocId,
    /// Thermal cohort key.
    pub band: ThermalBand,
    /// Engine cohort key.
    pub engine_label: String,
    /// Requests this device served.
    pub requests: u64,
    /// Per-request end-to-end latency distribution.
    pub latency: StreamDist,
    /// Mean AI-tax fraction of the main run.
    pub tax_fraction: f64,
    /// One-time model-initialization latency (ms).
    pub model_init_ms: f64,
    /// Energy per inference from the probe run (mJ).
    pub energy_mj: f64,
    /// Non-inference share of the probe run's energy.
    pub energy_tax: f64,
    /// Mean power draw of the probe run (W).
    pub mean_power_w: f64,
    /// Fault/retry/fallback counters of the main run.
    pub degradation: DegradationTotals,
}

fn base_config(spec: &DeviceSpec, iterations: usize, seed: u64) -> E2eConfig {
    let mut cfg = E2eConfig::new(spec.model, spec.dtype)
        .engine(spec.engine)
        .run_mode(RunMode::AndroidApp)
        .soc(spec.soc)
        .iterations(iterations)
        .seed(seed)
        .initial_temp(spec.ambient_c);
    if let Some(co) = spec.co_tenant {
        // The co-resident tenant contends for the whole run: one loop
        // for the tenant itself, on its own routed engine, absorbing the
        // sampled background pressure.
        cfg = cfg.background(spec.background_loops + 1, co.engine);
    } else if spec.background_loops > 0 {
        cfg = cfg.background(spec.background_loops, BACKGROUND_ENGINE);
    }
    if let Some((kind, start_ns)) = spec.fault {
        cfg = cfg.fault_plan(FaultPlan::new(seed).sustained(kind, SimTime::from_ns(start_ns)));
    }
    cfg
}

/// Runs device `spec` for `requests` requests in a throwaway
/// [`SimContext`].
///
/// Deterministic: the partial depends only on the spec and request
/// count, never on the thread, shard, or time it ran. Devices with zero
/// requests (populations larger than the request budget) return an empty
/// partial without simulating anything.
pub fn run_device(spec: &DeviceSpec, requests: u64) -> DevicePartial {
    run_device_in(&mut SimContext::new(), spec, requests)
}

/// Runs device `spec` in `ctx`, reusing its machine when possible.
///
/// The main run and the traced energy probe share the context, so the
/// probe's machine is a reset of the main run's rather than a second
/// allocation; shard workers thread one context through every device
/// they execute. Byte-identical to [`run_device`] — context reuse only
/// skips setup work (`tests/determinism.rs` pins the fleet artifact).
pub fn run_device_in(ctx: &mut SimContext, spec: &DeviceSpec, requests: u64) -> DevicePartial {
    let mut latency = StreamDist::new();
    let mut tax_fraction = 0.0;
    let mut model_init_ms = 0.0;
    let mut degradation = DegradationTotals::default();
    let mut energy_mj = 0.0;
    let mut energy_tax = 0.0;
    let mut mean_power_w = 0.0;

    if requests > 0 {
        let main = base_config(spec, requests as usize, spec.run_seed).run_in(ctx);
        for &ms in main.e2e_summary().samples_ms() {
            latency.record(ms);
        }
        tax_fraction = main.ai_tax_fraction();
        model_init_ms = main.model_init.as_ms();
        let stats = &main.degradation.stats;
        degradation.faults_injected = stats.faults_injected;
        degradation.rpc_retries = stats.rpc_retries;
        degradation.rpc_giveups = stats.rpc_giveups;
        degradation.cpu_fallbacks = stats.cpu_fallbacks;
        degradation.added_tax_ms = main.degradation.added_tax_ms;

        let probe = base_config(spec, PROBE_ITERS, spec.probe_seed)
            .tracing(true)
            .trace_bound(PROBE_TRACE_EVENTS)
            .run_in(ctx);
        if let Some(e) = probe.energy.as_ref() {
            energy_mj = e.energy_per_inference_j() * 1e3;
            energy_tax = e.energy_tax_fraction();
            mean_power_w = e.mean_power_w();
        }
    }

    DevicePartial {
        device_id: spec.id,
        soc: spec.soc,
        band: spec.band,
        engine_label: spec.engine.label(),
        requests,
        latency,
        tax_fraction,
        model_init_ms,
        energy_mj,
        energy_tax,
        mean_power_w,
        degradation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::PopulationSpec;

    fn any_device() -> DeviceSpec {
        PopulationSpec::new("t").devices(8).seed(4).device(3)
    }

    #[test]
    fn device_run_is_deterministic() {
        let spec = any_device();
        let a = run_device(&spec, 12);
        let b = run_device(&spec, 12);
        assert_eq!(a, b, "same spec must produce identical partials");
        assert_eq!(a.latency.count(), 12);
        assert!(a.latency.min_ms() > 0.0);
        assert!(a.tax_fraction > 0.0 && a.tax_fraction < 1.0);
        assert!(a.model_init_ms > 0.0);
    }

    #[test]
    fn probe_supplies_energy_metrics() {
        let p = run_device(&any_device(), 6);
        assert!(p.energy_mj > 0.0, "probe run must meter energy");
        assert!(p.mean_power_w > 0.0);
        assert!((0.0..=1.0).contains(&p.energy_tax));
    }

    #[test]
    fn bounded_probe_ring_never_evicts() {
        // The probe's trace bound is a memory cap, not a window: it must
        // be generous enough that no event is ever dropped, keeping the
        // energy report identical to an unbounded trace.
        let spec = any_device();
        let bounded = base_config(&spec, PROBE_ITERS, spec.probe_seed)
            .tracing(true)
            .trace_bound(PROBE_TRACE_EVENTS)
            .run();
        let unbounded = base_config(&spec, PROBE_ITERS, spec.probe_seed)
            .tracing(true)
            .run();
        let tr = bounded.trace.as_ref().expect("probe trace present");
        assert_eq!(tr.dropped(), 0, "probe bound must never evict");
        assert!(tr.iter().eq(unbounded.trace.as_ref().unwrap().iter()));
        let (be, ue) = (bounded.energy.unwrap(), unbounded.energy.unwrap());
        assert_eq!(
            be.energy_per_inference_j().to_bits(),
            ue.energy_per_inference_j().to_bits(),
            "bounded probe energy must be bit-identical"
        );
        assert_eq!(be.mean_power_w().to_bits(), ue.mean_power_w().to_bits());
    }

    #[test]
    fn co_tenant_contention_slows_the_main_workload() {
        use crate::population::CoTenant;
        let solo = any_device();
        let shared = DeviceSpec {
            co_tenant: Some(CoTenant {
                workload: "classifier-inc3-cpu",
                engine: Engine::tflite_cpu(4),
            }),
            ..solo.clone()
        };
        let a = run_device(&solo, 8);
        let b = run_device(&shared, 8);
        assert!(
            b.latency.mean() > a.latency.mean(),
            "a co-resident CPU tenant must contend: {} vs {} ms",
            b.latency.mean(),
            a.latency.mean()
        );
    }

    #[test]
    fn every_sampled_co_tenant_engine_runs_the_host_graph() {
        use aitax_framework::Session;
        use aitax_models::zoo::Zoo;
        use aitax_soc::SocCatalog;
        use std::sync::Arc;
        // At rate 1.0 the mix crosses float hosts with accelerator
        // co-tenant draws; the sampler must route those to an engine the
        // host graph compiles on (quant-only DSP delegates reject fp32),
        // or the fleet run panics mid-population.
        let pop = PopulationSpec::new("t")
            .devices(256)
            .seed(11)
            .multi_tenant_rate(1.0);
        let mut float_accel_crossings = 0;
        for k in 0..pop.devices {
            let d = pop.device(k);
            let Some(co) = d.co_tenant else { continue };
            let graph = Arc::new(Zoo::entry(d.model).build_graph_with(d.dtype));
            assert!(
                Session::compile(co.engine, graph, SocCatalog::get(d.soc)).is_ok(),
                "device {k}: co-tenant engine {} cannot run the {:?} host graph",
                co.engine.label(),
                d.dtype
            );
            if !d.dtype.is_quantized() && co.workload.ends_with("-accel") {
                float_accel_crossings += 1;
            }
        }
        assert!(
            float_accel_crossings > 0,
            "the sample never crossed a float host with an accelerator co-tenant"
        );
        // And one such device runs end to end.
        let spec = (0..pop.devices)
            .map(|k| pop.device(k))
            .find(|d| {
                !d.dtype.is_quantized()
                    && d.co_tenant.is_some_and(|c| c.workload.ends_with("-accel"))
            })
            .expect("crossing exists per the count above");
        let p = run_device(&spec, 2);
        assert_eq!(p.latency.count(), 2);
    }

    #[test]
    fn zero_requests_is_an_empty_partial() {
        let p = run_device(&any_device(), 0);
        assert_eq!(p.requests, 0);
        assert_eq!(p.latency.count(), 0);
        assert_eq!(p.energy_mj, 0.0);
        assert_eq!(p.degradation, DegradationTotals::default());
    }

    #[test]
    fn faulty_device_records_degradation() {
        // Find a sampled device that carries a fault and runs on an
        // accelerated path (where DSP faults actually bite), then check
        // its counters move.
        let pop = PopulationSpec::new("t")
            .devices(512)
            .seed(9)
            .fault_rate(1.0);
        let spec = (0..pop.devices)
            .map(|k| pop.device(k))
            .find(|d| d.fault.is_some())
            .expect("fault_rate 1.0 must fault every device");
        let p = run_device(&spec, 8);
        assert!(p.degradation.faults_injected > 0);
    }
}
