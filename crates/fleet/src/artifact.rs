//! Versioned machine-readable fleet artifacts.
//!
//! A fleet run emits three files: `fleet_<population>.json` (the full
//! aggregate, schema `aitax-fleet/v1`), `fleet_<population>.csv` (one
//! headline row per cohort) and `BENCH_fleet.json` (schema
//! `aitax-fleet-bench/v1`, the compact population-trajectory file CI
//! uploads and later PRs diff).
//!
//! Rendering reuses the canonical primitives in [`aitax_core::artifact`]:
//! fixed field order, fixed float formatting, no wall-clock or host data
//! (and no `--shards` / `--threads` values — those must not influence a
//! single artifact byte). Wall-clock performance of the run itself is
//! reported on stderr by the `fleet` binary, never in an artifact.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use aitax_core::artifact::{json_escape, json_num, stream_dist_json};

use crate::agg::{Cohort, FleetReport};

fn cohort_json(out: &mut String, c: &Cohort) {
    let _ = write!(
        out,
        "{{\"devices\":{},\"requests\":{},\"latency\":",
        c.devices, c.requests,
    );
    stream_dist_json(out, &c.latency);
    let deg = &c.degradation;
    let _ = write!(
        out,
        ",\"tax_fraction\":{},\"model_init_ms\":{},\"energy_mj\":{},\"energy_tax\":{},\
         \"mean_power_w\":{},\"degradation\":{{\"faults_injected\":{},\"rpc_retries\":{},\
         \"rpc_giveups\":{},\"cpu_fallbacks\":{},\"added_tax_ms\":{}}}}}",
        json_num(c.tax.mean()),
        json_num(c.init.mean()),
        json_num(c.energy_mj.mean()),
        json_num(c.energy_tax.mean()),
        json_num(c.power.mean()),
        deg.faults_injected,
        deg.rpc_retries,
        deg.rpc_giveups,
        deg.cpu_fallbacks,
        json_num(deg.added_tax_ms),
    );
}

fn group_json(out: &mut String, name: &str, group: &[(String, Cohort)]) {
    let _ = writeln!(out, "  \"{name}\": [");
    for (i, (label, c)) in group.iter().enumerate() {
        let _ = write!(out, "    {{\"label\":\"{}\",\"stats\":", json_escape(label));
        cohort_json(out, c);
        out.push('}');
        out.push_str(if i + 1 < group.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]");
}

/// Renders the full aggregate as versioned JSON (`aitax-fleet/v1`).
pub fn fleet_json(report: &FleetReport) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"schema\": \"{}\",\n  \"population\": \"{}\",\n  \"seed\": {},\n  \
         \"devices\": {},\n  \"requests\": {},\n  \"total\": ",
        report.schema,
        json_escape(&report.population),
        report.seed,
        report.devices,
        report.requests,
    );
    cohort_json(&mut out, &report.total);
    out.push_str(",\n");
    group_json(&mut out, "by_chipset", &report.by_chipset);
    out.push_str(",\n");
    group_json(&mut out, "by_thermal", &report.by_thermal);
    out.push_str(",\n");
    group_json(&mut out, "by_engine", &report.by_engine);
    out.push_str("\n}\n");
    out
}

fn csv_row(out: &mut String, group: &str, label: &str, c: &Cohort) {
    let _ = writeln!(
        out,
        "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
        group,
        label,
        c.devices,
        c.requests,
        json_num(c.latency.mean()),
        json_num(c.latency.p50_ms()),
        json_num(c.latency.p95_ms()),
        json_num(c.latency.p99_ms()),
        json_num(c.latency.cv()),
        json_num(c.tax.mean()),
        json_num(c.energy_mj.mean()),
        json_num(c.energy_tax.mean()),
        json_num(c.power.mean()),
        c.degradation.faults_injected,
        c.degradation.cpu_fallbacks,
        json_num(c.degradation.added_tax_ms),
    );
}

/// Renders one headline CSV row per cohort (fleet total first).
pub fn fleet_csv(report: &FleetReport) -> String {
    let mut out = String::from(
        "group,label,devices,requests,lat_mean_ms,lat_p50_ms,lat_p95_ms,lat_p99_ms,lat_cv,\
         tax_fraction,energy_mj,energy_tax,mean_power_w,faults_injected,cpu_fallbacks,\
         added_tax_ms\n",
    );
    csv_row(&mut out, "total", "fleet", &report.total);
    for (group, cohorts) in [
        ("chipset", &report.by_chipset),
        ("thermal", &report.by_thermal),
        ("engine", &report.by_engine),
    ] {
        for (label, c) in cohorts {
            csv_row(&mut out, group, label, c);
        }
    }
    out
}

/// Renders the compact `BENCH_fleet.json` population-trajectory file
/// (`aitax-fleet-bench/v1`): one fleet headline plus one point per
/// chipset cohort. Deterministic — contains only simulated metrics.
pub fn bench_json(report: &FleetReport) -> String {
    let mut out = String::new();
    let t = &report.total;
    let _ = write!(
        out,
        "{{\n  \"schema\": \"aitax-fleet-bench/v1\",\n  \"population\": \"{}\",\n  \
         \"seed\": {},\n  \"devices\": {},\n  \"requests\": {},\n  \
         \"headline\": {{\"e2e_p50_ms\": {}, \"e2e_p95_ms\": {}, \"e2e_p99_ms\": {}, \
         \"mean_tax_fraction\": {}, \"mean_energy_mj\": {}, \"faults_injected\": {}}},\n  \
         \"chipsets\": [\n",
        json_escape(&report.population),
        report.seed,
        report.devices,
        report.requests,
        json_num(t.latency.p50_ms()),
        json_num(t.latency.p95_ms()),
        json_num(t.latency.p99_ms()),
        json_num(t.tax.mean()),
        json_num(t.energy_mj.mean()),
        t.degradation.faults_injected,
    );
    for (i, (label, c)) in report.by_chipset.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"chipset\": \"{}\", \"devices\": {}, \"e2e_p50_ms\": {}, \
             \"e2e_p95_ms\": {}, \"e2e_p99_ms\": {}, \"tax_fraction\": {}, \
             \"energy_mj\": {}}}",
            json_escape(label),
            c.devices,
            json_num(c.latency.p50_ms()),
            json_num(c.latency.p95_ms()),
            json_num(c.latency.p99_ms()),
            json_num(c.tax.mean()),
            json_num(c.energy_mj.mean()),
        );
        out.push_str(if i + 1 < report.by_chipset.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes `fleet_<population>.json` and `fleet_<population>.csv` under
/// `out_dir` (created if missing) and returns the paths written.
pub fn write_artifacts(report: &FleetReport, out_dir: &Path) -> io::Result<Vec<PathBuf>> {
    fs::create_dir_all(out_dir)?;
    let json_path = out_dir.join(format!("fleet_{}.json", report.population));
    let csv_path = out_dir.join(format!("fleet_{}.csv", report.population));
    fs::write(&json_path, fleet_json(report))?;
    fs::write(&csv_path, fleet_csv(report))?;
    Ok(vec![json_path, csv_path])
}

/// Writes the population-trajectory file (conventionally
/// `BENCH_fleet.json` at the repository top level).
pub fn write_bench_json(report: &FleetReport, path: &Path) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    fs::write(path, bench_json(report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::PopulationSpec;
    use crate::shard::run_fleet;

    fn report() -> FleetReport {
        let spec = PopulationSpec::new("artifact-test").devices(12).seed(6);
        let partials = run_fleet(&spec, 48, 3, 1);
        FleetReport::aggregate(&spec, &partials)
    }

    #[test]
    fn fleet_json_has_schema_and_cohorts() {
        let j = fleet_json(&report());
        assert!(j.contains("\"schema\": \"aitax-fleet/v1\""));
        assert!(j.contains("\"total\": {\"devices\":12,\"requests\":48"));
        assert!(j.contains("\"by_chipset\": ["));
        assert!(j.contains("\"by_thermal\": ["));
        assert!(j.contains("\"by_engine\": ["));
        assert!(j.contains("\"hist\":[["));
    }

    #[test]
    fn csv_covers_total_and_every_cohort() {
        let rep = report();
        let c = fleet_csv(&rep);
        let lines: Vec<&str> = c.lines().collect();
        let cohorts = rep.by_chipset.len() + rep.by_thermal.len() + rep.by_engine.len();
        assert_eq!(lines.len(), 2 + cohorts, "header + total + cohorts");
        assert!(lines[0].starts_with("group,label,"));
        assert!(lines[1].starts_with("total,fleet,12,48,"));
        let cols = lines[0].split(',').count();
        for l in &lines[1..] {
            assert_eq!(l.split(',').count(), cols);
        }
    }

    #[test]
    fn bench_json_is_compact_and_versioned() {
        let b = bench_json(&report());
        assert!(b.contains("\"schema\": \"aitax-fleet-bench/v1\""));
        assert!(b.contains("\"headline\": {\"e2e_p50_ms\": "));
        assert!(b.contains("\"chipsets\": ["));
    }

    #[test]
    fn rendering_is_reproducible() {
        let a = report();
        let b = report();
        assert_eq!(fleet_json(&a), fleet_json(&b));
        assert_eq!(fleet_csv(&a), fleet_csv(&b));
        assert_eq!(bench_json(&a), bench_json(&b));
    }
}
