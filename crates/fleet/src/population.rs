//! Weighted device-population sampling.
//!
//! A [`PopulationSpec`] describes a fleet as distributions — chipset mix
//! over the SD835–865 catalog, ambient thermal profile, battery state,
//! background-app pressure, per-device fault rate, and a workload mix —
//! and materializes device *k* with [`PopulationSpec::device`]. Sampling
//! uses the pure two-level stream `root.derive2(STREAM_*, k)`
//! ([`SimRng::derive2`]), so a device is a function of
//! `(population seed, k)` alone: the same device appears at index *k*
//! regardless of shard split, thread count, or which other devices were
//! ever sampled.

use aitax_des::fault::FaultKind;
use aitax_des::SimRng;
use aitax_framework::Engine;
use aitax_models::zoo::ModelId;
use aitax_soc::SocId;
use aitax_tensor::DType;

/// High-level stream id for device-spec sampling.
pub const STREAM_DEVICE: u64 = 1;
/// High-level stream id for the main (latency) run of a device.
pub const STREAM_RUN: u64 = 2;
/// High-level stream id for the traced energy-probe run of a device.
pub const STREAM_PROBE: u64 = 3;
/// High-level stream id for co-resident tenant sampling. A separate
/// stream so enabling multi-tenancy never perturbs the device fields the
/// other streams sample — artifacts at `multi_tenant_rate` 0 stay
/// byte-identical to populations sampled before the knob existed.
pub const STREAM_TENANT: u64 = 4;

/// Ambient thermal cohort a device falls into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ThermalBand {
    /// Below 15 °C ambient.
    Cold,
    /// 15–25 °C ambient.
    Cool,
    /// 25–33 °C ambient.
    Warm,
    /// 33 °C ambient and up.
    Hot,
}

impl ThermalBand {
    /// Every band, coldest first (cohort ordering in artifacts).
    pub const ALL: [ThermalBand; 4] = [
        ThermalBand::Cold,
        ThermalBand::Cool,
        ThermalBand::Warm,
        ThermalBand::Hot,
    ];

    /// Classifies an ambient temperature.
    pub fn from_ambient_c(c: f64) -> ThermalBand {
        if c < 15.0 {
            ThermalBand::Cold
        } else if c < 25.0 {
            ThermalBand::Cool
        } else if c < 33.0 {
            ThermalBand::Warm
        } else {
            ThermalBand::Hot
        }
    }

    /// Stable cohort label.
    pub fn label(&self) -> &'static str {
        match self {
            ThermalBand::Cold => "cold",
            ThermalBand::Cool => "cool",
            ThermalBand::Warm => "warm",
            ThermalBand::Hot => "hot",
        }
    }

    /// Position in [`ThermalBand::ALL`].
    pub fn index(&self) -> usize {
        match self {
            ThermalBand::Cold => 0,
            ThermalBand::Cool => 1,
            ThermalBand::Warm => 2,
            ThermalBand::Hot => 3,
        }
    }
}

/// How a workload's model execution is routed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecPath {
    /// The chipset's ML accelerator, via whichever delegate fits it
    /// (SNPE DSP on SD835, the Hexagon delegate on SD845/855, NNAPI on
    /// SD865). Quantized models only.
    Accel,
    /// The TFLite GPU delegate.
    Gpu,
    /// The TFLite CPU interpreter with the given thread count.
    Cpu(usize),
}

impl ExecPath {
    /// The concrete engine this path maps to on `soc`.
    pub fn engine_for(&self, soc: SocId) -> Engine {
        match self {
            ExecPath::Accel => match soc {
                SocId::Sd835 => Engine::SnpeDsp,
                SocId::Sd845 | SocId::Sd855 => Engine::TfLiteHexagon { threads: 4 },
                SocId::Sd865 => Engine::nnapi(),
            },
            ExecPath::Gpu => Engine::TfLiteGpu { threads: 2 },
            ExecPath::Cpu(threads) => Engine::tflite_cpu(*threads),
        }
    }
}

/// One entry of the population's workload mix.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Stable workload label.
    pub label: &'static str,
    /// The model the app runs.
    pub model: ModelId,
    /// Numeric format.
    pub dtype: DType,
    /// Execution routing.
    pub path: ExecPath,
    /// Sampling weight (integer, exact).
    pub weight: u64,
}

/// The default workload mix: app archetypes the paper's Table 1 models
/// cover, weighted towards the light always-on vision models real fleets
/// are dominated by. Accelerated entries are quantized (the Hexagon and
/// SNPE DSP paths reject float graphs).
pub const WORKLOADS: [WorkloadSpec; 8] = [
    WorkloadSpec {
        label: "vision-mnv1-accel",
        model: ModelId::MobileNetV1,
        dtype: DType::I8,
        path: ExecPath::Accel,
        weight: 26,
    },
    WorkloadSpec {
        label: "vision-mnv1-cpu",
        model: ModelId::MobileNetV1,
        dtype: DType::F32,
        path: ExecPath::Cpu(4),
        weight: 16,
    },
    WorkloadSpec {
        label: "classifier-eff-accel",
        model: ModelId::EfficientNetLite0,
        dtype: DType::I8,
        path: ExecPath::Accel,
        weight: 14,
    },
    WorkloadSpec {
        label: "detector-ssd-accel",
        model: ModelId::SsdMobileNetV2,
        dtype: DType::I8,
        path: ExecPath::Accel,
        weight: 12,
    },
    WorkloadSpec {
        label: "pose-gpu",
        model: ModelId::PoseNet,
        dtype: DType::F32,
        path: ExecPath::Gpu,
        weight: 12,
    },
    WorkloadSpec {
        label: "classifier-sq-cpu",
        model: ModelId::SqueezeNet,
        dtype: DType::F32,
        path: ExecPath::Cpu(2),
        weight: 10,
    },
    WorkloadSpec {
        label: "segmenter-dlv3-accel",
        model: ModelId::DeeplabV3MobileNetV2,
        dtype: DType::I8,
        path: ExecPath::Accel,
        weight: 5,
    },
    WorkloadSpec {
        label: "classifier-inc3-cpu",
        model: ModelId::InceptionV3,
        dtype: DType::F32,
        path: ExecPath::Cpu(4),
        weight: 5,
    },
];

/// Chipset mix: share of each SoC in the fleet (integer weights, exact).
/// Skewed towards the SD845/855 mid-generation the way a real installed
/// base trails flagship launches.
pub const CHIPSET_MIX: [(SocId, u64); 4] = [
    (SocId::Sd835, 12),
    (SocId::Sd845, 38),
    (SocId::Sd855, 30),
    (SocId::Sd865, 20),
];

/// Background-app pressure mix: weight of running `i` concurrent
/// background inference loops.
pub const BACKGROUND_MIX: [u64; 4] = [45, 30, 17, 8];

/// Battery fraction under which a device enters saver mode (background
/// loops off, CPU interpreter capped at 2 threads).
pub const BATTERY_SAVER_BELOW: f64 = 0.20;

/// A second, co-resident serving tenant sampled onto a device: the
/// `aitax-serve` mix seen at population scale. The co-tenant's engine
/// contends with the device's main workload for the whole run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoTenant {
    /// Workload label of the co-resident tenant (cohort key).
    pub workload: &'static str,
    /// The engine the co-tenant's loop runs, routed for the device's
    /// chipset.
    pub engine: Engine,
}

/// A fleet described as weighted distributions plus a seed.
#[derive(Debug, Clone)]
pub struct PopulationSpec {
    /// Population name (artifact file names derive from it).
    pub name: String,
    /// Number of devices in the fleet.
    pub devices: usize,
    /// Root seed every device stream derives from.
    pub seed: u64,
    /// Probability that a device carries a sustained fault.
    pub fault_rate: f64,
    /// Probability that a device runs a co-resident tenant workload
    /// (default 0: single-tenant, the pre-serve population).
    pub multi_tenant_rate: f64,
}

impl PopulationSpec {
    /// The default population: 256 devices, seed 1, 3% faulty,
    /// single-tenant.
    pub fn new(name: impl Into<String>) -> Self {
        PopulationSpec {
            name: name.into(),
            devices: 256,
            seed: 1,
            fault_rate: 0.03,
            multi_tenant_rate: 0.0,
        }
    }

    /// Sets the device count.
    pub fn devices(mut self, n: usize) -> Self {
        self.devices = n.max(1);
        self
    }

    /// Sets the root seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-device fault probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn fault_rate(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "fault rate must be in [0,1]");
        self.fault_rate = p;
        self
    }

    /// Sets the probability that a device runs a co-resident tenant.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn multi_tenant_rate(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "multi-tenant rate must be in [0,1]"
        );
        self.multi_tenant_rate = p;
        self
    }

    /// Materializes device `k` — a pure function of `(seed, k)`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is outside the population.
    pub fn device(&self, k: usize) -> DeviceSpec {
        assert!(k < self.devices, "device {k} outside population");
        let root = SimRng::seed_from(self.seed);
        let mut rng = root.derive2(STREAM_DEVICE, k as u64);

        let soc = CHIPSET_MIX[weighted_index(&mut rng, &CHIPSET_MIX.map(|(_, w)| w))].0;
        let ambient_c = rng.normal(23.0, 6.0).clamp(-5.0, 45.0);
        let band = ThermalBand::from_ambient_c(ambient_c);
        let battery_frac = rng.uniform(0.03, 1.0);
        let battery_saver = battery_frac < BATTERY_SAVER_BELOW;
        let mut background_loops = weighted_index(&mut rng, &BACKGROUND_MIX);
        let workload = WORKLOADS[weighted_index(&mut rng, &WORKLOADS.map(|w| w.weight))];
        let mut path = workload.path;
        if battery_saver {
            background_loops = 0;
            if let ExecPath::Cpu(threads) = path {
                path = ExecPath::Cpu(threads.min(2));
            }
        }
        let fault = if rng.chance(self.fault_rate) {
            let kind = *rng.pick(&FaultKind::ALL);
            let start_ns = (rng.uniform(0.0, 50.0) * 1e6) as u64;
            Some((kind, start_ns))
        } else {
            None
        };
        // Co-tenant sampling draws from its own stream (see
        // [`STREAM_TENANT`]) and saver mode defers it like any other
        // non-foreground work.
        let mut trng = root.derive2(STREAM_TENANT, k as u64);
        let co_tenant = if !battery_saver && trng.chance(self.multi_tenant_rate) {
            let w = WORKLOADS[weighted_index(&mut trng, &WORKLOADS.map(|w| w.weight))];
            // The co-tenant loop re-runs the host graph on its own engine
            // (`E2eConfig::background` takes one graph); quant-only DSP
            // delegates reject float graphs, so on a float host those
            // co-tenants fall back to the CPU interpreter the way a real
            // delegate rejection does.
            let mut engine = w.path.engine_for(soc);
            if !workload.dtype.is_quantized()
                && matches!(engine, Engine::TfLiteHexagon { .. } | Engine::SnpeDsp)
            {
                engine = Engine::tflite_cpu(2);
            }
            Some(CoTenant {
                workload: w.label,
                engine,
            })
        } else {
            None
        };

        DeviceSpec {
            id: k,
            soc,
            ambient_c,
            band,
            battery_frac,
            battery_saver,
            background_loops,
            workload: workload.label,
            model: workload.model,
            dtype: workload.dtype,
            engine: path.engine_for(soc),
            fault,
            co_tenant,
            run_seed: root.derive2(STREAM_RUN, k as u64).next_u64(),
            probe_seed: root.derive2(STREAM_PROBE, k as u64).next_u64(),
        }
    }

    /// Requests device `k` serves when `total` requests are spread over
    /// the population: `total / devices`, with the remainder going one
    /// each to the lowest-numbered devices. A pure function of
    /// `(total, devices, k)` — shards never re-balance.
    pub fn requests_for(&self, k: usize, total: u64) -> u64 {
        let base = total / self.devices as u64;
        let rem = total % self.devices as u64;
        base + u64::from((k as u64) < rem)
    }
}

/// Picks an index with probability proportional to integer `weights`.
///
/// # Panics
///
/// Panics if the weights sum to zero.
fn weighted_index(rng: &mut SimRng, weights: &[u64]) -> usize {
    let total: u64 = weights.iter().sum();
    assert!(total > 0, "weights must not all be zero");
    let mut x = rng.uniform_u64(0, total);
    for (i, &w) in weights.iter().enumerate() {
        if x < w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

/// One fully-sampled device: everything its runs need, plain data.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Position in the population (the canonical aggregation order).
    pub id: usize,
    /// Sampled chipset.
    pub soc: SocId,
    /// Sampled ambient temperature (°C).
    pub ambient_c: f64,
    /// Thermal cohort of the ambient temperature.
    pub band: ThermalBand,
    /// Battery state of charge in `[0.03, 1]`.
    pub battery_frac: f64,
    /// Whether saver mode throttles this device.
    pub battery_saver: bool,
    /// Concurrent background inference loops.
    pub background_loops: usize,
    /// Workload label (cohort key).
    pub workload: &'static str,
    /// The model the workload runs.
    pub model: ModelId,
    /// Numeric format of the model.
    pub dtype: DType,
    /// Concrete engine after routing and saver capping.
    pub engine: Engine,
    /// Sustained fault this device carries: `(kind, start_ns)`.
    pub fault: Option<(FaultKind, u64)>,
    /// Co-resident tenant workload, if one was sampled.
    pub co_tenant: Option<CoTenant>,
    /// Seed of the main latency run.
    pub run_seed: u64,
    /// Seed of the traced energy-probe run.
    pub probe_seed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> PopulationSpec {
        PopulationSpec::new("test").devices(512).seed(9)
    }

    #[test]
    fn device_sampling_is_pure() {
        let p = spec();
        let a = p.device(17);
        // Sampling other devices in between changes nothing.
        let _ = p.device(0);
        let _ = p.device(511);
        assert_eq!(a, p.device(17));
        // A different population seed samples a different device.
        let other = spec().seed(10).device(17);
        assert_ne!(a.run_seed, other.run_seed);
    }

    #[test]
    fn distributions_cover_their_supports() {
        let p = spec();
        let devices: Vec<DeviceSpec> = (0..p.devices).map(|k| p.device(k)).collect();
        for soc in SocId::ALL {
            assert!(devices.iter().any(|d| d.soc == soc), "{soc} never sampled");
        }
        for band in ThermalBand::ALL {
            assert!(
                devices.iter().any(|d| d.band == band),
                "band {} never sampled",
                band.label()
            );
        }
        assert!(devices.iter().any(|d| d.background_loops > 0));
        assert!(devices.iter().any(|d| d.battery_saver));
        let faulty = devices.iter().filter(|d| d.fault.is_some()).count();
        assert!(faulty > 0, "3% of 512 devices should include faults");
        assert!(faulty < 60, "fault rate should stay near 3%, got {faulty}");
    }

    #[test]
    fn accel_routing_respects_chipset_and_quantization() {
        for soc in SocId::ALL {
            let engine = ExecPath::Accel.engine_for(soc);
            match soc {
                SocId::Sd835 => assert_eq!(engine, Engine::SnpeDsp),
                SocId::Sd845 | SocId::Sd855 => {
                    assert_eq!(engine, Engine::TfLiteHexagon { threads: 4 })
                }
                SocId::Sd865 => assert_eq!(engine.label(), "nnapi"),
            }
        }
        // Every accelerated workload is quantized — the DSP/Hexagon
        // compile paths reject float graphs.
        for w in WORKLOADS {
            if matches!(w.path, ExecPath::Accel) {
                assert!(w.dtype.is_quantized(), "{} must be I8", w.label);
            }
        }
    }

    #[test]
    fn co_tenants_sample_only_when_enabled_and_never_perturb_devices() {
        let p = spec();
        let multi = spec().multi_tenant_rate(0.6);
        let mut with_co = 0usize;
        for k in 0..p.devices {
            let base = p.device(k);
            assert!(base.co_tenant.is_none(), "default rate is single-tenant");
            let m = multi.device(k);
            // The tenant stream is separate: every other sampled field
            // is identical whether or not multi-tenancy is enabled.
            assert_eq!(
                DeviceSpec {
                    co_tenant: None,
                    ..m.clone()
                },
                base
            );
            if let Some(co) = m.co_tenant {
                with_co += 1;
                assert!(!m.battery_saver, "saver mode defers co-tenants");
                assert!(WORKLOADS.iter().any(|w| w.label == co.workload));
            }
        }
        assert!(with_co > 100, "rate 0.6 of 512 devices: got {with_co}");
        // Purity holds for the tenant stream too.
        assert_eq!(multi.device(17), multi.device(17));
    }

    #[test]
    fn battery_saver_disables_background_and_caps_cpu() {
        let p = spec();
        let savers: Vec<DeviceSpec> = (0..p.devices)
            .map(|k| p.device(k))
            .filter(|d| d.battery_saver)
            .collect();
        assert!(!savers.is_empty());
        for d in &savers {
            assert_eq!(d.background_loops, 0);
            if let Engine::TfLiteCpu { threads } = d.engine {
                assert!(threads <= 2, "saver caps CPU threads");
            }
        }
    }

    #[test]
    fn thermal_bands_partition_the_range() {
        assert_eq!(ThermalBand::from_ambient_c(-5.0), ThermalBand::Cold);
        assert_eq!(ThermalBand::from_ambient_c(15.0), ThermalBand::Cool);
        assert_eq!(ThermalBand::from_ambient_c(24.9), ThermalBand::Cool);
        assert_eq!(ThermalBand::from_ambient_c(25.0), ThermalBand::Warm);
        assert_eq!(ThermalBand::from_ambient_c(40.0), ThermalBand::Hot);
        for (i, b) in ThermalBand::ALL.iter().enumerate() {
            assert_eq!(b.index(), i);
        }
    }

    #[test]
    fn request_split_is_exact_and_front_loaded() {
        let p = PopulationSpec::new("t").devices(7);
        let total: u64 = (0..7).map(|k| p.requests_for(k, 23)).sum();
        assert_eq!(total, 23);
        assert_eq!(p.requests_for(0, 23), 4);
        assert_eq!(p.requests_for(1, 23), 4);
        assert_eq!(p.requests_for(2, 23), 3);
        assert_eq!(p.requests_for(6, 23), 3);
        // Fewer requests than devices → trailing devices sit idle.
        assert_eq!(p.requests_for(6, 3), 0);
    }

    #[test]
    fn weighted_index_is_exact_over_integers() {
        let mut rng = SimRng::seed_from(1);
        let weights = [1u64, 0, 3];
        let mut counts = [0usize; 3];
        for _ in 0..4000 {
            counts[weighted_index(&mut rng, &weights)] += 1;
        }
        assert_eq!(counts[1], 0, "zero weight never sampled");
        assert!(counts[2] > counts[0] * 2, "weights respected: {counts:?}");
    }
}
