//! Validated operator graphs.

use std::error::Error;
use std::fmt;

use aitax_tensor::DType;

use crate::op::{Op, OpKind};

/// Errors from graph construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The graph has no operators.
    Empty,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Empty => write!(f, "graph contains no operators"),
        }
    }
}

impl Error for GraphError {}

/// One operator instance in a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Layer name (unique within the graph, e.g. `"conv2d_3"`).
    pub name: String,
    /// The operator.
    pub op: Op,
}

/// A topologically-ordered operator list for one model.
///
/// Mobile inference graphs are executed (and NNAPI-partitioned) in
/// topological order; the IR stores exactly that order, which is all the
/// cost and partitioning analyses need.
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    name: String,
    dtype: DType,
    nodes: Vec<Node>,
    input_elements: u64,
    per_channel_quant: bool,
}

impl Graph {
    /// Builds a graph from ordered nodes.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Empty`] for an empty node list.
    pub fn new(
        name: impl Into<String>,
        dtype: DType,
        input_elements: u64,
        nodes: Vec<Node>,
    ) -> Result<Self, GraphError> {
        if nodes.is_empty() {
            return Err(GraphError::Empty);
        }
        Ok(Graph {
            name: name.into(),
            dtype,
            nodes,
            input_elements,
            per_channel_quant: false,
        })
    }

    /// Marks this graph as using per-channel (per-axis) quantized weights.
    ///
    /// Newer TFLite post-training-quantized models (EfficientNet-Lite era)
    /// quantize weights per output channel; SD845-generation NNAPI vendor
    /// drivers cannot run that configuration on the DSP and silently fall
    /// back to their CPU reference path — the root cause of the paper's
    /// Figure 5 slowdown.
    pub fn with_per_channel_quant(mut self, per_channel: bool) -> Graph {
        self.per_channel_quant = per_channel;
        self
    }

    /// Whether weights are per-channel quantized.
    pub fn per_channel_quant(&self) -> bool {
        self.per_channel_quant
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Numeric format of weights and activations.
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// A copy of this graph re-typed (e.g. the INT8 quantized variant).
    pub fn with_dtype(&self, dtype: DType) -> Graph {
        let mut g = self.clone();
        g.dtype = dtype;
        g
    }

    /// Input tensor element count.
    pub fn input_elements(&self) -> u64 {
        self.input_elements
    }

    /// Input tensor size in bytes for this graph's dtype.
    pub fn input_bytes(&self) -> u64 {
        self.input_elements * self.dtype.size_bytes() as u64
    }

    /// Output tensor size in bytes (last node's output).
    pub fn output_bytes(&self) -> u64 {
        self.nodes
            .last()
            .map(|n| n.op.output_elements() * self.dtype.size_bytes() as u64)
            .unwrap_or(0)
    }

    /// Ordered operators.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of operators.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph is empty (never true for a constructed graph).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total multiply-accumulates for one inference.
    pub fn total_macs(&self) -> u64 {
        self.nodes.iter().map(|n| n.op.macs()).sum()
    }

    /// Total trained parameters.
    pub fn total_params(&self) -> u64 {
        self.nodes.iter().map(|n| n.op.params()).sum()
    }

    /// Model file size in bytes for this dtype (parameters × width).
    pub fn weight_bytes(&self) -> u64 {
        self.total_params() * self.dtype.size_bytes() as u64
    }

    /// Histogram of operator kinds.
    pub fn kind_histogram(&self) -> Vec<(OpKind, usize)> {
        let mut counts = std::collections::BTreeMap::new();
        for n in &self.nodes {
            *counts.entry(n.op.kind()).or_insert(0usize) += 1;
        }
        counts.into_iter().collect()
    }
}

/// Incremental builder for [`Graph`].
///
/// # Example
///
/// ```
/// use aitax_models::graph::GraphBuilder;
/// use aitax_models::Op;
/// use aitax_tensor::DType;
///
/// let g = GraphBuilder::new("tiny", DType::F32, 224 * 224 * 3)
///     .push(Op::Conv2d { in_h: 224, in_w: 224, in_c: 3, out_c: 8, k: 3, stride: 2 })
///     .push(Op::Softmax { n: 8 })
///     .finish()?;
/// assert_eq!(g.len(), 2);
/// # Ok::<(), aitax_models::GraphError>(())
/// ```
#[derive(Debug)]
pub struct GraphBuilder {
    name: String,
    dtype: DType,
    input_elements: u64,
    nodes: Vec<Node>,
    counters: std::collections::BTreeMap<&'static str, usize>,
}

impl GraphBuilder {
    /// Starts a builder.
    pub fn new(name: impl Into<String>, dtype: DType, input_elements: u64) -> Self {
        GraphBuilder {
            name: name.into(),
            dtype,
            input_elements,
            nodes: Vec::new(),
            counters: std::collections::BTreeMap::new(),
        }
    }

    /// Appends an operator with an auto-generated unique name.
    pub fn push(mut self, op: Op) -> Self {
        let stem = match op.kind() {
            OpKind::Conv2d => "conv2d",
            OpKind::DepthwiseConv2d => "dwconv",
            OpKind::FullyConnected => "fc",
            OpKind::AvgPool => "avgpool",
            OpKind::MaxPool => "maxpool",
            OpKind::Softmax => "softmax",
            OpKind::Add => "add",
            OpKind::Concat => "concat",
            OpKind::Activation => "act",
            OpKind::Reshape => "reshape",
            OpKind::ResizeBilinear => "resize",
            OpKind::MatMul => "matmul",
            OpKind::LayerNorm => "layernorm",
            OpKind::Embedding => "embedding",
            OpKind::DetectionPostProcess => "detect_pp",
            OpKind::Mean => "mean",
        };
        let n = self.counters.entry(stem).or_insert(0);
        let name = format!("{stem}_{n}");
        *n += 1;
        self.nodes.push(Node { name, op });
        self
    }

    /// Appends many operators.
    pub fn extend(mut self, ops: impl IntoIterator<Item = Op>) -> Self {
        for op in ops {
            self = self.push(op);
        }
        self
    }

    /// Finalizes the graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Empty`] if no operators were pushed.
    pub fn finish(self) -> Result<Graph, GraphError> {
        Graph::new(self.name, self.dtype, self.input_elements, self.nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Graph {
        GraphBuilder::new("tiny", DType::F32, 10)
            .push(Op::Conv2d {
                in_h: 8,
                in_w: 8,
                in_c: 3,
                out_c: 4,
                k: 3,
                stride: 1,
            })
            .push(Op::Conv2d {
                in_h: 8,
                in_w: 8,
                in_c: 4,
                out_c: 4,
                k: 1,
                stride: 1,
            })
            .push(Op::Softmax { n: 4 })
            .finish()
            .unwrap()
    }

    #[test]
    fn empty_graph_rejected() {
        let err = GraphBuilder::new("e", DType::F32, 1).finish().unwrap_err();
        assert_eq!(err, GraphError::Empty);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn names_are_unique_and_stable() {
        let g = tiny();
        assert_eq!(g.nodes()[0].name, "conv2d_0");
        assert_eq!(g.nodes()[1].name, "conv2d_1");
        assert_eq!(g.nodes()[2].name, "softmax_0");
    }

    #[test]
    fn totals_sum_over_nodes() {
        let g = tiny();
        let macs: u64 = g.nodes().iter().map(|n| n.op.macs()).sum();
        assert_eq!(g.total_macs(), macs);
        assert!(g.total_params() > 0);
    }

    #[test]
    fn dtype_affects_byte_sizes() {
        let g = tiny();
        let q = g.with_dtype(DType::I8);
        assert_eq!(q.weight_bytes() * 4, g.weight_bytes());
        assert_eq!(q.input_bytes() * 4, g.input_bytes());
        assert_eq!(q.total_macs(), g.total_macs());
    }

    #[test]
    fn kind_histogram_counts() {
        let g = tiny();
        let h = g.kind_histogram();
        assert!(h.contains(&(OpKind::Conv2d, 2)));
        assert!(h.contains(&(OpKind::Softmax, 1)));
    }

    #[test]
    fn output_bytes_from_last_node() {
        let g = tiny();
        assert_eq!(g.output_bytes(), 4 * 4); // softmax over 4 f32 values
    }
}
