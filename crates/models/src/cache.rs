//! Process-wide compiled-graph cache.
//!
//! Building a zoo graph is pure — the operator list is a function of
//! `(ModelId, DType)` alone — so repeated runs of the same configuration
//! can share one immutable [`Graph`] instead of re-running the arch
//! builder per run. The cache is keyed by a `BTreeMap` (deterministic
//! iteration order, per the workspace determinism policy) and never
//! consults the clock, the environment, or any random stream: a cached
//! graph is definitionally identical to a freshly built one.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use aitax_tensor::DType;

use crate::graph::Graph;
use crate::zoo::{ModelId, Zoo};

type GraphCache = Mutex<BTreeMap<(ModelId, DType), Arc<Graph>>>;

static GRAPHS: OnceLock<GraphCache> = OnceLock::new();

/// The shared graph for `(model, dtype)`, building (and memoizing) it on
/// first use. Equivalent to `Zoo::entry(model).build_graph_with(dtype)`
/// wrapped in an `Arc`, but the builder runs once per distinct key for
/// the life of the process.
pub fn cached_graph(model: ModelId, dtype: DType) -> Arc<Graph> {
    let cache = GRAPHS.get_or_init(|| Mutex::new(BTreeMap::new()));
    // aitax-allow(panic-path): graph builders are pure and never panic,
    // so the mutex cannot be poisoned.
    let mut map = cache.lock().expect("graph cache poisoned");
    map.entry((model, dtype))
        .or_insert_with(|| Arc::new(Zoo::entry(model).build_graph_with(dtype)))
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_graph_matches_fresh_build() {
        for &model in &[ModelId::MobileNetV1, ModelId::InceptionV3] {
            for &dtype in &[DType::F32, DType::I8] {
                let fresh = Zoo::entry(model).build_graph_with(dtype);
                let cached = cached_graph(model, dtype);
                assert_eq!(*cached, fresh, "{model:?}/{dtype:?}");
            }
        }
    }

    #[test]
    fn repeat_lookups_share_one_allocation() {
        let a = cached_graph(ModelId::SqueezeNet, DType::F32);
        let b = cached_graph(ModelId::SqueezeNet, DType::F32);
        assert!(Arc::ptr_eq(&a, &b));
    }
}
