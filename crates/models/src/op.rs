//! The operator vocabulary.

use std::fmt;

/// A neural-network operator with enough shape information for analytic
/// cost accounting.
///
/// Spatial operators assume NHWC layout and `same` padding (output spatial
/// size = ceil(in/stride)), which matches the mobile architectures in the
/// zoo closely enough for MAC accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Standard 2-D convolution.
    Conv2d {
        /// Input height.
        in_h: usize,
        /// Input width.
        in_w: usize,
        /// Input channels.
        in_c: usize,
        /// Output channels.
        out_c: usize,
        /// Square kernel side.
        k: usize,
        /// Stride.
        stride: usize,
    },
    /// Depthwise 2-D convolution.
    DepthwiseConv2d {
        /// Input height.
        in_h: usize,
        /// Input width.
        in_w: usize,
        /// Channels (multiplier 1).
        c: usize,
        /// Square kernel side.
        k: usize,
        /// Stride.
        stride: usize,
    },
    /// Fully-connected / dense layer.
    FullyConnected {
        /// Input features.
        in_features: usize,
        /// Output features.
        out_features: usize,
    },
    /// Average pooling.
    AvgPool {
        /// Input height.
        in_h: usize,
        /// Input width.
        in_w: usize,
        /// Channels.
        c: usize,
        /// Square window.
        k: usize,
        /// Stride.
        stride: usize,
    },
    /// Max pooling.
    MaxPool {
        /// Input height.
        in_h: usize,
        /// Input width.
        in_w: usize,
        /// Channels.
        c: usize,
        /// Square window.
        k: usize,
        /// Stride.
        stride: usize,
    },
    /// Softmax over `n` values.
    Softmax {
        /// Element count.
        n: usize,
    },
    /// Elementwise residual addition.
    Add {
        /// Element count.
        elements: usize,
    },
    /// Channel concatenation (copy cost only).
    Concat {
        /// Element count of the result.
        elements: usize,
    },
    /// Standalone activation (ReLU/ReLU6/sigmoid/swish).
    Activation {
        /// Element count.
        elements: usize,
    },
    /// Shape change (copy/bookkeeping).
    Reshape {
        /// Element count.
        elements: usize,
    },
    /// In-graph bilinear resize (DeepLab decoder).
    ResizeBilinear {
        /// Output height.
        out_h: usize,
        /// Output width.
        out_w: usize,
        /// Channels.
        c: usize,
    },
    /// General matrix multiply `m×k · k×n` (transformers).
    MatMul {
        /// Rows of the left operand.
        m: usize,
        /// Shared dimension.
        k: usize,
        /// Columns of the right operand.
        n: usize,
        /// Whether the right operand is a trained weight (counts as
        /// parameters) or an activation (attention scores).
        weights: bool,
    },
    /// Layer normalization.
    LayerNorm {
        /// Element count.
        elements: usize,
    },
    /// Token embedding lookup.
    Embedding {
        /// Sequence length.
        tokens: usize,
        /// Embedding dimension.
        dim: usize,
        /// Vocabulary size (parameters).
        vocab: usize,
    },
    /// Fused SSD detection post-processing op (TFLite's custom op).
    DetectionPostProcess {
        /// Number of anchors.
        anchors: usize,
        /// Number of classes.
        classes: usize,
    },
    /// Global spatial mean (global average pool).
    Mean {
        /// Input element count.
        elements: usize,
    },
}

/// Operator kind without shape parameters — the key NNAPI vendor drivers
/// declare support against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpKind {
    Conv2d,
    DepthwiseConv2d,
    FullyConnected,
    AvgPool,
    MaxPool,
    Softmax,
    Add,
    Concat,
    Activation,
    Reshape,
    ResizeBilinear,
    MatMul,
    LayerNorm,
    Embedding,
    DetectionPostProcess,
    Mean,
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

fn out_spatial(in_dim: usize, stride: usize) -> usize {
    in_dim.div_ceil(stride)
}

impl Op {
    /// The shape-free operator kind.
    pub fn kind(&self) -> OpKind {
        match self {
            Op::Conv2d { .. } => OpKind::Conv2d,
            Op::DepthwiseConv2d { .. } => OpKind::DepthwiseConv2d,
            Op::FullyConnected { .. } => OpKind::FullyConnected,
            Op::AvgPool { .. } => OpKind::AvgPool,
            Op::MaxPool { .. } => OpKind::MaxPool,
            Op::Softmax { .. } => OpKind::Softmax,
            Op::Add { .. } => OpKind::Add,
            Op::Concat { .. } => OpKind::Concat,
            Op::Activation { .. } => OpKind::Activation,
            Op::Reshape { .. } => OpKind::Reshape,
            Op::ResizeBilinear { .. } => OpKind::ResizeBilinear,
            Op::MatMul { .. } => OpKind::MatMul,
            Op::LayerNorm { .. } => OpKind::LayerNorm,
            Op::Embedding { .. } => OpKind::Embedding,
            Op::DetectionPostProcess { .. } => OpKind::DetectionPostProcess,
            Op::Mean { .. } => OpKind::Mean,
        }
    }

    /// Multiply-accumulate count.
    pub fn macs(&self) -> u64 {
        match *self {
            Op::Conv2d {
                in_h,
                in_w,
                in_c,
                out_c,
                k,
                stride,
            } => {
                let oh = out_spatial(in_h, stride) as u64;
                let ow = out_spatial(in_w, stride) as u64;
                oh * ow * (out_c as u64) * (in_c as u64) * (k as u64) * (k as u64)
            }
            Op::DepthwiseConv2d {
                in_h,
                in_w,
                c,
                k,
                stride,
            } => {
                let oh = out_spatial(in_h, stride) as u64;
                let ow = out_spatial(in_w, stride) as u64;
                oh * ow * (c as u64) * (k as u64) * (k as u64)
            }
            Op::FullyConnected {
                in_features,
                out_features,
            } => (in_features as u64) * (out_features as u64),
            Op::AvgPool {
                in_h,
                in_w,
                c,
                k,
                stride,
            }
            | Op::MaxPool {
                in_h,
                in_w,
                c,
                k,
                stride,
            } => {
                let oh = out_spatial(in_h, stride) as u64;
                let ow = out_spatial(in_w, stride) as u64;
                // Comparisons/adds counted as one "mac" per window element.
                oh * ow * (c as u64) * (k as u64) * (k as u64)
            }
            Op::Softmax { n } => 4 * n as u64,
            Op::Add { elements } | Op::Activation { elements } => elements as u64,
            Op::Concat { elements } | Op::Reshape { elements } => (elements as u64) / 2,
            Op::ResizeBilinear { out_h, out_w, c } => {
                // 4 taps × interpolation per output element.
                8 * (out_h as u64) * (out_w as u64) * (c as u64)
            }
            Op::MatMul { m, k, n, .. } => (m as u64) * (k as u64) * (n as u64),
            Op::LayerNorm { elements } => 6 * elements as u64,
            Op::Embedding { tokens, dim, .. } => (tokens as u64) * (dim as u64),
            Op::DetectionPostProcess { anchors, classes } => {
                90 * (anchors as u64) + 10 * (anchors as u64) * (classes as u64)
            }
            Op::Mean { elements } => elements as u64,
        }
    }

    /// Trained parameter count (weights + biases).
    pub fn params(&self) -> u64 {
        match *self {
            Op::Conv2d { in_c, out_c, k, .. } => {
                (in_c as u64) * (out_c as u64) * (k as u64) * (k as u64) + out_c as u64
            }
            Op::DepthwiseConv2d { c, k, .. } => (c as u64) * (k as u64) * (k as u64) + c as u64,
            Op::FullyConnected {
                in_features,
                out_features,
            } => (in_features as u64) * (out_features as u64) + out_features as u64,
            Op::MatMul {
                k,
                n,
                weights: true,
                ..
            } => (k as u64) * (n as u64),
            Op::LayerNorm { elements } => 2 * (elements as u64).min(4096),
            Op::Embedding { dim, vocab, .. } => (vocab as u64) * (dim as u64),
            _ => 0,
        }
    }

    /// Output activation element count.
    pub fn output_elements(&self) -> u64 {
        match *self {
            Op::Conv2d {
                in_h,
                in_w,
                out_c,
                stride,
                ..
            } => (out_spatial(in_h, stride) * out_spatial(in_w, stride) * out_c) as u64,
            Op::DepthwiseConv2d {
                in_h,
                in_w,
                c,
                stride,
                ..
            } => (out_spatial(in_h, stride) * out_spatial(in_w, stride) * c) as u64,
            Op::FullyConnected { out_features, .. } => out_features as u64,
            Op::AvgPool {
                in_h,
                in_w,
                c,
                stride,
                ..
            }
            | Op::MaxPool {
                in_h,
                in_w,
                c,
                stride,
                ..
            } => (out_spatial(in_h, stride) * out_spatial(in_w, stride) * c) as u64,
            Op::Softmax { n } => n as u64,
            Op::Add { elements }
            | Op::Concat { elements }
            | Op::Activation { elements }
            | Op::Reshape { elements }
            | Op::LayerNorm { elements } => elements as u64,
            Op::ResizeBilinear { out_h, out_w, c } => (out_h * out_w * c) as u64,
            Op::MatMul { m, n, .. } => (m * n) as u64,
            Op::Embedding { tokens, dim, .. } => (tokens * dim) as u64,
            Op::DetectionPostProcess { anchors, .. } => (anchors.min(100) * 6) as u64,
            Op::Mean { elements } => ((elements / 49).max(1)) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_macs_formula() {
        // 224×224×3 → 112×112×32, 3×3 stride 2.
        let op = Op::Conv2d {
            in_h: 224,
            in_w: 224,
            in_c: 3,
            out_c: 32,
            k: 3,
            stride: 2,
        };
        assert_eq!(op.macs(), 112 * 112 * 32 * 3 * 9);
        assert_eq!(op.params(), 3 * 32 * 9 + 32);
        assert_eq!(op.output_elements(), 112 * 112 * 32);
        assert_eq!(op.kind(), OpKind::Conv2d);
    }

    #[test]
    fn depthwise_is_cheaper_than_full_conv() {
        let dw = Op::DepthwiseConv2d {
            in_h: 112,
            in_w: 112,
            c: 64,
            k: 3,
            stride: 1,
        };
        let full = Op::Conv2d {
            in_h: 112,
            in_w: 112,
            in_c: 64,
            out_c: 64,
            k: 3,
            stride: 1,
        };
        assert_eq!(full.macs() / dw.macs(), 64);
    }

    #[test]
    fn fc_macs_and_params() {
        let op = Op::FullyConnected {
            in_features: 1024,
            out_features: 1000,
        };
        assert_eq!(op.macs(), 1024 * 1000);
        assert_eq!(op.params(), 1024 * 1000 + 1000);
        assert_eq!(op.output_elements(), 1000);
    }

    #[test]
    fn matmul_weight_flag_controls_params() {
        let w = Op::MatMul {
            m: 384,
            k: 512,
            n: 512,
            weights: true,
        };
        let a = Op::MatMul {
            m: 384,
            k: 512,
            n: 512,
            weights: false,
        };
        assert_eq!(w.macs(), a.macs());
        assert_eq!(w.params(), 512 * 512);
        assert_eq!(a.params(), 0);
    }

    #[test]
    fn same_padding_spatial_math() {
        // 7 / stride 2 → 4 (ceil).
        let op = Op::MaxPool {
            in_h: 7,
            in_w: 7,
            c: 8,
            k: 2,
            stride: 2,
        };
        assert_eq!(op.output_elements(), 4 * 4 * 8);
    }

    #[test]
    fn elementwise_ops_have_no_params() {
        for op in [
            Op::Add { elements: 100 },
            Op::Softmax { n: 10 },
            Op::Activation { elements: 50 },
            Op::Mean {
                elements: 49 * 1024,
            },
        ] {
            assert_eq!(op.params(), 0, "{:?}", op.kind());
        }
    }

    #[test]
    fn embedding_params_scale_with_vocab() {
        let op = Op::Embedding {
            tokens: 384,
            dim: 128,
            vocab: 30522,
        };
        assert_eq!(op.params(), 30522 * 128);
        assert_eq!(op.output_elements(), 384 * 128);
    }
}
