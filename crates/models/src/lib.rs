//! Operator-level model IR and the Table I mobile model zoo.
//!
//! The paper benchmarks eleven TFLite-hosted models (Table I) spanning
//! classification, face recognition, segmentation, detection, pose
//! estimation and language processing. This crate provides:
//!
//! * [`Op`] — an operator vocabulary with analytic MAC/parameter/activation
//!   accounting (what inference cost models and NNAPI partitioning consume),
//! * [`Graph`] — a validated, topologically-ordered operator list,
//! * [`archs`] — programmatic builders reconstructing each model's layer
//!   structure with MAC/parameter totals close to the published networks,
//! * [`zoo`] — the Table I registry: task, input resolution, pre-/post-
//!   processing chain and the NNAPI/CPU dtype support matrix.
//!
//! Weights are never materialized: latency shape depends on operator
//! structure, arithmetic volume and datatype, not on trained values.
//!
//! # Example
//!
//! ```
//! use aitax_models::zoo::{ModelId, Zoo};
//!
//! let entry = Zoo::entry(ModelId::MobileNetV1);
//! let graph = entry.build_graph();
//! // MobileNet v1 is a ~569 MMAC network.
//! let mmacs = graph.total_macs() as f64 / 1e6;
//! assert!((450.0..700.0).contains(&mmacs));
//! ```

pub mod archs;
pub mod cache;
pub mod graph;
pub mod op;
pub mod zoo;

pub use cache::cached_graph;
pub use graph::{Graph, GraphError};
pub use op::{Op, OpKind};
pub use zoo::{MlTask, ModelId, PostTask, PreTask, SupportMatrix, Zoo, ZooEntry};
