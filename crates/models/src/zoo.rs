//! The Table I model zoo: every benchmark the paper runs, with its task,
//! input resolution, pre-/post-processing chain and framework/dtype
//! support matrix.

use aitax_tensor::DType;

use crate::archs;
use crate::graph::Graph;

/// Identifier for a zoo model (one row of Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ModelId {
    MobileNetV1,
    NasNetMobile,
    SqueezeNet,
    EfficientNetLite0,
    AlexNet,
    InceptionV4,
    InceptionV3,
    DeeplabV3MobileNetV2,
    SsdMobileNetV2,
    PoseNet,
    MobileBert,
}

impl ModelId {
    /// All models in Table I row order.
    pub const ALL: [ModelId; 11] = [
        ModelId::MobileNetV1,
        ModelId::NasNetMobile,
        ModelId::SqueezeNet,
        ModelId::EfficientNetLite0,
        ModelId::AlexNet,
        ModelId::InceptionV4,
        ModelId::InceptionV3,
        ModelId::DeeplabV3MobileNetV2,
        ModelId::SsdMobileNetV2,
        ModelId::PoseNet,
        ModelId::MobileBert,
    ];
}

impl std::fmt::Display for ModelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(Zoo::entry(*self).display_name)
    }
}

/// The ML task a model performs (Table I column 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MlTask {
    Classification,
    FaceRecognition,
    Segmentation,
    ObjectDetection,
    PoseEstimation,
    LanguageProcessing,
}

impl std::fmt::Display for MlTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            MlTask::Classification => "Classification",
            MlTask::FaceRecognition => "Face Recognition",
            MlTask::Segmentation => "Segmentation",
            MlTask::ObjectDetection => "Object Detection",
            MlTask::PoseEstimation => "Pose Estimation",
            MlTask::LanguageProcessing => "Language Processing",
        };
        f.write_str(s)
    }
}

/// Pre-processing tasks (Table I column 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PreTask {
    Scale,
    Crop,
    Normalize,
    Rotate,
    Tokenize,
}

impl std::fmt::Display for PreTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PreTask::Scale => "scale",
            PreTask::Crop => "crop",
            PreTask::Normalize => "normalize",
            PreTask::Rotate => "rotate",
            PreTask::Tokenize => "tokenization",
        };
        f.write_str(s)
    }
}

/// Post-processing tasks (Table I column 5). Tasks marked `*` in the
/// paper apply to quantized models only ([`PostTask::Dequantize`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PostTask {
    TopK,
    Dequantize,
    MaskFlattening,
    CalculateKeypoints,
    ComputeLogits,
}

impl std::fmt::Display for PostTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PostTask::TopK => "topK",
            PostTask::Dequantize => "dequantization*",
            PostTask::MaskFlattening => "mask flattening",
            PostTask::CalculateKeypoints => "calculate keypoints",
            PostTask::ComputeLogits => "compute logits",
        };
        f.write_str(s)
    }
}

/// Which framework/dtype combinations a model supports (Table I's last
/// four columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SupportMatrix {
    /// NNAPI with FP32 weights.
    pub nnapi_fp32: bool,
    /// NNAPI with INT8 weights.
    pub nnapi_int8: bool,
    /// CPU (TFLite kernels) with FP32.
    pub cpu_fp32: bool,
    /// CPU with INT8.
    pub cpu_int8: bool,
}

impl SupportMatrix {
    /// Whether the engine/dtype pair is available.
    pub fn supports(&self, nnapi: bool, dtype: DType) -> bool {
        match (nnapi, dtype.is_quantized()) {
            (true, false) => self.nnapi_fp32,
            (true, true) => self.nnapi_int8,
            (false, false) => self.cpu_fp32,
            (false, true) => self.cpu_int8,
        }
    }
}

/// One row of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct ZooEntry {
    /// Model identifier.
    pub id: ModelId,
    /// Task category.
    pub task: MlTask,
    /// Display name as printed in the paper.
    pub display_name: &'static str,
    /// Input resolution (`None` for text models).
    pub resolution: Option<(usize, usize)>,
    /// Pre-processing chain.
    pub preprocess: &'static [PreTask],
    /// Post-processing chain.
    pub postprocess: &'static [PostTask],
    /// Framework/dtype support.
    pub support: SupportMatrix,
}

impl ZooEntry {
    /// Builds the FP32 operator graph for this model.
    pub fn build_graph(&self) -> Graph {
        self.build_graph_with(DType::F32)
    }

    /// Builds the operator graph in a specific numeric format.
    ///
    /// EfficientNet-Lite0's quantized variant is marked per-channel
    /// quantized — the weight layout SD845-era NNAPI drivers cannot place
    /// on the DSP (the paper's Figure 5 pathology).
    pub fn build_graph_with(&self, dtype: DType) -> Graph {
        let per_channel = self.id == ModelId::EfficientNetLite0 && dtype.is_quantized();
        let g = match self.id {
            ModelId::MobileNetV1 => archs::mobilenet_v1(dtype),
            ModelId::NasNetMobile => archs::nasnet_mobile(dtype),
            ModelId::SqueezeNet => archs::squeezenet(dtype),
            ModelId::EfficientNetLite0 => archs::efficientnet_lite0(dtype),
            ModelId::AlexNet => archs::alexnet(dtype),
            ModelId::InceptionV4 => archs::inception_v4(dtype),
            ModelId::InceptionV3 => archs::inception_v3(dtype),
            ModelId::DeeplabV3MobileNetV2 => archs::deeplab_v3_mnv2(dtype),
            ModelId::SsdMobileNetV2 => archs::ssd_mobilenet_v2(dtype),
            ModelId::PoseNet => archs::posenet(dtype),
            ModelId::MobileBert => archs::mobile_bert(dtype),
        };
        g.with_per_channel_quant(per_channel)
    }
}

const CLASSIFY_PRE: &[PreTask] = &[PreTask::Scale, PreTask::Crop, PreTask::Normalize];
const CLASSIFY_POST: &[PostTask] = &[PostTask::TopK, PostTask::Dequantize];

/// The Table I registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Zoo;

impl Zoo {
    /// Metadata for one model.
    pub fn entry(id: ModelId) -> ZooEntry {
        let s = |nnapi_fp32, nnapi_int8, cpu_fp32, cpu_int8| SupportMatrix {
            nnapi_fp32,
            nnapi_int8,
            cpu_fp32,
            cpu_int8,
        };
        match id {
            ModelId::MobileNetV1 => ZooEntry {
                id,
                task: MlTask::Classification,
                display_name: "MobileNet 1.0 v1",
                resolution: Some((224, 224)),
                preprocess: CLASSIFY_PRE,
                postprocess: CLASSIFY_POST,
                support: s(true, true, true, true),
            },
            ModelId::NasNetMobile => ZooEntry {
                id,
                task: MlTask::Classification,
                display_name: "NasNet Mobile",
                resolution: Some((331, 331)),
                preprocess: CLASSIFY_PRE,
                postprocess: CLASSIFY_POST,
                support: s(true, false, true, false),
            },
            ModelId::SqueezeNet => ZooEntry {
                id,
                task: MlTask::Classification,
                display_name: "SqueezeNet",
                resolution: Some((227, 227)),
                preprocess: CLASSIFY_PRE,
                postprocess: CLASSIFY_POST,
                support: s(true, false, true, false),
            },
            ModelId::EfficientNetLite0 => ZooEntry {
                id,
                task: MlTask::Classification,
                display_name: "EfficientNet-Lite0",
                resolution: Some((224, 224)),
                preprocess: CLASSIFY_PRE,
                postprocess: CLASSIFY_POST,
                support: s(true, true, true, true),
            },
            ModelId::AlexNet => ZooEntry {
                id,
                task: MlTask::Classification,
                display_name: "AlexNet",
                resolution: Some((256, 256)),
                preprocess: CLASSIFY_PRE,
                postprocess: CLASSIFY_POST,
                support: s(false, false, true, true),
            },
            ModelId::InceptionV4 => ZooEntry {
                id,
                task: MlTask::FaceRecognition,
                display_name: "Inception v4",
                resolution: Some((299, 299)),
                preprocess: CLASSIFY_PRE,
                postprocess: CLASSIFY_POST,
                support: s(true, true, true, true),
            },
            ModelId::InceptionV3 => ZooEntry {
                id,
                task: MlTask::FaceRecognition,
                display_name: "Inception v3",
                resolution: Some((299, 299)),
                preprocess: CLASSIFY_PRE,
                postprocess: CLASSIFY_POST,
                support: s(true, true, true, true),
            },
            ModelId::DeeplabV3MobileNetV2 => ZooEntry {
                id,
                task: MlTask::Segmentation,
                display_name: "Deeplab-v3 Mobilenet-v2",
                resolution: Some((513, 513)),
                preprocess: &[PreTask::Scale, PreTask::Normalize],
                postprocess: &[PostTask::MaskFlattening],
                support: s(true, false, true, false),
            },
            ModelId::SsdMobileNetV2 => ZooEntry {
                id,
                task: MlTask::ObjectDetection,
                display_name: "SSD MobileNet v2",
                resolution: Some((300, 300)),
                preprocess: CLASSIFY_PRE,
                postprocess: CLASSIFY_POST,
                support: s(true, true, true, true),
            },
            ModelId::PoseNet => ZooEntry {
                id,
                task: MlTask::PoseEstimation,
                display_name: "PoseNet",
                resolution: Some((224, 224)),
                preprocess: &[
                    PreTask::Scale,
                    PreTask::Crop,
                    PreTask::Normalize,
                    PreTask::Rotate,
                ],
                postprocess: &[PostTask::CalculateKeypoints],
                support: s(true, false, true, false),
            },
            ModelId::MobileBert => ZooEntry {
                id,
                task: MlTask::LanguageProcessing,
                display_name: "Mobile BERT",
                resolution: None,
                preprocess: &[PreTask::Tokenize],
                postprocess: &[PostTask::TopK, PostTask::ComputeLogits],
                support: s(true, false, true, false),
            },
        }
    }

    /// Every entry, in Table I row order.
    pub fn all() -> Vec<ZooEntry> {
        ModelId::ALL.iter().map(|&id| Self::entry(id)).collect()
    }

    /// Entries supporting the given engine/dtype combination.
    pub fn supporting(nnapi: bool, dtype: DType) -> Vec<ZooEntry> {
        Self::all()
            .into_iter()
            .filter(|e| e.support.supports(nnapi, dtype))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_rows_like_table1() {
        assert_eq!(Zoo::all().len(), 11);
        assert_eq!(ModelId::ALL.len(), 11);
    }

    #[test]
    fn support_matrix_matches_table1() {
        // Spot-check the paper's Y/N grid.
        let m = Zoo::entry(ModelId::MobileNetV1).support;
        assert!(m.nnapi_fp32 && m.nnapi_int8 && m.cpu_fp32 && m.cpu_int8);
        let n = Zoo::entry(ModelId::NasNetMobile).support;
        assert!(n.nnapi_fp32 && !n.nnapi_int8 && n.cpu_fp32 && !n.cpu_int8);
        let a = Zoo::entry(ModelId::AlexNet).support;
        assert!(!a.nnapi_fp32 && !a.nnapi_int8 && a.cpu_fp32 && a.cpu_int8);
        let d = Zoo::entry(ModelId::DeeplabV3MobileNetV2).support;
        assert!(d.nnapi_fp32 && !d.nnapi_int8);
    }

    #[test]
    fn supports_maps_engine_dtype() {
        let m = Zoo::entry(ModelId::AlexNet).support;
        assert!(!m.supports(true, DType::F32));
        assert!(m.supports(false, DType::F32));
        assert!(m.supports(false, DType::I8));
    }

    #[test]
    fn resolutions_match_table1() {
        let expect = [
            (ModelId::MobileNetV1, Some((224, 224))),
            (ModelId::NasNetMobile, Some((331, 331))),
            (ModelId::SqueezeNet, Some((227, 227))),
            (ModelId::EfficientNetLite0, Some((224, 224))),
            (ModelId::AlexNet, Some((256, 256))),
            (ModelId::InceptionV4, Some((299, 299))),
            (ModelId::InceptionV3, Some((299, 299))),
            (ModelId::DeeplabV3MobileNetV2, Some((513, 513))),
            (ModelId::SsdMobileNetV2, Some((300, 300))),
            (ModelId::PoseNet, Some((224, 224))),
            (ModelId::MobileBert, None),
        ];
        for (id, res) in expect {
            assert_eq!(Zoo::entry(id).resolution, res, "{id:?}");
        }
    }

    #[test]
    fn posenet_is_the_only_rotator() {
        for e in Zoo::all() {
            let rotates = e.preprocess.contains(&PreTask::Rotate);
            assert_eq!(rotates, e.id == ModelId::PoseNet, "{:?}", e.id);
        }
    }

    #[test]
    fn bert_tokenizes_instead_of_scaling() {
        let e = Zoo::entry(ModelId::MobileBert);
        assert_eq!(e.preprocess, &[PreTask::Tokenize]);
        assert!(e.resolution.is_none());
    }

    #[test]
    fn nnapi_int8_set_matches_fig_targets() {
        // Quantized NNAPI models (the Fig. 4 quantized series).
        let ids: Vec<ModelId> = Zoo::supporting(true, DType::I8)
            .iter()
            .map(|e| e.id)
            .collect();
        assert_eq!(
            ids,
            vec![
                ModelId::MobileNetV1,
                ModelId::EfficientNetLite0,
                ModelId::InceptionV4,
                ModelId::InceptionV3,
                ModelId::SsdMobileNetV2,
            ]
        );
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(ModelId::MobileNetV1.to_string(), "MobileNet 1.0 v1");
        assert_eq!(
            ModelId::DeeplabV3MobileNetV2.to_string(),
            "Deeplab-v3 Mobilenet-v2"
        );
    }

    #[test]
    fn graphs_build_for_all_entries() {
        for e in Zoo::all() {
            let g = e.build_graph();
            assert!(g.total_macs() > 0, "{:?}", e.id);
            if let Some((h, w)) = e.resolution {
                assert_eq!(g.input_elements(), (h * w * 3) as u64, "{:?}", e.id);
            }
        }
    }
}
