//! Programmatic reconstructions of the Table I model architectures.
//!
//! Each builder reproduces the published layer structure closely enough
//! that total MACs and parameters land near the real networks (asserted by
//! tests). NasNet-Mobile is the one deliberate approximation: its cell
//! search result is intricate, so we emit a structurally similar
//! separable-conv cell stack calibrated to its published totals (see
//! DESIGN.md).

mod bert;
mod heads;
mod inception;
mod nasnet;
mod vision;

pub use bert::mobile_bert;
pub use heads::{deeplab_v3_mnv2, posenet, ssd_mobilenet_v2};
pub use inception::{inception_v3, inception_v4};
pub use nasnet::nasnet_mobile;
pub use vision::{alexnet, efficientnet_lite0, mobilenet_v1, squeezenet};

use crate::op::Op;

/// Emits a depthwise-separable block (depthwise k×k then pointwise 1×1),
/// returning the ops and the output spatial size.
pub(crate) fn separable(
    in_h: usize,
    in_w: usize,
    in_c: usize,
    out_c: usize,
    k: usize,
    stride: usize,
) -> (Vec<Op>, usize, usize) {
    let oh = in_h.div_ceil(stride);
    let ow = in_w.div_ceil(stride);
    let ops = vec![
        Op::DepthwiseConv2d {
            in_h,
            in_w,
            c: in_c,
            k,
            stride,
        },
        Op::Conv2d {
            in_h: oh,
            in_w: ow,
            in_c,
            out_c,
            k: 1,
            stride: 1,
        },
    ];
    (ops, oh, ow)
}

/// Emits an inverted-residual MBConv block (MobileNet v2 / EfficientNet),
/// returning the ops and the output spatial size.
pub(crate) fn mbconv(
    in_h: usize,
    in_w: usize,
    in_c: usize,
    out_c: usize,
    expand: usize,
    k: usize,
    stride: usize,
) -> (Vec<Op>, usize, usize) {
    let mid = in_c * expand;
    let mut ops = Vec::new();
    if expand != 1 {
        ops.push(Op::Conv2d {
            in_h,
            in_w,
            in_c,
            out_c: mid,
            k: 1,
            stride: 1,
        });
    }
    let oh = in_h.div_ceil(stride);
    let ow = in_w.div_ceil(stride);
    ops.push(Op::DepthwiseConv2d {
        in_h,
        in_w,
        c: mid,
        k,
        stride,
    });
    ops.push(Op::Conv2d {
        in_h: oh,
        in_w: ow,
        in_c: mid,
        out_c,
        k: 1,
        stride: 1,
    });
    if stride == 1 && in_c == out_c {
        ops.push(Op::Add {
            elements: oh * ow * out_c,
        });
    }
    (ops, oh, ow)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::{ModelId, Zoo};
    use aitax_tensor::DType;

    /// Published (MMACs, M params) and tolerance for each model.
    fn published(id: ModelId) -> (f64, f64, f64) {
        match id {
            ModelId::MobileNetV1 => (569.0, 4.24, 0.15),
            ModelId::NasNetMobile => (564.0, 5.3, 0.45),
            ModelId::SqueezeNet => (837.0, 1.25, 0.35),
            ModelId::EfficientNetLite0 => (407.0, 4.7, 0.30),
            ModelId::AlexNet => (1_100.0, 61.0, 0.40),
            ModelId::InceptionV3 => (5_700.0, 23.8, 0.30),
            ModelId::InceptionV4 => (12_300.0, 42.7, 0.35),
            ModelId::DeeplabV3MobileNetV2 => (2_750.0, 2.8, 0.45),
            ModelId::SsdMobileNetV2 => (800.0, 4.3, 0.50),
            ModelId::PoseNet => (820.0, 3.3, 0.45),
            ModelId::MobileBert => (2_700.0, 25.3, 0.40),
        }
    }

    #[test]
    fn totals_near_published_figures() {
        for id in ModelId::ALL {
            let g = Zoo::entry(id).build_graph();
            let (mmacs, mparams, tol) = published(id);
            let got_macs = g.total_macs() as f64 / 1e6;
            let got_params = g.total_params() as f64 / 1e6;
            assert!(
                (got_macs - mmacs).abs() / mmacs <= tol,
                "{id:?}: MACs {got_macs:.0}M vs published {mmacs:.0}M (tol {tol})"
            );
            assert!(
                (got_params - mparams).abs() / mparams <= tol,
                "{id:?}: params {got_params:.2}M vs published {mparams:.2}M (tol {tol})"
            );
        }
    }

    #[test]
    fn inception_v4_is_heavier_than_v3() {
        let v3 = inception_v3(DType::F32);
        let v4 = inception_v4(DType::F32);
        assert!(v4.total_macs() > v3.total_macs());
        assert!(v4.total_params() > v3.total_params());
        assert!(v4.len() > v3.len());
    }

    #[test]
    fn mobile_models_are_small() {
        for id in [
            ModelId::MobileNetV1,
            ModelId::EfficientNetLite0,
            ModelId::SqueezeNet,
        ] {
            let g = Zoo::entry(id).build_graph();
            assert!(
                g.total_params() < 10_000_000,
                "{id:?} should be mobile-sized"
            );
        }
    }

    #[test]
    fn separable_block_shapes() {
        let (ops, oh, ow) = separable(112, 112, 32, 64, 3, 2);
        assert_eq!(ops.len(), 2);
        assert_eq!((oh, ow), (56, 56));
    }

    #[test]
    fn mbconv_residual_only_when_shapes_match() {
        let (with_res, _, _) = mbconv(56, 56, 24, 24, 6, 3, 1);
        let (no_res_stride, _, _) = mbconv(56, 56, 24, 24, 6, 3, 2);
        let (no_res_chan, _, _) = mbconv(56, 56, 24, 40, 6, 3, 1);
        assert_eq!(with_res.len(), 4);
        assert_eq!(no_res_stride.len(), 3);
        assert_eq!(no_res_chan.len(), 3);
    }

    #[test]
    fn quantized_variants_share_structure() {
        let f = mobilenet_v1(DType::F32);
        let q = mobilenet_v1(DType::I8);
        assert_eq!(f.len(), q.len());
        assert_eq!(f.total_macs(), q.total_macs());
        assert_eq!(q.weight_bytes() * 4, f.weight_bytes());
    }
}
