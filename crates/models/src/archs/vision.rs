//! Classification backbones: MobileNet v1, SqueezeNet, AlexNet,
//! EfficientNet-Lite0.

use aitax_tensor::DType;

use crate::graph::{Graph, GraphBuilder};
use crate::op::Op;

use super::{mbconv, separable};

/// MobileNet 1.0 v1 at 224×224 — the canonical mobile classifier
/// (published: 569 MMACs, 4.24 M params).
pub fn mobilenet_v1(dtype: DType) -> Graph {
    let mut b = GraphBuilder::new("mobilenet_v1_1.0_224", dtype, 224 * 224 * 3).push(Op::Conv2d {
        in_h: 224,
        in_w: 224,
        in_c: 3,
        out_c: 32,
        k: 3,
        stride: 2,
    });
    // (in_c, out_c, stride) for the 13 depthwise-separable blocks.
    let blocks = [
        (32, 64, 1),
        (64, 128, 2),
        (128, 128, 1),
        (128, 256, 2),
        (256, 256, 1),
        (256, 512, 2),
        (512, 512, 1),
        (512, 512, 1),
        (512, 512, 1),
        (512, 512, 1),
        (512, 512, 1),
        (512, 1024, 2),
        (1024, 1024, 1),
    ];
    let (mut h, mut w) = (112, 112);
    for (in_c, out_c, stride) in blocks {
        let (ops, nh, nw) = separable(h, w, in_c, out_c, 3, stride);
        b = b.extend(ops);
        h = nh;
        w = nw;
    }
    b.push(Op::Mean {
        elements: h * w * 1024,
    })
    .push(Op::FullyConnected {
        in_features: 1024,
        out_features: 1001,
    })
    .push(Op::Softmax { n: 1001 })
    .finish()
    // aitax-allow(panic-path): graph is statically non-empty by construction
    .expect("mobilenet v1 graph is non-empty")
}

/// SqueezeNet v1.0 at 227×227 (published: ≈837 MMACs, 1.25 M params).
pub fn squeezenet(dtype: DType) -> Graph {
    let mut b = GraphBuilder::new("squeezenet", dtype, 227 * 227 * 3).push(Op::Conv2d {
        in_h: 227,
        in_w: 227,
        in_c: 3,
        out_c: 96,
        k: 7,
        stride: 2,
    });
    let mut h = 114;
    b = b.push(Op::MaxPool {
        in_h: h,
        in_w: h,
        c: 96,
        k: 3,
        stride: 2,
    });
    h = 57;

    // fire(in, squeeze, expand): squeeze 1×1, expand 1×1 and 3×3, concat.
    fn fire(b: GraphBuilder, h: usize, in_c: usize, s: usize, e: usize) -> GraphBuilder {
        b.push(Op::Conv2d {
            in_h: h,
            in_w: h,
            in_c,
            out_c: s,
            k: 1,
            stride: 1,
        })
        .push(Op::Conv2d {
            in_h: h,
            in_w: h,
            in_c: s,
            out_c: e,
            k: 1,
            stride: 1,
        })
        .push(Op::Conv2d {
            in_h: h,
            in_w: h,
            in_c: s,
            out_c: e,
            k: 3,
            stride: 1,
        })
        .push(Op::Concat {
            elements: h * h * 2 * e,
        })
    }

    b = fire(b, h, 96, 16, 64); // fire2
    b = fire(b, h, 128, 16, 64); // fire3
    b = fire(b, h, 128, 32, 128); // fire4
    b = b.push(Op::MaxPool {
        in_h: h,
        in_w: h,
        c: 256,
        k: 3,
        stride: 2,
    });
    h = 29;
    b = fire(b, h, 256, 32, 128); // fire5
    b = fire(b, h, 256, 48, 192); // fire6
    b = fire(b, h, 384, 48, 192); // fire7
    b = fire(b, h, 384, 64, 256); // fire8
    b = b.push(Op::MaxPool {
        in_h: h,
        in_w: h,
        c: 512,
        k: 3,
        stride: 2,
    });
    h = 15;
    b = fire(b, h, 512, 64, 256); // fire9
    b.push(Op::Conv2d {
        in_h: h,
        in_w: h,
        in_c: 512,
        out_c: 1000,
        k: 1,
        stride: 1,
    })
    .push(Op::Mean {
        elements: h * h * 1000,
    })
    .push(Op::Softmax { n: 1000 })
    .finish()
    // aitax-allow(panic-path): graph is statically non-empty by construction
    .expect("squeezenet graph is non-empty")
}

/// AlexNet at 256×256 (published at 227: ≈727 MMACs, 61 M params; Table I
/// lists the 256×256 variant).
pub fn alexnet(dtype: DType) -> Graph {
    GraphBuilder::new("alexnet", dtype, 256 * 256 * 3)
        .push(Op::Conv2d {
            in_h: 256,
            in_w: 256,
            in_c: 3,
            out_c: 96,
            k: 11,
            stride: 4,
        })
        .push(Op::MaxPool {
            in_h: 64,
            in_w: 64,
            c: 96,
            k: 3,
            stride: 2,
        })
        // conv2 runs as two groups of 48→128; grouping halves the MACs,
        // modelled by halving the input channels.
        .push(Op::Conv2d {
            in_h: 32,
            in_w: 32,
            in_c: 48,
            out_c: 256,
            k: 5,
            stride: 1,
        })
        .push(Op::MaxPool {
            in_h: 32,
            in_w: 32,
            c: 256,
            k: 3,
            stride: 2,
        })
        .push(Op::Conv2d {
            in_h: 16,
            in_w: 16,
            in_c: 256,
            out_c: 384,
            k: 3,
            stride: 1,
        })
        // conv4 and conv5 are also 2-group convolutions.
        .push(Op::Conv2d {
            in_h: 16,
            in_w: 16,
            in_c: 192,
            out_c: 384,
            k: 3,
            stride: 1,
        })
        .push(Op::Conv2d {
            in_h: 16,
            in_w: 16,
            in_c: 192,
            out_c: 256,
            k: 3,
            stride: 1,
        })
        .push(Op::MaxPool {
            in_h: 16,
            in_w: 16,
            c: 256,
            k: 3,
            stride: 2,
        })
        // Adaptive pooling to the classic 6×6×256 = 9216 flatten (as the
        // Caffe/TFLite ports do for larger inputs).
        .push(Op::AvgPool {
            in_h: 8,
            in_w: 8,
            c: 256,
            k: 3,
            stride: 1,
        })
        .push(Op::Reshape {
            elements: 6 * 6 * 256,
        })
        .push(Op::FullyConnected {
            in_features: 6 * 6 * 256,
            out_features: 4096,
        })
        .push(Op::FullyConnected {
            in_features: 4096,
            out_features: 4096,
        })
        .push(Op::FullyConnected {
            in_features: 4096,
            out_features: 1000,
        })
        .push(Op::Softmax { n: 1000 })
        .finish()
        // aitax-allow(panic-path): graph is statically non-empty by construction
        .expect("alexnet graph is non-empty")
}

/// EfficientNet-Lite0 at 224×224 (published: ≈407 MMACs, 4.7 M params).
///
/// The Lite variants drop squeeze-and-excite and swap swish for ReLU6 —
/// and, crucially for Fig. 5, their INT8 variants use operator
/// configurations with patchy NNAPI driver support on SD845-era phones.
pub fn efficientnet_lite0(dtype: DType) -> Graph {
    let mut b = GraphBuilder::new("efficientnet_lite0", dtype, 224 * 224 * 3).push(Op::Conv2d {
        in_h: 224,
        in_w: 224,
        in_c: 3,
        out_c: 32,
        k: 3,
        stride: 2,
    });
    // (expand, k, out_c, repeats, first_stride)
    let stages = [
        (1, 3, 16, 1, 1),
        (6, 3, 24, 2, 2),
        (6, 5, 40, 2, 2),
        (6, 3, 80, 3, 2),
        (6, 5, 112, 3, 1),
        (6, 5, 192, 4, 2),
        (6, 3, 320, 1, 1),
    ];
    let (mut h, mut w) = (112, 112);
    let mut in_c = 32;
    for (expand, k, out_c, repeats, first_stride) in stages {
        for r in 0..repeats {
            let stride = if r == 0 { first_stride } else { 1 };
            let (ops, nh, nw) = mbconv(h, w, in_c, out_c, expand, k, stride);
            b = b.extend(ops);
            h = nh;
            w = nw;
            in_c = out_c;
        }
    }
    b.push(Op::Conv2d {
        in_h: h,
        in_w: w,
        in_c,
        out_c: 1280,
        k: 1,
        stride: 1,
    })
    .push(Op::Mean {
        elements: h * w * 1280,
    })
    .push(Op::FullyConnected {
        in_features: 1280,
        out_features: 1000,
    })
    .push(Op::Softmax { n: 1000 })
    .finish()
    // aitax-allow(panic-path): graph is statically non-empty by construction
    .expect("efficientnet-lite0 graph is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpKind;

    #[test]
    fn mobilenet_v1_structure() {
        let g = mobilenet_v1(DType::F32);
        let hist = g.kind_histogram();
        let dw = hist
            .iter()
            .find(|(k, _)| *k == OpKind::DepthwiseConv2d)
            .unwrap()
            .1;
        assert_eq!(dw, 13, "13 depthwise blocks");
        // 1 stem + 13 pointwise convs.
        let conv = hist.iter().find(|(k, _)| *k == OpKind::Conv2d).unwrap().1;
        assert_eq!(conv, 14);
        assert_eq!(g.total_params(), {
            // Exact published structure → ≈4.2M params.
            g.total_params()
        });
        let mparams = g.total_params() as f64 / 1e6;
        assert!((4.0..4.5).contains(&mparams), "params {mparams}M");
    }

    #[test]
    fn mobilenet_v1_macs_match_paper_value() {
        let g = mobilenet_v1(DType::F32);
        let mmacs = g.total_macs() as f64 / 1e6;
        assert!((540.0..620.0).contains(&mmacs), "MACs {mmacs}M");
    }

    #[test]
    fn squeezenet_is_parameter_frugal() {
        let g = squeezenet(DType::F32);
        let mparams = g.total_params() as f64 / 1e6;
        assert!((1.0..1.7).contains(&mparams), "params {mparams}M");
    }

    #[test]
    fn alexnet_params_dominated_by_fc() {
        let g = alexnet(DType::F32);
        let fc_params: u64 = g
            .nodes()
            .iter()
            .filter(|n| n.op.kind() == OpKind::FullyConnected)
            .map(|n| n.op.params())
            .sum();
        assert!(fc_params as f64 / g.total_params() as f64 > 0.85);
    }

    #[test]
    fn efficientnet_has_residual_adds() {
        let g = efficientnet_lite0(DType::F32);
        let adds = g
            .nodes()
            .iter()
            .filter(|n| n.op.kind() == OpKind::Add)
            .count();
        assert!(adds >= 8, "expected inverted-residual adds, got {adds}");
    }

    #[test]
    fn input_sizes_match_table1() {
        assert_eq!(mobilenet_v1(DType::F32).input_elements(), 224 * 224 * 3);
        assert_eq!(squeezenet(DType::F32).input_elements(), 227 * 227 * 3);
        assert_eq!(alexnet(DType::F32).input_elements(), 256 * 256 * 3);
        assert_eq!(
            efficientnet_lite0(DType::F32).input_elements(),
            224 * 224 * 3
        );
    }
}
