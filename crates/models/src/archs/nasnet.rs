//! NasNet-Mobile (approximated).
//!
//! NasNet's searched cells are too irregular to transcribe exactly;
//! following DESIGN.md's substitution rule we emit a structurally similar
//! stack of separable-convolution cells (the dominant NasNet primitive)
//! with the real channel progression (44 → 88 → 176 → 352) and spatial
//! schedule, calibrated so total MACs/params land near the published
//! 564 MMACs / 5.3 M params.

use aitax_tensor::DType;

use crate::graph::{Graph, GraphBuilder};
use crate::op::Op;

use super::separable;

/// One NasNet-style cell.
///
/// Real NasNet cells concatenate their branch outputs, so the next cell
/// sees a widened input it first squeezes with a 1×1 "adjust" convolution
/// — that projection carries much of NasNet's parameter mass. `in_c` is
/// the (possibly widened) input width; the cell computes at width `c` and
/// concatenates back to `2c`.
fn cell(mut b: GraphBuilder, h: usize, in_c: usize, c: usize) -> GraphBuilder {
    if in_c != c {
        b = b.push(Op::Conv2d {
            in_h: h,
            in_w: h,
            in_c,
            out_c: c,
            k: 1,
            stride: 1,
        });
    }
    for k in [5, 3] {
        let (ops, _, _) = separable(h, h, c, c, k, 1);
        b = b.extend(ops);
        b = b.push(Op::Add {
            elements: h * h * c,
        });
    }
    b.push(Op::Concat {
        elements: h * h * c * 2,
    })
}

/// A reduction cell: strided separables halving the spatial dims and
/// doubling channels.
fn reduction(mut b: GraphBuilder, h: usize, in_c: usize, out_c: usize) -> (GraphBuilder, usize) {
    let (ops, nh, _) = separable(h, h, in_c, out_c, 5, 2);
    b = b.extend(ops);
    let (ops2, _, _) = separable(nh, nh, out_c, out_c, 3, 1);
    b = b.extend(ops2);
    b = b.push(Op::Add {
        elements: nh * nh * out_c,
    });
    (b, nh)
}

/// NasNet-Mobile at 331×331 (published: 564 MMACs, 5.3 M params).
pub fn nasnet_mobile(dtype: DType) -> Graph {
    let mut b = GraphBuilder::new("nasnet_mobile", dtype, 331 * 331 * 3).push(Op::Conv2d {
        in_h: 331,
        in_w: 331,
        in_c: 3,
        out_c: 32,
        k: 3,
        stride: 2,
    });
    let mut h = 166;
    // Two stem reduction cells take 331 input down to 42×42 before the
    // first normal cells, as the real network does.
    let (nb, nh) = reduction(b, h, 32, 44);
    b = nb;
    h = nh;
    let (nb, nh) = reduction(b, h, 44, 88);
    b = nb;
    h = nh;
    // 3 normal cells at 42×42, width 88 (first sees the reduction output,
    // later ones the 2×-wide concat).
    b = cell(b, h, 88, 88);
    for _ in 0..2 {
        b = cell(b, h, 176, 88);
    }
    let (nb, nh) = reduction(b, h, 176, 176);
    b = nb;
    h = nh;
    // 3 normal cells at 21×21, width 176.
    b = cell(b, h, 176, 176);
    for _ in 0..2 {
        b = cell(b, h, 352, 176);
    }
    let (nb, nh) = reduction(b, h, 352, 352);
    b = nb;
    h = nh;
    // 3 normal cells at 11×11, width 352, then the 1056-wide head.
    b = cell(b, h, 352, 352);
    for _ in 0..2 {
        b = cell(b, h, 704, 352);
    }
    b.push(Op::Conv2d {
        in_h: h,
        in_w: h,
        in_c: 704,
        out_c: 1056,
        k: 1,
        stride: 1,
    })
    .push(Op::Mean {
        elements: h * h * 1056,
    })
    .push(Op::FullyConnected {
        in_features: 1056,
        out_features: 1001,
    })
    .push(Op::Softmax { n: 1001 })
    .finish()
    // aitax-allow(panic-path): graph is statically non-empty by construction
    .expect("nasnet graph is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpKind;

    #[test]
    fn totals_in_calibration_band() {
        let g = nasnet_mobile(DType::F32);
        let mmacs = g.total_macs() as f64 / 1e6;
        let mparams = g.total_params() as f64 / 1e6;
        assert!((350.0..820.0).contains(&mmacs), "MACs {mmacs}M");
        assert!((2.9..7.7).contains(&mparams), "params {mparams}M");
    }

    #[test]
    fn cell_stack_is_deep() {
        // NasNet has many more ops than MobileNet — its defining trait for
        // scheduling/partitioning purposes.
        let g = nasnet_mobile(DType::F32);
        assert!(g.len() > 60, "got {} ops", g.len());
        let dw = g
            .nodes()
            .iter()
            .filter(|n| n.op.kind() == OpKind::DepthwiseConv2d)
            .count();
        assert!(dw > 20, "got {dw} depthwise convs");
    }

    #[test]
    fn input_is_331() {
        assert_eq!(nasnet_mobile(DType::F32).input_elements(), 331 * 331 * 3);
    }
}
