//! Inception v3 and v4 — the paper's "more general-purpose" face
//! recognition models, "significantly more parameters and operations than
//! other more mobile-friendly models" (§IV-A).

use aitax_tensor::DType;

use crate::graph::{Graph, GraphBuilder};
use crate::op::Op;

fn conv(h: usize, in_c: usize, out_c: usize, k: usize, stride: usize) -> Op {
    Op::Conv2d {
        in_h: h,
        in_w: h,
        in_c,
        out_c,
        k,
        stride,
    }
}

/// Inception-A module at 35×35 (branches: 1×1, 5×5, double-3×3, pool-proj).
fn inception_a(b: GraphBuilder, in_c: usize, pool_c: usize) -> GraphBuilder {
    let h = 35;
    let out_c = 64 + 64 + 96 + pool_c;
    b.push(conv(h, in_c, 64, 1, 1)) // branch 1: 1×1
        .push(conv(h, in_c, 48, 1, 1)) // branch 2: 1×1 → 5×5
        .push(conv(h, 48, 64, 5, 1))
        .push(conv(h, in_c, 64, 1, 1)) // branch 3: 1×1 → 3×3 → 3×3
        .push(conv(h, 64, 96, 3, 1))
        .push(conv(h, 96, 96, 3, 1))
        .push(Op::AvgPool {
            in_h: h,
            in_w: h,
            c: in_c,
            k: 3,
            stride: 1,
        }) // branch 4: pool → 1×1
        .push(conv(h, in_c, pool_c, 1, 1))
        .push(Op::Concat {
            elements: h * h * out_c,
        })
}

/// Inception-B module at 17×17 (factorized 7×7 branches approximated with
/// equivalent-cost 7×1/1×7 pairs expressed as two 7-tap convolutions).
fn inception_b(b: GraphBuilder, in_c: usize, mid: usize) -> GraphBuilder {
    let h = 17;
    // Factorized 1×7·7×1 pair costs ≈ 2·7·C·C' per pixel; model each pair
    // as one 7-tap 1-D conv op pair using k=7 with a √ channel trick kept
    // simple: two convs with k=7 but cost halved via channel split.
    let out_c = 192 * 4;
    b.push(conv(h, in_c, 192, 1, 1)) // branch 1
        .push(conv(h, in_c, mid, 1, 1)) // branch 2: 1×1 → (1×7,7×1)
        .push(Op::MatMul {
            m: h * h,
            k: mid * 7,
            n: mid,
            weights: true,
        })
        .push(Op::MatMul {
            m: h * h,
            k: mid * 7,
            n: 192,
            weights: true,
        })
        .push(conv(h, in_c, mid, 1, 1)) // branch 3: double (7×1,1×7)
        .push(Op::MatMul {
            m: h * h,
            k: mid * 7,
            n: mid,
            weights: true,
        })
        .push(Op::MatMul {
            m: h * h,
            k: mid * 7,
            n: mid,
            weights: true,
        })
        .push(Op::MatMul {
            m: h * h,
            k: mid * 7,
            n: mid,
            weights: true,
        })
        .push(Op::MatMul {
            m: h * h,
            k: mid * 7,
            n: 192,
            weights: true,
        })
        .push(Op::AvgPool {
            in_h: h,
            in_w: h,
            c: in_c,
            k: 3,
            stride: 1,
        }) // branch 4
        .push(conv(h, in_c, 192, 1, 1))
        .push(Op::Concat {
            elements: h * h * out_c,
        })
}

/// Inception-C module at 8×8.
fn inception_c(b: GraphBuilder, in_c: usize) -> GraphBuilder {
    let h = 8;
    let out_c = 320 + 768 + 768 + 192;
    b.push(conv(h, in_c, 320, 1, 1)) // branch 1
        .push(conv(h, in_c, 384, 1, 1)) // branch 2: 1×1 → split 1×3 / 3×1
        .push(Op::MatMul {
            m: h * h,
            k: 384 * 3,
            n: 384,
            weights: true,
        })
        .push(Op::MatMul {
            m: h * h,
            k: 384 * 3,
            n: 384,
            weights: true,
        })
        .push(conv(h, in_c, 448, 1, 1)) // branch 3: 1×1 → 3×3 → split
        .push(conv(h, 448, 384, 3, 1))
        .push(Op::MatMul {
            m: h * h,
            k: 384 * 3,
            n: 384,
            weights: true,
        })
        .push(Op::MatMul {
            m: h * h,
            k: 384 * 3,
            n: 384,
            weights: true,
        })
        .push(Op::AvgPool {
            in_h: h,
            in_w: h,
            c: in_c,
            k: 3,
            stride: 1,
        }) // branch 4
        .push(conv(h, in_c, 192, 1, 1))
        .push(Op::Concat {
            elements: h * h * out_c,
        })
}

/// Inception v3 at 299×299 (published: ≈5.7 GMACs, 23.8 M params).
pub fn inception_v3(dtype: DType) -> Graph {
    let mut b = GraphBuilder::new("inception_v3", dtype, 299 * 299 * 3)
        // Stem.
        .push(conv(299, 3, 32, 3, 2))
        .push(conv(150, 32, 32, 3, 1))
        .push(conv(150, 32, 64, 3, 1))
        .push(Op::MaxPool {
            in_h: 150,
            in_w: 150,
            c: 64,
            k: 3,
            stride: 2,
        })
        .push(conv(75, 64, 80, 1, 1))
        .push(conv(75, 80, 192, 3, 1))
        .push(Op::MaxPool {
            in_h: 75,
            in_w: 75,
            c: 192,
            k: 3,
            stride: 2,
        });
    // 35×35 A-blocks (approximating 38→35 crop boundary effects away).
    b = inception_a(b, 192, 32);
    b = inception_a(b, 256, 64);
    b = inception_a(b, 288, 64);
    // Reduction A → 17×17.
    b = b
        .push(conv(35, 288, 384, 3, 2))
        .push(conv(35, 288, 64, 1, 1))
        .push(conv(35, 64, 96, 3, 1))
        .push(conv(35, 96, 96, 3, 2))
        .push(Op::MaxPool {
            in_h: 35,
            in_w: 35,
            c: 288,
            k: 3,
            stride: 2,
        })
        .push(Op::Concat {
            elements: 17 * 17 * 768,
        });
    // 17×17 B-blocks.
    b = inception_b(b, 768, 128);
    b = inception_b(b, 768, 160);
    b = inception_b(b, 768, 160);
    b = inception_b(b, 768, 192);
    // Reduction B → 8×8.
    b = b
        .push(conv(17, 768, 192, 1, 1))
        .push(conv(17, 192, 320, 3, 2))
        .push(conv(17, 768, 192, 1, 1))
        .push(conv(17, 192, 192, 3, 2))
        .push(Op::MaxPool {
            in_h: 17,
            in_w: 17,
            c: 768,
            k: 3,
            stride: 2,
        })
        .push(Op::Concat {
            elements: 8 * 8 * 1280,
        });
    // 8×8 C-blocks.
    b = inception_c(b, 1280);
    b = inception_c(b, 2048);
    b.push(Op::Mean {
        elements: 8 * 8 * 2048,
    })
    .push(Op::FullyConnected {
        in_features: 2048,
        out_features: 1001,
    })
    .push(Op::Softmax { n: 1001 })
    .finish()
    // aitax-allow(panic-path): graph is statically non-empty by construction
    .expect("inception v3 graph is non-empty")
}

/// Inception v4 at 299×299 (published: ≈12.3 GMACs, 42.7 M params).
///
/// Same module vocabulary as v3, with the deeper v4 block counts and wider
/// stem/filters.
pub fn inception_v4(dtype: DType) -> Graph {
    let mut b = GraphBuilder::new("inception_v4", dtype, 299 * 299 * 3)
        // v4 stem (wider than v3).
        .push(conv(299, 3, 32, 3, 2))
        .push(conv(150, 32, 32, 3, 1))
        .push(conv(150, 32, 64, 3, 1))
        .push(conv(150, 64, 96, 3, 2))
        .push(Op::Concat {
            elements: 75 * 75 * 160,
        })
        .push(conv(75, 160, 64, 1, 1))
        .push(conv(75, 64, 96, 3, 1))
        .push(conv(75, 160, 64, 1, 1))
        .push(Op::MatMul {
            m: 75 * 75,
            k: 64 * 7,
            n: 64,
            weights: true,
        })
        .push(Op::MatMul {
            m: 75 * 75,
            k: 64 * 7,
            n: 64,
            weights: true,
        })
        .push(conv(75, 64, 96, 3, 1))
        .push(Op::Concat {
            elements: 75 * 75 * 192,
        })
        .push(conv(75, 192, 192, 3, 2))
        .push(Op::Concat {
            elements: 38 * 38 * 384,
        })
        .push(Op::MaxPool {
            in_h: 38,
            in_w: 38,
            c: 384,
            k: 3,
            stride: 1,
        });
    // Treat 38 ≈ 35 for module reuse; 4× Inception-A.
    for _ in 0..4 {
        b = inception_a(b, 384, 96);
        // v4 A-blocks keep 384 channels via the concat; approximate with a
        // 1×1 re-projection.
        b = b.push(conv(35, 288, 384, 1, 1));
    }
    // Reduction A.
    b = b
        .push(conv(35, 384, 384, 3, 2))
        .push(conv(35, 384, 192, 1, 1))
        .push(conv(35, 192, 224, 3, 1))
        .push(conv(35, 224, 256, 3, 2))
        .push(Op::MaxPool {
            in_h: 35,
            in_w: 35,
            c: 384,
            k: 3,
            stride: 2,
        })
        .push(Op::Concat {
            elements: 17 * 17 * 1024,
        });
    // 7× Inception-B at 17×17 with 1024 channels.
    for _ in 0..7 {
        b = inception_b(b, 1024, 192);
        b = b.push(conv(17, 768, 1024, 1, 1));
    }
    // Reduction B.
    b = b
        .push(conv(17, 1024, 192, 1, 1))
        .push(conv(17, 192, 192, 3, 2))
        .push(conv(17, 1024, 256, 1, 1))
        .push(Op::MatMul {
            m: 17 * 17,
            k: 256 * 7,
            n: 320,
            weights: true,
        })
        .push(conv(17, 320, 320, 3, 2))
        .push(Op::MaxPool {
            in_h: 17,
            in_w: 17,
            c: 1024,
            k: 3,
            stride: 2,
        })
        .push(Op::Concat {
            elements: 8 * 8 * 1536,
        });
    // 3× Inception-C at 8×8 with 1536 channels.
    for _ in 0..3 {
        b = inception_c(b, 1536);
        b = b.push(conv(8, 2048, 1536, 1, 1));
    }
    b.push(Op::Mean {
        elements: 8 * 8 * 1536,
    })
    .push(Op::FullyConnected {
        in_features: 1536,
        out_features: 1001,
    })
    .push(Op::Softmax { n: 1001 })
    .finish()
    // aitax-allow(panic-path): graph is statically non-empty by construction
    .expect("inception v4 graph is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v3_totals_near_published() {
        let g = inception_v3(DType::F32);
        let gmacs = g.total_macs() as f64 / 1e9;
        let mparams = g.total_params() as f64 / 1e6;
        assert!((4.0..7.5).contains(&gmacs), "MACs {gmacs}G");
        assert!((17.0..31.0).contains(&mparams), "params {mparams}M");
    }

    #[test]
    fn v4_totals_near_published() {
        let g = inception_v4(DType::F32);
        let gmacs = g.total_macs() as f64 / 1e9;
        let mparams = g.total_params() as f64 / 1e6;
        assert!((8.5..16.0).contains(&gmacs), "MACs {gmacs}G");
        assert!((30.0..56.0).contains(&mparams), "params {mparams}M");
    }

    #[test]
    fn inceptions_dwarf_mobilenet() {
        let v3 = inception_v3(DType::F32);
        let mb = super::super::mobilenet_v1(DType::F32);
        assert!(v3.total_macs() > 8 * mb.total_macs());
    }

    #[test]
    fn op_counts_are_large() {
        // Inception graphs have many more ops than mobile nets — the
        // partitioning stress case.
        assert!(inception_v3(DType::F32).len() > 60);
        assert!(inception_v4(DType::F32).len() > 100);
    }
}
