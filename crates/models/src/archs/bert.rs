//! MobileBERT — Table I's language-processing entry.
//!
//! 24 bottlenecked transformer blocks (intra-block hidden 128, inter-block
//! 512, 4 stacked FFNs) over a 128-token sequence, with a question-
//! answering span head. Published: ≈25.3 M params; ≈2.7 GMACs at this
//! sequence length.

use aitax_tensor::DType;

use crate::graph::{Graph, GraphBuilder};
use crate::op::Op;

/// Sequence length used by the TFLite MobileBERT benchmark.
pub const SEQ_LEN: usize = 128;

const HIDDEN: usize = 512;
const BOTTLENECK: usize = 128;
const VOCAB: usize = 30_522;
const BLOCKS: usize = 24;
const STACKED_FFNS: usize = 4;

fn dense(m: usize, k: usize, n: usize) -> Op {
    Op::MatMul {
        m,
        k,
        n,
        weights: true,
    }
}

/// MobileBERT for question answering.
pub fn mobile_bert(dtype: DType) -> Graph {
    let s = SEQ_LEN;
    let mut b = GraphBuilder::new("mobile_bert", dtype, s as u64).push(Op::Embedding {
        tokens: s,
        dim: BOTTLENECK,
        vocab: VOCAB,
    });
    // Embedding projection up to the inter-block width.
    b = b.push(dense(s, BOTTLENECK, HIDDEN));
    for _ in 0..BLOCKS {
        // Bottleneck down.
        b = b.push(dense(s, HIDDEN, BOTTLENECK));
        // Self-attention in the bottleneck width.
        b = b
            .push(dense(s, BOTTLENECK, BOTTLENECK)) // Q
            .push(dense(s, BOTTLENECK, BOTTLENECK)) // K
            .push(dense(s, BOTTLENECK, BOTTLENECK)) // V
            .push(Op::MatMul {
                m: s,
                k: BOTTLENECK,
                n: s,
                weights: false,
            }) // scores
            .push(Op::Softmax { n: s * s })
            .push(Op::MatMul {
                m: s,
                k: s,
                n: BOTTLENECK,
                weights: false,
            }) // context
            .push(dense(s, BOTTLENECK, BOTTLENECK)) // output proj
            .push(Op::Add {
                elements: s * BOTTLENECK,
            })
            .push(Op::LayerNorm {
                elements: s * BOTTLENECK,
            });
        // Stacked feed-forward networks.
        for _ in 0..STACKED_FFNS {
            b = b
                .push(dense(s, BOTTLENECK, HIDDEN))
                .push(Op::Activation {
                    elements: s * HIDDEN,
                })
                .push(dense(s, HIDDEN, BOTTLENECK))
                .push(Op::Add {
                    elements: s * BOTTLENECK,
                })
                .push(Op::LayerNorm {
                    elements: s * BOTTLENECK,
                });
        }
        // Bottleneck back up.
        b = b.push(dense(s, BOTTLENECK, HIDDEN)).push(Op::LayerNorm {
            elements: s * HIDDEN,
        });
    }
    // QA span head: start/end logits per token.
    b.push(dense(s, HIDDEN, 2))
        .push(Op::Reshape { elements: s * 2 })
        .finish()
        // aitax-allow(panic-path): graph is statically non-empty by construction
        .expect("mobile bert graph is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpKind;

    #[test]
    fn totals_near_published() {
        let g = mobile_bert(DType::F32);
        let gmacs = g.total_macs() as f64 / 1e9;
        let mparams = g.total_params() as f64 / 1e6;
        assert!((1.7..3.8).contains(&gmacs), "MACs {gmacs}G");
        assert!((15.0..33.0).contains(&mparams), "params {mparams}M");
    }

    #[test]
    fn embedding_holds_vocab_params() {
        let g = mobile_bert(DType::F32);
        let emb = g
            .nodes()
            .iter()
            .find(|n| n.op.kind() == OpKind::Embedding)
            .unwrap();
        assert_eq!(emb.op.params(), (VOCAB * BOTTLENECK) as u64);
    }

    #[test]
    fn has_24_attention_blocks() {
        let g = mobile_bert(DType::F32);
        let softmaxes = g
            .nodes()
            .iter()
            .filter(|n| n.op.kind() == OpKind::Softmax)
            .count();
        assert_eq!(softmaxes, BLOCKS);
    }

    #[test]
    fn no_spatial_ops_in_a_text_model() {
        let g = mobile_bert(DType::F32);
        assert!(!g
            .nodes()
            .iter()
            .any(|n| matches!(n.op.kind(), OpKind::Conv2d | OpKind::DepthwiseConv2d)));
    }
}
