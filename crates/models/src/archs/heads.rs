//! Task-specific architectures: SSD MobileNet v2 (detection), DeepLab-v3
//! MobileNet-v2 (segmentation) and PoseNet (pose estimation).

use aitax_tensor::DType;

use crate::graph::{Graph, GraphBuilder};
use crate::op::Op;

use super::{mbconv, separable};

/// Emits the MobileNet v2 backbone at the given input size, returning the
/// builder, final spatial size and channel count.
fn mobilenet_v2_backbone(
    mut b: GraphBuilder,
    input: usize,
    os16: bool,
) -> (GraphBuilder, usize, usize) {
    b = b.push(Op::Conv2d {
        in_h: input,
        in_w: input,
        in_c: 3,
        out_c: 32,
        k: 3,
        stride: 2,
    });
    let mut h = input.div_ceil(2);
    let mut in_c = 32;
    // (expand, out_c, repeats, first_stride) — the published v2 schedule.
    // With `os16` (DeepLab's output-stride-16 mode) the last stride-2
    // stage runs at stride 1 with atrous kernels, keeping 2× the spatial
    // resolution for dense prediction.
    let stages = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, if os16 { 1 } else { 2 }),
        (6, 320, 1, 1),
    ];
    for (expand, out_c, repeats, first_stride) in stages {
        for r in 0..repeats {
            let stride = if r == 0 { first_stride } else { 1 };
            let (ops, nh, _) = mbconv(h, h, in_c, out_c, expand, 3, stride);
            b = b.extend(ops);
            h = nh;
            in_c = out_c;
        }
    }
    (b, h, in_c)
}

/// SSD MobileNet v2 at 300×300 (published ≈0.8 GMACs, 4.3 M params),
/// ending in TFLite's fused `DetectionPostProcess` custom op — the op
/// whose CPU-only implementation forces partition splits under NNAPI.
pub fn ssd_mobilenet_v2(dtype: DType) -> Graph {
    let b = GraphBuilder::new("ssd_mobilenet_v2", dtype, 300 * 300 * 3);
    let (mut b, h, c) = mobilenet_v2_backbone(b, 300, false);
    // Feature pyramid: project + downsample extra feature maps.
    b = b.push(Op::Conv2d {
        in_h: h,
        in_w: h,
        in_c: c,
        out_c: 1280,
        k: 1,
        stride: 1,
    });
    let mut fh = h;
    let mut fc = 1280;
    let mut total_anchors = 0usize;
    for _ in 0..4 {
        // Box + class predictors on the current feature map (6 anchors).
        let anchors_here = fh * fh * 6;
        total_anchors += anchors_here;
        // SSDLite-style separable predictors (dw 3×3 + pointwise heads).
        b = b
            .push(Op::DepthwiseConv2d {
                in_h: fh,
                in_w: fh,
                c: fc,
                k: 3,
                stride: 1,
            })
            .push(Op::Conv2d {
                in_h: fh,
                in_w: fh,
                in_c: fc,
                out_c: 6 * 4,
                k: 1,
                stride: 1,
            })
            .push(Op::Conv2d {
                in_h: fh,
                in_w: fh,
                in_c: fc,
                out_c: 6 * 91,
                k: 1,
                stride: 1,
            });
        if fh > 1 {
            let (ops, nh, _) = separable(fh, fh, fc, 256, 3, 2);
            b = b.extend(ops);
            fh = nh;
            fc = 256;
        }
    }
    b.push(Op::DetectionPostProcess {
        anchors: total_anchors.min(1917),
        classes: 91,
    })
    .finish()
    // aitax-allow(panic-path): graph is statically non-empty by construction
    .expect("ssd graph is non-empty")
}

/// DeepLab-v3 with MobileNet-v2 backbone at 513×513 (Table I).
///
/// Output stride 16: backbone to 33×33, ASPP with three atrous branches,
/// projection, and an in-graph bilinear resize back to 513×513×21 — the
/// resize is why DeepLab's *pre*-processing is tiny (≈1% per §IV-A) while
/// its in-graph and post work is large.
pub fn deeplab_v3_mnv2(dtype: DType) -> Graph {
    let b = GraphBuilder::new("deeplab_v3_mobilenet_v2", dtype, 513 * 513 * 3);
    let (mut b, h, c) = mobilenet_v2_backbone(b, 513, true);
    // ASPP at the backbone's output stride (33×33 for 513 input).
    let classes = 21;
    b = b
        .push(Op::Conv2d {
            in_h: h,
            in_w: h,
            in_c: c,
            out_c: 256,
            k: 1,
            stride: 1,
        })
        .push(Op::DepthwiseConv2d {
            in_h: h,
            in_w: h,
            c,
            k: 3,
            stride: 1,
        })
        .push(Op::Conv2d {
            in_h: h,
            in_w: h,
            in_c: c,
            out_c: 256,
            k: 1,
            stride: 1,
        })
        .push(Op::DepthwiseConv2d {
            in_h: h,
            in_w: h,
            c,
            k: 3,
            stride: 1,
        })
        .push(Op::Conv2d {
            in_h: h,
            in_w: h,
            in_c: c,
            out_c: 256,
            k: 1,
            stride: 1,
        })
        .push(Op::Mean {
            elements: h * h * c,
        })
        .push(Op::Concat {
            elements: h * h * 256 * 3,
        })
        .push(Op::Conv2d {
            in_h: h,
            in_w: h,
            in_c: 768,
            out_c: 256,
            k: 1,
            stride: 1,
        })
        .push(Op::Conv2d {
            in_h: h,
            in_w: h,
            in_c: 256,
            out_c: classes,
            k: 1,
            stride: 1,
        })
        .push(Op::ResizeBilinear {
            out_h: 513,
            out_w: 513,
            c: classes,
        });
    // aitax-allow(panic-path): graph is statically non-empty by construction
    b.finish().expect("deeplab graph is non-empty")
}

/// PoseNet (MobileNet v1 backbone, output stride 16) at 224×224 with
/// heatmap + offset heads over 17 keypoints.
pub fn posenet(dtype: DType) -> Graph {
    let mut b = GraphBuilder::new("posenet", dtype, 224 * 224 * 3).push(Op::Conv2d {
        in_h: 224,
        in_w: 224,
        in_c: 3,
        out_c: 32,
        k: 3,
        stride: 2,
    });
    // MobileNet v1 schedule but stopping the spatial shrink at stride 16
    // (the last stride-2 block becomes stride 1), as PoseNet does.
    let blocks = [
        (32, 64, 1),
        (64, 128, 2),
        (128, 128, 1),
        (128, 256, 2),
        (256, 256, 1),
        (256, 512, 2),
        (512, 512, 1),
        (512, 512, 1),
        (512, 512, 1),
        (512, 512, 1),
        (512, 512, 1),
        (512, 1024, 1),
        (1024, 1024, 1),
    ];
    let (mut h, mut w) = (112, 112);
    for (in_c, out_c, stride) in blocks {
        let (ops, nh, nw) = separable(h, w, in_c, out_c, 3, stride);
        b = b.extend(ops);
        h = nh;
        w = nw;
    }
    // Heads: 17 heatmaps + 34 offsets + displacement maps.
    b.push(Op::Conv2d {
        in_h: h,
        in_w: w,
        in_c: 1024,
        out_c: 17,
        k: 1,
        stride: 1,
    })
    .push(Op::Conv2d {
        in_h: h,
        in_w: w,
        in_c: 1024,
        out_c: 34,
        k: 1,
        stride: 1,
    })
    .push(Op::Conv2d {
        in_h: h,
        in_w: w,
        in_c: 1024,
        out_c: 64,
        k: 1,
        stride: 1,
    })
    .push(Op::Activation {
        elements: h * w * 17,
    })
    .finish()
    // aitax-allow(panic-path): graph is statically non-empty by construction
    .expect("posenet graph is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpKind;

    #[test]
    fn ssd_ends_with_detection_post_process() {
        let g = ssd_mobilenet_v2(DType::F32);
        let last = g.nodes().last().unwrap();
        assert_eq!(last.op.kind(), OpKind::DetectionPostProcess);
        let gmacs = g.total_macs() as f64 / 1e9;
        assert!((0.45..1.3).contains(&gmacs), "MACs {gmacs}G");
    }

    #[test]
    fn deeplab_is_the_heaviest_mobile_graph() {
        let g = deeplab_v3_mnv2(DType::F32);
        let gmacs = g.total_macs() as f64 / 1e9;
        assert!((1.8..4.2).contains(&gmacs), "MACs {gmacs}G");
        // In-graph resize present.
        assert!(g
            .nodes()
            .iter()
            .any(|n| n.op.kind() == OpKind::ResizeBilinear));
        // Output covers 513×513×21 logits.
        assert_eq!(g.output_bytes(), 513 * 513 * 21 * 4);
    }

    #[test]
    fn posenet_keeps_stride16_resolution() {
        let g = posenet(DType::F32);
        // Heads operate on 14×14 for a 224 input.
        let heat = g
            .nodes()
            .iter()
            .find(|n| matches!(n.op, Op::Conv2d { out_c: 17, .. }))
            .expect("heatmap head");
        if let Op::Conv2d { in_h, .. } = heat.op {
            assert_eq!(in_h, 14);
        }
        let mmacs = g.total_macs() as f64 / 1e6;
        assert!((500.0..1_000.0).contains(&mmacs), "MACs {mmacs}M");
    }

    #[test]
    fn deeplab_output_dwarfs_classifier_output() {
        let dl = deeplab_v3_mnv2(DType::F32);
        let mb = super::super::mobilenet_v1(DType::F32);
        assert!(dl.output_bytes() > 1000 * mb.output_bytes());
    }
}
