//! Property tests over the model zoo and operator accounting. Randomized
//! cases are driven by the deterministic simulator RNG.

use aitax_des::SimRng;
use aitax_models::zoo::{ModelId, Zoo};
use aitax_models::Op;
use aitax_tensor::DType;

/// Conv MAC counts factor exactly as out_spatial × kernel × channels.
#[test]
fn conv_macs_factorization() {
    let mut rng = SimRng::seed_from(0x90DE_0001);
    for case in 0..48 {
        let in_hw = rng.uniform_u64(1, 128) as usize;
        let in_c = rng.uniform_u64(1, 64) as usize;
        let out_c = rng.uniform_u64(1, 64) as usize;
        let k = rng.uniform_u64(1, 7) as usize;
        let stride = rng.uniform_u64(1, 4) as usize;
        let op = Op::Conv2d {
            in_h: in_hw,
            in_w: in_hw,
            in_c,
            out_c,
            k,
            stride,
        };
        let o = in_hw.div_ceil(stride) as u64;
        assert_eq!(
            op.macs(),
            o * o * (out_c as u64) * (in_c as u64) * (k * k) as u64,
            "case {case}"
        );
        // A full conv is exactly `out_c` stacked depthwise passes over
        // the input channels: conv.macs = dw.macs × out_c.
        let dw = Op::DepthwiseConv2d {
            in_h: in_hw,
            in_w: in_hw,
            c: in_c,
            k,
            stride,
        };
        assert_eq!(dw.macs() * out_c as u64, op.macs(), "case {case}");
    }
}

/// Doubling stride never increases output size or MACs.
#[test]
fn stride_monotonicity() {
    let mut rng = SimRng::seed_from(0x90DE_0002);
    for case in 0..48 {
        let hw = rng.uniform_u64(2, 256) as usize;
        let c = rng.uniform_u64(1, 32) as usize;
        let k = rng.uniform_u64(1, 6) as usize;
        let m = |stride| {
            Op::Conv2d {
                in_h: hw,
                in_w: hw,
                in_c: c,
                out_c: c,
                k,
                stride,
            }
            .macs()
        };
        assert!(m(2) <= m(1), "case {case}");
        let e = |stride| {
            Op::Conv2d {
                in_h: hw,
                in_w: hw,
                in_c: c,
                out_c: c,
                k,
                stride,
            }
            .output_elements()
        };
        assert!(e(2) <= e(1), "case {case}");
    }
}

#[test]
fn quantization_preserves_structure_for_all_models() {
    for id in ModelId::ALL {
        let f = Zoo::entry(id).build_graph_with(DType::F32);
        let q = Zoo::entry(id).build_graph_with(DType::I8);
        assert_eq!(f.len(), q.len(), "{id:?}");
        assert_eq!(f.total_macs(), q.total_macs(), "{id:?}");
        assert_eq!(f.total_params(), q.total_params(), "{id:?}");
        assert_eq!(f.weight_bytes(), q.weight_bytes() * 4, "{id:?}");
        // Node-by-node identity.
        for (a, b) in f.nodes().iter().zip(q.nodes()) {
            assert_eq!(a.op.kind(), b.op.kind(), "{id:?}");
        }
    }
}

#[test]
fn zoo_graphs_have_consistent_io() {
    for id in ModelId::ALL {
        let g = Zoo::entry(id).build_graph();
        assert!(g.input_bytes() > 0, "{id:?}");
        assert!(g.output_bytes() > 0, "{id:?}");
        assert!(g.weight_bytes() > 100_000, "{id:?} params too small");
        // Every node accounts non-negative work.
        for n in g.nodes() {
            let _ = n.op.macs();
            let _ = n.op.params();
            assert!(n.op.output_elements() > 0, "{id:?}/{}", n.name);
        }
        // Names unique.
        let names: std::collections::HashSet<_> =
            g.nodes().iter().map(|n| n.name.as_str()).collect();
        assert_eq!(names.len(), g.len(), "{id:?} duplicate node names");
    }
}

#[test]
fn macs_ordering_matches_model_classes() {
    let macs = |id: ModelId| Zoo::entry(id).build_graph().total_macs();
    // General-purpose face-recognition models dwarf the mobile-first ones.
    for small in [
        ModelId::MobileNetV1,
        ModelId::EfficientNetLite0,
        ModelId::NasNetMobile,
        ModelId::SqueezeNet,
    ] {
        assert!(macs(ModelId::InceptionV3) > 4 * macs(small), "{small:?}");
        assert!(macs(ModelId::InceptionV4) > 8 * macs(small), "{small:?}");
    }
}
