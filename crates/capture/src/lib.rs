//! Data-capture models: camera sensor, random benchmark inputs, sensor
//! fusion.
//!
//! §II-A of the paper: "Acquiring data from sensors can seem trivial on
//! the surface, but can easily complicate an application's architecture"
//! — and §IV-A found that "the supporting code around data capture
//! contributed to a large share of overall application latency". This
//! crate provides:
//!
//! * [`camera`] — a camera pipeline producing *real* NV21 frames on a
//!   frame-rate cadence, with sensor readout and delivery-jitter timing,
//! * [`randgen`] — the random-tensor input generators benchmarks use
//!   instead of real capture, including the libc++/libstdc++ cost
//!   inversion the paper calls out as a benchmarking fallacy,
//! * [`fusion`] — a small multi-sensor fusion filter (the "fusing multiple
//!   sources of data into a single metric" example of §II-A).

pub mod camera;
pub mod fusion;
pub mod randgen;

pub use camera::{CameraConfig, CameraSource};
pub use randgen::{RandomTensorGen, StdlibFlavor};
