//! Random input generation — how benchmarks "capture data".
//!
//! The TFLite benchmark utility "generates random tensors as input data"
//! (§III-B), and the paper exposes a subtle fallacy (§IV-A): *"The
//! standard C++ library that this benchmark happened to be compiled
//! against (libc++) generates real numbers significantly faster than
//! integers. Using a different standard library (libstdc++), we observed
//! the exact opposite behavior."* We reproduce that: the generator emits
//! real random tensors and reports a per-element cycle cost whose
//! float-vs-int ratio flips with the standard-library flavor.

use aitax_des::SimRng;
use aitax_tensor::{QuantParams, Tensor};

/// Which C++ standard library the (simulated) benchmark was built against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StdlibFlavor {
    /// LLVM's libc++: fast `uniform_real_distribution`, slow integers.
    LibCxx,
    /// GNU libstdc++: the exact opposite behaviour.
    LibStdCxx,
}

impl StdlibFlavor {
    /// Cycles per generated element for floating-point tensors.
    ///
    /// Calibrated so that under libc++ "the data capture ... is
    /// negligible" for float models, while integer generation
    /// "approximate[s] real applications to some extent" (§IV-A) —
    /// i.e. approaches the quantized models' inference latency.
    pub fn float_cycles_per_element(self) -> f64 {
        match self {
            StdlibFlavor::LibCxx => 30.0,
            StdlibFlavor::LibStdCxx => 150.0,
        }
    }

    /// Cycles per generated element for integer tensors.
    pub fn int_cycles_per_element(self) -> f64 {
        match self {
            StdlibFlavor::LibCxx => 180.0,
            StdlibFlavor::LibStdCxx => 40.0,
        }
    }
}

/// Generates random model inputs and accounts their cost.
#[derive(Debug)]
pub struct RandomTensorGen {
    flavor: StdlibFlavor,
    rng: SimRng,
}

impl RandomTensorGen {
    /// Creates a generator for a standard-library flavor.
    pub fn new(flavor: StdlibFlavor, seed: u64) -> Self {
        RandomTensorGen {
            flavor,
            rng: SimRng::seed_from(seed),
        }
    }

    /// The flavor this generator models.
    pub fn flavor(&self) -> StdlibFlavor {
        self.flavor
    }

    /// Generates a random F32 tensor, returning it and the CPU cycles the
    /// generation represents.
    pub fn gen_f32(&mut self, dims: &[usize]) -> (Tensor, f64) {
        let n: usize = dims.iter().product();
        let data: Vec<f32> = (0..n).map(|_| self.rng.uniform(-1.0, 1.0) as f32).collect();
        let cycles = n as f64 * self.flavor.float_cycles_per_element();
        (Tensor::from_f32(dims, data), cycles)
    }

    /// Generates a random quantized I8 tensor, returning it and the CPU
    /// cycles the generation represents.
    pub fn gen_i8(&mut self, dims: &[usize]) -> (Tensor, f64) {
        let n: usize = dims.iter().product();
        let data: Vec<i8> = (0..n)
            .map(|_| self.rng.uniform_u64(0, 256) as u8 as i8)
            .collect();
        let cycles = n as f64 * self.flavor.int_cycles_per_element();
        (
            Tensor::from_i8(dims, data, QuantParams::from_range(-1.0, 1.0)),
            cycles,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn libcxx_floats_faster_than_ints() {
        let f = StdlibFlavor::LibCxx;
        assert!(f.float_cycles_per_element() < f.int_cycles_per_element());
    }

    #[test]
    fn libstdcxx_inverts_the_relationship() {
        let f = StdlibFlavor::LibStdCxx;
        assert!(f.int_cycles_per_element() < f.float_cycles_per_element());
    }

    #[test]
    fn generated_tensors_have_right_shape_and_range() {
        let mut g = RandomTensorGen::new(StdlibFlavor::LibCxx, 5);
        let (t, cycles) = g.gen_f32(&[1, 8, 8, 3]);
        assert_eq!(t.elements(), 192);
        assert!(cycles > 0.0);
        assert!(t
            .as_f32()
            .unwrap()
            .iter()
            .all(|&v| (-1.0..1.0).contains(&v)));
    }

    #[test]
    fn quantized_generation_costs_differ_by_flavor() {
        let mut a = RandomTensorGen::new(StdlibFlavor::LibCxx, 1);
        let mut b = RandomTensorGen::new(StdlibFlavor::LibStdCxx, 1);
        let (_, ca) = a.gen_i8(&[1000]);
        let (_, cb) = b.gen_i8(&[1000]);
        assert!(ca > cb * 3.0, "libc++ int generation should be far slower");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = RandomTensorGen::new(StdlibFlavor::LibCxx, 42);
        let mut b = RandomTensorGen::new(StdlibFlavor::LibCxx, 42);
        assert_eq!(a.gen_f32(&[16]).0, b.gen_f32(&[16]).0);
    }
}
