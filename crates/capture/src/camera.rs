//! Camera sensor pipeline.
//!
//! Real Android apps request frames from the Camera API and receive them
//! on a sensor cadence (30 fps typically), after sensor readout and ISP
//! processing, with delivery jitter from interrupt handling — the §II-A /
//! Fig. 11 latency sources. Frames produced here are real NV21 buffers
//! from a deterministic synthetic scene, so downstream pre-processing
//! exercises true pixel work.

use aitax_des::SimSpan;
use aitax_pipeline::image::YuvNv21Image;

/// Camera configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CameraConfig {
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Sensor frame rate.
    pub fps: f64,
    /// Sensor readout + ISP latency per frame (before delivery).
    pub readout: SimSpan,
}

impl CameraConfig {
    /// The 640×480 @ 30 fps preview stream the example apps use.
    pub fn vga_preview() -> Self {
        CameraConfig {
            width: 640,
            height: 480,
            fps: 30.0,
            readout: SimSpan::from_ms(4.0),
        }
    }

    /// A 1280×720 @ 30 fps stream.
    pub fn hd_preview() -> Self {
        CameraConfig {
            width: 1280,
            height: 720,
            fps: 30.0,
            readout: SimSpan::from_ms(6.5),
        }
    }

    /// Interval between frame deliveries.
    pub fn frame_interval(&self) -> SimSpan {
        SimSpan::from_secs(1.0 / self.fps)
    }

    /// NV21 payload size in bytes.
    pub fn frame_bytes(&self) -> u64 {
        (self.width * self.height * 3 / 2) as u64
    }
}

/// A free-running camera producing deterministic synthetic frames.
///
/// # Example
///
/// ```
/// use aitax_capture::{CameraConfig, CameraSource};
///
/// let mut cam = CameraSource::new(CameraConfig::vga_preview(), 7);
/// let a = cam.next_frame();
/// let b = cam.next_frame();
/// assert_eq!(a.width(), 640);
/// assert_ne!(a.bytes(), b.bytes(), "scene evolves between frames");
/// ```
#[derive(Debug, Clone)]
pub struct CameraSource {
    config: CameraConfig,
    seed: u64,
    frame_index: u64,
}

impl CameraSource {
    /// Opens a camera with a deterministic scene seed.
    pub fn new(config: CameraConfig, seed: u64) -> Self {
        CameraSource {
            config,
            seed,
            frame_index: 0,
        }
    }

    /// The configuration this camera runs with.
    pub fn config(&self) -> &CameraConfig {
        &self.config
    }

    /// Number of frames produced so far.
    pub fn frames_produced(&self) -> u64 {
        self.frame_index
    }

    /// Produces the next frame (the scene moves a little every frame).
    pub fn next_frame(&mut self) -> YuvNv21Image {
        let frame = YuvNv21Image::synthetic(
            self.config.width,
            self.config.height,
            self.seed.wrapping_add(self.frame_index * 31),
        );
        self.frame_index += 1;
        frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vga_frame_interval_is_33ms() {
        let c = CameraConfig::vga_preview();
        assert!((c.frame_interval().as_ms() - 33.333).abs() < 0.01);
        assert_eq!(c.frame_bytes(), 640 * 480 * 3 / 2);
    }

    #[test]
    fn frames_have_configured_size() {
        let mut cam = CameraSource::new(CameraConfig::hd_preview(), 1);
        let f = cam.next_frame();
        assert_eq!((f.width(), f.height()), (1280, 720));
        assert_eq!(cam.frames_produced(), 1);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = CameraSource::new(CameraConfig::vga_preview(), 9);
        let mut b = CameraSource::new(CameraConfig::vga_preview(), 9);
        for _ in 0..3 {
            assert_eq!(a.next_frame(), b.next_frame());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = CameraSource::new(CameraConfig::vga_preview(), 1);
        let mut b = CameraSource::new(CameraConfig::vga_preview(), 2);
        assert_ne!(a.next_frame(), b.next_frame());
    }
}
