//! Multi-sensor fusion (§II-A's "additional data processing (such as
//! fusing multiple sources of data into a single metric)").
//!
//! A complementary filter combining accelerometer and gyroscope samples
//! into an orientation estimate — the canonical phone sensor-fusion task
//! that runs concurrently with the ML pipeline and contends for cores.

/// One inertial sample pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImuSample {
    /// Accelerometer-derived tilt angle (radians).
    pub accel_angle: f64,
    /// Gyroscope angular rate (radians/second).
    pub gyro_rate: f64,
    /// Seconds since the previous sample.
    pub dt: f64,
}

/// A complementary filter fusing accelerometer and gyroscope streams.
///
/// # Example
///
/// ```
/// use aitax_capture::fusion::{ComplementaryFilter, ImuSample};
///
/// let mut f = ComplementaryFilter::new(0.98);
/// let est = f.update(ImuSample { accel_angle: 0.1, gyro_rate: 0.0, dt: 0.01 });
/// assert!(est > 0.0 && est < 0.1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ComplementaryFilter {
    alpha: f64,
    angle: f64,
    updates: u64,
}

impl ComplementaryFilter {
    /// Creates a filter; `alpha` is the gyro trust factor in `(0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1)`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "alpha must be in (0,1), got {alpha}"
        );
        ComplementaryFilter {
            alpha,
            angle: 0.0,
            updates: 0,
        }
    }

    /// Fuses one sample, returning the updated orientation estimate.
    pub fn update(&mut self, s: ImuSample) -> f64 {
        self.angle =
            self.alpha * (self.angle + s.gyro_rate * s.dt) + (1.0 - self.alpha) * s.accel_angle;
        self.updates += 1;
        self.angle
    }

    /// Current orientation estimate (radians).
    pub fn angle(&self) -> f64 {
        self.angle
    }

    /// Number of samples fused.
    pub fn updates(&self) -> u64 {
        self.updates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_to_static_accel_angle() {
        let mut f = ComplementaryFilter::new(0.9);
        for _ in 0..200 {
            f.update(ImuSample {
                accel_angle: 0.5,
                gyro_rate: 0.0,
                dt: 0.01,
            });
        }
        assert!((f.angle() - 0.5).abs() < 1e-3);
    }

    #[test]
    fn integrates_gyro_rotation() {
        let mut f = ComplementaryFilter::new(0.999);
        // 1 rad/s for 1 s in 100 steps.
        for _ in 0..100 {
            f.update(ImuSample {
                accel_angle: 0.0,
                gyro_rate: 1.0,
                dt: 0.01,
            });
        }
        assert!(f.angle() > 0.85, "angle {}", f.angle());
        assert_eq!(f.updates(), 100);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_panics() {
        ComplementaryFilter::new(1.5);
    }
}
