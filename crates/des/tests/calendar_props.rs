//! Property tests for the event calendar and RNG — the invariants every
//! other crate relies on. Randomized cases are driven by the crate's own
//! deterministic [`SimRng`] (seeded per test), so the suite needs no
//! external dependencies and every failure reproduces bit-exactly.

use aitax_des::{Calendar, SimRng, SimSpan, SimTime, Token};

/// Events always fire in non-decreasing time order regardless of
/// schedule order, and every scheduled event fires exactly once.
#[test]
fn calendar_is_a_priority_queue() {
    let mut rng = SimRng::seed_from(0xCA1E_0001);
    for case in 0..64 {
        let n = rng.uniform_u64(1, 200) as usize;
        let delays: Vec<u64> = (0..n).map(|_| rng.uniform_u64(0, 1_000_000)).collect();
        let mut cal = Calendar::new();
        for &d in &delays {
            cal.schedule_after(SimSpan::from_ns(d));
        }
        let mut fired = 0;
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = cal.next() {
            assert!(t >= last, "case {case}: events fired out of order");
            last = t;
            fired += 1;
        }
        assert_eq!(fired, delays.len(), "case {case}");
        let mut sorted = delays.clone();
        sorted.sort_unstable();
        assert_eq!(last.as_ns(), *sorted.last().unwrap(), "case {case}");
    }
}

/// Cancelled events never fire; everything else does.
#[test]
fn cancellation_is_exact() {
    let mut rng = SimRng::seed_from(0xCA1E_0002);
    for case in 0..64 {
        let n = rng.uniform_u64(1, 100) as usize;
        let delays: Vec<u64> = (0..n).map(|_| rng.uniform_u64(0, 1_000_000)).collect();
        let mut cal = Calendar::new();
        let tokens: Vec<_> = delays
            .iter()
            .map(|&d| cal.schedule_after(SimSpan::from_ns(d)))
            .collect();
        let mut cancelled = std::collections::HashSet::new();
        for &tok in &tokens {
            if rng.chance(0.3) {
                assert!(cal.cancel(tok), "case {case}: live event must cancel");
                cancelled.insert(tok);
            }
        }
        let mut fired = std::collections::HashSet::new();
        while let Some((_, tok)) = cal.next() {
            assert!(
                !cancelled.contains(&tok),
                "case {case}: cancelled event fired"
            );
            assert!(fired.insert(tok), "case {case}: event fired twice");
        }
        assert_eq!(fired.len(), tokens.len() - cancelled.len(), "case {case}");
    }
}

/// Equal-time events preserve FIFO order (determinism backbone).
#[test]
fn fifo_tie_break() {
    let mut rng = SimRng::seed_from(0xCA1E_0003);
    for case in 0..64 {
        let n = rng.uniform_u64(1, 64) as usize;
        let at = rng.uniform_u64(0, 1000);
        let mut cal = Calendar::new();
        let toks: Vec<_> = (0..n)
            .map(|_| cal.schedule_at(SimTime::from_ns(at)))
            .collect();
        let fired: Vec<_> = std::iter::from_fn(|| cal.next().map(|(_, t)| t)).collect();
        assert_eq!(fired, toks, "case {case}: FIFO order broken");
    }
}

/// Random interleavings of schedule / cancel / fire keep the tombstone
/// calendar honest: time stays monotone, `pending()` always equals the
/// number of live events, the schedule/fire/cancel counters balance, and
/// a spent token (fired or cancelled) is rejected forever — even after
/// its slot has been recycled by a later event.
#[test]
fn churn_fuzz_accounting_and_token_reuse_safety() {
    let mut rng = SimRng::seed_from(0xCA1E_0006);
    for case in 0..48 {
        let mut cal = Calendar::new();
        let mut live: Vec<Token> = Vec::new();
        let mut spent: Vec<Token> = Vec::new();
        let mut last = SimTime::ZERO;
        let ops = rng.uniform_u64(100, 600);
        for op in 0..ops {
            match rng.uniform_u64(0, 4) {
                // Schedule (weighted 2x so the population grows).
                0 | 1 => {
                    let tok = cal.schedule_after(SimSpan::from_ns(rng.uniform_u64(0, 100_000)));
                    assert!(
                        !live.contains(&tok) && !spent.contains(&tok),
                        "case {case} op {op}: token handed out twice"
                    );
                    live.push(tok);
                }
                // Fire the next event.
                2 => {
                    if let Some((t, tok)) = cal.next() {
                        assert!(t >= last, "case {case} op {op}: time went backwards");
                        last = t;
                        let pos = live
                            .iter()
                            .position(|&l| l == tok)
                            .unwrap_or_else(|| panic!("case {case} op {op}: fired unknown token"));
                        spent.push(live.swap_remove(pos));
                    }
                }
                // Cancel: a live token must cancel exactly once; a spent
                // token must be rejected no matter who owns its slot now.
                _ => {
                    let pick_live = !live.is_empty() && (spent.is_empty() || rng.chance(0.5));
                    if pick_live {
                        let i = rng.uniform_u64(0, live.len() as u64) as usize;
                        let tok = live.swap_remove(i);
                        assert!(cal.cancel(tok), "case {case} op {op}: live cancel failed");
                        spent.push(tok);
                    } else if !spent.is_empty() {
                        let i = rng.uniform_u64(0, spent.len() as u64) as usize;
                        assert!(
                            !cal.cancel(spent[i]),
                            "case {case} op {op}: stale token cancelled a recycled slot"
                        );
                    }
                }
            }
            assert_eq!(
                cal.pending(),
                live.len(),
                "case {case} op {op}: pending() drifted from live population"
            );
            assert_eq!(
                cal.scheduled_total(),
                cal.fired_total() + cal.cancelled_total() + cal.pending() as u64,
                "case {case} op {op}: counters do not balance"
            );
        }
        // Drain: every remaining live event fires, in order, exactly once.
        while let Some((t, tok)) = cal.next() {
            assert!(t >= last, "case {case}: drain out of order");
            last = t;
            let pos = live.iter().position(|&l| l == tok);
            assert!(pos.is_some(), "case {case}: drained unknown token");
            live.swap_remove(pos.unwrap());
        }
        assert!(live.is_empty(), "case {case}: live events lost");
        assert_eq!(cal.pending(), 0, "case {case}");
    }
}

/// Same-seed RNG streams are identical; jitter stays in bounds.
#[test]
fn rng_determinism_and_bounds() {
    let mut meta = SimRng::seed_from(0xCA1E_0004);
    for case in 0..64 {
        let seed = meta.next_u64();
        let frac = meta.uniform(0.0, 0.5);
        let mut a = SimRng::seed_from(seed);
        let mut b = SimRng::seed_from(seed);
        for _ in 0..50 {
            let ja = a.jitter(frac);
            assert_eq!(ja, b.jitter(frac), "case {case}: streams diverged");
            assert!(
                ja >= 1.0 - frac - 1e-12 && ja <= 1.0 + frac + 1e-12,
                "case {case}: jitter {ja} outside ±{frac}"
            );
        }
    }
}

/// Log-normal samples are always positive; exponential samples too.
#[test]
fn distribution_supports() {
    let mut meta = SimRng::seed_from(0xCA1E_0005);
    for case in 0..64 {
        let seed = meta.next_u64();
        let median = meta.uniform(0.001, 100.0);
        let sigma = meta.uniform(0.0, 2.0);
        let mut r = SimRng::seed_from(seed);
        for _ in 0..20 {
            assert!(r.lognormal(median, sigma) > 0.0, "case {case}");
            assert!(r.exponential(median) >= 0.0, "case {case}");
        }
    }
}
