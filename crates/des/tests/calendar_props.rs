//! Property tests for the event calendar and RNG — the invariants every
//! other crate relies on.

use aitax_des::{Calendar, SimRng, SimSpan, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Events always fire in non-decreasing time order regardless of
    /// schedule order, and every scheduled event fires exactly once.
    #[test]
    fn calendar_is_a_priority_queue(delays in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut cal = Calendar::new();
        for &d in &delays {
            cal.schedule_after(SimSpan::from_ns(d));
        }
        let mut fired = 0;
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = cal.next() {
            prop_assert!(t >= last);
            last = t;
            fired += 1;
        }
        prop_assert_eq!(fired, delays.len());
        let mut sorted = delays.clone();
        sorted.sort_unstable();
        prop_assert_eq!(last.as_ns(), *sorted.last().unwrap());
    }

    /// Cancelled events never fire; everything else does.
    #[test]
    fn cancellation_is_exact(
        delays in prop::collection::vec(0u64..1_000_000, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut cal = Calendar::new();
        let tokens: Vec<_> = delays
            .iter()
            .map(|&d| cal.schedule_after(SimSpan::from_ns(d)))
            .collect();
        let mut cancelled = std::collections::HashSet::new();
        for (tok, &c) in tokens.iter().zip(cancel_mask.iter().chain(std::iter::repeat(&false))) {
            if c {
                prop_assert!(cal.cancel(*tok));
                cancelled.insert(*tok);
            }
        }
        let mut fired = std::collections::HashSet::new();
        while let Some((_, tok)) = cal.next() {
            prop_assert!(!cancelled.contains(&tok), "cancelled event fired");
            prop_assert!(fired.insert(tok), "event fired twice");
        }
        prop_assert_eq!(fired.len(), tokens.len() - cancelled.len());
    }

    /// Equal-time events preserve FIFO order (determinism backbone).
    #[test]
    fn fifo_tie_break(n in 1usize..64, at in 0u64..1000) {
        let mut cal = Calendar::new();
        let toks: Vec<_> = (0..n)
            .map(|_| cal.schedule_at(SimTime::from_ns(at)))
            .collect();
        let fired: Vec<_> = std::iter::from_fn(|| cal.next().map(|(_, t)| t)).collect();
        prop_assert_eq!(fired, toks);
    }

    /// Same-seed RNG streams are identical; jitter stays in bounds.
    #[test]
    fn rng_determinism_and_bounds(seed in any::<u64>(), frac in 0.0f64..0.5) {
        let mut a = SimRng::seed_from(seed);
        let mut b = SimRng::seed_from(seed);
        for _ in 0..50 {
            let ja = a.jitter(frac);
            prop_assert_eq!(ja, b.jitter(frac));
            prop_assert!(ja >= 1.0 - frac - 1e-12 && ja <= 1.0 + frac + 1e-12);
        }
    }

    /// Log-normal samples are always positive; exponential samples too.
    #[test]
    fn distribution_supports(seed in any::<u64>(), median in 0.001f64..100.0, sigma in 0.0f64..2.0) {
        let mut r = SimRng::seed_from(seed);
        for _ in 0..20 {
            prop_assert!(r.lognormal(median, sigma) > 0.0);
            prop_assert!(r.exponential(median) >= 0.0);
        }
    }
}
