//! Property tests for the columnar ring-buffer trace sink.
//!
//! The bounded streaming mode must be a pure *window* over the event
//! stream: for any recording, a ring of capacity `cap` retains exactly
//! the last `cap` events an unbounded buffer would hold, and every
//! analysis over that retained window (interval extraction, symbol
//! resolution) gives the same answer it would on an unbounded buffer fed
//! only those events. Randomized cases are driven by the crate's own
//! deterministic [`SimRng`], so failures reproduce bit-exactly.

use aitax_des::trace::{RpcPhase, TraceKind, TraceResource};
use aitax_des::{SimRng, SimTime, TraceBuffer};

/// A random but valid-ish event stream: interleaved exec start/end pairs
/// across resources plus instants and counters, times non-decreasing.
fn random_stream(rng: &mut SimRng, n: usize) -> Vec<(u64, TraceResource, &'static str)> {
    let mut out = Vec::with_capacity(n);
    let mut t = 0u64;
    for _ in 0..n {
        t += rng.uniform_u64(0, 1_000);
        let r = match rng.uniform_u64(0, 6) {
            0 => TraceResource::CpuCore(rng.uniform_u64(0, 8) as u8),
            1 => TraceResource::CpuCore(0),
            2 => TraceResource::Dsp,
            3 => TraceResource::Gpu,
            4 => TraceResource::Npu,
            _ => TraceResource::Axi,
        };
        let op = match rng.uniform_u64(0, 8) {
            0..=2 => "start",
            3 | 4 => "end",
            5 => "irq",
            6 => "axi",
            _ => "switch",
        };
        out.push((t, r, op));
    }
    out
}

/// Replays `stream` into `buf`, interning labels through the buffer so
/// symbols are minted identically regardless of capacity.
fn replay(buf: &mut TraceBuffer, stream: &[(u64, TraceResource, &'static str)]) {
    let mut task_seq = 0u64;
    let mut open: Vec<(TraceResource, u64)> = Vec::new();
    for &(t, r, op) in stream {
        let time = SimTime::from_ns(t);
        match op {
            "start" => {
                let label = buf.intern(["infer", "preproc", "postproc"][task_seq as usize % 3]);
                buf.record(
                    time,
                    r,
                    TraceKind::ExecStart {
                        task: task_seq,
                        label,
                    },
                );
                open.push((r, task_seq));
                task_seq += 1;
            }
            "end" => {
                // Close the oldest open interval (on its own resource).
                if !open.is_empty() {
                    let (res, task) = open.remove(0);
                    buf.record(time, res, TraceKind::ExecEnd { task });
                }
            }
            "irq" => {
                let source = buf.intern("dsp-irq");
                buf.record(time, r, TraceKind::Irq { source });
            }
            "axi" => buf.record(
                time,
                TraceResource::Axi,
                TraceKind::AxiBurst {
                    bytes: 64 + t % 4096,
                },
            ),
            _ => buf.record(time, r, TraceKind::ContextSwitch),
        }
    }
}

/// Ring wraparound is a pure suffix window: iteration yields exactly the
/// events an unbounded recording ends with, and `exec_intervals` over
/// the ring equals `exec_intervals` of an unbounded buffer fed only the
/// retained window (compared through resolved labels, so the property
/// holds even though the two buffers mint different symbol tables).
#[test]
fn ring_window_preserves_exec_intervals() {
    let mut rng = SimRng::seed_from(0x41B6_0001);
    for case in 0..48 {
        let n = rng.uniform_u64(1, 400) as usize;
        let cap = rng.uniform_u64(1, 128) as usize;
        let stream = random_stream(&mut rng, n);

        let mut full = TraceBuffer::enabled();
        replay(&mut full, &stream);
        let mut ring = TraceBuffer::enabled_ring(cap);
        replay(&mut ring, &stream);

        // The ring holds exactly the unbounded buffer's suffix. (Not
        // every stream item records — "end" with nothing open is a
        // no-op — so size against what was actually recorded.)
        let recorded = full.len();
        let expect_len = recorded.min(cap);
        assert_eq!(ring.len(), expect_len, "case {case}");
        assert_eq!(
            ring.dropped(),
            (recorded - expect_len) as u64,
            "case {case}"
        );
        assert!(
            ring.iter().eq(full.iter().skip(recorded - expect_len)),
            "case {case}: ring window is not the stream suffix"
        );

        // Re-record only the retained window into a fresh unbounded
        // buffer; interval extraction must agree event for event.
        let mut window = TraceBuffer::enabled();
        for ev in ring.iter() {
            // Re-intern label-carrying kinds through the window buffer.
            let kind = match ev.kind {
                TraceKind::ExecStart { task, label } => TraceKind::ExecStart {
                    task,
                    label: window.intern(ring.resolve(label)),
                },
                TraceKind::Irq { source } => TraceKind::Irq {
                    source: window.intern(ring.resolve(source)),
                },
                k => k,
            };
            window.record(ev.time, ev.resource, kind);
        }
        let a = ring.exec_intervals();
        let b = window.exec_intervals();
        assert_eq!(a.len(), b.len(), "case {case}: interval count diverged");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                (x.resource, x.task, x.start, x.end),
                (y.resource, y.task, y.start, y.end),
                "case {case}: interval diverged"
            );
            assert_eq!(
                ring.resolve(x.label),
                window.resolve(y.label),
                "case {case}: interval label diverged"
            );
        }
        // Same for the window-closing variant.
        let end = SimTime::from_ns(rng.uniform_u64(0, 500_000));
        let a = ring.exec_intervals_until(end);
        let b = window.exec_intervals_until(end);
        assert_eq!(a.len(), b.len(), "case {case}: until-intervals diverged");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                (x.resource, x.task, x.start, x.end),
                (y.resource, y.task, y.start, y.end),
                "case {case}: until-interval diverged"
            );
        }
    }
}

/// Symbols are never evicted: after arbitrary wraparound, every symbol
/// ever minted still resolves to its original string — including labels
/// whose every carrying event has been overwritten.
#[test]
fn resolve_roundtrips_every_symbol_after_wrap() {
    let mut rng = SimRng::seed_from(0x41B6_0002);
    for case in 0..32 {
        let cap = rng.uniform_u64(1, 32) as usize;
        let mut ring = TraceBuffer::enabled_ring(cap);
        let labels: Vec<String> = (0..rng.uniform_u64(1, 64))
            .map(|i| format!("label-{case}-{i}"))
            .collect();
        let syms: Vec<_> = labels.iter().map(|l| ring.intern(l)).collect();
        // Record far more events than capacity, cycling the labels.
        let rounds = cap * 4 + 7;
        for i in 0..rounds {
            ring.record(
                SimTime::from_ns(i as u64),
                TraceResource::CpuCore(0),
                TraceKind::ExecStart {
                    task: i as u64,
                    label: syms[i % syms.len()],
                },
            );
        }
        assert_eq!(ring.len(), cap.min(rounds), "case {case}");
        assert!(ring.dropped() > 0 || rounds <= cap, "case {case}");
        for (l, s) in labels.iter().zip(&syms) {
            assert_eq!(ring.resolve(*s), l, "case {case}: symbol lost after wrap");
        }
        // Symbols decoded out of retained events resolve, too.
        for ev in ring.iter() {
            if let TraceKind::ExecStart { label, .. } = ev.kind {
                assert!(
                    labels.iter().any(|l| l == ring.resolve(label)),
                    "case {case}: decoded symbol resolves to a foreign string"
                );
            }
        }
    }
}

/// Instants (Rpc/Dvfs/Migration/Marker) survive eviction boundaries with
/// payloads intact — the columnar codec is wraparound-oblivious.
#[test]
fn payloads_survive_wraparound() {
    let mut ring = TraceBuffer::enabled_ring(3);
    let m = ring.intern("m");
    ring.record(
        SimTime::from_ns(1),
        TraceResource::CpuCore(2),
        TraceKind::Dvfs {
            core: 2,
            freq_hz: 1_766_000_000,
        },
    );
    ring.record(
        SimTime::from_ns(2),
        TraceResource::CpuCore(1),
        TraceKind::Migration {
            task: 9,
            from: 1,
            to: 6,
        },
    );
    ring.record(
        SimTime::from_ns(3),
        TraceResource::Dsp,
        TraceKind::Rpc {
            phase: RpcPhase::DoorbellRing,
        },
    );
    ring.record(
        SimTime::from_ns(4),
        TraceResource::Gpu,
        TraceKind::Marker { label: m },
    );
    let got: Vec<_> = ring.iter().collect();
    assert_eq!(got.len(), 3);
    assert_eq!(
        got[0].kind,
        TraceKind::Migration {
            task: 9,
            from: 1,
            to: 6
        }
    );
    assert_eq!(
        got[1].kind,
        TraceKind::Rpc {
            phase: RpcPhase::DoorbellRing
        }
    );
    assert_eq!(got[2].kind, TraceKind::Marker { label: m });
    assert_eq!(ring.dropped(), 1);
}
