//! Differential oracle for the timing-wheel calendar.
//!
//! The wheel in `calendar.rs` earns its determinism claim here: seeded
//! scripts of mixed schedule / cancel / pop / peek / advance operations
//! are replayed, operation by operation, against both the wheel
//! [`Calendar`] and the retired binary-heap [`LegacyCalendar`] (whose
//! `(time, seq)` ordering is correct by construction), asserting after
//! every step that the two agree on:
//!
//! * the **pop sequence** — which logical event fires, and when,
//! * the **clock** (`now`) and the peeked head time,
//! * the **pending count** and the scheduled/fired/cancelled totals,
//! * **token-reuse safety** — spent tokens are rejected by both forever.
//!
//! Token *values* are implementation detail (the two reclaim tombstone
//! slots at different moments, so slot numbers diverge); equality is
//! checked through caller-side logical event ids, never raw tokens.
//!
//! The full run replays ≥1M operations (seconds, even unoptimized). CI
//! smoke can shrink it via `AITAX_DIFF_OPS=<total>`; any failure names
//! the script seed and operation index, and reproduces bit-exactly.

use std::collections::BTreeMap;

use aitax_des::{Calendar, LegacyCalendar, SimRng, SimSpan, SimTime, Token};

/// Script seeds: one independent operation stream each.
const SCRIPT_SEEDS: [u64; 6] = [
    0xD1FF_0001,
    0xD1FF_0002,
    0xD1FF_0003,
    0xD1FF_0004,
    0xD1FF_0005,
    0xD1FF_0006,
];

/// Total operations across all scripts unless `AITAX_DIFF_OPS` overrides.
const DEFAULT_TOTAL_OPS: u64 = 1_200_000;

fn total_ops() -> u64 {
    match std::env::var("AITAX_DIFF_OPS") {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("AITAX_DIFF_OPS must be an integer, got {v:?}")),
        Err(_) => DEFAULT_TOTAL_OPS,
    }
}

/// One live logical event, tracked per implementation.
struct LiveEvent {
    id: u64,
    wheel: Token,
    legacy: Token,
}

/// A spent (fired or cancelled) token pair, kept to prove staleness.
struct SpentPair {
    wheel: Token,
    legacy: Token,
}

/// Both calendars plus the caller-side identity maps that translate
/// implementation tokens back to logical event ids.
struct Harness {
    wheel: Calendar,
    legacy: LegacyCalendar,
    live: Vec<LiveEvent>,
    /// wheel-token raw value → logical id (raw includes the generation,
    /// so it is unique even across slot recycling).
    by_wheel: BTreeMap<u64, u64>,
    by_legacy: BTreeMap<u64, u64>,
    spent: Vec<SpentPair>,
    next_id: u64,
}

impl Harness {
    fn new() -> Self {
        Harness {
            wheel: Calendar::new(),
            legacy: LegacyCalendar::new(),
            live: Vec::new(),
            by_wheel: BTreeMap::new(),
            by_legacy: BTreeMap::new(),
            spent: Vec::new(),
            next_id: 0,
        }
    }

    fn schedule(&mut self, delay: u64, ctx: &str) {
        let span = SimSpan::from_ns(delay);
        let w = self.wheel.schedule_after(span);
        let l = self.legacy.schedule_after(span);
        let id = self.next_id;
        self.next_id += 1;
        assert!(
            self.by_wheel.insert(w.raw(), id).is_none(),
            "{ctx}: wheel handed out a live token twice"
        );
        assert!(
            self.by_legacy.insert(l.raw(), id).is_none(),
            "{ctx}: legacy handed out a live token twice"
        );
        self.live.push(LiveEvent {
            id,
            wheel: w,
            legacy: l,
        });
    }

    /// Pops both calendars and asserts they fire the same logical event
    /// at the same instant. Returns whether anything fired.
    fn pop(&mut self, ctx: &str) -> bool {
        let w = self.wheel.next();
        let l = self.legacy.next();
        match (w, l) {
            (None, None) => false,
            (Some((wt, wtok)), Some((lt, ltok))) => {
                assert_eq!(wt, lt, "{ctx}: fire times diverged");
                let wid = self
                    .by_wheel
                    .remove(&wtok.raw())
                    .unwrap_or_else(|| panic!("{ctx}: wheel fired an unknown token"));
                let lid = self
                    .by_legacy
                    .remove(&ltok.raw())
                    .unwrap_or_else(|| panic!("{ctx}: legacy fired an unknown token"));
                assert_eq!(wid, lid, "{ctx}: pop order diverged (event {wid} vs {lid})");
                let pos = self
                    .live
                    .iter()
                    .position(|e| e.id == wid)
                    .unwrap_or_else(|| panic!("{ctx}: fired event {wid} was not live"));
                let ev = self.live.swap_remove(pos);
                self.spent.push(SpentPair {
                    wheel: ev.wheel,
                    legacy: ev.legacy,
                });
                true
            }
            (w, l) => {
                panic!("{ctx}: one calendar fired and the other did not (wheel={w:?} legacy={l:?})")
            }
        }
    }

    fn cancel_live(&mut self, i: usize, ctx: &str) {
        let ev = self.live.swap_remove(i);
        assert!(
            self.wheel.cancel(ev.wheel),
            "{ctx}: wheel refused a live cancel"
        );
        assert!(
            self.legacy.cancel(ev.legacy),
            "{ctx}: legacy refused a live cancel"
        );
        self.by_wheel.remove(&ev.wheel.raw());
        self.by_legacy.remove(&ev.legacy.raw());
        self.spent.push(SpentPair {
            wheel: ev.wheel,
            legacy: ev.legacy,
        });
    }

    fn assert_spent_rejected(&mut self, i: usize, ctx: &str) {
        let p = &self.spent[i];
        assert!(
            !self.wheel.cancel(p.wheel),
            "{ctx}: wheel accepted a spent token"
        );
        assert!(
            !self.legacy.cancel(p.legacy),
            "{ctx}: legacy accepted a spent token"
        );
    }

    /// The step-invariant checks run after every operation.
    fn check_agreement(&mut self, ctx: &str) {
        assert_eq!(
            self.wheel.now(),
            self.legacy.now(),
            "{ctx}: clocks diverged"
        );
        assert_eq!(
            self.wheel.pending(),
            self.legacy.pending(),
            "{ctx}: pending diverged"
        );
        assert_eq!(
            self.wheel.pending(),
            self.live.len(),
            "{ctx}: pending drifted"
        );
        assert_eq!(
            (
                self.wheel.scheduled_total(),
                self.wheel.fired_total(),
                self.wheel.cancelled_total()
            ),
            (
                self.legacy.scheduled_total(),
                self.legacy.fired_total(),
                self.legacy.cancelled_total()
            ),
            "{ctx}: counters diverged"
        );
    }

    fn check_peek(&mut self, ctx: &str) {
        assert_eq!(
            self.wheel.peek_time(),
            self.legacy.peek_time(),
            "{ctx}: peeked head diverged"
        );
    }
}

/// Delay distribution mixing the regimes the wheel must get right:
/// mostly near-term timers, ~10% far-future events that land at high
/// wheel levels and cross multiple cascade boundaries on their way down,
/// and a slice of exact ties (zero delay and round numbers).
fn pick_delay(rng: &mut SimRng) -> u64 {
    match rng.uniform_u64(0, 100) {
        // Same-instant and same-slot ties.
        0..=9 => rng.uniform_u64(0, 4),
        // Near-term: level 0-1 territory.
        10..=69 => rng.uniform_u64(0, 50_000),
        // Mid-range: a few cascade levels.
        70..=89 => rng.uniform_u64(50_000, 50_000_000),
        // Far future: up to ~64^8 ns, traversing most of the wheel.
        90..=97 => rng.uniform_u64(50_000_000, 1 << 48),
        // Extreme horizon.
        _ => rng.uniform_u64(1 << 48, 1 << 60),
    }
}

fn run_script(seed: u64, ops: u64) {
    let mut rng = SimRng::seed_from(seed);
    let mut h = Harness::new();
    for op in 0..ops {
        let ctx = format!("script {seed:#x} op {op}");
        match rng.uniform_u64(0, 10) {
            // Schedule (weighted 4x so a real backlog builds up).
            0..=3 => {
                let delay = pick_delay(&mut rng);
                h.schedule(delay, &ctx);
            }
            // Pop.
            4..=6 => {
                h.pop(&ctx);
            }
            // Cancel a live event, or probe a spent token for staleness.
            7 | 8 => {
                let pick_live = !h.live.is_empty() && (h.spent.is_empty() || rng.chance(0.6));
                if pick_live {
                    let i = rng.uniform_u64(0, h.live.len() as u64) as usize;
                    h.cancel_live(i, &ctx);
                } else if !h.spent.is_empty() {
                    let i = rng.uniform_u64(0, h.spent.len() as u64) as usize;
                    h.assert_spent_rejected(i, &ctx);
                }
            }
            // Peek, and occasionally advance the idle clock part-way
            // toward (or exactly onto) the head event.
            _ => {
                h.check_peek(&ctx);
                if rng.chance(0.25) {
                    let now = h.wheel.now();
                    let target = match h.wheel.peek_time() {
                        Some(head) => {
                            let gap = head.as_ns() - now.as_ns();
                            SimTime::from_ns(now.as_ns() + gap / 2 + (gap % 2) * (op % 2))
                        }
                        None => SimTime::from_ns(
                            now.as_ns().saturating_add(rng.uniform_u64(0, 1 << 30)),
                        ),
                    };
                    h.wheel.advance_to(target);
                    h.legacy.advance_to(target);
                }
            }
        }
        h.check_agreement(&ctx);
    }
    // Drain both to empty: the tail of the pop sequence must agree too.
    let ctx = format!("script {seed:#x} drain");
    while h.pop(&ctx) {
        h.check_agreement(&ctx);
    }
    assert!(h.live.is_empty(), "{ctx}: live events lost");
    assert_eq!(h.wheel.pending(), 0, "{ctx}");
    h.check_peek(&ctx);
}

/// The headline gate: ≥1M mixed operations replayed against the oracle
/// with identical pop sequences, clocks, counters, and token semantics.
#[test]
fn wheel_matches_legacy_heap_under_churn() {
    let total = total_ops();
    let per_script = total.div_ceil(SCRIPT_SEEDS.len() as u64);
    for &seed in &SCRIPT_SEEDS {
        run_script(seed, per_script);
    }
}

/// Far-future-only stress: every event crosses multiple cascade
/// boundaries before firing, with cancels landing mid-cascade.
#[test]
fn far_future_cascades_match_legacy_heap() {
    let mut rng = SimRng::seed_from(0xD1FF_CA5C);
    let mut h = Harness::new();
    let ops = (total_ops() / 20).max(2_000);
    for op in 0..ops {
        let ctx = format!("cascade op {op}");
        match rng.uniform_u64(0, 8) {
            0..=3 => {
                // Bias hard toward high wheel levels (level 2 and above).
                let delay = rng.uniform_u64(1 << 12, 1 << 56);
                h.schedule(delay, &ctx);
            }
            4 | 5 => {
                h.pop(&ctx);
            }
            6 => {
                if !h.live.is_empty() {
                    let i = rng.uniform_u64(0, h.live.len() as u64) as usize;
                    h.cancel_live(i, &ctx);
                }
            }
            _ => h.check_peek(&ctx),
        }
        h.check_agreement(&ctx);
    }
    let ctx = "cascade drain";
    while h.pop(ctx) {
        h.check_agreement(ctx);
    }
    assert_eq!(h.wheel.pending(), 0, "{ctx}");
}
