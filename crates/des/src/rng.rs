//! Seedable randomness for workload and noise models.
//!
//! [`SimRng`] is a self-contained deterministic PRNG (xoshiro256** seeded
//! via SplitMix64 — no external dependencies, so builds are reproducible
//! offline) plus the handful of distributions the simulator needs (normal,
//! log-normal, exponential, bounded jitter). The same seed always
//! reproduces the same simulation, which the integration tests rely on.

/// Deterministic random source for the simulator.
///
/// # Example
///
/// ```
/// use aitax_des::SimRng;
/// let mut a = SimRng::seed_from(7);
/// let mut b = SimRng::seed_from(7);
/// assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

/// SplitMix64 step — used only to expand a 64-bit seed into state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// xoshiro256** core step.
    fn next_raw(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform sample in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Derives an independent child generator (for per-subsystem streams).
    ///
    /// Mixing in `salt` keeps children with different salts decorrelated.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let s = self.next_raw() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from(s)
    }

    /// Splittable stream derivation: an independent child generator keyed
    /// by `stream_id`, computed **without mutating** `self`.
    ///
    /// Unlike [`SimRng::fork`], which advances the parent and therefore
    /// couples children to the order they were forked in, `derive` is a
    /// pure function of `(parent state, stream_id)`. The parallel sweep
    /// engine relies on this: job *k* gets `root.derive(k)` and sees the
    /// same stream no matter which worker thread picks it up or when.
    pub fn derive(&self, stream_id: u64) -> SimRng {
        // Absorb the four state words and the stream id through a
        // SplitMix64 sponge (keeping the scrambled output each round),
        // then expand the digest into fresh state.
        let mut acc = 0x243F_6A88_85A3_08D3u64; // pi fractional bits
        for &w in &self.s {
            let mut t = acc ^ w;
            acc = splitmix64(&mut t);
        }
        let mut t = acc ^ stream_id.wrapping_mul(0xD1B5_4A32_D192_ED03);
        let seed = splitmix64(&mut t);
        SimRng::seed_from(seed)
    }

    /// Two-level stream derivation: `derive2(hi, lo)` is
    /// `derive(hi).derive(lo)`, the canonical addressing for nested
    /// entity spaces such as device × request.
    ///
    /// Pure like [`SimRng::derive`] — a function of
    /// `(parent state, hi, lo)` only — so the fleet can address request
    /// *r* of device *d* as `root.derive2(d, r)` and obtain the same
    /// stream on any shard, thread, or re-run. The two levels are
    /// hierarchical, not interchangeable: `derive2(a, b)` and
    /// `derive2(b, a)` are unrelated streams.
    pub fn derive2(&self, hi: u64, lo: u64) -> SimRng {
        self.derive(hi).derive(lo)
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "uniform bounds must satisfy lo < hi");
        let x = lo + (hi - lo) * self.next_f64();
        // Guard the open upper bound against rounding.
        if x < hi {
            x
        } else {
            lo
        }
    }

    /// Uniform integer sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "uniform bounds must satisfy lo < hi");
        let range = hi - lo;
        // Multiply-shift rejection-free mapping; bias is < 2^-64 × range,
        // far below anything a simulation distribution can observe.
        let wide = (self.next_raw() as u128) * (range as u128);
        lo + (wide >> 64) as u64
    }

    /// Bernoulli trial with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Standard normal sample (Box–Muller).
    pub fn standard_normal(&mut self) -> f64 {
        // Box–Muller transform; map u1 into (0, 1] to avoid ln(0).
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.standard_normal()
    }

    /// Log-normal sample parameterized by the *median* and a multiplicative
    /// spread `sigma` (standard deviation of the underlying normal).
    ///
    /// Heavy-tailed delays (interrupt latency, scheduler wakeups) use this.
    pub fn lognormal(&mut self, median: f64, sigma: f64) -> f64 {
        median * (sigma * self.standard_normal()).exp()
    }

    /// Exponential sample with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        let u = 1.0 - self.next_f64(); // (0, 1]
        -mean * u.ln()
    }

    /// Multiplicative jitter factor in `[1 - frac, 1 + frac]`.
    ///
    /// `jitter(0.05)` returns a factor within ±5%. `frac == 0` returns 1.
    pub fn jitter(&mut self, frac: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&frac),
            "jitter fraction must be in [0,1)"
        );
        // aitax-allow(float-eq): frac == 0.0 is an exact caller-supplied sentinel meaning no jitter
        if frac == 0.0 {
            1.0
        } else {
            self.uniform(1.0 - frac, 1.0 + frac)
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot pick from an empty slice");
        let i = self.uniform_u64(0, items.len() as u64) as usize;
        &items[i]
    }

    /// Raw 64-bit sample (for hashing/salting).
    pub fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(123);
        let mut b = SimRng::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_decorrelated() {
        let mut root = SimRng::seed_from(1);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derive_is_pure_and_order_independent() {
        let root = SimRng::seed_from(42);
        // Same id twice → identical stream; parent state untouched.
        let mut a = root.derive(7);
        let mut b = root.derive(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Deriving other ids in between changes nothing.
        let _ = root.derive(1);
        let _ = root.derive(1000);
        let mut c = root.derive(7);
        let mut a2 = root.derive(7);
        for _ in 0..64 {
            assert_eq!(a2.next_u64(), c.next_u64());
        }
    }

    #[test]
    fn derive_streams_are_statistically_independent() {
        let root = SimRng::seed_from(9);
        // First draw of 512 consecutive stream ids: all distinct, and
        // the bit density over the pool stays near 50%.
        let firsts: Vec<u64> = (0..512).map(|i| root.derive(i).next_u64()).collect();
        let mut sorted = firsts.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 512, "no first-draw collisions");
        let ones: u32 = firsts.iter().map(|x| x.count_ones()).sum();
        let density = f64::from(ones) / (512.0 * 64.0);
        assert!((density - 0.5).abs() < 0.02, "bit density {density}");
        // Adjacent streams never agree draw-for-draw.
        let mut s0 = root.derive(100);
        let mut s1 = root.derive(101);
        let same = (0..256).filter(|_| s0.next_u64() == s1.next_u64()).count();
        assert_eq!(same, 0);
        // Uniform samples from pooled streams have a sane mean (LCG-style
        // correlation across streams would drag this off-center).
        let n = 64;
        let mean: f64 = (0..n)
            .map(|i| {
                let mut r = root.derive(i + 2000);
                (0..32).map(|_| r.uniform(0.0, 1.0)).sum::<f64>() / 32.0
            })
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "pooled mean {mean}");
    }

    #[test]
    fn derive2_is_pure_and_order_independent() {
        let root = SimRng::seed_from(42);
        // Same address twice → identical stream; parent state untouched.
        let mut a = root.derive2(7, 9);
        let mut b = root.derive2(7, 9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Deriving other addresses in between changes nothing.
        let _ = root.derive2(7, 10);
        let _ = root.derive2(1000, 9);
        let mut c = root.derive2(7, 9);
        let mut a2 = root.derive2(7, 9);
        for _ in 0..64 {
            assert_eq!(a2.next_u64(), c.next_u64());
        }
        // And it is exactly the nested derivation it documents.
        assert_eq!(
            root.derive2(7, 9).next_u64(),
            root.derive(7).derive(9).next_u64()
        );
    }

    #[test]
    fn derive2_addresses_are_distinct() {
        let root = SimRng::seed_from(3);
        // First draws over a 32×32 address grid: all distinct, and the
        // levels are hierarchical — swapping (hi, lo) changes the stream.
        let mut firsts: Vec<u64> = (0..32u64)
            .flat_map(|d| (0..32u64).map(move |r| (d, r)))
            .map(|(d, r)| root.derive2(d, r).next_u64())
            .collect();
        firsts.sort_unstable();
        firsts.dedup();
        assert_eq!(firsts.len(), 1024, "no first-draw collisions");
        assert_ne!(
            root.derive2(1, 2).next_u64(),
            root.derive2(2, 1).next_u64(),
            "levels must not commute"
        );
    }

    #[test]
    fn derive_differs_from_fork_and_between_parents() {
        let mut root = SimRng::seed_from(5);
        let derived = root.clone().derive(3).next_u64();
        let forked = root.fork(3).next_u64();
        assert_ne!(derived, forked);
        let other = SimRng::seed_from(6).derive(3).next_u64();
        assert_ne!(derived, other, "derivation depends on parent state");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = SimRng::seed_from(5);
        for _ in 0..1000 {
            let x = r.uniform(2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn uniform_u64_covers_range() {
        let mut r = SimRng::seed_from(21);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let x = r.uniform_u64(8, 16);
            assert!((8..16).contains(&x));
            seen[(x - 8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values should appear");
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut r = SimRng::seed_from(9);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "sd {}", var.sqrt());
    }

    #[test]
    fn lognormal_is_positive_with_right_median() {
        let mut r = SimRng::seed_from(11);
        let mut samples: Vec<f64> = (0..10_001).map(|_| r.lognormal(4.0, 0.5)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[5000];
        assert!((median - 4.0).abs() < 0.2, "median {median}");
    }

    #[test]
    fn exponential_mean_is_sane() {
        let mut r = SimRng::seed_from(13);
        let n = 20_000;
        let mean = (0..n).map(|_| r.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn jitter_zero_is_identity() {
        let mut r = SimRng::seed_from(17);
        assert_eq!(r.jitter(0.0), 1.0);
        for _ in 0..100 {
            let j = r.jitter(0.1);
            assert!((0.9..=1.1).contains(&j));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(19);
        assert!((0..100).all(|_| !r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
