//! Deterministic discrete-event simulation (DES) kernel for the `aitax`
//! mobile-SoC simulator.
//!
//! This crate provides the foundational machinery that every other `aitax`
//! crate builds on:
//!
//! * [`SimTime`] / [`SimSpan`] — a nanosecond-resolution virtual clock,
//! * [`Calendar`] — a cancellable, deterministically ordered event calendar,
//! * [`SimRng`] — a seedable random source with the distributions used by the
//!   workload and noise models,
//! * [`trace`] — a compact structured trace vocabulary (execution intervals,
//!   context switches, RPC phases, AXI bursts) consumed by `aitax-profiler`.
//!
//! The calendar is intentionally *payload-free*: it hands out opaque
//! [`Token`]s and lets the embedding simulator (see `aitax-kernel`) map
//! tokens to domain events. This keeps the kernel monomorphic and easy to
//! test in isolation.
//!
//! # Example
//!
//! ```
//! use aitax_des::{Calendar, SimSpan};
//!
//! let mut cal = Calendar::new();
//! let a = cal.schedule_after(SimSpan::from_ms(2.0));
//! let b = cal.schedule_after(SimSpan::from_ms(1.0));
//! let (t, tok) = cal.next().expect("an event is pending");
//! assert_eq!(tok, b);
//! assert_eq!(t.as_ms(), 1.0);
//! # let _ = a;
//! ```

pub mod arbiter;
pub mod calendar;
pub mod fault;
pub mod rng;
pub mod symbol;
pub mod time;
pub mod trace;

pub use arbiter::{Acquired, Arbiter, ArbiterEvent, HoldId, Ticket};
#[cfg(any(test, feature = "legacy-oracle"))]
pub use calendar::legacy::LegacyCalendar;
pub use calendar::{Calendar, Token};
pub use fault::{FaultKind, FaultPlan, FaultWindow};
pub use rng::SimRng;
pub use symbol::{Symbol, SymbolTable};
pub use time::{SimSpan, SimTime};
pub use trace::{TraceBuffer, TraceEvent, TraceKind};
