//! String interning for trace labels.
//!
//! Recording a trace event used to heap-allocate a `Box<str>` label —
//! a real probe effect in the spirit of the paper's §III-D concern:
//! the measurement apparatus (here, the simulator's own tracing) must
//! not perturb the system under test. Interning fixes that: labels are
//! deduplicated once at task-submission time into a [`SymbolTable`],
//! and every trace event carries a `Copy` 4-byte [`Symbol`]. Strings
//! are materialized only at report/export time.

use std::collections::BTreeMap;

/// An interned trace label: a dense index into the [`SymbolTable`]
/// that minted it.
///
/// Symbols are meaningful only together with their table; resolving a
/// symbol against a different table is a logic error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// Raw table index (useful for logging).
    pub fn index(self) -> u32 {
        self.0
    }

    /// Rebuilds a symbol from its raw index — the inverse of
    /// [`Symbol::index`], used by the columnar trace store to decode
    /// label columns back into symbols. The index must have come from
    /// the same table the symbol will be resolved against.
    pub(crate) fn from_index(index: u32) -> Symbol {
        Symbol(index)
    }
}

/// A deduplicating string table mapping labels to [`Symbol`]s.
///
/// The reverse index is a `BTreeMap`, so symbol assignment depends only
/// on intern order — never on hash iteration order — keeping runs with
/// the same seed byte-identical.
///
/// # Example
///
/// ```
/// use aitax_des::SymbolTable;
///
/// let mut table = SymbolTable::new();
/// let a = table.intern("inference");
/// let b = table.intern("inference");
/// assert_eq!(a, b);
/// assert_eq!(table.resolve(a), "inference");
/// ```
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    strings: Vec<Box<str>>,
    index: BTreeMap<Box<str>, u32>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning the existing symbol if already present.
    ///
    /// Allocates only the first time a given string is seen; repeat
    /// interning is a lookup.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&i) = self.index.get(s) {
            return Symbol(i);
        }
        let i = u32::try_from(self.strings.len())
            // aitax-allow(panic-path): 2^32 distinct labels means the workload generator is broken
            .expect("symbol table overflow");
        self.strings.push(s.into());
        self.index.insert(s.into(), i);
        Symbol(i)
    }

    /// The string a symbol stands for.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was minted by a different table.
    pub fn resolve(&self, sym: Symbol) -> &str {
        self.strings
            .get(sym.0 as usize)
            // aitax-allow(panic-path): a foreign symbol is a cross-table logic bug worth crashing on
            .expect("symbol resolved against a table that did not intern it")
    }

    /// Forgets every interned string, invalidating previously minted
    /// symbols. The string vector keeps its capacity, so a reused table
    /// re-interns its first labels without growing.
    ///
    /// A reused table must start empty rather than carry symbols over:
    /// symbol indices are assigned in intern order, so retained content
    /// would make the numbering (and thus trace bytes) depend on what
    /// earlier runs happened to intern.
    pub fn clear(&mut self) {
        self.strings.clear();
        self.index.clear();
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedupes() {
        let mut t = SymbolTable::new();
        let a = t.intern("x");
        let b = t.intern("y");
        let a2 = t.intern("x");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn resolve_roundtrips() {
        let mut t = SymbolTable::new();
        let labels = ["conv2d", "pooling", "fully-connected", ""];
        let syms: Vec<Symbol> = labels.iter().map(|l| t.intern(l)).collect();
        for (l, s) in labels.iter().zip(&syms) {
            assert_eq!(t.resolve(*s), *l);
        }
    }

    #[test]
    fn symbols_are_assigned_in_intern_order() {
        let mut t = SymbolTable::new();
        assert_eq!(t.intern("a").index(), 0);
        assert_eq!(t.intern("b").index(), 1);
        assert_eq!(t.intern("a").index(), 0);
    }

    #[test]
    #[should_panic(expected = "did not intern")]
    fn foreign_symbol_panics() {
        let mut a = SymbolTable::new();
        a.intern("x");
        let mut b = SymbolTable::new();
        let s = b.intern("y");
        let _ = s;
        let empty = SymbolTable::new();
        empty.resolve(Symbol(0));
    }

    #[test]
    fn clear_restarts_numbering_like_a_fresh_table() {
        let mut t = SymbolTable::new();
        t.intern("a");
        t.intern("b");
        t.clear();
        assert!(t.is_empty());
        // Post-clear numbering matches a brand-new table.
        assert_eq!(t.intern("z").index(), 0);
        assert_eq!(t.intern("a").index(), 1);
    }

    #[test]
    fn empty_table_reports_empty() {
        let t = SymbolTable::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
