//! Deterministic fault injection for the simulated SoC.
//!
//! A [`FaultPlan`] is a seeded schedule of [`FaultKind`]s, each active
//! over a half-open `[start, end)` window of simulated time. The plan is
//! pure data: it never schedules anything by itself. Subsystems query
//! [`FaultPlan::active`] at their own decision points (the FastRPC ioctl
//! boundary, the DSP doorbell, the cache-maintenance step, ...), which
//! keeps the fault-free path byte-identical to a run with no plan
//! installed — the zero-overhead guarantee that
//! `tests/fault_tolerance.rs` pins.

use crate::time::SimTime;

/// The failure modes the paper's measurement chapters run into, each
/// mapped to the stack layer where the real phone exhibits it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// `ioctl(FASTRPC_INVOKE)` returns an error before reaching the DSP
    /// (driver rejects the call at the kernel boundary).
    RpcIoctlError,
    /// The DSP never raises its completion signal: the invocation hangs
    /// until the caller's timeout fires.
    DspSignalTimeout,
    /// The DSP runs the job but the completion response is lost, so the
    /// work is visibly done in the trace yet the caller still times out.
    DspResponseDropped,
    /// Skin-temperature emergency: the thermal state jumps past the hard
    /// limit and the governor clamps frequency until the SoC cools.
    ThermalEmergency,
    /// Memory pressure multiplies the cache-maintenance cost of every
    /// FastRPC call (the Fig. 7 flush/invalidate step) while active.
    CacheFlushStorm,
    /// A burst of background tasks lands on the CPU cores, contending
    /// with the foreground pipeline like the Fig. 10 scenario.
    BackgroundBurst,
}

impl FaultKind {
    /// Every fault kind, in a fixed order (for sweeps and reports).
    pub const ALL: [FaultKind; 6] = [
        FaultKind::RpcIoctlError,
        FaultKind::DspSignalTimeout,
        FaultKind::DspResponseDropped,
        FaultKind::ThermalEmergency,
        FaultKind::CacheFlushStorm,
        FaultKind::BackgroundBurst,
    ];

    /// Stable lowercase label for tables and TSV output.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::RpcIoctlError => "rpc_ioctl_error",
            FaultKind::DspSignalTimeout => "dsp_signal_timeout",
            FaultKind::DspResponseDropped => "dsp_response_dropped",
            FaultKind::ThermalEmergency => "thermal_emergency",
            FaultKind::CacheFlushStorm => "cache_flush_storm",
            FaultKind::BackgroundBurst => "background_burst",
        }
    }
}

/// One scheduled fault: `kind` is active for `start <= t < end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultWindow {
    pub kind: FaultKind,
    pub start: SimTime,
    pub end: SimTime,
}

impl FaultWindow {
    /// Whether this window covers instant `t`.
    pub fn covers(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }
}

/// A seeded, ordered schedule of fault windows.
///
/// The seed does not drive the windows themselves (those are explicit);
/// it seeds whatever randomness a consumer needs when *realizing* a
/// fault — e.g. the sizes of a background burst — so that the same plan
/// always unfolds identically.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    windows: Vec<FaultWindow>,
}

impl FaultPlan {
    /// An empty plan: no faults, and — by construction of the query-based
    /// injection points — no effect on the simulation whatsoever.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            windows: Vec::new(),
        }
    }

    /// Add a fault active over `[start, end)`.
    pub fn window(mut self, kind: FaultKind, start: SimTime, end: SimTime) -> Self {
        assert!(start <= end, "fault window must not be inverted");
        self.windows.push(FaultWindow { kind, start, end });
        self
    }

    /// Add a fault that starts at `from` and never clears.
    pub fn sustained(self, kind: FaultKind, from: SimTime) -> Self {
        self.window(kind, from, SimTime::MAX)
    }

    /// Add an instantaneous fault at `t` (relevant for one-shot kinds
    /// like [`FaultKind::ThermalEmergency`] and
    /// [`FaultKind::BackgroundBurst`]).
    pub fn at(self, kind: FaultKind, t: SimTime) -> Self {
        self.window(kind, t, SimTime::from_ns(t.as_ns().saturating_add(1)))
    }

    /// The seed consumers should use for fault-realization randomness.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether any window of `kind` covers instant `t`.
    pub fn active(&self, kind: FaultKind, t: SimTime) -> bool {
        self.windows.iter().any(|w| w.kind == kind && w.covers(t))
    }

    /// All scheduled windows, in insertion order.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// Windows of one particular kind, in insertion order.
    pub fn windows_of(&self, kind: FaultKind) -> impl Iterator<Item = &FaultWindow> {
        self.windows.iter().filter(move |w| w.kind == kind)
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_half_open() {
        let plan = FaultPlan::new(1).window(
            FaultKind::RpcIoctlError,
            SimTime::from_ns(100),
            SimTime::from_ns(200),
        );
        assert!(!plan.active(FaultKind::RpcIoctlError, SimTime::from_ns(99)));
        assert!(plan.active(FaultKind::RpcIoctlError, SimTime::from_ns(100)));
        assert!(plan.active(FaultKind::RpcIoctlError, SimTime::from_ns(199)));
        assert!(!plan.active(FaultKind::RpcIoctlError, SimTime::from_ns(200)));
        // Other kinds are unaffected.
        assert!(!plan.active(FaultKind::DspSignalTimeout, SimTime::from_ns(150)));
    }

    #[test]
    fn sustained_never_clears() {
        let plan = FaultPlan::new(1).sustained(FaultKind::DspSignalTimeout, SimTime::ZERO);
        assert!(plan.active(FaultKind::DspSignalTimeout, SimTime::ZERO));
        assert!(plan.active(FaultKind::DspSignalTimeout, SimTime::from_ns(u64::MAX - 1)));
    }

    #[test]
    fn point_faults_cover_exactly_one_instant() {
        let plan = FaultPlan::new(7).at(FaultKind::ThermalEmergency, SimTime::from_ns(500));
        assert!(plan.active(FaultKind::ThermalEmergency, SimTime::from_ns(500)));
        assert!(!plan.active(FaultKind::ThermalEmergency, SimTime::from_ns(501)));
        assert_eq!(plan.windows().len(), 1);
    }

    #[test]
    fn empty_plan_reports_empty() {
        assert!(FaultPlan::new(0).is_empty());
        assert!(!FaultPlan::new(0)
            .sustained(FaultKind::CacheFlushStorm, SimTime::ZERO)
            .is_empty());
    }

    #[test]
    fn plans_compare_by_value() {
        let a = FaultPlan::new(3).sustained(FaultKind::RpcIoctlError, SimTime::ZERO);
        let b = FaultPlan::new(3).sustained(FaultKind::RpcIoctlError, SimTime::ZERO);
        assert_eq!(a, b);
        assert_ne!(
            a,
            FaultPlan::new(4).sustained(FaultKind::RpcIoctlError, SimTime::ZERO)
        );
    }
}
