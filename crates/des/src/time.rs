//! Virtual time: nanosecond-resolution instants and spans.
//!
//! [`SimTime`] is a point on the simulated timeline; [`SimSpan`] is a
//! non-negative duration. Keeping the two as distinct newtypes prevents the
//! classic "added two timestamps" bug ([C-NEWTYPE]).
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulated timeline, in nanoseconds since simulation
/// start.
///
/// # Example
///
/// ```
/// use aitax_des::{SimSpan, SimTime};
/// let t = SimTime::ZERO + SimSpan::from_ms(1.5);
/// assert_eq!(t.as_us(), 1500.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A non-negative span of simulated time, in nanoseconds.
///
/// # Example
///
/// ```
/// use aitax_des::SimSpan;
/// let s = SimSpan::from_us(2.0) + SimSpan::from_us(3.0);
/// assert_eq!(s.as_ms(), 0.005);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimSpan(u64);

impl SimTime {
    /// The origin of the simulated timeline.
    pub const ZERO: SimTime = SimTime(0);
    /// The farthest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// This instant expressed in microseconds.
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This instant expressed in milliseconds.
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// This instant expressed in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Span since `earlier`, saturating to zero if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimSpan {
        SimSpan(self.0.saturating_sub(earlier.0))
    }
}

impl SimSpan {
    /// The empty span.
    pub const ZERO: SimSpan = SimSpan(0);

    /// Creates a span from raw nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimSpan(ns)
    }

    /// Creates a span from (fractional) microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `us` is negative or not finite.
    pub fn from_us(us: f64) -> Self {
        Self::from_ns_f64(us * 1_000.0)
    }

    /// Creates a span from (fractional) milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative or not finite.
    pub fn from_ms(ms: f64) -> Self {
        Self::from_ns_f64(ms * 1_000_000.0)
    }

    /// Creates a span from (fractional) seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs(secs: f64) -> Self {
        Self::from_ns_f64(secs * 1_000_000_000.0)
    }

    fn from_ns_f64(ns: f64) -> Self {
        assert!(
            ns.is_finite() && ns >= 0.0,
            "span must be finite and non-negative, got {ns} ns"
        );
        SimSpan(ns.round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// This span expressed in microseconds.
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This span expressed in milliseconds.
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// This span expressed in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Whether this is the empty span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The smaller of two spans.
    pub fn min(self, other: SimSpan) -> SimSpan {
        SimSpan(self.0.min(other.0))
    }

    /// The larger of two spans.
    pub fn max(self, other: SimSpan) -> SimSpan {
        SimSpan(self.0.max(other.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimSpan) -> SimSpan {
        SimSpan(self.0.saturating_sub(other.0))
    }
}

impl Add<SimSpan> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimSpan) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimSpan> for SimTime {
    fn add_assign(&mut self, rhs: SimSpan) {
        *self = *self + rhs;
    }
}

impl Sub<SimSpan> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimSpan) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimSpan;
    fn sub(self, rhs: SimTime) -> SimSpan {
        self.since(rhs)
    }
}

impl Add for SimSpan {
    type Output = SimSpan;
    fn add(self, rhs: SimSpan) -> SimSpan {
        SimSpan(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimSpan {
    fn add_assign(&mut self, rhs: SimSpan) {
        *self = *self + rhs;
    }
}

impl SubAssign for SimSpan {
    fn sub_assign(&mut self, rhs: SimSpan) {
        *self = self.saturating_sub(rhs);
    }
}

impl Mul<f64> for SimSpan {
    type Output = SimSpan;
    fn mul(self, rhs: f64) -> SimSpan {
        SimSpan::from_ns_f64(self.0 as f64 * rhs)
    }
}

impl Div<f64> for SimSpan {
    type Output = SimSpan;
    fn div(self, rhs: f64) -> SimSpan {
        assert!(rhs > 0.0, "cannot divide a span by {rhs}");
        SimSpan::from_ns_f64(self.0 as f64 / rhs)
    }
}

impl Sum for SimSpan {
    fn sum<I: Iterator<Item = SimSpan>>(iter: I) -> SimSpan {
        iter.fold(SimSpan::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_ms())
    }
}

impl fmt::Display for SimSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.2}us", self.as_us())
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.3}ms", self.as_ms())
        } else {
            write!(f, "{:.3}s", self.as_secs())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_plus_span() {
        let t = SimTime::from_ns(100) + SimSpan::from_ns(50);
        assert_eq!(t.as_ns(), 150);
    }

    #[test]
    fn time_minus_time_is_span() {
        let a = SimTime::from_ns(500);
        let b = SimTime::from_ns(200);
        assert_eq!((a - b).as_ns(), 300);
        // Saturates rather than wrapping.
        assert_eq!((b - a).as_ns(), 0);
    }

    #[test]
    fn unit_conversions_round_trip() {
        let s = SimSpan::from_ms(12.5);
        assert_eq!(s.as_ns(), 12_500_000);
        assert!((s.as_us() - 12_500.0).abs() < 1e-9);
        assert!((s.as_secs() - 0.0125).abs() < 1e-12);
    }

    #[test]
    fn span_scaling() {
        let s = SimSpan::from_us(10.0) * 2.5;
        assert_eq!(s.as_ns(), 25_000);
        let h = s / 2.0;
        assert_eq!(h.as_ns(), 12_500);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_span_panics() {
        let _ = SimSpan::from_ms(-1.0);
    }

    #[test]
    fn span_min_max_sum() {
        let a = SimSpan::from_ns(5);
        let b = SimSpan::from_ns(9);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        let total: SimSpan = [a, b].into_iter().sum();
        assert_eq!(total.as_ns(), 14);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimSpan::from_ns(12).to_string(), "12ns");
        assert_eq!(SimSpan::from_us(3.5).to_string(), "3.50us");
        assert_eq!(SimSpan::from_ms(7.25).to_string(), "7.250ms");
        assert_eq!(SimSpan::from_secs(1.5).to_string(), "1.500s");
    }

    #[test]
    fn ordering_and_since() {
        let a = SimTime::from_ns(10);
        let b = SimTime::from_ns(20);
        assert!(a < b);
        assert_eq!(b.since(a).as_ns(), 10);
        assert_eq!(a.since(b), SimSpan::ZERO);
    }
}
