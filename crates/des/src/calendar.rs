//! The event calendar: a cancellable priority queue over [`SimTime`].
//!
//! The calendar is the heart of the simulator. It owns the virtual clock and
//! guarantees two properties the rest of the stack relies on:
//!
//! 1. **Monotonicity** — [`Calendar::next`] never moves the clock backwards.
//! 2. **Determinism** — events scheduled for the same instant fire in the
//!    order they were scheduled (FIFO tie-breaking via a sequence number),
//!    so a simulation with a fixed seed is exactly reproducible.

use std::cmp::Reverse;
// aitax-allow(unordered-collection): HashSet is membership-only here; its iteration order is never observed
use std::collections::{BinaryHeap, HashSet};

use crate::time::{SimSpan, SimTime};

/// An opaque handle identifying a scheduled event.
///
/// Tokens are unique for the lifetime of a [`Calendar`] and can be used to
/// [cancel](Calendar::cancel) an event before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(u64);

impl Token {
    /// Raw sequence number (useful for logging).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// A cancellable, deterministically ordered event calendar.
///
/// # Example
///
/// ```
/// use aitax_des::{Calendar, SimSpan};
///
/// let mut cal = Calendar::new();
/// let late = cal.schedule_after(SimSpan::from_us(9.0));
/// let early = cal.schedule_after(SimSpan::from_us(1.0));
/// cal.cancel(late);
/// assert_eq!(cal.next().map(|(_, tok)| tok), Some(early));
/// assert!(cal.next().is_none());
/// ```
#[derive(Debug, Default)]
pub struct Calendar {
    now: SimTime,
    next_seq: u64,
    heap: BinaryHeap<Reverse<(SimTime, u64)>>,
    // aitax-allow(unordered-collection): cancelled tokens are probed with contains/remove on the hot path and never iterated
    cancelled: HashSet<u64>,
    live: usize,
}

impl Calendar {
    /// Creates an empty calendar with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Self::default()
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    pub fn pending(&self) -> usize {
        self.live
    }

    /// Whether no live events remain.
    pub fn is_idle(&self) -> bool {
        self.live == 0
    }

    /// Schedules an event `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimSpan) -> Token {
        self.schedule_at(self.now + delay)
    }

    /// Schedules an event at an absolute instant.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before [`Calendar::now`]); scheduling
    /// into the past would violate causality.
    pub fn schedule_at(&mut self, at: SimTime) -> Token {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={} at={}",
            self.now,
            at
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((at, seq)));
        self.live += 1;
        Token(seq)
    }

    /// Cancels a pending event.
    ///
    /// Returns `true` if the event was still pending, `false` if it already
    /// fired or was already cancelled.
    pub fn cancel(&mut self, token: Token) -> bool {
        if token.0 >= self.next_seq {
            return false;
        }
        if self.cancelled.insert(token.0) {
            // It may have already fired; `cancelled` entries for fired events
            // are never inserted because `next` consumes them first, so any
            // successful insert here is either a live event or a double
            // cancel of a fired event. Disambiguate conservatively by
            // checking live count in `next`.
            if self.live > 0 {
                self.live -= 1;
                return true;
            }
        }
        false
    }

    /// Pops the next live event, advancing the clock to its fire time.
    ///
    /// Returns `None` when the calendar is empty. Cancelled events are
    /// silently skipped (and their cancellation records reclaimed).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(SimTime, Token)> {
        while let Some(Reverse((at, seq))) = self.heap.pop() {
            if self.cancelled.remove(&seq) {
                continue;
            }
            debug_assert!(at >= self.now, "heap returned an event in the past");
            self.now = at;
            self.live -= 1;
            return Some((at, Token(seq)));
        }
        None
    }

    /// The fire time of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(&Reverse((at, seq))) = self.heap.peek() {
            if self.cancelled.contains(&seq) {
                self.heap.pop();
                self.cancelled.remove(&seq);
            } else {
                return Some(at);
            }
        }
        None
    }

    /// Advances the clock to `at` without firing anything.
    ///
    /// Useful for injecting externally-timed phases (e.g. a blocking driver
    /// call) into an otherwise idle simulation.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time or before a pending event
    /// (which would make that event fire in the past).
    pub fn advance_to(&mut self, at: SimTime) {
        assert!(at >= self.now, "cannot rewind the clock");
        if let Some(head) = self.peek_time() {
            assert!(
                at <= head,
                "advance_to({at}) would step over a pending event at {head}"
            );
        }
        self.now = at;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_time_order() {
        let mut cal = Calendar::new();
        let t3 = cal.schedule_after(SimSpan::from_ns(30));
        let t1 = cal.schedule_after(SimSpan::from_ns(10));
        let t2 = cal.schedule_after(SimSpan::from_ns(20));
        let order: Vec<Token> = std::iter::from_fn(|| cal.next().map(|(_, t)| t)).collect();
        assert_eq!(order, vec![t1, t2, t3]);
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut cal = Calendar::new();
        let toks: Vec<Token> = (0..16)
            .map(|_| cal.schedule_after(SimSpan::from_ns(5)))
            .collect();
        let fired: Vec<Token> = std::iter::from_fn(|| cal.next().map(|(_, t)| t)).collect();
        assert_eq!(fired, toks, "equal-time events must fire in schedule order");
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut cal = Calendar::new();
        for d in [40u64, 10, 30, 10, 20] {
            cal.schedule_after(SimSpan::from_ns(d));
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = cal.next() {
            assert!(t >= last);
            last = t;
            assert_eq!(cal.now(), t);
        }
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut cal = Calendar::new();
        let a = cal.schedule_after(SimSpan::from_ns(10));
        let b = cal.schedule_after(SimSpan::from_ns(20));
        assert!(cal.cancel(a));
        assert!(!cal.cancel(a), "double cancel reports false");
        assert_eq!(cal.pending(), 1);
        let (_, tok) = cal.next().unwrap();
        assert_eq!(tok, b);
        assert!(cal.next().is_none());
    }

    #[test]
    fn cancel_unknown_token_is_false() {
        let mut cal = Calendar::new();
        assert!(!cal.cancel(Token(42)));
    }

    #[test]
    fn peek_skips_cancelled_head() {
        let mut cal = Calendar::new();
        let a = cal.schedule_after(SimSpan::from_ns(5));
        let _b = cal.schedule_after(SimSpan::from_ns(9));
        cal.cancel(a);
        assert_eq!(cal.peek_time(), Some(SimTime::from_ns(9)));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_the_past_panics() {
        let mut cal = Calendar::new();
        cal.schedule_after(SimSpan::from_ns(10));
        cal.next();
        cal.schedule_at(SimTime::from_ns(5));
    }

    #[test]
    fn advance_to_moves_idle_clock() {
        let mut cal = Calendar::new();
        cal.advance_to(SimTime::from_ns(100));
        assert_eq!(cal.now(), SimTime::from_ns(100));
    }

    #[test]
    #[should_panic(expected = "step over")]
    fn advance_past_pending_event_panics() {
        let mut cal = Calendar::new();
        cal.schedule_after(SimSpan::from_ns(10));
        cal.advance_to(SimTime::from_ns(50));
    }

    #[test]
    fn pending_counts_live_events() {
        let mut cal = Calendar::new();
        assert!(cal.is_idle());
        let a = cal.schedule_after(SimSpan::from_ns(1));
        let _b = cal.schedule_after(SimSpan::from_ns(2));
        assert_eq!(cal.pending(), 2);
        cal.cancel(a);
        assert_eq!(cal.pending(), 1);
        cal.next();
        assert!(cal.is_idle());
    }
}
