//! The event calendar: a cancellable priority queue over [`SimTime`].
//!
//! The calendar is the heart of the simulator. It owns the virtual clock and
//! guarantees two properties the rest of the stack relies on:
//!
//! 1. **Monotonicity** — [`Calendar::next`] never moves the clock backwards.
//! 2. **Determinism** — events scheduled for the same instant fire in the
//!    order they were scheduled (FIFO tie-breaking via a sequence number),
//!    so a simulation with a fixed seed is exactly reproducible.
//!
//! # Hierarchical timing wheel
//!
//! Internally the calendar is a hierarchical timing wheel — the classic
//! kernel timer design — rather than a binary heap: [`LEVELS`] levels of
//! [`SLOTS`] buckets each, where a level-`L` slot spans `64^L` nanoseconds
//! and one level's 64 slots exactly tile one slot of the level above. An
//! event lands at the level of the highest bit in which its fire time
//! differs from `now` (`level = floor(log64(time XOR now))`), making
//! schedule and cancel O(1) and pop O(levels) worst case with no
//! comparison sorting anywhere.
//!
//! Buckets are intrusive FIFO lists threaded through a dense slab; a
//! 64-bit occupancy word per level finds the next non-empty bucket with a
//! single `trailing_zeros`. When the clock advances, the newly entered
//! slot at each level is *cascaded*: its entries are re-placed relative to
//! the new `now`, where they land at strictly lower levels (placement
//! relative to `now` can never target the slot containing `now`).
//!
//! **Determinism argument.** Within any bucket, live entries always sit in
//! increasing sequence order: direct schedules append in call order; a
//! bucket receives at most one cascade batch per epoch (all events bound
//! for one destination bucket share the same highest-differing-bit versus
//! the clock, so they travel down the levels together, in list order);
//! and any direct schedule that can target a bucket happens only after the
//! clock advance that delivered that bucket's cascade batch, so it carries
//! a larger sequence number. Level-0 buckets hold exactly one nanosecond
//! of simulated time, so popping bucket heads in slot order reproduces the
//! old binary heap's `(time, seq)` order exactly — a claim the
//! differential fuzzer in `tests/calendar_differential.rs` replays
//! millions of mixed operations against [`legacy::LegacyCalendar`] to
//! enforce.
//!
//! Cancellation is a tombstone: the slab entry's live bit is cleared and
//! the entry is reclaimed when its bucket is next drained or cascaded —
//! the slot generation then advances, invalidating stale [`Token`]s.

use crate::time::{SimSpan, SimTime};

#[cfg(any(test, feature = "legacy-oracle"))]
pub mod legacy;

/// Number of wheel levels. Level 10 spans bits 60..64, so the wheel
/// covers the entire `u64` nanosecond timeline (584 years of simulated
/// time) without overflow.
pub const LEVELS: usize = 11;

/// Buckets per level (one 6-bit digit of the fire time).
pub const SLOTS: usize = 64;

/// Bits per level digit.
const LEVEL_BITS: u32 = 6;

/// Sentinel for "no entry" in the intrusive bucket lists.
const NIL: u32 = u32::MAX;

/// An opaque handle identifying a scheduled event.
///
/// Tokens are unique for the lifetime of a [`Calendar`] and can be used to
/// [cancel](Calendar::cancel) an event before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(u64);

impl Token {
    /// Raw packed value: generation in the high 32 bits, slot in the low
    /// 32 (useful for logging).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The slab slot this token occupies. Slots are dense and recycled
    /// after their event fires, so at most [`Calendar::pending`] + the
    /// in-flight tombstone backlog distinct values exist at once —
    /// callers can use the slot as a small dense index for per-event
    /// side tables.
    pub fn slot(self) -> u32 {
        self.0 as u32
    }

    pub(crate) fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }

    pub(crate) fn pack(generation: u32, slot: u32) -> Token {
        Token((u64::from(generation) << 32) | u64::from(slot))
    }

    #[cfg(test)]
    fn from_raw(raw: u64) -> Token {
        Token(raw)
    }
}

/// One slab entry: the event payload plus the intrusive list link.
/// `generation` advances each time the slot is recycled, invalidating any
/// stale [`Token`] still pointing at it.
#[derive(Debug, Clone, Copy)]
struct Ent {
    /// Absolute fire time in nanoseconds.
    time: u64,
    /// Global schedule sequence number (FIFO tie-break witness).
    seq: u64,
    /// Next entry in the same bucket, or [`NIL`].
    next: u32,
    generation: u32,
    live: bool,
}

/// An intrusive FIFO list of slab entries (one wheel bucket).
#[derive(Debug, Clone, Copy)]
struct Bucket {
    head: u32,
    tail: u32,
}

impl Bucket {
    const EMPTY: Bucket = Bucket {
        head: NIL,
        tail: NIL,
    };
}

/// The wheel level an event `diff = time XOR now` nanoseconds "away"
/// belongs to: the level containing the highest differing bit.
#[inline]
fn level_of(diff: u64) -> usize {
    if diff == 0 {
        0
    } else {
        ((63 - diff.leading_zeros()) / LEVEL_BITS) as usize
    }
}

/// The bucket index of absolute time `t` at `level`.
#[inline]
fn slot_of(t: u64, level: usize) -> usize {
    ((t >> (LEVEL_BITS as usize * level)) & (SLOTS as u64 - 1)) as usize
}

/// A cancellable, deterministically ordered event calendar.
///
/// # Example
///
/// ```
/// use aitax_des::{Calendar, SimSpan};
///
/// let mut cal = Calendar::new();
/// let late = cal.schedule_after(SimSpan::from_us(9.0));
/// let early = cal.schedule_after(SimSpan::from_us(1.0));
/// cal.cancel(late);
/// assert_eq!(cal.next().map(|(_, tok)| tok), Some(early));
/// assert!(cal.next().is_none());
/// ```
#[derive(Debug)]
pub struct Calendar {
    now: SimTime,
    next_seq: u64,
    ents: Vec<Ent>,
    free: Vec<u32>,
    buckets: [[Bucket; SLOTS]; LEVELS],
    /// One occupancy bit per bucket; `trailing_zeros` finds the next
    /// non-empty slot without scanning.
    occ: [u64; LEVELS],
    scheduled_total: u64,
    fired_total: u64,
    cancelled_total: u64,
}

impl Default for Calendar {
    fn default() -> Self {
        Calendar {
            now: SimTime::ZERO,
            next_seq: 0,
            ents: Vec::new(),
            free: Vec::new(),
            buckets: [[Bucket::EMPTY; SLOTS]; LEVELS],
            occ: [0; LEVELS],
            scheduled_total: 0,
            fired_total: 0,
            cancelled_total: 0,
        }
    }
}

impl Calendar {
    /// Creates an empty calendar with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets the calendar to its just-constructed state — clock at
    /// [`SimTime::ZERO`], no pending events, zeroed counters, sequence
    /// and generation numbering restarted — while keeping the slab and
    /// free-list heap capacity, so a reused calendar schedules its next
    /// run without reallocating. Tokens minted by a reset calendar are
    /// identical to those a fresh calendar would mint (the slab refills
    /// from index 0 at generation 0), which is what makes a reset run
    /// byte-identical to a fresh one.
    ///
    /// Tokens from before the reset must not be passed to
    /// [`Calendar::cancel`] afterwards; like any stale token they are
    /// rejected unless the slab happens to re-mint the same
    /// (slot, generation) pair, which a full reset makes possible.
    pub fn reset(&mut self) {
        self.now = SimTime::ZERO;
        self.next_seq = 0;
        self.ents.clear();
        self.free.clear();
        self.buckets = [[Bucket::EMPTY; SLOTS]; LEVELS];
        self.occ = [0; LEVELS];
        self.scheduled_total = 0;
        self.fired_total = 0;
        self.cancelled_total = 0;
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    pub fn pending(&self) -> usize {
        (self.scheduled_total - self.fired_total - self.cancelled_total) as usize
    }

    /// Whether no live events remain.
    pub fn is_idle(&self) -> bool {
        self.pending() == 0
    }

    /// Total events ever scheduled (deterministic across identical runs).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Total events that fired via [`Calendar::next`].
    pub fn fired_total(&self) -> u64 {
        self.fired_total
    }

    /// Total events cancelled while still pending.
    pub fn cancelled_total(&self) -> u64 {
        self.cancelled_total
    }

    /// Schedules an event `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimSpan) -> Token {
        self.schedule_at(self.now + delay)
    }

    /// Schedules an event at an absolute instant.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before [`Calendar::now`]); scheduling
    /// into the past would violate causality.
    pub fn schedule_at(&mut self, at: SimTime) -> Token {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={} at={}",
            self.now,
            at
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                let e = &mut self.ents[slot as usize];
                e.time = at.as_ns();
                e.seq = seq;
                e.live = true;
                e.next = NIL;
                slot
            }
            None => {
                let slot = self.ents.len() as u32;
                self.ents.push(Ent {
                    time: at.as_ns(),
                    seq,
                    next: NIL,
                    generation: 0,
                    live: true,
                });
                slot
            }
        };
        self.place(slot, at.as_ns());
        self.scheduled_total += 1;
        Token::pack(self.ents[slot as usize].generation, slot)
    }

    /// Appends entry `idx` (fire time `t`) to the bucket it belongs to,
    /// relative to the current clock. Placement relative to `now` can
    /// never target the slot containing `now` at levels ≥ 1, which is
    /// what keeps current slots cascaded-empty between clock advances.
    #[inline]
    fn place(&mut self, idx: u32, t: u64) {
        let lvl = level_of(t ^ self.now.as_ns());
        let s = slot_of(t, lvl);
        self.push_bucket(lvl, s, idx);
    }

    /// FIFO-appends entry `idx` to bucket (`lvl`, `s`).
    #[inline]
    fn push_bucket(&mut self, lvl: usize, s: usize, idx: u32) {
        let b = &mut self.buckets[lvl][s];
        if b.tail == NIL {
            b.head = idx;
        } else {
            self.ents[b.tail as usize].next = idx;
        }
        b.tail = idx;
        self.ents[idx as usize].next = NIL;
        self.occ[lvl] |= 1u64 << s;
    }

    /// Pops the head entry of bucket (`lvl`, `s`), clearing the occupancy
    /// bit when the bucket empties. Returns [`NIL`]-free entry index.
    #[inline]
    fn take_head(&mut self, lvl: usize, s: usize) -> u32 {
        let b = &mut self.buckets[lvl][s];
        let idx = b.head;
        debug_assert_ne!(idx, NIL, "take_head on empty bucket");
        let next = self.ents[idx as usize].next;
        b.head = next;
        if next == NIL {
            b.tail = NIL;
            self.occ[lvl] &= !(1u64 << s);
        }
        idx
    }

    /// Cancels a pending event.
    ///
    /// Returns `true` if the event was still pending, `false` if it already
    /// fired or was already cancelled. O(1): the wheel entry stays behind as
    /// a tombstone and is reclaimed when its bucket is drained or cascaded.
    pub fn cancel(&mut self, token: Token) -> bool {
        match self.ents.get_mut(token.slot() as usize) {
            Some(e) if e.live && e.generation == token.generation() => {
                e.live = false;
                self.cancelled_total += 1;
                true
            }
            _ => false,
        }
    }

    /// Recycles a slab slot whose wheel entry just left its bucket: the
    /// generation bump invalidates every outstanding token for it, and
    /// only now — with no bucket referencing it — may the slot be handed
    /// out again.
    fn retire(&mut self, slot: u32) -> (u32, bool) {
        let e = &mut self.ents[slot as usize];
        let generation = e.generation;
        let was_live = e.live;
        e.live = false;
        e.generation = e.generation.wrapping_add(1);
        self.free.push(slot);
        (generation, was_live)
    }

    /// Advances the clock to `to`, cascading the newly entered slot at
    /// every level whose digit changed: live entries re-place relative to
    /// the new `now` (landing at strictly lower levels), tombstones are
    /// retired on the spot.
    ///
    /// Correctness relies on `to` never being beyond the earliest live
    /// event — callers (`next`, `advance_to`) guarantee it.
    fn advance_clock(&mut self, to: u64) {
        let from = self.now.as_ns();
        debug_assert!(to >= from, "clock may only move forward");
        self.now = SimTime::from_ns(to);
        if to == from {
            return;
        }
        let top = level_of(from ^ to);
        for lvl in (1..=top).rev() {
            let s = slot_of(to, lvl);
            if self.occ[lvl] & (1u64 << s) == 0 {
                continue;
            }
            while self.buckets[lvl][s].head != NIL {
                let idx = self.take_head(lvl, s);
                let e = self.ents[idx as usize];
                if e.live {
                    debug_assert!(e.time >= to, "cascade found a live event in the past");
                    self.place(idx, e.time);
                } else {
                    self.retire(idx);
                }
            }
        }
    }

    /// Finds the first candidate bucket holding the earliest event: the
    /// lowest occupied level-0 slot at or after `now`'s digit, else the
    /// lowest occupied slot (at or after the current digit) of the lowest
    /// such level. Returns `(level, slot)`.
    #[inline]
    fn first_due(&self) -> Option<(usize, usize)> {
        let now = self.now.as_ns();
        for lvl in 0..LEVELS {
            let idx = slot_of(now, lvl);
            let masked = self.occ[lvl] & (u64::MAX << idx);
            if masked != 0 {
                return Some((lvl, masked.trailing_zeros() as usize));
            }
        }
        None
    }

    /// Absolute start of the range bucket (`lvl`, `s`) covers in the
    /// current rotation: `now` with the level digit replaced by `s` and
    /// all lower digits cleared.
    #[inline]
    fn bucket_start(&self, lvl: usize, s: usize) -> u64 {
        let shift = LEVEL_BITS as usize * lvl;
        let above = shift + LEVEL_BITS as usize;
        let high = if above >= 64 {
            0
        } else {
            self.now.as_ns() & !((1u64 << above) - 1)
        };
        high | ((s as u64) << shift)
    }

    /// Whether any entry in bucket (`lvl`, `s`) is still live.
    fn bucket_has_live(&self, lvl: usize, s: usize) -> bool {
        let mut idx = self.buckets[lvl][s].head;
        while idx != NIL {
            let e = &self.ents[idx as usize];
            if e.live {
                return true;
            }
            idx = e.next;
        }
        false
    }

    /// Drains a bucket known to hold only tombstones, retiring them.
    fn drain_dead(&mut self, lvl: usize, s: usize) {
        while self.buckets[lvl][s].head != NIL {
            let idx = self.take_head(lvl, s);
            debug_assert!(!self.ents[idx as usize].live);
            self.retire(idx);
        }
    }

    /// Pops the next live event, advancing the clock to its fire time.
    ///
    /// Returns `None` when the calendar is empty. Cancelled events are
    /// silently skipped (and their slab slots recycled).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(SimTime, Token)> {
        loop {
            let (lvl, s) = self.first_due()?;
            if lvl == 0 {
                // Level-0 buckets span one nanosecond: every live entry in
                // them shares one fire time, and the list is live-FIFO by
                // the cascade invariant — the head is the next event.
                let idx = self.take_head(0, s);
                let e = self.ents[idx as usize];
                let (generation, was_live) = self.retire(idx);
                if !was_live {
                    continue;
                }
                debug_assert!(e.time >= self.now.as_ns(), "event fired in the past");
                self.advance_clock(e.time);
                self.fired_total += 1;
                return Some((SimTime::from_ns(e.time), Token::pack(generation, idx)));
            }
            // A higher-level bucket: enter it only if it still holds a
            // live event (committing the clock to its range start, which
            // cascades it); otherwise clean out the tombstones in place.
            if self.bucket_has_live(lvl, s) {
                let start = self.bucket_start(lvl, s).max(self.now.as_ns());
                self.advance_clock(start);
            } else {
                self.drain_dead(lvl, s);
            }
        }
    }

    /// The fire time of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            let (lvl, s) = self.first_due()?;
            let mut min: Option<u64> = None;
            let mut idx = self.buckets[lvl][s].head;
            while idx != NIL {
                let e = &self.ents[idx as usize];
                if e.live && min.is_none_or(|m| e.time < m) {
                    min = Some(e.time);
                }
                idx = e.next;
            }
            match min {
                // Candidate buckets are visited in range order, so the
                // first bucket with a live entry holds the minimum.
                Some(t) => return Some(SimTime::from_ns(t)),
                None => self.drain_dead(lvl, s),
            }
        }
    }

    /// Advances the clock to `at` without firing anything.
    ///
    /// Useful for injecting externally-timed phases (e.g. a blocking driver
    /// call) into an otherwise idle simulation.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time or before a pending event
    /// (which would make that event fire in the past).
    pub fn advance_to(&mut self, at: SimTime) {
        assert!(at >= self.now, "cannot rewind the clock");
        if let Some(head) = self.peek_time() {
            assert!(
                at <= head,
                "advance_to({at}) would step over a pending event at {head}"
            );
        }
        self.advance_clock(at.as_ns());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_time_order() {
        let mut cal = Calendar::new();
        let t3 = cal.schedule_after(SimSpan::from_ns(30));
        let t1 = cal.schedule_after(SimSpan::from_ns(10));
        let t2 = cal.schedule_after(SimSpan::from_ns(20));
        let order: Vec<Token> = std::iter::from_fn(|| cal.next().map(|(_, t)| t)).collect();
        assert_eq!(order, vec![t1, t2, t3]);
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut cal = Calendar::new();
        let toks: Vec<Token> = (0..16)
            .map(|_| cal.schedule_after(SimSpan::from_ns(5)))
            .collect();
        let fired: Vec<Token> = std::iter::from_fn(|| cal.next().map(|(_, t)| t)).collect();
        assert_eq!(fired, toks, "equal-time events must fire in schedule order");
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut cal = Calendar::new();
        for d in [40u64, 10, 30, 10, 20] {
            cal.schedule_after(SimSpan::from_ns(d));
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = cal.next() {
            assert!(t >= last);
            last = t;
            assert_eq!(cal.now(), t);
        }
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut cal = Calendar::new();
        let a = cal.schedule_after(SimSpan::from_ns(10));
        let b = cal.schedule_after(SimSpan::from_ns(20));
        assert!(cal.cancel(a));
        assert!(!cal.cancel(a), "double cancel reports false");
        assert_eq!(cal.pending(), 1);
        let (_, tok) = cal.next().unwrap();
        assert_eq!(tok, b);
        assert!(cal.next().is_none());
    }

    #[test]
    fn cancel_unknown_token_is_false() {
        let mut cal = Calendar::new();
        assert!(!cal.cancel(Token::from_raw(42)));
    }

    #[test]
    fn cancel_after_fire_is_false() {
        let mut cal = Calendar::new();
        let a = cal.schedule_after(SimSpan::from_ns(10));
        cal.next();
        assert!(!cal.cancel(a), "fired events cannot be cancelled");
    }

    #[test]
    fn recycled_slot_rejects_stale_token() {
        let mut cal = Calendar::new();
        let old = cal.schedule_after(SimSpan::from_ns(1));
        cal.next();
        // The slot is recycled for a fresh event; the old token must not
        // be able to cancel it.
        let fresh = cal.schedule_after(SimSpan::from_ns(5));
        assert_eq!(old.slot(), fresh.slot(), "slot should be recycled");
        assert_ne!(old, fresh, "generation distinguishes the reuse");
        assert!(!cal.cancel(old));
        assert_eq!(cal.pending(), 1);
        assert!(cal.cancel(fresh));
        assert!(cal.next().is_none());
    }

    #[test]
    fn cancelled_slot_is_not_recycled_until_reclaimed() {
        let mut cal = Calendar::new();
        let a = cal.schedule_after(SimSpan::from_ns(50));
        cal.cancel(a);
        // The tombstone still sits in its bucket, so a new event must get
        // a different slot — otherwise the stale entry would alias it.
        let b = cal.schedule_after(SimSpan::from_ns(60));
        assert_ne!(a.slot(), b.slot());
        let (_, tok) = cal.next().unwrap();
        assert_eq!(tok, b);
    }

    #[test]
    fn peek_skips_cancelled_head() {
        let mut cal = Calendar::new();
        let a = cal.schedule_after(SimSpan::from_ns(5));
        let _b = cal.schedule_after(SimSpan::from_ns(9));
        cal.cancel(a);
        assert_eq!(cal.peek_time(), Some(SimTime::from_ns(9)));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_the_past_panics() {
        let mut cal = Calendar::new();
        cal.schedule_after(SimSpan::from_ns(10));
        cal.next();
        cal.schedule_at(SimTime::from_ns(5));
    }

    #[test]
    fn advance_to_moves_idle_clock() {
        let mut cal = Calendar::new();
        cal.advance_to(SimTime::from_ns(100));
        assert_eq!(cal.now(), SimTime::from_ns(100));
    }

    #[test]
    #[should_panic(expected = "step over")]
    fn advance_past_pending_event_panics() {
        let mut cal = Calendar::new();
        cal.schedule_after(SimSpan::from_ns(10));
        cal.advance_to(SimTime::from_ns(50));
    }

    #[test]
    fn pending_counts_live_events() {
        let mut cal = Calendar::new();
        assert!(cal.is_idle());
        let a = cal.schedule_after(SimSpan::from_ns(1));
        let _b = cal.schedule_after(SimSpan::from_ns(2));
        assert_eq!(cal.pending(), 2);
        cal.cancel(a);
        assert_eq!(cal.pending(), 1);
        cal.next();
        assert!(cal.is_idle());
    }

    #[test]
    fn totals_track_schedule_cancel_fire() {
        let mut cal = Calendar::new();
        let a = cal.schedule_after(SimSpan::from_ns(1));
        let _b = cal.schedule_after(SimSpan::from_ns(2));
        cal.cancel(a);
        while cal.next().is_some() {}
        assert_eq!(cal.scheduled_total(), 2);
        assert_eq!(cal.cancelled_total(), 1);
        assert_eq!(cal.fired_total(), 1);
    }

    #[test]
    fn far_future_events_cross_cascade_boundaries() {
        // One event per wheel level, so every cascade path runs.
        let mut cal = Calendar::new();
        let delays: Vec<u64> = (0..LEVELS)
            .map(|l| 64u64.saturating_pow(l as u32).saturating_add(l as u64))
            .collect();
        let toks: Vec<Token> = delays
            .iter()
            .map(|&d| cal.schedule_after(SimSpan::from_ns(d)))
            .collect();
        let mut fired = Vec::new();
        while let Some((t, tok)) = cal.next() {
            fired.push((t.as_ns(), tok));
        }
        let mut expect: Vec<(u64, Token)> = delays.into_iter().zip(toks).collect();
        expect.sort_by_key(|&(d, _)| d);
        assert_eq!(fired, expect);
    }

    #[test]
    fn reset_calendar_is_indistinguishable_from_fresh() {
        let mut used = Calendar::new();
        // Dirty every piece of state: schedule, cancel, fire, advance.
        let mut tokens = Vec::new();
        for i in 0..200u64 {
            tokens.push(used.schedule_after(SimSpan::from_ns(1 + i * 37 % 5000)));
        }
        for t in tokens.iter().step_by(3) {
            used.cancel(*t);
        }
        while used.next().is_some() {}
        used.advance_to(SimTime::from_ns(1 << 40));
        used.reset();

        let mut fresh = Calendar::new();
        assert_eq!(used.now(), fresh.now());
        assert_eq!(used.pending(), 0);
        assert_eq!(used.scheduled_total(), 0);
        // Replay an identical script on both: tokens, fire order, clocks
        // and counters must match exactly.
        let script: Vec<u64> = (0..100).map(|i| 1 + (i * i) % 1000).collect();
        let mut ta = Vec::new();
        let mut tb = Vec::new();
        for &d in &script {
            ta.push(used.schedule_after(SimSpan::from_ns(d)));
            tb.push(fresh.schedule_after(SimSpan::from_ns(d)));
        }
        assert_eq!(ta, tb, "reset calendar must mint fresh-identical tokens");
        for (x, y) in ta.iter().zip(&tb).skip(1).step_by(4) {
            assert_eq!(used.cancel(*x), fresh.cancel(*y));
        }
        loop {
            let a = used.next();
            let b = fresh.next();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert_eq!(used.now(), fresh.now());
        assert_eq!(used.scheduled_total(), fresh.scheduled_total());
        assert_eq!(used.fired_total(), fresh.fired_total());
        assert_eq!(used.cancelled_total(), fresh.cancelled_total());
    }

    #[test]
    fn schedule_at_now_fires_immediately_in_fifo_order() {
        let mut cal = Calendar::new();
        cal.schedule_after(SimSpan::from_ns(100));
        let (t, _) = cal.next().unwrap();
        assert_eq!(t.as_ns(), 100);
        let a = cal.schedule_at(cal.now());
        let b = cal.schedule_at(cal.now());
        assert_eq!(cal.next(), Some((t, a)));
        assert_eq!(cal.next(), Some((t, b)));
        assert!(cal.next().is_none());
    }

    #[test]
    fn max_adjacent_horizons_fire_in_order() {
        let mut cal = Calendar::new();
        let max = cal.schedule_at(SimTime::MAX);
        let almost = cal.schedule_at(SimTime::from_ns(u64::MAX - 1));
        let near = cal.schedule_at(SimTime::from_ns(1));
        assert_eq!(cal.peek_time(), Some(SimTime::from_ns(1)));
        assert_eq!(cal.next(), Some((SimTime::from_ns(1), near)));
        assert_eq!(cal.next(), Some((SimTime::from_ns(u64::MAX - 1), almost)));
        // schedule_after saturates at SimTime::MAX, so a MAX-resident
        // calendar can still accept (and immediately order) new events.
        let max2 = cal.schedule_after(SimSpan::from_ns(5));
        assert_eq!(cal.next(), Some((SimTime::MAX, max)));
        assert_eq!(cal.next(), Some((SimTime::MAX, max2)));
        assert!(cal.next().is_none());
    }

    #[test]
    fn advance_into_a_live_slot_keeps_order() {
        // advance_to can move the clock into the wheel slot that holds a
        // pending event without cascading it first; the next schedule at
        // a *nearer* time must still fire first.
        let mut cal = Calendar::new();
        let far = cal.schedule_at(SimTime::from_ns(100)); // level 1 at now=0
        cal.advance_to(SimTime::from_ns(90)); // enters far's level-1 slot
        let near = cal.schedule_at(SimTime::from_ns(95));
        assert_eq!(cal.peek_time(), Some(SimTime::from_ns(95)));
        assert_eq!(cal.next(), Some((SimTime::from_ns(95), near)));
        assert_eq!(cal.next(), Some((SimTime::from_ns(100), far)));
    }
}
