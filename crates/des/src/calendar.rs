//! The event calendar: a cancellable priority queue over [`SimTime`].
//!
//! The calendar is the heart of the simulator. It owns the virtual clock and
//! guarantees two properties the rest of the stack relies on:
//!
//! 1. **Monotonicity** — [`Calendar::next`] never moves the clock backwards.
//! 2. **Determinism** — events scheduled for the same instant fire in the
//!    order they were scheduled (FIFO tie-breaking via a sequence number),
//!    so a simulation with a fixed seed is exactly reproducible.
//!
//! Cancellation uses a dense tombstone slab rather than a side set: each
//! pending event owns a slot in a `Vec`, a [`Token`] packs the slot index
//! with a generation counter, and cancelling just clears the slot's live
//! bit. Popping skips dead entries, bumps the slot generation, and recycles
//! the slot — so schedule/cancel/fire are all O(log n) heap work plus O(1)
//! slab pokes, with no hashing and no per-event allocation in steady state.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::{SimSpan, SimTime};

/// An opaque handle identifying a scheduled event.
///
/// Tokens are unique for the lifetime of a [`Calendar`] and can be used to
/// [cancel](Calendar::cancel) an event before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(u64);

impl Token {
    /// Raw packed value: generation in the high 32 bits, slot in the low
    /// 32 (useful for logging).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The slab slot this token occupies. Slots are dense and recycled
    /// after their event fires, so at most [`Calendar::pending`] + the
    /// in-flight heap backlog distinct values exist at once — callers can
    /// use the slot as a small dense index for per-event side tables.
    pub fn slot(self) -> u32 {
        self.0 as u32
    }

    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }

    fn pack(generation: u32, slot: u32) -> Token {
        Token((u64::from(generation) << 32) | u64::from(slot))
    }
}

/// One slab entry. `generation` advances each time the slot is recycled,
/// invalidating any stale [`Token`] still pointing at it.
#[derive(Debug, Clone, Copy)]
struct Slot {
    generation: u32,
    live: bool,
}

/// A cancellable, deterministically ordered event calendar.
///
/// # Example
///
/// ```
/// use aitax_des::{Calendar, SimSpan};
///
/// let mut cal = Calendar::new();
/// let late = cal.schedule_after(SimSpan::from_us(9.0));
/// let early = cal.schedule_after(SimSpan::from_us(1.0));
/// cal.cancel(late);
/// assert_eq!(cal.next().map(|(_, tok)| tok), Some(early));
/// assert!(cal.next().is_none());
/// ```
#[derive(Debug, Default)]
pub struct Calendar {
    now: SimTime,
    next_seq: u64,
    // Ordered by (time, seq); the trailing slot index is payload only —
    // seq is globally unique, so it alone breaks every time tie (FIFO).
    heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    scheduled_total: u64,
    fired_total: u64,
    cancelled_total: u64,
}

impl Calendar {
    /// Creates an empty calendar with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Self::default()
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    pub fn pending(&self) -> usize {
        (self.scheduled_total - self.fired_total - self.cancelled_total) as usize
    }

    /// Whether no live events remain.
    pub fn is_idle(&self) -> bool {
        self.pending() == 0
    }

    /// Total events ever scheduled (deterministic across identical runs).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Total events that fired via [`Calendar::next`].
    pub fn fired_total(&self) -> u64 {
        self.fired_total
    }

    /// Total events cancelled while still pending.
    pub fn cancelled_total(&self) -> u64 {
        self.cancelled_total
    }

    /// Schedules an event `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimSpan) -> Token {
        self.schedule_at(self.now + delay)
    }

    /// Schedules an event at an absolute instant.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before [`Calendar::now`]); scheduling
    /// into the past would violate causality.
    pub fn schedule_at(&mut self, at: SimTime) -> Token {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={} at={}",
            self.now,
            at
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize].live = true;
                slot
            }
            None => {
                let slot = self.slots.len() as u32;
                self.slots.push(Slot {
                    generation: 0,
                    live: true,
                });
                slot
            }
        };
        self.heap.push(Reverse((at, seq, slot)));
        self.scheduled_total += 1;
        Token::pack(self.slots[slot as usize].generation, slot)
    }

    /// Cancels a pending event.
    ///
    /// Returns `true` if the event was still pending, `false` if it already
    /// fired or was already cancelled. O(1): the heap entry stays behind as
    /// a tombstone and is discarded when it reaches the head.
    pub fn cancel(&mut self, token: Token) -> bool {
        match self.slots.get_mut(token.slot() as usize) {
            Some(s) if s.live && s.generation == token.generation() => {
                s.live = false;
                self.cancelled_total += 1;
                true
            }
            _ => false,
        }
    }

    /// Recycles a slot whose heap entry just popped: the generation bump
    /// invalidates every outstanding token for it, and only now — with no
    /// heap entry referencing it — may the slot be handed out again.
    fn retire(&mut self, slot: u32) -> (u32, bool) {
        let s = &mut self.slots[slot as usize];
        let generation = s.generation;
        let was_live = s.live;
        s.live = false;
        s.generation = s.generation.wrapping_add(1);
        self.free.push(slot);
        (generation, was_live)
    }

    /// Pops the next live event, advancing the clock to its fire time.
    ///
    /// Returns `None` when the calendar is empty. Cancelled events are
    /// silently skipped (and their slots recycled).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(SimTime, Token)> {
        while let Some(Reverse((at, _seq, slot))) = self.heap.pop() {
            let (generation, was_live) = self.retire(slot);
            if !was_live {
                continue;
            }
            debug_assert!(at >= self.now, "heap returned an event in the past");
            self.now = at;
            self.fired_total += 1;
            return Some((at, Token::pack(generation, slot)));
        }
        None
    }

    /// The fire time of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(&Reverse((at, _seq, slot))) = self.heap.peek() {
            if self.slots[slot as usize].live {
                return Some(at);
            }
            self.heap.pop();
            self.retire(slot);
        }
        None
    }

    /// Advances the clock to `at` without firing anything.
    ///
    /// Useful for injecting externally-timed phases (e.g. a blocking driver
    /// call) into an otherwise idle simulation.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time or before a pending event
    /// (which would make that event fire in the past).
    pub fn advance_to(&mut self, at: SimTime) {
        assert!(at >= self.now, "cannot rewind the clock");
        if let Some(head) = self.peek_time() {
            assert!(
                at <= head,
                "advance_to({at}) would step over a pending event at {head}"
            );
        }
        self.now = at;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_time_order() {
        let mut cal = Calendar::new();
        let t3 = cal.schedule_after(SimSpan::from_ns(30));
        let t1 = cal.schedule_after(SimSpan::from_ns(10));
        let t2 = cal.schedule_after(SimSpan::from_ns(20));
        let order: Vec<Token> = std::iter::from_fn(|| cal.next().map(|(_, t)| t)).collect();
        assert_eq!(order, vec![t1, t2, t3]);
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut cal = Calendar::new();
        let toks: Vec<Token> = (0..16)
            .map(|_| cal.schedule_after(SimSpan::from_ns(5)))
            .collect();
        let fired: Vec<Token> = std::iter::from_fn(|| cal.next().map(|(_, t)| t)).collect();
        assert_eq!(fired, toks, "equal-time events must fire in schedule order");
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut cal = Calendar::new();
        for d in [40u64, 10, 30, 10, 20] {
            cal.schedule_after(SimSpan::from_ns(d));
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = cal.next() {
            assert!(t >= last);
            last = t;
            assert_eq!(cal.now(), t);
        }
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut cal = Calendar::new();
        let a = cal.schedule_after(SimSpan::from_ns(10));
        let b = cal.schedule_after(SimSpan::from_ns(20));
        assert!(cal.cancel(a));
        assert!(!cal.cancel(a), "double cancel reports false");
        assert_eq!(cal.pending(), 1);
        let (_, tok) = cal.next().unwrap();
        assert_eq!(tok, b);
        assert!(cal.next().is_none());
    }

    #[test]
    fn cancel_unknown_token_is_false() {
        let mut cal = Calendar::new();
        assert!(!cal.cancel(Token(42)));
    }

    #[test]
    fn cancel_after_fire_is_false() {
        let mut cal = Calendar::new();
        let a = cal.schedule_after(SimSpan::from_ns(10));
        cal.next();
        assert!(!cal.cancel(a), "fired events cannot be cancelled");
    }

    #[test]
    fn recycled_slot_rejects_stale_token() {
        let mut cal = Calendar::new();
        let old = cal.schedule_after(SimSpan::from_ns(1));
        cal.next();
        // The slot is recycled for a fresh event; the old token must not
        // be able to cancel it.
        let fresh = cal.schedule_after(SimSpan::from_ns(5));
        assert_eq!(old.slot(), fresh.slot(), "slot should be recycled");
        assert_ne!(old, fresh, "generation distinguishes the reuse");
        assert!(!cal.cancel(old));
        assert_eq!(cal.pending(), 1);
        assert!(cal.cancel(fresh));
        assert!(cal.next().is_none());
    }

    #[test]
    fn cancelled_slot_is_not_recycled_until_popped() {
        let mut cal = Calendar::new();
        let a = cal.schedule_after(SimSpan::from_ns(50));
        cal.cancel(a);
        // The tombstone still owns its heap entry, so a new event must get
        // a different slot — otherwise the stale entry would fire it early.
        let b = cal.schedule_after(SimSpan::from_ns(60));
        assert_ne!(a.slot(), b.slot());
        let (_, tok) = cal.next().unwrap();
        assert_eq!(tok, b);
    }

    #[test]
    fn peek_skips_cancelled_head() {
        let mut cal = Calendar::new();
        let a = cal.schedule_after(SimSpan::from_ns(5));
        let _b = cal.schedule_after(SimSpan::from_ns(9));
        cal.cancel(a);
        assert_eq!(cal.peek_time(), Some(SimTime::from_ns(9)));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_the_past_panics() {
        let mut cal = Calendar::new();
        cal.schedule_after(SimSpan::from_ns(10));
        cal.next();
        cal.schedule_at(SimTime::from_ns(5));
    }

    #[test]
    fn advance_to_moves_idle_clock() {
        let mut cal = Calendar::new();
        cal.advance_to(SimTime::from_ns(100));
        assert_eq!(cal.now(), SimTime::from_ns(100));
    }

    #[test]
    #[should_panic(expected = "step over")]
    fn advance_past_pending_event_panics() {
        let mut cal = Calendar::new();
        cal.schedule_after(SimSpan::from_ns(10));
        cal.advance_to(SimTime::from_ns(50));
    }

    #[test]
    fn pending_counts_live_events() {
        let mut cal = Calendar::new();
        assert!(cal.is_idle());
        let a = cal.schedule_after(SimSpan::from_ns(1));
        let _b = cal.schedule_after(SimSpan::from_ns(2));
        assert_eq!(cal.pending(), 2);
        cal.cancel(a);
        assert_eq!(cal.pending(), 1);
        cal.next();
        assert!(cal.is_idle());
    }

    #[test]
    fn totals_track_schedule_cancel_fire() {
        let mut cal = Calendar::new();
        let a = cal.schedule_after(SimSpan::from_ns(1));
        let _b = cal.schedule_after(SimSpan::from_ns(2));
        cal.cancel(a);
        while cal.next().is_some() {}
        assert_eq!(cal.scheduled_total(), 2);
        assert_eq!(cal.cancelled_total(), 1);
        assert_eq!(cal.fired_total(), 1);
    }
}
