//! Structured trace vocabulary.
//!
//! The simulated kernel and frameworks emit these events while running;
//! `aitax-profiler` consumes them to build Snapdragon-Profiler-style views
//! (per-core utilization strips, context-switch counts, CDSP activity, AXI
//! traffic — Figure 6 of the paper).
//!
//! Tracing is opt-in: a disabled [`TraceBuffer`] drops events with a single
//! branch, keeping the probe effect of the *simulator itself* at zero, in the
//! spirit of the paper's §III-D probe-effect discussion. When enabled, the
//! probe effect is one `Vec` push per event: labels are interned
//! [`Symbol`]s, so recording never touches the heap once the event storage
//! is warm (see [`TraceBuffer::intern`] and [`TraceBuffer::reserve_events`]).

use std::fmt;

use crate::symbol::{Symbol, SymbolTable};
use crate::time::SimTime;

/// A hardware execution resource appearing in traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TraceResource {
    /// A CPU core, by index.
    CpuCore(u8),
    /// The compute DSP (Hexagon-class).
    Dsp,
    /// The GPU.
    Gpu,
    /// The dedicated NPU block, when present.
    Npu,
    /// The AXI interconnect.
    Axi,
}

impl fmt::Display for TraceResource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceResource::CpuCore(i) => write!(f, "cpu{i}"),
            TraceResource::Dsp => write!(f, "cdsp"),
            TraceResource::Gpu => write!(f, "gpu"),
            TraceResource::Npu => write!(f, "npu"),
            TraceResource::Axi => write!(f, "axi"),
        }
    }
}

/// Dense slot for a resource in per-resource scratch tables: CPU cores map
/// to their own index, accelerators and the interconnect to fixed slots
/// past the 8-bit core space.
fn res_slot(r: TraceResource) -> usize {
    match r {
        TraceResource::CpuCore(i) => i as usize,
        TraceResource::Dsp => 256,
        TraceResource::Gpu => 257,
        TraceResource::Npu => 258,
        TraceResource::Axi => 259,
    }
}

/// Phases of a FastRPC offload round trip (Figure 7 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RpcPhase {
    /// User-space stub marshals arguments and enters the kernel (ioctl).
    IoctlEntry,
    /// Kernel driver flushes CPU caches for shared buffers.
    CacheFlush,
    /// Kernel signals the DSP (doorbell).
    DoorbellRing,
    /// Method executes on the DSP.
    DspExecute,
    /// DSP signals completion back to the kernel.
    CompletionSignal,
    /// Kernel returns to user space.
    IoctlReturn,
}

impl RpcPhase {
    /// All phases in call order.
    pub const ALL: [RpcPhase; 6] = [
        RpcPhase::IoctlEntry,
        RpcPhase::CacheFlush,
        RpcPhase::DoorbellRing,
        RpcPhase::DspExecute,
        RpcPhase::CompletionSignal,
        RpcPhase::IoctlReturn,
    ];
}

impl fmt::Display for RpcPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RpcPhase::IoctlEntry => "ioctl-entry",
            RpcPhase::CacheFlush => "cache-flush",
            RpcPhase::DoorbellRing => "doorbell",
            RpcPhase::DspExecute => "dsp-execute",
            RpcPhase::CompletionSignal => "completion-signal",
            RpcPhase::IoctlReturn => "ioctl-return",
        };
        f.write_str(s)
    }
}

/// What happened.
///
/// Label-carrying variants hold interned [`Symbol`]s minted by the
/// [`TraceBuffer`] that records them; resolve via [`TraceBuffer::resolve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A task began executing on a resource.
    ExecStart {
        /// Simulator-wide task id.
        task: u64,
        /// Interned task label.
        label: Symbol,
    },
    /// The task currently on the resource stopped executing (completed or
    /// was preempted).
    ExecEnd {
        /// Simulator-wide task id.
        task: u64,
    },
    /// The scheduler switched tasks on a core.
    ContextSwitch,
    /// A task moved between cores.
    Migration {
        /// Simulator-wide task id.
        task: u64,
        /// Core the task left.
        from: u8,
        /// Core the task landed on.
        to: u8,
    },
    /// An interrupt was serviced.
    Irq {
        /// Interned interrupt source label.
        source: Symbol,
    },
    /// A FastRPC phase boundary.
    Rpc {
        /// Which phase began at this instant.
        phase: RpcPhase,
    },
    /// A burst of traffic on the interconnect.
    AxiBurst {
        /// Payload size in bytes.
        bytes: u64,
    },
    /// The DVFS governor retargeted a core's clock.
    ///
    /// Emitted on the core's own resource; the frequency holds until the
    /// next `Dvfs` event for the same core. Energy accounting assumes the
    /// clock only changes at these boundaries.
    Dvfs {
        /// Core whose clock changed.
        core: u8,
        /// New frequency in Hz.
        freq_hz: u64,
    },
    /// Free-form marker (pipeline stage boundaries etc.).
    Marker {
        /// Interned marker label.
        label: Symbol,
    },
}

/// A single trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened.
    pub time: SimTime,
    /// Where it happened.
    pub resource: TraceResource,
    /// What happened.
    pub kind: TraceKind,
}

/// An append-only buffer of trace events plus the symbol table their
/// labels are interned into.
///
/// # Example
///
/// ```
/// use aitax_des::trace::{TraceBuffer, TraceKind, TraceResource};
/// use aitax_des::SimTime;
///
/// let mut buf = TraceBuffer::enabled();
/// buf.record(SimTime::from_ns(10), TraceResource::Dsp, TraceKind::ContextSwitch);
/// let label = buf.intern("inference");
/// buf.record(
///     SimTime::from_ns(20),
///     TraceResource::Dsp,
///     TraceKind::ExecStart { task: 1, label },
/// );
/// assert_eq!(buf.events().len(), 2);
/// assert_eq!(buf.resolve(label), "inference");
/// ```
#[derive(Debug, Default)]
pub struct TraceBuffer {
    enabled: bool,
    events: Vec<TraceEvent>,
    symbols: SymbolTable,
}

impl TraceBuffer {
    /// Creates a buffer that drops all events (zero probe effect).
    pub fn disabled() -> Self {
        TraceBuffer {
            enabled: false,
            events: Vec::new(),
            symbols: SymbolTable::new(),
        }
    }

    /// Creates a buffer that records events.
    pub fn enabled() -> Self {
        TraceBuffer {
            enabled: true,
            events: Vec::new(),
            symbols: SymbolTable::new(),
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Turns recording on or off in place.
    ///
    /// Disabling drops any recorded events; the symbol table (and thus
    /// every previously minted [`Symbol`]) survives, so labels interned
    /// while tracing was off stay valid when it is re-enabled.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        if !enabled {
            self.events.clear();
        }
    }

    /// Interns `label`, returning a [`Symbol`] valid for this buffer.
    ///
    /// Works whether or not tracing is enabled — callers intern labels
    /// once at object-creation time and record cheap symbols thereafter.
    pub fn intern(&mut self, label: &str) -> Symbol {
        self.symbols.intern(label)
    }

    /// The string a symbol minted by this buffer stands for.
    pub fn resolve(&self, sym: Symbol) -> &str {
        self.symbols.resolve(sym)
    }

    /// The buffer's symbol table.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Pre-sizes event storage so steady-state recording never reallocates.
    pub fn reserve_events(&mut self, additional: usize) {
        self.events.reserve(additional);
    }

    /// Records one event (no-op when disabled).
    pub fn record(&mut self, time: SimTime, resource: TraceResource, kind: TraceKind) {
        if self.enabled {
            self.events.push(TraceEvent {
                time,
                resource,
                kind,
            });
        }
    }

    /// All recorded events in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consumes the buffer, yielding the recorded events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }

    /// Drops all recorded events, keeping the enabled flag, the symbol
    /// table, and the event storage capacity (so a reused buffer records
    /// its next run allocation-free).
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Total bytes of recorded event storage.
    pub fn traced_bytes(&self) -> u64 {
        (self.events.len() * std::mem::size_of::<TraceEvent>()) as u64
    }

    /// Extracts closed execution intervals per resource.
    ///
    /// Pairs each `ExecStart` with the next `ExecEnd` for the same task on
    /// the same resource. Unclosed intervals (still running at trace end)
    /// are dropped.
    pub fn exec_intervals(&self) -> Vec<ExecInterval> {
        let (out, _open) = self.collect_intervals();
        self.sort_intervals(out)
    }

    /// Like [`TraceBuffer::exec_intervals`], but treats tasks still
    /// running at `end` as busy up to `end` instead of dropping them —
    /// the accounting a profiler window needs (an `ExecStart` with no
    /// `ExecEnd` is real utilization, not noise).
    ///
    /// Open intervals that start after `end` are clamped to zero length
    /// at their own start.
    pub fn exec_intervals_until(&self, end: SimTime) -> Vec<ExecInterval> {
        let (mut out, open) = self.collect_intervals();
        for per_resource in open {
            for (resource, task, start, label) in per_resource {
                out.push(ExecInterval {
                    resource,
                    task,
                    label,
                    start,
                    end: end.max(start),
                });
            }
        }
        self.sort_intervals(out)
    }

    /// Single O(n) pass pairing starts with ends via per-resource open
    /// lists. Returns the closed intervals in `ExecEnd` encounter order
    /// plus whatever remained open, grouped by resource slot.
    #[allow(clippy::type_complexity)]
    fn collect_intervals(
        &self,
    ) -> (
        Vec<ExecInterval>,
        Vec<Vec<(TraceResource, u64, SimTime, Symbol)>>,
    ) {
        let mut open: Vec<Vec<(TraceResource, u64, SimTime, Symbol)>> = Vec::new();
        let mut out = Vec::new();
        for ev in &self.events {
            match ev.kind {
                TraceKind::ExecStart { task, label } => {
                    let slot = res_slot(ev.resource);
                    if open.len() <= slot {
                        open.resize_with(slot + 1, Vec::new);
                    }
                    open[slot].push((ev.resource, task, ev.time, label));
                }
                TraceKind::ExecEnd { task } => {
                    let slot = res_slot(ev.resource);
                    if let Some(per_resource) = open.get_mut(slot) {
                        if let Some(pos) = per_resource.iter().rposition(|&(_, t, _, _)| t == task)
                        {
                            let (resource, task, start, label) = per_resource.swap_remove(pos);
                            out.push(ExecInterval {
                                resource,
                                task,
                                label,
                                start,
                                end: ev.time,
                            });
                        }
                    }
                }
                _ => {}
            }
        }
        (out, open)
    }

    /// The public interval ordering: by start time, resources breaking
    /// ties. The sort is stable, so same-(start, resource) intervals keep
    /// their emission order.
    fn sort_intervals(&self, mut out: Vec<ExecInterval>) -> Vec<ExecInterval> {
        out.sort_by_key(|iv| (iv.start, iv.resource));
        out
    }
}

/// A closed execution interval extracted from a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecInterval {
    /// Resource the task ran on.
    pub resource: TraceResource,
    /// Simulator-wide task id.
    pub task: u64,
    /// Interned task label captured at start (resolve against the buffer
    /// that produced this interval).
    pub label: Symbol,
    /// Interval start.
    pub start: SimTime,
    /// Interval end.
    pub end: SimTime,
}

impl ExecInterval {
    /// Length of the interval.
    pub fn span(&self) -> crate::SimSpan {
        self.end - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimSpan;

    fn start(buf: &mut TraceBuffer, task: u64, label: &str) -> TraceKind {
        TraceKind::ExecStart {
            task,
            label: buf.intern(label),
        }
    }

    #[test]
    fn disabled_buffer_drops_events() {
        let mut buf = TraceBuffer::disabled();
        buf.record(SimTime::ZERO, TraceResource::Dsp, TraceKind::ContextSwitch);
        assert!(buf.events().is_empty());
        assert!(!buf.is_enabled());
    }

    #[test]
    fn intervals_pair_start_end() {
        let mut buf = TraceBuffer::enabled();
        let r = TraceResource::CpuCore(0);
        let k = start(&mut buf, 1, "job");
        buf.record(SimTime::from_ns(10), r, k);
        buf.record(SimTime::from_ns(30), r, TraceKind::ExecEnd { task: 1 });
        let ivs = buf.exec_intervals();
        assert_eq!(ivs.len(), 1);
        assert_eq!(ivs[0].span(), SimSpan::from_ns(20));
        assert_eq!(buf.resolve(ivs[0].label), "job");
    }

    #[test]
    fn unclosed_intervals_are_dropped() {
        let mut buf = TraceBuffer::enabled();
        let k = start(&mut buf, 7, "dangling");
        buf.record(SimTime::from_ns(5), TraceResource::Gpu, k);
        assert!(buf.exec_intervals().is_empty());
    }

    #[test]
    fn intervals_until_closes_dangling_starts() {
        let mut buf = TraceBuffer::enabled();
        let r = TraceResource::CpuCore(1);
        let closed = start(&mut buf, 1, "closed");
        buf.record(SimTime::from_ns(10), r, closed);
        buf.record(SimTime::from_ns(20), r, TraceKind::ExecEnd { task: 1 });
        let open = start(&mut buf, 2, "open");
        buf.record(SimTime::from_ns(40), TraceResource::Gpu, open);
        let ivs = buf.exec_intervals_until(SimTime::from_ns(100));
        assert_eq!(ivs.len(), 2);
        assert_eq!(ivs[0].span(), SimSpan::from_ns(10));
        assert_eq!(ivs[1].start, SimTime::from_ns(40));
        assert_eq!(ivs[1].end, SimTime::from_ns(100), "busy to window end");
        // A start after the window clamps to zero length, never negative.
        let clamped = buf.exec_intervals_until(SimTime::from_ns(30));
        assert_eq!(clamped[1].start, clamped[1].end);
    }

    #[test]
    fn interleaved_resources_pair_correctly() {
        let mut buf = TraceBuffer::enabled();
        let c0 = TraceResource::CpuCore(0);
        let c1 = TraceResource::CpuCore(1);
        let a = start(&mut buf, 1, "a");
        buf.record(SimTime::from_ns(0), c0, a);
        let b = start(&mut buf, 2, "b");
        buf.record(SimTime::from_ns(1), c1, b);
        buf.record(SimTime::from_ns(4), c1, TraceKind::ExecEnd { task: 2 });
        buf.record(SimTime::from_ns(9), c0, TraceKind::ExecEnd { task: 1 });
        let ivs = buf.exec_intervals();
        assert_eq!(ivs.len(), 2);
        assert_eq!(ivs[0].resource, c0);
        assert_eq!(ivs[0].span(), SimSpan::from_ns(9));
        assert_eq!(ivs[1].resource, c1);
        assert_eq!(ivs[1].span(), SimSpan::from_ns(3));
    }

    #[test]
    fn same_task_reexecution_pairs_nested() {
        let mut buf = TraceBuffer::enabled();
        let r = TraceResource::CpuCore(2);
        // Task runs twice (preemption produces two intervals).
        let x = start(&mut buf, 3, "x");
        buf.record(SimTime::from_ns(0), r, x);
        buf.record(SimTime::from_ns(2), r, TraceKind::ExecEnd { task: 3 });
        buf.record(SimTime::from_ns(5), r, x);
        buf.record(SimTime::from_ns(6), r, TraceKind::ExecEnd { task: 3 });
        let ivs = buf.exec_intervals();
        assert_eq!(ivs.len(), 2);
        assert_eq!(ivs[0].start, SimTime::from_ns(0));
        assert_eq!(ivs[1].start, SimTime::from_ns(5));
    }

    #[test]
    fn same_task_on_accelerator_slots_pairs_correctly() {
        // Exercise the non-CPU resource slots of the per-resource tables.
        let mut buf = TraceBuffer::enabled();
        for (i, r) in [
            TraceResource::Dsp,
            TraceResource::Gpu,
            TraceResource::Npu,
            TraceResource::Axi,
        ]
        .into_iter()
        .enumerate()
        {
            let k = start(&mut buf, i as u64, "accel");
            buf.record(SimTime::from_ns(i as u64), r, k);
        }
        for (i, r) in [
            TraceResource::Dsp,
            TraceResource::Gpu,
            TraceResource::Npu,
            TraceResource::Axi,
        ]
        .into_iter()
        .enumerate()
        {
            buf.record(
                SimTime::from_ns(10 + i as u64),
                r,
                TraceKind::ExecEnd { task: i as u64 },
            );
        }
        let ivs = buf.exec_intervals();
        assert_eq!(ivs.len(), 4);
        assert!(ivs.iter().all(|iv| buf.resolve(iv.label) == "accel"));
    }

    #[test]
    fn resource_display_names() {
        assert_eq!(TraceResource::CpuCore(4).to_string(), "cpu4");
        assert_eq!(TraceResource::Dsp.to_string(), "cdsp");
        assert_eq!(TraceResource::Axi.to_string(), "axi");
    }

    #[test]
    fn rpc_phases_cover_fig7_flow() {
        // The Fig. 7 call flow has six phases; keep order stable.
        assert_eq!(RpcPhase::ALL.len(), 6);
        assert_eq!(RpcPhase::ALL[0], RpcPhase::IoctlEntry);
        assert_eq!(RpcPhase::ALL[5], RpcPhase::IoctlReturn);
    }

    #[test]
    fn clear_retains_enabled_flag_and_symbols() {
        let mut buf = TraceBuffer::enabled();
        let label = buf.intern("stage");
        buf.record(
            SimTime::ZERO,
            TraceResource::Axi,
            TraceKind::AxiBurst { bytes: 64 },
        );
        buf.clear();
        assert!(buf.events().is_empty());
        assert!(buf.is_enabled());
        assert_eq!(buf.resolve(label), "stage");
    }

    #[test]
    fn set_enabled_drops_events_but_keeps_symbols() {
        let mut buf = TraceBuffer::enabled();
        let label = buf.intern("kept");
        buf.record(SimTime::ZERO, TraceResource::Dsp, TraceKind::ContextSwitch);
        buf.set_enabled(false);
        assert!(buf.events().is_empty());
        assert!(!buf.is_enabled());
        buf.set_enabled(true);
        assert!(buf.is_enabled());
        assert_eq!(buf.resolve(label), "kept", "symbols survive the toggle");
    }

    #[test]
    fn reserved_buffer_records_without_reallocating() {
        let mut buf = TraceBuffer::enabled();
        buf.reserve_events(128);
        let label = buf.intern("warm");
        for i in 0..128u64 {
            buf.record(
                SimTime::from_ns(i),
                TraceResource::CpuCore(0),
                TraceKind::ExecStart { task: i, label },
            );
        }
        assert_eq!(buf.events().len(), 128);
        assert_eq!(
            buf.traced_bytes(),
            128 * std::mem::size_of::<TraceEvent>() as u64
        );
    }
}
