//! Structured trace vocabulary and the columnar trace store.
//!
//! The simulated kernel and frameworks emit these events while running;
//! `aitax-profiler` consumes them to build Snapdragon-Profiler-style views
//! (per-core utilization strips, context-switch counts, CDSP activity, AXI
//! traffic — Figure 6 of the paper).
//!
//! Tracing is opt-in: a disabled [`TraceBuffer`] drops events with a single
//! branch, keeping the probe effect of the *simulator itself* at zero, in the
//! spirit of the paper's §III-D probe-effect discussion. When enabled, the
//! probe effect is one append per event: labels are interned [`Symbol`]s, so
//! recording never touches the heap once the event storage is warm (see
//! [`TraceBuffer::intern`] and [`TraceBuffer::reserve_events`]).
//!
//! # Columnar storage
//!
//! Events are stored struct-of-arrays: one dense column each for the
//! timestamp, resource code, kind tag, and two payload words, rather than a
//! `Vec` of [`TraceEvent`] structs. Columns pack to 23 bytes per event
//! (versus 32 for the array-of-structs layout) and keep each field
//! sequentially prefetchable for the O(n) scans the profiler and interval
//! extractor run. [`TraceEvent`] survives as the *view* type: recording
//! takes its fields apart, iteration reassembles them, and nothing outside
//! this module sees the encoding.
//!
//! # Bounded streaming mode
//!
//! A buffer created with [`TraceBuffer::enabled_ring`] (or bounded later
//! via [`TraceBuffer::set_capacity`]) keeps only the most recent `cap`
//! events, overwriting the oldest in place — constant memory no matter how
//! long the run. [`TraceBuffer::dropped`] counts evictions so consumers
//! can tell a complete trace from a retained window. Fleet-scale runs use
//! this to cap probe memory; analyses over the retained window (e.g.
//! [`TraceBuffer::exec_intervals`]) see exactly the events an unbounded
//! buffer would have kept for that window.

use std::fmt;

use crate::symbol::{Symbol, SymbolTable};
use crate::time::SimTime;

/// A hardware execution resource appearing in traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TraceResource {
    /// A CPU core, by index.
    CpuCore(u8),
    /// The compute DSP (Hexagon-class).
    Dsp,
    /// The GPU.
    Gpu,
    /// The dedicated NPU block, when present.
    Npu,
    /// The AXI interconnect.
    Axi,
}

impl fmt::Display for TraceResource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceResource::CpuCore(i) => write!(f, "cpu{i}"),
            TraceResource::Dsp => write!(f, "cdsp"),
            TraceResource::Gpu => write!(f, "gpu"),
            TraceResource::Npu => write!(f, "npu"),
            TraceResource::Axi => write!(f, "axi"),
        }
    }
}

/// Dense slot for a resource in per-resource scratch tables: CPU cores map
/// to their own index, accelerators and the interconnect to fixed slots
/// past the 8-bit core space. Doubles as the trace column encoding.
fn res_slot(r: TraceResource) -> usize {
    match r {
        TraceResource::CpuCore(i) => i as usize,
        TraceResource::Dsp => 256,
        TraceResource::Gpu => 257,
        TraceResource::Npu => 258,
        TraceResource::Axi => 259,
    }
}

/// Inverse of [`res_slot`] for decoding the resource column.
fn res_unslot(code: u16) -> TraceResource {
    match code {
        0..=255 => TraceResource::CpuCore(code as u8),
        256 => TraceResource::Dsp,
        257 => TraceResource::Gpu,
        258 => TraceResource::Npu,
        259 => TraceResource::Axi,
        // aitax-allow(panic-path): only res_slot writes this column; other codes are memory corruption
        _ => panic!("corrupt trace resource code {code}"),
    }
}

/// Phases of a FastRPC offload round trip (Figure 7 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RpcPhase {
    /// User-space stub marshals arguments and enters the kernel (ioctl).
    IoctlEntry,
    /// Kernel driver flushes CPU caches for shared buffers.
    CacheFlush,
    /// Kernel signals the DSP (doorbell).
    DoorbellRing,
    /// Method executes on the DSP.
    DspExecute,
    /// DSP signals completion back to the kernel.
    CompletionSignal,
    /// Kernel returns to user space.
    IoctlReturn,
}

impl RpcPhase {
    /// All phases in call order.
    pub const ALL: [RpcPhase; 6] = [
        RpcPhase::IoctlEntry,
        RpcPhase::CacheFlush,
        RpcPhase::DoorbellRing,
        RpcPhase::DspExecute,
        RpcPhase::CompletionSignal,
        RpcPhase::IoctlReturn,
    ];
}

impl fmt::Display for RpcPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RpcPhase::IoctlEntry => "ioctl-entry",
            RpcPhase::CacheFlush => "cache-flush",
            RpcPhase::DoorbellRing => "doorbell",
            RpcPhase::DspExecute => "dsp-execute",
            RpcPhase::CompletionSignal => "completion-signal",
            RpcPhase::IoctlReturn => "ioctl-return",
        };
        f.write_str(s)
    }
}

/// What happened.
///
/// Label-carrying variants hold interned [`Symbol`]s minted by the
/// [`TraceBuffer`] that records them; resolve via [`TraceBuffer::resolve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A task began executing on a resource.
    ExecStart {
        /// Simulator-wide task id.
        task: u64,
        /// Interned task label.
        label: Symbol,
    },
    /// The task currently on the resource stopped executing (completed or
    /// was preempted).
    ExecEnd {
        /// Simulator-wide task id.
        task: u64,
    },
    /// The scheduler switched tasks on a core.
    ContextSwitch,
    /// A task moved between cores.
    Migration {
        /// Simulator-wide task id.
        task: u64,
        /// Core the task left.
        from: u8,
        /// Core the task landed on.
        to: u8,
    },
    /// An interrupt was serviced.
    Irq {
        /// Interned interrupt source label.
        source: Symbol,
    },
    /// A FastRPC phase boundary.
    Rpc {
        /// Which phase began at this instant.
        phase: RpcPhase,
    },
    /// A burst of traffic on the interconnect.
    AxiBurst {
        /// Payload size in bytes.
        bytes: u64,
    },
    /// The DVFS governor retargeted a core's clock.
    ///
    /// Emitted on the core's own resource; the frequency holds until the
    /// next `Dvfs` event for the same core. Energy accounting assumes the
    /// clock only changes at these boundaries.
    Dvfs {
        /// Core whose clock changed.
        core: u8,
        /// New frequency in Hz.
        freq_hz: u64,
    },
    /// Free-form marker (pipeline stage boundaries etc.).
    Marker {
        /// Interned marker label.
        label: Symbol,
    },
}

/// Column encoding of a [`TraceKind`]: a 1-byte tag plus a wide (`u64`)
/// and a narrow (`u32`) payload word. Unused payloads encode as zero.
fn encode_kind(kind: TraceKind) -> (u8, u64, u32) {
    match kind {
        TraceKind::ExecStart { task, label } => (0, task, label.index()),
        TraceKind::ExecEnd { task } => (1, task, 0),
        TraceKind::ContextSwitch => (2, 0, 0),
        TraceKind::Migration { task, from, to } => {
            (3, task, (u32::from(from) << 8) | u32::from(to))
        }
        TraceKind::Irq { source } => (4, 0, source.index()),
        TraceKind::Rpc { phase } => {
            let idx = RpcPhase::ALL
                .iter()
                .position(|&p| p == phase)
                // aitax-allow(panic-path): ALL is exhaustive by definition
                .expect("RpcPhase missing from ALL") as u32;
            (5, 0, idx)
        }
        TraceKind::AxiBurst { bytes } => (6, bytes, 0),
        TraceKind::Dvfs { core, freq_hz } => (7, freq_hz, u32::from(core)),
        TraceKind::Marker { label } => (8, 0, label.index()),
    }
}

/// Inverse of [`encode_kind`].
fn decode_kind(tag: u8, pa: u64, pb: u32) -> TraceKind {
    match tag {
        0 => TraceKind::ExecStart {
            task: pa,
            label: Symbol::from_index(pb),
        },
        1 => TraceKind::ExecEnd { task: pa },
        2 => TraceKind::ContextSwitch,
        3 => TraceKind::Migration {
            task: pa,
            from: (pb >> 8) as u8,
            to: pb as u8,
        },
        4 => TraceKind::Irq {
            source: Symbol::from_index(pb),
        },
        5 => TraceKind::Rpc {
            phase: RpcPhase::ALL[pb as usize],
        },
        6 => TraceKind::AxiBurst { bytes: pa },
        7 => TraceKind::Dvfs {
            core: pb as u8,
            freq_hz: pa,
        },
        8 => TraceKind::Marker {
            label: Symbol::from_index(pb),
        },
        // aitax-allow(panic-path): only encode_kind writes this column; other tags are memory corruption
        _ => panic!("corrupt trace kind tag {tag}"),
    }
}

/// A single trace record — the *view* type assembled from the columnar
/// store on iteration (events are not stored as this struct).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened.
    pub time: SimTime,
    /// Where it happened.
    pub resource: TraceResource,
    /// What happened.
    pub kind: TraceKind,
}

/// A columnar, optionally ring-bounded buffer of trace events plus the
/// symbol table their labels are interned into.
///
/// # Example
///
/// ```
/// use aitax_des::trace::{TraceBuffer, TraceKind, TraceResource};
/// use aitax_des::SimTime;
///
/// let mut buf = TraceBuffer::enabled();
/// buf.record(SimTime::from_ns(10), TraceResource::Dsp, TraceKind::ContextSwitch);
/// let label = buf.intern("inference");
/// buf.record(
///     SimTime::from_ns(20),
///     TraceResource::Dsp,
///     TraceKind::ExecStart { task: 1, label },
/// );
/// assert_eq!(buf.len(), 2);
/// assert_eq!(buf.resolve(label), "inference");
/// ```
#[derive(Debug, Default)]
pub struct TraceBuffer {
    enabled: bool,
    /// Ring capacity in events; 0 means unbounded.
    cap: usize,
    /// Physical index of the logically oldest event. Non-zero only once
    /// a bounded buffer has wrapped (columns full at `cap`).
    head: usize,
    /// Events evicted by ring wraparound.
    dropped: u64,
    times: Vec<u64>,
    res: Vec<u16>,
    tags: Vec<u8>,
    pa: Vec<u64>,
    pb: Vec<u32>,
    symbols: SymbolTable,
}

impl TraceBuffer {
    /// Creates a buffer that drops all events (zero probe effect).
    pub fn disabled() -> Self {
        TraceBuffer::default()
    }

    /// Creates an unbounded buffer that records events.
    pub fn enabled() -> Self {
        TraceBuffer {
            enabled: true,
            ..TraceBuffer::default()
        }
    }

    /// Creates a recording buffer that retains only the most recent
    /// `cap` events (bounded streaming mode; see the module docs).
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero — a zero-capacity ring can never hold an
    /// event, which is what [`TraceBuffer::disabled`] is for.
    pub fn enabled_ring(cap: usize) -> Self {
        let mut buf = TraceBuffer::enabled();
        buf.set_capacity(Some(cap));
        buf
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Turns recording on or off in place.
    ///
    /// Disabling drops any recorded events; the symbol table (and thus
    /// every previously minted [`Symbol`]) survives, so labels interned
    /// while tracing was off stay valid when it is re-enabled. The
    /// capacity bound also survives the toggle.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        if !enabled {
            self.clear();
        }
    }

    /// Bounds (or, with `None`, unbounds) the retained-event window.
    ///
    /// Already-recorded events are kept; if more than the new capacity
    /// are present, the oldest are evicted (counted in
    /// [`TraceBuffer::dropped`]).
    ///
    /// # Panics
    ///
    /// Panics if `cap` is `Some(0)`.
    pub fn set_capacity(&mut self, cap: Option<usize>) {
        if let Some(cap) = cap {
            assert!(cap > 0, "a zero-capacity trace ring cannot hold events");
        }
        // Un-wrap the ring first so logical order survives the new bound.
        if self.head != 0 {
            let kept: Vec<usize> = (0..self.len()).map(|i| self.phys(i)).collect();
            self.compact(&kept);
        }
        self.cap = cap.unwrap_or(0);
        if self.cap > 0 && self.len() > self.cap {
            let evict = self.len() - self.cap;
            let kept: Vec<usize> = (evict..self.len()).collect();
            self.compact(&kept);
            self.dropped += evict as u64;
        }
    }

    /// The ring capacity, if bounded.
    pub fn capacity(&self) -> Option<usize> {
        if self.cap == 0 {
            None
        } else {
            Some(self.cap)
        }
    }

    /// Events evicted by ring wraparound since the last
    /// [`TraceBuffer::clear`]. Zero means the retained window is the
    /// complete trace.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Rewrites the columns to hold exactly the physical indices in
    /// `kept`, in the given order, restoring `head == 0`.
    fn compact(&mut self, kept: &[usize]) {
        let times: Vec<u64> = kept.iter().map(|&p| self.times[p]).collect();
        let res: Vec<u16> = kept.iter().map(|&p| self.res[p]).collect();
        let tags: Vec<u8> = kept.iter().map(|&p| self.tags[p]).collect();
        let pa: Vec<u64> = kept.iter().map(|&p| self.pa[p]).collect();
        let pb: Vec<u32> = kept.iter().map(|&p| self.pb[p]).collect();
        self.times = times;
        self.res = res;
        self.tags = tags;
        self.pa = pa;
        self.pb = pb;
        self.head = 0;
    }

    /// Interns `label`, returning a [`Symbol`] valid for this buffer.
    ///
    /// Works whether or not tracing is enabled — callers intern labels
    /// once at object-creation time and record cheap symbols thereafter.
    /// Symbols are never evicted, even when the event ring wraps.
    pub fn intern(&mut self, label: &str) -> Symbol {
        self.symbols.intern(label)
    }

    /// The string a symbol minted by this buffer stands for.
    pub fn resolve(&self, sym: Symbol) -> &str {
        self.symbols.resolve(sym)
    }

    /// The buffer's symbol table.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Pre-sizes event storage so steady-state recording never
    /// reallocates. Bounded buffers never reserve past their capacity.
    pub fn reserve_events(&mut self, additional: usize) {
        let additional = if self.cap > 0 {
            additional.min(self.cap.saturating_sub(self.times.len()))
        } else {
            additional
        };
        self.times.reserve(additional);
        self.res.reserve(additional);
        self.tags.reserve(additional);
        self.pa.reserve(additional);
        self.pb.reserve(additional);
    }

    /// Records one event (no-op when disabled). When a bounded buffer is
    /// full, the oldest event is overwritten in place — no allocation,
    /// no shifting.
    pub fn record(&mut self, time: SimTime, resource: TraceResource, kind: TraceKind) {
        if !self.enabled {
            return;
        }
        let (tag, pa, pb) = encode_kind(kind);
        let code = res_slot(resource) as u16;
        if self.cap > 0 && self.times.len() == self.cap {
            let p = self.head;
            self.times[p] = time.as_ns();
            self.res[p] = code;
            self.tags[p] = tag;
            self.pa[p] = pa;
            self.pb[p] = pb;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        } else {
            self.times.push(time.as_ns());
            self.res.push(code);
            self.tags.push(tag);
            self.pa.push(pa);
            self.pb.push(pb);
        }
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Physical column index of logical event `i` (0 = oldest).
    #[inline]
    fn phys(&self, i: usize) -> usize {
        if self.head == 0 {
            i
        } else {
            (self.head + i) % self.times.len()
        }
    }

    /// Reassembles logical event `i` (0 = oldest) from the columns.
    fn get(&self, i: usize) -> TraceEvent {
        let p = self.phys(i);
        TraceEvent {
            time: SimTime::from_ns(self.times[p]),
            resource: res_unslot(self.res[p]),
            kind: decode_kind(self.tags[p], self.pa[p], self.pb[p]),
        }
    }

    /// Iterates retained events oldest → newest.
    pub fn iter(&self) -> TraceIter<'_> {
        TraceIter {
            buf: self,
            next: 0,
            len: self.len(),
        }
    }

    /// The most recently recorded event, if any.
    pub fn last(&self) -> Option<TraceEvent> {
        self.len().checked_sub(1).map(|i| self.get(i))
    }

    /// Consumes the buffer, materializing the retained events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.iter().collect()
    }

    /// Drops all recorded events (and the dropped-event count), keeping
    /// the enabled flag, capacity bound, symbol table, and column
    /// capacity (so a reused buffer records its next run allocation-free).
    pub fn clear(&mut self) {
        self.times.clear();
        self.res.clear();
        self.tags.clear();
        self.pa.clear();
        self.pb.clear();
        self.head = 0;
        self.dropped = 0;
    }

    /// Resets the buffer to the [`TraceBuffer::disabled`] starting state
    /// — recording off, unbounded, no events, symbol table emptied —
    /// while retaining the event columns' and symbol vector's heap
    /// capacity. A machine reusing this buffer starts its next run
    /// exactly where a fresh one would (symbol numbering restarts at 0,
    /// so reused-run trace bytes match fresh-run bytes) without paying
    /// the allocations again.
    pub fn reset(&mut self) {
        self.clear();
        self.enabled = false;
        self.cap = 0;
        self.symbols.clear();
    }

    /// Total bytes of retained event records, priced at the size of the
    /// [`TraceEvent`] view struct (the unit profiler reports are
    /// denominated in, independent of the columnar packing).
    pub fn traced_bytes(&self) -> u64 {
        (self.len() * std::mem::size_of::<TraceEvent>()) as u64
    }

    /// Extracts closed execution intervals per resource.
    ///
    /// Pairs each `ExecStart` with the next `ExecEnd` for the same task on
    /// the same resource. Unclosed intervals (still running at trace end)
    /// are dropped — as are intervals whose `ExecStart` was evicted by
    /// ring wraparound (their `ExecEnd` finds no matching open start).
    pub fn exec_intervals(&self) -> Vec<ExecInterval> {
        let (out, _open) = self.collect_intervals();
        sort_intervals(out)
    }

    /// Like [`TraceBuffer::exec_intervals`], but treats tasks still
    /// running at `end` as busy up to `end` instead of dropping them —
    /// the accounting a profiler window needs (an `ExecStart` with no
    /// `ExecEnd` is real utilization, not noise).
    ///
    /// Open intervals that start after `end` are clamped to zero length
    /// at their own start.
    pub fn exec_intervals_until(&self, end: SimTime) -> Vec<ExecInterval> {
        let (mut out, open) = self.collect_intervals();
        for per_resource in open {
            for (resource, task, start, label) in per_resource {
                out.push(ExecInterval {
                    resource,
                    task,
                    label,
                    start,
                    end: end.max(start),
                });
            }
        }
        sort_intervals(out)
    }

    /// Single O(n) pass pairing starts with ends via per-resource open
    /// lists. Returns the closed intervals in `ExecEnd` encounter order
    /// plus whatever remained open, grouped by resource slot.
    #[allow(clippy::type_complexity)]
    fn collect_intervals(
        &self,
    ) -> (
        Vec<ExecInterval>,
        Vec<Vec<(TraceResource, u64, SimTime, Symbol)>>,
    ) {
        let mut open: Vec<Vec<(TraceResource, u64, SimTime, Symbol)>> = Vec::new();
        let mut out = Vec::new();
        for ev in self.iter() {
            match ev.kind {
                TraceKind::ExecStart { task, label } => {
                    let slot = res_slot(ev.resource);
                    if open.len() <= slot {
                        open.resize_with(slot + 1, Vec::new);
                    }
                    open[slot].push((ev.resource, task, ev.time, label));
                }
                TraceKind::ExecEnd { task } => {
                    let slot = res_slot(ev.resource);
                    if let Some(per_resource) = open.get_mut(slot) {
                        if let Some(pos) = per_resource.iter().rposition(|&(_, t, _, _)| t == task)
                        {
                            let (resource, task, start, label) = per_resource.swap_remove(pos);
                            out.push(ExecInterval {
                                resource,
                                task,
                                label,
                                start,
                                end: ev.time,
                            });
                        }
                    }
                }
                _ => {}
            }
        }
        (out, open)
    }
}

impl<'a> IntoIterator for &'a TraceBuffer {
    type Item = TraceEvent;
    type IntoIter = TraceIter<'a>;

    fn into_iter(self) -> TraceIter<'a> {
        self.iter()
    }
}

/// Iterator over a [`TraceBuffer`]'s retained events, oldest → newest.
#[derive(Debug, Clone)]
pub struct TraceIter<'a> {
    buf: &'a TraceBuffer,
    next: usize,
    len: usize,
}

impl Iterator for TraceIter<'_> {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        if self.next == self.len {
            return None;
        }
        let ev = self.buf.get(self.next);
        self.next += 1;
        Some(ev)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.len - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for TraceIter<'_> {}

/// The public interval ordering: by start time, resources breaking
/// ties. The sort is stable, so same-(start, resource) intervals keep
/// their emission order.
fn sort_intervals(mut out: Vec<ExecInterval>) -> Vec<ExecInterval> {
    out.sort_by_key(|iv| (iv.start, iv.resource));
    out
}

/// A closed execution interval extracted from a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecInterval {
    /// Resource the task ran on.
    pub resource: TraceResource,
    /// Simulator-wide task id.
    pub task: u64,
    /// Interned task label captured at start (resolve against the buffer
    /// that produced this interval).
    pub label: Symbol,
    /// Interval start.
    pub start: SimTime,
    /// Interval end.
    pub end: SimTime,
}

impl ExecInterval {
    /// Length of the interval.
    pub fn span(&self) -> crate::SimSpan {
        self.end - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimSpan;

    fn start(buf: &mut TraceBuffer, task: u64, label: &str) -> TraceKind {
        TraceKind::ExecStart {
            task,
            label: buf.intern(label),
        }
    }

    #[test]
    fn disabled_buffer_drops_events() {
        let mut buf = TraceBuffer::disabled();
        buf.record(SimTime::ZERO, TraceResource::Dsp, TraceKind::ContextSwitch);
        assert!(buf.is_empty());
        assert!(!buf.is_enabled());
    }

    #[test]
    fn intervals_pair_start_end() {
        let mut buf = TraceBuffer::enabled();
        let r = TraceResource::CpuCore(0);
        let k = start(&mut buf, 1, "job");
        buf.record(SimTime::from_ns(10), r, k);
        buf.record(SimTime::from_ns(30), r, TraceKind::ExecEnd { task: 1 });
        let ivs = buf.exec_intervals();
        assert_eq!(ivs.len(), 1);
        assert_eq!(ivs[0].span(), SimSpan::from_ns(20));
        assert_eq!(buf.resolve(ivs[0].label), "job");
    }

    #[test]
    fn unclosed_intervals_are_dropped() {
        let mut buf = TraceBuffer::enabled();
        let k = start(&mut buf, 7, "dangling");
        buf.record(SimTime::from_ns(5), TraceResource::Gpu, k);
        assert!(buf.exec_intervals().is_empty());
    }

    #[test]
    fn intervals_until_closes_dangling_starts() {
        let mut buf = TraceBuffer::enabled();
        let r = TraceResource::CpuCore(1);
        let closed = start(&mut buf, 1, "closed");
        buf.record(SimTime::from_ns(10), r, closed);
        buf.record(SimTime::from_ns(20), r, TraceKind::ExecEnd { task: 1 });
        let open = start(&mut buf, 2, "open");
        buf.record(SimTime::from_ns(40), TraceResource::Gpu, open);
        let ivs = buf.exec_intervals_until(SimTime::from_ns(100));
        assert_eq!(ivs.len(), 2);
        assert_eq!(ivs[0].span(), SimSpan::from_ns(10));
        assert_eq!(ivs[1].start, SimTime::from_ns(40));
        assert_eq!(ivs[1].end, SimTime::from_ns(100), "busy to window end");
        // A start after the window clamps to zero length, never negative.
        let clamped = buf.exec_intervals_until(SimTime::from_ns(30));
        assert_eq!(clamped[1].start, clamped[1].end);
    }

    #[test]
    fn interleaved_resources_pair_correctly() {
        let mut buf = TraceBuffer::enabled();
        let c0 = TraceResource::CpuCore(0);
        let c1 = TraceResource::CpuCore(1);
        let a = start(&mut buf, 1, "a");
        buf.record(SimTime::from_ns(0), c0, a);
        let b = start(&mut buf, 2, "b");
        buf.record(SimTime::from_ns(1), c1, b);
        buf.record(SimTime::from_ns(4), c1, TraceKind::ExecEnd { task: 2 });
        buf.record(SimTime::from_ns(9), c0, TraceKind::ExecEnd { task: 1 });
        let ivs = buf.exec_intervals();
        assert_eq!(ivs.len(), 2);
        assert_eq!(ivs[0].resource, c0);
        assert_eq!(ivs[0].span(), SimSpan::from_ns(9));
        assert_eq!(ivs[1].resource, c1);
        assert_eq!(ivs[1].span(), SimSpan::from_ns(3));
    }

    #[test]
    fn same_task_reexecution_pairs_nested() {
        let mut buf = TraceBuffer::enabled();
        let r = TraceResource::CpuCore(2);
        // Task runs twice (preemption produces two intervals).
        let x = start(&mut buf, 3, "x");
        buf.record(SimTime::from_ns(0), r, x);
        buf.record(SimTime::from_ns(2), r, TraceKind::ExecEnd { task: 3 });
        buf.record(SimTime::from_ns(5), r, x);
        buf.record(SimTime::from_ns(6), r, TraceKind::ExecEnd { task: 3 });
        let ivs = buf.exec_intervals();
        assert_eq!(ivs.len(), 2);
        assert_eq!(ivs[0].start, SimTime::from_ns(0));
        assert_eq!(ivs[1].start, SimTime::from_ns(5));
    }

    #[test]
    fn same_task_on_accelerator_slots_pairs_correctly() {
        // Exercise the non-CPU resource slots of the per-resource tables.
        let mut buf = TraceBuffer::enabled();
        for (i, r) in [
            TraceResource::Dsp,
            TraceResource::Gpu,
            TraceResource::Npu,
            TraceResource::Axi,
        ]
        .into_iter()
        .enumerate()
        {
            let k = start(&mut buf, i as u64, "accel");
            buf.record(SimTime::from_ns(i as u64), r, k);
        }
        for (i, r) in [
            TraceResource::Dsp,
            TraceResource::Gpu,
            TraceResource::Npu,
            TraceResource::Axi,
        ]
        .into_iter()
        .enumerate()
        {
            buf.record(
                SimTime::from_ns(10 + i as u64),
                r,
                TraceKind::ExecEnd { task: i as u64 },
            );
        }
        let ivs = buf.exec_intervals();
        assert_eq!(ivs.len(), 4);
        assert!(ivs.iter().all(|iv| buf.resolve(iv.label) == "accel"));
    }

    #[test]
    fn resource_display_names() {
        assert_eq!(TraceResource::CpuCore(4).to_string(), "cpu4");
        assert_eq!(TraceResource::Dsp.to_string(), "cdsp");
        assert_eq!(TraceResource::Axi.to_string(), "axi");
    }

    #[test]
    fn rpc_phases_cover_fig7_flow() {
        // The Fig. 7 call flow has six phases; keep order stable.
        assert_eq!(RpcPhase::ALL.len(), 6);
        assert_eq!(RpcPhase::ALL[0], RpcPhase::IoctlEntry);
        assert_eq!(RpcPhase::ALL[5], RpcPhase::IoctlReturn);
    }

    #[test]
    fn reset_matches_disabled_starting_state() {
        let mut buf = TraceBuffer::enabled_ring(4);
        let s = buf.intern("old-label");
        for i in 0..9 {
            buf.record(
                SimTime::from_ns(i),
                TraceResource::Dsp,
                TraceKind::ExecStart { task: i, label: s },
            );
        }
        assert!(buf.dropped() > 0);
        buf.reset();
        assert!(!buf.is_enabled());
        assert_eq!(buf.capacity(), None);
        assert_eq!(buf.len(), 0);
        assert_eq!(buf.dropped(), 0);
        assert!(buf.symbols().is_empty());
        // Re-enabled, the buffer numbers symbols like a fresh one.
        buf.set_enabled(true);
        assert_eq!(buf.intern("first-of-next-run").index(), 0);
    }

    #[test]
    fn clear_retains_enabled_flag_and_symbols() {
        let mut buf = TraceBuffer::enabled();
        let label = buf.intern("stage");
        buf.record(
            SimTime::ZERO,
            TraceResource::Axi,
            TraceKind::AxiBurst { bytes: 64 },
        );
        buf.clear();
        assert!(buf.is_empty());
        assert!(buf.is_enabled());
        assert_eq!(buf.resolve(label), "stage");
    }

    #[test]
    fn set_enabled_drops_events_but_keeps_symbols() {
        let mut buf = TraceBuffer::enabled();
        let label = buf.intern("kept");
        buf.record(SimTime::ZERO, TraceResource::Dsp, TraceKind::ContextSwitch);
        buf.set_enabled(false);
        assert!(buf.is_empty());
        assert!(!buf.is_enabled());
        buf.set_enabled(true);
        assert!(buf.is_enabled());
        assert_eq!(buf.resolve(label), "kept", "symbols survive the toggle");
    }

    #[test]
    fn reserved_buffer_records_without_reallocating() {
        let mut buf = TraceBuffer::enabled();
        buf.reserve_events(128);
        let label = buf.intern("warm");
        for i in 0..128u64 {
            buf.record(
                SimTime::from_ns(i),
                TraceResource::CpuCore(0),
                TraceKind::ExecStart { task: i, label },
            );
        }
        assert_eq!(buf.len(), 128);
        assert_eq!(
            buf.traced_bytes(),
            128 * std::mem::size_of::<TraceEvent>() as u64
        );
    }

    #[test]
    fn every_kind_roundtrips_through_the_columns() {
        let mut buf = TraceBuffer::enabled();
        let label = buf.intern("k");
        let source = buf.intern("irq0");
        let kinds = [
            TraceKind::ExecStart { task: 7, label },
            TraceKind::ExecEnd { task: u64::MAX },
            TraceKind::ContextSwitch,
            TraceKind::Migration {
                task: 3,
                from: 255,
                to: 1,
            },
            TraceKind::Irq { source },
            TraceKind::Rpc {
                phase: RpcPhase::CompletionSignal,
            },
            TraceKind::AxiBurst { bytes: u64::MAX },
            TraceKind::Dvfs {
                core: 7,
                freq_hz: 2_841_600_000,
            },
            TraceKind::Marker { label },
        ];
        let resources = [
            TraceResource::CpuCore(0),
            TraceResource::CpuCore(255),
            TraceResource::Dsp,
            TraceResource::Gpu,
            TraceResource::Npu,
            TraceResource::Axi,
        ];
        for (i, &kind) in kinds.iter().enumerate() {
            buf.record(
                SimTime::from_ns(i as u64),
                resources[i % resources.len()],
                kind,
            );
        }
        let back: Vec<TraceEvent> = buf.iter().collect();
        assert_eq!(back.len(), kinds.len());
        for (i, ev) in back.iter().enumerate() {
            assert_eq!(ev.time, SimTime::from_ns(i as u64));
            assert_eq!(ev.resource, resources[i % resources.len()]);
            assert_eq!(ev.kind, kinds[i], "kind {i} did not round-trip");
        }
    }

    #[test]
    fn ring_keeps_only_the_newest_events() {
        let mut buf = TraceBuffer::enabled_ring(4);
        assert_eq!(buf.capacity(), Some(4));
        for i in 0..10u64 {
            buf.record(
                SimTime::from_ns(i),
                TraceResource::Axi,
                TraceKind::AxiBurst { bytes: i },
            );
        }
        assert_eq!(buf.len(), 4);
        assert_eq!(buf.dropped(), 6);
        let times: Vec<u64> = buf.iter().map(|e| e.time.as_ns()).collect();
        assert_eq!(times, vec![6, 7, 8, 9], "oldest evicted, order preserved");
        assert_eq!(buf.last().unwrap().time.as_ns(), 9);
    }

    #[test]
    fn ring_clear_resets_window_and_dropped_count() {
        let mut buf = TraceBuffer::enabled_ring(2);
        for i in 0..5u64 {
            buf.record(
                SimTime::from_ns(i),
                TraceResource::Dsp,
                TraceKind::ContextSwitch,
            );
        }
        assert_eq!(buf.dropped(), 3);
        buf.clear();
        assert_eq!(buf.dropped(), 0);
        assert!(buf.is_empty());
        buf.record(
            SimTime::from_ns(9),
            TraceResource::Dsp,
            TraceKind::ContextSwitch,
        );
        assert_eq!(buf.iter().next().unwrap().time.as_ns(), 9);
        assert_eq!(buf.dropped(), 0, "within capacity nothing drops");
    }

    #[test]
    fn bounding_a_full_buffer_evicts_the_oldest() {
        let mut buf = TraceBuffer::enabled();
        for i in 0..6u64 {
            buf.record(
                SimTime::from_ns(i),
                TraceResource::Gpu,
                TraceKind::AxiBurst { bytes: i },
            );
        }
        buf.set_capacity(Some(3));
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.dropped(), 3);
        let times: Vec<u64> = buf.iter().map(|e| e.time.as_ns()).collect();
        assert_eq!(times, vec![3, 4, 5]);
        // And the ring keeps rolling from the compacted state.
        buf.record(
            SimTime::from_ns(6),
            TraceResource::Gpu,
            TraceKind::AxiBurst { bytes: 6 },
        );
        let times: Vec<u64> = buf.iter().map(|e| e.time.as_ns()).collect();
        assert_eq!(times, vec![4, 5, 6]);
    }
}
