//! Structured trace vocabulary.
//!
//! The simulated kernel and frameworks emit these events while running;
//! `aitax-profiler` consumes them to build Snapdragon-Profiler-style views
//! (per-core utilization strips, context-switch counts, CDSP activity, AXI
//! traffic — Figure 6 of the paper).
//!
//! Tracing is opt-in: a disabled [`TraceBuffer`] drops events with a single
//! branch, keeping the probe effect of the *simulator itself* at zero, in the
//! spirit of the paper's §III-D probe-effect discussion.

use std::fmt;

use crate::time::SimTime;

/// A hardware execution resource appearing in traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TraceResource {
    /// A CPU core, by index.
    CpuCore(u8),
    /// The compute DSP (Hexagon-class).
    Dsp,
    /// The GPU.
    Gpu,
    /// The dedicated NPU block, when present.
    Npu,
    /// The AXI interconnect.
    Axi,
}

impl fmt::Display for TraceResource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceResource::CpuCore(i) => write!(f, "cpu{i}"),
            TraceResource::Dsp => write!(f, "cdsp"),
            TraceResource::Gpu => write!(f, "gpu"),
            TraceResource::Npu => write!(f, "npu"),
            TraceResource::Axi => write!(f, "axi"),
        }
    }
}

/// Phases of a FastRPC offload round trip (Figure 7 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RpcPhase {
    /// User-space stub marshals arguments and enters the kernel (ioctl).
    IoctlEntry,
    /// Kernel driver flushes CPU caches for shared buffers.
    CacheFlush,
    /// Kernel signals the DSP (doorbell).
    DoorbellRing,
    /// Method executes on the DSP.
    DspExecute,
    /// DSP signals completion back to the kernel.
    CompletionSignal,
    /// Kernel returns to user space.
    IoctlReturn,
}

impl RpcPhase {
    /// All phases in call order.
    pub const ALL: [RpcPhase; 6] = [
        RpcPhase::IoctlEntry,
        RpcPhase::CacheFlush,
        RpcPhase::DoorbellRing,
        RpcPhase::DspExecute,
        RpcPhase::CompletionSignal,
        RpcPhase::IoctlReturn,
    ];
}

impl fmt::Display for RpcPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RpcPhase::IoctlEntry => "ioctl-entry",
            RpcPhase::CacheFlush => "cache-flush",
            RpcPhase::DoorbellRing => "doorbell",
            RpcPhase::DspExecute => "dsp-execute",
            RpcPhase::CompletionSignal => "completion-signal",
            RpcPhase::IoctlReturn => "ioctl-return",
        };
        f.write_str(s)
    }
}

/// What happened.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceKind {
    /// A task began executing on a resource.
    ExecStart {
        /// Simulator-wide task id.
        task: u64,
        /// Human-readable task label.
        label: Box<str>,
    },
    /// The task currently on the resource stopped executing (completed or
    /// was preempted).
    ExecEnd {
        /// Simulator-wide task id.
        task: u64,
    },
    /// The scheduler switched tasks on a core.
    ContextSwitch,
    /// A task moved between cores.
    Migration {
        /// Simulator-wide task id.
        task: u64,
        /// Core the task left.
        from: u8,
        /// Core the task landed on.
        to: u8,
    },
    /// An interrupt was serviced.
    Irq {
        /// Interrupt source label.
        source: Box<str>,
    },
    /// A FastRPC phase boundary.
    Rpc {
        /// Which phase began at this instant.
        phase: RpcPhase,
    },
    /// A burst of traffic on the interconnect.
    AxiBurst {
        /// Payload size in bytes.
        bytes: u64,
    },
    /// The DVFS governor retargeted a core's clock.
    ///
    /// Emitted on the core's own resource; the frequency holds until the
    /// next `Dvfs` event for the same core. Energy accounting assumes the
    /// clock only changes at these boundaries.
    Dvfs {
        /// Core whose clock changed.
        core: u8,
        /// New frequency in Hz.
        freq_hz: u64,
    },
    /// Free-form marker (pipeline stage boundaries etc.).
    Marker {
        /// Marker label.
        label: Box<str>,
    },
}

/// A single trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// When it happened.
    pub time: SimTime,
    /// Where it happened.
    pub resource: TraceResource,
    /// What happened.
    pub kind: TraceKind,
}

/// An append-only buffer of trace events.
///
/// # Example
///
/// ```
/// use aitax_des::trace::{TraceBuffer, TraceKind, TraceResource};
/// use aitax_des::SimTime;
///
/// let mut buf = TraceBuffer::enabled();
/// buf.record(SimTime::from_ns(10), TraceResource::Dsp, TraceKind::ContextSwitch);
/// assert_eq!(buf.events().len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct TraceBuffer {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl TraceBuffer {
    /// Creates a buffer that drops all events (zero probe effect).
    pub fn disabled() -> Self {
        TraceBuffer {
            enabled: false,
            events: Vec::new(),
        }
    }

    /// Creates a buffer that records events.
    pub fn enabled() -> Self {
        TraceBuffer {
            enabled: true,
            events: Vec::new(),
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event (no-op when disabled).
    pub fn record(&mut self, time: SimTime, resource: TraceResource, kind: TraceKind) {
        if self.enabled {
            self.events.push(TraceEvent {
                time,
                resource,
                kind,
            });
        }
    }

    /// All recorded events in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consumes the buffer, yielding the recorded events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }

    /// Drops all recorded events, keeping the enabled flag.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Extracts closed execution intervals per resource.
    ///
    /// Pairs each `ExecStart` with the next `ExecEnd` for the same task on
    /// the same resource. Unclosed intervals (still running at trace end)
    /// are dropped.
    pub fn exec_intervals(&self) -> Vec<ExecInterval> {
        let mut open: Vec<(TraceResource, u64, SimTime, Box<str>)> = Vec::new();
        let mut out = Vec::new();
        for ev in &self.events {
            match &ev.kind {
                TraceKind::ExecStart { task, label } => {
                    open.push((ev.resource, *task, ev.time, label.clone()));
                }
                TraceKind::ExecEnd { task } => {
                    if let Some(pos) = open
                        .iter()
                        .rposition(|(r, t, _, _)| *r == ev.resource && *t == *task)
                    {
                        let (resource, task, start, label) = open.swap_remove(pos);
                        out.push(ExecInterval {
                            resource,
                            task,
                            label,
                            start,
                            end: ev.time,
                        });
                    }
                }
                _ => {}
            }
        }
        out.sort_by_key(|iv| (iv.start, iv.resource));
        out
    }

    /// Like [`TraceBuffer::exec_intervals`], but treats tasks still
    /// running at `end` as busy up to `end` instead of dropping them —
    /// the accounting a profiler window needs (an `ExecStart` with no
    /// `ExecEnd` is real utilization, not noise).
    ///
    /// Open intervals that start after `end` are clamped to zero length
    /// at their own start.
    pub fn exec_intervals_until(&self, end: SimTime) -> Vec<ExecInterval> {
        let mut open: Vec<(TraceResource, u64, SimTime, Box<str>)> = Vec::new();
        let mut out = Vec::new();
        for ev in &self.events {
            match &ev.kind {
                TraceKind::ExecStart { task, label } => {
                    open.push((ev.resource, *task, ev.time, label.clone()));
                }
                TraceKind::ExecEnd { task } => {
                    if let Some(pos) = open
                        .iter()
                        .rposition(|(r, t, _, _)| *r == ev.resource && *t == *task)
                    {
                        let (resource, task, start, label) = open.swap_remove(pos);
                        out.push(ExecInterval {
                            resource,
                            task,
                            label,
                            start,
                            end: ev.time,
                        });
                    }
                }
                _ => {}
            }
        }
        for (resource, task, start, label) in open {
            out.push(ExecInterval {
                resource,
                task,
                label,
                start,
                end: end.max(start),
            });
        }
        out.sort_by_key(|iv| (iv.start, iv.resource));
        out
    }
}

/// A closed execution interval extracted from a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecInterval {
    /// Resource the task ran on.
    pub resource: TraceResource,
    /// Simulator-wide task id.
    pub task: u64,
    /// Task label captured at start.
    pub label: Box<str>,
    /// Interval start.
    pub start: SimTime,
    /// Interval end.
    pub end: SimTime,
}

impl ExecInterval {
    /// Length of the interval.
    pub fn span(&self) -> crate::SimSpan {
        self.end - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimSpan;

    fn start(task: u64, label: &str) -> TraceKind {
        TraceKind::ExecStart {
            task,
            label: label.into(),
        }
    }

    #[test]
    fn disabled_buffer_drops_events() {
        let mut buf = TraceBuffer::disabled();
        buf.record(SimTime::ZERO, TraceResource::Dsp, TraceKind::ContextSwitch);
        assert!(buf.events().is_empty());
        assert!(!buf.is_enabled());
    }

    #[test]
    fn intervals_pair_start_end() {
        let mut buf = TraceBuffer::enabled();
        let r = TraceResource::CpuCore(0);
        buf.record(SimTime::from_ns(10), r, start(1, "job"));
        buf.record(SimTime::from_ns(30), r, TraceKind::ExecEnd { task: 1 });
        let ivs = buf.exec_intervals();
        assert_eq!(ivs.len(), 1);
        assert_eq!(ivs[0].span(), SimSpan::from_ns(20));
        assert_eq!(&*ivs[0].label, "job");
    }

    #[test]
    fn unclosed_intervals_are_dropped() {
        let mut buf = TraceBuffer::enabled();
        buf.record(
            SimTime::from_ns(5),
            TraceResource::Gpu,
            start(7, "dangling"),
        );
        assert!(buf.exec_intervals().is_empty());
    }

    #[test]
    fn intervals_until_closes_dangling_starts() {
        let mut buf = TraceBuffer::enabled();
        let r = TraceResource::CpuCore(1);
        buf.record(SimTime::from_ns(10), r, start(1, "closed"));
        buf.record(SimTime::from_ns(20), r, TraceKind::ExecEnd { task: 1 });
        buf.record(SimTime::from_ns(40), TraceResource::Gpu, start(2, "open"));
        let ivs = buf.exec_intervals_until(SimTime::from_ns(100));
        assert_eq!(ivs.len(), 2);
        assert_eq!(ivs[0].span(), SimSpan::from_ns(10));
        assert_eq!(ivs[1].start, SimTime::from_ns(40));
        assert_eq!(ivs[1].end, SimTime::from_ns(100), "busy to window end");
        // A start after the window clamps to zero length, never negative.
        let clamped = buf.exec_intervals_until(SimTime::from_ns(30));
        assert_eq!(clamped[1].start, clamped[1].end);
    }

    #[test]
    fn interleaved_resources_pair_correctly() {
        let mut buf = TraceBuffer::enabled();
        let c0 = TraceResource::CpuCore(0);
        let c1 = TraceResource::CpuCore(1);
        buf.record(SimTime::from_ns(0), c0, start(1, "a"));
        buf.record(SimTime::from_ns(1), c1, start(2, "b"));
        buf.record(SimTime::from_ns(4), c1, TraceKind::ExecEnd { task: 2 });
        buf.record(SimTime::from_ns(9), c0, TraceKind::ExecEnd { task: 1 });
        let ivs = buf.exec_intervals();
        assert_eq!(ivs.len(), 2);
        assert_eq!(ivs[0].resource, c0);
        assert_eq!(ivs[0].span(), SimSpan::from_ns(9));
        assert_eq!(ivs[1].resource, c1);
        assert_eq!(ivs[1].span(), SimSpan::from_ns(3));
    }

    #[test]
    fn same_task_reexecution_pairs_nested() {
        let mut buf = TraceBuffer::enabled();
        let r = TraceResource::CpuCore(2);
        // Task runs twice (preemption produces two intervals).
        buf.record(SimTime::from_ns(0), r, start(3, "x"));
        buf.record(SimTime::from_ns(2), r, TraceKind::ExecEnd { task: 3 });
        buf.record(SimTime::from_ns(5), r, start(3, "x"));
        buf.record(SimTime::from_ns(6), r, TraceKind::ExecEnd { task: 3 });
        let ivs = buf.exec_intervals();
        assert_eq!(ivs.len(), 2);
        assert_eq!(ivs[0].start, SimTime::from_ns(0));
        assert_eq!(ivs[1].start, SimTime::from_ns(5));
    }

    #[test]
    fn resource_display_names() {
        assert_eq!(TraceResource::CpuCore(4).to_string(), "cpu4");
        assert_eq!(TraceResource::Dsp.to_string(), "cdsp");
        assert_eq!(TraceResource::Axi.to_string(), "axi");
    }

    #[test]
    fn rpc_phases_cover_fig7_flow() {
        // The Fig. 7 call flow has six phases; keep order stable.
        assert_eq!(RpcPhase::ALL.len(), 6);
        assert_eq!(RpcPhase::ALL[0], RpcPhase::IoctlEntry);
        assert_eq!(RpcPhase::ALL[5], RpcPhase::IoctlReturn);
    }

    #[test]
    fn clear_retains_enabled_flag() {
        let mut buf = TraceBuffer::enabled();
        buf.record(
            SimTime::ZERO,
            TraceResource::Axi,
            TraceKind::AxiBurst { bytes: 64 },
        );
        buf.clear();
        assert!(buf.events().is_empty());
        assert!(buf.is_enabled());
    }
}
