//! The retired binary-heap calendar, kept as a **differential oracle**.
//!
//! This is the PR-5 implementation (`BinaryHeap<Reverse<(time, seq,
//! slot)>>` over a generation-checked tombstone slab) frozen in place so
//! the timing-wheel [`Calendar`](super::Calendar) can be checked against
//! it: `tests/calendar_differential.rs` replays seeded scripts of mixed
//! schedule/cancel/pop/advance operations through both and asserts
//! identical pop sequences, clocks, and counters. The heap's `(time,
//! seq)` ordering is trivially correct by construction, which is exactly
//! what makes it a trustworthy oracle for the wheel's cascade logic.
//!
//! Compiled only under the `legacy-oracle` feature (on by default so the
//! differential suite runs in a plain `cargo test`); production binaries
//! can drop it with `--no-default-features`.
//!
//! Note: [`Token`] *values* are not part of the oracle contract. Both
//! implementations recycle slab slots, but they reclaim tombstones at
//! different moments, so the same logical event can receive different
//! slot numbers in each. The differential harness therefore compares
//! caller-side event identities, never raw tokens.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use super::Token;
use crate::time::{SimSpan, SimTime};

/// One slab entry. `generation` advances each time the slot is recycled,
/// invalidating any stale [`Token`] still pointing at it.
#[derive(Debug, Clone, Copy)]
struct Slot {
    generation: u32,
    live: bool,
}

/// The retired binary-heap calendar (see the module docs). Public API is
/// identical to [`Calendar`](super::Calendar).
#[derive(Debug, Default)]
pub struct LegacyCalendar {
    now: SimTime,
    next_seq: u64,
    // Ordered by (time, seq); the trailing slot index is payload only —
    // seq is globally unique, so it alone breaks every time tie (FIFO).
    heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    scheduled_total: u64,
    fired_total: u64,
    cancelled_total: u64,
}

impl LegacyCalendar {
    /// Creates an empty calendar with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Self::default()
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    pub fn pending(&self) -> usize {
        (self.scheduled_total - self.fired_total - self.cancelled_total) as usize
    }

    /// Whether no live events remain.
    pub fn is_idle(&self) -> bool {
        self.pending() == 0
    }

    /// Total events ever scheduled (deterministic across identical runs).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Total events that fired via [`LegacyCalendar::next`].
    pub fn fired_total(&self) -> u64 {
        self.fired_total
    }

    /// Total events cancelled while still pending.
    pub fn cancelled_total(&self) -> u64 {
        self.cancelled_total
    }

    /// Schedules an event `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimSpan) -> Token {
        self.schedule_at(self.now + delay)
    }

    /// Schedules an event at an absolute instant.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before [`LegacyCalendar::now`]).
    pub fn schedule_at(&mut self, at: SimTime) -> Token {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={} at={}",
            self.now,
            at
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize].live = true;
                slot
            }
            None => {
                let slot = self.slots.len() as u32;
                self.slots.push(Slot {
                    generation: 0,
                    live: true,
                });
                slot
            }
        };
        self.heap.push(Reverse((at, seq, slot)));
        self.scheduled_total += 1;
        Token::pack(self.slots[slot as usize].generation, slot)
    }

    /// Cancels a pending event.
    ///
    /// Returns `true` if the event was still pending, `false` if it already
    /// fired or was already cancelled. O(1): the heap entry stays behind as
    /// a tombstone and is discarded when it reaches the head.
    pub fn cancel(&mut self, token: Token) -> bool {
        match self.slots.get_mut(token.slot() as usize) {
            Some(s) if s.live && s.generation == token.generation() => {
                s.live = false;
                self.cancelled_total += 1;
                true
            }
            _ => false,
        }
    }

    /// Recycles a slot whose heap entry just popped: the generation bump
    /// invalidates every outstanding token for it, and only now — with no
    /// heap entry referencing it — may the slot be handed out again.
    fn retire(&mut self, slot: u32) -> (u32, bool) {
        let s = &mut self.slots[slot as usize];
        let generation = s.generation;
        let was_live = s.live;
        s.live = false;
        s.generation = s.generation.wrapping_add(1);
        self.free.push(slot);
        (generation, was_live)
    }

    /// Pops the next live event, advancing the clock to its fire time.
    ///
    /// Returns `None` when the calendar is empty. Cancelled events are
    /// silently skipped (and their slots recycled).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(SimTime, Token)> {
        while let Some(Reverse((at, _seq, slot))) = self.heap.pop() {
            let (generation, was_live) = self.retire(slot);
            if !was_live {
                continue;
            }
            debug_assert!(at >= self.now, "heap returned an event in the past");
            self.now = at;
            self.fired_total += 1;
            return Some((at, Token::pack(generation, slot)));
        }
        None
    }

    /// The fire time of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(&Reverse((at, _seq, slot))) = self.heap.peek() {
            if self.slots[slot as usize].live {
                return Some(at);
            }
            self.heap.pop();
            self.retire(slot);
        }
        None
    }

    /// Advances the clock to `at` without firing anything.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time or before a pending event
    /// (which would make that event fire in the past).
    pub fn advance_to(&mut self, at: SimTime) {
        assert!(at >= self.now, "cannot rewind the clock");
        if let Some(head) = self.peek_time() {
            assert!(
                at <= head,
                "advance_to({at}) would step over a pending event at {head}"
            );
        }
        self.now = at;
    }
}
