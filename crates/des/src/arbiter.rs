//! A shared-resource arbiter with priority grant order and a
//! contention-blame ledger.
//!
//! Multi-tenant serving needs to answer two questions about every shared
//! resource (accelerator queue slots, DRAM/AXI bandwidth tokens, driver
//! locks): *who gets it next*, and *who made whom wait*. The [`Arbiter`]
//! answers both as pure bookkeeping over the simulation clock — it holds
//! no callbacks and schedules no events, so the embedding simulator stays
//! in full control of the calendar (the same payload-free philosophy as
//! [`Calendar`](crate::Calendar)).
//!
//! Grant discipline: a fixed number of capacity slots; waiters queue in
//! priority order (highest first, FIFO within a band); a release grants
//! the head waiter immediately. Holders are never revoked — accelerator
//! jobs and bus bursts run to completion in this model. An optional
//! *reservation* ([`Arbiter::with_reservation`]) sets aside slots that
//! only requests at or above a priority floor may fill — the
//! memguard-/MPAM-style bandwidth guarantee that keeps latency-critical
//! pipelines from queueing behind long best-effort holds.
//!
//! Blame ledger: while any ticket waits, each wall-clock interval `dt`
//! between arbiter state changes charges every current holder an equal
//! `dt / holders` share of that victim's delay (holders are never empty
//! while anyone waits, so the shares always sum to `dt`). Waiting on
//! one's own tenant (a queue of requests behind the same app) is
//! *self-contention* and is kept out of the cross-tenant matrix. By
//! construction, for every victim:
//! `Σ_culprit blame + self_wait == total_wait`, which is the
//! conservation law `aitax-testkit` checks on every serve scenario.

use std::collections::{BTreeMap, VecDeque};

use crate::time::{SimSpan, SimTime};

/// Identifier of an active hold on the resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HoldId(u64);

/// Identifier of a queued acquisition waiting for a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ticket(u64);

/// Outcome of [`Arbiter::acquire`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Acquired {
    /// A slot was free: the caller holds it now.
    Granted(HoldId),
    /// The resource is saturated: the caller waits in the priority queue
    /// and receives this ticket back from a later [`Arbiter::release`].
    Queued(Ticket),
}

/// One entry in the arbiter's event log (see [`Arbiter::events`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArbiterEvent {
    /// A slot was granted. `waited` is zero for immediate grants and the
    /// queueing delay for grants out of the wait queue. `queue_best` is
    /// the highest priority still waiting *after* this grant — an
    /// inversion-freedom checker asserts `priority >= queue_best`.
    Grant {
        /// Grant time.
        at: SimTime,
        /// Tenant receiving the slot.
        tenant: u32,
        /// Priority of the granted request.
        priority: i8,
        /// Time spent queued before this grant.
        waited: SimSpan,
        /// Holders active after this grant (≤ capacity always).
        holds: usize,
        /// Highest priority left waiting, if any.
        queue_best: Option<i8>,
    },
    /// A request found the resource saturated and joined the queue.
    Enqueue {
        /// Arrival time.
        at: SimTime,
        /// Waiting tenant.
        tenant: u32,
        /// Request priority.
        priority: i8,
    },
    /// A hold was released.
    Release {
        /// Release time.
        at: SimTime,
        /// Tenant that held the slot.
        tenant: u32,
        /// Holders active after the release.
        holds: usize,
    },
}

#[derive(Debug, Clone, Copy)]
struct Hold {
    id: HoldId,
    tenant: u32,
}

#[derive(Debug, Clone, Copy)]
struct Waiter {
    ticket: Ticket,
    tenant: u32,
    priority: i8,
    enqueued: SimTime,
}

/// A capacity-slotted shared resource with priority grants and a blame
/// ledger. See the [module docs](self) for the model.
#[derive(Debug, Default)]
pub struct Arbiter {
    capacity: usize,
    /// Slots only requests with `priority >= reserve_floor` may fill.
    reserved: usize,
    reserve_floor: i8,
    holders: Vec<Hold>,
    queue: VecDeque<Waiter>,
    last_change: SimTime,
    next_id: u64,
    /// (victim, culprit) → waiting time charged to the culprit.
    blame: BTreeMap<(u32, u32), SimSpan>,
    /// victim → waiting time caused by the victim's own earlier requests.
    self_wait: BTreeMap<u32, SimSpan>,
    /// victim → total time spent in the wait queue.
    total_wait: BTreeMap<u32, SimSpan>,
    grants: u64,
    queued_total: u64,
    log: Option<Vec<ArbiterEvent>>,
}

impl Arbiter {
    /// An arbiter over `capacity` identical slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Arbiter {
        assert!(capacity > 0, "an arbiter needs at least one slot");
        Arbiter {
            capacity,
            ..Arbiter::default()
        }
    }

    /// An arbiter that reserves `reserved` of its `capacity` slots for
    /// requests with `priority >= floor`. Lower-priority requests see an
    /// effective capacity of `capacity - reserved`; reserved requests may
    /// fill any slot. This is how serving guarantees an interactive
    /// pipeline never queues behind two long best-effort bus holds.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `reserved >= capacity` (at least
    /// one slot must stay open to every priority, or low-priority work
    /// could never run at all).
    pub fn with_reservation(capacity: usize, reserved: usize, floor: i8) -> Arbiter {
        assert!(capacity > 0, "an arbiter needs at least one slot");
        assert!(
            reserved < capacity,
            "reservation must leave at least one general slot"
        );
        Arbiter {
            capacity,
            reserved,
            reserve_floor: floor,
            ..Arbiter::default()
        }
    }

    /// The slot count visible to a request at `priority`.
    fn cap_for(&self, priority: i8) -> usize {
        if priority >= self.reserve_floor {
            self.capacity
        } else {
            self.capacity - self.reserved
        }
    }

    /// Enables or disables the event log consumed by the testkit
    /// invariants. Off by default: serving runs are long and the ledger
    /// alone answers attribution.
    pub fn set_logging(&mut self, on: bool) {
        self.log = if on { Some(Vec::new()) } else { None };
    }

    /// Requests a slot at time `now` for `tenant` at `priority`.
    ///
    /// Time must be non-decreasing across all arbiter calls.
    pub fn acquire(&mut self, now: SimTime, tenant: u32, priority: i8) -> Acquired {
        self.settle(now);
        // Immediate grants never bypass an equal-or-higher waiter: a
        // queued waiter that this grant condition would admit would have
        // been granted at the previous release already (the queue only
        // holds requests blocked at the current holder count), and the
        // reservation floor is the only thing that makes caps differ.
        if self.holders.len() < self.cap_for(priority) {
            let id = HoldId(self.fresh());
            self.holders.push(Hold { id, tenant });
            self.grants += 1;
            self.log_grant(now, tenant, priority, SimSpan::ZERO);
            return Acquired::Granted(id);
        }
        let ticket = Ticket(self.fresh());
        let waiter = Waiter {
            ticket,
            tenant,
            priority,
            enqueued: now,
        };
        // Ahead of the first strictly-lower-priority waiter; FIFO within
        // a band (the same discipline as the kernel run queues).
        let pos = self
            .queue
            .iter()
            .position(|w| w.priority < priority)
            .unwrap_or(self.queue.len());
        self.queue.insert(pos, waiter);
        self.queued_total += 1;
        if let Some(log) = self.log.as_mut() {
            log.push(ArbiterEvent::Enqueue {
                at: now,
                tenant,
                priority,
            });
        }
        Acquired::Queued(ticket)
    }

    /// Releases a hold at time `now`. If a waiter was queued, its slot is
    /// granted immediately and `(ticket, hold)` is returned so the caller
    /// can resume whoever was parked on that ticket.
    ///
    /// # Panics
    ///
    /// Panics if `hold` is not currently held.
    pub fn release(&mut self, now: SimTime, hold: HoldId) -> Option<(Ticket, HoldId)> {
        self.settle(now);
        let pos = self
            .holders
            .iter()
            .position(|h| h.id == hold)
            // aitax-allow(panic-path): double-release is a simulator bug, not a data condition
            .expect("releasing a hold the arbiter does not know");
        let released = self.holders.swap_remove(pos);
        if let Some(log) = self.log.as_mut() {
            log.push(ArbiterEvent::Release {
                at: now,
                tenant: released.tenant,
                holds: self.holders.len(),
            });
        }
        // The queue is priority-ordered and `cap_for` is monotone in
        // priority, so if the head cannot be granted nobody behind it can.
        let grantable = self
            .queue
            .front()
            .is_some_and(|w| self.holders.len() < self.cap_for(w.priority));
        if !grantable {
            return None;
        }
        // aitax-allow(panic-path): grantable implies the queue is non-empty
        let w = self.queue.pop_front().expect("checked non-empty");
        let id = HoldId(self.fresh());
        self.holders.push(Hold {
            id,
            tenant: w.tenant,
        });
        self.grants += 1;
        self.log_grant(now, w.tenant, w.priority, now.since(w.enqueued));
        Some((w.ticket, id))
    }

    /// Charges the interval since the last state change to the current
    /// holders, one `dt / holders` share per waiting victim. Holders are
    /// never empty while the queue is non-empty (an empty arbiter grants
    /// every priority at least one slot), so the shares sum to `dt`
    /// exactly — conservation even when a reservation idles a slot.
    fn settle(&mut self, now: SimTime) {
        let dt = now.since(self.last_change);
        self.last_change = now;
        if dt == SimSpan::ZERO || self.queue.is_empty() || self.holders.is_empty() {
            return;
        }
        let share = dt / self.holders.len() as f64;
        for w in &self.queue {
            *self.total_wait.entry(w.tenant).or_default() += dt;
            for h in &self.holders {
                if h.tenant == w.tenant {
                    *self.self_wait.entry(w.tenant).or_default() += share;
                } else {
                    *self.blame.entry((w.tenant, h.tenant)).or_default() += share;
                }
            }
        }
    }

    fn fresh(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn log_grant(&mut self, at: SimTime, tenant: u32, priority: i8, waited: SimSpan) {
        if let Some(log) = self.log.as_mut() {
            let queue_best = self.queue.front().map(|w| w.priority);
            let holds = self.holders.len();
            log.push(ArbiterEvent::Grant {
                at,
                tenant,
                priority,
                waited,
                holds,
                queue_best,
            });
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Currently held slots.
    pub fn in_use(&self) -> usize {
        self.holders.len()
    }

    /// Currently queued waiters.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Total grants issued (immediate + out of the queue).
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Total requests that had to queue.
    pub fn queued_total(&self) -> u64 {
        self.queued_total
    }

    /// The cross-tenant blame ledger: `(victim, culprit) → waiting time
    /// the culprit's holds imposed on the victim`.
    pub fn blame(&self) -> &BTreeMap<(u32, u32), SimSpan> {
        &self.blame
    }

    /// Waiting time each tenant spent queued behind *its own* holds.
    pub fn self_wait(&self) -> &BTreeMap<u32, SimSpan> {
        &self.self_wait
    }

    /// Total queueing delay per victim tenant.
    pub fn total_wait(&self) -> &BTreeMap<u32, SimSpan> {
        &self.total_wait
    }

    /// The event log, when enabled with [`Arbiter::set_logging`].
    pub fn events(&self) -> &[ArbiterEvent] {
        self.log.as_deref().unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: f64) -> SimTime {
        SimTime::ZERO + SimSpan::from_ms(ms)
    }

    #[test]
    fn grants_up_to_capacity_then_queues() {
        let mut a = Arbiter::new(2);
        let g0 = a.acquire(t(0.0), 0, 0);
        let g1 = a.acquire(t(0.0), 1, 0);
        assert!(matches!(g0, Acquired::Granted(_)));
        assert!(matches!(g1, Acquired::Granted(_)));
        let q = a.acquire(t(0.0), 2, 0);
        assert!(matches!(q, Acquired::Queued(_)));
        assert_eq!(a.in_use(), 2);
        assert_eq!(a.queue_len(), 1);
    }

    #[test]
    fn release_hands_slot_to_head_waiter() {
        let mut a = Arbiter::new(1);
        let Acquired::Granted(h) = a.acquire(t(0.0), 0, 0) else {
            panic!("first acquire must grant");
        };
        let Acquired::Queued(ticket) = a.acquire(t(1.0), 1, 0) else {
            panic!("second acquire must queue");
        };
        let granted = a.release(t(5.0), h).expect("waiter gets the slot");
        assert_eq!(granted.0, ticket);
        assert_eq!(a.in_use(), 1);
        assert_eq!(a.queue_len(), 0);
    }

    #[test]
    fn priority_jumps_the_wait_queue_fifo_within_band() {
        let mut a = Arbiter::new(1);
        let Acquired::Granted(h) = a.acquire(t(0.0), 0, 0) else {
            panic!();
        };
        let Acquired::Queued(lo) = a.acquire(t(0.1), 1, 0) else {
            panic!();
        };
        let Acquired::Queued(hi_a) = a.acquire(t(0.2), 2, 2) else {
            panic!();
        };
        let Acquired::Queued(hi_b) = a.acquire(t(0.3), 3, 2) else {
            panic!();
        };
        let (first, h2) = a.release(t(1.0), h).unwrap();
        assert_eq!(first, hi_a, "highest priority first");
        let (second, h3) = a.release(t(2.0), h2).unwrap();
        assert_eq!(second, hi_b, "FIFO within the priority band");
        let (third, h4) = a.release(t(3.0), h3).unwrap();
        assert_eq!(third, lo);
        assert!(a.release(t(4.0), h4).is_none());
    }

    #[test]
    fn blame_ledger_conserves_waiting_time() {
        let mut a = Arbiter::new(1);
        // Tenant 0 holds 10ms; tenants 1 and 0 (again) wait behind it.
        let Acquired::Granted(h) = a.acquire(t(0.0), 0, 0) else {
            panic!();
        };
        let _ = a.acquire(t(0.0), 1, 0);
        let _ = a.acquire(t(0.0), 0, 0);
        let (_, h2) = a.release(t(10.0), h).unwrap();
        let _ = a.release(t(12.0), h2);
        // Victim 1 waited 12ms total: 10 blamed on tenant 0's first hold,
        // 2 on whichever tenant held during (10, 12].
        for (&victim, &total) in a.total_wait() {
            let cross: SimSpan = a
                .blame()
                .iter()
                .filter(|((v, _), _)| *v == victim)
                .map(|(_, &s)| s)
                .sum();
            let own = a.self_wait().get(&victim).copied().unwrap_or(SimSpan::ZERO);
            let sum = cross + own;
            assert!(
                (sum.as_secs() - total.as_secs()).abs() < 1e-12,
                "victim {victim}: blamed {sum} != waited {total}"
            );
        }
        // Tenant 0 waiting behind tenant 0 is self-contention.
        assert!(a.self_wait().get(&0).copied().unwrap_or(SimSpan::ZERO) > SimSpan::ZERO);
        assert!(a.blame().contains_key(&(1, 0)));
    }

    #[test]
    fn event_log_supports_invariant_replay() {
        let mut a = Arbiter::new(1);
        a.set_logging(true);
        let Acquired::Granted(h) = a.acquire(t(0.0), 0, 0) else {
            panic!();
        };
        let _ = a.acquire(t(0.5), 1, 1);
        let (_, h2) = a.release(t(2.0), h).unwrap();
        let _ = a.release(t(3.0), h2);
        let events = a.events();
        assert_eq!(events.len(), 5, "{events:?}");
        for ev in events {
            match *ev {
                ArbiterEvent::Grant {
                    priority,
                    holds,
                    queue_best,
                    ..
                } => {
                    assert!(holds <= a.capacity());
                    if let Some(best) = queue_best {
                        assert!(priority >= best, "priority inversion in {ev:?}");
                    }
                }
                ArbiterEvent::Release { holds, .. } => assert!(holds < a.capacity()),
                ArbiterEvent::Enqueue { .. } => {}
            }
        }
    }

    #[test]
    fn reservation_protects_the_priority_floor() {
        // 2 slots, 1 reserved for priority >= 2: low-priority holders can
        // saturate only the general slot.
        let mut a = Arbiter::with_reservation(2, 1, 2);
        let Acquired::Granted(h_lo) = a.acquire(t(0.0), 0, 0) else {
            panic!("first low acquire fills the general slot");
        };
        let Acquired::Queued(lo_ticket) = a.acquire(t(1.0), 1, 1) else {
            panic!("second low acquire must queue despite a free slot");
        };
        assert_eq!(a.in_use(), 1);
        // The interactive request takes the reserved slot immediately.
        let Acquired::Granted(h_hi) = a.acquire(t(2.0), 2, 2) else {
            panic!("reserved request must never queue behind low holds");
        };
        // Releasing the reserved hold does NOT admit the low waiter — the
        // general slot is still occupied.
        assert!(a.release(t(3.0), h_hi).is_none());
        assert_eq!(a.queue_len(), 1);
        // Releasing the general slot does.
        let (ticket, _) = a.release(t(5.0), h_lo).expect("low waiter admitted");
        assert_eq!(ticket, lo_ticket);
        // Conservation still holds with the reservation idling a slot.
        for (&victim, &total) in a.total_wait() {
            let cross: SimSpan = a
                .blame()
                .iter()
                .filter(|((v, _), _)| *v == victim)
                .map(|(_, &s)| s)
                .sum();
            let own = a.self_wait().get(&victim).copied().unwrap_or(SimSpan::ZERO);
            assert!(((cross + own).as_secs() - total.as_secs()).abs() < 1e-12);
        }
        // The waiter's delay splits between the low holder (entire span)
        // and the reserved holder (only while it held).
        assert!(a.blame().contains_key(&(1, 0)));
        assert!(a.blame().contains_key(&(1, 2)));
    }

    #[test]
    #[should_panic(expected = "at least one general slot")]
    fn full_reservation_rejected() {
        let _ = Arbiter::with_reservation(2, 2, 2);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_rejected() {
        let _ = Arbiter::new(0);
    }
}
