//! Property tests for the real pre-/post-processing algorithms that are
//! not already covered by the workspace-level suites: color conversion,
//! tokenizer and tracker invariants.

use aitax_pipeline::image::{ArgbImage, YuvNv21Image};
use aitax_pipeline::post::detection::{BBox, BoxTracker, Detection};
use aitax_pipeline::post::nlp::WordPieceTokenizer;
use aitax_pipeline::post::segmentation::{colorize_mask, flatten_mask};
use aitax_pipeline::post::topk::softmax;
use aitax_pipeline::preprocess;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// NV21 conversion is deterministic and per-pixel bounded: luma-only
    /// differences move RGB in the same direction.
    #[test]
    fn nv21_conversion_is_pure(w in 1usize..24, h in 1usize..24, seed in 0u64..500) {
        let img = YuvNv21Image::synthetic(w * 2, h * 2, seed);
        let a = preprocess::nv21_to_argb(&img);
        let b = preprocess::nv21_to_argb(&img);
        prop_assert_eq!(a.pixels(), b.pixels());
    }

    /// Gray NV21 inputs (neutral chroma) always produce R=G=B outputs.
    #[test]
    fn neutral_chroma_stays_gray(w in 1usize..16, h in 1usize..16, luma in 0u8..=255) {
        let (w, h) = (w * 2, h * 2);
        let mut data = vec![luma; w * h];
        data.extend(vec![128u8; w * h / 2]);
        let rgb = preprocess::nv21_to_argb(&YuvNv21Image::new(w, h, data));
        for &px in rgb.pixels() {
            let (_, r, g, b) = ArgbImage::unpack(px);
            prop_assert_eq!(r, g);
            prop_assert_eq!(g, b);
        }
    }

    /// Downscale-then-downscale equals nothing exotic: output dims are
    /// exactly as requested and resizing to 1×1 yields an average-ish
    /// value inside the source range.
    #[test]
    fn resize_to_single_pixel_is_in_range(w in 2usize..32, h in 2usize..32, seed in 0u64..100) {
        let src = preprocess::nv21_to_argb(&YuvNv21Image::synthetic(w * 2, h * 2, seed));
        let out = preprocess::resize_bilinear(&src, 1, 1);
        prop_assert_eq!(out.width(), 1);
        let (_, r, ..) = ArgbImage::unpack(out.get(0, 0));
        let rs: Vec<u8> = src.pixels().iter().map(|&p| ArgbImage::unpack(p).1).collect();
        let lo = *rs.iter().min().unwrap();
        let hi = *rs.iter().max().unwrap();
        prop_assert!(r >= lo && r <= hi);
    }

    /// Softmax output is a probability distribution for any finite input.
    #[test]
    fn softmax_is_a_distribution(v in prop::collection::vec(-50f32..50.0, 1..64)) {
        let mut v = v;
        softmax(&mut v);
        let sum: f32 = v.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(v.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    /// Tokenization is deterministic, produces only vocabulary ids, and
    /// token count never exceeds character count.
    #[test]
    fn tokenizer_sanity(words in prop::collection::vec("[a-z]{1,12}", 0..20)) {
        let t = WordPieceTokenizer::demo();
        let text = words.join(" ");
        let a = t.tokenize(&text);
        prop_assert_eq!(&a, &t.tokenize(&text));
        prop_assert!(a.len() <= text.chars().count().max(1));
    }

    /// encode_pair always produces exactly seq_len ids starting with CLS.
    #[test]
    fn encode_pair_shape(q in "[a-z ]{0,40}", ctx in "[a-z ]{0,200}", seq in 8usize..256) {
        let t = WordPieceTokenizer::demo();
        let ids = t.encode_pair(&q, &ctx, seq);
        prop_assert_eq!(ids.len(), seq);
        prop_assert_eq!(ids[0], aitax_pipeline::post::nlp::CLS_ID);
    }

    /// Colorized masks map equal classes to equal colors and different
    /// classes to different colors.
    #[test]
    fn colorize_is_injective_enough(h in 1usize..10, w in 1usize..10, c in 2usize..12) {
        let mut logits = vec![0.0f32; h * w * c];
        for px in 0..h * w {
            logits[px * c + px % c] = 1.0;
        }
        let mask = flatten_mask(&logits, h, w, c);
        let colors = colorize_mask(&mask, 0xFF);
        for (i, &cls_i) in mask.classes().iter().enumerate() {
            for (j, &cls_j) in mask.classes().iter().enumerate() {
                if cls_i == cls_j {
                    prop_assert_eq!(colors[i], colors[j]);
                }
            }
        }
    }

    /// The box tracker never emits duplicate track ids in one frame.
    #[test]
    fn tracker_ids_unique_per_frame(
        frames in prop::collection::vec(
            prop::collection::vec((0.0f32..0.9, 0.0f32..0.9), 0..8),
            1..6,
        ),
    ) {
        let mut tracker = BoxTracker::new();
        for frame in frames {
            let dets: Vec<Detection> = frame
                .iter()
                .map(|&(y, x)| Detection {
                    bbox: BBox { ymin: y, xmin: x, ymax: y + 0.1, xmax: x + 0.1 },
                    class: 1,
                    score: 0.9,
                })
                .collect();
            let n = dets.len();
            let out = tracker.update(dets, 0.15);
            let ids: std::collections::HashSet<u64> = out.iter().map(|(id, _)| *id).collect();
            prop_assert_eq!(ids.len(), n, "duplicate track id within a frame");
        }
    }
}
