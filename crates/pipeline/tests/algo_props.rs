//! Property tests for the real pre-/post-processing algorithms that are
//! not already covered by the workspace-level suites: color conversion,
//! tokenizer and tracker invariants. Randomized cases are driven by the
//! deterministic simulator RNG.

use aitax_des::SimRng;
use aitax_pipeline::image::{ArgbImage, YuvNv21Image};
use aitax_pipeline::post::detection::{BBox, BoxTracker, Detection};
use aitax_pipeline::post::nlp::WordPieceTokenizer;
use aitax_pipeline::post::segmentation::{colorize_mask, flatten_mask};
use aitax_pipeline::post::topk::softmax;
use aitax_pipeline::preprocess;

/// Random lowercase text drawn from `alphabet`, `0..=max_len` chars.
fn text_from(rng: &mut SimRng, alphabet: &[u8], max_len: usize) -> String {
    let n = rng.uniform_u64(0, max_len as u64 + 1) as usize;
    (0..n)
        .map(|_| alphabet[rng.uniform_u64(0, alphabet.len() as u64) as usize] as char)
        .collect()
}

/// NV21 conversion is deterministic and pure: converting the same frame
/// twice yields identical pixels.
#[test]
fn nv21_conversion_is_pure() {
    let mut rng = SimRng::seed_from(0xA190_0001);
    for case in 0..48 {
        let w = rng.uniform_u64(1, 24) as usize;
        let h = rng.uniform_u64(1, 24) as usize;
        let seed = rng.uniform_u64(0, 500);
        let img = YuvNv21Image::synthetic(w * 2, h * 2, seed);
        let a = preprocess::nv21_to_argb(&img);
        let b = preprocess::nv21_to_argb(&img);
        assert_eq!(a.pixels(), b.pixels(), "case {case}");
    }
}

/// Gray NV21 inputs (neutral chroma) always produce R=G=B outputs.
#[test]
fn neutral_chroma_stays_gray() {
    let mut rng = SimRng::seed_from(0xA190_0002);
    for case in 0..48 {
        let w = rng.uniform_u64(1, 16) as usize * 2;
        let h = rng.uniform_u64(1, 16) as usize * 2;
        let luma = rng.uniform_u64(0, 256) as u8;
        let mut data = vec![luma; w * h];
        data.extend(vec![128u8; w * h / 2]);
        let rgb = preprocess::nv21_to_argb(&YuvNv21Image::new(w, h, data));
        for &px in rgb.pixels() {
            let (_, r, g, b) = ArgbImage::unpack(px);
            assert_eq!(r, g, "case {case}");
            assert_eq!(g, b, "case {case}");
        }
    }
}

/// Resizing to 1×1 yields an average-ish value inside the source range,
/// with output dims exactly as requested.
#[test]
fn resize_to_single_pixel_is_in_range() {
    let mut rng = SimRng::seed_from(0xA190_0003);
    for case in 0..48 {
        let w = rng.uniform_u64(2, 32) as usize;
        let h = rng.uniform_u64(2, 32) as usize;
        let seed = rng.uniform_u64(0, 100);
        let src = preprocess::nv21_to_argb(&YuvNv21Image::synthetic(w * 2, h * 2, seed));
        let out = preprocess::resize_bilinear(&src, 1, 1);
        assert_eq!(out.width(), 1, "case {case}");
        let (_, r, ..) = ArgbImage::unpack(out.get(0, 0));
        let rs: Vec<u8> = src
            .pixels()
            .iter()
            .map(|&p| ArgbImage::unpack(p).1)
            .collect();
        let lo = *rs.iter().min().unwrap();
        let hi = *rs.iter().max().unwrap();
        assert!(r >= lo && r <= hi, "case {case}: {r} outside [{lo},{hi}]");
    }
}

/// Softmax output is a probability distribution for any finite input.
#[test]
fn softmax_is_a_distribution() {
    let mut rng = SimRng::seed_from(0xA190_0004);
    for case in 0..48 {
        let n = rng.uniform_u64(1, 64) as usize;
        let mut v: Vec<f32> = (0..n).map(|_| rng.uniform(-50.0, 50.0) as f32).collect();
        softmax(&mut v);
        let sum: f32 = v.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "case {case}: sum {sum}");
        assert!(v.iter().all(|&p| (0.0..=1.0).contains(&p)), "case {case}");
    }
}

/// Tokenization is deterministic, produces only vocabulary ids, and
/// token count never exceeds character count.
#[test]
fn tokenizer_sanity() {
    let mut rng = SimRng::seed_from(0xA190_0005);
    let t = WordPieceTokenizer::demo();
    for case in 0..48 {
        let nwords = rng.uniform_u64(0, 20) as usize;
        let words: Vec<String> = (0..nwords)
            .map(|_| {
                let n = rng.uniform_u64(1, 13) as usize;
                (0..n)
                    .map(|_| (b'a' + rng.uniform_u64(0, 26) as u8) as char)
                    .collect()
            })
            .collect();
        let text = words.join(" ");
        let a = t.tokenize(&text);
        assert_eq!(&a, &t.tokenize(&text), "case {case}");
        assert!(a.len() <= text.chars().count().max(1), "case {case}");
    }
}

/// encode_pair always produces exactly seq_len ids starting with CLS.
#[test]
fn encode_pair_shape() {
    let mut rng = SimRng::seed_from(0xA190_0006);
    let t = WordPieceTokenizer::demo();
    let alphabet: Vec<u8> = (b'a'..=b'z').chain(std::iter::once(b' ')).collect();
    for case in 0..48 {
        let q = text_from(&mut rng, &alphabet, 40);
        let ctx = text_from(&mut rng, &alphabet, 200);
        let seq = rng.uniform_u64(8, 256) as usize;
        let ids = t.encode_pair(&q, &ctx, seq);
        assert_eq!(ids.len(), seq, "case {case}");
        assert_eq!(ids[0], aitax_pipeline::post::nlp::CLS_ID, "case {case}");
    }
}

/// Colorized masks map equal classes to equal colors.
#[test]
fn colorize_is_injective_enough() {
    let mut rng = SimRng::seed_from(0xA190_0007);
    for case in 0..48 {
        let h = rng.uniform_u64(1, 10) as usize;
        let w = rng.uniform_u64(1, 10) as usize;
        let c = rng.uniform_u64(2, 12) as usize;
        let mut logits = vec![0.0f32; h * w * c];
        for px in 0..h * w {
            logits[px * c + px % c] = 1.0;
        }
        let mask = flatten_mask(&logits, h, w, c);
        let colors = colorize_mask(&mask, 0xFF);
        for (i, &cls_i) in mask.classes().iter().enumerate() {
            for (j, &cls_j) in mask.classes().iter().enumerate() {
                if cls_i == cls_j {
                    assert_eq!(colors[i], colors[j], "case {case}");
                }
            }
        }
    }
}

/// The box tracker never emits duplicate track ids in one frame.
#[test]
fn tracker_ids_unique_per_frame() {
    let mut rng = SimRng::seed_from(0xA190_0008);
    for case in 0..48 {
        let nframes = rng.uniform_u64(1, 6) as usize;
        let mut tracker = BoxTracker::new();
        for _ in 0..nframes {
            let nboxes = rng.uniform_u64(0, 8) as usize;
            let dets: Vec<Detection> = (0..nboxes)
                .map(|_| {
                    let y = rng.uniform(0.0, 0.9) as f32;
                    let x = rng.uniform(0.0, 0.9) as f32;
                    Detection {
                        bbox: BBox {
                            ymin: y,
                            xmin: x,
                            ymax: y + 0.1,
                            xmax: x + 0.1,
                        },
                        class: 1,
                        score: 0.9,
                    }
                })
                .collect();
            let n = dets.len();
            let out = tracker.update(dets, 0.15);
            let ids: std::collections::HashSet<u64> = out.iter().map(|(id, _)| *id).collect();
            assert_eq!(
                ids.len(),
                n,
                "case {case}: duplicate track id within a frame"
            );
        }
    }
}
