//! Image buffer types: the raw camera format and the bitmap format.

/// A camera frame in Android's YUV NV21 format (paper §II-B, "Bitmap
/// formatting": "retrieve a camera frame in the YUV NV21 format using the
/// Android Camera API").
///
/// NV21 stores a full-resolution Y (luma) plane followed by an interleaved
/// VU plane at quarter resolution (2×2 subsampling).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct YuvNv21Image {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl YuvNv21Image {
    /// Wraps raw NV21 bytes.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are zero or odd (NV21 requires even spatial
    /// dimensions), or if `data` is not exactly `w*h + 2*(w/2)*(h/2)`
    /// bytes.
    pub fn new(width: usize, height: usize, data: Vec<u8>) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be non-zero");
        assert!(
            width.is_multiple_of(2) && height.is_multiple_of(2),
            "NV21 requires even dimensions, got {width}x{height}"
        );
        let expected = width * height + 2 * (width / 2) * (height / 2);
        assert_eq!(
            data.len(),
            expected,
            "NV21 {width}x{height} needs {expected} bytes"
        );
        YuvNv21Image {
            width,
            height,
            data,
        }
    }

    /// Generates a deterministic synthetic frame: smooth luma gradients
    /// with a seed-positioned bright blob and mild chroma variation, so
    /// pre-processing exercises non-trivial pixel values.
    pub fn synthetic(width: usize, height: usize, seed: u64) -> Self {
        assert!(
            width.is_multiple_of(2) && height.is_multiple_of(2),
            "NV21 requires even dims"
        );
        let mut data = vec![0u8; width * height + 2 * (width / 2) * (height / 2)];
        let bx = (seed as usize * 37) % width;
        let by = (seed as usize * 61) % height;
        for y in 0..height {
            for x in 0..width {
                let grad = (255 * x / width.max(1)) as i32;
                let dy = y as i32 - by as i32;
                let dx = x as i32 - bx as i32;
                let d2 = dx * dx + dy * dy;
                let blob = if d2 < 400 { 80 - d2 / 6 } else { 0 };
                data[y * width + x] = (grad / 2 + 64 + blob).clamp(0, 255) as u8;
            }
        }
        let chroma_base = width * height;
        for cy in 0..height / 2 {
            for cx in 0..width / 2 {
                let idx = chroma_base + (cy * (width / 2) + cx) * 2;
                data[idx] = (128 + ((cx * 31 + seed as usize) % 64) as i32 - 32) as u8; // V
                data[idx + 1] = (128 + ((cy * 17) % 48) as i32 - 24) as u8; // U
            }
        }
        YuvNv21Image {
            width,
            height,
            data,
        }
    }

    /// Frame width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Frame height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Raw NV21 bytes (Y plane then interleaved VU).
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Luma at a pixel.
    pub fn luma(&self, x: usize, y: usize) -> u8 {
        self.data[y * self.width + x]
    }

    /// (V, U) chroma pair covering a pixel.
    pub fn chroma(&self, x: usize, y: usize) -> (u8, u8) {
        let base = self.width * self.height;
        let idx = base + ((y / 2) * (self.width / 2) + x / 2) * 2;
        (self.data[idx], self.data[idx + 1])
    }

    /// Total payload size in bytes.
    pub fn byte_len(&self) -> usize {
        self.data.len()
    }
}

/// A bitmap in ARGB8888 layout — the format TensorFlow-based Android apps
/// convert camera frames into (§II-B).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgbImage {
    width: usize,
    height: usize,
    /// Packed 0xAARRGGBB pixels, row-major.
    data: Vec<u32>,
}

impl ArgbImage {
    /// Creates a black, fully-opaque image.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be non-zero");
        ArgbImage {
            width,
            height,
            data: vec![0xFF00_0000; width * height],
        }
    }

    /// Wraps packed pixels.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height`.
    pub fn from_pixels(width: usize, height: usize, data: Vec<u32>) -> Self {
        assert_eq!(data.len(), width * height, "pixel count mismatch");
        assert!(width > 0 && height > 0, "image dimensions must be non-zero");
        ArgbImage {
            width,
            height,
            data,
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Packed pixels, row-major.
    pub fn pixels(&self) -> &[u32] {
        &self.data
    }

    /// Mutable packed pixels.
    pub fn pixels_mut(&mut self) -> &mut [u32] {
        &mut self.data
    }

    /// The pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, x: usize, y: usize) -> u32 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[y * self.width + x]
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, x: usize, y: usize, argb: u32) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[y * self.width + x] = argb;
    }

    /// Splits a packed pixel into `(a, r, g, b)`.
    pub fn unpack(argb: u32) -> (u8, u8, u8, u8) {
        (
            (argb >> 24) as u8,
            (argb >> 16) as u8,
            (argb >> 8) as u8,
            argb as u8,
        )
    }

    /// Packs `(a, r, g, b)` into a pixel.
    pub fn pack(a: u8, r: u8, g: u8, b: u8) -> u32 {
        (a as u32) << 24 | (r as u32) << 16 | (g as u32) << 8 | b as u32
    }

    /// Payload size in bytes.
    pub fn byte_len(&self) -> usize {
        self.data.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nv21_layout_size() {
        let img = YuvNv21Image::synthetic(64, 48, 1);
        assert_eq!(img.byte_len(), 64 * 48 * 3 / 2);
        assert_eq!(img.width(), 64);
        assert_eq!(img.height(), 48);
    }

    #[test]
    #[should_panic(expected = "even dimensions")]
    fn odd_nv21_dims_rejected() {
        YuvNv21Image::new(63, 48, vec![0; 63 * 48 * 3 / 2]);
    }

    #[test]
    #[should_panic(expected = "bytes")]
    fn wrong_nv21_payload_rejected() {
        YuvNv21Image::new(64, 48, vec![0; 10]);
    }

    #[test]
    fn synthetic_frames_are_deterministic_and_varied() {
        let a = YuvNv21Image::synthetic(64, 48, 9);
        let b = YuvNv21Image::synthetic(64, 48, 9);
        let c = YuvNv21Image::synthetic(64, 48, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Not a constant image.
        let min = a.bytes().iter().min().unwrap();
        let max = a.bytes().iter().max().unwrap();
        assert!(max > min);
    }

    #[test]
    fn chroma_subsampling_shares_2x2_blocks() {
        let img = YuvNv21Image::synthetic(8, 8, 3);
        assert_eq!(img.chroma(0, 0), img.chroma(1, 1));
        assert_eq!(img.chroma(4, 6), img.chroma(5, 7));
    }

    #[test]
    fn argb_pack_unpack_round_trip() {
        let px = ArgbImage::pack(0xFF, 0x12, 0x34, 0x56);
        assert_eq!(px, 0xFF12_3456);
        assert_eq!(ArgbImage::unpack(px), (0xFF, 0x12, 0x34, 0x56));
    }

    #[test]
    fn argb_get_set() {
        let mut img = ArgbImage::new(4, 3);
        img.set(2, 1, 0xFFAB_CDEF);
        assert_eq!(img.get(2, 1), 0xFFAB_CDEF);
        assert_eq!(img.get(0, 0), 0xFF00_0000);
        assert_eq!(img.byte_len(), 48);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn argb_oob_panics() {
        ArgbImage::new(2, 2).get(2, 0);
    }
}
