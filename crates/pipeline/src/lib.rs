//! Real pre-/post-processing algorithms for mobile ML pipelines.
//!
//! Section II of the paper walks through every algorithmic stage that wraps
//! model execution: bitmap formatting (YUV NV21 → ARGB8888), scale/crop,
//! normalization, rotation, type conversion, and the task-specific
//! post-processing (topK, dequantization, mask flattening, keypoint
//! decoding, box decoding, tokenization). This crate implements each of
//! them **for real**, operating on actual pixel buffers — they are the code
//! paths the paper's "AI tax: Algorithms" category measures — plus a
//! calibrated [`cost`] model that maps the work they perform onto the
//! simulated timeline (native code vs. the managed Java/JNI path real
//! Android apps take).
//!
//! # Example: the classification pre-processing chain
//!
//! ```
//! use aitax_pipeline::image::YuvNv21Image;
//! use aitax_pipeline::preprocess;
//!
//! // A 64×48 camera frame (any content).
//! let frame = YuvNv21Image::synthetic(64, 48, 7);
//! let argb = preprocess::nv21_to_argb(&frame);
//! let cropped = preprocess::center_crop(&argb, 40, 40);
//! let scaled = preprocess::resize_bilinear(&cropped, 24, 24);
//! let tensor = preprocess::normalize_to_tensor(&scaled, 127.5, 127.5);
//! assert_eq!(tensor.shape().dims(), &[1, 24, 24, 3]);
//! ```

pub mod cost;
pub mod image;
pub mod post;
pub mod preprocess;

pub use cost::{CostModel, PixelOp, RuntimeKind};
pub use image::{ArgbImage, YuvNv21Image};
