//! Image-segmentation post-processing: mask flattening.
//!
//! DeepLab-v3 emits per-pixel class logits `[H × W × num_classes]`; the
//! app flattens them to a class-index mask and a color overlay (Table I
//! lists "mask flattening" as DeepLab's post-processing task; §IV-A notes
//! segmentation "require[s] more intensive data processing on the model
//! output").

/// A flattened segmentation mask: one class index per pixel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentationMask {
    width: usize,
    height: usize,
    classes: Vec<u16>,
}

impl SegmentationMask {
    /// Mask width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Mask height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Per-pixel class indices, row-major.
    pub fn classes(&self) -> &[u16] {
        &self.classes
    }

    /// Class at a pixel.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn class_at(&self, x: usize, y: usize) -> u16 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.classes[y * self.width + x]
    }

    /// Histogram of class occurrence (class index → pixel count), sorted
    /// by descending count — the "{people, forest, person, lamps, ...}"
    /// summary in the paper's Fig. 2.
    pub fn class_histogram(&self) -> Vec<(u16, usize)> {
        let mut counts = std::collections::BTreeMap::new();
        for &c in &self.classes {
            *counts.entry(c).or_insert(0usize) += 1;
        }
        let mut v: Vec<(u16, usize)> = counts.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }
}

/// Flattens per-pixel logits `[h × w × num_classes]` to an argmax mask.
///
/// # Panics
///
/// Panics if `logits.len() != h * w * num_classes` or `num_classes == 0`.
pub fn flatten_mask(logits: &[f32], h: usize, w: usize, num_classes: usize) -> SegmentationMask {
    assert!(num_classes > 0, "need at least one class");
    assert_eq!(logits.len(), h * w * num_classes, "logit tensor length");
    let mut classes = Vec::with_capacity(h * w);
    for px in 0..h * w {
        let base = px * num_classes;
        let mut best = 0usize;
        let mut best_v = logits[base];
        for c in 1..num_classes {
            let v = logits[base + c];
            if v > best_v {
                best_v = v;
                best = c;
            }
        }
        classes.push(best as u16);
    }
    SegmentationMask {
        width: w,
        height: h,
        classes,
    }
}

/// Renders a mask to packed ARGB pixels with a deterministic palette —
/// the overlay composition step segmentation apps run per frame.
pub fn colorize_mask(mask: &SegmentationMask, alpha: u8) -> Vec<u32> {
    mask.classes()
        .iter()
        .map(|&c| {
            let r = (c.wrapping_mul(97) % 256) as u32;
            let g = (c.wrapping_mul(53).wrapping_add(80) % 256) as u32;
            let b = (c.wrapping_mul(29).wrapping_add(160) % 256) as u32;
            (alpha as u32) << 24 | r << 16 | g << 8 | b
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_picks_argmax_per_pixel() {
        // 1×2 image, 3 classes.
        let logits = vec![
            0.1, 0.9, 0.0, // pixel 0 → class 1
            0.5, 0.2, 0.7, // pixel 1 → class 2
        ];
        let mask = flatten_mask(&logits, 1, 2, 3);
        assert_eq!(mask.classes(), &[1, 2]);
        assert_eq!(mask.class_at(0, 0), 1);
        assert_eq!(mask.class_at(1, 0), 2);
    }

    #[test]
    fn ties_resolve_to_lowest_class() {
        let logits = vec![0.5, 0.5];
        let mask = flatten_mask(&logits, 1, 1, 2);
        assert_eq!(mask.classes(), &[0]);
    }

    #[test]
    fn histogram_sorts_by_count() {
        let logits = vec![
            1.0, 0.0, // class 0
            1.0, 0.0, // class 0
            0.0, 1.0, // class 1
        ];
        let mask = flatten_mask(&logits, 1, 3, 2);
        assert_eq!(mask.class_histogram(), vec![(0, 2), (1, 1)]);
    }

    #[test]
    fn colorize_is_deterministic_and_alpha_respected() {
        let logits = vec![1.0, 0.0, 0.0, 1.0];
        let mask = flatten_mask(&logits, 1, 2, 2);
        let px = colorize_mask(&mask, 0x80);
        assert_eq!(px.len(), 2);
        assert!(px.iter().all(|p| p >> 24 == 0x80));
        assert_ne!(px[0], px[1]);
        assert_eq!(px, colorize_mask(&mask, 0x80));
    }

    #[test]
    #[should_panic(expected = "logit tensor length")]
    fn wrong_length_panics() {
        flatten_mask(&[0.0; 5], 1, 2, 3);
    }

    #[test]
    fn deeplab_scale_mask() {
        // DeepLab-v3 emits 513×513×21 — make sure the full-size path works.
        let (h, w, c) = (65, 65, 21); // scaled-down but same structure
        let mut logits = vec![0.0f32; h * w * c];
        for px in 0..h * w {
            logits[px * c + (px % c)] = 1.0;
        }
        let mask = flatten_mask(&logits, h, w, c);
        assert_eq!(mask.classes().len(), h * w);
        assert_eq!(mask.class_at(0, 0), 0);
        assert_eq!(mask.class_at(1, 0), 1);
    }
}
