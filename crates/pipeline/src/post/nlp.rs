//! Language-model processing: WordPiece tokenization and logit handling.
//!
//! Mobile BERT is the one non-vision benchmark in Table I; its
//! pre-processing task is *tokenization* and its post-processing computes
//! logits (for question answering: start/end span scores).

use std::collections::BTreeMap;

/// A WordPiece tokenizer with greedy longest-match-first subword splitting,
/// as used by BERT-family models.
#[derive(Debug, Clone)]
pub struct WordPieceTokenizer {
    vocab: BTreeMap<String, u32>,
    unk_id: u32,
    max_chars_per_word: usize,
}

/// Token id of `[CLS]` in the built-in demo vocabulary.
pub const CLS_ID: u32 = 101;
/// Token id of `[SEP]` in the built-in demo vocabulary.
pub const SEP_ID: u32 = 102;

impl WordPieceTokenizer {
    /// Builds a tokenizer from `(token, id)` pairs.
    ///
    /// The vocabulary must contain `[UNK]`.
    ///
    /// # Panics
    ///
    /// Panics if `[UNK]` is missing.
    pub fn new(vocab: impl IntoIterator<Item = (String, u32)>) -> Self {
        let vocab: BTreeMap<String, u32> = vocab.into_iter().collect();
        // aitax-allow(panic-path): documented constructor contract: the vocabulary must contain [UNK]
        let unk_id = *vocab.get("[UNK]").expect("vocabulary must contain [UNK]");
        WordPieceTokenizer {
            vocab,
            unk_id,
            max_chars_per_word: 100,
        }
    }

    /// A small built-in vocabulary good enough for tests and the
    /// MobileBERT benchmark driver (common English subwords).
    pub fn demo() -> Self {
        let words = [
            "[PAD]", "[UNK]", "[CLS]", "[SEP]", "the", "a", "an", "of", "to", "and", "in", "is",
            "it", "on", "what", "who", "when", "where", "how", "why", "do", "does", "did", "can",
            "could", "phone", "time", "run", "runs", "model", "neural", "network", "net", "work",
            "works", "mobile", "learn", "learning", "machine", "deep", "fast", "slow", "ai", "tax",
            "late", "latency", "##s", "##ing", "##ed", "##er", "##est", "##ly", "##ness", "##work",
            "##net", "##phone", "per", "form", "##form", "##ance", "bench", "##mark", "quick",
            "brown", "fox", "jump", "##ump", "lazy", "dog", "over",
        ];
        let mut vocab: Vec<(String, u32)> = words
            .iter()
            .enumerate()
            .map(|(i, w)| (w.to_string(), i as u32 + 200))
            .collect();
        // Stable special ids matching BERT conventions.
        vocab.push(("[CLS]".into(), CLS_ID));
        vocab.push(("[SEP]".into(), SEP_ID));
        vocab.retain(|(w, id)| !((w == "[CLS]" || w == "[SEP]") && *id >= 200));
        WordPieceTokenizer::new(vocab)
    }

    /// Vocabulary size.
    pub fn vocab_len(&self) -> usize {
        self.vocab.len()
    }

    /// Lower-cases, strips punctuation into separate words, then applies
    /// greedy WordPiece splitting. Unknown words map to `[UNK]`.
    pub fn tokenize(&self, text: &str) -> Vec<u32> {
        let mut ids = Vec::new();
        for word in Self::basic_tokenize(text) {
            ids.extend(self.wordpiece(&word));
        }
        ids
    }

    /// Builds a BERT QA input: `[CLS] question [SEP] context [SEP]`,
    /// truncated/padded to `seq_len` (padding id 0).
    pub fn encode_pair(&self, question: &str, context: &str, seq_len: usize) -> Vec<u32> {
        let mut ids = vec![CLS_ID];
        ids.extend(self.tokenize(question));
        ids.push(SEP_ID);
        ids.extend(self.tokenize(context));
        ids.push(SEP_ID);
        ids.truncate(seq_len);
        while ids.len() < seq_len {
            ids.push(0);
        }
        ids
    }

    fn basic_tokenize(text: &str) -> Vec<String> {
        let mut words = Vec::new();
        let mut cur = String::new();
        for ch in text.chars() {
            if ch.is_alphanumeric() {
                cur.extend(ch.to_lowercase());
            } else {
                if !cur.is_empty() {
                    words.push(std::mem::take(&mut cur));
                }
                if !ch.is_whitespace() {
                    words.push(ch.to_string());
                }
            }
        }
        if !cur.is_empty() {
            words.push(cur);
        }
        words
    }

    fn wordpiece(&self, word: &str) -> Vec<u32> {
        if word.chars().count() > self.max_chars_per_word {
            return vec![self.unk_id];
        }
        let chars: Vec<char> = word.chars().collect();
        let mut out = Vec::new();
        let mut start = 0;
        while start < chars.len() {
            let mut end = chars.len();
            let mut found = None;
            while end > start {
                let mut piece: String = chars[start..end].iter().collect();
                if start > 0 {
                    piece = format!("##{piece}");
                }
                if let Some(&id) = self.vocab.get(&piece) {
                    found = Some(id);
                    break;
                }
                end -= 1;
            }
            match found {
                Some(id) => {
                    out.push(id);
                    start = end;
                }
                None => return vec![self.unk_id],
            }
        }
        out
    }
}

/// Extracts the best answer span from QA start/end logits.
///
/// Returns `(start_index, end_index, score)` maximizing
/// `start_logit + end_logit` with `start ≤ end ≤ start + max_span`.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn best_answer_span(
    start_logits: &[f32],
    end_logits: &[f32],
    max_span: usize,
) -> (usize, usize, f32) {
    assert_eq!(
        start_logits.len(),
        end_logits.len(),
        "logit length mismatch"
    );
    assert!(!start_logits.is_empty(), "logits cannot be empty");
    let mut best = (0usize, 0usize, f32::NEG_INFINITY);
    for (s, &s_logit) in start_logits.iter().enumerate() {
        let e_hi = (s + max_span).min(end_logits.len() - 1);
        for (off, &e_logit) in end_logits[s..=e_hi].iter().enumerate() {
            let score = s_logit + e_logit;
            if score > best.2 {
                best = (s, s + off, score);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_known_words() {
        let t = WordPieceTokenizer::demo();
        let ids = t.tokenize("the quick brown fox");
        assert_eq!(ids.len(), 4);
        assert!(!ids.contains(&t.unk_id));
    }

    #[test]
    fn subword_splitting_uses_continuations() {
        let t = WordPieceTokenizer::demo();
        // "benchmark" = "bench" + "##mark" (the whole word is not in the
        // vocabulary, its pieces are).
        let ids = t.tokenize("benchmark");
        assert_eq!(ids.len(), 2);
        let bench = t.vocab["bench"];
        let mark = t.vocab["##mark"];
        assert_eq!(ids, vec![bench, mark]);
    }

    #[test]
    fn unknown_words_map_to_unk() {
        let t = WordPieceTokenizer::demo();
        let ids = t.tokenize("zzzqqq");
        assert_eq!(ids, vec![t.unk_id]);
    }

    #[test]
    fn punctuation_splits_words() {
        let t = WordPieceTokenizer::demo();
        let with = t.tokenize("the,fox");
        let without = t.tokenize("the fox");
        // Comma becomes its own (unknown) token.
        assert_eq!(with.len(), without.len() + 1);
    }

    #[test]
    fn case_insensitive() {
        let t = WordPieceTokenizer::demo();
        assert_eq!(t.tokenize("The FOX"), t.tokenize("the fox"));
    }

    #[test]
    fn encode_pair_layout() {
        let t = WordPieceTokenizer::demo();
        let ids = t.encode_pair("what is ai", "ai is fast", 16);
        assert_eq!(ids.len(), 16);
        assert_eq!(ids[0], CLS_ID);
        let seps = ids.iter().filter(|&&i| i == SEP_ID).count();
        assert_eq!(seps, 2);
        // Padded with zeros at the end.
        assert_eq!(*ids.last().unwrap(), 0);
    }

    #[test]
    fn encode_pair_truncates() {
        let t = WordPieceTokenizer::demo();
        let long = "the quick brown fox ".repeat(50);
        let ids = t.encode_pair("what", &long, 32);
        assert_eq!(ids.len(), 32);
    }

    #[test]
    fn answer_span_maximizes_sum() {
        let start = [0.1, 5.0, 0.2, 0.0];
        let end = [0.0, 0.1, 4.0, 0.3];
        let (s, e, score) = best_answer_span(&start, &end, 3);
        assert_eq!((s, e), (1, 2));
        assert!((score - 9.0).abs() < 1e-6);
    }

    #[test]
    fn answer_span_respects_max_len() {
        let start = [5.0, 0.0, 0.0, 0.0];
        let end = [0.0, 0.0, 0.0, 5.0];
        // span 0..3 disallowed with max_span 1 → best within window.
        let (s, e, _) = best_answer_span(&start, &end, 1);
        assert!(e - s <= 1);
    }

    #[test]
    #[should_panic(expected = "must contain [UNK]")]
    fn vocab_without_unk_panics() {
        WordPieceTokenizer::new(vec![("hello".to_string(), 1)]);
    }
}
