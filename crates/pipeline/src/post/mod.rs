//! Post-processing algorithms (paper §II-E).
//!
//! "Post-processing refers to the remaining computations on the model's
//! outputs before presenting them to the user. As with pre-processing
//! algorithms, the details are task-dependent." One module per Table I
//! post-processing task:
//!
//! * [`topk`] — classification (`topK`, dequantization),
//! * [`detection`] — SSD box decoding + non-maximum suppression and the
//!   bounding-box tracking dashcam-style apps run per frame,
//! * [`keypoints`] — PoseNet heatmap/offset decoding ("an application
//!   using PoseNet must map the detected key points to the image"),
//! * [`segmentation`] — DeepLab mask flattening,
//! * [`nlp`] — MobileBERT WordPiece tokenization and logit handling.

pub mod detection;
pub mod keypoints;
pub mod nlp;
pub mod segmentation;
pub mod topk;
