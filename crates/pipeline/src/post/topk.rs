//! Classification post-processing: softmax scores → top-K labels.
//!
//! "The outputs of a model are sorted by the likelihood of labels, and so
//! choosing topK elements is simply an array slice operation" once sorted
//! (§II-E). For quantized models a dequantization pass precedes the
//! selection (the tasks marked "*" in Table I).

use aitax_tensor::{Tensor, TensorError};

/// One classification result.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassScore {
    /// Index into the label file.
    pub class: usize,
    /// Score (probability or logit, as the model emits).
    pub score: f32,
}

/// Selects the `k` highest-scoring classes from a score slice, in
/// descending score order (ties broken by lower class index).
pub fn top_k(scores: &[f32], k: usize) -> Vec<ClassScore> {
    let mut indexed: Vec<ClassScore> = scores
        .iter()
        .enumerate()
        .map(|(class, &score)| ClassScore { class, score })
        .collect();
    indexed.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.class.cmp(&b.class))
    });
    indexed.truncate(k);
    indexed
}

/// Dequantizes a quantized score tensor and selects top-K — the combined
/// post-processing chain of quantized classifiers.
///
/// # Errors
///
/// Returns an error if the tensor is not I8 or lacks quantization
/// parameters.
pub fn top_k_quantized(scores: &Tensor, k: usize) -> Result<Vec<ClassScore>, TensorError> {
    let deq = scores.dequantize()?;
    Ok(top_k(deq.as_f32()?, k))
}

/// In-place softmax (used when a model emits raw logits).
pub fn softmax(logits: &mut [f32]) {
    if logits.is_empty() {
        return;
    }
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in logits.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in logits.iter_mut() {
        *v /= sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aitax_tensor::QuantParams;

    #[test]
    fn top_k_orders_descending() {
        let scores = [0.1, 0.7, 0.05, 0.15];
        let top = top_k(&scores, 3);
        assert_eq!(top[0].class, 1);
        assert_eq!(top[1].class, 3);
        assert_eq!(top[2].class, 0);
    }

    #[test]
    fn top_k_clamps_to_len() {
        let top = top_k(&[0.5, 0.5], 10);
        assert_eq!(top.len(), 2);
        // Tie broken by class index.
        assert_eq!(top[0].class, 0);
    }

    #[test]
    fn top_k_empty_scores() {
        assert!(top_k(&[], 5).is_empty());
    }

    #[test]
    fn quantized_top_k_matches_float_path() {
        let params = QuantParams::from_range(0.0, 1.0);
        let float_scores = [0.02f32, 0.9, 0.3, 0.6];
        let q: Vec<i8> = float_scores.iter().map(|&s| params.quantize(s)).collect();
        let t = Tensor::from_i8(&[4], q, params);
        let top = top_k_quantized(&t, 2).unwrap();
        assert_eq!(top[0].class, 1);
        assert_eq!(top[1].class, 3);
        assert!((top[0].score - 0.9).abs() <= params.scale());
    }

    #[test]
    fn softmax_normalizes() {
        let mut v = vec![1.0f32, 2.0, 3.0];
        softmax(&mut v);
        let sum: f32 = v.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(v[2] > v[1] && v[1] > v[0]);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let mut v = vec![1000.0f32, 1001.0];
        softmax(&mut v);
        assert!(v.iter().all(|x| x.is_finite()));
        assert!((v[0] + v[1] - 1.0).abs() < 1e-6);
    }
}
