//! PoseNet post-processing: heatmap + offset decoding.
//!
//! "An application using PoseNet must map the detected key points to the
//! image" (§II-E). PoseNet emits, per keypoint, a coarse score heatmap and
//! a pair of offset maps; decoding picks the argmax heatmap cell and
//! refines it with the offsets, then scales to image coordinates.

/// One decoded keypoint.
#[derive(Debug, Clone, PartialEq)]
pub struct Keypoint {
    /// Keypoint index (0..17 for the standard PoseNet skeleton).
    pub index: usize,
    /// y position in pixels of the *input image*.
    pub y: f32,
    /// x position in pixels of the input image.
    pub x: f32,
    /// Confidence score (sigmoid of the heatmap value).
    pub score: f32,
}

/// Number of keypoints in the standard PoseNet skeleton.
pub const POSENET_KEYPOINTS: usize = 17;

/// Decodes keypoints from PoseNet outputs.
///
/// * `heatmaps` — `[grid_h × grid_w × num_keypoints]` raw scores,
/// * `offsets` — `[grid_h × grid_w × 2·num_keypoints]` (y offsets first),
/// * `stride` — output stride (input pixels per heatmap cell),
///
/// # Panics
///
/// Panics if slice lengths disagree with the grid dimensions.
pub fn decode_keypoints(
    heatmaps: &[f32],
    offsets: &[f32],
    grid_h: usize,
    grid_w: usize,
    num_keypoints: usize,
    stride: usize,
) -> Vec<Keypoint> {
    assert_eq!(
        heatmaps.len(),
        grid_h * grid_w * num_keypoints,
        "heatmap tensor length"
    );
    assert_eq!(
        offsets.len(),
        grid_h * grid_w * 2 * num_keypoints,
        "offset tensor length"
    );
    let mut out = Vec::with_capacity(num_keypoints);
    for k in 0..num_keypoints {
        let mut best = f32::NEG_INFINITY;
        let (mut by, mut bx) = (0usize, 0usize);
        for y in 0..grid_h {
            for x in 0..grid_w {
                let v = heatmaps[(y * grid_w + x) * num_keypoints + k];
                if v > best {
                    best = v;
                    by = y;
                    bx = x;
                }
            }
        }
        let off_base = (by * grid_w + bx) * 2 * num_keypoints;
        let dy = offsets[off_base + k];
        let dx = offsets[off_base + num_keypoints + k];
        out.push(Keypoint {
            index: k,
            y: by as f32 * stride as f32 + dy,
            x: bx as f32 * stride as f32 + dx,
            score: sigmoid(best),
        });
    }
    out
}

/// Mean score of a decoded pose (the "pose confidence").
pub fn pose_score(keypoints: &[Keypoint]) -> f32 {
    if keypoints.is_empty() {
        return 0.0;
    }
    keypoints.iter().map(|k| k.score).sum::<f32>() / keypoints.len() as f32
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(grid_h: usize, grid_w: usize, k: usize) -> (Vec<f32>, Vec<f32>) {
        (
            vec![0.0; grid_h * grid_w * k],
            vec![0.0; grid_h * grid_w * 2 * k],
        )
    }

    #[test]
    fn decodes_argmax_cell_with_offset() {
        let (mut heat, mut off) = grid(4, 4, 1);
        // Peak at cell (2, 3).
        heat[2 * 4 + 3] = 5.0; // channels = 1
        let base = (2 * 4 + 3) * 2;
        off[base] = 3.5; // dy
        off[base + 1] = -1.25; // dx
        let kps = decode_keypoints(&heat, &off, 4, 4, 1, 16);
        assert_eq!(kps.len(), 1);
        assert!((kps[0].y - (2.0 * 16.0 + 3.5)).abs() < 1e-6);
        assert!((kps[0].x - (3.0 * 16.0 - 1.25)).abs() < 1e-6);
        assert!(kps[0].score > 0.99);
    }

    #[test]
    fn each_keypoint_decodes_independently() {
        let (mut heat, off) = grid(3, 3, 2);
        heat[0] = 9.0; // kp 0 peak at cell (0,0)
        heat[(2 * 3 + 2) * 2 + 1] = 9.0; // kp 1 peak at (2,2)
        let kps = decode_keypoints(&heat, &off, 3, 3, 2, 8);
        assert_eq!(kps[0].y, 0.0);
        assert_eq!(kps[1].y, 16.0);
        assert_eq!(kps[1].x, 16.0);
    }

    #[test]
    fn pose_score_averages() {
        let kps = vec![
            Keypoint {
                index: 0,
                y: 0.0,
                x: 0.0,
                score: 0.2,
            },
            Keypoint {
                index: 1,
                y: 0.0,
                x: 0.0,
                score: 0.8,
            },
        ];
        assert!((pose_score(&kps) - 0.5).abs() < 1e-6);
        assert_eq!(pose_score(&[]), 0.0);
    }

    #[test]
    fn sigmoid_of_zero_heat_is_half() {
        let (heat, off) = grid(2, 2, 1);
        let kps = decode_keypoints(&heat, &off, 2, 2, 1, 16);
        assert!((kps[0].score - 0.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "heatmap tensor length")]
    fn bad_lengths_panic() {
        decode_keypoints(&[0.0; 5], &[0.0; 8], 2, 2, 1, 16);
    }
}
