//! Object-detection post-processing: SSD box decoding, NMS and the
//! per-frame bounding-box tracking the paper's dashcam example computes
//! ("Dashcams, for instance, compute and visualize bounding boxes from a
//! model's output", §IV-A).

/// An axis-aligned box in normalized `[0,1]` image coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BBox {
    /// Top edge.
    pub ymin: f32,
    /// Left edge.
    pub xmin: f32,
    /// Bottom edge.
    pub ymax: f32,
    /// Right edge.
    pub xmax: f32,
}

impl BBox {
    /// Area (zero if degenerate).
    pub fn area(&self) -> f32 {
        ((self.ymax - self.ymin).max(0.0)) * ((self.xmax - self.xmin).max(0.0))
    }

    /// Intersection-over-union with another box.
    pub fn iou(&self, other: &BBox) -> f32 {
        let iy = (self.ymax.min(other.ymax) - self.ymin.max(other.ymin)).max(0.0);
        let ix = (self.xmax.min(other.xmax) - self.xmin.max(other.xmin)).max(0.0);
        let inter = ix * iy;
        let union = self.area() + other.area() - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }

    /// Center `(cy, cx)` of the box.
    pub fn center(&self) -> (f32, f32) {
        ((self.ymin + self.ymax) / 2.0, (self.xmin + self.xmax) / 2.0)
    }
}

/// A scored, classified detection.
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// Decoded box.
    pub bbox: BBox,
    /// Class index.
    pub class: usize,
    /// Confidence score.
    pub score: f32,
}

/// An SSD anchor (prior box) in center form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Anchor {
    /// Center y.
    pub cy: f32,
    /// Center x.
    pub cx: f32,
    /// Height.
    pub h: f32,
    /// Width.
    pub w: f32,
}

/// Generates a regular SSD-style anchor grid: `rows × cols` positions with
/// the given box sizes.
pub fn anchor_grid(rows: usize, cols: usize, sizes: &[f32]) -> Vec<Anchor> {
    let mut anchors = Vec::with_capacity(rows * cols * sizes.len());
    for r in 0..rows {
        for c in 0..cols {
            let cy = (r as f32 + 0.5) / rows as f32;
            let cx = (c as f32 + 0.5) / cols as f32;
            for &s in sizes {
                anchors.push(Anchor { cy, cx, h: s, w: s });
            }
        }
    }
    anchors
}

/// Decodes SSD regression outputs against anchors.
///
/// `raw` is `[dy, dx, dh, dw]` per anchor with the standard SSD scaling
/// (centers /10, sizes /5); `scores` is `[num_anchors × num_classes]`
/// row-major (class 0 = background, skipped).
///
/// # Panics
///
/// Panics if slice lengths disagree with `anchors.len()` and
/// `num_classes`.
pub fn decode_ssd(
    anchors: &[Anchor],
    raw: &[f32],
    scores: &[f32],
    num_classes: usize,
    score_threshold: f32,
) -> Vec<Detection> {
    assert_eq!(raw.len(), anchors.len() * 4, "raw regression length");
    assert_eq!(
        scores.len(),
        anchors.len() * num_classes,
        "score tensor length"
    );
    let mut out = Vec::new();
    for (i, a) in anchors.iter().enumerate() {
        let dy = raw[i * 4] / 10.0;
        let dx = raw[i * 4 + 1] / 10.0;
        let dh = raw[i * 4 + 2] / 5.0;
        let dw = raw[i * 4 + 3] / 5.0;
        let cy = a.cy + dy * a.h;
        let cx = a.cx + dx * a.w;
        let h = a.h * dh.exp();
        let w = a.w * dw.exp();
        let bbox = BBox {
            ymin: cy - h / 2.0,
            xmin: cx - w / 2.0,
            ymax: cy + h / 2.0,
            xmax: cx + w / 2.0,
        };
        for class in 1..num_classes {
            let score = scores[i * num_classes + class];
            if score >= score_threshold {
                out.push(Detection { bbox, class, score });
            }
        }
    }
    out
}

/// Greedy per-class non-maximum suppression.
///
/// Keeps at most `max_out` detections; within a class, suppresses boxes
/// overlapping a kept box by more than `iou_threshold`.
pub fn nms(mut detections: Vec<Detection>, iou_threshold: f32, max_out: usize) -> Vec<Detection> {
    detections.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut kept: Vec<Detection> = Vec::new();
    for det in detections {
        if kept.len() >= max_out {
            break;
        }
        let suppressed = kept
            .iter()
            .any(|k| k.class == det.class && k.bbox.iou(&det.bbox) > iou_threshold);
        if !suppressed {
            kept.push(det);
        }
    }
    kept
}

/// Frame-to-frame box tracker (nearest-center matching), modelling the
/// continuous bounding-box tracking overhead of detection apps.
#[derive(Debug, Default)]
pub struct BoxTracker {
    tracks: Vec<(u64, Detection)>,
    next_id: u64,
}

impl BoxTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Matches new detections against existing tracks; returns
    /// `(track_id, detection)` pairs. Unmatched detections start new
    /// tracks; unmatched tracks are dropped.
    pub fn update(&mut self, detections: Vec<Detection>, max_dist: f32) -> Vec<(u64, Detection)> {
        let mut result = Vec::with_capacity(detections.len());
        let mut available: Vec<(u64, Detection)> = std::mem::take(&mut self.tracks);
        for det in detections {
            let (cy, cx) = det.bbox.center();
            let best = available
                .iter()
                .enumerate()
                .filter(|(_, (_, t))| t.class == det.class)
                .map(|(i, (_, t))| {
                    let (ty, tx) = t.bbox.center();
                    (i, ((ty - cy).powi(2) + (tx - cx).powi(2)).sqrt())
                })
                .filter(|&(_, d)| d <= max_dist)
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
            let id = match best {
                Some((i, _)) => available.swap_remove(i).0,
                None => {
                    let id = self.next_id;
                    self.next_id += 1;
                    id
                }
            };
            result.push((id, det));
        }
        self.tracks = result.clone();
        result
    }

    /// Number of live tracks.
    pub fn len(&self) -> usize {
        self.tracks.len()
    }

    /// Whether no tracks are live.
    pub fn is_empty(&self) -> bool {
        self.tracks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxed(ymin: f32, xmin: f32, ymax: f32, xmax: f32) -> BBox {
        BBox {
            ymin,
            xmin,
            ymax,
            xmax,
        }
    }

    #[test]
    fn iou_identical_is_one() {
        let b = boxed(0.1, 0.1, 0.5, 0.5);
        assert!((b.iou(&b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn iou_disjoint_is_zero() {
        let a = boxed(0.0, 0.0, 0.2, 0.2);
        let b = boxed(0.5, 0.5, 0.9, 0.9);
        assert_eq!(a.iou(&b), 0.0);
    }

    #[test]
    fn iou_half_overlap() {
        let a = boxed(0.0, 0.0, 1.0, 1.0);
        let b = boxed(0.0, 0.5, 1.0, 1.5);
        // Intersection 0.5, union 1.5.
        assert!((a.iou(&b) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn anchor_grid_covers_unit_square() {
        let anchors = anchor_grid(4, 4, &[0.1, 0.2]);
        assert_eq!(anchors.len(), 32);
        assert!(anchors.iter().all(|a| (0.0..=1.0).contains(&a.cy)));
        assert!(anchors.iter().all(|a| (0.0..=1.0).contains(&a.cx)));
    }

    #[test]
    fn decode_zero_offsets_returns_anchor_boxes() {
        let anchors = anchor_grid(2, 2, &[0.4]);
        let raw = vec![0.0; anchors.len() * 4];
        let mut scores = vec![0.0; anchors.len() * 2];
        scores[1] = 0.9; // anchor 0, class 1
        let dets = decode_ssd(&anchors, &raw, &scores, 2, 0.5);
        assert_eq!(dets.len(), 1);
        let (cy, cx) = dets[0].bbox.center();
        assert!((cy - anchors[0].cy).abs() < 1e-6);
        assert!((cx - anchors[0].cx).abs() < 1e-6);
    }

    #[test]
    fn decode_threshold_filters() {
        let anchors = anchor_grid(1, 1, &[0.5]);
        let raw = vec![0.0; 4];
        let scores = vec![0.0, 0.3];
        assert!(decode_ssd(&anchors, &raw, &scores, 2, 0.5).is_empty());
        assert_eq!(decode_ssd(&anchors, &raw, &scores, 2, 0.2).len(), 1);
    }

    #[test]
    fn nms_suppresses_overlaps_keeps_best() {
        let b = boxed(0.1, 0.1, 0.5, 0.5);
        let dets = vec![
            Detection {
                bbox: b,
                class: 1,
                score: 0.9,
            },
            Detection {
                bbox: boxed(0.12, 0.12, 0.52, 0.52),
                class: 1,
                score: 0.8,
            },
            Detection {
                bbox: boxed(0.7, 0.7, 0.9, 0.9),
                class: 1,
                score: 0.7,
            },
        ];
        let kept = nms(dets, 0.5, 10);
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].score, 0.9);
        assert_eq!(kept[1].score, 0.7);
    }

    #[test]
    fn nms_keeps_different_classes() {
        let b = boxed(0.1, 0.1, 0.5, 0.5);
        let dets = vec![
            Detection {
                bbox: b,
                class: 1,
                score: 0.9,
            },
            Detection {
                bbox: b,
                class: 2,
                score: 0.8,
            },
        ];
        assert_eq!(nms(dets, 0.5, 10).len(), 2);
    }

    #[test]
    fn nms_respects_max_out() {
        let dets: Vec<Detection> = (0..20)
            .map(|i| Detection {
                bbox: boxed(i as f32 * 0.05, 0.0, i as f32 * 0.05 + 0.02, 0.02),
                class: 1,
                score: 1.0 - i as f32 * 0.01,
            })
            .collect();
        assert_eq!(nms(dets, 0.5, 5).len(), 5);
    }

    #[test]
    fn tracker_maintains_identity_across_frames() {
        let mut tracker = BoxTracker::new();
        let d1 = Detection {
            bbox: boxed(0.1, 0.1, 0.3, 0.3),
            class: 1,
            score: 0.9,
        };
        let ids1 = tracker.update(vec![d1.clone()], 0.2);
        // Same object moved slightly.
        let d2 = Detection {
            bbox: boxed(0.12, 0.12, 0.32, 0.32),
            class: 1,
            score: 0.85,
        };
        let ids2 = tracker.update(vec![d2], 0.2);
        assert_eq!(ids1[0].0, ids2[0].0, "track id should persist");
    }

    #[test]
    fn tracker_spawns_new_ids_for_new_objects() {
        let mut tracker = BoxTracker::new();
        let a = Detection {
            bbox: boxed(0.0, 0.0, 0.1, 0.1),
            class: 1,
            score: 0.9,
        };
        let far = Detection {
            bbox: boxed(0.8, 0.8, 0.9, 0.9),
            class: 1,
            score: 0.9,
        };
        tracker.update(vec![a], 0.1);
        let ids = tracker.update(vec![far], 0.1);
        assert_eq!(ids[0].0, 1, "far object gets a fresh id");
        assert_eq!(tracker.len(), 1);
    }
}
