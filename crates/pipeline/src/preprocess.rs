//! Pre-processing algorithms (paper §II-B).
//!
//! Every function here is a faithful, runnable implementation of the
//! corresponding stage in a TFLite Android app: bitmap formatting,
//! scale/crop, normalize, rotate and type conversion. They operate on real
//! buffers so tests and Criterion benches exercise true per-pixel code;
//! `aitax-core` charges their cost onto the simulated timeline through
//! [`crate::cost::CostModel`].

use aitax_tensor::{QuantParams, Tensor};

use crate::image::{ArgbImage, YuvNv21Image};

/// Converts a YUV NV21 camera frame to an ARGB8888 bitmap (BT.601 integer
/// math, the common Android conversion).
pub fn nv21_to_argb(src: &YuvNv21Image) -> ArgbImage {
    let (w, h) = (src.width(), src.height());
    let mut out = ArgbImage::new(w, h);
    for y in 0..h {
        for x in 0..w {
            let yy = src.luma(x, y) as i32;
            let (v, u) = src.chroma(x, y);
            let u = u as i32 - 128;
            let v = v as i32 - 128;
            // Fixed-point BT.601: R = Y + 1.402 V, G = Y - .344 U - .714 V,
            // B = Y + 1.772 U, scaled by 1024.
            let r = yy + ((1436 * v) >> 10);
            let g = yy - ((352 * u + 731 * v) >> 10);
            let b = yy + ((1815 * u) >> 10);
            out.set(
                x,
                y,
                ArgbImage::pack(
                    0xFF,
                    r.clamp(0, 255) as u8,
                    g.clamp(0, 255) as u8,
                    b.clamp(0, 255) as u8,
                ),
            );
        }
    }
    out
}

/// Center-crops to `out_w × out_h` (paper: "models such as Inception-v3
/// (center-)crop an image prior to scaling it").
///
/// # Panics
///
/// Panics if the crop is larger than the source.
pub fn center_crop(src: &ArgbImage, out_w: usize, out_h: usize) -> ArgbImage {
    assert!(
        out_w <= src.width() && out_h <= src.height(),
        "crop {out_w}x{out_h} exceeds source {}x{}",
        src.width(),
        src.height()
    );
    let x0 = (src.width() - out_w) / 2;
    let y0 = (src.height() - out_h) / 2;
    let mut out = ArgbImage::new(out_w, out_h);
    for y in 0..out_h {
        for x in 0..out_w {
            out.set(x, y, src.get(x0 + x, y0 + y));
        }
    }
    out
}

/// Bilinear resize — "Tensorflow's default resizing algorithm" whose
/// run-time "scales quadratically with the output image size" (§II-B).
pub fn resize_bilinear(src: &ArgbImage, out_w: usize, out_h: usize) -> ArgbImage {
    assert!(out_w > 0 && out_h > 0, "output dimensions must be non-zero");
    let (sw, sh) = (src.width(), src.height());
    let mut out = ArgbImage::new(out_w, out_h);
    let sx = if out_w > 1 {
        (sw - 1) as f32 / (out_w - 1) as f32
    } else {
        0.0
    };
    let sy = if out_h > 1 {
        (sh - 1) as f32 / (out_h - 1) as f32
    } else {
        0.0
    };
    for oy in 0..out_h {
        let fy = oy as f32 * sy;
        let y0 = fy.floor() as usize;
        let y1 = (y0 + 1).min(sh - 1);
        let wy = fy - y0 as f32;
        for ox in 0..out_w {
            let fx = ox as f32 * sx;
            let x0 = fx.floor() as usize;
            let x1 = (x0 + 1).min(sw - 1);
            let wx = fx - x0 as f32;
            let p00 = src.get(x0, y0);
            let p10 = src.get(x1, y0);
            let p01 = src.get(x0, y1);
            let p11 = src.get(x1, y1);
            let mut channels = [0u8; 4];
            for (i, ch) in channels.iter_mut().enumerate() {
                let shift = 24 - 8 * i;
                let c00 = ((p00 >> shift) & 0xFF) as f32;
                let c10 = ((p10 >> shift) & 0xFF) as f32;
                let c01 = ((p01 >> shift) & 0xFF) as f32;
                let c11 = ((p11 >> shift) & 0xFF) as f32;
                let top = c00 + (c10 - c00) * wx;
                let bot = c01 + (c11 - c01) * wx;
                *ch = (top + (bot - top) * wy).round().clamp(0.0, 255.0) as u8;
            }
            out.set(
                ox,
                oy,
                ArgbImage::pack(channels[0], channels[1], channels[2], channels[3]),
            );
        }
    }
    out
}

/// Rotation in 90° steps (PoseNet "makes extensive use of this operation";
/// §II-B notes it scales quadratically with image size).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rotation {
    /// 90° clockwise.
    Cw90,
    /// 180°.
    Cw180,
    /// 270° clockwise.
    Cw270,
}

/// Rotates an image by a multiple of 90°.
pub fn rotate(src: &ArgbImage, rotation: Rotation) -> ArgbImage {
    let (w, h) = (src.width(), src.height());
    match rotation {
        Rotation::Cw90 => {
            let mut out = ArgbImage::new(h, w);
            for y in 0..h {
                for x in 0..w {
                    out.set(h - 1 - y, x, src.get(x, y));
                }
            }
            out
        }
        Rotation::Cw180 => {
            let mut out = ArgbImage::new(w, h);
            for y in 0..h {
                for x in 0..w {
                    out.set(w - 1 - x, h - 1 - y, src.get(x, y));
                }
            }
            out
        }
        Rotation::Cw270 => {
            let mut out = ArgbImage::new(h, w);
            for y in 0..h {
                for x in 0..w {
                    out.set(y, w - 1 - x, src.get(x, y));
                }
            }
            out
        }
    }
}

/// Normalizes an image to a float NHWC tensor: `(channel - mean) / std`
/// per pixel ("almost all networks require normalized inputs", §II-B).
///
/// # Panics
///
/// Panics if `std` is zero.
pub fn normalize_to_tensor(src: &ArgbImage, mean: f32, std: f32) -> Tensor {
    // aitax-allow(float-eq): exact-zero divisor check backing the documented panic contract
    assert!(std != 0.0, "normalization std must be non-zero");
    let (w, h) = (src.width(), src.height());
    let mut data = Vec::with_capacity(w * h * 3);
    for &px in src.pixels() {
        let (_, r, g, b) = ArgbImage::unpack(px);
        data.push((r as f32 - mean) / std);
        data.push((g as f32 - mean) / std);
        data.push((b as f32 - mean) / std);
    }
    Tensor::from_f32(&[1, h, w, 3], data)
}

/// Converts an image directly to a quantized NHWC tensor — the fused
/// "type conversion" path quantized models take (§II-B).
pub fn quantize_to_tensor(src: &ArgbImage, params: QuantParams) -> Tensor {
    let (w, h) = (src.width(), src.height());
    let mut data = Vec::with_capacity(w * h * 3);
    for &px in src.pixels() {
        let (_, r, g, b) = ArgbImage::unpack(px);
        // Camera bytes are already 0..255; re-quantize into the model's
        // input scale.
        data.push(params.quantize(r as f32));
        data.push(params.quantize(g as f32));
        data.push(params.quantize(b as f32));
    }
    Tensor::from_i8(&[1, h, w, 3], data, params)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_gray(w: usize, h: usize, v: u8) -> ArgbImage {
        let px = ArgbImage::pack(0xFF, v, v, v);
        ArgbImage::from_pixels(w, h, vec![px; w * h])
    }

    #[test]
    fn nv21_gray_converts_to_gray() {
        // Y=128, U=V=128 (neutral chroma) → RGB ≈ (128,128,128).
        let w = 16;
        let h = 8;
        let mut data = vec![128u8; w * h];
        data.extend(vec![128u8; w * h / 2]);
        let yuv = YuvNv21Image::new(w, h, data);
        let rgb = nv21_to_argb(&yuv);
        let (_, r, g, b) = ArgbImage::unpack(rgb.get(3, 3));
        assert_eq!((r, g, b), (128, 128, 128));
    }

    #[test]
    fn nv21_conversion_is_full_alpha() {
        let rgb = nv21_to_argb(&YuvNv21Image::synthetic(32, 32, 5));
        assert!(rgb.pixels().iter().all(|p| p >> 24 == 0xFF));
    }

    #[test]
    fn center_crop_takes_the_middle() {
        let mut src = ArgbImage::new(10, 10);
        src.set(5, 5, 0xFFAA_BBCC);
        let out = center_crop(&src, 4, 4);
        assert_eq!(out.width(), 4);
        // (5,5) in source is (2,2) in a 4x4 crop starting at (3,3).
        assert_eq!(out.get(2, 2), 0xFFAA_BBCC);
    }

    #[test]
    #[should_panic(expected = "exceeds source")]
    fn oversized_crop_panics() {
        center_crop(&ArgbImage::new(4, 4), 8, 8);
    }

    #[test]
    fn resize_preserves_constant_images() {
        let src = flat_gray(17, 13, 77);
        let out = resize_bilinear(&src, 8, 21);
        assert!(out
            .pixels()
            .iter()
            .all(|&p| p == ArgbImage::pack(0xFF, 77, 77, 77)));
    }

    #[test]
    fn resize_identity_when_same_size() {
        let src = nv21_to_argb(&YuvNv21Image::synthetic(16, 16, 2));
        let out = resize_bilinear(&src, 16, 16);
        assert_eq!(out.pixels(), src.pixels());
    }

    #[test]
    fn resize_interpolates_between_corners() {
        // 2×1 black→white gradient upsampled to 5×1.
        let src = ArgbImage::from_pixels(
            2,
            1,
            vec![
                ArgbImage::pack(0xFF, 0, 0, 0),
                ArgbImage::pack(0xFF, 255, 255, 255),
            ],
        );
        let out = resize_bilinear(&src, 5, 1);
        let mid = ArgbImage::unpack(out.get(2, 0)).1;
        assert!((126..=129).contains(&mid), "midpoint {mid}");
    }

    #[test]
    fn rotations_compose_to_identity() {
        let src = nv21_to_argb(&YuvNv21Image::synthetic(24, 16, 4));
        let r90 = rotate(&src, Rotation::Cw90);
        assert_eq!(r90.width(), 16);
        assert_eq!(r90.height(), 24);
        let back = rotate(&rotate(&r90, Rotation::Cw90), Rotation::Cw180);
        assert_eq!(back.pixels(), src.pixels());
    }

    #[test]
    fn rotate_90_moves_corner_correctly() {
        let mut src = ArgbImage::new(3, 2);
        src.set(0, 0, 0xFF11_1111);
        let out = rotate(&src, Rotation::Cw90);
        // (0,0) → (h-1-0, 0) = (1, 0).
        assert_eq!(out.get(1, 0), 0xFF11_1111);
    }

    #[test]
    fn normalize_produces_zero_mean_for_mid_gray() {
        let src = flat_gray(4, 4, 128);
        let t = normalize_to_tensor(&src, 128.0, 128.0);
        assert_eq!(t.shape().dims(), &[1, 4, 4, 3]);
        assert!(t.as_f32().unwrap().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn normalize_range_is_bounded() {
        let src = nv21_to_argb(&YuvNv21Image::synthetic(32, 32, 8));
        let t = normalize_to_tensor(&src, 127.5, 127.5);
        assert!(t
            .as_f32()
            .unwrap()
            .iter()
            .all(|&v| (-1.0..=1.0).contains(&v)));
    }

    #[test]
    fn quantize_tensor_has_params_and_shape() {
        let src = flat_gray(6, 6, 200);
        let params = QuantParams::from_range(0.0, 255.0);
        let t = quantize_to_tensor(&src, params);
        assert_eq!(t.shape().dims(), &[1, 6, 6, 3]);
        assert_eq!(t.quant_params(), Some(params));
        // 200 should round-trip within one step.
        let back = t.dequantize().unwrap();
        assert!((back.as_f32().unwrap()[0] - 200.0).abs() <= params.scale());
    }
}
