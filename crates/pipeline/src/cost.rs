//! Calibrated cost model for pre-/post-processing work.
//!
//! The algorithms in this crate run for real, but experiment latencies are
//! measured on the *simulated* timeline, so each invocation also reports
//! how many CPU cycles it represents on the modelled chipset. Costs are
//! per-element cycle counts for optimized native (NEON) code, with a
//! multiplier for the managed Java/Bitmap/JNI path production Android apps
//! actually take — the reason the same model "encapsulated inside a real
//! application spends a significant amount of time ... pre-processing"
//! (paper Fig. 4) while the native command-line benchmark does not.

/// Which implementation path executes an algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuntimeKind {
    /// Optimized native code (the TFLite benchmark utility path).
    Native,
    /// Java/Bitmap/JNI code with boxing, bounds checks and copies (the
    /// Android application path).
    Managed,
}

impl RuntimeKind {
    /// Cycle multiplier relative to native code.
    ///
    /// Calibrated so an SD845-class app spends ≈15 ms pre-processing a
    /// 640×480 camera frame for a 224×224 model — the Fig. 4 regime where
    /// capture + pre-processing ≈ 2× a quantized model's inference time.
    pub fn multiplier(self) -> f64 {
        match self {
            RuntimeKind::Native => 1.0,
            RuntimeKind::Managed => 8.0,
        }
    }
}

/// A costed pipeline operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PixelOp {
    /// YUV NV21 → ARGB8888 (per source pixel).
    Nv21ToArgb,
    /// Bilinear resize (per *output* pixel).
    ResizeBilinear,
    /// Center crop copy (per output pixel).
    CenterCrop,
    /// Normalization to float (per tensor element).
    Normalize,
    /// 90°-step rotation (per pixel; cache-hostile access pattern).
    Rotate,
    /// Float→int8 quantization or int8→float dequantization (per element).
    TypeConvert,
    /// Top-K selection over class scores (per score).
    TopK,
    /// Segmentation argmax mask flattening (per logit element).
    FlattenMask,
    /// PoseNet heatmap/offset decoding (per heatmap element).
    DecodeKeypoints,
    /// SSD box decode + NMS (per anchor).
    DecodeBoxesNms,
    /// WordPiece tokenization (per input character).
    Tokenize,
    /// Bulk memory copy (per byte).
    MemCopy,
    /// Camera frame extraction: plane-walking an `Image` into app-owned
    /// byte arrays (per frame byte). Disproportionately expensive on the
    /// managed path — per-byte `ByteBuffer` accessors dominate, which is
    /// why "the supporting code around data capture contributed to a
    /// large share of overall application latency" (§II-A).
    FrameExtract,
}

impl PixelOp {
    /// Native cycles per element, calibrated for NEON-class cores.
    pub fn native_cycles_per_element(self) -> f64 {
        match self {
            PixelOp::Nv21ToArgb => 10.0,
            PixelOp::ResizeBilinear => 25.0,
            PixelOp::CenterCrop => 2.0,
            PixelOp::Normalize => 6.0,
            PixelOp::Rotate => 8.0,
            PixelOp::TypeConvert => 5.0,
            PixelOp::TopK => 35.0,
            PixelOp::FlattenMask => 2.0,
            PixelOp::DecodeKeypoints => 3.0,
            PixelOp::DecodeBoxesNms => 90.0,
            PixelOp::Tokenize => 220.0,
            PixelOp::MemCopy => 0.4,
            PixelOp::FrameExtract => 8.0,
        }
    }
}

/// Maps pipeline operations to CPU cycles for a given runtime path.
///
/// # Example
///
/// ```
/// use aitax_pipeline::{CostModel, PixelOp, RuntimeKind};
/// let native = CostModel::new(RuntimeKind::Native);
/// let managed = CostModel::new(RuntimeKind::Managed);
/// let op = PixelOp::ResizeBilinear;
/// assert!(managed.cycles(op, 224 * 224) > native.cycles(op, 224 * 224));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    runtime: RuntimeKind,
}

impl CostModel {
    /// Creates a cost model for a runtime path.
    pub fn new(runtime: RuntimeKind) -> Self {
        CostModel { runtime }
    }

    /// The runtime path this model represents.
    pub fn runtime(&self) -> RuntimeKind {
        self.runtime
    }

    /// CPU cycles for applying `op` to `elements` elements.
    pub fn cycles(&self, op: PixelOp, elements: u64) -> f64 {
        op.native_cycles_per_element() * elements as f64 * self.runtime.multiplier()
    }

    /// Convenience: cycles for a whole chain of `(op, elements)` steps.
    pub fn chain_cycles(&self, steps: &[(PixelOp, u64)]) -> f64 {
        steps.iter().map(|&(op, n)| self.cycles(op, n)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn managed_is_uniformly_slower() {
        let native = CostModel::new(RuntimeKind::Native);
        let managed = CostModel::new(RuntimeKind::Managed);
        for op in [
            PixelOp::Nv21ToArgb,
            PixelOp::ResizeBilinear,
            PixelOp::Normalize,
            PixelOp::TopK,
        ] {
            assert_eq!(
                managed.cycles(op, 1000),
                native.cycles(op, 1000) * RuntimeKind::Managed.multiplier()
            );
        }
    }

    #[test]
    fn cycles_scale_linearly_with_elements() {
        let m = CostModel::new(RuntimeKind::Native);
        let one = m.cycles(PixelOp::Normalize, 1);
        assert_eq!(m.cycles(PixelOp::Normalize, 500), one * 500.0);
        assert_eq!(m.cycles(PixelOp::Normalize, 0), 0.0);
    }

    #[test]
    fn chain_sums_steps() {
        let m = CostModel::new(RuntimeKind::Native);
        let chain = m.chain_cycles(&[(PixelOp::Nv21ToArgb, 100), (PixelOp::ResizeBilinear, 50)]);
        assert_eq!(
            chain,
            m.cycles(PixelOp::Nv21ToArgb, 100) + m.cycles(PixelOp::ResizeBilinear, 50)
        );
    }

    #[test]
    fn app_preprocessing_calibration_anchor() {
        // 640×480 NV21 → ARGB → resize 256² → crop+normalize 224²,
        // managed path on a 2.8 GHz core, should land near 15 ms
        // (Fig. 4 calibration; see DESIGN.md §5).
        let m = CostModel::new(RuntimeKind::Managed);
        let cycles = m.chain_cycles(&[
            (PixelOp::Nv21ToArgb, 640 * 480),
            (PixelOp::ResizeBilinear, 256 * 256),
            (PixelOp::CenterCrop, 224 * 224),
            (PixelOp::Normalize, 224 * 224 * 3),
        ]);
        let ms = cycles / 2.8e9 * 1e3;
        assert!(
            (8.0..25.0).contains(&ms),
            "managed pre-processing ≈ {ms:.1} ms, expected 8-25 ms"
        );
        // The native benchmark path is an order of magnitude cheaper.
        let native_ms = ms / RuntimeKind::Managed.multiplier();
        assert!(native_ms < 3.0);
    }
}
