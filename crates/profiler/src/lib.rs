//! Snapdragon-Profiler-style analysis of simulation traces.
//!
//! The paper's Figure 6 reads an execution profile — per-core utilization
//! strips, CDSP activity, AXI traffic and context-switch/migration
//! markers — to root-cause NNAPI's fallback behaviour. This crate turns an
//! [`aitax_des::TraceBuffer`] into that view:
//!
//! * [`UtilizationTimeline`] — busy-fraction per resource per time bin,
//! * [`ProfileReport`] — the full report with counters, rendered as an
//!   ASCII heat strip (for terminals) or TSV (for plotting).
//!
//! # Example
//!
//! ```
//! use aitax_des::trace::{TraceBuffer, TraceKind, TraceResource};
//! use aitax_des::{SimSpan, SimTime};
//! use aitax_profiler::ProfileReport;
//!
//! let mut buf = TraceBuffer::enabled();
//! let r = TraceResource::CpuCore(0);
//! let label = buf.intern("job");
//! buf.record(SimTime::from_ns(0), r, TraceKind::ExecStart { task: 1, label });
//! buf.record(SimTime::from_ns(1_000_000), r, TraceKind::ExecEnd { task: 1 });
//! let report = ProfileReport::from_trace(&buf, SimSpan::from_ms(0.5));
//! assert!(report.utilization_of(r, 0) > 0.99);
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

use aitax_des::trace::{TraceBuffer, TraceKind, TraceResource};
use aitax_des::{SimSpan, SimTime};

/// Busy fraction per time bin for one resource.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationTimeline {
    /// The resource this timeline describes.
    pub resource: TraceResource,
    /// Busy fraction (0–1) per bin.
    pub bins: Vec<f64>,
}

impl UtilizationTimeline {
    /// Mean utilization across the whole timeline.
    pub fn mean(&self) -> f64 {
        if self.bins.is_empty() {
            0.0
        } else {
            self.bins.iter().sum::<f64>() / self.bins.len() as f64
        }
    }

    /// Peak bin utilization.
    pub fn peak(&self) -> f64 {
        self.bins.iter().cloned().fold(0.0, f64::max)
    }

    /// Renders the timeline as a unicode heat strip.
    pub fn heat_strip(&self) -> String {
        const LEVELS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        self.bins
            .iter()
            .map(|&u| {
                let idx = (u.clamp(0.0, 1.0) * 8.0).round() as usize;
                LEVELS[idx]
            })
            .collect()
    }
}

/// A complete profile extracted from a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// Bin width used for the timelines.
    pub bin_width: SimSpan,
    /// End of the profiled window.
    pub span_end: SimTime,
    /// One timeline per resource that appeared in the trace, ordered.
    pub timelines: Vec<UtilizationTimeline>,
    /// Context switches observed.
    pub context_switches: u64,
    /// Task migrations observed.
    pub migrations: u64,
    /// Interrupts observed.
    pub irqs: u64,
    /// Total AXI bytes moved.
    pub axi_bytes: u64,
    /// AXI bytes per time bin.
    pub axi_per_bin: Vec<u64>,
}

impl ProfileReport {
    /// Builds a report from a trace with the given bin width. The window
    /// ends at the trace's last event.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is zero.
    pub fn from_trace(trace: &TraceBuffer, bin_width: SimSpan) -> Self {
        let end = trace.iter().map(|e| e.time).max().unwrap_or(SimTime::ZERO);
        Self::from_trace_until(trace, bin_width, end)
    }

    /// Builds a report over the explicit window `[0, end]`.
    ///
    /// Two edge cases are handled deliberately:
    ///
    /// * a task with an `ExecStart` but no `ExecEnd` counts as busy up to
    ///   `end` (a hung or still-running task is real utilization), and
    /// * events landing exactly on the window end (or beyond it, if the
    ///   caller chose an `end` before the last event) are clamped into
    ///   the final bin instead of indexing past the timeline.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is zero.
    pub fn from_trace_until(trace: &TraceBuffer, bin_width: SimSpan, end: SimTime) -> Self {
        assert!(!bin_width.is_zero(), "bin width must be positive");
        let nbins = (end.as_ns() as f64 / bin_width.as_ns() as f64).ceil() as usize;
        let nbins = nbins.max(1);

        let mut busy: BTreeMap<TraceResource, Vec<f64>> = BTreeMap::new();
        for iv in trace.exec_intervals_until(end) {
            let bins = busy.entry(iv.resource).or_insert_with(|| vec![0.0; nbins]);
            let (s, e) = (iv.start.as_ns(), iv.end.as_ns().min(end.as_ns()));
            let bw = bin_width.as_ns();
            let first = (s / bw) as usize;
            let last = ((e.saturating_sub(1)) / bw) as usize;
            for (b, bin) in bins
                .iter_mut()
                .enumerate()
                .take(last.min(nbins - 1) + 1)
                .skip(first)
            {
                let bin_start = b as u64 * bw;
                let bin_end = bin_start + bw;
                let overlap = e.min(bin_end).saturating_sub(s.max(bin_start));
                *bin += overlap as f64 / bw as f64;
            }
        }

        let mut context_switches = 0;
        let mut migrations = 0;
        let mut irqs = 0;
        let mut axi_bytes = 0;
        let mut axi_per_bin = vec![0u64; nbins];
        for ev in trace.iter() {
            if ev.time > end {
                continue;
            }
            match &ev.kind {
                TraceKind::ContextSwitch => context_switches += 1,
                TraceKind::Migration { .. } => migrations += 1,
                TraceKind::Irq { .. } => irqs += 1,
                TraceKind::AxiBurst { bytes } => {
                    axi_bytes += bytes;
                    let b = (ev.time.as_ns() / bin_width.as_ns()) as usize;
                    axi_per_bin[b.min(nbins - 1)] += bytes;
                }
                _ => {}
            }
        }

        let timelines = busy
            .into_iter()
            .map(|(resource, mut bins)| {
                for b in &mut bins {
                    *b = b.min(1.0);
                }
                UtilizationTimeline { resource, bins }
            })
            .collect();
        ProfileReport {
            bin_width,
            span_end: end,
            timelines,
            context_switches,
            migrations,
            irqs,
            axi_bytes,
            axi_per_bin,
        }
    }

    /// The timeline for one resource, if it appeared.
    pub fn timeline(&self, resource: TraceResource) -> Option<&UtilizationTimeline> {
        self.timelines.iter().find(|t| t.resource == resource)
    }

    /// Utilization of a resource in one bin (0 if absent).
    pub fn utilization_of(&self, resource: TraceResource, bin: usize) -> f64 {
        self.timeline(resource)
            .and_then(|t| t.bins.get(bin))
            .copied()
            .unwrap_or(0.0)
    }

    /// Mean utilization of a resource over the whole window.
    pub fn mean_utilization(&self, resource: TraceResource) -> f64 {
        self.timeline(resource).map(|t| t.mean()).unwrap_or(0.0)
    }

    /// Renders the Fig. 6-style profile view: one heat strip per
    /// resource plus the counters.
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "profile: {} bins x {} (window {})",
            self.timelines.first().map(|t| t.bins.len()).unwrap_or(0),
            self.bin_width,
            self.span_end
        );
        for t in &self.timelines {
            let _ = writeln!(
                out,
                "{:>5} |{}| mean {:>5.1}%",
                t.resource.to_string(),
                t.heat_strip(),
                t.mean() * 100.0
            );
        }
        if self.axi_bytes > 0 {
            let peak = self.axi_per_bin.iter().copied().max().unwrap_or(1).max(1);
            const LEVELS: [char; 9] = [
                ' ', '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}',
                '\u{2587}', '\u{2588}',
            ];
            let strip: String = self
                .axi_per_bin
                .iter()
                .map(|&b| LEVELS[(b as f64 / peak as f64 * 8.0).round() as usize])
                .collect();
            let _ = writeln!(out, "{:>5} |{}| traffic", "axi", strip);
        }
        let _ = writeln!(
            out,
            "ctx-switches {}  migrations {}  irqs {}  axi {:.2} MB",
            self.context_switches,
            self.migrations,
            self.irqs,
            self.axi_bytes as f64 / 1e6
        );
        out
    }

    /// Renders the timelines as TSV (`bin<TAB>resource<TAB>utilization`).
    pub fn render_tsv(&self) -> String {
        let mut out = String::from("bin\tresource\tutilization\n");
        for t in &self.timelines {
            for (i, u) in t.bins.iter().enumerate() {
                let _ = writeln!(out, "{i}\t{}\t{u:.4}", t.resource);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_interval(
        buf: &mut TraceBuffer,
        r: TraceResource,
        task: u64,
        start_ns: u64,
        end_ns: u64,
    ) {
        let label = buf.intern("t");
        buf.record(
            SimTime::from_ns(start_ns),
            r,
            TraceKind::ExecStart { task, label },
        );
        buf.record(SimTime::from_ns(end_ns), r, TraceKind::ExecEnd { task });
    }

    #[test]
    fn full_bin_is_fully_utilized() {
        let mut buf = TraceBuffer::enabled();
        let r = TraceResource::CpuCore(1);
        record_interval(&mut buf, r, 1, 0, 1000);
        let rep = ProfileReport::from_trace(&buf, SimSpan::from_ns(1000));
        assert_eq!(rep.utilization_of(r, 0), 1.0);
        assert_eq!(rep.mean_utilization(r), 1.0);
    }

    #[test]
    fn half_bin_overlap() {
        let mut buf = TraceBuffer::enabled();
        let r = TraceResource::Dsp;
        record_interval(&mut buf, r, 1, 500, 1500);
        let rep = ProfileReport::from_trace(&buf, SimSpan::from_ns(1000));
        assert!((rep.utilization_of(r, 0) - 0.5).abs() < 1e-9);
        assert!((rep.utilization_of(r, 1) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn counters_tally_events() {
        let mut buf = TraceBuffer::enabled();
        let r = TraceResource::CpuCore(0);
        buf.record(SimTime::from_ns(10), r, TraceKind::ContextSwitch);
        buf.record(SimTime::from_ns(20), r, TraceKind::ContextSwitch);
        buf.record(
            SimTime::from_ns(30),
            r,
            TraceKind::Migration {
                task: 1,
                from: 0,
                to: 2,
            },
        );
        buf.record(
            SimTime::from_ns(40),
            TraceResource::Axi,
            TraceKind::AxiBurst { bytes: 512 },
        );
        let rep = ProfileReport::from_trace(&buf, SimSpan::from_ns(100));
        assert_eq!(rep.context_switches, 2);
        assert_eq!(rep.migrations, 1);
        assert_eq!(rep.axi_bytes, 512);
        assert_eq!(rep.axi_per_bin[0], 512);
    }

    #[test]
    fn absent_resource_reads_zero() {
        let buf = TraceBuffer::enabled();
        let rep = ProfileReport::from_trace(&buf, SimSpan::from_ns(10));
        assert_eq!(rep.utilization_of(TraceResource::Gpu, 0), 0.0);
        assert!(rep.timeline(TraceResource::Gpu).is_none());
    }

    #[test]
    fn heat_strip_levels() {
        let t = UtilizationTimeline {
            resource: TraceResource::CpuCore(0),
            bins: vec![0.0, 0.5, 1.0],
        };
        let strip = t.heat_strip();
        let chars: Vec<char> = strip.chars().collect();
        assert_eq!(chars.len(), 3);
        assert_eq!(chars[0], ' ');
        assert_eq!(chars[2], '█');
        assert!((t.peak() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ascii_render_contains_resources_and_counters() {
        let mut buf = TraceBuffer::enabled();
        record_interval(&mut buf, TraceResource::Dsp, 1, 0, 500);
        buf.record(
            SimTime::from_ns(100),
            TraceResource::CpuCore(0),
            TraceKind::ContextSwitch,
        );
        let rep = ProfileReport::from_trace(&buf, SimSpan::from_ns(100));
        let text = rep.render_ascii();
        assert!(text.contains("cdsp"));
        assert!(text.contains("ctx-switches 1"));
    }

    #[test]
    fn tsv_has_row_per_bin() {
        let mut buf = TraceBuffer::enabled();
        record_interval(&mut buf, TraceResource::Gpu, 3, 0, 1000);
        let rep = ProfileReport::from_trace(&buf, SimSpan::from_ns(250));
        let tsv = rep.render_tsv();
        assert_eq!(tsv.lines().count(), 1 + 4);
    }

    #[test]
    fn multiple_tasks_cap_at_one() {
        // Two overlapping tasks on the same resource (preempt/restart
        // bookkeeping) must not exceed 100%.
        let mut buf = TraceBuffer::enabled();
        let r = TraceResource::CpuCore(2);
        record_interval(&mut buf, r, 1, 0, 800);
        record_interval(&mut buf, r, 2, 200, 1000);
        let rep = ProfileReport::from_trace(&buf, SimSpan::from_ns(1000));
        assert_eq!(rep.utilization_of(r, 0), 1.0);
    }

    #[test]
    #[should_panic(expected = "bin width")]
    fn zero_bin_width_panics() {
        ProfileReport::from_trace(&TraceBuffer::enabled(), SimSpan::ZERO);
    }

    // ------------------------------------------------- edge-case fixes
    // Regression tests for two historical `from_trace` bugs: events on
    // the exact window boundary indexing past `axi_per_bin`, and
    // dangling ExecStarts silently vanishing from busy accounting.

    #[test]
    fn axi_burst_exactly_at_window_end_lands_in_last_bin() {
        let mut buf = TraceBuffer::enabled();
        // The burst is the last event, at an exact bin-boundary multiple:
        // end = 2000, nbins = 2, naive bin index = 2 → out of bounds.
        buf.record(
            SimTime::from_ns(0),
            TraceResource::CpuCore(0),
            TraceKind::ContextSwitch,
        );
        buf.record(
            SimTime::from_ns(2000),
            TraceResource::Axi,
            TraceKind::AxiBurst { bytes: 64 },
        );
        let rep = ProfileReport::from_trace(&buf, SimSpan::from_ns(1000));
        assert_eq!(rep.axi_per_bin.len(), 2);
        assert_eq!(rep.axi_per_bin[1], 64);
        assert_eq!(rep.axi_bytes, 64);

        // Same trace through an explicit window that ends *before* the
        // burst: the event is outside the window and must not count.
        let windowed =
            ProfileReport::from_trace_until(&buf, SimSpan::from_ns(1000), SimTime::from_ns(1000));
        assert_eq!(windowed.axi_bytes, 0);
        assert_eq!(windowed.axi_per_bin.len(), 1);
    }

    #[test]
    fn dangling_exec_start_counts_busy_to_window_end() {
        let mut buf = TraceBuffer::enabled();
        let r = TraceResource::CpuCore(3);
        // A closed interval fixes the trace end at 4000 ns; the dangling
        // task starts at 1000 ns and never ends.
        record_interval(&mut buf, TraceResource::Dsp, 9, 3800, 4000);
        let hung = buf.intern("hung");
        buf.record(
            SimTime::from_ns(1000),
            r,
            TraceKind::ExecStart {
                task: 1,
                label: hung,
            },
        );
        let rep = ProfileReport::from_trace(&buf, SimSpan::from_ns(1000));
        // Busy from 1000 to 4000 of a 4000 ns window: bins 1..3 full.
        assert_eq!(rep.utilization_of(r, 0), 0.0);
        assert_eq!(rep.utilization_of(r, 1), 1.0);
        assert_eq!(rep.utilization_of(r, 3), 1.0);
        assert!((rep.mean_utilization(r) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn explicit_window_clamps_closed_intervals() {
        let mut buf = TraceBuffer::enabled();
        let r = TraceResource::Gpu;
        record_interval(&mut buf, r, 1, 0, 4000);
        // Profile only the first half: utilization is full over the
        // truncated window, not smeared or out of range.
        let rep =
            ProfileReport::from_trace_until(&buf, SimSpan::from_ns(1000), SimTime::from_ns(2000));
        assert_eq!(rep.axi_per_bin.len(), 2);
        assert_eq!(rep.mean_utilization(r), 1.0);
    }
}
