//! Trace-driven energy metering.
//!
//! [`EnergyMeter`] replays a [`TraceBuffer`] against a [`PowerSpec`],
//! integrating per-rail power over time. CPU execution intervals are
//! priced at the frequency the DVFS governor had set at interval start
//! (`TraceKind::Dvfs` events; the governor only retargets clocks at
//! dispatch boundaries, so the frequency is constant within an interval).
//! Accelerator intervals are priced at their two-state busy power, AXI
//! bursts at energy-per-byte, and every rail pays its idle/uncore floor
//! for the full window.

use std::collections::BTreeMap;

use aitax_des::trace::{ExecInterval, TraceKind, TraceResource};
use aitax_des::{SimSpan, SimTime, TraceBuffer};

use crate::spec::{PowerSpec, Rail};

/// Energy attributed per rail, in joules.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RailEnergy {
    cells: BTreeMap<Rail, f64>,
}

impl RailEnergy {
    /// An empty ledger.
    pub fn new() -> Self {
        RailEnergy::default()
    }

    /// Adds joules to a rail.
    pub fn add(&mut self, rail: Rail, joules: f64) {
        // aitax-allow(float-eq): exact-zero skip avoids materializing empty rail cells
        if joules != 0.0 {
            *self.cells.entry(rail).or_insert(0.0) += joules;
        }
    }

    /// Joules attributed to one rail (zero if absent).
    pub fn joules(&self, rail: Rail) -> f64 {
        self.cells.get(&rail).copied().unwrap_or(0.0)
    }

    /// Total joules across all rails.
    pub fn total_j(&self) -> f64 {
        self.cells.values().sum()
    }

    /// Joules across all CPU core rails.
    pub fn cpu_j(&self) -> f64 {
        self.cells
            .iter()
            .filter(|(r, _)| matches!(r, Rail::Cpu(_)))
            .map(|(_, j)| j)
            .sum()
    }

    /// Iterates rails in deterministic (ordinal) order.
    pub fn iter(&self) -> impl Iterator<Item = (Rail, f64)> + '_ {
        self.cells.iter().map(|(&r, &j)| (r, j))
    }

    /// Folds another ledger into this one.
    pub fn merge(&mut self, other: &RailEnergy) {
        for (rail, j) in other.iter() {
            self.add(rail, j);
        }
    }
}

/// Per-rail average power over fixed-width bins, for timeline plots.
#[derive(Debug, Clone)]
pub struct PowerTimeline {
    /// Nominal bin width.
    pub bin_width: SimSpan,
    /// End of the metered range (the last bin may be shorter).
    pub end: SimTime,
    /// Joules per bin, per rail, rails in ordinal order.
    pub rails: Vec<(Rail, Vec<f64>)>,
}

impl PowerTimeline {
    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.rails.first().map_or(0, |(_, v)| v.len())
    }

    /// Actual length of a bin in seconds (the final bin may be partial).
    pub fn bin_secs(&self, bin: usize) -> f64 {
        let w = self.bin_width.as_ns();
        let start = bin as u64 * w;
        let end = ((bin as u64 + 1) * w).min(self.end.as_ns());
        (end.saturating_sub(start)) as f64 * 1e-9
    }

    /// Average total watts in a bin.
    pub fn total_watts(&self, bin: usize) -> f64 {
        let secs = self.bin_secs(bin);
        // aitax-allow(float-eq): exact-zero bin width sentinel guards the division
        if secs == 0.0 {
            return 0.0;
        }
        self.rails.iter().map(|(_, v)| v[bin]).sum::<f64>() / secs
    }

    /// Average watts on one rail in a bin.
    pub fn rail_watts(&self, rail: Rail, bin: usize) -> f64 {
        let secs = self.bin_secs(bin);
        // aitax-allow(float-eq): exact-zero bin width sentinel guards the division
        if secs == 0.0 {
            return 0.0;
        }
        self.rails
            .iter()
            .find(|(r, _)| *r == rail)
            .map_or(0.0, |(_, v)| v[bin])
            / secs
    }

    /// Peak of the binned total power, in watts.
    pub fn peak_total_watts(&self) -> f64 {
        (0..self.bins())
            .map(|b| self.total_watts(b))
            .fold(0.0, f64::max)
    }

    /// Total energy in the timeline, in joules. Equals the integral of the
    /// binned power — and, by construction, the energy the meter would
    /// attribute to the same range in one window.
    pub fn energy_j(&self) -> f64 {
        self.rails.iter().map(|(_, v)| v.iter().sum::<f64>()).sum()
    }
}

/// Integrates a trace into per-rail energy.
#[derive(Debug, Clone, Copy)]
pub struct EnergyMeter<'a> {
    spec: &'a PowerSpec,
}

/// Per-core DVFS frequency steps extracted from the trace: `(time, freq)`
/// changepoints in ascending time order, per core index.
struct FreqTimeline {
    steps: Vec<Vec<(SimTime, f64)>>,
}

impl FreqTimeline {
    fn build(spec: &PowerSpec, trace: &TraceBuffer) -> Self {
        let mut steps: Vec<Vec<(SimTime, f64)>> = spec
            .core_rails
            .iter()
            .map(|r| vec![(SimTime::ZERO, r.nominal().freq_hz)])
            .collect();
        for ev in trace.iter() {
            if let TraceKind::Dvfs { core, freq_hz } = ev.kind {
                if let Some(track) = steps.get_mut(core as usize) {
                    track.push((ev.time, freq_hz as f64));
                }
            }
        }
        FreqTimeline { steps }
    }

    /// Frequency of `core` at time `t` (last change at or before `t`).
    fn freq_at(&self, core: usize, t: SimTime) -> f64 {
        let track = &self.steps[core];
        match track.partition_point(|&(when, _)| when <= t) {
            0 => track[0].1,
            i => track[i - 1].1,
        }
    }
}

/// Overlap of `[s, e)` with `[a, b)` in seconds.
fn overlap_secs(s: SimTime, e: SimTime, a: SimTime, b: SimTime) -> f64 {
    let lo = s.max(a);
    let hi = e.min(b);
    if hi > lo {
        (hi - lo).as_secs()
    } else {
        0.0
    }
}

impl<'a> EnergyMeter<'a> {
    /// Creates a meter over a power spec.
    pub fn new(spec: &'a PowerSpec) -> Self {
        EnergyMeter { spec }
    }

    /// The spec this meter prices against.
    pub fn spec(&self) -> &PowerSpec {
        self.spec
    }

    /// Attributes trace energy to each half-open window `[from, to)`.
    ///
    /// Windows may overlap or leave gaps; each is metered independently.
    /// Every window pays the idle/uncore floor for its full length plus
    /// the busy increment of each execution interval overlapping it.
    pub fn attribute(
        &self,
        trace: &TraceBuffer,
        windows: &[(SimTime, SimTime)],
    ) -> Vec<RailEnergy> {
        let intervals = trace.exec_intervals();
        let freqs = FreqTimeline::build(self.spec, trace);
        windows
            .iter()
            .map(|&(from, to)| self.meter_window(trace, &intervals, &freqs, from, to))
            .collect()
    }

    /// Energy per rail over one window `[from, to)`.
    pub fn energy_between(&self, trace: &TraceBuffer, from: SimTime, to: SimTime) -> RailEnergy {
        self.attribute(trace, &[(from, to)])
            .pop()
            // aitax-allow(panic-path): attribute() returns exactly one ledger per window passed in
            .expect("one window in, one ledger out")
    }

    fn meter_window(
        &self,
        trace: &TraceBuffer,
        intervals: &[ExecInterval],
        freqs: &FreqTimeline,
        from: SimTime,
        to: SimTime,
    ) -> RailEnergy {
        let mut out = RailEnergy::new();
        if to <= from {
            return out;
        }
        let window_secs = (to - from).as_secs();

        // Idle/uncore floor for the whole window.
        for (i, rail) in self.spec.core_rails.iter().enumerate() {
            out.add(Rail::Cpu(i as u8), rail.idle_power_w() * window_secs);
        }
        out.add(Rail::Gpu, self.spec.gpu.idle_power_w() * window_secs);
        out.add(Rail::Dsp, self.spec.dsp.idle_power_w() * window_secs);
        if let Some(npu) = &self.spec.npu {
            out.add(Rail::Npu, npu.idle_power_w() * window_secs);
        }
        out.add(Rail::Uncore, self.spec.interconnect.uncore_w * window_secs);

        // Busy increments (active minus idle, so floor isn't double-paid).
        for iv in intervals {
            let secs = overlap_secs(iv.start, iv.end, from, to);
            // aitax-allow(float-eq): exact-zero overlap means the interval misses the window
            if secs == 0.0 {
                continue;
            }
            match iv.resource {
                TraceResource::CpuCore(c) => {
                    if let Some(rail) = self.spec.core_rails.get(c as usize) {
                        let f = freqs.freq_at(c as usize, iv.start);
                        let inc = rail.active_power_w(f) - rail.idle_power_w();
                        out.add(Rail::Cpu(c), inc * secs);
                    }
                }
                TraceResource::Gpu => {
                    let inc = self.spec.gpu.busy_w - self.spec.gpu.idle_power_w();
                    out.add(Rail::Gpu, inc * secs);
                }
                TraceResource::Dsp => {
                    let inc = self.spec.dsp.busy_w - self.spec.dsp.idle_power_w();
                    out.add(Rail::Dsp, inc * secs);
                }
                TraceResource::Npu => {
                    if let Some(npu) = &self.spec.npu {
                        out.add(Rail::Npu, (npu.busy_w - npu.idle_power_w()) * secs);
                    }
                }
                // AXI busy time carries no rate term; bursts are priced
                // per byte below.
                TraceResource::Axi => {}
            }
        }

        // Data movement: every AXI burst inside the window.
        let epb = self.spec.interconnect.energy_per_byte_j;
        for ev in trace.iter() {
            if let TraceKind::AxiBurst { bytes } = ev.kind {
                if ev.time >= from && ev.time < to {
                    out.add(Rail::Axi, bytes as f64 * epb);
                }
            }
        }
        out
    }

    /// Bins the trace range `[0, end)` into a per-rail power timeline.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is zero.
    pub fn power_timeline(
        &self,
        trace: &TraceBuffer,
        bin_width: SimSpan,
        end: SimTime,
    ) -> PowerTimeline {
        assert!(!bin_width.is_zero(), "bin width must be positive");
        let w = bin_width.as_ns();
        let n = (end.as_ns().div_ceil(w)) as usize;
        let mut timeline = PowerTimeline {
            bin_width,
            end,
            rails: Vec::new(),
        };
        if n == 0 {
            return timeline;
        }

        let bin_bounds = |b: usize| {
            let a = SimTime::from_ns(b as u64 * w);
            let z = SimTime::from_ns(((b as u64 + 1) * w).min(end.as_ns()));
            (a, z)
        };

        let mut rails: BTreeMap<Rail, Vec<f64>> = BTreeMap::new();
        let mut deposit = |rail: Rail, bin: usize, joules: f64| {
            // aitax-allow(float-eq): exact-zero skip avoids allocating all-zero bins
            if joules != 0.0 {
                rails.entry(rail).or_insert_with(|| vec![0.0; n])[bin] += joules;
            }
        };

        // Idle/uncore floor per bin.
        for b in 0..n {
            let (a, z) = bin_bounds(b);
            let secs = (z - a).as_secs();
            for (i, rail) in self.spec.core_rails.iter().enumerate() {
                deposit(Rail::Cpu(i as u8), b, rail.idle_power_w() * secs);
            }
            deposit(Rail::Gpu, b, self.spec.gpu.idle_power_w() * secs);
            deposit(Rail::Dsp, b, self.spec.dsp.idle_power_w() * secs);
            if let Some(npu) = &self.spec.npu {
                deposit(Rail::Npu, b, npu.idle_power_w() * secs);
            }
            deposit(Rail::Uncore, b, self.spec.interconnect.uncore_w * secs);
        }

        // Busy increments, spread over the bins each interval touches.
        let freqs = FreqTimeline::build(self.spec, trace);
        for iv in trace.exec_intervals() {
            let (inc_w, rail) = match iv.resource {
                TraceResource::CpuCore(c) => match self.spec.core_rails.get(c as usize) {
                    Some(r) => {
                        let f = freqs.freq_at(c as usize, iv.start);
                        (r.active_power_w(f) - r.idle_power_w(), Rail::Cpu(c))
                    }
                    None => continue,
                },
                TraceResource::Gpu => (
                    self.spec.gpu.busy_w - self.spec.gpu.idle_power_w(),
                    Rail::Gpu,
                ),
                TraceResource::Dsp => (
                    self.spec.dsp.busy_w - self.spec.dsp.idle_power_w(),
                    Rail::Dsp,
                ),
                TraceResource::Npu => match &self.spec.npu {
                    Some(npu) => (npu.busy_w - npu.idle_power_w(), Rail::Npu),
                    None => continue,
                },
                TraceResource::Axi => continue,
            };
            if iv.start >= end {
                continue;
            }
            let first = (iv.start.as_ns() / w) as usize;
            let last = ((iv.end.as_ns().saturating_sub(1)) / w).min(n as u64 - 1) as usize;
            for b in first..=last {
                let (a, z) = bin_bounds(b);
                deposit(rail, b, inc_w * overlap_secs(iv.start, iv.end, a, z));
            }
        }

        // AXI bursts land in the bin containing their timestamp.
        let epb = self.spec.interconnect.energy_per_byte_j;
        for ev in trace.iter() {
            if let TraceKind::AxiBurst { bytes } = ev.kind {
                if ev.time < end {
                    deposit(
                        Rail::Axi,
                        (ev.time.as_ns() / w) as usize,
                        bytes as f64 * epb,
                    );
                }
            }
        }

        timeline.rails = rails.into_iter().collect();
        timeline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AccelRailSpec, CoreRailSpec, InterconnectPowerSpec};
    use aitax_des::trace::TraceResource;

    fn spec() -> PowerSpec {
        PowerSpec {
            core_rails: vec![
                CoreRailSpec::scaled("big", 2.0e9, 2.0, 0.1, false),
                CoreRailSpec::scaled("big", 2.0e9, 2.0, 0.1, false),
            ],
            gpu: AccelRailSpec::new("gpu", 2.5, 0.1, true),
            dsp: AccelRailSpec::new("dsp", 0.8, 0.05, true),
            npu: None,
            interconnect: InterconnectPowerSpec {
                energy_per_byte_j: 100e-12,
                uncore_w: 1.0,
            },
        }
    }

    fn exec(buf: &mut TraceBuffer, r: TraceResource, task: u64, s_ms: u64, e_ms: u64) {
        let label = buf.intern("t");
        buf.record(
            SimTime::from_ns(s_ms * 1_000_000),
            r,
            TraceKind::ExecStart { task, label },
        );
        buf.record(
            SimTime::from_ns(e_ms * 1_000_000),
            r,
            TraceKind::ExecEnd { task },
        );
    }

    fn at_ms(ms: u64) -> SimTime {
        SimTime::from_ns(ms * 1_000_000)
    }

    #[test]
    fn idle_window_pays_exactly_the_floor() {
        let s = spec();
        let trace = TraceBuffer::enabled();
        let e = EnergyMeter::new(&s).energy_between(&trace, SimTime::ZERO, at_ms(1000));
        // 1 s × (uncore 1.0 + 2 × leak 0.1); gated accels are free.
        assert!(
            (e.total_j() - 1.2).abs() < 1e-9,
            "idle joules {}",
            e.total_j()
        );
        assert_eq!(e.joules(Rail::Gpu), 0.0);
    }

    #[test]
    fn busy_core_adds_active_minus_idle() {
        let s = spec();
        let mut trace = TraceBuffer::enabled();
        exec(&mut trace, TraceResource::CpuCore(0), 1, 0, 100);
        let e = EnergyMeter::new(&s).energy_between(&trace, SimTime::ZERO, at_ms(100));
        let rail = &s.core_rails[0];
        let expect = rail.active_power_w(rail.nominal().freq_hz) * 0.1;
        assert!((e.joules(Rail::Cpu(0)) - expect).abs() < 1e-9);
    }

    #[test]
    fn dvfs_event_reprices_following_intervals() {
        let s = spec();
        let mut trace = TraceBuffer::enabled();
        exec(&mut trace, TraceResource::CpuCore(0), 1, 0, 100);
        let half = s.core_rails[0].opps[0].freq_hz as u64;
        trace.record(
            at_ms(100),
            TraceResource::CpuCore(0),
            TraceKind::Dvfs {
                core: 0,
                freq_hz: half,
            },
        );
        exec(&mut trace, TraceResource::CpuCore(0), 2, 100, 200);
        let m = EnergyMeter::new(&s);
        let fast = m.energy_between(&trace, SimTime::ZERO, at_ms(100));
        let slow = m.energy_between(&trace, at_ms(100), at_ms(200));
        assert!(
            slow.joules(Rail::Cpu(0)) < 0.5 * fast.joules(Rail::Cpu(0)),
            "downclocked interval should be far cheaper: {} vs {}",
            slow.joules(Rail::Cpu(0)),
            fast.joules(Rail::Cpu(0))
        );
    }

    #[test]
    fn accel_and_axi_are_attributed() {
        let s = spec();
        let mut trace = TraceBuffer::enabled();
        exec(&mut trace, TraceResource::Dsp, 5, 10, 60);
        trace.record(
            at_ms(5),
            TraceResource::Axi,
            TraceKind::AxiBurst { bytes: 1_000_000 },
        );
        let e = EnergyMeter::new(&s).energy_between(&trace, SimTime::ZERO, at_ms(100));
        assert!((e.joules(Rail::Dsp) - 0.8 * 0.05).abs() < 1e-9);
        assert!((e.joules(Rail::Axi) - 1e6 * 100e-12).abs() < 1e-15);
    }

    #[test]
    fn windows_partition_energy() {
        // Two adjacent windows sum to one covering window.
        let s = spec();
        let mut trace = TraceBuffer::enabled();
        exec(&mut trace, TraceResource::CpuCore(0), 1, 20, 180);
        exec(&mut trace, TraceResource::Gpu, 2, 50, 150);
        let m = EnergyMeter::new(&s);
        let parts = m.attribute(
            &trace,
            &[(SimTime::ZERO, at_ms(100)), (at_ms(100), at_ms(200))],
        );
        let whole = m.energy_between(&trace, SimTime::ZERO, at_ms(200));
        let sum: f64 = parts.iter().map(RailEnergy::total_j).sum();
        assert!((sum - whole.total_j()).abs() < 1e-9);
    }

    #[test]
    fn empty_or_inverted_window_is_zero() {
        let s = spec();
        let trace = TraceBuffer::enabled();
        let m = EnergyMeter::new(&s);
        assert_eq!(m.energy_between(&trace, at_ms(5), at_ms(5)).total_j(), 0.0);
        assert_eq!(m.energy_between(&trace, at_ms(9), at_ms(5)).total_j(), 0.0);
    }

    #[test]
    fn timeline_integrates_to_window_energy() {
        let s = spec();
        let mut trace = TraceBuffer::enabled();
        exec(&mut trace, TraceResource::CpuCore(1), 1, 3, 47);
        exec(&mut trace, TraceResource::Dsp, 2, 10, 35);
        trace.record(
            at_ms(7),
            TraceResource::Axi,
            TraceKind::AxiBurst { bytes: 4096 },
        );
        let m = EnergyMeter::new(&s);
        let tl = m.power_timeline(&trace, SimSpan::from_ms(7.0), at_ms(50));
        let whole = m.energy_between(&trace, SimTime::ZERO, at_ms(50));
        assert!((tl.energy_j() - whole.total_j()).abs() < 1e-9);
        assert!(tl.peak_total_watts() > tl.total_watts(0));
    }
}
