//! Per-rail power, energy and battery models for the `aitax` simulator.
//!
//! The paper's AI-tax analysis is a *time* decomposition; this crate adds
//! the matching *energy* axis:
//!
//! * [`PowerSpec`] — static description of an SoC's voltage rails:
//!   per-core `C·V²·f` dynamic power over a DVFS operating-point ladder,
//!   static leakage with optional power gating, two-state accelerator
//!   rails (GPU/DSP/NPU), and interconnect energy-per-byte plus an
//!   always-on uncore floor.
//! * [`EnergyMeter`] — replays an execution trace
//!   ([`TraceBuffer`](aitax_des::TraceBuffer)) against a [`PowerSpec`],
//!   attributing joules per rail to arbitrary time windows (pipeline
//!   stages, iterations) and binning per-rail power timelines. CPU
//!   intervals are priced at the frequency the DVFS governor had set
//!   (`TraceKind::Dvfs` changepoints).
//! * [`Battery`] — joule bookkeeping that turns per-inference energy into
//!   state-of-charge and runtime estimates.
//!
//! `aitax-soc` attaches a `PowerSpec` to every catalog chipset;
//! `aitax-kernel` closes the loop by heating the thermal model from
//! metered watts and throttling/retargeting clocks in response.
//!
//! # Example
//!
//! ```
//! use aitax_power::{AccelRailSpec, CoreRailSpec, EnergyMeter, InterconnectPowerSpec,
//!                   PowerSpec, Rail};
//! use aitax_des::trace::{TraceKind, TraceResource};
//! use aitax_des::{SimTime, TraceBuffer};
//!
//! let spec = PowerSpec {
//!     core_rails: vec![CoreRailSpec::scaled("big", 2.8e9, 1.9, 0.07, false)],
//!     gpu: AccelRailSpec::new("adreno", 2.5, 0.1, true),
//!     dsp: AccelRailSpec::new("hexagon", 0.8, 0.05, true),
//!     npu: None,
//!     interconnect: InterconnectPowerSpec { energy_per_byte_j: 80e-12, uncore_w: 0.9 },
//! };
//! let mut trace = TraceBuffer::enabled();
//! let label = trace.intern("inference");
//! trace.record(SimTime::from_ns(0), TraceResource::CpuCore(0),
//!              TraceKind::ExecStart { task: 1, label });
//! trace.record(SimTime::from_ns(10_000_000), TraceResource::CpuCore(0),
//!              TraceKind::ExecEnd { task: 1 });
//! let energy = EnergyMeter::new(&spec)
//!     .energy_between(&trace, SimTime::ZERO, SimTime::from_ns(10_000_000));
//! assert!(energy.joules(Rail::Cpu(0)) > 0.0);
//! ```

pub mod battery;
pub mod meter;
pub mod spec;

pub use battery::{typical_phone_battery, Battery, BatterySpec};
pub use meter::{EnergyMeter, PowerTimeline, RailEnergy};
pub use spec::{
    AccelRailSpec, CoreRailSpec, InterconnectPowerSpec, OperatingPoint, PowerSpec, Rail,
};

/// Energy-delay product in joule-seconds — the scalar figure of merit the
/// energy shootout ranks backends by (lower is better on both axes).
pub fn energy_delay_product(joules: f64, secs: f64) -> f64 {
    joules * secs
}
