//! A small battery model: joule bookkeeping over a fixed capacity.
//!
//! Used to translate per-inference energy into user-visible quantities —
//! state of charge, inferences per charge, continuous-runtime estimates —
//! the way the paper's energy discussion frames "AI tax" for end users.

/// Battery capacity description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatterySpec {
    /// Usable capacity in joules.
    pub capacity_j: f64,
}

impl BatterySpec {
    /// Creates a spec from a capacity in milliamp-hours at a nominal
    /// voltage (phone packs are ~3.85 V nominal).
    ///
    /// # Panics
    ///
    /// Panics if either argument is non-positive.
    pub fn from_mah(mah: f64, nominal_v: f64) -> Self {
        assert!(mah > 0.0 && nominal_v > 0.0, "capacity must be positive");
        BatterySpec {
            capacity_j: mah * 3.6 * nominal_v,
        }
    }
}

/// A typical 2019-flagship pack: 3300 mAh at 3.85 V ≈ 45.7 kJ.
pub fn typical_phone_battery() -> BatterySpec {
    BatterySpec::from_mah(3300.0, 3.85)
}

/// Mutable battery state: a spec plus accumulated drain.
#[derive(Debug, Clone)]
pub struct Battery {
    spec: BatterySpec,
    drained_j: f64,
}

impl Battery {
    /// A full battery.
    pub fn new(spec: BatterySpec) -> Self {
        Battery {
            spec,
            drained_j: 0.0,
        }
    }

    /// The capacity spec.
    pub fn spec(&self) -> BatterySpec {
        self.spec
    }

    /// Removes energy from the pack (clamped at empty).
    ///
    /// # Panics
    ///
    /// Panics if `joules` is negative.
    pub fn drain(&mut self, joules: f64) {
        assert!(joules >= 0.0, "cannot drain negative energy");
        self.drained_j = (self.drained_j + joules).min(self.spec.capacity_j);
    }

    /// Remaining energy in joules.
    pub fn remaining_j(&self) -> f64 {
        self.spec.capacity_j - self.drained_j
    }

    /// State of charge in `[0, 1]`.
    pub fn state_of_charge(&self) -> f64 {
        self.remaining_j() / self.spec.capacity_j
    }

    /// Seconds until empty at a sustained power draw.
    ///
    /// # Panics
    ///
    /// Panics if `watts` is not positive.
    pub fn seconds_to_empty(&self, watts: f64) -> f64 {
        assert!(watts > 0.0, "sustained draw must be positive");
        self.remaining_j() / watts
    }

    /// How many more inferences fit in the remaining charge.
    ///
    /// # Panics
    ///
    /// Panics if `joules_per_inference` is not positive.
    pub fn inferences_remaining(&self, joules_per_inference: f64) -> f64 {
        assert!(
            joules_per_inference > 0.0,
            "per-inference energy must be positive"
        );
        self.remaining_j() / joules_per_inference
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mah_conversion() {
        let b = BatterySpec::from_mah(1000.0, 1.0);
        assert!((b.capacity_j - 3600.0).abs() < 1e-9);
        assert!(typical_phone_battery().capacity_j > 40_000.0);
    }

    #[test]
    fn drain_and_soc() {
        let mut b = Battery::new(BatterySpec { capacity_j: 100.0 });
        assert_eq!(b.state_of_charge(), 1.0);
        b.drain(25.0);
        assert!((b.state_of_charge() - 0.75).abs() < 1e-12);
        b.drain(1000.0); // clamps at empty
        assert_eq!(b.remaining_j(), 0.0);
    }

    #[test]
    fn runtime_estimates() {
        let b = Battery::new(BatterySpec { capacity_j: 3600.0 });
        assert!((b.seconds_to_empty(1.0) - 3600.0).abs() < 1e-9);
        assert!((b.inferences_remaining(0.05) - 72_000.0).abs() < 1e-6);
    }
}
