//! Static power descriptions of SoC voltage rails.
//!
//! Follows the classic CMOS decomposition: dynamic power `C·V²·f` per
//! operating point plus a static leakage term that either disappears when
//! the rail is power-gated or burns continuously when it is not. Loosely
//! coupled accelerators (GPU, DSP, NPU) are modelled as two-state rails
//! (busy/idle) because their internal DVFS is invisible to the host-side
//! measurements the paper reports.

use std::fmt;

/// One DVFS operating point of a core rail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Clock frequency in Hz.
    pub freq_hz: f64,
    /// Supply voltage in volts at this frequency.
    pub voltage_v: f64,
}

/// Power description of one CPU core's rail.
///
/// Catalog entries share a canonical five-step OPP ladder (see
/// [`CoreRailSpec::scaled`]); the voltage curve is what makes low
/// operating points disproportionately cheap (`P ∝ V²f`).
#[derive(Debug, Clone, PartialEq)]
pub struct CoreRailSpec {
    /// Rail name, e.g. `"big"` / `"little"` / `"prime"`.
    pub name: &'static str,
    /// Operating points in ascending frequency order. Never empty.
    pub opps: Vec<OperatingPoint>,
    /// Effective switched capacitance in farads (`P_dyn = C·V²·f`).
    pub capacitance_f: f64,
    /// Static leakage in watts while the rail is up.
    pub leakage_w: f64,
    /// Whether the rail collapses to zero power when the core idles.
    ///
    /// Phone CPU rails stay up between scheduler ticks, so catalog entries
    /// set this `false` and pay leakage whenever the SoC is on.
    pub power_gated: bool,
}

/// Canonical OPP ladder: (fraction of nominal frequency, voltage in V).
///
/// Shaped after public Snapdragon frequency/voltage tables: roughly linear
/// voltage growth over the upper half of the frequency range with a flat
/// low-voltage floor underneath.
const OPP_LADDER: [(f64, f64); 5] = [
    (0.35, 0.62),
    (0.55, 0.70),
    (0.75, 0.79),
    (0.90, 0.88),
    (1.00, 0.95),
];

impl CoreRailSpec {
    /// Builds a rail with the canonical OPP ladder scaled to a nominal
    /// frequency, calibrated so the top operating point dissipates
    /// `peak_dynamic_w` of dynamic power.
    ///
    /// # Panics
    ///
    /// Panics if any argument is non-positive (except `leakage_w`, which
    /// may be zero).
    pub fn scaled(
        name: &'static str,
        nominal_freq_hz: f64,
        peak_dynamic_w: f64,
        leakage_w: f64,
        power_gated: bool,
    ) -> Self {
        assert!(nominal_freq_hz > 0.0, "nominal frequency must be positive");
        assert!(peak_dynamic_w > 0.0, "peak dynamic power must be positive");
        assert!(leakage_w >= 0.0, "leakage must be non-negative");
        let vmax = OPP_LADDER[4].1;
        let capacitance_f = peak_dynamic_w / (vmax * vmax * nominal_freq_hz);
        let opps = OPP_LADDER
            .iter()
            .map(|&(frac, v)| OperatingPoint {
                freq_hz: frac * nominal_freq_hz,
                voltage_v: v,
            })
            .collect();
        CoreRailSpec {
            name,
            opps,
            capacitance_f,
            leakage_w,
            power_gated,
        }
    }

    /// The nominal (highest) operating point.
    pub fn nominal(&self) -> OperatingPoint {
        // aitax-allow(panic-path): catalog rails always declare at least one operating point
        *self.opps.last().expect("rail has at least one OPP")
    }

    /// Supply voltage at a frequency, piecewise-linearly interpolated
    /// between operating points and clamped at the table ends.
    pub fn voltage_at(&self, freq_hz: f64) -> f64 {
        // aitax-allow(panic-path): catalog rails always declare at least one operating point
        let first = self.opps.first().expect("rail has at least one OPP");
        if freq_hz <= first.freq_hz {
            return first.voltage_v;
        }
        for pair in self.opps.windows(2) {
            let (lo, hi) = (pair[0], pair[1]);
            if freq_hz <= hi.freq_hz {
                let t = (freq_hz - lo.freq_hz) / (hi.freq_hz - lo.freq_hz);
                return lo.voltage_v + t * (hi.voltage_v - lo.voltage_v);
            }
        }
        self.nominal().voltage_v
    }

    /// Dynamic (switching) power at a frequency: `C·V(f)²·f`.
    pub fn dynamic_power_w(&self, freq_hz: f64) -> f64 {
        let v = self.voltage_at(freq_hz);
        self.capacitance_f * v * v * freq_hz
    }

    /// Total power while executing at a frequency: dynamic + leakage.
    pub fn active_power_w(&self, freq_hz: f64) -> f64 {
        self.dynamic_power_w(freq_hz) + self.leakage_w
    }

    /// Power while the core idles: zero if the rail power-gates,
    /// otherwise the leakage floor (the branes-ai "without power gating"
    /// case — every allocated unit leaks).
    pub fn idle_power_w(&self) -> f64 {
        if self.power_gated {
            0.0
        } else {
            self.leakage_w
        }
    }

    /// Lowest operating point whose frequency covers `target_fraction` of
    /// nominal (schedutil's `f = 1.25·util·f_max` rounded up to a real OPP).
    ///
    /// Fractions above 1 clamp to the nominal point.
    pub fn opp_for_target(&self, target_fraction: f64) -> OperatingPoint {
        let want = target_fraction * self.nominal().freq_hz;
        for &opp in &self.opps {
            if opp.freq_hz >= want {
                return opp;
            }
        }
        self.nominal()
    }
}

/// Power description of a loosely coupled accelerator rail (GPU/DSP/NPU).
#[derive(Debug, Clone, PartialEq)]
pub struct AccelRailSpec {
    /// Rail name, e.g. `"adreno"` / `"hexagon"`.
    pub name: &'static str,
    /// Power while a job executes, in watts.
    pub busy_w: f64,
    /// Power while idle but not collapsed, in watts.
    pub idle_w: f64,
    /// Whether the block power-collapses when idle (phones gate these).
    pub power_gated: bool,
}

impl AccelRailSpec {
    /// Creates an accelerator rail spec.
    ///
    /// # Panics
    ///
    /// Panics if `busy_w <= 0` or `idle_w < 0`.
    pub fn new(name: &'static str, busy_w: f64, idle_w: f64, power_gated: bool) -> Self {
        assert!(busy_w > 0.0, "busy power must be positive");
        assert!(idle_w >= 0.0, "idle power must be non-negative");
        AccelRailSpec {
            name,
            busy_w,
            idle_w,
            power_gated,
        }
    }

    /// Effective idle power (zero when the block power-collapses).
    pub fn idle_power_w(&self) -> f64 {
        if self.power_gated {
            0.0
        } else {
            self.idle_w
        }
    }
}

/// Interconnect and always-on (uncore) power description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterconnectPowerSpec {
    /// Energy per byte moved over AXI/DRAM, in joules (≈ tens of pJ/B).
    pub energy_per_byte_j: f64,
    /// Always-on floor in watts: memory controller, DRAM refresh, caches,
    /// rails — everything that cannot be gated while the SoC is awake.
    ///
    /// This term is why multi-threaded inference wins on energy: the same
    /// dynamic work finishes sooner, so the uncore floor is paid for less
    /// wall-clock time (race-to-idle).
    pub uncore_w: f64,
}

/// Full per-rail power description of an SoC.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerSpec {
    /// One rail per CPU core, in the same flattened order as
    /// `SocSpec::cores()` (big cores first).
    pub core_rails: Vec<CoreRailSpec>,
    /// GPU rail.
    pub gpu: AccelRailSpec,
    /// Compute-DSP rail.
    pub dsp: AccelRailSpec,
    /// NPU rail, on chipsets that have one.
    pub npu: Option<AccelRailSpec>,
    /// Interconnect / uncore description.
    pub interconnect: InterconnectPowerSpec,
}

impl PowerSpec {
    /// Power draw with every core and accelerator idle, in watts.
    pub fn idle_floor_w(&self) -> f64 {
        let cores: f64 = self.core_rails.iter().map(|r| r.idle_power_w()).sum();
        let accels = self.gpu.idle_power_w()
            + self.dsp.idle_power_w()
            + self.npu.as_ref().map_or(0.0, |n| n.idle_power_w());
        cores + accels + self.interconnect.uncore_w
    }

    /// The rail spec for a core index.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn core_rail(&self, core: usize) -> &CoreRailSpec {
        &self.core_rails[core]
    }
}

/// A power rail for energy attribution. Mirrors
/// [`TraceResource`](aitax_des::trace::TraceResource), with two extra
/// bookkeeping rails: [`Rail::Axi`] carries per-byte data-movement energy
/// and [`Rail::Uncore`] the always-on floor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rail {
    /// A CPU core's slice of its cluster rail.
    Cpu(u8),
    /// The GPU rail.
    Gpu,
    /// The compute-DSP rail.
    Dsp,
    /// The NPU rail.
    Npu,
    /// Data movement over the interconnect (energy per byte).
    Axi,
    /// Always-on uncore floor.
    Uncore,
}

impl fmt::Display for Rail {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rail::Cpu(i) => write!(f, "cpu{i}"),
            Rail::Gpu => write!(f, "gpu"),
            Rail::Dsp => write!(f, "cdsp"),
            Rail::Npu => write!(f, "npu"),
            Rail::Axi => write!(f, "axi"),
            Rail::Uncore => write!(f, "uncore"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big() -> CoreRailSpec {
        CoreRailSpec::scaled("big", 2.8e9, 1.9, 0.07, false)
    }

    #[test]
    fn peak_dynamic_power_matches_calibration() {
        let r = big();
        let p = r.dynamic_power_w(r.nominal().freq_hz);
        assert!((p - 1.9).abs() < 1e-9, "peak dynamic {p}");
    }

    #[test]
    fn dynamic_power_is_monotone_in_frequency() {
        let r = big();
        let mut prev = 0.0;
        for opp in &r.opps {
            let p = r.dynamic_power_w(opp.freq_hz);
            assert!(p > prev, "power must grow with frequency");
            prev = p;
        }
    }

    #[test]
    fn low_opp_is_disproportionately_cheap() {
        // Voltage scaling: the lowest OPP runs at 35% speed for well under
        // 35% of peak power.
        let r = big();
        let lo = r.dynamic_power_w(r.opps[0].freq_hz);
        assert!(lo < 0.35 * 1.9 * 0.6, "lowest OPP power {lo} too high");
    }

    #[test]
    fn voltage_interpolates_and_clamps() {
        let r = big();
        assert_eq!(r.voltage_at(0.0), r.opps[0].voltage_v);
        assert_eq!(r.voltage_at(1e12), r.nominal().voltage_v);
        let mid = r.voltage_at(0.5 * (r.opps[0].freq_hz + r.opps[1].freq_hz));
        assert!(mid > r.opps[0].voltage_v && mid < r.opps[1].voltage_v);
    }

    #[test]
    fn opp_for_target_rounds_up() {
        let r = big();
        let opp = r.opp_for_target(0.5);
        assert!((opp.freq_hz / r.nominal().freq_hz - 0.55).abs() < 1e-12);
        assert_eq!(r.opp_for_target(2.0).freq_hz, r.nominal().freq_hz);
        assert_eq!(r.opp_for_target(0.0).freq_hz, r.opps[0].freq_hz);
    }

    #[test]
    fn gating_zeroes_idle_power() {
        let gated = CoreRailSpec::scaled("x", 1e9, 0.5, 0.05, true);
        assert_eq!(gated.idle_power_w(), 0.0);
        assert_eq!(big().idle_power_w(), 0.07);
        let accel = AccelRailSpec::new("hexagon", 0.8, 0.05, true);
        assert_eq!(accel.idle_power_w(), 0.0);
    }

    #[test]
    fn idle_floor_sums_ungated_rails() {
        let spec = PowerSpec {
            core_rails: vec![big(), big()],
            gpu: AccelRailSpec::new("adreno", 2.5, 0.1, true),
            dsp: AccelRailSpec::new("hexagon", 0.8, 0.05, true),
            npu: None,
            interconnect: InterconnectPowerSpec {
                energy_per_byte_j: 80e-12,
                uncore_w: 0.9,
            },
        };
        assert!((spec.idle_floor_w() - (0.9 + 2.0 * 0.07)).abs() < 1e-12);
    }

    #[test]
    fn rail_display_names() {
        assert_eq!(Rail::Cpu(3).to_string(), "cpu3");
        assert_eq!(Rail::Dsp.to_string(), "cdsp");
        assert_eq!(Rail::Uncore.to_string(), "uncore");
    }
}
