//! Affine quantization, TFLite-style.
//!
//! A real value `r` maps to a quantized value `q` via
//! `q = round(r / scale) + zero_point`, clamped to the i8 range; the reverse
//! is `r = (q - zero_point) * scale`. The paper's INT8 model configurations
//! use exactly this scheme, and its §II-B "Type conversion" stage is the
//! pre-processing step that applies it to camera bytes.

/// Affine quantization parameters (scale and zero point).
///
/// # Example
///
/// ```
/// use aitax_tensor::QuantParams;
/// let q = QuantParams::new(0.1, 0);
/// assert_eq!(q.quantize(1.25), 13);
/// assert!((q.dequantize(13) - 1.3).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    scale: f32,
    zero_point: i32,
}

impl QuantParams {
    /// Creates quantization parameters.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not finite and positive.
    pub fn new(scale: f32, zero_point: i32) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0,
            "quantization scale must be finite and positive, got {scale}"
        );
        QuantParams { scale, zero_point }
    }

    /// Parameters that map the real range `[lo, hi]` onto the full i8 range,
    /// the way TFLite's post-training quantizer does.
    ///
    /// As in TFLite, the range is first nudged to include zero so that
    /// real 0.0 is exactly representable (required for zero padding).
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn from_range(lo: f32, hi: f32) -> Self {
        assert!(lo < hi, "quantization range must satisfy lo < hi");
        let lo = lo.min(0.0);
        let hi = hi.max(0.0);
        let scale = (hi - lo) / 255.0;
        let zero_point = (-128.0 - lo / scale).round().clamp(-128.0, 127.0) as i32;
        QuantParams::new(scale, zero_point)
    }

    /// The scale (real units per quantized step).
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The zero point (quantized value representing real 0.0).
    pub fn zero_point(&self) -> i32 {
        self.zero_point
    }

    /// Quantizes one real value, saturating to the i8 range.
    pub fn quantize(&self, real: f32) -> i8 {
        let q = (real / self.scale).round() as i64 + self.zero_point as i64;
        q.clamp(i8::MIN as i64, i8::MAX as i64) as i8
    }

    /// Dequantizes one value back to real units.
    pub fn dequantize(&self, q: i8) -> f32 {
        (q as i32 - self.zero_point) as f32 * self.scale
    }

    /// The largest absolute round-trip error this parameterization can
    /// introduce for in-range values (half a quantization step).
    pub fn max_round_trip_error(&self) -> f32 {
        self.scale / 2.0
    }
}

impl Default for QuantParams {
    /// Identity-ish parameters mapping `[-128, 127]` one-to-one.
    fn default() -> Self {
        QuantParams::new(1.0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_within_half_step() {
        let q = QuantParams::new(0.02, -3);
        for r in [-1.0f32, -0.37, 0.0, 0.5, 1.99] {
            let rt = q.dequantize(q.quantize(r));
            assert!(
                (rt - r).abs() <= q.max_round_trip_error() + 1e-6,
                "r={r} rt={rt}"
            );
        }
    }

    #[test]
    fn saturates_at_extremes() {
        let q = QuantParams::new(0.01, 0);
        assert_eq!(q.quantize(100.0), i8::MAX);
        assert_eq!(q.quantize(-100.0), i8::MIN);
    }

    #[test]
    fn zero_point_maps_zero() {
        let q = QuantParams::new(0.5, 7);
        assert_eq!(q.quantize(0.0), 7);
        assert_eq!(q.dequantize(7), 0.0);
    }

    #[test]
    fn from_range_covers_the_range() {
        let q = QuantParams::from_range(0.0, 1.0);
        // 0.0 should land near -128, 1.0 near 127.
        assert!(q.quantize(0.0) <= -126);
        assert!(q.quantize(1.0) >= 125);
        // Mid-range should round-trip within one step.
        let rt = q.dequantize(q.quantize(0.5));
        assert!((rt - 0.5).abs() <= q.scale());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_panics() {
        QuantParams::new(0.0, 0);
    }

    #[test]
    fn default_is_identity_like() {
        let q = QuantParams::default();
        assert_eq!(q.quantize(42.0), 42);
        assert_eq!(q.dequantize(42), 42.0);
    }
}
