//! Tensor shapes with NHWC helpers.

use std::fmt;

/// A dynamically-ranked tensor shape.
///
/// Mobile vision models are NHWC throughout, so convenience accessors for
/// the 4-D case are provided; other ranks (2-D for BERT logits, 1-D for
/// scores) work through the generic API.
///
/// # Example
///
/// ```
/// use aitax_tensor::Shape;
/// let s = Shape::nhwc(1, 224, 224, 3);
/// assert_eq!(s.elements(), 150_528);
/// assert_eq!(s.height(), Some(224));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from raw dimensions.
    ///
    /// # Panics
    ///
    /// Panics if the element count overflows `usize`.
    pub fn new(dims: &[usize]) -> Self {
        let s = Shape(dims.to_vec());
        s.checked_elements()
            // aitax-allow(panic-path): documented panic: an overflowing element count is unrepresentable
            .expect("shape element count overflows usize");
        s
    }

    /// Creates a 4-D NHWC shape.
    pub fn nhwc(n: usize, h: usize, w: usize, c: usize) -> Self {
        Shape::new(&[n, h, w, c])
    }

    /// Creates a square single-batch image shape `1 × side × side × c`.
    pub fn square_image(side: usize, channels: usize) -> Self {
        Shape::nhwc(1, side, side, channels)
    }

    /// The raw dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements.
    pub fn elements(&self) -> usize {
        // aitax-allow(panic-path): the element count was validated at construction
        self.checked_elements().expect("validated at construction")
    }

    fn checked_elements(&self) -> Option<usize> {
        self.0.iter().try_fold(1usize, |a, &d| a.checked_mul(d))
    }

    /// Batch dimension of a rank-4 shape.
    pub fn batch(&self) -> Option<usize> {
        (self.rank() == 4).then(|| self.0[0])
    }

    /// Height of a rank-4 NHWC shape.
    pub fn height(&self) -> Option<usize> {
        (self.rank() == 4).then(|| self.0[1])
    }

    /// Width of a rank-4 NHWC shape.
    pub fn width(&self) -> Option<usize> {
        (self.rank() == 4).then(|| self.0[2])
    }

    /// Channel count of a rank-4 NHWC shape.
    pub fn channels(&self) -> Option<usize> {
        (self.rank() == 4).then(|| self.0[3])
    }

    /// A copy with the spatial dimensions replaced (rank-4 only).
    ///
    /// # Panics
    ///
    /// Panics if the shape is not rank 4.
    pub fn with_spatial(&self, h: usize, w: usize) -> Shape {
        assert_eq!(self.rank(), 4, "with_spatial requires an NHWC shape");
        Shape::nhwc(self.0[0], h, w, self.0[3])
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(&dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nhwc_accessors() {
        let s = Shape::nhwc(2, 10, 20, 3);
        assert_eq!(s.batch(), Some(2));
        assert_eq!(s.height(), Some(10));
        assert_eq!(s.width(), Some(20));
        assert_eq!(s.channels(), Some(3));
        assert_eq!(s.elements(), 1200);
    }

    #[test]
    fn non_rank4_accessors_are_none() {
        let s = Shape::new(&[5, 7]);
        assert_eq!(s.height(), None);
        assert_eq!(s.channels(), None);
        assert_eq!(s.elements(), 35);
    }

    #[test]
    fn empty_dim_gives_zero_elements() {
        let s = Shape::new(&[4, 0, 3]);
        assert_eq!(s.elements(), 0);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.elements(), 1);
    }

    #[test]
    fn with_spatial_replaces_hw() {
        let s = Shape::nhwc(1, 224, 224, 3).with_spatial(32, 64);
        assert_eq!(s, Shape::nhwc(1, 32, 64, 3));
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn overflow_is_rejected() {
        Shape::new(&[usize::MAX, 2]);
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::nhwc(1, 2, 3, 4).to_string(), "[1x2x3x4]");
    }
}
