//! Element types used across the mobile ML pipeline.

use std::fmt;

/// Element type of a [`Tensor`](crate::Tensor).
///
/// Matches the numerical formats the paper evaluates (§III-A): 32-bit floats
/// and 8-bit quantized integers, plus the auxiliary types that show up in
/// real graphs (FP16 on GPUs, UINT8 camera bytes, INT32 accumulators /
/// detection indices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DType {
    /// 32-bit IEEE float — the paper's "FP32" configurations.
    F32,
    /// 16-bit IEEE float — used by GPU delegates.
    F16,
    /// Unsigned 8-bit quantized — TFLite's classic quantized format and raw
    /// camera bytes.
    U8,
    /// Signed 8-bit quantized — the paper's "INT8" configurations.
    I8,
    /// 32-bit signed integer — bias / index tensors.
    I32,
}

impl DType {
    /// Size of one element in bytes.
    ///
    /// # Example
    ///
    /// ```
    /// use aitax_tensor::DType;
    /// assert_eq!(DType::F32.size_bytes(), 4);
    /// assert_eq!(DType::I8.size_bytes(), 1);
    /// ```
    pub const fn size_bytes(self) -> usize {
        match self {
            DType::F32 | DType::I32 => 4,
            DType::F16 => 2,
            DType::U8 | DType::I8 => 1,
        }
    }

    /// Whether this is one of the floating-point types.
    pub const fn is_float(self) -> bool {
        matches!(self, DType::F32 | DType::F16)
    }

    /// Whether this is an 8-bit quantized type.
    pub const fn is_quantized(self) -> bool {
        matches!(self, DType::U8 | DType::I8)
    }

    /// All element types, in declaration order.
    pub const ALL: [DType; 5] = [DType::F32, DType::F16, DType::U8, DType::I8, DType::I32];
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::F32 => "fp32",
            DType::F16 => "fp16",
            DType::U8 => "uint8",
            DType::I8 => "int8",
            DType::I32 => "int32",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_layout() {
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::F16.size_bytes(), 2);
        assert_eq!(DType::U8.size_bytes(), 1);
        assert_eq!(DType::I8.size_bytes(), 1);
        assert_eq!(DType::I32.size_bytes(), 4);
    }

    #[test]
    fn classification_predicates() {
        assert!(DType::F32.is_float());
        assert!(DType::F16.is_float());
        assert!(!DType::I8.is_float());
        assert!(DType::I8.is_quantized());
        assert!(DType::U8.is_quantized());
        assert!(!DType::I32.is_quantized());
    }

    #[test]
    fn display_uses_paper_spelling() {
        assert_eq!(DType::F32.to_string(), "fp32");
        assert_eq!(DType::I8.to_string(), "int8");
    }

    #[test]
    fn all_lists_every_variant_once() {
        let mut seen = std::collections::HashSet::new();
        for d in DType::ALL {
            assert!(seen.insert(d));
        }
        assert_eq!(seen.len(), 5);
    }
}
