//! Tensors, element types and affine quantization for the `aitax` simulator.
//!
//! Mobile inference pipelines shuttle data between *raw sensor bytes*,
//! *float tensors* and *8-bit quantized tensors* (paper §II-B, "Type
//! conversion"). This crate provides the small, dependency-free tensor
//! machinery the pre-/post-processing implementations (`aitax-pipeline`)
//! and the model IR (`aitax-models`) are built on:
//!
//! * [`DType`] — the element types that appear in Table I (FP32, FP16,
//!   INT8/UINT8, INT32),
//! * [`Shape`] — NHWC-oriented shape arithmetic with overflow-checked
//!   element counts,
//! * [`QuantParams`] — affine (scale, zero-point) quantization exactly as
//!   TFLite defines it,
//! * [`Tensor`] — an owned, dynamically-typed buffer.
//!
//! # Example
//!
//! ```
//! use aitax_tensor::{QuantParams, Tensor};
//!
//! let q = QuantParams::new(0.5, 10);
//! let t = Tensor::from_f32(&[2, 2], vec![1.0, -0.5, 3.0, 0.0]);
//! let quantized = t.quantize(q)?;
//! let restored = quantized.dequantize()?;
//! assert!((restored.as_f32()?[0] - 1.0).abs() <= 0.5);
//! # Ok::<(), aitax_tensor::TensorError>(())
//! ```

pub mod dtype;
pub mod quant;
pub mod shape;
pub mod tensor;

pub use dtype::DType;
pub use quant::QuantParams;
pub use shape::Shape;
pub use tensor::{Tensor, TensorError};
