//! The owned, dynamically-typed tensor.

use std::error::Error;
use std::fmt;

use crate::dtype::DType;
use crate::quant::QuantParams;
use crate::shape::Shape;

/// Errors returned by tensor operations.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// The buffer length does not match the shape's element count.
    LengthMismatch {
        /// Elements implied by the shape.
        expected: usize,
        /// Elements actually provided.
        actual: usize,
    },
    /// The tensor's dtype does not support the requested view/operation.
    DTypeMismatch {
        /// DType required by the operation.
        expected: DType,
        /// DType the tensor actually has.
        actual: DType,
    },
    /// Quantization parameters were required but absent.
    MissingQuantParams,
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "buffer has {actual} elements but shape implies {expected}"
                )
            }
            TensorError::DTypeMismatch { expected, actual } => {
                write!(f, "operation requires {expected} tensor but found {actual}")
            }
            TensorError::MissingQuantParams => {
                write!(f, "quantized tensor is missing quantization parameters")
            }
        }
    }
}

impl Error for TensorError {}

#[derive(Debug, Clone, PartialEq)]
enum Storage {
    F32(Vec<f32>),
    U8(Vec<u8>),
    I8(Vec<i8>),
    I32(Vec<i32>),
}

/// An owned, dynamically-typed tensor.
///
/// # Example
///
/// ```
/// use aitax_tensor::{DType, Tensor};
/// let t = Tensor::zeros(&[1, 2, 2, 3], DType::F32);
/// assert_eq!(t.byte_len(), 48);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    dtype: DType,
    quant: Option<QuantParams>,
    storage: Storage,
}

impl Tensor {
    /// An all-zero tensor of the given shape and dtype.
    ///
    /// F16 tensors are stored as f32 internally (the simulator never needs
    /// true half-precision arithmetic, only half-precision *sizes*).
    pub fn zeros(dims: &[usize], dtype: DType) -> Self {
        let shape = Shape::new(dims);
        let n = shape.elements();
        let storage = match dtype {
            DType::F32 | DType::F16 => Storage::F32(vec![0.0; n]),
            DType::U8 => Storage::U8(vec![0; n]),
            DType::I8 => Storage::I8(vec![0; n]),
            DType::I32 => Storage::I32(vec![0; n]),
        };
        Tensor {
            shape,
            dtype,
            quant: None,
            storage,
        }
    }

    /// Builds an F32 tensor from data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` disagrees with the shape.
    pub fn from_f32(dims: &[usize], data: Vec<f32>) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            shape.elements(),
            data.len(),
            "data length must match shape elements"
        );
        Tensor {
            shape,
            dtype: DType::F32,
            quant: None,
            storage: Storage::F32(data),
        }
    }

    /// Builds a U8 tensor from raw bytes (camera frames, bitmaps).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` disagrees with the shape.
    pub fn from_u8(dims: &[usize], data: Vec<u8>) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            shape.elements(),
            data.len(),
            "data length must match shape elements"
        );
        Tensor {
            shape,
            dtype: DType::U8,
            quant: None,
            storage: Storage::U8(data),
        }
    }

    /// Builds an I8 tensor with quantization parameters.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` disagrees with the shape.
    pub fn from_i8(dims: &[usize], data: Vec<i8>, quant: QuantParams) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            shape.elements(),
            data.len(),
            "data length must match shape elements"
        );
        Tensor {
            shape,
            dtype: DType::I8,
            quant: Some(quant),
            storage: Storage::I8(data),
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The tensor's element type.
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// Quantization parameters, if this tensor is quantized.
    pub fn quant_params(&self) -> Option<QuantParams> {
        self.quant
    }

    /// Number of elements.
    pub fn elements(&self) -> usize {
        self.shape.elements()
    }

    /// Size of the tensor payload in bytes (respecting dtype width).
    pub fn byte_len(&self) -> usize {
        self.elements() * self.dtype.size_bytes()
    }

    /// Borrows the data as `f32`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DTypeMismatch`] unless the dtype is F32/F16.
    pub fn as_f32(&self) -> Result<&[f32], TensorError> {
        match &self.storage {
            Storage::F32(v) => Ok(v),
            _ => Err(TensorError::DTypeMismatch {
                expected: DType::F32,
                actual: self.dtype,
            }),
        }
    }

    /// Mutably borrows the data as `f32`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DTypeMismatch`] unless the dtype is F32/F16.
    pub fn as_f32_mut(&mut self) -> Result<&mut [f32], TensorError> {
        let dtype = self.dtype;
        match &mut self.storage {
            Storage::F32(v) => Ok(v),
            _ => Err(TensorError::DTypeMismatch {
                expected: DType::F32,
                actual: dtype,
            }),
        }
    }

    /// Borrows the data as `u8`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DTypeMismatch`] unless the dtype is U8.
    pub fn as_u8(&self) -> Result<&[u8], TensorError> {
        match &self.storage {
            Storage::U8(v) => Ok(v),
            _ => Err(TensorError::DTypeMismatch {
                expected: DType::U8,
                actual: self.dtype,
            }),
        }
    }

    /// Borrows the data as `i8`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DTypeMismatch`] unless the dtype is I8.
    pub fn as_i8(&self) -> Result<&[i8], TensorError> {
        match &self.storage {
            Storage::I8(v) => Ok(v),
            _ => Err(TensorError::DTypeMismatch {
                expected: DType::I8,
                actual: self.dtype,
            }),
        }
    }

    /// Borrows the data as `i32`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DTypeMismatch`] unless the dtype is I32.
    pub fn as_i32(&self) -> Result<&[i32], TensorError> {
        match &self.storage {
            Storage::I32(v) => Ok(v),
            _ => Err(TensorError::DTypeMismatch {
                expected: DType::I32,
                actual: self.dtype,
            }),
        }
    }

    /// Quantizes an F32 tensor to I8 with the given parameters.
    ///
    /// This is the real "type conversion" pre-processing step of §II-B: it
    /// touches every element once.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DTypeMismatch`] if the tensor is not F32.
    pub fn quantize(&self, params: QuantParams) -> Result<Tensor, TensorError> {
        let data = self.as_f32()?;
        let q: Vec<i8> = data.iter().map(|&r| params.quantize(r)).collect();
        Ok(Tensor {
            shape: self.shape.clone(),
            dtype: DType::I8,
            quant: Some(params),
            storage: Storage::I8(q),
        })
    }

    /// Dequantizes an I8 tensor back to F32 (post-processing step marked
    /// "*" in Table I).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DTypeMismatch`] if the tensor is not I8, or
    /// [`TensorError::MissingQuantParams`] if it carries no parameters.
    pub fn dequantize(&self) -> Result<Tensor, TensorError> {
        let data = self.as_i8()?;
        let params = self.quant.ok_or(TensorError::MissingQuantParams)?;
        let f: Vec<f32> = data.iter().map(|&q| params.dequantize(q)).collect();
        Ok(Tensor {
            shape: self.shape.clone(),
            dtype: DType::F32,
            quant: None,
            storage: Storage::F32(f),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_size() {
        let t = Tensor::zeros(&[2, 3], DType::I32);
        assert_eq!(t.elements(), 6);
        assert_eq!(t.byte_len(), 24);
        assert!(t.as_i32().unwrap().iter().all(|&x| x == 0));
    }

    #[test]
    fn f16_counts_two_bytes_per_element() {
        let t = Tensor::zeros(&[10], DType::F16);
        assert_eq!(t.byte_len(), 20);
        // Stored as f32 internally but sized as f16.
        assert!(t.as_f32().is_ok());
    }

    #[test]
    fn wrong_view_errors() {
        let t = Tensor::zeros(&[4], DType::F32);
        let err = t.as_u8().unwrap_err();
        assert_eq!(
            err,
            TensorError::DTypeMismatch {
                expected: DType::U8,
                actual: DType::F32
            }
        );
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn quantize_dequantize_round_trip() {
        let params = QuantParams::new(0.05, 3);
        let data = vec![0.0f32, 1.0, -1.0, 2.5, -2.5];
        let t = Tensor::from_f32(&[5], data.clone());
        let q = t.quantize(params).unwrap();
        assert_eq!(q.dtype(), DType::I8);
        assert_eq!(q.quant_params(), Some(params));
        let back = q.dequantize().unwrap();
        for (orig, rt) in data.iter().zip(back.as_f32().unwrap()) {
            assert!((orig - rt).abs() <= params.max_round_trip_error() + 1e-6);
        }
    }

    #[test]
    fn dequantize_without_params_errors() {
        let t = Tensor {
            shape: Shape::new(&[1]),
            dtype: DType::I8,
            quant: None,
            storage: Storage::I8(vec![5]),
        };
        assert_eq!(t.dequantize().unwrap_err(), TensorError::MissingQuantParams);
    }

    #[test]
    #[should_panic(expected = "match shape")]
    fn mismatched_data_length_panics() {
        Tensor::from_f32(&[3], vec![1.0, 2.0]);
    }

    #[test]
    fn mutation_through_view() {
        let mut t = Tensor::zeros(&[2], DType::F32);
        t.as_f32_mut().unwrap()[1] = 9.0;
        assert_eq!(t.as_f32().unwrap(), &[0.0, 9.0]);
    }
}
