//! Property tests for quantization and shape arithmetic, driven by the
//! deterministic simulator RNG so the randomized cases reproduce exactly.

use aitax_des::SimRng;
use aitax_tensor::{DType, QuantParams, Shape, Tensor};

/// Quantization is monotone: larger reals never map to smaller
/// quantized codes.
#[test]
fn quantization_is_monotone() {
    let mut rng = SimRng::seed_from(0x7E50_0001);
    for case in 0..64 {
        let scale = rng.uniform(0.001, 10.0) as f32;
        let zp = rng.uniform(-100.0, 100.0) as i32;
        let a = rng.uniform(-500.0, 500.0) as f32;
        let b = rng.uniform(-500.0, 500.0) as f32;
        let q = QuantParams::new(scale, zp);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(q.quantize(lo) <= q.quantize(hi), "case {case}");
    }
}

/// Dequantize(quantize(x)) is within half a step for values inside
/// the representable range.
#[test]
fn round_trip_error_bound() {
    let mut rng = SimRng::seed_from(0x7E50_0002);
    for case in 0..64 {
        let scale = rng.uniform(0.01, 2.0) as f32;
        let zp = rng.uniform(-50.0, 50.0) as i32;
        let x = rng.uniform(-100.0, 100.0) as f32;
        let q = QuantParams::new(scale, zp);
        let lo = q.dequantize(i8::MIN);
        let hi = q.dequantize(i8::MAX);
        if x < lo || x > hi {
            continue; // saturated values are out of contract
        }
        let rt = q.dequantize(q.quantize(x));
        assert!(
            (rt - x).abs() <= q.max_round_trip_error() + 1e-4,
            "case {case}: |{rt} - {x}| > max_round_trip_error"
        );
    }
}

/// from_range always covers the requested range ends within one step.
#[test]
fn from_range_covers() {
    let mut rng = SimRng::seed_from(0x7E50_0003);
    for case in 0..64 {
        let lo = rng.uniform(-100.0, 0.0) as f32;
        let hi = lo + rng.uniform(0.1, 200.0) as f32;
        let q = QuantParams::from_range(lo, hi);
        assert!(
            (q.dequantize(q.quantize(lo)) - lo).abs() <= q.scale() * 1.5,
            "case {case}: low end uncovered"
        );
        assert!(
            (q.dequantize(q.quantize(hi)) - hi).abs() <= q.scale() * 1.5,
            "case {case}: high end uncovered"
        );
    }
}

/// Shape element counts multiply; byte length respects dtype width.
#[test]
fn shape_and_bytes() {
    let mut rng = SimRng::seed_from(0x7E50_0004);
    for case in 0..64 {
        let ndims = rng.uniform_u64(1, 5) as usize;
        let dims: Vec<usize> = (0..ndims)
            .map(|_| rng.uniform_u64(1, 20) as usize)
            .collect();
        let shape = Shape::new(&dims);
        let expect: usize = dims.iter().product();
        assert_eq!(shape.elements(), expect, "case {case}");
        for dtype in DType::ALL {
            let t = Tensor::zeros(&dims, dtype);
            assert_eq!(
                t.byte_len(),
                expect * dtype.size_bytes(),
                "case {case} {dtype:?}"
            );
        }
    }
}

/// Tensor quantize→dequantize preserves shape and dtype transitions.
#[test]
fn tensor_quantization_shape_safety() {
    let mut rng = SimRng::seed_from(0x7E50_0005);
    for case in 0..64 {
        let n = rng.uniform_u64(1, 256) as usize;
        let scale = rng.uniform(0.01, 1.0) as f32;
        let data: Vec<f32> = (0..n).map(|i| (i as f32) * 0.37 - 20.0).collect();
        let t = Tensor::from_f32(&[n], data);
        let q = t.quantize(QuantParams::new(scale, 0)).unwrap();
        assert_eq!(q.dtype(), DType::I8, "case {case}");
        assert_eq!(q.elements(), n, "case {case}");
        assert_eq!(q.byte_len() * 4, t.byte_len(), "case {case}");
        let back = q.dequantize().unwrap();
        assert_eq!(back.dtype(), DType::F32, "case {case}");
        assert_eq!(back.shape(), t.shape(), "case {case}");
    }
}
