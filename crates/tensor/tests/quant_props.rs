//! Property tests for quantization and shape arithmetic.

use aitax_tensor::{DType, QuantParams, Shape, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quantization is monotone: larger reals never map to smaller
    /// quantized codes.
    #[test]
    fn quantization_is_monotone(scale in 0.001f32..10.0, zp in -100i32..100, a in -500f32..500.0, b in -500f32..500.0) {
        let q = QuantParams::new(scale, zp);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(q.quantize(lo) <= q.quantize(hi));
    }

    /// Dequantize(quantize(x)) is within half a step for values inside
    /// the representable range.
    #[test]
    fn round_trip_error_bound(scale in 0.01f32..2.0, zp in -50i32..50, x in -100f32..100.0) {
        let q = QuantParams::new(scale, zp);
        let lo = q.dequantize(i8::MIN);
        let hi = q.dequantize(i8::MAX);
        prop_assume!(x >= lo && x <= hi);
        let rt = q.dequantize(q.quantize(x));
        prop_assert!((rt - x).abs() <= q.max_round_trip_error() + 1e-4);
    }

    /// from_range always covers the requested range ends within one step.
    #[test]
    fn from_range_covers(lo in -100f32..0.0, width in 0.1f32..200.0) {
        let hi = lo + width;
        let q = QuantParams::from_range(lo, hi);
        prop_assert!((q.dequantize(q.quantize(lo)) - lo).abs() <= q.scale() * 1.5);
        prop_assert!((q.dequantize(q.quantize(hi)) - hi).abs() <= q.scale() * 1.5);
    }

    /// Shape element counts multiply; byte length respects dtype width.
    #[test]
    fn shape_and_bytes(dims in prop::collection::vec(1usize..20, 1..5)) {
        let shape = Shape::new(&dims);
        let expect: usize = dims.iter().product();
        prop_assert_eq!(shape.elements(), expect);
        for dtype in DType::ALL {
            let t = Tensor::zeros(&dims, dtype);
            prop_assert_eq!(t.byte_len(), expect * dtype.size_bytes());
        }
    }

    /// Tensor quantize→dequantize preserves shape and dtype transitions.
    #[test]
    fn tensor_quantization_shape_safety(n in 1usize..256, scale in 0.01f32..1.0) {
        let data: Vec<f32> = (0..n).map(|i| (i as f32) * 0.37 - 20.0).collect();
        let t = Tensor::from_f32(&[n], data);
        let q = t.quantize(QuantParams::new(scale, 0)).unwrap();
        prop_assert_eq!(q.dtype(), DType::I8);
        prop_assert_eq!(q.elements(), n);
        prop_assert_eq!(q.byte_len() * 4, t.byte_len());
        let back = q.dequantize().unwrap();
        prop_assert_eq!(back.dtype(), DType::F32);
        prop_assert_eq!(back.shape(), t.shape());
    }
}
