//! Plain-text and TSV table rendering for experiment results.

use std::fmt::Write as _;

/// A simple column-aligned table that can render as text or TSV.
///
/// # Example
///
/// ```
/// use aitax_core::report::Table;
/// let mut t = Table::new(vec!["model", "latency_ms"]);
/// t.row(vec!["mobilenet".into(), "12.3".into()]);
/// assert!(t.render_text().contains("mobilenet"));
/// assert_eq!(t.render_tsv().lines().count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<&str>) -> Self {
        Table {
            headers: headers.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The raw rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders with aligned columns.
    pub fn render_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<width$}  ", cell, width = widths[i]);
            }
            out.push('\n');
        };
        fmt_row(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }

    /// Renders as tab-separated values (header + rows).
    pub fn render_tsv(&self) -> String {
        let mut out = self.headers.join("\t");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }
}

/// Formats a millisecond quantity with sensible precision.
pub fn fmt_ms(ms: f64) -> String {
    if ms >= 100.0 {
        format!("{ms:.0}")
    } else if ms >= 10.0 {
        format!("{ms:.1}")
    } else {
        format!("{ms:.2}")
    }
}

/// Formats a ratio like `2.3x`.
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.2}x")
}

/// Formats a fraction as a percentage.
pub fn fmt_pct(frac: f64) -> String {
    format!("{:.1}%", frac * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_render_aligns_columns() {
        let mut t = Table::new(vec!["a", "bbbb"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        let text = t.render_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a     "));
        assert!(lines[2].starts_with("xxxxxx"));
    }

    #[test]
    fn tsv_round_trip() {
        let mut t = Table::new(vec!["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["3".into(), "4".into()]);
        assert_eq!(t.render_tsv(), "x\ty\n1\t2\n3\t4\n");
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        Table::new(vec!["only"]).row(vec!["a".into(), "b".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ms(245.7), "246");
        assert_eq!(fmt_ms(24.57), "24.6");
        assert_eq!(fmt_ms(2.457), "2.46");
        assert_eq!(fmt_ratio(7.018), "7.02x");
        assert_eq!(fmt_pct(0.5), "50.0%");
    }
}
