//! Canonical JSON rendering primitives for versioned artifacts.
//!
//! Both sweep artifacts (`aitax-lab/v1`) and fleet artifacts
//! (`aitax-fleet/v1`) are hand-rolled (the workspace is dependency-free)
//! and **canonical**: fixed field order, fixed float formatting, no
//! wall-clock or host data — so artifact bytes are identical for any
//! thread count and any machine. Wall-clock performance of a run is
//! reported on stderr by the binaries, never in an artifact.

use std::fmt::Write as _;

use crate::stats::{DistStats, StreamDist};

/// Escapes a string for a JSON literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Canonical float formatting for artifacts: six decimal places, `0` for
/// non-finite values (which deterministic runs never produce anyway).
pub fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "0".into()
    }
}

/// Renders a [`DistStats`] as a canonical JSON object (appended to
/// `out`). Shared by the lab and fleet artifact writers.
pub fn dist_json(out: &mut String, d: &DistStats) {
    let _ = write!(
        out,
        "{{\"n\":{},\"mean_ms\":{},\"stddev_ms\":{},\"cv\":{},\"min_ms\":{},\"p50_ms\":{},\
         \"p95_ms\":{},\"p99_ms\":{},\"max_ms\":{},\"max_dev_from_median\":{},\"cdf\":[",
        d.n,
        json_num(d.mean),
        json_num(d.stddev),
        json_num(d.cv),
        json_num(d.min),
        json_num(d.p50),
        json_num(d.p95),
        json_num(d.p99),
        json_num(d.max),
        json_num(d.max_dev_from_median),
    );
    for (i, (edge, frac)) in d.cdf.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{},{}]", json_num(*edge), json_num(*frac));
    }
    out.push_str("]}");
}

/// Renders a [`StreamDist`] as a canonical JSON object (appended to
/// `out`): Welford moments, exact min/max, histogram-estimated
/// percentiles and the sparse non-empty histogram bins.
pub fn stream_dist_json(out: &mut String, d: &StreamDist) {
    let _ = write!(
        out,
        "{{\"n\":{},\"mean_ms\":{},\"stddev_ms\":{},\"cv\":{},\"min_ms\":{},\"p50_ms\":{},\
         \"p95_ms\":{},\"p99_ms\":{},\"max_ms\":{},\"hist\":[",
        d.count(),
        json_num(d.mean()),
        json_num(d.stddev()),
        json_num(d.cv()),
        json_num(d.min_ms()),
        json_num(d.p50_ms()),
        json_num(d.p95_ms()),
        json_num(d.p99_ms()),
        json_num(d.max_ms()),
    );
    for (i, (bin, count)) in d.histogram().nonzero_bins().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{bin},{count}]");
    }
    out.push_str("]}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_and_number_formats() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_num(1.5), "1.500000");
        assert_eq!(json_num(f64::NAN), "0");
        assert_eq!(json_num(f64::INFINITY), "0");
    }

    #[test]
    fn dist_json_shape() {
        let mut out = String::new();
        dist_json(&mut out, &DistStats::from_ms(&[1.0, 2.0, 3.0]));
        assert!(out.starts_with("{\"n\":3,"));
        assert!(out.contains("\"cdf\":[["));
        assert!(out.ends_with("]}"));
    }

    #[test]
    fn stream_dist_json_shape() {
        let mut d = StreamDist::new();
        d.record(1.0);
        d.record(10.0);
        let mut out = String::new();
        stream_dist_json(&mut out, &d);
        assert!(out.starts_with("{\"n\":2,"));
        assert!(out.contains("\"hist\":[["));
        assert!(out.ends_with("]}"));
        // Canonical: same accumulator renders the same bytes.
        let mut again = String::new();
        stream_dist_json(&mut again, &d);
        assert_eq!(out, again);
    }
}
