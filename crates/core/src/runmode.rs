//! Run modes: the three ways the paper packages the same model.
//!
//! §IV compares models run "(1) [as] pure benchmarks from the command
//! line; (2) packaged into benchmark apps with a user interface ...; and
//! (3) executed as part of a real application" — Fig. 3 shows the real
//! app is consistently slower end-to-end because of capture and
//! pre-processing the benchmarks never perform.

use aitax_des::SimSpan;
use aitax_kernel::NoiseConfig;
use aitax_pipeline::RuntimeKind;

/// How the model is packaged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RunMode {
    /// The TFLite command-line benchmark utility: random inputs, native
    /// code, a quiet freshly-cooled device.
    CliBenchmark,
    /// The TFLite Android benchmark app: same random-input methodology
    /// behind a minimal UI.
    BenchmarkApp,
    /// A real application: camera capture, managed-runtime
    /// pre-processing, UI rendering, ambient system noise.
    AndroidApp,
}

impl RunMode {
    /// All modes, in the paper's (1)(2)(3) order.
    pub const ALL: [RunMode; 3] = [
        RunMode::CliBenchmark,
        RunMode::BenchmarkApp,
        RunMode::AndroidApp,
    ];

    /// Whether input comes from the camera (vs. random generation).
    pub fn uses_camera(self) -> bool {
        matches!(self, RunMode::AndroidApp)
    }

    /// Which implementation path runs the pre-/post-processing.
    pub fn runtime_kind(self) -> RuntimeKind {
        match self {
            RunMode::CliBenchmark | RunMode::BenchmarkApp => RuntimeKind::Native,
            RunMode::AndroidApp => RuntimeKind::Managed,
        }
    }

    /// Ambient background activity for this mode.
    pub fn noise(self) -> NoiseConfig {
        match self {
            RunMode::CliBenchmark => NoiseConfig::benchmark_quiet(),
            RunMode::BenchmarkApp => NoiseConfig {
                // A foreground app process brings some system activity.
                mean_interarrival: SimSpan::from_ms(12.0),
                median_burst_cycles: 8.0e5,
                burst_sigma: 0.5,
                irq_jitter_median: SimSpan::from_us(40.0),
                irq_jitter_sigma: 0.4,
            },
            RunMode::AndroidApp => NoiseConfig::android_app(),
        }
    }

    /// Per-iteration UI/application housekeeping (rendering the result
    /// view, choreographer work). Zero for the CLI tool.
    pub fn ui_overhead_cycles(self) -> f64 {
        match self {
            RunMode::CliBenchmark => 0.0,
            // Minimal benchmark UI: progress text updates.
            RunMode::BenchmarkApp => 1.4e6,
            // Camera preview + overlay rendering (managed code).
            RunMode::AndroidApp => 5.6e6,
        }
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            RunMode::CliBenchmark => "cli-benchmark",
            RunMode::BenchmarkApp => "benchmark-app",
            RunMode::AndroidApp => "android-app",
        }
    }
}

impl std::fmt::Display for RunMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_the_app_uses_the_camera() {
        assert!(!RunMode::CliBenchmark.uses_camera());
        assert!(!RunMode::BenchmarkApp.uses_camera());
        assert!(RunMode::AndroidApp.uses_camera());
    }

    #[test]
    fn app_runs_managed_code() {
        assert_eq!(RunMode::AndroidApp.runtime_kind(), RuntimeKind::Managed);
        assert_eq!(RunMode::CliBenchmark.runtime_kind(), RuntimeKind::Native);
    }

    #[test]
    fn ui_overhead_grows_with_packaging() {
        assert_eq!(RunMode::CliBenchmark.ui_overhead_cycles(), 0.0);
        assert!(
            RunMode::AndroidApp.ui_overhead_cycles() > RunMode::BenchmarkApp.ui_overhead_cycles()
        );
    }

    #[test]
    fn noise_intensity_ordering() {
        // Quieter systems have longer inter-arrival gaps.
        let cli = RunMode::CliBenchmark.noise().mean_interarrival;
        let bench = RunMode::BenchmarkApp.noise().mean_interarrival;
        let app = RunMode::AndroidApp.noise().mean_interarrival;
        assert!(cli > bench);
        assert!(bench > app);
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> = RunMode::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), 3);
    }
}
