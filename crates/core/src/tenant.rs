//! Multi-tenant QoS vocabulary and per-tenant tax attribution.
//!
//! The paper measures one app at a time; a real device runs camera, pose,
//! NLP, and photo pipelines *concurrently* on one SoC. When they contend,
//! the AI tax stops being a property of a pipeline and becomes a property
//! of the *mix*: part of each tenant's latency is tax it pays for its own
//! stack, and part is tax other tenants impose through shared queues.
//! This module holds the vocabulary `aitax-serve` attributes that split
//! with: QoS classes mapped onto scheduler priorities, and the
//! [`TenantTax`] record pairing each tenant's in-mix [`TaxReport`] with
//! the contention it suffered and caused.

use crate::stage::TaxReport;

/// Quality-of-service class of a serving tenant.
///
/// Classes map onto the kernel's QoS priorities: interactive work
/// preempts best-effort work, which orders ahead of background work, on
/// CPU run queues and accelerator grants alike.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QosClass {
    /// User-blocking pipelines (viewfinder, dictation): highest priority.
    Interactive,
    /// Latency-tolerant but user-visible work (photo enhancement).
    BestEffort,
    /// Deferrable bulk work (gallery indexing): runs in the gaps.
    Background,
}

impl QosClass {
    /// Every class, highest priority first.
    pub const ALL: [QosClass; 3] = [
        QosClass::Interactive,
        QosClass::BestEffort,
        QosClass::Background,
    ];

    /// The scheduler priority this class runs at (see
    /// [`TaskSpec::priority`](aitax_kernel::TaskSpec)).
    pub fn priority(self) -> i8 {
        match self {
            QosClass::Interactive => 2,
            QosClass::BestEffort => 1,
            QosClass::Background => 0,
        }
    }

    /// Stable lower-case label (CLI values, artifact fields).
    pub fn label(self) -> &'static str {
        match self {
            QosClass::Interactive => "interactive",
            QosClass::BestEffort => "best-effort",
            QosClass::Background => "background",
        }
    }

    /// Parses a [`QosClass::label`] back.
    pub fn parse(s: &str) -> Option<QosClass> {
        QosClass::ALL.into_iter().find(|c| c.label() == s)
    }
}

impl std::fmt::Display for QosClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One tenant's share of a multi-tenant serving run: its own tax report
/// measured *in the mix*, plus the contention attribution against the
/// matching solo run.
///
/// Conservation: across all tenants of one scenario,
/// `Σ caused_ms + Σ self_ms == Σ suffered_ms` — every millisecond of
/// added latency is charged to exactly one culprit (possibly the victim
/// itself). `aitax-testkit` checks this on every scenario.
#[derive(Debug, Clone)]
pub struct TenantTax {
    /// Tenant label (unique within a scenario).
    pub tenant: String,
    /// The tenant's QoS class.
    pub qos: QosClass,
    /// Stage breakdowns of the tenant's completed requests in the mix.
    pub tax: TaxReport,
    /// Added end-to-end latency vs the tenant's solo run, summed over
    /// completed requests — what multi-tenancy cost *this* tenant.
    pub suffered_ms: f64,
    /// Added latency this tenant's holds imposed on *other* tenants.
    pub caused_ms: f64,
    /// Added latency this tenant imposed on itself (queueing behind its
    /// own earlier requests).
    pub self_ms: f64,
}

impl TenantTax {
    /// Net contention balance: positive for aggressors (causes more
    /// delay than it absorbs), negative for victims.
    pub fn contention_balance_ms(&self) -> f64 {
        self.caused_ms + self.self_ms - self.suffered_ms
    }
}

/// Sum of suffered contention across tenants — the total AI tax the mix
/// added over the solo baselines.
pub fn total_added_ms(tenants: &[TenantTax]) -> f64 {
    tenants.iter().map(|t| t.suffered_ms).sum()
}

/// Sum of attributed contention (cross-tenant caused + self-inflicted).
pub fn total_attributed_ms(tenants: &[TenantTax]) -> f64 {
    tenants.iter().map(|t| t.caused_ms + t.self_ms).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priorities_are_strictly_ordered() {
        assert!(QosClass::Interactive.priority() > QosClass::BestEffort.priority());
        assert!(QosClass::BestEffort.priority() > QosClass::Background.priority());
        assert_eq!(QosClass::Background.priority(), 0, "legacy band");
    }

    #[test]
    fn labels_round_trip() {
        for c in QosClass::ALL {
            assert_eq!(QosClass::parse(c.label()), Some(c));
            assert_eq!(format!("{c}"), c.label());
        }
        assert_eq!(QosClass::parse("realtime"), None);
    }

    #[test]
    fn attribution_sums() {
        let t = |s: f64, c: f64, own: f64| TenantTax {
            tenant: "t".into(),
            qos: QosClass::BestEffort,
            tax: TaxReport::new(Vec::new()),
            suffered_ms: s,
            caused_ms: c,
            self_ms: own,
        };
        let mix = [t(10.0, 14.0, 1.0), t(8.0, 2.0, 1.0)];
        assert_eq!(total_added_ms(&mix), 18.0);
        assert_eq!(total_attributed_ms(&mix), 18.0);
        assert!(mix[0].contention_balance_ms() > 0.0, "aggressor");
        assert!(mix[1].contention_balance_ms() < 0.0, "victim");
    }
}
