//! The end-to-end pipeline runner.
//!
//! Drives a [`Machine`] through N iterations of the §II pipeline —
//! data capture → pre-processing → inference → post-processing (+ UI) —
//! and records a [`StageBreakdown`] per iteration. This is the
//! measurement harness every figure-level experiment builds on.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use aitax_capture::{CameraConfig, RandomTensorGen, StdlibFlavor};
use aitax_des::{FaultPlan, SimSpan, SimTime, TraceBuffer};
use aitax_framework::{Engine, Plan, Session};
use aitax_kernel::{Machine, MachineStats, NoiseConfig, TaskSpec, Work};
use aitax_models::zoo::{MlTask, ModelId, PostTask, PreTask, Zoo, ZooEntry};
use aitax_models::Graph;
use aitax_pipeline::{CostModel, PixelOp};
use aitax_soc::{SocCatalog, SocId};
use aitax_tensor::DType;

use crate::context::SimContext;
use crate::degradation::DegradationReport;
use crate::energy::EnergyReport;
use crate::runmode::RunMode;
use crate::stage::{Stage, StageBreakdown, TaxReport};

/// Configuration of one end-to-end run.
#[derive(Debug, Clone)]
pub struct E2eConfig {
    model: ModelId,
    dtype: DType,
    engine: Engine,
    run_mode: RunMode,
    soc: SocId,
    iterations: usize,
    seed: u64,
    background_loops: usize,
    background_engine: Option<Engine>,
    tracing: bool,
    trace_bound: Option<usize>,
    stdlib: StdlibFlavor,
    camera: CameraConfig,
    initial_temp_c: Option<f64>,
    wander_probability: Option<f64>,
    preproc_on_dsp: bool,
    fault_plan: Option<FaultPlan>,
}

impl E2eConfig {
    /// Starts a configuration with the paper's defaults: CLI benchmark on
    /// the SD845 (Pixel 3), TFLite CPU ×4, 500 iterations (§III-D).
    pub fn new(model: ModelId, dtype: DType) -> Self {
        E2eConfig {
            model,
            dtype,
            engine: Engine::tflite_cpu(4),
            run_mode: RunMode::CliBenchmark,
            soc: SocId::Sd845,
            iterations: 500,
            seed: 1,
            background_loops: 0,
            background_engine: None,
            tracing: false,
            trace_bound: None,
            stdlib: StdlibFlavor::LibCxx,
            camera: CameraConfig::vga_preview(),
            initial_temp_c: None,
            wander_probability: None,
            preproc_on_dsp: false,
            fault_plan: None,
        }
    }

    /// Sets the inference engine.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the packaging mode.
    pub fn run_mode(mut self, mode: RunMode) -> Self {
        self.run_mode = mode;
        self
    }

    /// Sets the platform.
    pub fn soc(mut self, soc: SocId) -> Self {
        self.soc = soc;
        self
    }

    /// Sets the iteration count.
    pub fn iterations(mut self, n: usize) -> Self {
        self.iterations = n;
        self
    }

    /// Sets the random seed (same seed → identical report).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adds `count` concurrent background inference loops running the
    /// same model through `engine` — the Fig. 9/10 multi-tenancy setup.
    pub fn background(mut self, count: usize, engine: Engine) -> Self {
        self.background_loops = count;
        self.background_engine = Some(engine);
        self
    }

    /// Enables structured tracing (for profiler views).
    pub fn tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// Bounds the traced-event window to the most recent `cap` events
    /// (the des ring-buffer streaming mode), capping trace memory for
    /// long runs. A bound large enough that nothing is evicted is
    /// observationally identical to an unbounded trace; when eviction
    /// does occur, profiler views cover the retained window and
    /// [`TraceBuffer::dropped`] reports how much history was shed.
    pub fn trace_bound(mut self, cap: usize) -> Self {
        self.trace_bound = Some(cap);
        self
    }

    /// Selects the C++ standard library flavor of the benchmark binary
    /// (the §IV-A random-generation fallacy).
    pub fn stdlib(mut self, flavor: StdlibFlavor) -> Self {
        self.stdlib = flavor;
        self
    }

    /// Overrides the camera stream used in app mode.
    pub fn camera(mut self, camera: CameraConfig) -> Self {
        self.camera = camera;
        self
    }

    /// Starts the chip at a given temperature instead of the cooled-down
    /// idle temperature (the §III-D methodology study).
    pub fn initial_temp(mut self, temp_c: f64) -> Self {
        self.initial_temp_c = Some(temp_c);
        self
    }

    /// Overrides the scheduler's wander probability for NNAPI-fallback
    /// threads (ablation: set 0 to pin the fallback thread).
    pub fn wander_probability(mut self, p: f64) -> Self {
        self.wander_probability = Some(p);
        self
    }

    /// Installs a seeded fault plan for the run. An empty plan is
    /// guaranteed to leave results byte-identical to no plan at all;
    /// `tests/fault_tolerance.rs` pins this.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Routes pre-processing through the DSP (a FastCV-style image
    /// pipeline) instead of CPU code — the design direction the paper's
    /// conclusion floats: "consider dropping an expensive tensor
    /// accelerator in favor of a cheaper DSP that can also do
    /// pre-processing".
    pub fn preproc_on_dsp(mut self, on: bool) -> Self {
        self.preproc_on_dsp = on;
        self
    }

    /// Runs the experiment in a throwaway [`SimContext`].
    ///
    /// # Panics
    ///
    /// Panics if the engine cannot run the model's datatype (e.g. the
    /// Hexagon delegate with an FP32 graph) — check Table I first.
    pub fn run(self) -> E2eReport {
        self.run_in(&mut SimContext::new())
    }

    /// Runs the experiment in `ctx`, reusing its machine when possible.
    ///
    /// Results are byte-identical to [`E2eConfig::run`]: the reused
    /// machine is reset to a fresh boot's state, and the graph/plan come
    /// from caches of pure functions. What reuse buys is setup cost —
    /// repeated runs skip the machine allocation, graph build and
    /// session compile (the simulator's own "model initialization" tax).
    ///
    /// # Panics
    ///
    /// Panics if the engine cannot run the model's datatype (e.g. the
    /// Hexagon delegate with an FP32 graph) — check Table I first.
    pub fn run_in(self, ctx: &mut SimContext) -> E2eReport {
        // The one catalog lookup of the run: compile paths key off
        // `self.soc` and the machine checkout resolves its own spec only
        // when it actually boots a machine.
        let spec = SocCatalog::get(self.soc);
        let entry = Zoo::entry(self.model);
        let session = Session::compile_cached(self.engine, self.model, self.dtype, self.soc)
            // aitax-allow(panic-path): user-facing runner: an unsupported engine/model pairing is a usage error worth aborting
            .unwrap_or_else(|e| panic!("cannot run {}: {e}", entry.display_name));
        let graph = session.graph_shared();
        let plan = session.plan().clone();

        let m = ctx.checkout(self.soc, self.seed);
        if let Some(t) = self.initial_temp_c {
            m.set_initial_temp(t);
        }
        if let Some(p) = self.wander_probability {
            m.set_wander_probability(p);
        }
        if self.tracing {
            m.set_tracing(true);
            m.trace.set_capacity(self.trace_bound);
            // Size the event storage once, up front, so steady-state
            // recording never reallocates mid-run; capacity is reused
            // across iterations because the buffer is never dropped.
            // (A bounded ring never reserves past its capacity.)
            m.trace.reserve_events(8192 * self.iterations.max(1));
        }
        if let Some(plan) = &self.fault_plan {
            if !plan.is_empty() {
                m.install_fault_plan(plan.clone());
            }
        }
        let noise = self.run_mode.noise();
        m.start_noise(noise);

        // Background inference loops (multi-tenancy).
        if self.background_loops > 0 {
            let bg_engine = self
                .background_engine
                // aitax-allow(panic-path): builder contract: background_loops > 0 requires background_engine
                .expect("background loops require an engine");
            let bg_session = Session::compile_cached(bg_engine, self.model, self.dtype, self.soc)
                // aitax-allow(panic-path): user-facing runner: an unusable background engine is a usage error worth aborting
                .unwrap_or_else(|e| panic!("background engine unusable: {e}"));
            for _ in 0..self.background_loops {
                spawn_background_loop(m, bg_session.clone());
            }
        }

        let state = Rc::new(RefCell::new(RunState {
            breakdowns: Vec::with_capacity(self.iterations),
            current: StageBreakdown::default(),
            stage_start: SimTime::ZERO,
            iteration: 0,
            done: false,
            model_init: SimSpan::ZERO,
            randgen: RandomTensorGen::new(self.stdlib, self.seed ^ 0x5eed),
            last_frame: SimTime::ZERO,
            stage_windows: Vec::new(),
        }));

        let driver = Driver {
            entry,
            graph,
            session,
            config: self.clone(),
            noise,
            state: state.clone(),
        };

        // Model initialization happens once, before the iteration loop.
        let d = driver.clone();
        let st = state.clone();
        let init_start = m.now();
        driver.session.initialize(m, move |m| {
            st.borrow_mut().model_init = m.now() - init_start;
            d.begin_capture(m);
        });

        while !state.borrow().done {
            if !m.step() {
                break;
            }
        }

        let trace = if self.tracing {
            Some(std::mem::replace(&mut m.trace, TraceBuffer::disabled()))
        } else {
            None
        };
        let (breakdowns, model_init) = {
            let mut st = state.borrow_mut();
            // Move the per-iteration breakdowns out rather than cloning
            // them; the run is over and the state cell is about to drop.
            (std::mem::take(&mut st.breakdowns), st.model_init)
        };
        let energy = trace.as_ref().map(|tr| {
            let st = state.borrow();
            EnergyReport::from_trace(
                &spec.power,
                tr,
                &st.stage_windows,
                breakdowns.len(),
                m.now(),
            )
        });
        let degradation = DegradationReport::new(
            m.degradation().clone(),
            energy.as_ref().map(|e| e.mean_power_w()),
        );
        E2eReport {
            dtype: self.dtype,
            tax: TaxReport::new(breakdowns),
            model_init,
            stats: m.stats().clone(),
            plan,
            trace,
            energy,
            degradation,
        }
    }
}

struct RunState {
    breakdowns: Vec<StageBreakdown>,
    current: StageBreakdown,
    stage_start: SimTime,
    iteration: usize,
    done: bool,
    model_init: SimSpan,
    randgen: RandomTensorGen,
    /// Timestamp of the camera frame consumed last.
    last_frame: SimTime,
    /// Per-stage execution windows, recorded when tracing is enabled so
    /// the energy meter can price each stage.
    stage_windows: Vec<(Stage, SimTime, SimTime)>,
}

#[derive(Clone)]
struct Driver {
    entry: ZooEntry,
    graph: Arc<Graph>,
    session: Session,
    config: E2eConfig,
    noise: NoiseConfig,
    state: Rc<RefCell<RunState>>,
}

impl Driver {
    fn mark_stage_start(&self, m: &Machine) {
        self.state.borrow_mut().stage_start = m.now();
    }

    fn record(&self, m: &Machine, stage: Stage) {
        let mut st = self.state.borrow_mut();
        let now = m.now();
        let span = now - st.stage_start;
        *st.current.stage_mut(stage) += span;
        if self.config.tracing {
            let start = st.stage_start;
            st.stage_windows.push((stage, start, now));
        }
        st.stage_start = now;
    }

    // ------------------------------------------------------ data capture

    fn begin_capture(&self, m: &mut Machine) {
        self.mark_stage_start(m);
        if self.config.run_mode.uses_camera() {
            // The camera free-runs into a buffer queue; the app consumes
            // the most recent frame. If one arrived since the last
            // iteration it is handed over immediately (plus delivery
            // jitter); otherwise the app blocks until the next sensor
            // boundary. Extraction (plane-walking the Image into app
            // byte arrays) is the expensive managed-code part.
            let interval = self.config.camera.frame_interval().as_ns().max(1);
            let readout = self.config.camera.readout;
            let now = m.now();
            let latest = if now > SimTime::ZERO + readout {
                let k = now.since(SimTime::ZERO + readout).as_ns() / interval;
                Some(SimTime::from_ns(k * interval) + readout)
            } else {
                None
            };
            let ready = {
                let st = self.state.borrow();
                latest.map(|b| b > st.last_frame).unwrap_or(false)
            };
            let deliver_at = if ready {
                now
            } else {
                let k = now.since(SimTime::ZERO + readout).as_ns() / interval + 1;
                SimTime::from_ns(k * interval) + readout
            };
            {
                let mut st = self.state.borrow_mut();
                st.last_frame = deliver_at;
            }
            let jitter = m.sample_irq_jitter(&self.noise);
            let d = self.clone();
            let frame_bytes = self.config.camera.frame_bytes();
            let cost = CostModel::new(self.config.run_mode.runtime_kind());
            m.after(deliver_at + jitter - now, move |m| {
                let cycles = cost.cycles(PixelOp::FrameExtract, frame_bytes);
                let task = TaskSpec::foreground("frame-extract", Work::Cycles(cycles));
                let d2 = d.clone();
                m.submit_cpu(task, move |m| d2.end_capture(m));
            });
        } else {
            // Benchmark methodology: generate a random input tensor.
            let elements = self.graph.input_elements() as usize;
            let cycles = {
                let mut st = self.state.borrow_mut();
                if self.config.dtype.is_quantized() {
                    st.randgen.gen_i8(&[elements.max(1)]).1
                } else {
                    st.randgen.gen_f32(&[elements.max(1)]).1
                }
            };
            let d = self.clone();
            let task = TaskSpec::foreground("random-input", Work::Cycles(cycles));
            m.submit_cpu(task, move |m| d.end_capture(m));
        }
    }

    fn end_capture(&self, m: &mut Machine) {
        self.record(m, Stage::DataCapture);
        self.begin_preprocess(m);
    }

    // ----------------------------------------------------- preprocessing

    fn preprocess_cycles(&self) -> f64 {
        let cost = CostModel::new(self.config.run_mode.runtime_kind());
        let mut steps: Vec<(PixelOp, u64)> = Vec::new();
        if let Some((h, w)) = self.entry.resolution {
            let (out_px, elems) = ((h * w) as u64, (h * w * 3) as u64);
            if self.config.run_mode.uses_camera() {
                let cam_px = (self.config.camera.width * self.config.camera.height) as u64;
                steps.push((PixelOp::Nv21ToArgb, cam_px));
                for task in self.entry.preprocess {
                    match task {
                        PreTask::Scale => steps.push((PixelOp::ResizeBilinear, out_px)),
                        PreTask::Crop => steps.push((PixelOp::CenterCrop, out_px)),
                        PreTask::Normalize => {
                            if self.config.dtype.is_quantized() {
                                steps.push((PixelOp::TypeConvert, elems));
                            } else {
                                steps.push((PixelOp::Normalize, elems));
                            }
                        }
                        PreTask::Rotate => steps.push((PixelOp::Rotate, out_px)),
                        PreTask::Tokenize => steps.push((PixelOp::Tokenize, 240)),
                    }
                }
            } else {
                // Random tensors arrive model-shaped: only type conversion
                // remains ("negligible pre-processing", §IV).
                steps.push((PixelOp::TypeConvert, elems));
            }
        } else {
            // Text model.
            if self.config.run_mode.uses_camera() {
                steps.push((PixelOp::Tokenize, 240));
            } else {
                steps.push((PixelOp::TypeConvert, 128));
            }
        }
        cost.chain_cycles(&steps)
    }

    fn begin_preprocess(&self, m: &mut Machine) {
        let cycles = self.preprocess_cycles();
        let d = self.clone();
        if self.config.preproc_on_dsp {
            // FastCV-style offload: the HVX DSP chews per-pixel work at
            // several times the scalar-CPU rate, but the frame pays a
            // FastRPC round trip.
            let dsp_speedup = 6.0;
            let native_cycles = cycles / self.config.run_mode.runtime_kind().multiplier();
            let span = aitax_des::SimSpan::from_secs(native_cycles / (2.8e9 * dsp_speedup));
            let frame_bytes = if self.config.run_mode.uses_camera() {
                self.config.camera.frame_bytes()
            } else {
                self.graph.input_bytes()
            };
            let invoke = aitax_kernel::RpcInvoke {
                label: "fastcv-preprocess".into(),
                in_bytes: frame_bytes,
                out_bytes: self.graph.input_bytes(),
                dsp_work: span,
                device: aitax_kernel::RpcDevice::Dsp,
                ..Default::default()
            };
            m.fastrpc_invoke_result(invoke, move |m, outcome| {
                if outcome.is_ok() {
                    d.record(m, Stage::PreProcessing);
                    d.begin_inference(m);
                } else {
                    // DSP unusable: redo the frame on the CPU path.
                    m.degradation_mut().cpu_fallbacks += 1;
                    let task = TaskSpec::foreground("pre-processing", Work::Cycles(cycles));
                    let d2 = d.clone();
                    m.submit_cpu(task, move |m| {
                        d2.record(m, Stage::PreProcessing);
                        d2.begin_inference(m);
                    });
                }
            });
            return;
        }
        let task = TaskSpec::foreground("pre-processing", Work::Cycles(cycles));
        m.submit_cpu(task, move |m| {
            d.record(m, Stage::PreProcessing);
            d.begin_inference(m);
        });
    }

    // --------------------------------------------------------- inference

    fn begin_inference(&self, m: &mut Machine) {
        let d = self.clone();
        self.session.invoke(m, move |m| {
            d.record(m, Stage::Inference);
            d.begin_postprocess(m);
        });
    }

    // ---------------------------------------------------- postprocessing

    fn postprocess_cycles(&self) -> f64 {
        let cost = CostModel::new(self.config.run_mode.runtime_kind());
        let mut steps: Vec<(PixelOp, u64)> = Vec::new();
        for task in self.entry.postprocess {
            match task {
                PostTask::TopK => steps.push((PixelOp::TopK, 1001)),
                PostTask::Dequantize => {
                    if self.config.dtype.is_quantized() {
                        steps.push((PixelOp::TypeConvert, 1001));
                    }
                }
                PostTask::MaskFlattening => {
                    steps.push((PixelOp::FlattenMask, 513 * 513 * 21));
                }
                PostTask::CalculateKeypoints => {
                    steps.push((PixelOp::DecodeKeypoints, 14 * 14 * 51));
                }
                PostTask::ComputeLogits => steps.push((PixelOp::TopK, 2 * 128)),
            }
        }
        // Detection apps also track boxes frame-to-frame (§IV-A).
        if self.entry.task == MlTask::ObjectDetection && self.config.run_mode.uses_camera() {
            steps.push((PixelOp::DecodeBoxesNms, 100));
        }
        cost.chain_cycles(&steps)
    }

    fn begin_postprocess(&self, m: &mut Machine) {
        let cycles = self.postprocess_cycles().max(1.0);
        let d = self.clone();
        let task = TaskSpec::foreground("post-processing", Work::Cycles(cycles));
        m.submit_cpu(task, move |m| {
            d.record(m, Stage::PostProcessing);
            d.begin_ui(m);
        });
    }

    // ---------------------------------------------------------------- ui

    fn begin_ui(&self, m: &mut Machine) {
        let mut cycles = self.config.run_mode.ui_overhead_cycles();
        if cycles <= 0.0 {
            self.finish_iteration(m);
            return;
        }
        // Managed-runtime housekeeping: the ART garbage collector
        // occasionally pauses the app for several milliseconds — one of
        // the in-app variability sources behind Fig. 11.
        if self.config.run_mode.uses_camera() && m.rng_mut().chance(0.035) {
            let pause_ms = m.rng_mut().lognormal(5.0, 0.45);
            cycles += pause_ms * 2.8e6;
        }
        let d = self.clone();
        let task = TaskSpec::foreground("ui-render", Work::Cycles(cycles));
        m.submit_cpu(task, move |m| {
            d.record(m, Stage::UiOverhead);
            d.finish_iteration(m);
        });
    }

    fn finish_iteration(&self, m: &mut Machine) {
        let next = {
            let mut st = self.state.borrow_mut();
            let finished = std::mem::take(&mut st.current);
            st.breakdowns.push(finished);
            st.iteration += 1;
            if st.iteration >= self.config.iterations {
                st.done = true;
                false
            } else {
                true
            }
        };
        if next {
            self.begin_capture(m);
        } else {
            m.stop_noise();
        }
    }
}

/// An endless background inference loop (the paper's "inference
/// benchmarks [scheduled] in the background").
fn spawn_background_loop(m: &mut Machine, session: Session) {
    fn again(m: &mut Machine, session: Session) {
        let s2 = session.clone();
        session.invoke(m, move |m| again(m, s2));
    }
    again(m, session);
}

/// Results of one end-to-end run.
#[derive(Debug)]
pub struct E2eReport {
    /// Numeric format the model ran in.
    pub dtype: DType,
    /// Per-iteration stage breakdowns.
    pub tax: TaxReport,
    /// One-time model initialization latency.
    pub model_init: SimSpan,
    /// Machine counters accumulated over the run.
    pub stats: MachineStats,
    /// The compiled execution plan (partitioning inspection).
    pub plan: Plan,
    /// The structured trace, when tracing was enabled.
    pub trace: Option<TraceBuffer>,
    /// Per-rail energy attribution, when tracing was enabled.
    pub energy: Option<EnergyReport>,
    /// Fault/retry/fallback accounting (all-clean without a fault plan).
    pub degradation: DegradationReport,
}

impl E2eReport {
    /// Distribution of one stage across iterations.
    pub fn summary(&self, stage: crate::stage::Stage) -> crate::stats::Summary {
        self.tax.summary(stage)
    }

    /// Distribution of end-to-end latency.
    pub fn e2e_summary(&self) -> crate::stats::Summary {
        self.tax.e2e_summary()
    }

    /// Mean AI-tax fraction.
    pub fn ai_tax_fraction(&self) -> f64 {
        self.tax.ai_tax_fraction()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::Stage;

    fn quick(model: ModelId, dtype: DType) -> E2eConfig {
        E2eConfig::new(model, dtype).iterations(15).seed(42)
    }

    #[test]
    fn cli_benchmark_has_negligible_preprocessing() {
        let r = quick(ModelId::MobileNetV1, DType::F32).run();
        let pre = r.summary(Stage::PreProcessing).mean_ms();
        let inf = r.summary(Stage::Inference).mean_ms();
        assert!(
            pre < inf * 0.1,
            "benchmark pre-processing {pre}ms vs inference {inf}ms"
        );
        assert_eq!(r.tax.iterations(), 15);
    }

    #[test]
    fn app_mode_pays_capture_and_preprocessing() {
        let r = quick(ModelId::MobileNetV1, DType::F32)
            .run_mode(RunMode::AndroidApp)
            .run();
        let cap = r.summary(Stage::DataCapture).mean_ms();
        let pre = r.summary(Stage::PreProcessing).mean_ms();
        assert!(cap > 1.0, "capture {cap}ms");
        assert!(pre > 5.0, "pre-processing {pre}ms");
        assert!(r.ai_tax_fraction() > 0.3);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = quick(ModelId::SqueezeNet, DType::F32).run();
        let b = quick(ModelId::SqueezeNet, DType::F32).run();
        assert_eq!(
            a.e2e_summary().samples_ms(),
            b.e2e_summary().samples_ms(),
            "same seed must reproduce exactly"
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = quick(ModelId::MobileNetV1, DType::F32)
            .run_mode(RunMode::AndroidApp)
            .run();
        let b = quick(ModelId::MobileNetV1, DType::F32)
            .run_mode(RunMode::AndroidApp)
            .seed(77)
            .run();
        assert_ne!(a.e2e_summary().samples_ms(), b.e2e_summary().samples_ms());
    }

    #[test]
    fn model_init_is_recorded() {
        let r = quick(ModelId::MobileNetV1, DType::I8)
            .engine(Engine::TfLiteHexagon { threads: 4 })
            .run();
        assert!(r.model_init.as_ms() > 1.0);
    }

    #[test]
    fn background_dsp_loops_slow_main_dsp_inference() {
        let base = quick(ModelId::MobileNetV1, DType::I8)
            .engine(Engine::nnapi())
            .run_mode(RunMode::AndroidApp)
            .run();
        let contended = quick(ModelId::MobileNetV1, DType::I8)
            .engine(Engine::nnapi())
            .run_mode(RunMode::AndroidApp)
            .background(2, Engine::TfLiteHexagon { threads: 4 })
            .run();
        let b = base.summary(Stage::Inference).mean_ms();
        let c = contended.summary(Stage::Inference).mean_ms();
        assert!(c > b * 1.5, "contended {c}ms vs base {b}ms");
    }

    #[test]
    fn tracing_returns_a_trace() {
        let r = quick(ModelId::MobileNetV1, DType::F32)
            .iterations(3)
            .tracing(true)
            .run();
        let trace = r.trace.expect("trace present");
        assert!(!trace.is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot run")]
    fn dtype_engine_mismatch_panics() {
        quick(ModelId::MobileNetV1, DType::F32)
            .engine(Engine::TfLiteHexagon { threads: 4 })
            .run();
    }
}
