//! The AI-tax stage vocabulary and breakdowns (paper Fig. 1 taxonomy).

use aitax_des::SimSpan;

use crate::stats::Summary;

/// One stage of the end-to-end ML pipeline (§II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stage {
    /// Acquiring input data (camera wait + copy, or random generation).
    DataCapture,
    /// Shaping the input for the model (bitmap/scale/crop/normalize/…).
    PreProcessing,
    /// Model execution, including framework dispatch and offload.
    Inference,
    /// Interpreting model outputs (topK, boxes, keypoints, masks, …).
    PostProcessing,
    /// Application/UI housekeeping around the pipeline (apps only).
    UiOverhead,
}

impl Stage {
    /// All stages in pipeline order.
    pub const ALL: [Stage; 5] = [
        Stage::DataCapture,
        Stage::PreProcessing,
        Stage::Inference,
        Stage::PostProcessing,
        Stage::UiOverhead,
    ];

    /// Whether the stage counts toward the AI tax (everything except the
    /// model itself — the paper's definition in §IV).
    pub fn is_tax(self) -> bool {
        self != Stage::Inference
    }

    /// Which Fig. 1 taxonomy category the stage's overheads belong to.
    pub fn category(self) -> TaxonomyCategory {
        match self {
            Stage::DataCapture | Stage::PreProcessing | Stage::PostProcessing => {
                TaxonomyCategory::Algorithms
            }
            Stage::Inference => TaxonomyCategory::Frameworks,
            Stage::UiOverhead => TaxonomyCategory::Algorithms,
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Stage::DataCapture => "data-capture",
            Stage::PreProcessing => "pre-processing",
            Stage::Inference => "inference",
            Stage::PostProcessing => "post-processing",
            Stage::UiOverhead => "ui-overhead",
        };
        f.write_str(s)
    }
}

/// The Fig. 1 top-level overhead categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaxonomyCategory {
    /// Data capture, pre-processing, post-processing code.
    Algorithms,
    /// Drivers, offload scheduling, runtime dispatch.
    Frameworks,
    /// Offload costs, run-to-run variability, multi-tenancy.
    Hardware,
}

impl std::fmt::Display for TaxonomyCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TaxonomyCategory::Algorithms => "Algorithms",
            TaxonomyCategory::Frameworks => "Frameworks",
            TaxonomyCategory::Hardware => "Hardware",
        };
        f.write_str(s)
    }
}

/// Per-iteration stage latencies.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageBreakdown {
    /// Data capture span.
    pub data_capture: SimSpan,
    /// Pre-processing span.
    pub pre_processing: SimSpan,
    /// Inference span.
    pub inference: SimSpan,
    /// Post-processing span.
    pub post_processing: SimSpan,
    /// UI/application overhead span.
    pub ui_overhead: SimSpan,
}

impl StageBreakdown {
    /// The span of one stage.
    pub fn stage(&self, stage: Stage) -> SimSpan {
        match stage {
            Stage::DataCapture => self.data_capture,
            Stage::PreProcessing => self.pre_processing,
            Stage::Inference => self.inference,
            Stage::PostProcessing => self.post_processing,
            Stage::UiOverhead => self.ui_overhead,
        }
    }

    /// Mutable access for the runner.
    pub fn stage_mut(&mut self, stage: Stage) -> &mut SimSpan {
        match stage {
            Stage::DataCapture => &mut self.data_capture,
            Stage::PreProcessing => &mut self.pre_processing,
            Stage::Inference => &mut self.inference,
            Stage::PostProcessing => &mut self.post_processing,
            Stage::UiOverhead => &mut self.ui_overhead,
        }
    }

    /// End-to-end latency of the iteration.
    pub fn e2e(&self) -> SimSpan {
        Stage::ALL.iter().map(|&s| self.stage(s)).sum()
    }

    /// The AI tax of the iteration (everything but inference).
    pub fn tax(&self) -> SimSpan {
        Stage::ALL
            .iter()
            .filter(|s| s.is_tax())
            .map(|&s| self.stage(s))
            .sum()
    }

    /// AI tax as a fraction of end-to-end time (0 when empty).
    pub fn tax_fraction(&self) -> f64 {
        let e2e = self.e2e();
        if e2e.is_zero() {
            0.0
        } else {
            self.tax().as_secs() / e2e.as_secs()
        }
    }
}

/// Aggregated stage distributions over many iterations.
#[derive(Debug, Clone, PartialEq)]
pub struct TaxReport {
    breakdowns: Vec<StageBreakdown>,
}

impl TaxReport {
    /// Builds a report from per-iteration breakdowns.
    pub fn new(breakdowns: Vec<StageBreakdown>) -> Self {
        TaxReport { breakdowns }
    }

    /// Number of iterations.
    pub fn iterations(&self) -> usize {
        self.breakdowns.len()
    }

    /// Per-iteration breakdowns.
    pub fn breakdowns(&self) -> &[StageBreakdown] {
        &self.breakdowns
    }

    /// Distribution of one stage across iterations.
    pub fn summary(&self, stage: Stage) -> Summary {
        Summary::from_spans(self.breakdowns.iter().map(|b| b.stage(stage)))
    }

    /// Distribution of end-to-end latency.
    pub fn e2e_summary(&self) -> Summary {
        Summary::from_spans(self.breakdowns.iter().map(|b| b.e2e()))
    }

    /// Mean AI-tax fraction across iterations.
    pub fn ai_tax_fraction(&self) -> f64 {
        if self.breakdowns.is_empty() {
            return 0.0;
        }
        self.breakdowns
            .iter()
            .map(|b| b.tax_fraction())
            .sum::<f64>()
            / self.breakdowns.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bd(cap: f64, pre: f64, inf: f64, post: f64, ui: f64) -> StageBreakdown {
        StageBreakdown {
            data_capture: SimSpan::from_ms(cap),
            pre_processing: SimSpan::from_ms(pre),
            inference: SimSpan::from_ms(inf),
            post_processing: SimSpan::from_ms(post),
            ui_overhead: SimSpan::from_ms(ui),
        }
    }

    #[test]
    fn inference_is_not_tax() {
        assert!(!Stage::Inference.is_tax());
        for s in [
            Stage::DataCapture,
            Stage::PreProcessing,
            Stage::PostProcessing,
        ] {
            assert!(s.is_tax());
        }
    }

    #[test]
    fn e2e_and_tax_sum_stages() {
        let b = bd(10.0, 20.0, 40.0, 5.0, 3.0);
        assert_eq!(b.e2e().as_ms(), 78.0);
        assert_eq!(b.tax().as_ms(), 38.0);
        assert!((b.tax_fraction() - 38.0 / 78.0).abs() < 1e-12);
    }

    #[test]
    fn fifty_percent_tax_case() {
        // The headline claim: capture + processing "can consume as much
        // as 50% of the actual execution time".
        let b = bd(15.0, 15.0, 30.0, 0.0, 0.0);
        assert!((b.tax_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn report_aggregates_distributions() {
        let report = TaxReport::new(vec![
            bd(1.0, 2.0, 10.0, 0.5, 0.0),
            bd(2.0, 3.0, 12.0, 0.5, 0.0),
            bd(3.0, 4.0, 14.0, 0.5, 0.0),
        ]);
        assert_eq!(report.iterations(), 3);
        let inf = report.summary(Stage::Inference);
        assert_eq!(inf.mean_ms(), 12.0);
        assert_eq!(report.e2e_summary().median_ms(), 17.5);
        assert!(report.ai_tax_fraction() > 0.2);
    }

    #[test]
    fn empty_breakdown_is_zero() {
        let b = StageBreakdown::default();
        assert!(b.e2e().is_zero());
        assert_eq!(b.tax_fraction(), 0.0);
        assert_eq!(TaxReport::new(vec![]).ai_tax_fraction(), 0.0);
    }

    #[test]
    fn categories_cover_taxonomy() {
        assert_eq!(Stage::DataCapture.category(), TaxonomyCategory::Algorithms);
        assert_eq!(Stage::Inference.category(), TaxonomyCategory::Frameworks);
        assert_eq!(TaxonomyCategory::Hardware.to_string(), "Hardware");
    }

    #[test]
    fn stage_mut_roundtrip() {
        let mut b = StageBreakdown::default();
        *b.stage_mut(Stage::PreProcessing) = SimSpan::from_ms(9.0);
        assert_eq!(b.stage(Stage::PreProcessing).as_ms(), 9.0);
    }
}
