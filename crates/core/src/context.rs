//! Reusable simulation contexts: the simulator's own init-tax
//! amortization.
//!
//! The paper splits model cost into one-time initialization and
//! steady-state inference; the same split applies to the simulator
//! itself. Every [`E2eConfig::run`](crate::pipeline::E2eConfig::run)
//! pays a setup tax — machine/calendar/trace allocation, graph build,
//! session compile — before simulating a single event. A [`SimContext`]
//! holds the machine across runs so that tax is paid once: repeated
//! runs reset the machine in place (retaining the timing-wheel slab,
//! run-queue and trace-column heap capacity) and resolve graphs and
//! plans through the process-wide compiled-artifact caches.
//!
//! Reuse is strictly invisible to results: a reset machine matches a
//! freshly booted one field-for-field (see
//! [`Machine::reset`](aitax_kernel::Machine::reset)), so a run in a
//! reused context is byte-identical to a run in a fresh one —
//! `tests/context_reuse.rs` pins this differentially.

use aitax_kernel::Machine;
use aitax_soc::{SocCatalog, SocId};

/// A reusable simulation scratch context: one machine, rebuilt only when
/// the chipset changes, reset in place otherwise.
///
/// Not `Send` (the machine holds boxed callbacks); worker threads each
/// build their own — see `run_tasks_ctx` in `aitax-lab`.
///
/// # Example
///
/// ```
/// use aitax_core::context::SimContext;
/// use aitax_core::pipeline::E2eConfig;
/// use aitax_models::zoo::ModelId;
/// use aitax_tensor::DType;
///
/// let mut ctx = SimContext::new();
/// let quick = || E2eConfig::new(ModelId::MobileNetV1, DType::F32).iterations(3);
/// let first = quick().run_in(&mut ctx);
/// let again = quick().run_in(&mut ctx); // machine reused, no rebuild
/// assert_eq!(
///     first.e2e_summary().samples_ms(),
///     again.e2e_summary().samples_ms()
/// );
/// ```
#[derive(Default)]
pub struct SimContext {
    machine: Option<(SocId, Machine)>,
}

impl SimContext {
    /// Creates an empty context; the first run boots its machine.
    pub fn new() -> Self {
        SimContext::default()
    }

    /// A machine for `soc`, seeded with `seed`: reset in place when the
    /// cached machine models the same chipset, freshly booted otherwise.
    /// Either way the returned machine is indistinguishable from
    /// `Machine::new(SocCatalog::get(soc), seed)`.
    pub fn checkout(&mut self, soc: SocId, seed: u64) -> &mut Machine {
        let reusable = matches!(&self.machine, Some((cached, _)) if *cached == soc);
        if reusable {
            // aitax-allow(panic-path): just matched Some above
            let (_, m) = self.machine.as_mut().expect("matched Some");
            m.reset(seed);
        } else {
            self.machine = Some((soc, Machine::new(SocCatalog::get(soc), seed)));
        }
        // aitax-allow(panic-path): both branches leave Some in place
        &mut self.machine.as_mut().expect("machine just installed").1
    }

    /// Whether a machine is currently cached (and for which chipset).
    pub fn cached_soc(&self) -> Option<SocId> {
        self.machine.as_ref().map(|(soc, _)| *soc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_reuses_machine_for_same_soc() {
        let mut ctx = SimContext::new();
        assert_eq!(ctx.cached_soc(), None);
        let first = ctx.checkout(SocId::Sd845, 1) as *const Machine;
        assert_eq!(ctx.cached_soc(), Some(SocId::Sd845));
        let second = ctx.checkout(SocId::Sd845, 2) as *const Machine;
        assert_eq!(first, second, "same chipset must reuse the allocation");
        ctx.checkout(SocId::Sd865, 3);
        assert_eq!(ctx.cached_soc(), Some(SocId::Sd865));
    }

    #[test]
    fn checkout_matches_fresh_boot() {
        let mut ctx = SimContext::new();
        // Dirty the machine with a short run's worth of state.
        {
            let m = ctx.checkout(SocId::Sd845, 9);
            m.set_tracing(true);
            m.after(aitax_des::SimSpan::from_us(5.0), |_| {});
            while m.step() {}
        }
        let reused = ctx.checkout(SocId::Sd845, 11);
        let fresh = Machine::new(SocCatalog::get(SocId::Sd845), 11);
        assert_eq!(reused.now(), fresh.now());
        assert_eq!(reused.stats(), fresh.stats());
        assert_eq!(reused.temp_c().to_bits(), fresh.temp_c().to_bits());
        assert!(!reused.trace.is_enabled());
        assert_eq!(reused.trace.len(), 0);
        assert!(reused.trace.symbols().is_empty());
    }
}
