//! Pre-configured experiments: one per table/figure of the paper.
//!
//! Each function regenerates the rows/series of the corresponding exhibit
//! (see DESIGN.md §3 for the full index). The `aitax-bench` binaries are
//! thin wrappers around these, and the integration tests assert the
//! *shape* claims on their outputs.

use aitax_capture::StdlibFlavor;
use aitax_des::trace::TraceKind;
use aitax_des::SimSpan;
use aitax_framework::nnapi::driver_for;
use aitax_framework::{cost, Engine};
use aitax_kernel::{Machine, RpcDevice, RpcInvoke};
use aitax_models::zoo::{ModelId, Zoo};
use aitax_profiler::ProfileReport;
use aitax_soc::{SocCatalog, SocId};
use aitax_tensor::DType;

use crate::pipeline::E2eConfig;
use crate::report::{fmt_ms, fmt_pct, fmt_ratio, Table};
use crate::runmode::RunMode;
use crate::stage::Stage;

/// Common experiment knobs.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentOpts {
    /// Iterations per configuration (the paper uses 500; smaller values
    /// keep exploratory runs fast).
    pub iterations: usize,
    /// Base random seed.
    pub seed: u64,
}

impl Default for ExperimentOpts {
    fn default() -> Self {
        ExperimentOpts {
            iterations: 100,
            seed: 1,
        }
    }
}

impl ExperimentOpts {
    /// The paper's full methodology: 500 iterations.
    pub fn paper() -> Self {
        ExperimentOpts {
            iterations: 500,
            seed: 1,
        }
    }

    /// A quick variant for tests.
    pub fn quick() -> Self {
        ExperimentOpts {
            iterations: 25,
            seed: 1,
        }
    }
}

/// **Table I** — the benchmark list.
pub fn table1() -> Table {
    let mut t = Table::new(vec![
        "Task",
        "Model",
        "Resolution",
        "Pre-processing",
        "Post-processing",
        "NNAPI-fp32",
        "NNAPI-int8",
        "CPU-fp32",
        "CPU-int8",
    ]);
    let yn = |b: bool| if b { "Y" } else { "N" }.to_string();
    for e in Zoo::all() {
        let res = e
            .resolution
            .map(|(h, w)| format!("{h}x{w}"))
            .unwrap_or_else(|| "-".into());
        let pre = e
            .preprocess
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let post = e
            .postprocess
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        t.row(vec![
            e.task.to_string(),
            e.display_name.to_string(),
            res,
            pre,
            post,
            yn(e.support.nnapi_fp32),
            yn(e.support.nnapi_int8),
            yn(e.support.cpu_fp32),
            yn(e.support.cpu_int8),
        ]);
    }
    t
}

/// **Table II** — the hardware platforms.
pub fn table2() -> Table {
    let mut t = Table::new(vec!["System", "SoC", "Accelerators", "NNAPI driver"]);
    for id in SocId::ALL {
        let soc = SocCatalog::get(id);
        let mut accel = format!("{} GPU, {} DSP", soc.gpu.name, soc.dsp.name);
        if let Some(npu) = &soc.npu {
            accel.push_str(&format!(", {}", npu.name));
        }
        t.row(vec![
            soc.host_system.to_string(),
            soc.name.to_string(),
            accel,
            driver_for(soc).name.to_string(),
        ]);
    }
    t
}

/// The models Fig. 3 / Fig. 4 sweep, with the dtypes each supports.
fn fig_models(nnapi: bool) -> Vec<(ModelId, DType)> {
    let mut out = Vec::new();
    for e in Zoo::all() {
        for dtype in [DType::F32, DType::I8] {
            if e.support.supports(nnapi, dtype) {
                out.push((e.id, dtype));
            }
        }
    }
    out
}

/// **Figure 3** — end-to-end latency of CLI benchmark vs benchmark app vs
/// real application, per model, on the CPU.
pub fn fig3(opts: ExperimentOpts) -> Table {
    let mut t = Table::new(vec![
        "model",
        "dtype",
        "cli_e2e_ms",
        "benchapp_e2e_ms",
        "app_e2e_ms",
        "app_vs_cli",
    ]);
    for (model, dtype) in fig_models(false) {
        let mut e2e = Vec::new();
        for mode in RunMode::ALL {
            let r = E2eConfig::new(model, dtype)
                .engine(Engine::tflite_cpu(4))
                .run_mode(mode)
                .iterations(opts.iterations)
                .seed(opts.seed)
                .run();
            e2e.push(r.e2e_summary().mean_ms());
        }
        t.row(vec![
            model.to_string(),
            dtype.to_string(),
            fmt_ms(e2e[0]),
            fmt_ms(e2e[1]),
            fmt_ms(e2e[2]),
            fmt_ratio(e2e[2] / e2e[0]),
        ]);
    }
    t
}

/// **Figure 4** — data capture + pre-processing vs inference, benchmark
/// vs application, via NNAPI (4a absolute, 4b relative — both columns).
pub fn fig4(opts: ExperimentOpts) -> Table {
    let mut t = Table::new(vec![
        "model",
        "dtype",
        "mode",
        "capture_ms",
        "preproc_ms",
        "inference_ms",
        "(cap+pre)/inf",
    ]);
    for (model, dtype) in fig_models(true) {
        for mode in [RunMode::CliBenchmark, RunMode::AndroidApp] {
            let r = E2eConfig::new(model, dtype)
                .engine(Engine::nnapi())
                .run_mode(mode)
                .iterations(opts.iterations)
                .seed(opts.seed)
                .run();
            let cap = r.summary(Stage::DataCapture).mean_ms();
            let pre = r.summary(Stage::PreProcessing).mean_ms();
            let inf = r.summary(Stage::Inference).mean_ms();
            t.row(vec![
                model.to_string(),
                dtype.to_string(),
                mode.to_string(),
                fmt_ms(cap),
                fmt_ms(pre),
                fmt_ms(inf),
                fmt_ratio((cap + pre) / inf),
            ]);
        }
    }
    t
}

/// Result of the Fig. 5 experiment.
#[derive(Debug)]
pub struct Fig5Result {
    /// Per-target inference latencies.
    pub table: Table,
    /// NNAPI latency relative to single-threaded CPU — the paper's 7×.
    pub nnapi_vs_cpu1: f64,
}

/// **Figure 5** — quantized EfficientNet-Lite0 across Hexagon delegate,
/// CPU ×4, CPU ×1 and NNAPI (with CPU fallback).
pub fn fig5(opts: ExperimentOpts) -> Fig5Result {
    let configs: [(&str, Engine); 4] = [
        ("hexagon-delegate", Engine::TfLiteHexagon { threads: 4 }),
        ("cpu-4threads", Engine::tflite_cpu(4)),
        ("cpu-1thread", Engine::tflite_cpu(1)),
        ("nnapi", Engine::nnapi()),
    ];
    let mut lat = Vec::new();
    let mut t = Table::new(vec!["target", "inference_ms", "vs_cpu1"]);
    for (_, engine) in configs.iter() {
        let r = E2eConfig::new(ModelId::EfficientNetLite0, DType::I8)
            .engine(*engine)
            .iterations(opts.iterations)
            .seed(opts.seed)
            .run();
        lat.push(r.summary(Stage::Inference).mean_ms());
    }
    let cpu1 = lat[2];
    for ((name, _), l) in configs.iter().zip(&lat) {
        t.row(vec![name.to_string(), fmt_ms(*l), fmt_ratio(l / cpu1)]);
    }
    Fig5Result {
        table: t,
        nnapi_vs_cpu1: lat[3] / cpu1,
    }
}

/// **Figure 6** — Snapdragon-Profiler-style execution profiles of
/// EfficientNet-Lite0 (int8) under the three execution targets.
pub fn fig6(opts: ExperimentOpts) -> String {
    let mut out = String::new();
    let configs: [(&str, Engine); 3] = [
        ("cpu-4threads", Engine::tflite_cpu(4)),
        ("hexagon-delegate", Engine::TfLiteHexagon { threads: 4 }),
        ("nnapi (driver fallback)", Engine::nnapi()),
    ];
    for (name, engine) in configs {
        let r = E2eConfig::new(ModelId::EfficientNetLite0, DType::I8)
            .engine(engine)
            .iterations(opts.iterations.min(30))
            .seed(opts.seed)
            .tracing(true)
            .run();
        let inf_ms = fmt_ms(r.summary(Stage::Inference).mean_ms());
        let iters = r.tax.iterations();
        // aitax-allow(panic-path): tracing(true) was set on this run; the trace is always present
        let trace = r.trace.expect("tracing was enabled");
        let profile = ProfileReport::from_trace(&trace, SimSpan::from_ms(20.0));
        out.push_str(&format!("=== {name} ===\n"));
        out.push_str(&profile.render_ascii());
        out.push_str(&format!(
            "stage means: inference {inf_ms} ms over {iters} iterations\n\n"
        ));
    }
    out
}

/// The Fig. 7 reference trace: one steady-state FastRPC invocation of a
/// MobileNet-class kernel on the SD845 DSP, traced from `t0`.
///
/// The returned buffer carries the full event stream (RPC phases, cache
/// flush, DSP execution, interrupts); `fig7` condenses it into the
/// paper's phase table and the lab's Chrome-trace sink renders it
/// visually.
pub fn fig7_trace() -> (aitax_des::TraceBuffer, aitax_des::SimTime) {
    let soc = SocCatalog::get(SocId::Sd845);
    let mut m = Machine::new(soc, 7);
    m.set_tracing(true);
    // Warm the session so the timeline shows a steady-state call.
    m.fastrpc_invoke(
        RpcInvoke {
            label: "warmup".into(),
            in_bytes: 1024,
            out_bytes: 64,
            dsp_work: SimSpan::from_ms(1.0),
            device: RpcDevice::Dsp,
            ..Default::default()
        },
        |_| {},
    );
    m.run_until_idle();
    m.trace.clear();
    let t0 = m.now();
    m.fastrpc_invoke(
        RpcInvoke {
            label: "mobilenet-int8".into(),
            in_bytes: 150_528,
            out_bytes: 1_001,
            dsp_work: cost::dsp_exec_span(&m.spec().dsp, 569_000_000, cost::NNAPI_DSP_EFFICIENCY),
            device: RpcDevice::Dsp,
            ..Default::default()
        },
        |_| {},
    );
    m.run_until_idle();
    let trace = std::mem::replace(&mut m.trace, aitax_des::TraceBuffer::disabled());
    (trace, t0)
}

/// **Figure 7** — the FastRPC call flow with measured phase timestamps.
pub fn fig7() -> Table {
    let (trace, t0) = fig7_trace();
    let mut t = Table::new(vec!["phase", "t_ms", "delta_ms"]);
    let mut last = 0.0;
    for ev in trace.iter() {
        if let TraceKind::Rpc { phase } = ev.kind {
            let at = (ev.time - t0).as_ms();
            t.row(vec![phase.to_string(), fmt_ms(at), fmt_ms(at - last)]);
            last = at;
        }
    }
    t
}

/// **Figure 8** — offload overhead amortization over consecutive
/// inferences (MobileNet v1 int8 through the Hexagon delegate).
pub fn fig8(opts: ExperimentOpts) -> Table {
    let mut t = Table::new(vec![
        "inferences",
        "total_ms",
        "per_inference_ms",
        "steady_inference_ms",
        "offload_ms_per_inf",
        "offload_fraction",
    ]);
    let counts = [1usize, 2, 5, 10, 20, 50, 100, 200, 500];
    // Pure DSP execution time for the offloaded portion (analytic floor).
    let soc = SocCatalog::get(SocId::Sd845);
    for (i, &n) in counts.iter().enumerate() {
        if n > opts.iterations.max(1) * 20 {
            break;
        }
        let r = E2eConfig::new(ModelId::MobileNetV1, DType::I8)
            .engine(Engine::TfLiteHexagon { threads: 4 })
            .iterations(n)
            .seed(opts.seed + i as u64)
            .run();
        let inf = r.summary(Stage::Inference);
        let total = r.model_init.as_ms() + inf.total_ms();
        let per_inf = total / n as f64;
        let steady = inf.min_ms();
        let pure = cost::dsp_exec_span(
            &soc.dsp,
            (r.plan.offloaded_mac_fraction()
                * Zoo::entry(ModelId::MobileNetV1).build_graph().total_macs() as f64)
                as u64,
            cost::HEXAGON_DELEGATE_EFFICIENCY,
        )
        .as_ms();
        let offload = (per_inf - pure).max(0.0);
        t.row(vec![
            n.to_string(),
            fmt_ms(total),
            fmt_ms(per_inf),
            fmt_ms(steady),
            fmt_ms(offload),
            fmt_pct(offload / per_inf),
        ]);
    }
    t
}

fn multitenancy(opts: ExperimentOpts, background_engine: Engine) -> Table {
    let mut t = Table::new(vec![
        "background_inferences",
        "capture_ms",
        "preproc_ms",
        "inference_ms",
        "postproc_ms",
        "e2e_ms",
    ]);
    for &b in &[0usize, 1, 2, 4, 6, 8] {
        let mut cfg = E2eConfig::new(ModelId::MobileNetV1, DType::I8)
            .engine(Engine::nnapi())
            .run_mode(RunMode::AndroidApp)
            .iterations(opts.iterations)
            .seed(opts.seed);
        if b > 0 {
            cfg = cfg.background(b, background_engine);
        }
        let r = cfg.run();
        t.row(vec![
            b.to_string(),
            fmt_ms(r.summary(Stage::DataCapture).mean_ms()),
            fmt_ms(r.summary(Stage::PreProcessing).mean_ms()),
            fmt_ms(r.summary(Stage::Inference).mean_ms()),
            fmt_ms(r.summary(Stage::PostProcessing).mean_ms()),
            fmt_ms(r.e2e_summary().mean_ms()),
        ]);
    }
    t
}

/// **Figure 9** — latency breakdown of the classification app with
/// increasing background inferences on the **DSP** (inference stalls on
/// the single DSP; pre-processing stays flat).
pub fn fig9(opts: ExperimentOpts) -> Table {
    multitenancy(opts, Engine::TfLiteHexagon { threads: 4 })
}

/// **Figure 10** — same with background inferences on the **CPU**
/// (pre-processing and capture inflate; inference stays flat).
pub fn fig10(opts: ExperimentOpts) -> Table {
    multitenancy(opts, Engine::tflite_cpu(2))
}

/// Result of the Fig. 11 experiment.
#[derive(Debug)]
pub struct Fig11Result {
    /// Distribution statistics per mode.
    pub table: Table,
    /// Worst relative deviation from the median, benchmark mode.
    pub benchmark_deviation: f64,
    /// Worst relative deviation from the median, app mode.
    pub app_deviation: f64,
}

/// **Figure 11** — run-to-run latency distribution of MobileNet v1 on the
/// CPU: tight for the benchmark, up to ~30% from the median in an app.
pub fn fig11(opts: ExperimentOpts) -> Fig11Result {
    let mut t = Table::new(vec![
        "mode",
        "median_ms",
        "mean_ms",
        "p5_ms",
        "p95_ms",
        "stddev_ms",
        "max_dev_from_median",
    ]);
    let mut devs = Vec::new();
    for mode in [RunMode::CliBenchmark, RunMode::AndroidApp] {
        let r = E2eConfig::new(ModelId::MobileNetV1, DType::F32)
            .engine(Engine::tflite_cpu(4))
            .run_mode(mode)
            .iterations(opts.iterations)
            .seed(opts.seed)
            .run();
        let s = r.e2e_summary();
        devs.push(s.max_deviation_from_median());
        t.row(vec![
            mode.to_string(),
            fmt_ms(s.median_ms()),
            fmt_ms(s.mean_ms()),
            fmt_ms(s.percentile_ms(5.0)),
            fmt_ms(s.percentile_ms(95.0)),
            fmt_ms(s.stddev_ms()),
            fmt_pct(s.max_deviation_from_median()),
        ]);
    }
    Fig11Result {
        table: t,
        benchmark_deviation: devs[0],
        app_deviation: devs[1],
    }
}

/// The libc++/libstdc++ random-input-generation asymmetry (§IV-A) — an
/// auxiliary exhibit supporting the Fig. 4 discussion.
pub fn stdlib_asymmetry(opts: ExperimentOpts) -> Table {
    let mut t = Table::new(vec!["stdlib", "dtype", "capture_ms"]);
    for flavor in [StdlibFlavor::LibCxx, StdlibFlavor::LibStdCxx] {
        for dtype in [DType::F32, DType::I8] {
            let r = E2eConfig::new(ModelId::MobileNetV1, dtype)
                .engine(Engine::tflite_cpu(4))
                .stdlib(flavor)
                .iterations(opts.iterations)
                .seed(opts.seed)
                .run();
            let name = match flavor {
                StdlibFlavor::LibCxx => "libc++",
                StdlibFlavor::LibStdCxx => "libstdc++",
            };
            t.row(vec![
                name.to_string(),
                dtype.to_string(),
                fmt_ms(r.summary(Stage::DataCapture).mean_ms()),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_shape() {
        let t = table1();
        assert_eq!(t.len(), 11);
        // Spot rows.
        let rows = t.rows();
        assert_eq!(rows[0][1], "MobileNet 1.0 v1");
        assert_eq!(rows[4][1], "AlexNet");
        assert_eq!(rows[4][5], "N"); // AlexNet NNAPI-fp32 = N
        assert_eq!(rows[10][2], "-"); // BERT has no resolution
    }

    #[test]
    fn table2_lists_four_platforms() {
        let t = table2();
        assert_eq!(t.len(), 4);
        assert!(t.rows()[1][0].contains("Pixel 3"));
        assert!(t.render_text().contains("Hexagon 685"));
    }

    #[test]
    fn fig7_phases_in_order_with_dsp_dominant() {
        let t = fig7();
        assert_eq!(t.len(), 6);
        let rows = t.rows();
        assert_eq!(rows[0][0], "ioctl-entry");
        assert_eq!(rows[5][0], "ioctl-return");
        // The dsp-execute → completion-signal delta dominates the call.
        let exec_delta: f64 = rows[4][2].parse().unwrap();
        let entry_delta: f64 = rows[1][2].parse().unwrap();
        assert!(exec_delta > entry_delta);
    }

    #[test]
    fn stdlib_flavors_invert_capture_cost() {
        let t = stdlib_asymmetry(ExperimentOpts::quick());
        let rows = t.rows();
        let get = |i: usize| rows[i][2].parse::<f64>().unwrap();
        // libc++: fp32 faster than int8; libstdc++: opposite.
        assert!(get(0) < get(1), "libc++ floats faster");
        assert!(get(3) < get(2), "libstdc++ ints faster");
    }
}
