//! Energy accounting for end-to-end runs — the [`TaxReport`] mirrored
//! onto the energy axis.
//!
//! The paper's latency decomposition asks *where the time goes*; this
//! module asks *where the joules go*. When tracing is enabled, the
//! runner records a `(stage, start, end)` window for every pipeline
//! stage of every iteration, and [`EnergyReport::from_trace`] prices
//! those windows with the per-rail [`EnergyMeter`]: C·V²·f dynamic CPU
//! power at the DVFS-chosen operating point, gated accelerator rails,
//! AXI transfer energy and the always-on idle floor. The result supports
//! the paper-adjacent questions latency alone cannot answer — most
//! importantly that DSP offload wins on energy per inference even where
//! it loses on latency (race-to-idle plus a power-gated rail).
//!
//! [`TaxReport`]: crate::stage::TaxReport

use std::collections::BTreeMap;

use aitax_des::{SimSpan, SimTime, TraceBuffer};
use aitax_power::{energy_delay_product, EnergyMeter, PowerSpec, RailEnergy};

use crate::stage::Stage;

/// Per-stage and whole-run energy totals for one end-to-end run.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyReport {
    /// Energy attributed to each stage's execution windows, summed over
    /// all iterations.
    per_stage: BTreeMap<Stage, RailEnergy>,
    /// Energy of the whole run window, including inter-stage gaps and
    /// the idle floor outside any stage.
    total: RailEnergy,
    iterations: usize,
    wall: SimSpan,
}

impl EnergyReport {
    /// Prices every stage window of a traced run with `spec`'s power
    /// model. `end` bounds the whole-run total (idle floor included).
    pub fn from_trace(
        spec: &PowerSpec,
        trace: &TraceBuffer,
        windows: &[(Stage, SimTime, SimTime)],
        iterations: usize,
        end: SimTime,
    ) -> Self {
        let meter = EnergyMeter::new(spec);
        let mut per_stage: BTreeMap<Stage, RailEnergy> = BTreeMap::new();
        for stage in Stage::ALL {
            let spans: Vec<(SimTime, SimTime)> = windows
                .iter()
                .filter(|(s, _, _)| *s == stage)
                .map(|&(_, a, b)| (a, b))
                .collect();
            let mut sum = RailEnergy::new();
            for cell in meter.attribute(trace, &spans) {
                sum.merge(&cell);
            }
            per_stage.insert(stage, sum);
        }
        let total = meter.energy_between(trace, SimTime::ZERO, end);
        EnergyReport {
            per_stage,
            total,
            iterations,
            wall: end - SimTime::ZERO,
        }
    }

    /// Number of iterations the run completed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Per-rail energy attributed to one stage across all iterations.
    pub fn stage_energy(&self, stage: Stage) -> &RailEnergy {
        &self.per_stage[&stage]
    }

    /// Joules attributed to one stage across all iterations.
    pub fn stage_j(&self, stage: Stage) -> f64 {
        self.per_stage[&stage].total_j()
    }

    /// Per-rail energy of the whole run window.
    pub fn total(&self) -> &RailEnergy {
        &self.total
    }

    /// Joules of the whole run window (idle floor included).
    pub fn total_j(&self) -> f64 {
        self.total.total_j()
    }

    /// Joules attributed to stage windows (excludes inter-stage idle).
    pub fn staged_j(&self) -> f64 {
        Stage::ALL.iter().map(|&s| self.stage_j(s)).sum()
    }

    /// Energy-axis AI tax: the fraction of staged energy spent outside
    /// inference (the energy mirror of
    /// [`TaxReport::ai_tax_fraction`](crate::stage::TaxReport::ai_tax_fraction)).
    pub fn energy_tax_fraction(&self) -> f64 {
        let staged = self.staged_j();
        if staged <= 0.0 {
            return 0.0;
        }
        let tax: f64 = Stage::ALL
            .iter()
            .filter(|s| s.is_tax())
            .map(|&s| self.stage_j(s))
            .sum();
        tax / staged
    }

    /// Mean energy per inference over the whole run, in joules.
    pub fn energy_per_inference_j(&self) -> f64 {
        if self.iterations == 0 {
            return 0.0;
        }
        self.total_j() / self.iterations as f64
    }

    /// Mean power draw over the whole run, in watts.
    pub fn mean_power_w(&self) -> f64 {
        let secs = self.wall.as_secs();
        if secs <= 0.0 {
            return 0.0;
        }
        self.total_j() / secs
    }

    /// Energy–delay product per inference (J·s) for a given mean
    /// end-to-end latency.
    pub fn edp_per_inference(&self, mean_e2e: SimSpan) -> f64 {
        energy_delay_product(self.energy_per_inference_j(), mean_e2e.as_secs())
    }

    /// Deterministic TSV rendering: one row per stage plus totals. Two
    /// runs with the same seed produce byte-identical output.
    pub fn render_tsv(&self) -> String {
        let mut out = String::from("stage\tenergy_mj\tfraction\n");
        let staged = self.staged_j();
        for stage in Stage::ALL {
            let j = self.stage_j(stage);
            let frac = if staged > 0.0 { j / staged } else { 0.0 };
            out.push_str(&format!("{stage}\t{:.6}\t{:.6}\n", j * 1e3, frac));
        }
        out.push_str(&format!("total\t{:.6}\t1.000000\n", self.total_j() * 1e3));
        out.push_str(&format!(
            "per-inference\t{:.6}\t-\n",
            self.energy_per_inference_j() * 1e3
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::E2eConfig;
    use crate::runmode::RunMode;
    use aitax_models::zoo::ModelId;
    use aitax_tensor::DType;

    fn traced_run(seed: u64) -> crate::pipeline::E2eReport {
        E2eConfig::new(ModelId::MobileNetV1, DType::F32)
            .run_mode(RunMode::AndroidApp)
            .iterations(8)
            .seed(seed)
            .tracing(true)
            .run()
    }

    #[test]
    fn energy_report_is_populated_and_consistent() {
        let r = traced_run(11);
        let e = r.energy.as_ref().expect("tracing enables energy");
        assert_eq!(e.iterations(), 8);
        // Non-negative per-stage cells, and staged energy within total.
        for stage in Stage::ALL {
            assert!(e.stage_j(stage) >= 0.0, "{stage}");
            for (_, j) in e.stage_energy(stage).iter() {
                assert!(j >= 0.0, "{stage} has a negative rail cell");
            }
        }
        assert!(e.staged_j() > 0.0);
        assert!(
            e.staged_j() <= e.total_j() + 1e-9,
            "stage windows are a subset of the run"
        );
        assert!(e.energy_tax_fraction() > 0.0 && e.energy_tax_fraction() < 1.0);
        assert!(e.energy_per_inference_j() > 0.0);
        assert!(e.mean_power_w() > 0.5, "idle floor alone is ~1 W");
    }

    #[test]
    fn same_seed_gives_identical_tsv() {
        let a = traced_run(5);
        let b = traced_run(5);
        assert_eq!(
            a.energy.unwrap().render_tsv(),
            b.energy.unwrap().render_tsv(),
            "energy accounting must be deterministic"
        );
    }

    #[test]
    fn no_tracing_means_no_energy_report() {
        let r = E2eConfig::new(ModelId::MobileNetV1, DType::F32)
            .iterations(3)
            .run();
        assert!(r.energy.is_none());
    }

    #[test]
    fn edp_scales_with_latency() {
        let r = traced_run(9);
        let e = r.energy.as_ref().unwrap();
        let l = r.e2e_summary().mean_ms();
        let edp1 = e.edp_per_inference(SimSpan::from_ms(l));
        let edp2 = e.edp_per_inference(SimSpan::from_ms(l * 2.0));
        assert!((edp2 / edp1 - 2.0).abs() < 1e-9);
    }
}
