//! Per-run graceful-degradation accounting.
//!
//! When a [`FaultPlan`](aitax_des::FaultPlan) is installed, the stack
//! responds the way the paper observes real phones responding: FastRPC
//! retries with backoff, the framework falls back to the CPU reference
//! path, thermal emergencies throttle the clocks. The
//! [`DegradationReport`] sits beside `TaxReport`/`EnergyReport` in the
//! [`E2eReport`](crate::pipeline::E2eReport) and attributes the *added*
//! AI tax those responses cost.

use aitax_kernel::DegradationStats;

/// How a run degraded under fault injection, with the added tax priced
/// in milliseconds (and millijoules when energy metering ran).
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationReport {
    /// Raw fault/retry/fallback counters from the kernel.
    pub stats: DegradationStats,
    /// Milliseconds of added tax: RPC stall (timeouts + backoff) plus
    /// the extra wall time of CPU fallbacks over the planned
    /// accelerator execution.
    pub added_tax_ms: f64,
    /// The added tax priced at the run's mean package power, in mJ.
    /// `None` when the run had no energy metering (tracing off).
    pub added_energy_mj: Option<f64>,
}

impl DegradationReport {
    /// Builds a report from kernel counters, pricing the added tax at
    /// `mean_power_w` when available.
    pub fn new(stats: DegradationStats, mean_power_w: Option<f64>) -> Self {
        let added_tax_ms = stats.rpc_stall.as_ms() + stats.fallback_added.as_ms();
        let added_energy_mj = mean_power_w.map(|w| added_tax_ms * w);
        DegradationReport {
            stats,
            added_tax_ms,
            added_energy_mj,
        }
    }

    /// True when the run saw no faults and took no degradation action.
    pub fn is_clean(&self) -> bool {
        self.stats.is_clean()
    }

    /// Byte-deterministic TSV rendering (metric, value).
    pub fn render_tsv(&self) -> String {
        use std::fmt::Write as _;
        let s = &self.stats;
        let mut out = String::from("metric\tvalue\n");
        for (name, v) in [
            ("faults_injected", s.faults_injected),
            ("rpc_retries", s.rpc_retries),
            ("rpc_timeouts", s.rpc_timeouts),
            ("rpc_io_errors", s.rpc_io_errors),
            ("rpc_giveups", s.rpc_giveups),
            ("cpu_fallbacks", s.cpu_fallbacks),
            ("thermal_emergencies", s.thermal_emergencies),
            ("cache_storm_flushes", s.cache_storm_flushes),
            ("background_bursts", s.background_bursts),
        ] {
            let _ = writeln!(out, "{name}\t{v}");
        }
        let _ = writeln!(out, "rpc_stall_ms\t{:.6}", s.rpc_stall.as_ms());
        let _ = writeln!(out, "fallback_added_ms\t{:.6}", s.fallback_added.as_ms());
        let _ = writeln!(out, "added_tax_ms\t{:.6}", self.added_tax_ms);
        match self.added_energy_mj {
            Some(mj) => {
                let _ = writeln!(out, "added_energy_mj\t{mj:.6}");
            }
            None => {
                let _ = writeln!(out, "added_energy_mj\tn/a");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aitax_des::SimSpan;

    #[test]
    fn clean_report_is_clean() {
        let r = DegradationReport::new(DegradationStats::default(), None);
        assert!(r.is_clean());
        assert_eq!(r.added_tax_ms, 0.0);
        assert_eq!(r.added_energy_mj, None);
    }

    #[test]
    fn added_tax_sums_stall_and_fallback() {
        let stats = DegradationStats {
            rpc_stall: SimSpan::from_ms(100.0),
            fallback_added: SimSpan::from_ms(50.0),
            ..Default::default()
        };
        let r = DegradationReport::new(stats, Some(2.0));
        assert!((r.added_tax_ms - 150.0).abs() < 1e-9);
        // 150 ms at 2 W = 0.3 J = 300 mJ.
        assert!((r.added_energy_mj.unwrap() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn tsv_is_deterministic_and_complete() {
        let stats = DegradationStats {
            faults_injected: 3,
            rpc_timeouts: 2,
            rpc_stall: SimSpan::from_ms(10.0),
            ..Default::default()
        };
        let a = DegradationReport::new(stats.clone(), None).render_tsv();
        let b = DegradationReport::new(stats, None).render_tsv();
        assert_eq!(a, b);
        assert!(a.contains("faults_injected\t3"));
        assert!(a.contains("rpc_stall_ms\t10.000000"));
        assert!(a.contains("added_energy_mj\tn/a"));
        assert_eq!(a.lines().count(), 14);
    }
}
