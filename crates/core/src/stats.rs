//! Distribution statistics for latency samples.
//!
//! §IV-C: "workload performance analysis needs to report statistical
//! distributions in performance. Instead, today's standard practice is to
//! report a single ML performance number." [`Summary`] is the
//! distribution-first report the paper asks for.

use aitax_des::SimSpan;

/// A summary of a latency distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    samples_ms: Vec<f64>,
    sorted_ms: Vec<f64>,
}

impl Summary {
    /// Builds a summary from spans.
    pub fn from_spans(spans: impl IntoIterator<Item = SimSpan>) -> Self {
        Self::from_ms(spans.into_iter().map(|s| s.as_ms()))
    }

    /// Builds a summary from millisecond samples.
    pub fn from_ms(samples: impl IntoIterator<Item = f64>) -> Self {
        let samples_ms: Vec<f64> = samples.into_iter().collect();
        let mut sorted_ms = samples_ms.clone();
        sorted_ms.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        Summary {
            samples_ms,
            sorted_ms,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples_ms.len()
    }

    /// Whether there are no samples.
    pub fn is_empty(&self) -> bool {
        self.samples_ms.is_empty()
    }

    /// The raw samples in collection order (milliseconds).
    pub fn samples_ms(&self) -> &[f64] {
        &self.samples_ms
    }

    /// Arithmetic mean in ms (0 when empty) — what the paper reports as
    /// "the arithmetic mean of 500 runs" (§III-D).
    pub fn mean_ms(&self) -> f64 {
        if self.samples_ms.is_empty() {
            0.0
        } else {
            self.samples_ms.iter().sum::<f64>() / self.samples_ms.len() as f64
        }
    }

    /// Population standard deviation in ms.
    pub fn stddev_ms(&self) -> f64 {
        if self.samples_ms.len() < 2 {
            return 0.0;
        }
        let mean = self.mean_ms();
        let var = self
            .samples_ms
            .iter()
            .map(|x| (x - mean).powi(2))
            .sum::<f64>()
            / self.samples_ms.len() as f64;
        var.sqrt()
    }

    /// Interpolated percentile (`p` in 0..=100) in ms.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]` or there are no samples.
    pub fn percentile_ms(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
        assert!(!self.sorted_ms.is_empty(), "no samples");
        if self.sorted_ms.len() == 1 {
            return self.sorted_ms[0];
        }
        let rank = p / 100.0 * (self.sorted_ms.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        self.sorted_ms[lo] + (self.sorted_ms[hi] - self.sorted_ms[lo]) * frac
    }

    /// Median in ms.
    pub fn median_ms(&self) -> f64 {
        self.percentile_ms(50.0)
    }

    /// 50th percentile in ms (alias for [`Summary::median_ms`]).
    pub fn p50_ms(&self) -> f64 {
        self.percentile_ms(50.0)
    }

    /// 95th percentile in ms.
    pub fn p95_ms(&self) -> f64 {
        self.percentile_ms(95.0)
    }

    /// 99th percentile in ms — the tail the paper argues single-number
    /// reporting hides.
    pub fn p99_ms(&self) -> f64 {
        self.percentile_ms(99.0)
    }

    /// Sum of all samples in ms.
    pub fn total_ms(&self) -> f64 {
        self.samples_ms.iter().sum()
    }

    /// Coefficient of variation (stddev / mean; 0 when the mean is 0).
    pub fn cv(&self) -> f64 {
        let mean = self.mean_ms();
        // aitax-allow(float-eq): exact-zero mean sentinel: CV is defined as 0 there
        if mean == 0.0 {
            0.0
        } else {
            self.stddev_ms() / mean
        }
    }

    /// Empirical CDF over `buckets` equal-width bins spanning
    /// `[min, max]`: each entry is `(upper_edge_ms, cumulative_fraction)`
    /// and the last fraction is exactly 1. Empty summaries yield an
    /// empty CDF.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    pub fn cdf(&self, buckets: usize) -> Vec<(f64, f64)> {
        assert!(buckets > 0, "need at least one CDF bucket");
        if self.sorted_ms.is_empty() {
            return Vec::new();
        }
        let lo = self.min_ms();
        let hi = self.max_ms();
        let width = ((hi - lo) / buckets as f64).max(f64::MIN_POSITIVE);
        let n = self.sorted_ms.len() as f64;
        let mut out = Vec::with_capacity(buckets);
        let mut idx = 0usize;
        for b in 0..buckets {
            let edge = if b + 1 == buckets {
                hi
            } else {
                lo + width * (b + 1) as f64
            };
            while idx < self.sorted_ms.len() && self.sorted_ms[idx] <= edge {
                idx += 1;
            }
            let frac = if b + 1 == buckets {
                1.0
            } else {
                idx as f64 / n
            };
            out.push((edge, frac));
        }
        out
    }

    /// Smallest sample in ms.
    pub fn min_ms(&self) -> f64 {
        self.sorted_ms.first().copied().unwrap_or(0.0)
    }

    /// Largest sample in ms.
    pub fn max_ms(&self) -> f64 {
        self.sorted_ms.last().copied().unwrap_or(0.0)
    }

    /// Median absolute deviation in ms (robust spread).
    pub fn mad_ms(&self) -> f64 {
        if self.sorted_ms.is_empty() {
            return 0.0;
        }
        let med = self.median_ms();
        let devs: Vec<f64> = self.sorted_ms.iter().map(|x| (x - med).abs()).collect();
        Summary::from_ms(devs).median_ms()
    }

    /// The Fig. 11 metric: worst-case relative deviation from the median
    /// (`max(|max-med|, |med-min|) / med`).
    pub fn max_deviation_from_median(&self) -> f64 {
        if self.sorted_ms.is_empty() {
            return 0.0;
        }
        let med = self.median_ms();
        // aitax-allow(float-eq): exact-zero median sentinel guards the division below
        if med == 0.0 {
            return 0.0;
        }
        let up = self.max_ms() - med;
        let down = med - self.min_ms();
        up.max(down) / med
    }

    /// Fixed-width histogram over `[min, max]` with `bins` buckets.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero.
    pub fn histogram(&self, bins: usize) -> Vec<(f64, usize)> {
        assert!(bins > 0, "need at least one bin");
        if self.sorted_ms.is_empty() {
            return Vec::new();
        }
        let lo = self.min_ms();
        let hi = self.max_ms();
        let width = ((hi - lo) / bins as f64).max(f64::MIN_POSITIVE);
        let mut counts = vec![0usize; bins];
        for &x in &self.sorted_ms {
            let idx = (((x - lo) / width) as usize).min(bins - 1);
            counts[idx] += 1;
        }
        counts
            .into_iter()
            .enumerate()
            .map(|(i, c)| (lo + width * (i as f64 + 0.5), c))
            .collect()
    }
}

/// CDF resolution used by [`DistStats`] artifacts.
pub const CDF_BUCKETS: usize = 16;

/// Distribution statistics of one metric, pooled across repeats.
///
/// Built from a full sample vector, so percentiles are exact; for
/// population-scale streaming aggregation (where no sample vector ever
/// materializes) use [`StreamDist`] instead.
#[derive(Debug, Clone, PartialEq)]
pub struct DistStats {
    /// Sample count.
    pub n: usize,
    /// Arithmetic mean (ms).
    pub mean: f64,
    /// Population standard deviation (ms).
    pub stddev: f64,
    /// Coefficient of variation.
    pub cv: f64,
    /// Smallest sample (ms).
    pub min: f64,
    /// Median (ms).
    pub p50: f64,
    /// 95th percentile (ms).
    pub p95: f64,
    /// 99th percentile (ms).
    pub p99: f64,
    /// Largest sample (ms).
    pub max: f64,
    /// The Fig. 11 metric: worst relative deviation from the median.
    pub max_dev_from_median: f64,
    /// Empirical CDF: `(upper_edge_ms, cumulative_fraction)` per bucket.
    pub cdf: Vec<(f64, f64)>,
}

impl DistStats {
    /// Builds the statistics from raw millisecond samples.
    pub fn from_ms(samples: &[f64]) -> Self {
        let s = Summary::from_ms(samples.iter().copied());
        if s.is_empty() {
            return DistStats {
                n: 0,
                mean: 0.0,
                stddev: 0.0,
                cv: 0.0,
                min: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
                max: 0.0,
                max_dev_from_median: 0.0,
                cdf: Vec::new(),
            };
        }
        DistStats {
            n: s.len(),
            mean: s.mean_ms(),
            stddev: s.stddev_ms(),
            cv: s.cv(),
            min: s.min_ms(),
            p50: s.p50_ms(),
            p95: s.p95_ms(),
            p99: s.p99_ms(),
            max: s.max_ms(),
            max_dev_from_median: s.max_deviation_from_median(),
            cdf: s.cdf(CDF_BUCKETS),
        }
    }
}

/// Number of histogram bins per decade in a [`LogHistogram`].
pub const LOG_HIST_BINS_PER_DECADE: usize = 16;

/// Lower edge of the first [`LogHistogram`] bin, in milliseconds (1 µs).
pub const LOG_HIST_LO_MS: f64 = 1e-3;

/// Number of decades a [`LogHistogram`] spans (1 µs .. 100 s).
pub const LOG_HIST_DECADES: usize = 8;

/// Total bin count of a [`LogHistogram`].
pub const LOG_HIST_BINS: usize = LOG_HIST_BINS_PER_DECADE * LOG_HIST_DECADES;

/// Fixed-bin log-latency histogram with an exactly mergeable
/// representation.
///
/// Every histogram shares the same global binning — `LOG_HIST_BINS`
/// log-spaced bins covering `LOG_HIST_LO_MS` to 100 s, with samples
/// outside the range clamped into the edge bins — so merging two
/// histograms is a pure `u64` bin-count addition: **exactly**
/// associative and commutative, unlike any floating-point accumulator.
/// This is what lets the fleet aggregator fold per-device results in a
/// canonical order and produce byte-identical artifacts for any shard
/// split or thread count.
///
/// Quantiles are estimated by walking the cumulative counts and
/// interpolating geometrically inside the hit bin; with 16 bins per
/// decade the bin ratio is `10^(1/16) ≈ 1.155`, bounding the estimate
/// error at ~7% of the true value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    n: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; LOG_HIST_BINS],
            n: 0,
        }
    }

    /// The bin index a sample falls into (clamped into range).
    fn bin_of(ms: f64) -> usize {
        if ms.is_nan() || ms <= LOG_HIST_LO_MS {
            return 0;
        }
        let idx = ((ms / LOG_HIST_LO_MS).log10() * LOG_HIST_BINS_PER_DECADE as f64) as usize;
        idx.min(LOG_HIST_BINS - 1)
    }

    /// Lower edge of bin `i` in ms.
    pub fn bin_lo_ms(i: usize) -> f64 {
        LOG_HIST_LO_MS * 10f64.powf(i as f64 / LOG_HIST_BINS_PER_DECADE as f64)
    }

    /// Upper edge of bin `i` in ms.
    pub fn bin_hi_ms(i: usize) -> f64 {
        Self::bin_lo_ms(i + 1)
    }

    /// Records one millisecond sample.
    pub fn record(&mut self, ms: f64) {
        self.counts[Self::bin_of(ms)] += 1;
        self.n += 1;
    }

    /// Merges another histogram in (exact, order-independent).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.n += other.n;
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// `(bin_index, count)` for every non-empty bin, ascending.
    pub fn nonzero_bins(&self) -> Vec<(usize, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }

    /// Estimated quantile (`q` in `[0, 1]`) in ms; 0 when empty.
    ///
    /// Walks the cumulative counts to the bin containing the target rank
    /// and interpolates geometrically within it — a pure function of the
    /// (integer) bin counts, so estimates are identical for any merge
    /// history that produced the same counts.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.n == 0 {
            return 0.0;
        }
        let target = q * self.n as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cum + c;
            if next as f64 >= target {
                let frac = ((target - cum as f64) / c as f64).clamp(0.0, 1.0);
                let lo = Self::bin_lo_ms(i);
                let hi = Self::bin_hi_ms(i);
                // Geometric interpolation: log-linear within the bin.
                return lo * (hi / lo).powf(frac);
            }
            cum = next;
        }
        // All mass below target (q == 1 with rounding): top non-empty bin.
        let top = self.counts.iter().rposition(|&c| c > 0).unwrap_or(0);
        Self::bin_hi_ms(top)
    }
}

/// Mergeable streaming distribution: Welford moments + exact min/max +
/// a [`LogHistogram`] for tail quantiles.
///
/// The fleet's population aggregation runs on these: each device folds
/// its own request latencies into a `StreamDist`, and the aggregator
/// merges per-device partials **in device order** — a canonical
/// sequence, independent of shard split and thread count, so the merged
/// result (and every artifact byte rendered from it) is identical for
/// any parallel execution. The histogram half is exactly
/// order-independent; the Welford half is kept deterministic by that
/// canonical merge order.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamDist {
    w: Welford,
    min: f64,
    max: f64,
    hist: LogHistogram,
}

impl Default for StreamDist {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamDist {
    /// An empty accumulator.
    pub fn new() -> Self {
        StreamDist {
            w: Welford::new(),
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            hist: LogHistogram::new(),
        }
    }

    /// Folds one millisecond sample in.
    pub fn record(&mut self, ms: f64) {
        self.w.push(ms);
        self.min = self.min.min(ms);
        self.max = self.max.max(ms);
        self.hist.record(ms);
    }

    /// Merges another accumulator in.
    ///
    /// Counts, min/max and histogram bins merge exactly; the Welford
    /// moments merge via Chan's parallel update, which is order-sensitive
    /// in the last float bits — callers that need byte-identical output
    /// must merge partials in a canonical order (the fleet aggregator
    /// merges in device order).
    pub fn merge(&mut self, other: &StreamDist) {
        self.w.merge(&other.w);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.hist.merge(&other.hist);
    }

    /// Sample count.
    pub fn count(&self) -> u64 {
        self.w.count()
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.w.mean()
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.w.stddev()
    }

    /// Coefficient of variation.
    pub fn cv(&self) -> f64 {
        self.w.cv()
    }

    /// Smallest sample (0 when empty).
    pub fn min_ms(&self) -> f64 {
        if self.w.count() == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max_ms(&self) -> f64 {
        if self.w.count() == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Histogram-estimated median.
    pub fn p50_ms(&self) -> f64 {
        self.hist.quantile_ms(0.50)
    }

    /// Histogram-estimated 95th percentile.
    pub fn p95_ms(&self) -> f64 {
        self.hist.quantile_ms(0.95)
    }

    /// Histogram-estimated 99th percentile.
    pub fn p99_ms(&self) -> f64 {
        self.hist.quantile_ms(0.99)
    }

    /// The underlying histogram.
    pub fn histogram(&self) -> &LogHistogram {
        &self.hist
    }
}

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// The lab aggregator folds per-job statistics without materializing a
/// sample vector per metric; [`Welford::merge`] (Chan's parallel update)
/// combines accumulators built independently, so the result is the same
/// whichever order jobs finished in.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Folds one sample in.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Combines two accumulators (Chan et al. parallel variance).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n;
        self.n += other.n;
    }

    /// Number of samples folded in.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation (stddev / mean; 0 when the mean is 0).
    pub fn cv(&self) -> f64 {
        // aitax-allow(float-eq): exact-zero mean sentinel: CV is defined as 0 there
        if self.mean() == 0.0 {
            0.0
        } else {
            self.stddev() / self.mean()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[f64]) -> Summary {
        Summary::from_ms(v.iter().copied())
    }

    #[test]
    fn mean_and_stddev() {
        let sum = s(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((sum.mean_ms() - 5.0).abs() < 1e-12);
        assert!((sum.stddev_ms() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles_interpolate() {
        let sum = s(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(sum.percentile_ms(0.0), 1.0);
        assert_eq!(sum.percentile_ms(100.0), 4.0);
        assert!((sum.median_ms() - 2.5).abs() < 1e-12);
        assert!((sum.percentile_ms(25.0) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn median_unsorted_input() {
        let sum = s(&[9.0, 1.0, 5.0]);
        assert_eq!(sum.median_ms(), 5.0);
        assert_eq!(sum.min_ms(), 1.0);
        assert_eq!(sum.max_ms(), 9.0);
    }

    #[test]
    fn mad_is_robust() {
        let tight = s(&[10.0, 10.1, 9.9, 10.0, 10.05]);
        let wild = s(&[10.0, 14.0, 6.0, 10.0, 13.0]);
        assert!(wild.mad_ms() > tight.mad_ms() * 5.0);
    }

    #[test]
    fn deviation_from_median_metric() {
        // Interpolated median 10.25, max 13 → ≈27%.
        let sum = s(&[9.5, 10.0, 10.5, 13.0]);
        assert!((sum.max_deviation_from_median() - (13.0 - 10.25) / 10.25).abs() < 1e-9);
        let spread = s(&[7.0, 10.0, 13.0]);
        assert!((spread.max_deviation_from_median() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn histogram_counts_everything() {
        let sum = s(&[1.0, 1.1, 1.2, 5.0, 9.0, 9.1]);
        let h = sum.histogram(4);
        assert_eq!(h.iter().map(|(_, c)| c).sum::<usize>(), 6);
        assert_eq!(h.len(), 4);
    }

    #[test]
    fn empty_summary_is_safe() {
        let sum = s(&[]);
        assert!(sum.is_empty());
        assert_eq!(sum.mean_ms(), 0.0);
        assert_eq!(sum.stddev_ms(), 0.0);
        assert_eq!(sum.max_deviation_from_median(), 0.0);
        assert!(sum.histogram(3).is_empty());
    }

    #[test]
    fn from_spans_converts_units() {
        let sum = Summary::from_spans([SimSpan::from_ms(2.0), SimSpan::from_ms(4.0)]);
        assert_eq!(sum.mean_ms(), 3.0);
        assert_eq!(sum.len(), 2);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn bad_percentile_panics() {
        s(&[1.0]).percentile_ms(101.0);
    }

    #[test]
    fn tail_percentile_aliases() {
        let sum = s(&(1..=100).map(f64::from).collect::<Vec<_>>());
        assert_eq!(sum.p50_ms(), sum.median_ms());
        assert!((sum.p95_ms() - 95.05).abs() < 1e-9);
        assert!((sum.p99_ms() - 99.01).abs() < 1e-9);
        assert_eq!(sum.total_ms(), 5050.0);
    }

    #[test]
    fn cv_is_relative_spread() {
        let sum = s(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((sum.cv() - 2.0 / 5.0).abs() < 1e-12);
        assert_eq!(s(&[]).cv(), 0.0);
        assert_eq!(s(&[0.0, 0.0]).cv(), 0.0);
    }

    #[test]
    fn cdf_reaches_one_and_is_monotone() {
        let sum = s(&[1.0, 2.0, 3.0, 4.0, 10.0]);
        let cdf = sum.cdf(4);
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf.last().unwrap().1, 1.0);
        for w in cdf.windows(2) {
            assert!(w[0].0 < w[1].0, "edges increase");
            assert!(w[0].1 <= w[1].1, "fractions non-decreasing");
        }
        // 4 of 5 samples are ≤ 4.0 ms, inside the first two buckets.
        assert!((cdf[1].1 - 0.8).abs() < 1e-12);
        assert!(s(&[]).cdf(3).is_empty());
    }

    #[test]
    fn welford_matches_batch_summary() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for x in data {
            w.push(x);
        }
        let sum = s(&data);
        assert_eq!(w.count(), 8);
        assert!((w.mean() - sum.mean_ms()).abs() < 1e-12);
        assert!((w.stddev() - sum.stddev_ms()).abs() < 1e-12);
        assert!((w.cv() - sum.cv()).abs() < 1e-12);
    }

    /// Deterministic pseudo-random sample stream for merge properties.
    fn stream(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = aitax_des::SimRng::seed_from(seed);
        (0..n).map(|_| rng.lognormal(25.0, 0.8)).collect()
    }

    /// Splits `data` into contiguous chunks at pseudo-random boundaries.
    fn random_split(data: &[f64], pieces: usize, seed: u64) -> Vec<&[f64]> {
        let mut rng = aitax_des::SimRng::seed_from(seed);
        let mut cuts: Vec<usize> = (0..pieces - 1)
            .map(|_| rng.uniform_u64(0, data.len() as u64 + 1) as usize)
            .collect();
        cuts.push(0);
        cuts.push(data.len());
        cuts.sort_unstable();
        cuts.windows(2).map(|w| &data[w[0]..w[1]]).collect()
    }

    #[test]
    fn dist_stats_pools_samples() {
        let d = DistStats::from_ms(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.n, 4);
        assert!((d.mean - 2.5).abs() < 1e-12);
        assert_eq!(d.cdf.len(), CDF_BUCKETS);
        assert_eq!(d.cdf.last().unwrap().1, 1.0);
        let empty = DistStats::from_ms(&[]);
        assert_eq!(empty.n, 0);
        assert!(empty.cdf.is_empty());
    }

    #[test]
    fn log_histogram_bins_cover_range_and_clamp() {
        let mut h = LogHistogram::new();
        h.record(0.0); // clamps into bin 0
        h.record(1e-9);
        h.record(1e9); // clamps into the top bin
        h.record(25.0);
        assert_eq!(h.count(), 4);
        let nz = h.nonzero_bins();
        assert_eq!(nz.first().unwrap().0, 0);
        assert_eq!(nz.last().unwrap().0, LOG_HIST_BINS - 1);
        assert_eq!(nz.iter().map(|&(_, c)| c).sum::<u64>(), 4);
        // Bin edges are log-spaced: each decade spans BINS_PER_DECADE bins.
        let ratio = LogHistogram::bin_hi_ms(3) / LogHistogram::bin_lo_ms(3);
        assert!((ratio - 10f64.powf(1.0 / LOG_HIST_BINS_PER_DECADE as f64)).abs() < 1e-12);
    }

    #[test]
    fn log_histogram_quantiles_track_true_percentiles() {
        let data = stream(20_000, 42);
        let mut h = LogHistogram::new();
        for &x in &data {
            h.record(x);
        }
        let sum = s(&data);
        for (q, p) in [(0.5, 50.0), (0.95, 95.0), (0.99, 99.0)] {
            let est = h.quantile_ms(q);
            let exact = sum.percentile_ms(p);
            assert!(
                (est - exact).abs() / exact < 0.08,
                "q{q}: est {est} vs exact {exact}"
            );
        }
        assert_eq!(LogHistogram::new().quantile_ms(0.5), 0.0);
        assert!(h.quantile_ms(0.0) <= h.quantile_ms(1.0));
    }

    #[test]
    fn log_histogram_merge_is_exactly_associative_and_commutative() {
        let data = stream(3_000, 7);
        // Whole-stream reference.
        let mut whole = LogHistogram::new();
        for &x in &data {
            whole.record(x);
        }
        for (pieces, seed) in [(2, 1), (3, 2), (7, 3), (16, 4)] {
            let parts: Vec<LogHistogram> = random_split(&data, pieces, seed)
                .into_iter()
                .map(|chunk| {
                    let mut h = LogHistogram::new();
                    for &x in chunk {
                        h.record(x);
                    }
                    h
                })
                .collect();
            // Left-to-right fold == whole stream, exactly.
            let mut fold = LogHistogram::new();
            for p in &parts {
                fold.merge(p);
            }
            assert_eq!(fold, whole, "{pieces}-way split must merge exactly");
            // Reverse order == same result (commutativity).
            let mut rev = LogHistogram::new();
            for p in parts.iter().rev() {
                rev.merge(p);
            }
            assert_eq!(rev, whole);
            // Arbitrary regrouping (associativity): pairwise tree merge.
            let mut tree = parts;
            while tree.len() > 1 {
                let mut next = Vec::new();
                for pair in tree.chunks(2) {
                    let mut m = pair[0].clone();
                    if let Some(b) = pair.get(1) {
                        m.merge(b);
                    }
                    next.push(m);
                }
                tree = next;
            }
            assert_eq!(tree[0], whole);
        }
    }

    #[test]
    fn stream_dist_matches_batch_summary() {
        let data = stream(5_000, 11);
        let mut d = StreamDist::new();
        for &x in &data {
            d.record(x);
        }
        let sum = s(&data);
        assert_eq!(d.count() as usize, sum.len());
        assert!((d.mean() - sum.mean_ms()).abs() < 1e-9);
        assert!((d.stddev() - sum.stddev_ms()).abs() < 1e-9);
        assert_eq!(d.min_ms(), sum.min_ms());
        assert_eq!(d.max_ms(), sum.max_ms());
        assert!((d.p50_ms() - sum.p50_ms()).abs() / sum.p50_ms() < 0.08);
        assert!((d.p99_ms() - sum.p99_ms()).abs() / sum.p99_ms() < 0.08);
        let empty = StreamDist::new();
        assert_eq!(empty.min_ms(), 0.0);
        assert_eq!(empty.max_ms(), 0.0);
        assert_eq!(empty.p50_ms(), 0.0);
    }

    #[test]
    fn stream_dist_canonical_fold_is_split_invariant() {
        // The fleet determinism contract: per-device partials merged in
        // device order give bit-identical results for ANY shard split,
        // because the merge sequence never changes — only which worker
        // computed each partial. Model that here: fixed per-device
        // partials, arbitrary contiguous shard groupings, canonical fold.
        let data = stream(2_000, 23);
        let devices: Vec<StreamDist> = data
            .chunks(40)
            .map(|chunk| {
                let mut d = StreamDist::new();
                for &x in chunk {
                    d.record(x);
                }
                d
            })
            .collect();
        let fold_all = |parts: &[StreamDist]| {
            let mut acc = StreamDist::new();
            for p in parts {
                acc.merge(p);
            }
            acc
        };
        let reference = fold_all(&devices);
        for shards in [1, 2, 3, 7, 13, devices.len()] {
            // Contiguous shard ranges, exactly how the fleet splits work.
            let per = devices.len().div_ceil(shards);
            let grouped: Vec<&[StreamDist]> = devices.chunks(per).collect();
            // The aggregator folds device partials in device order,
            // ignoring shard boundaries entirely.
            let mut acc = StreamDist::new();
            for shard in &grouped {
                for d in *shard {
                    acc.merge(d);
                }
            }
            assert_eq!(acc, reference, "{shards}-shard fold must be identical");
        }
    }

    #[test]
    fn stream_dist_merge_commutes_within_float_tolerance() {
        let data = stream(4_000, 31);
        let (a, b) = data.split_at(1_234);
        let build = |chunk: &[f64]| {
            let mut d = StreamDist::new();
            for &x in chunk {
                d.record(x);
            }
            d
        };
        let (da, db) = (build(a), build(b));
        let mut ab = da.clone();
        ab.merge(&db);
        let mut ba = db.clone();
        ba.merge(&da);
        assert_eq!(ab.count(), ba.count());
        assert_eq!(ab.histogram(), ba.histogram(), "histogram half is exact");
        assert_eq!(ab.min_ms(), ba.min_ms());
        assert_eq!(ab.max_ms(), ba.max_ms());
        assert!((ab.mean() - ba.mean()).abs() < 1e-9);
        assert!((ab.stddev() - ba.stddev()).abs() < 1e-9);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let data: Vec<f64> = (0..50)
            .map(|i| (i as f64 * 0.7).sin() * 3.0 + 10.0)
            .collect();
        let mut whole = Welford::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &data[..17] {
            a.push(x);
        }
        for &x in &data[17..] {
            b.push(x);
        }
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.count(), whole.count());
        assert!((merged.mean() - whole.mean()).abs() < 1e-9);
        assert!((merged.variance() - whole.variance()).abs() < 1e-9);
        // Merging into an empty accumulator copies; merging empty is a no-op.
        let mut empty = Welford::new();
        empty.merge(&whole);
        assert_eq!(empty, whole);
        let mut same = whole;
        same.merge(&Welford::new());
        assert_eq!(same, whole);
    }
}
