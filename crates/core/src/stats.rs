//! Distribution statistics for latency samples.
//!
//! §IV-C: "workload performance analysis needs to report statistical
//! distributions in performance. Instead, today's standard practice is to
//! report a single ML performance number." [`Summary`] is the
//! distribution-first report the paper asks for.

use aitax_des::SimSpan;

/// A summary of a latency distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    samples_ms: Vec<f64>,
    sorted_ms: Vec<f64>,
}

impl Summary {
    /// Builds a summary from spans.
    pub fn from_spans(spans: impl IntoIterator<Item = SimSpan>) -> Self {
        Self::from_ms(spans.into_iter().map(|s| s.as_ms()))
    }

    /// Builds a summary from millisecond samples.
    pub fn from_ms(samples: impl IntoIterator<Item = f64>) -> Self {
        let samples_ms: Vec<f64> = samples.into_iter().collect();
        let mut sorted_ms = samples_ms.clone();
        sorted_ms.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        Summary {
            samples_ms,
            sorted_ms,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples_ms.len()
    }

    /// Whether there are no samples.
    pub fn is_empty(&self) -> bool {
        self.samples_ms.is_empty()
    }

    /// The raw samples in collection order (milliseconds).
    pub fn samples_ms(&self) -> &[f64] {
        &self.samples_ms
    }

    /// Arithmetic mean in ms (0 when empty) — what the paper reports as
    /// "the arithmetic mean of 500 runs" (§III-D).
    pub fn mean_ms(&self) -> f64 {
        if self.samples_ms.is_empty() {
            0.0
        } else {
            self.samples_ms.iter().sum::<f64>() / self.samples_ms.len() as f64
        }
    }

    /// Population standard deviation in ms.
    pub fn stddev_ms(&self) -> f64 {
        if self.samples_ms.len() < 2 {
            return 0.0;
        }
        let mean = self.mean_ms();
        let var = self
            .samples_ms
            .iter()
            .map(|x| (x - mean).powi(2))
            .sum::<f64>()
            / self.samples_ms.len() as f64;
        var.sqrt()
    }

    /// Interpolated percentile (`p` in 0..=100) in ms.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]` or there are no samples.
    pub fn percentile_ms(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
        assert!(!self.sorted_ms.is_empty(), "no samples");
        if self.sorted_ms.len() == 1 {
            return self.sorted_ms[0];
        }
        let rank = p / 100.0 * (self.sorted_ms.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        self.sorted_ms[lo] + (self.sorted_ms[hi] - self.sorted_ms[lo]) * frac
    }

    /// Median in ms.
    pub fn median_ms(&self) -> f64 {
        self.percentile_ms(50.0)
    }

    /// 50th percentile in ms (alias for [`Summary::median_ms`]).
    pub fn p50_ms(&self) -> f64 {
        self.percentile_ms(50.0)
    }

    /// 95th percentile in ms.
    pub fn p95_ms(&self) -> f64 {
        self.percentile_ms(95.0)
    }

    /// 99th percentile in ms — the tail the paper argues single-number
    /// reporting hides.
    pub fn p99_ms(&self) -> f64 {
        self.percentile_ms(99.0)
    }

    /// Sum of all samples in ms.
    pub fn total_ms(&self) -> f64 {
        self.samples_ms.iter().sum()
    }

    /// Coefficient of variation (stddev / mean; 0 when the mean is 0).
    pub fn cv(&self) -> f64 {
        let mean = self.mean_ms();
        // aitax-allow(float-eq): exact-zero mean sentinel: CV is defined as 0 there
        if mean == 0.0 {
            0.0
        } else {
            self.stddev_ms() / mean
        }
    }

    /// Empirical CDF over `buckets` equal-width bins spanning
    /// `[min, max]`: each entry is `(upper_edge_ms, cumulative_fraction)`
    /// and the last fraction is exactly 1. Empty summaries yield an
    /// empty CDF.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    pub fn cdf(&self, buckets: usize) -> Vec<(f64, f64)> {
        assert!(buckets > 0, "need at least one CDF bucket");
        if self.sorted_ms.is_empty() {
            return Vec::new();
        }
        let lo = self.min_ms();
        let hi = self.max_ms();
        let width = ((hi - lo) / buckets as f64).max(f64::MIN_POSITIVE);
        let n = self.sorted_ms.len() as f64;
        let mut out = Vec::with_capacity(buckets);
        let mut idx = 0usize;
        for b in 0..buckets {
            let edge = if b + 1 == buckets {
                hi
            } else {
                lo + width * (b + 1) as f64
            };
            while idx < self.sorted_ms.len() && self.sorted_ms[idx] <= edge {
                idx += 1;
            }
            let frac = if b + 1 == buckets {
                1.0
            } else {
                idx as f64 / n
            };
            out.push((edge, frac));
        }
        out
    }

    /// Smallest sample in ms.
    pub fn min_ms(&self) -> f64 {
        self.sorted_ms.first().copied().unwrap_or(0.0)
    }

    /// Largest sample in ms.
    pub fn max_ms(&self) -> f64 {
        self.sorted_ms.last().copied().unwrap_or(0.0)
    }

    /// Median absolute deviation in ms (robust spread).
    pub fn mad_ms(&self) -> f64 {
        if self.sorted_ms.is_empty() {
            return 0.0;
        }
        let med = self.median_ms();
        let devs: Vec<f64> = self.sorted_ms.iter().map(|x| (x - med).abs()).collect();
        Summary::from_ms(devs).median_ms()
    }

    /// The Fig. 11 metric: worst-case relative deviation from the median
    /// (`max(|max-med|, |med-min|) / med`).
    pub fn max_deviation_from_median(&self) -> f64 {
        if self.sorted_ms.is_empty() {
            return 0.0;
        }
        let med = self.median_ms();
        // aitax-allow(float-eq): exact-zero median sentinel guards the division below
        if med == 0.0 {
            return 0.0;
        }
        let up = self.max_ms() - med;
        let down = med - self.min_ms();
        up.max(down) / med
    }

    /// Fixed-width histogram over `[min, max]` with `bins` buckets.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero.
    pub fn histogram(&self, bins: usize) -> Vec<(f64, usize)> {
        assert!(bins > 0, "need at least one bin");
        if self.sorted_ms.is_empty() {
            return Vec::new();
        }
        let lo = self.min_ms();
        let hi = self.max_ms();
        let width = ((hi - lo) / bins as f64).max(f64::MIN_POSITIVE);
        let mut counts = vec![0usize; bins];
        for &x in &self.sorted_ms {
            let idx = (((x - lo) / width) as usize).min(bins - 1);
            counts[idx] += 1;
        }
        counts
            .into_iter()
            .enumerate()
            .map(|(i, c)| (lo + width * (i as f64 + 0.5), c))
            .collect()
    }
}

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// The lab aggregator folds per-job statistics without materializing a
/// sample vector per metric; [`Welford::merge`] (Chan's parallel update)
/// combines accumulators built independently, so the result is the same
/// whichever order jobs finished in.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Folds one sample in.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Combines two accumulators (Chan et al. parallel variance).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n;
        self.n += other.n;
    }

    /// Number of samples folded in.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation (stddev / mean; 0 when the mean is 0).
    pub fn cv(&self) -> f64 {
        // aitax-allow(float-eq): exact-zero mean sentinel: CV is defined as 0 there
        if self.mean() == 0.0 {
            0.0
        } else {
            self.stddev() / self.mean()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[f64]) -> Summary {
        Summary::from_ms(v.iter().copied())
    }

    #[test]
    fn mean_and_stddev() {
        let sum = s(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((sum.mean_ms() - 5.0).abs() < 1e-12);
        assert!((sum.stddev_ms() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles_interpolate() {
        let sum = s(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(sum.percentile_ms(0.0), 1.0);
        assert_eq!(sum.percentile_ms(100.0), 4.0);
        assert!((sum.median_ms() - 2.5).abs() < 1e-12);
        assert!((sum.percentile_ms(25.0) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn median_unsorted_input() {
        let sum = s(&[9.0, 1.0, 5.0]);
        assert_eq!(sum.median_ms(), 5.0);
        assert_eq!(sum.min_ms(), 1.0);
        assert_eq!(sum.max_ms(), 9.0);
    }

    #[test]
    fn mad_is_robust() {
        let tight = s(&[10.0, 10.1, 9.9, 10.0, 10.05]);
        let wild = s(&[10.0, 14.0, 6.0, 10.0, 13.0]);
        assert!(wild.mad_ms() > tight.mad_ms() * 5.0);
    }

    #[test]
    fn deviation_from_median_metric() {
        // Interpolated median 10.25, max 13 → ≈27%.
        let sum = s(&[9.5, 10.0, 10.5, 13.0]);
        assert!((sum.max_deviation_from_median() - (13.0 - 10.25) / 10.25).abs() < 1e-9);
        let spread = s(&[7.0, 10.0, 13.0]);
        assert!((spread.max_deviation_from_median() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn histogram_counts_everything() {
        let sum = s(&[1.0, 1.1, 1.2, 5.0, 9.0, 9.1]);
        let h = sum.histogram(4);
        assert_eq!(h.iter().map(|(_, c)| c).sum::<usize>(), 6);
        assert_eq!(h.len(), 4);
    }

    #[test]
    fn empty_summary_is_safe() {
        let sum = s(&[]);
        assert!(sum.is_empty());
        assert_eq!(sum.mean_ms(), 0.0);
        assert_eq!(sum.stddev_ms(), 0.0);
        assert_eq!(sum.max_deviation_from_median(), 0.0);
        assert!(sum.histogram(3).is_empty());
    }

    #[test]
    fn from_spans_converts_units() {
        let sum = Summary::from_spans([SimSpan::from_ms(2.0), SimSpan::from_ms(4.0)]);
        assert_eq!(sum.mean_ms(), 3.0);
        assert_eq!(sum.len(), 2);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn bad_percentile_panics() {
        s(&[1.0]).percentile_ms(101.0);
    }

    #[test]
    fn tail_percentile_aliases() {
        let sum = s(&(1..=100).map(f64::from).collect::<Vec<_>>());
        assert_eq!(sum.p50_ms(), sum.median_ms());
        assert!((sum.p95_ms() - 95.05).abs() < 1e-9);
        assert!((sum.p99_ms() - 99.01).abs() < 1e-9);
        assert_eq!(sum.total_ms(), 5050.0);
    }

    #[test]
    fn cv_is_relative_spread() {
        let sum = s(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((sum.cv() - 2.0 / 5.0).abs() < 1e-12);
        assert_eq!(s(&[]).cv(), 0.0);
        assert_eq!(s(&[0.0, 0.0]).cv(), 0.0);
    }

    #[test]
    fn cdf_reaches_one_and_is_monotone() {
        let sum = s(&[1.0, 2.0, 3.0, 4.0, 10.0]);
        let cdf = sum.cdf(4);
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf.last().unwrap().1, 1.0);
        for w in cdf.windows(2) {
            assert!(w[0].0 < w[1].0, "edges increase");
            assert!(w[0].1 <= w[1].1, "fractions non-decreasing");
        }
        // 4 of 5 samples are ≤ 4.0 ms, inside the first two buckets.
        assert!((cdf[1].1 - 0.8).abs() < 1e-12);
        assert!(s(&[]).cdf(3).is_empty());
    }

    #[test]
    fn welford_matches_batch_summary() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for x in data {
            w.push(x);
        }
        let sum = s(&data);
        assert_eq!(w.count(), 8);
        assert!((w.mean() - sum.mean_ms()).abs() < 1e-12);
        assert!((w.stddev() - sum.stddev_ms()).abs() < 1e-12);
        assert!((w.cv() - sum.cv()).abs() < 1e-12);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let data: Vec<f64> = (0..50)
            .map(|i| (i as f64 * 0.7).sin() * 3.0 + 10.0)
            .collect();
        let mut whole = Welford::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &data[..17] {
            a.push(x);
        }
        for &x in &data[17..] {
            b.push(x);
        }
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.count(), whole.count());
        assert!((merged.mean() - whole.mean()).abs() < 1e-9);
        assert!((merged.variance() - whole.variance()).abs() < 1e-9);
        // Merging into an empty accumulator copies; merging empty is a no-op.
        let mut empty = Welford::new();
        empty.merge(&whole);
        assert_eq!(empty, whole);
        let mut same = whole;
        same.merge(&Welford::new());
        assert_eq!(same, whole);
    }
}
