//! Extension experiments beyond the paper's numbered exhibits: the §III-D
//! thermal methodology, §IV-C cold-start breakdown across engines, NNAPI
//! execution preferences, and the cross-chipset sweep the paper says its
//! trends generalize over (§III-C).

use aitax_framework::nnapi::ExecutionPreference;
use aitax_framework::Engine;
use aitax_models::zoo::ModelId;
use aitax_soc::SocId;
use aitax_tensor::DType;

use aitax_models::zoo::Zoo;

use crate::experiment::ExperimentOpts;
use crate::pipeline::E2eConfig;
use crate::report::{fmt_ms, fmt_ratio, Table};
use crate::runmode::RunMode;
use crate::stage::Stage;

/// §III-D — the cool-down methodology: the same benchmark on a cooled
/// (33 °C) vs pre-heated (throttling) chip.
///
/// "Since mobile SoCs are particularly susceptible to thermal throttling,
/// we make sure to run benchmarks once the CPU is cooled to its idle
/// temperature of around 33 °C."
pub fn thermal_methodology(opts: ExperimentOpts) -> Table {
    let mut t = Table::new(vec!["start_temp_c", "e2e_ms", "vs_cooled"]);
    let mut cooled = None;
    for temp in [33.0f64, 60.0, 70.0, 85.0] {
        let r = E2eConfig::new(ModelId::MobileNetV1, DType::F32)
            .engine(Engine::tflite_cpu(4))
            .iterations(opts.iterations)
            .seed(opts.seed)
            .initial_temp(temp)
            .run();
        let e2e = r.e2e_summary().mean_ms();
        let base = *cooled.get_or_insert(e2e);
        t.row(vec![
            format!("{temp:.0}"),
            fmt_ms(e2e),
            fmt_ratio(e2e / base),
        ]);
    }
    t
}

/// §IV-C cold start — model initialization plus first-inference penalty
/// per engine ("the TFlite benchmark tool breaks down model
/// initialization time, which is good to measure if an application
/// switches between models or frequently reloads them").
pub fn cold_start(opts: ExperimentOpts) -> Table {
    let mut t = Table::new(vec![
        "engine",
        "model_init_ms",
        "first_inference_ms",
        "steady_inference_ms",
        "cold_penalty",
    ]);
    let engines: [(Engine, DType); 4] = [
        (Engine::tflite_cpu(4), DType::I8),
        (Engine::TfLiteGpu { threads: 4 }, DType::F32),
        (Engine::TfLiteHexagon { threads: 4 }, DType::I8),
        (Engine::nnapi(), DType::I8),
    ];
    for (engine, dtype) in engines {
        let r = E2eConfig::new(ModelId::MobileNetV1, dtype)
            .engine(engine)
            .iterations(opts.iterations.max(5))
            .seed(opts.seed)
            .run();
        let inf = r.summary(Stage::Inference);
        let first = inf.samples_ms()[0];
        let steady = inf.median_ms();
        t.row(vec![
            engine.label(),
            fmt_ms(r.model_init.as_ms()),
            fmt_ms(first),
            fmt_ms(steady),
            fmt_ratio((r.model_init.as_ms() + first) / steady),
        ]);
    }
    t
}

/// NNAPI execution preferences (§II-D: "based on the application's
/// execution preference ... the framework will determine on which
/// processors and co-processors to run a model").
pub fn preference_sweep(opts: ExperimentOpts) -> Table {
    let mut t = Table::new(vec!["preference", "inference_ms", "e2e_ms"]);
    for pref in [
        ExecutionPreference::FastSingleAnswer,
        ExecutionPreference::SustainedSpeed,
        ExecutionPreference::LowPower,
    ] {
        let r = E2eConfig::new(ModelId::MobileNetV1, DType::F32)
            .engine(Engine::Nnapi {
                threads: 4,
                preference: pref,
            })
            .iterations(opts.iterations)
            .seed(opts.seed)
            .run();
        t.row(vec![
            pref.to_string(),
            fmt_ms(r.summary(Stage::Inference).mean_ms()),
            fmt_ms(r.e2e_summary().mean_ms()),
        ]);
    }
    t
}

/// §III-C — "our experimental results indicate that the trends are
/// representative across the other, older and newer, chipsets": the same
/// app pipeline across all four Table II platforms.
pub fn chipset_sweep(opts: ExperimentOpts) -> Table {
    let mut t = Table::new(vec![
        "chipset",
        "capture_ms",
        "preproc_ms",
        "inference_ms",
        "e2e_ms",
        "ai_tax",
    ]);
    for soc in SocId::ALL {
        let r = E2eConfig::new(ModelId::MobileNetV1, DType::I8)
            .engine(Engine::nnapi())
            .run_mode(RunMode::AndroidApp)
            .soc(soc)
            .iterations(opts.iterations)
            .seed(opts.seed)
            .run();
        t.row(vec![
            soc.to_string(),
            fmt_ms(r.summary(Stage::DataCapture).mean_ms()),
            fmt_ms(r.summary(Stage::PreProcessing).mean_ms()),
            fmt_ms(r.summary(Stage::Inference).mean_ms()),
            fmt_ms(r.e2e_summary().mean_ms()),
            crate::report::fmt_pct(r.ai_tax_fraction()),
        ]);
    }
    t
}

/// Ablation: how much of the Fig. 5 NNAPI slowdown comes from CPU
/// migrations (the scheduler bouncing the fallback thread) versus the
/// reference kernels themselves.
pub fn migration_ablation(opts: ExperimentOpts) -> Table {
    let mut t = Table::new(vec![
        "wander_probability",
        "nnapi_inference_ms",
        "migrations",
    ]);
    for p in [0.0f64, 0.15, 0.35, 0.6] {
        let r = E2eConfig::new(ModelId::EfficientNetLite0, DType::I8)
            .engine(Engine::nnapi())
            .iterations(opts.iterations.min(40))
            .seed(opts.seed)
            .wander_probability(p)
            .run();
        t.row(vec![
            format!("{p:.2}"),
            fmt_ms(r.summary(Stage::Inference).mean_ms()),
            r.stats.migrations.to_string(),
        ]);
    }
    t
}

/// Design study from the paper's conclusion: offload pre-processing to
/// the DSP (FastCV-style) and see what happens to the end-to-end latency
/// — including the contention trap when the model *also* runs on the DSP.
pub fn preproc_offload_study(opts: ExperimentOpts) -> Table {
    let mut t = Table::new(vec![
        "configuration",
        "preproc_ms",
        "inference_ms",
        "e2e_ms",
    ]);
    let cases: [(&str, Engine, bool); 4] = [
        ("cpu-preproc + dsp-model", Engine::nnapi(), false),
        ("dsp-preproc + dsp-model", Engine::nnapi(), true),
        ("cpu-preproc + cpu-model", Engine::tflite_cpu(4), false),
        ("dsp-preproc + cpu-model", Engine::tflite_cpu(4), true),
    ];
    for (name, engine, on_dsp) in cases {
        let r = E2eConfig::new(ModelId::MobileNetV1, DType::I8)
            .engine(engine)
            .run_mode(RunMode::AndroidApp)
            .iterations(opts.iterations)
            .seed(opts.seed)
            .preproc_on_dsp(on_dsp)
            .run();
        t.row(vec![
            name.to_string(),
            fmt_ms(r.summary(Stage::PreProcessing).mean_ms()),
            fmt_ms(r.summary(Stage::Inference).mean_ms()),
            fmt_ms(r.e2e_summary().mean_ms()),
        ]);
    }
    t
}

/// The Fig. 1 taxonomy tree, measured for a benchmark and an app.
pub fn taxonomy_trees(opts: ExperimentOpts) -> String {
    use crate::taxonomy::TaxonomyReport;
    let soc = aitax_soc::SocCatalog::get(SocId::Sd845);
    let mut out = String::new();
    for (name, mode, engine) in [
        (
            "CLI benchmark, CPU",
            RunMode::CliBenchmark,
            Engine::tflite_cpu(4),
        ),
        ("Android app, NNAPI", RunMode::AndroidApp, Engine::nnapi()),
    ] {
        let r = E2eConfig::new(ModelId::MobileNetV1, DType::I8)
            .engine(engine)
            .run_mode(mode)
            .iterations(opts.iterations)
            .seed(opts.seed)
            .run();
        let tree = TaxonomyReport::from_report(&r, soc);
        out.push_str(&format!(
            "=== {name} ({}) ===
",
            Zoo::entry(ModelId::MobileNetV1).display_name
        ));
        out.push_str(&tree.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExperimentOpts {
        ExperimentOpts {
            iterations: 15,
            seed: 1,
        }
    }

    #[test]
    fn preheated_chip_is_slower() {
        let t = thermal_methodology(quick());
        let rows = t.rows();
        let cooled: f64 = rows[0][1].parse().unwrap();
        let hot: f64 = rows[3][1].parse().unwrap();
        assert!(
            hot > cooled * 1.1,
            "throttled run should be ≥10% slower: {cooled} vs {hot}"
        );
    }

    #[test]
    fn cold_start_penalty_largest_for_dsp_paths() {
        let t = cold_start(quick());
        let penalty = |label: &str| -> f64 {
            let row = t
                .rows()
                .iter()
                .find(|r| r[0] == label)
                .unwrap_or_else(|| panic!("row {label}"));
            row[4].trim_end_matches('x').parse().unwrap()
        };
        // Offload engines pay session setup + weight upload; plain CPU
        // pays far less.
        assert!(penalty("hexagon-delegate") > penalty("cpu-4t"));
        assert!(penalty("nnapi") > penalty("cpu-4t"));
    }

    #[test]
    fn low_power_preference_trades_latency() {
        let t = preference_sweep(quick());
        let inf = |i: usize| t.rows()[i][1].parse::<f64>().unwrap();
        assert!(inf(2) > inf(0), "LOW_POWER should be slower than FAST");
    }

    #[test]
    fn migrations_contribute_to_the_fallback_slowdown() {
        let t = migration_ablation(ExperimentOpts {
            iterations: 10,
            seed: 1,
        });
        let inf = |i: usize| t.rows()[i][1].parse::<f64>().unwrap();
        let mig = |i: usize| t.rows()[i][2].parse::<u64>().unwrap();
        assert_eq!(mig(0), 0, "pinned fallback must not migrate");
        assert!(mig(3) > mig(1), "more wandering, more migrations");
        assert!(
            inf(3) > inf(0) * 1.05,
            "migrations should cost measurable time: {} vs {}",
            inf(0),
            inf(3)
        );
    }

    #[test]
    fn dsp_preprocessing_helps_cpu_models_but_contends_with_dsp_models() {
        let t = preproc_offload_study(ExperimentOpts {
            iterations: 15,
            seed: 1,
        });
        let get = |i: usize, c: usize| t.rows()[i][c].parse::<f64>().unwrap();
        // With a CPU model, moving preproc to the idle DSP cuts preproc
        // time substantially.
        let cpu_pre = get(2, 1);
        let cpu_pre_dsp = get(3, 1);
        assert!(
            cpu_pre_dsp < cpu_pre * 0.6,
            "DSP preproc should be much faster: {cpu_pre} -> {cpu_pre_dsp}"
        );
        // Within one sequential pipeline the stages never overlap, so
        // inference stays roughly unchanged — the win is end-to-end.
        let dsp_inf_base = get(0, 2);
        let dsp_inf_offloaded = get(1, 2);
        assert!((dsp_inf_offloaded - dsp_inf_base).abs() < dsp_inf_base * 0.2);
        assert!(get(1, 3) < get(0, 3), "E2E should improve with DSP preproc");
        assert!(
            get(3, 3) < get(2, 3),
            "E2E should improve for CPU models too"
        );
    }

    #[test]
    fn taxonomy_trees_render() {
        let s = taxonomy_trees(ExperimentOpts {
            iterations: 8,
            seed: 1,
        });
        assert!(s.contains("AI Tax"));
        assert!(s.contains("CLI benchmark"));
        assert!(s.contains("Android app"));
    }

    #[test]
    fn ai_tax_persists_across_chipset_generations() {
        // The core claim generalizes: faster accelerators do not shrink
        // the tax stages, so the tax *fraction* grows on newer chips.
        let t = chipset_sweep(quick());
        let tax = |i: usize| -> f64 { t.rows()[i][5].trim_end_matches('%').parse().unwrap() };
        assert!(tax(0) > 30.0, "sd835 tax {}", tax(0));
        assert!(
            tax(3) >= tax(0) - 5.0,
            "tax fraction should not collapse on newer chips: {} vs {}",
            tax(0),
            tax(3)
        );
    }
}
