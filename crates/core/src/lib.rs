//! `aitax-core` — end-to-end AI-tax analysis of ML pipelines on simulated
//! mobile SoCs.
//!
//! This is the paper's primary contribution turned into a library: run a
//! complete ML pipeline (data capture → pre-processing → model execution →
//! post-processing) on a simulated phone and decompose its latency into
//! the **AI tax** — "the time a system spends on tasks that enable the
//! execution of a machine learning model; ... the combined latency of all
//! non-inference ML pipeline stages" (§IV).
//!
//! * [`stage`] — the stage vocabulary and [`TaxReport`](stage::TaxReport)
//!   breakdowns over the Fig. 1 taxonomy (Algorithms / Frameworks /
//!   Hardware),
//! * [`stats`] — distribution summaries (the paper's Fig. 11 argues a
//!   single number misrepresents mobile AI performance) plus mergeable
//!   streaming accumulators ([`StreamDist`], [`LogHistogram`]) for
//!   population-scale aggregation,
//! * [`artifact`] — canonical JSON rendering primitives shared by every
//!   artifact writer in the workspace,
//! * [`runmode`] — CLI benchmark vs benchmark app vs real Android app,
//!   the three packagings whose divergence Fig. 3 demonstrates,
//! * [`pipeline`] — the end-to-end runner driving a
//!   [`Machine`](aitax_kernel::Machine) through N iterations,
//! * [`energy`] — per-rail energy attribution of traced runs: the AI
//!   tax mirrored onto the energy axis (joules per stage, energy per
//!   inference, EDP),
//! * [`experiment`] — one pre-configured experiment per table/figure of
//!   the paper,
//! * [`tenant`] — QoS classes and per-tenant tax attribution for the
//!   multi-tenant serving layer (`aitax-serve`),
//! * [`report`] — plain-text / TSV rendering.
//!
//! # Example
//!
//! ```
//! use aitax_core::pipeline::E2eConfig;
//! use aitax_core::runmode::RunMode;
//! use aitax_core::stage::Stage;
//! use aitax_framework::Engine;
//! use aitax_models::zoo::ModelId;
//! use aitax_tensor::DType;
//!
//! let report = E2eConfig::new(ModelId::MobileNetV1, DType::F32)
//!     .engine(Engine::tflite_cpu(4))
//!     .run_mode(RunMode::AndroidApp)
//!     .iterations(20)
//!     .seed(7)
//!     .run();
//! // In a real app, a meaningful share of time is AI tax.
//! assert!(report.ai_tax_fraction() > 0.2);
//! assert!(report.summary(Stage::Inference).mean_ms() > 1.0);
//! ```

pub mod artifact;
pub mod context;
pub mod degradation;
pub mod energy;
pub mod experiment;
pub mod extras;
pub mod pipeline;
pub mod report;
pub mod runmode;
pub mod stage;
pub mod stats;
pub mod taxonomy;
pub mod tenant;

pub use context::SimContext;
pub use degradation::DegradationReport;
pub use energy::EnergyReport;
pub use pipeline::{E2eConfig, E2eReport};
pub use runmode::RunMode;
pub use stage::{Stage, TaxonomyCategory};
pub use stats::{DistStats, LogHistogram, StreamDist, Summary, Welford, CDF_BUCKETS};
pub use tenant::{QosClass, TenantTax};
