//! The Figure 1 taxonomy: decomposing end-to-end latency into the
//! paper's three AI-tax categories.
//!
//! ```text
//!                   End-to-End (E2E) Performance
//!                      /                  \
//!                 AI Tax                 AI Model
//!          /        |        \
//!    Algorithms  Frameworks  Hardware
//!    (capture,   (drivers,   (offload, run-to-run
//!     pre/post)   scheduling)  variability, multitenancy)
//! ```
//!
//! [`TaxonomyReport`] attributes a measured [`E2eReport`] onto that tree:
//! algorithmic stages are measured directly; the framework share of
//! inference is the measured inference time minus the analytic
//! pure-compute floor of its execution plan; hardware overheads are the
//! offload round trips accounted by the machine.

use aitax_des::SimSpan;
use aitax_framework::{cost, ExecTarget};
use aitax_soc::SocSpec;

use crate::pipeline::E2eReport;
use crate::stage::Stage;

/// Attribution of mean per-iteration latency onto the Fig. 1 categories.
#[derive(Debug, Clone, PartialEq)]
pub struct TaxonomyReport {
    /// Mean time in algorithmic stages (capture, pre-/post-processing,
    /// UI) per iteration.
    pub algorithms_ms: f64,
    /// Mean framework overhead per iteration: inference latency above
    /// the pure-compute floor of the plan (dispatch, partition
    /// transitions, fallback inefficiency).
    pub frameworks_ms: f64,
    /// Mean hardware offload overhead per iteration (FastRPC round
    /// trips, cache maintenance, AXI transfers), analytically bounded.
    pub hardware_ms: f64,
    /// Mean pure model-compute floor per iteration.
    pub model_ms: f64,
    /// Mean measured end-to-end latency per iteration.
    pub e2e_ms: f64,
}

impl TaxonomyReport {
    /// Attributes an E2E report onto the taxonomy for the SoC it ran on.
    pub fn from_report(report: &E2eReport, soc: &SocSpec) -> TaxonomyReport {
        let n = report.tax.iterations().max(1) as f64;
        let algorithms_ms = [
            Stage::DataCapture,
            Stage::PreProcessing,
            Stage::PostProcessing,
            Stage::UiOverhead,
        ]
        .iter()
        .map(|&s| report.summary(s).mean_ms())
        .sum();

        // Pure-compute floor of the plan: each partition at its target's
        // delivered rate with no queueing/dispatch/offload overheads.
        let mut floor = SimSpan::ZERO;
        for p in &report.plan.partitions {
            floor += match p.target {
                ExecTarget::Dsp { efficiency } => cost::dsp_exec_span(&soc.dsp, p.macs, efficiency),
                ExecTarget::Gpu { efficiency } => cost::gpu_exec_span(&soc.gpu, p.macs, efficiency),
                ExecTarget::Npu { efficiency } => {
                    // aitax-allow(panic-path): the planner emits Npu partitions only for chipsets that declare an NPU
                    let npu = soc.npu.expect("npu partition without npu");
                    SimSpan::from_secs(2.0 * p.macs as f64 / (npu.int8_ops * efficiency))
                }
                ExecTarget::TfLiteCpu { threads } => {
                    // Optimistic conv-class efficiency so the floor is a
                    // true lower bound on delivered kernel time.
                    let work = 2.0 * p.macs as f64 / 0.55;
                    let quantized = report.dtype.is_quantized();
                    let rate: f64 = soc
                        .cores()
                        .iter()
                        .take(threads.max(1))
                        .map(|c| {
                            if quantized {
                                c.peak_int8_ops()
                            } else {
                                c.peak_fp32_flops()
                            }
                        })
                        .sum();
                    SimSpan::from_secs(work / rate.max(1.0))
                }
                ExecTarget::NnapiRefCpu => {
                    let cycles = p.macs as f64 * cost::NNAPI_REFERENCE_CYCLES_PER_MAC;
                    SimSpan::from_secs(cycles / soc.cores()[0].freq_hz)
                }
            };
        }
        let model_ms = floor.as_ms();

        // Hardware: measured RPC round trips (per iteration share).
        let rpc_per_iter = report.stats.rpc_calls as f64 / n;
        let per_call_overhead_ms = 0.45; // calibrated FastRPC round trip
        let hardware_ms = rpc_per_iter * per_call_overhead_ms;

        let inf_ms = report.summary(Stage::Inference).mean_ms();
        let frameworks_ms = (inf_ms - model_ms - hardware_ms).max(0.0);
        TaxonomyReport {
            algorithms_ms,
            frameworks_ms,
            hardware_ms,
            model_ms,
            e2e_ms: report.e2e_summary().mean_ms(),
        }
    }

    /// Total AI tax per iteration (everything except the model floor).
    pub fn tax_ms(&self) -> f64 {
        self.algorithms_ms + self.frameworks_ms + self.hardware_ms
    }

    /// The tax as a fraction of end-to-end time.
    pub fn tax_fraction(&self) -> f64 {
        if self.e2e_ms <= 0.0 {
            0.0
        } else {
            (self.tax_ms() / self.e2e_ms).min(1.0)
        }
    }

    /// Renders the Fig. 1 tree with measured values.
    pub fn render(&self) -> String {
        format!(
            "End-to-End {:.1} ms\n\
             ├── AI Model      {:.1} ms\n\
             └── AI Tax        {:.1} ms ({:.0}%)\n\
             \u{20}   ├── Algorithms {:.1} ms  (capture, pre/post-processing)\n\
             \u{20}   ├── Frameworks {:.1} ms  (dispatch, partitions, fallback)\n\
             \u{20}   └── Hardware   {:.1} ms  (offload round trips)\n",
            self.e2e_ms,
            self.model_ms,
            self.tax_ms(),
            self.tax_fraction() * 100.0,
            self.algorithms_ms,
            self.frameworks_ms,
            self.hardware_ms,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::E2eConfig;
    use crate::runmode::RunMode;
    use aitax_framework::Engine;
    use aitax_models::zoo::ModelId;
    use aitax_soc::{SocCatalog, SocId};
    use aitax_tensor::DType;

    fn report(engine: Engine, dtype: DType, mode: RunMode) -> TaxonomyReport {
        let r = E2eConfig::new(ModelId::MobileNetV1, dtype)
            .engine(engine)
            .run_mode(mode)
            .iterations(20)
            .seed(4)
            .run();
        TaxonomyReport::from_report(&r, SocCatalog::get(SocId::Sd845))
    }

    #[test]
    fn app_taxonomy_is_algorithm_heavy() {
        let t = report(Engine::nnapi(), DType::I8, RunMode::AndroidApp);
        assert!(t.algorithms_ms > t.model_ms, "{t:?}");
        assert!(t.tax_fraction() > 0.4, "{t:?}");
        // Components are non-negative and bounded by E2E.
        assert!(t.frameworks_ms >= 0.0 && t.hardware_ms >= 0.0);
        assert!(t.tax_ms() <= t.e2e_ms * 1.05);
    }

    #[test]
    fn benchmark_taxonomy_is_model_heavy() {
        let t = report(Engine::tflite_cpu(4), DType::F32, RunMode::CliBenchmark);
        assert!(
            t.model_ms > t.algorithms_ms,
            "benchmarks are dominated by the model: {t:?}"
        );
        assert!(t.tax_fraction() < 0.5, "{t:?}");
        // The analytic floor can never exceed the measured end-to-end.
        assert!(t.model_ms <= t.e2e_ms, "{t:?}");
    }

    #[test]
    fn offload_engines_show_hardware_tax() {
        let dsp = report(
            Engine::TfLiteHexagon { threads: 4 },
            DType::I8,
            RunMode::CliBenchmark,
        );
        let cpu = report(Engine::tflite_cpu(4), DType::I8, RunMode::CliBenchmark);
        assert!(dsp.hardware_ms > 0.1, "{dsp:?}");
        assert!(cpu.hardware_ms < 0.01, "{cpu:?}");
    }

    #[test]
    fn render_shows_the_tree() {
        let t = report(Engine::nnapi(), DType::I8, RunMode::AndroidApp);
        let s = t.render();
        assert!(s.contains("AI Tax"));
        assert!(s.contains("Algorithms"));
        assert!(s.contains("Hardware"));
    }
}
