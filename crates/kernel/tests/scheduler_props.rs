//! Property tests for the machine: scheduler conservation, FastRPC
//! structure and timing monotonicity. Randomized cases are driven by the
//! deterministic simulator RNG.

use aitax_des::{SimRng, SimSpan};
use aitax_kernel::{CoreMask, Machine, RpcDevice, RpcInvoke, TaskSpec, Work};
use aitax_soc::{SocCatalog, SocId};
use std::cell::Cell;
use std::rc::Rc;

fn machine(seed: u64) -> Machine {
    Machine::new(SocCatalog::get(SocId::Sd845), seed)
}

/// No task is lost or duplicated, no core is left running, and the
/// clock advances whenever work was submitted.
#[test]
fn no_lost_work() {
    let mut rng = SimRng::seed_from(0x5C4E_0001);
    for case in 0..32 {
        let seed = rng.next_u64();
        let njobs = rng.uniform_u64(1, 40) as usize;
        let jobs: Vec<(u64, u8)> = (0..njobs)
            .map(|_| (rng.uniform_u64(1, 100), rng.uniform_u64(0, 4) as u8))
            .collect();
        let mut m = machine(seed);
        let done = Rc::new(Cell::new(0usize));
        for (units, class) in &jobs {
            let work = match class % 2 {
                0 => Work::Fp32Flops(*units as f64 * 1e6),
                _ => Work::Cycles(*units as f64 * 1e5),
            };
            let spec = match class {
                0 => TaskSpec::foreground("t", work),
                1 => TaskSpec::background("t", work),
                2 => TaskSpec::kernel("t", work),
                _ => TaskSpec::nnapi_fallback("t", work),
            };
            let d = done.clone();
            m.submit_cpu(spec, move |_| d.set(d.get() + 1));
        }
        m.run_until_idle();
        assert_eq!(done.get(), jobs.len(), "case {case}");
        assert_eq!(m.cpu_load(), 0, "case {case}");
        assert!(m.now().as_ns() > 0, "case {case}");
    }
}

/// Fork-join gangs complete exactly once, regardless of shape.
#[test]
fn parallel_join_fires_once() {
    let mut rng = SimRng::seed_from(0x5C4E_0002);
    for case in 0..32 {
        let seed = rng.next_u64();
        let width = rng.uniform_u64(1, 12) as usize;
        let units = rng.uniform_u64(1, 50);
        let mut m = machine(seed);
        let joined = Rc::new(Cell::new(0usize));
        let j = joined.clone();
        let specs = (0..width)
            .map(|i| TaskSpec::foreground(format!("g{i}"), Work::Fp32Flops(units as f64 * 1e6)))
            .collect();
        m.submit_cpu_parallel(specs, move |_| j.set(j.get() + 1));
        m.run_until_idle();
        assert_eq!(joined.get(), 1, "case {case}");
    }
}

/// More work on a pinned core never finishes sooner (monotonicity).
#[test]
fn pinned_work_is_monotone() {
    let time_for = |mflops: u64| {
        let mut m = machine(7);
        m.submit_cpu(
            TaskSpec::foreground("t", Work::Fp32Flops(mflops as f64 * 1e6))
                .with_affinity(CoreMask::of(&[0])),
            |_| {},
        );
        m.run_until_idle();
        m.now()
    };
    let mut rng = SimRng::seed_from(0x5C4E_0003);
    for case in 0..16 {
        let base = rng.uniform_u64(1, 60);
        assert!(time_for(base * 2) > time_for(base), "case {case}");
    }
}

/// FastRPC latency grows with payload size and DSP work, and the
/// session is mapped exactly once.
#[test]
fn rpc_monotone_in_inputs() {
    let run = |bytes: u64, work_us: f64| {
        let mut m = machine(3);
        // Warm the session first.
        m.fastrpc_invoke(
            RpcInvoke {
                label: "warm".into(),
                in_bytes: 16,
                out_bytes: 16,
                dsp_work: SimSpan::from_us(1.0),
                device: RpcDevice::Dsp,
                ..Default::default()
            },
            |_| {},
        );
        m.run_until_idle();
        let t0 = m.now();
        let done = Rc::new(Cell::new(SimSpan::ZERO));
        let d = done.clone();
        m.fastrpc_invoke(
            RpcInvoke {
                label: "x".into(),
                in_bytes: bytes,
                out_bytes: 64,
                dsp_work: SimSpan::from_us(work_us),
                device: RpcDevice::Dsp,
                ..Default::default()
            },
            move |mm| d.set(mm.now() - t0),
        );
        m.run_until_idle();
        assert!(m.dsp_session_mapped(), "session must stay mapped");
        done.get()
    };
    let mut rng = SimRng::seed_from(0x5C4E_0004);
    for case in 0..8 {
        let bytes = rng.uniform_u64(1, 4_000_000);
        let work_us = rng.uniform(1.0, 20_000.0);
        let small = run(bytes, work_us);
        let bigger_payload = run(bytes * 2, work_us);
        let more_work = run(bytes, work_us * 2.0);
        assert!(bigger_payload >= small, "case {case}");
        assert!(more_work > small, "case {case}");
        // Total latency always exceeds the pure DSP work.
        assert!(small > SimSpan::from_us(work_us), "case {case}");
    }
}

/// Timers fire at exactly the requested instants, in order.
#[test]
fn timers_are_exact() {
    let mut rng = SimRng::seed_from(0x5C4E_0005);
    for case in 0..32 {
        let n = rng.uniform_u64(1, 30) as usize;
        let delays: Vec<u64> = (0..n).map(|_| rng.uniform_u64(1, 10_000_000)).collect();
        let mut m = machine(1);
        let fired: Rc<std::cell::RefCell<Vec<u64>>> = Rc::default();
        for &d in &delays {
            let f = fired.clone();
            m.after(SimSpan::from_ns(d), move |mm| {
                f.borrow_mut().push(mm.now().as_ns());
            });
        }
        m.run_until_idle();
        let mut expect = delays.clone();
        expect.sort_unstable();
        assert_eq!(&*fired.borrow(), &expect, "case {case}");
    }
}
