//! Property tests for the machine: scheduler conservation, FastRPC
//! structure and timing monotonicity.

use aitax_des::SimSpan;
use aitax_kernel::{CoreMask, Machine, RpcDevice, RpcInvoke, TaskSpec, Work};
use aitax_soc::{SocCatalog, SocId};
use proptest::prelude::*;
use std::cell::Cell;
use std::rc::Rc;

fn machine(seed: u64) -> Machine {
    Machine::new(SocCatalog::get(SocId::Sd845), seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// No task is lost or duplicated, no core is left running, and the
    /// clock advances whenever work was submitted.
    #[test]
    fn no_lost_work(
        seed in any::<u64>(),
        jobs in prop::collection::vec((1u64..100, 0u8..4), 1..40),
    ) {
        let mut m = machine(seed);
        let done = Rc::new(Cell::new(0usize));
        for (units, class) in &jobs {
            let work = match class % 2 {
                0 => Work::Fp32Flops(*units as f64 * 1e6),
                _ => Work::Cycles(*units as f64 * 1e5),
            };
            let spec = match class {
                0 => TaskSpec::foreground("t", work),
                1 => TaskSpec::background("t", work),
                2 => TaskSpec::kernel("t", work),
                _ => TaskSpec::nnapi_fallback("t", work),
            };
            let d = done.clone();
            m.submit_cpu(spec, move |_| d.set(d.get() + 1));
        }
        m.run_until_idle();
        prop_assert_eq!(done.get(), jobs.len());
        prop_assert_eq!(m.cpu_load(), 0);
        prop_assert!(m.now().as_ns() > 0);
    }

    /// Fork-join gangs complete exactly once, regardless of shape.
    #[test]
    fn parallel_join_fires_once(seed in any::<u64>(), width in 1usize..12, units in 1u64..50) {
        let mut m = machine(seed);
        let joined = Rc::new(Cell::new(0usize));
        let j = joined.clone();
        let specs = (0..width)
            .map(|i| TaskSpec::foreground(format!("g{i}"), Work::Fp32Flops(units as f64 * 1e6)))
            .collect();
        m.submit_cpu_parallel(specs, move |_| j.set(j.get() + 1));
        m.run_until_idle();
        prop_assert_eq!(joined.get(), 1);
    }

    /// More work on a pinned core never finishes sooner (monotonicity).
    #[test]
    fn pinned_work_is_monotone(base in 1u64..60) {
        let time_for = |mflops: u64| {
            let mut m = machine(7);
            m.submit_cpu(
                TaskSpec::foreground("t", Work::Fp32Flops(mflops as f64 * 1e6))
                    .with_affinity(CoreMask::of(&[0])),
                |_| {},
            );
            m.run_until_idle();
            m.now()
        };
        prop_assert!(time_for(base * 2) > time_for(base));
    }

    /// FastRPC latency grows with payload size and DSP work, and the
    /// session is mapped exactly once.
    #[test]
    fn rpc_monotone_in_inputs(bytes in 1u64..4_000_000, work_us in 1.0f64..20_000.0) {
        let run = |bytes: u64, work_us: f64| {
            let mut m = machine(3);
            // Warm the session first.
            m.fastrpc_invoke(
                RpcInvoke {
                    label: "warm".into(),
                    in_bytes: 16,
                    out_bytes: 16,
                    dsp_work: SimSpan::from_us(1.0),
                    device: RpcDevice::Dsp,
                },
                |_| {},
            );
            m.run_until_idle();
            let t0 = m.now();
            let done = Rc::new(Cell::new(SimSpan::ZERO));
            let d = done.clone();
            m.fastrpc_invoke(
                RpcInvoke {
                    label: "x".into(),
                    in_bytes: bytes,
                    out_bytes: 64,
                    dsp_work: SimSpan::from_us(work_us),
                    device: RpcDevice::Dsp,
                },
                move |mm| d.set(mm.now() - t0),
            );
            m.run_until_idle();
            prop_assert!(mm_session(&m));
            Ok(done.get())
        };
        fn mm_session(m: &Machine) -> bool {
            m.dsp_session_mapped()
        }
        let small = run(bytes, work_us)?;
        let bigger_payload = run(bytes * 2, work_us)?;
        let more_work = run(bytes, work_us * 2.0)?;
        prop_assert!(bigger_payload >= small);
        prop_assert!(more_work > small);
        // Total latency always exceeds the pure DSP work.
        prop_assert!(small > SimSpan::from_us(work_us));
    }

    /// Timers fire at exactly the requested instants, in order.
    #[test]
    fn timers_are_exact(delays in prop::collection::vec(1u64..10_000_000u64, 1..30)) {
        let mut m = machine(1);
        let fired: Rc<std::cell::RefCell<Vec<u64>>> = Rc::default();
        for &d in &delays {
            let f = fired.clone();
            m.after(SimSpan::from_ns(d), move |mm| {
                f.borrow_mut().push(mm.now().as_ns());
            });
        }
        m.run_until_idle();
        let mut expect = delays.clone();
        expect.sort_unstable();
        prop_assert_eq!(&*fired.borrow(), &expect);
    }
}
