//! Pins the steady-state event loop at **zero heap allocations per
//! event** with a counting global allocator — the probe-effect guarantee
//! `BENCH_sim.json` tracks (`steady_allocs`) and the `hot-path-alloc`
//! lint protects at review time.
//!
//! The scenario mirrors the benchmark's `machine-hot`: long foreground
//! tasks time-slicing over the big cores with tracing enabled. After
//! warmup every structure has reached steady capacity — the calendar's
//! slot slab and heap, the per-slot event table, the pre-reserved trace
//! buffer — so `Machine::step` must never touch the allocator again.
//!
//! This file intentionally holds a single `#[test]`: the allocation
//! counters are process-global, and a sibling test running on another
//! thread would bleed its allocations into the measured window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use aitax_kernel::{Machine, TaskSpec, Work};
use aitax_soc::{SocCatalog, SocId};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_step_loop_never_allocates() {
    const WARMUP: u64 = 20_000;
    const MEASURED: u64 = 100_000;

    let mut m = Machine::new(SocCatalog::get(SocId::Sd845), 42);
    m.set_tracing(true);
    // ~3 trace events per step; size once so recording never reallocates.
    m.trace.reserve_events(4 * (WARMUP + MEASURED) as usize);
    for i in 0..8 {
        // Work far larger than the run: no task completes mid-measurement,
        // so the loop is pure SliceEnd dispatch — the hot path.
        m.submit_cpu(
            TaskSpec::foreground(format!("fg{i}"), Work::Fp32Flops(1e18)),
            |_| {},
        );
    }
    for _ in 0..WARMUP {
        assert!(m.step(), "workload drained during warmup");
    }

    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..MEASURED {
        assert!(m.step(), "workload drained during measurement");
    }
    let steady = ALLOCS.load(Ordering::Relaxed) - before;

    assert_eq!(
        steady, 0,
        "steady-state Machine::step allocated {steady} time(s) over \
         {MEASURED} events; the hot path must be allocation-free"
    );
    assert!(
        m.stats().context_switches > 0,
        "scenario must actually exercise the dispatcher"
    );
}
