//! The CPU scheduler: placement, time slices, preemption, migration.
//!
//! A deliberately CFS-flavoured model: per-core run queues with weighted
//! round-robin slices, context-switch costs, idle stealing with a
//! cache-warmup migration penalty, and the "wandering" behaviour of NNAPI
//! CPU-fallback threads that Figure 6 of the paper captures (annotation 4:
//! "frequent CPU migrations ... and the core utilization pattern").

use std::cell::RefCell;
use std::rc::Rc;

use aitax_des::trace::{TraceKind, TraceResource};
use aitax_des::SimSpan;

use crate::machine::{Ev, Machine, Running, Task};
use crate::task::{CoreMask, TaskClass, TaskId, TaskSpec};

/// Base scheduling quantum; actual slices scale with task weight.
pub const BASE_QUANTUM: SimSpan = SimSpan::from_ns(4_000_000);

/// Direct cost of a context switch (register save/restore, runqueue work).
pub const CONTEXT_SWITCH_COST: SimSpan = SimSpan::from_ns(8_000);

/// Default probability that a wandering-class task is rebalanced to
/// another core at a slice boundary.
pub const DEFAULT_WANDER_PROBABILITY: f64 = 0.35;

/// Remaining-work threshold below which a task is complete.
const WORK_EPSILON: f64 = 1e-6;

/// Smallest schedulable slice. Guarantees forward progress: without it, a
/// residue of work smaller than half a nanosecond at the current rate
/// would round to a zero-length slice and loop forever at one timestamp.
const MIN_SLICE: SimSpan = SimSpan::from_ns(1);

impl Machine {
    /// Submits one CPU task; `on_done` fires when it completes.
    ///
    /// Foreground tasks default to big-core affinity; other classes may run
    /// anywhere. Returns the task id (also used in traces).
    pub fn submit_cpu(
        &mut self,
        spec: TaskSpec,
        on_done: impl FnOnce(&mut Machine) + 'static,
    ) -> TaskId {
        let affinity = spec
            .affinity
            .unwrap_or_else(|| self.default_affinity(spec.class));
        let id = TaskId(self.fresh_obj_id());
        let idx = self.task_slot(id);
        let label = self.trace.intern(&spec.name);
        self.tasks[idx] = Some(Task {
            label,
            work_kind: spec.work,
            remaining: spec.work.amount().max(0.0),
            class: spec.class,
            affinity,
            priority: spec.priority,
            on_done: Some(Box::new(on_done)),
            pending_penalty: SimSpan::ZERO,
            last_core: None,
            cpu_time: SimSpan::ZERO,
        });
        let core = self.place(affinity);
        self.enqueue(core, id);
        id
    }

    /// Submits a gang of CPU tasks; `on_all_done` fires when the last one
    /// completes (fork-join, as a multi-threaded TFLite op does).
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty.
    pub fn submit_cpu_parallel(
        &mut self,
        specs: Vec<TaskSpec>,
        on_all_done: impl FnOnce(&mut Machine) + 'static,
    ) -> Vec<TaskId> {
        assert!(
            !specs.is_empty(),
            "parallel submission needs at least one task"
        );
        type JoinSlot = Rc<RefCell<(usize, Option<Box<dyn FnOnce(&mut Machine)>>)>>;
        let join: JoinSlot = Rc::new(RefCell::new((specs.len(), Some(Box::new(on_all_done)))));
        specs
            .into_iter()
            .map(|spec| {
                let join = join.clone();
                self.submit_cpu(spec, move |m| {
                    let cb = {
                        let mut j = join.borrow_mut();
                        j.0 -= 1;
                        if j.0 == 0 {
                            j.1.take()
                        } else {
                            None
                        }
                    };
                    if let Some(cb) = cb {
                        cb(m);
                    }
                })
            })
            .collect()
    }

    /// Total runnable + running CPU tasks.
    pub fn cpu_load(&self) -> usize {
        self.cores.iter().map(|c| c.load()).sum()
    }

    fn default_affinity(&self, class: TaskClass) -> CoreMask {
        match class {
            TaskClass::Foreground => CoreMask::of(&self.spec.big_core_ids()),
            _ => CoreMask::of(&(0..self.cores.len()).collect::<Vec<_>>()),
        }
    }

    fn task_slot(&mut self, id: TaskId) -> usize {
        let idx = id.0 as usize;
        if self.tasks.len() <= idx {
            self.tasks.resize_with(idx + 1, || None);
        }
        idx
    }

    /// Least-loaded eligible core, lowest index on ties.
    fn place(&self, affinity: CoreMask) -> usize {
        let mut best = None;
        let mut best_load = usize::MAX;
        for (i, core) in self.cores.iter().enumerate() {
            if !affinity.allows(i) {
                continue;
            }
            let load = core.load();
            if load < best_load {
                best_load = load;
                best = Some(i);
            }
        }
        // aitax-allow(panic-path): spawn validates affinity masks against the core count
        best.expect("affinity mask excludes every core on this SoC")
    }

    /// Priority of a task, zero once its record is gone.
    fn task_priority(&self, id: TaskId) -> i8 {
        self.tasks[id.0 as usize]
            .as_ref()
            .map(|t| t.priority)
            .unwrap_or(0)
    }

    /// Inserts `id` into a core's run queue honoring QoS priority: ahead
    /// of the first strictly-lower-priority waiter, FIFO within a band.
    /// A zero-priority task on an all-zero queue lands at the back — the
    /// legacy order byte-for-byte.
    fn runq_insert(&mut self, core: usize, id: TaskId) {
        let prio = self.task_priority(id);
        if prio != 0 {
            let pos = self.cores[core]
                .runq
                .iter()
                .position(|&q| self.task_priority(q) < prio);
            if let Some(pos) = pos {
                self.cores[core].runq.insert(pos, id);
                return;
            }
        }
        self.cores[core].runq.push_back(id);
    }

    fn enqueue(&mut self, core: usize, id: TaskId) {
        // Kernel/driver work (ioctl handling, cache maintenance) jumps the
        // queue, as softirq-style work does on a real kernel — this keeps
        // offload round trips responsive even under CPU contention.
        // Within the driver path a QoS priority orders the queue-jumpers
        // among themselves.
        let (is_kernel_work, prio) = self.tasks[id.0 as usize]
            .as_ref()
            .map(|t| (t.class == TaskClass::KernelWork, t.priority))
            .unwrap_or((false, 0));
        if is_kernel_work {
            self.cores[core].runq.push_front(id);
        } else {
            self.runq_insert(core, id);
        }
        if self.cores[core].running.is_none() {
            self.dispatch_next(core);
        } else if prio > 0 {
            // A strictly-higher-priority arrival displaces the running
            // task mid-slice; equal priority waits out the slice.
            let victim_prio = self.cores[core]
                .running
                .as_ref()
                .map(|r| self.task_priority(r.task))
                .unwrap_or(i8::MAX);
            if prio > victim_prio {
                self.preempt_running(core);
                self.dispatch_next(core);
            }
        }
    }

    /// Displaces the running task: cancels its pending slice end, banks
    /// the work it retired so far, and requeues it by its own priority.
    /// The caller dispatches next.
    fn preempt_running(&mut self, core: usize) {
        // Price the truncated busy slice exactly as a natural slice end
        // would, so thermal/DVFS accounting cannot tell the difference.
        self.touch_thermal();
        self.gov_observe(core, false);
        let running = self.cores[core]
            .running
            .take()
            // aitax-allow(panic-path): preemption is only triggered while a task is running
            .expect("preempting an idle core");
        let cancelled = self.cal.cancel(running.slice_token);
        debug_assert!(cancelled, "running task must have a live slice end");
        self.take_event(running.slice_token);
        let now = self.cal.now();
        let id = running.task;
        self.trace.record(
            now,
            TraceResource::CpuCore(core as u8),
            TraceKind::ExecEnd { task: id.0 },
        );
        if let Some(task) = self.tasks[id.0 as usize].as_mut() {
            // The preemption may land inside the switch-cost/penalty
            // window, before useful work resumed.
            if now > running.work_start {
                let ran = now.since(running.work_start);
                task.cpu_time += ran;
                task.remaining -= ran.as_secs() * running.rate;
            }
        }
        self.stats_mut().preemptions += 1;
        self.runq_insert(core, id);
    }

    pub(crate) fn dispatch_next(&mut self, core: usize) {
        debug_assert!(self.cores[core].running.is_none());
        let Some(id) = self.cores[core].runq.pop_front() else {
            return;
        };
        let now = self.cal.now();
        self.touch_thermal();
        let class = self.tasks[id.0 as usize]
            .as_ref()
            // aitax-allow(panic-path): task records outlive their scheduled events by construction
            .expect("dispatching a completed task")
            .class;
        // The core flips busy: fold the elapsed idle stretch into its
        // utilization estimate, then let the governor pick the clock this
        // slice will run (and be energy-priced) at.
        self.gov_observe(core, true);
        self.gov_retarget(core, class);
        let speed = self.cpu_speed(core);

        // Costs before useful work resumes.
        let mut overhead = SimSpan::ZERO;
        let switching = self.cores[core].last_task != Some(id);
        if switching {
            overhead += CONTEXT_SWITCH_COST;
            self.stats_mut().context_switches += 1;
            self.trace.record(
                now,
                TraceResource::CpuCore(core as u8),
                TraceKind::ContextSwitch,
            );
        }

        let (rate, slice, label, penalty) = {
            let task = self.tasks[id.0 as usize]
                .as_mut()
                // aitax-allow(panic-path): task records outlive their scheduled events by construction
                .expect("dispatching a completed task");
            let penalty = std::mem::replace(&mut task.pending_penalty, SimSpan::ZERO);
            let spec = &self.core_specs[core];
            // Small per-slice rate jitter: DVFS settling, cache state,
            // memory interference — the residual variability even quiet
            // benchmarks exhibit (Fig. 11's tight-but-nonzero spread).
            let rate = task.work_kind.rate_on(spec) * speed * self.rng.jitter(0.01);
            let quantum = BASE_QUANTUM * task.class.weight();
            let run_secs = (task.remaining / rate).max(0.0);
            let slice = SimSpan::from_secs(run_secs).min(quantum).max(MIN_SLICE);
            task.last_core = Some(core);
            (rate, slice, task.label, penalty)
        };
        overhead += penalty;

        let work_start = now + overhead;
        let token = self.cal.schedule_at(work_start + slice);
        self.set_event(token, Ev::SliceEnd { core });
        self.cores[core].running = Some(Running {
            task: id,
            work_start,
            rate,
            slice_token: token,
        });
        self.cores[core].last_task = Some(id);
        self.trace.record(
            now,
            TraceResource::CpuCore(core as u8),
            TraceKind::ExecStart { task: id.0, label },
        );
    }

    pub(crate) fn on_slice_end(&mut self, core: usize) {
        // Price the elapsed busy slice (heat + utilization) before the
        // core's state flips to idle.
        self.touch_thermal();
        self.gov_observe(core, false);
        let running = self.cores[core]
            .running
            .take()
            // aitax-allow(panic-path): slice-end events are cancelled when their core goes idle
            .expect("slice end on an idle core");
        let now = self.cal.now();
        let id = running.task;
        self.trace.record(
            now,
            TraceResource::CpuCore(core as u8),
            TraceKind::ExecEnd { task: id.0 },
        );

        let finished = {
            let task = self.tasks[id.0 as usize]
                .as_mut()
                // aitax-allow(panic-path): task records outlive their scheduled events by construction
                .expect("running task has no record");
            let ran = now.since(running.work_start);
            task.cpu_time += ran;
            task.remaining -= ran.as_secs() * running.rate;
            task.remaining <= WORK_EPSILON
        };

        if finished {
            let cb = {
                // aitax-allow(panic-path): task records outlive their scheduled events by construction
                let task = self.tasks[id.0 as usize].as_mut().unwrap();
                task.on_done.take()
            };
            self.tasks[id.0 as usize] = None;
            self.stats_mut().tasks_completed += 1;
            if let Some(cb) = cb {
                cb(self);
            }
            if self.cores[core].running.is_none() {
                self.dispatch_next(core);
            }
            self.steal_if_idle(core);
            return;
        }

        // Not finished: wander, yield to waiting work, or keep running.
        let wanders = self.tasks[id.0 as usize]
            .as_ref()
            .map(|t| t.class.wanders())
            .unwrap_or(false);
        if wanders && self.try_wander(core, id) {
            if self.cores[core].running.is_none() {
                self.dispatch_next(core);
            }
            return;
        }
        self.runq_insert(core, id);
        self.dispatch_next(core);
    }

    /// Rebalances a wandering task to a random other eligible core.
    fn try_wander(&mut self, from: usize, id: TaskId) -> bool {
        let p = self.wander_probability;
        if p <= 0.0 || !self.rng.chance(p) {
            return false;
        }
        let affinity = match &self.tasks[id.0 as usize] {
            Some(t) => t.affinity,
            None => return false,
        };
        let n = self.cores.len();
        let eligible = |c: usize| c != from && affinity.allows(c);
        let count = (0..n).filter(|&c| eligible(c)).count();
        if count == 0 {
            return false;
        }
        // Same draw `SimRng::pick` would make on the materialized candidate
        // list (uniform index, then select), without building the list —
        // the RNG stream, and therefore the event sequence, is unchanged.
        let k = self.rng.uniform_u64(0, count as u64) as usize;
        let to = (0..n)
            .filter(|&c| eligible(c))
            .nth(k)
            // aitax-allow(panic-path): k < count over the same predicate by construction
            .expect("k-th eligible core exists");
        self.migrate(id, from, to);
        true
    }

    fn migrate(&mut self, id: TaskId, from: usize, to: usize) {
        let penalty = self.core_specs[to].migration_penalty;
        if let Some(task) = self.tasks[id.0 as usize].as_mut() {
            task.pending_penalty += penalty;
        }
        self.stats_mut().migrations += 1;
        let now = self.cal.now();
        self.trace.record(
            now,
            TraceResource::CpuCore(to as u8),
            TraceKind::Migration {
                task: id.0,
                from: from as u8,
                to: to as u8,
            },
        );
        self.runq_insert(to, id);
        if self.cores[to].running.is_none() {
            self.dispatch_next(to);
        }
    }

    /// When `core` idles, pull a waiting task from the most loaded core.
    fn steal_if_idle(&mut self, core: usize) {
        if self.cores[core].running.is_some() || !self.cores[core].runq.is_empty() {
            return;
        }
        let mut victim: Option<(usize, usize)> = None; // (core, queue pos)
        let mut victim_qlen = 0usize;
        for (vc, state) in self.cores.iter().enumerate() {
            if vc == core || state.runq.len() <= victim_qlen {
                continue;
            }
            // Steal the first queued task whose affinity allows this core.
            if let Some(pos) = state.runq.iter().position(|tid| {
                self.tasks[tid.0 as usize]
                    .as_ref()
                    .map(|t| t.affinity.allows(core))
                    .unwrap_or(false)
            }) {
                victim = Some((vc, pos));
                victim_qlen = state.runq.len();
            }
        }
        if let Some((vc, pos)) = victim {
            let id = self.cores[vc]
                .runq
                .remove(pos)
                // aitax-allow(panic-path): the victim position was computed from the same runq this event
                .expect("victim position valid");
            self.migrate(id, vc, core);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Work;
    use aitax_soc::{SocCatalog, SocId};
    use std::cell::Cell;
    use std::rc::Rc;

    fn machine() -> Machine {
        Machine::new(SocCatalog::get(SocId::Sd845), 11)
    }

    /// SD845 big core peak fp32 rate.
    const BIG_FLOPS: f64 = 2.8e9 * 8.0;

    #[test]
    fn single_task_latency_matches_rate() {
        let mut m = machine();
        let done = Rc::new(Cell::new(0.0));
        let d = done.clone();
        // 22.4 GFLOP/s → 224 MFLOP in 10 ms.
        m.submit_cpu(
            TaskSpec::foreground("t", Work::Fp32Flops(BIG_FLOPS * 0.01)),
            move |mm| d.set(mm.now().as_ms()),
        );
        m.run_until_idle();
        // One context switch plus slice rounding.
        assert!((done.get() - 10.0).abs() < 0.1, "latency {}", done.get());
    }

    #[test]
    fn four_tasks_fill_four_big_cores() {
        let mut m = machine();
        let done = Rc::new(Cell::new(0usize));
        for i in 0..4 {
            let d = done.clone();
            m.submit_cpu(
                TaskSpec::foreground(format!("t{i}"), Work::Fp32Flops(BIG_FLOPS * 0.01)),
                move |_| d.set(d.get() + 1),
            );
        }
        m.run_until_idle();
        assert_eq!(done.get(), 4);
        // Perfectly parallel: total ≈ 10 ms, not 40 ms.
        assert!(m.now().as_ms() < 11.0, "end {}", m.now());
    }

    #[test]
    fn oversubscription_time_slices_fairly() {
        let mut m = machine();
        // 8 foreground tasks on 4 big cores → ~2× the solo time each.
        let times: Rc<std::cell::RefCell<Vec<f64>>> = Rc::default();
        for i in 0..8 {
            let t = times.clone();
            m.submit_cpu(
                TaskSpec::foreground(format!("t{i}"), Work::Fp32Flops(BIG_FLOPS * 0.02)),
                move |mm| t.borrow_mut().push(mm.now().as_ms()),
            );
        }
        m.run_until_idle();
        let times = times.borrow();
        let last = times.iter().cloned().fold(0.0, f64::max);
        assert!(
            (38.0..46.0).contains(&last),
            "8×20ms of work on 4 cores should finish near 40ms, got {last}"
        );
        // Fairness: all completions within ~1 quantum of each other.
        let first = times.iter().cloned().fold(f64::MAX, f64::min);
        assert!(last - first < 12.0, "spread {}", last - first);
        assert!(m.stats().context_switches > 8);
    }

    #[test]
    fn parallel_gang_joins_once() {
        let mut m = machine();
        let joined = Rc::new(Cell::new(0));
        let j = joined.clone();
        let specs = (0..4)
            .map(|i| TaskSpec::foreground(format!("g{i}"), Work::Fp32Flops(1e6)))
            .collect();
        m.submit_cpu_parallel(specs, move |_| j.set(j.get() + 1));
        m.run_until_idle();
        assert_eq!(joined.get(), 1);
    }

    #[test]
    fn background_tasks_may_use_little_cores() {
        let mut m = machine();
        m.set_tracing(true);
        for i in 0..8 {
            m.submit_cpu(
                TaskSpec::background(format!("bg{i}"), Work::Cycles(1e6)),
                |_| {},
            );
        }
        m.run_until_idle();
        let used: std::collections::HashSet<_> = m
            .trace
            .exec_intervals()
            .iter()
            .map(|iv| iv.resource)
            .collect();
        assert!(used.len() >= 8, "8 tasks spread over all 8 cores: {used:?}");
    }

    #[test]
    fn foreground_sticks_to_big_cores() {
        let mut m = machine();
        m.set_tracing(true);
        for i in 0..4 {
            m.submit_cpu(
                TaskSpec::foreground(format!("fg{i}"), Work::Fp32Flops(1e8)),
                |_| {},
            );
        }
        m.run_until_idle();
        for iv in m.trace.exec_intervals() {
            if let aitax_des::trace::TraceResource::CpuCore(c) = iv.resource {
                assert!(c < 4, "foreground task ran on little core {c}");
            }
        }
    }

    #[test]
    fn wandering_tasks_migrate() {
        let mut m = machine();
        // A long NNAPI-fallback task with plenty of slice boundaries.
        m.submit_cpu(
            TaskSpec::nnapi_fallback("fallback", Work::Fp32Flops(BIG_FLOPS * 0.5)),
            |_| {},
        );
        m.run_until_idle();
        assert!(
            m.stats().migrations > 3,
            "wandering task should migrate, saw {}",
            m.stats().migrations
        );
    }

    #[test]
    fn migrations_slow_the_wanderer_down() {
        // Same work as foreground vs NNAPI-fallback class.
        let work = Work::Fp32Flops(BIG_FLOPS * 0.1);
        let mut fg = machine();
        fg.submit_cpu(TaskSpec::foreground("fg", work), |_| {});
        fg.run_until_idle();
        let fg_time = fg.now();

        let mut nn = machine();
        nn.submit_cpu(TaskSpec::nnapi_fallback("nn", work), |_| {});
        nn.run_until_idle();
        let nn_time = nn.now();
        assert!(
            nn_time > fg_time,
            "fallback ({nn_time}) should be slower than pinned foreground ({fg_time})"
        );
    }

    #[test]
    fn idle_steal_balances_queues() {
        let mut m = machine();
        // Pin 3 tasks to core 0; other cores should steal.
        for i in 0..3 {
            m.submit_cpu(
                TaskSpec::foreground(format!("p{i}"), Work::Fp32Flops(BIG_FLOPS * 0.01))
                    .with_affinity(CoreMask::of(&[0, 1])),
                |_| {},
            );
        }
        m.run_until_idle();
        // With stealing, 3×10ms over 2 cores ≲ 21ms; without, 30ms.
        assert!(m.now().as_ms() < 25.0, "end {}", m.now());
        assert!(m.stats().migrations >= 1);
    }

    #[test]
    fn high_priority_arrival_preempts_running_task() {
        let mut m = machine();
        let order: Rc<std::cell::RefCell<Vec<&'static str>>> = Rc::default();
        let mask = CoreMask::of(&[0]);
        let o = order.clone();
        m.submit_cpu(
            TaskSpec::foreground("lo", Work::Fp32Flops(BIG_FLOPS * 0.02)).with_affinity(mask),
            move |_| o.borrow_mut().push("lo"),
        );
        let o = order.clone();
        // Arrives while "lo" occupies the only eligible core.
        m.submit_cpu(
            TaskSpec::foreground("hi", Work::Fp32Flops(BIG_FLOPS * 0.005))
                .with_affinity(mask)
                .with_priority(2),
            move |_| o.borrow_mut().push("hi"),
        );
        m.run_until_idle();
        assert_eq!(*order.borrow(), vec!["hi", "lo"]);
        assert!(m.stats().preemptions >= 1, "{:?}", m.stats());
    }

    #[test]
    fn equal_priority_waits_out_the_slice() {
        let mut m = machine();
        let mask = CoreMask::of(&[0]);
        m.submit_cpu(
            TaskSpec::foreground("a", Work::Fp32Flops(BIG_FLOPS * 0.02)).with_affinity(mask),
            |_| {},
        );
        m.submit_cpu(
            TaskSpec::foreground("b", Work::Fp32Flops(BIG_FLOPS * 0.02)).with_affinity(mask),
            |_| {},
        );
        m.run_until_idle();
        assert_eq!(m.stats().preemptions, 0);
    }

    #[test]
    fn priority_orders_waiters_within_one_runq() {
        let mut m = machine();
        let order: Rc<std::cell::RefCell<Vec<u32>>> = Rc::default();
        let mask = CoreMask::of(&[0]);
        // Occupy the core, then queue prio 0, 1, 2 behind it: the queue
        // must drain 2, 1, 0 regardless of arrival order.
        m.submit_cpu(
            TaskSpec::foreground("busy", Work::Fp32Flops(BIG_FLOPS * 0.001)).with_affinity(mask),
            |_| {},
        );
        for prio in [0i8, 1, 2] {
            let o = order.clone();
            m.submit_cpu(
                TaskSpec::background(format!("p{prio}"), Work::Cycles(1e5))
                    .with_affinity(mask)
                    .with_priority(prio),
                move |_| o.borrow_mut().push(prio as u32),
            );
        }
        m.run_until_idle();
        assert_eq!(*order.borrow(), vec![2, 1, 0]);
    }

    #[test]
    fn accel_queue_grants_by_priority() {
        use aitax_des::SimSpan;
        let mut m = machine();
        let order: Rc<std::cell::RefCell<Vec<&'static str>>> = Rc::default();
        let o = order.clone();
        // First job starts immediately; the rest queue and must drain in
        // priority order (FIFO within a band), never preempting a runner.
        m.submit_dsp_prio("first", SimSpan::from_us(100.0), 0, move |_| {
            o.borrow_mut().push("first")
        });
        let o = order.clone();
        m.submit_dsp_prio("lo", SimSpan::from_us(10.0), 0, move |_| {
            o.borrow_mut().push("lo")
        });
        let o = order.clone();
        m.submit_dsp_prio("hi", SimSpan::from_us(10.0), 2, move |_| {
            o.borrow_mut().push("hi")
        });
        let o = order.clone();
        m.submit_dsp_prio("mid", SimSpan::from_us(10.0), 1, move |_| {
            o.borrow_mut().push("mid")
        });
        m.run_until_idle();
        assert_eq!(*order.borrow(), vec!["first", "hi", "mid", "lo"]);
    }

    #[test]
    fn work_conservation_no_lost_tasks() {
        let mut m = machine();
        let count = Rc::new(Cell::new(0));
        for i in 0..50 {
            let c = count.clone();
            let spec = match i % 3 {
                0 => TaskSpec::foreground(format!("t{i}"), Work::Fp32Flops(1e7)),
                1 => TaskSpec::background(format!("t{i}"), Work::Cycles(1e6)),
                _ => TaskSpec::nnapi_fallback(format!("t{i}"), Work::Int8Ops(1e7)),
            };
            m.submit_cpu(spec, move |_| c.set(c.get() + 1));
        }
        m.run_until_idle();
        assert_eq!(count.get(), 50);
        assert_eq!(m.stats().tasks_completed, 50);
        assert_eq!(m.cpu_load(), 0);
    }
}
