//! The FastRPC offload driver (paper Figure 7).
//!
//! Offloading to the loosely-coupled compute DSP requires "two trips
//! through the OS kernel with the FastRPC drivers signaling the other side
//! upon receipt/transmission" plus a cache flush "to maintain coherency"
//! (§IV-C). We reproduce the full call flow:
//!
//! ```text
//! user stub ──ioctl──▶ kernel driver ──cache flush──▶ doorbell ──▶ DSP
//!     ▲                                                            │
//!     └──ioctl return ◀── kernel driver ◀── completion signal ◀────┘
//! ```
//!
//! The first invocation of a session additionally pays the DSP
//! process-mapping setup, which is "done once, and we can perform multiple
//! inferences using the same setup" — the amortization curve of Figure 8.

use aitax_des::trace::{RpcPhase, TraceKind, TraceResource};
use aitax_des::{SimSpan, SimTime};

use crate::machine::Machine;
use crate::task::{TaskSpec, Work};

/// CPU-side costs of one FastRPC round trip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FastRpcCosts {
    /// Cycles to marshal arguments and enter the kernel (user → kernel).
    pub ioctl_entry_cycles: f64,
    /// Cycles to unmarshal results and return to user space.
    pub ioctl_return_cycles: f64,
    /// Latency of ringing the DSP doorbell and waking its dispatcher.
    pub doorbell: SimSpan,
    /// Latency of the DSP-side completion signal reaching the kernel.
    pub completion_signal: SimSpan,
}

impl Default for FastRpcCosts {
    fn default() -> Self {
        FastRpcCosts {
            // ≈105 µs / ≈90 µs at 2.8 GHz: syscall + marshalling +
            // scatter-gather pinning.
            ioctl_entry_cycles: 295_000.0,
            ioctl_return_cycles: 250_000.0,
            doorbell: SimSpan::from_us(15.0),
            completion_signal: SimSpan::from_us(30.0),
        }
    }
}

/// Which compute block behind the FastRPC interface executes the call.
///
/// The SD865's tensor accelerator (HTA) lives in the same cDSP subsystem
/// and is reached through the same driver stack, but executes on its own
/// queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RpcDevice {
    /// The HVX compute DSP.
    #[default]
    Dsp,
    /// The dedicated tensor accelerator (SD865-class).
    Npu,
}

/// One FastRPC method invocation.
#[derive(Debug, Clone)]
pub struct RpcInvoke {
    /// Label for traces (e.g. the delegated partition name).
    pub label: String,
    /// Bytes shared CPU→DSP (inputs, first-call weights).
    pub in_bytes: u64,
    /// Bytes shared DSP→CPU (outputs).
    pub out_bytes: u64,
    /// Pure method execution time on the device.
    pub dsp_work: SimSpan,
    /// Which block behind the driver executes the call.
    pub device: RpcDevice,
}

/// Measured phase boundaries of a completed invocation, for Fig. 7-style
/// reporting.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RpcTimeline {
    /// Invocation submitted.
    pub submitted: SimTime,
    /// Call returned to user space.
    pub returned: SimTime,
}

impl Machine {
    /// Performs a FastRPC invocation, firing `on_done` when the call
    /// returns to user space.
    ///
    /// The first call on a machine also performs the one-time DSP session
    /// setup (process mapping), serialized through the DSP queue.
    pub fn fastrpc_invoke(
        &mut self,
        invoke: RpcInvoke,
        on_done: impl FnOnce(&mut Machine) + 'static,
    ) {
        self.stats_mut().rpc_calls += 1;
        if !self.dsp_session_mapped() {
            let setup = self.spec().dsp.session_setup;
            self.submit_dsp_raw(
                "fastrpc-session-setup",
                setup,
                Machine::set_dsp_session_mapped,
            );
        }
        self.rpc_phase(RpcPhase::IoctlEntry);
        let entry = TaskSpec::kernel(
            format!("ioctl:{}", invoke.label),
            Work::Cycles(self.rpc_costs.ioctl_entry_cycles),
        );
        self.submit_cpu(entry, move |m| m.rpc_cache_flush(invoke, Box::new(on_done)));
    }

    fn rpc_cache_flush(&mut self, invoke: RpcInvoke, on_done: Box<dyn FnOnce(&mut Machine)>) {
        self.rpc_phase(RpcPhase::CacheFlush);
        let now = self.now();
        self.trace.record(
            now,
            TraceResource::Axi,
            TraceKind::AxiBurst {
                bytes: invoke.in_bytes,
            },
        );
        self.stats_mut().axi_bytes += invoke.in_bytes;
        let flush = self.spec().memory.cache_flush_span(invoke.in_bytes);
        let task = TaskSpec::kernel(format!("cacheflush:{}", invoke.label), Work::Span(flush));
        self.submit_cpu(task, move |m| m.rpc_doorbell(invoke, on_done));
    }

    fn rpc_doorbell(&mut self, invoke: RpcInvoke, on_done: Box<dyn FnOnce(&mut Machine)>) {
        self.rpc_phase(RpcPhase::DoorbellRing);
        let delay = self.rpc_costs.doorbell;
        self.after(delay, move |m| m.rpc_execute(invoke, on_done));
    }

    fn rpc_execute(&mut self, invoke: RpcInvoke, on_done: Box<dyn FnOnce(&mut Machine)>) {
        self.rpc_phase(RpcPhase::DspExecute);
        let mem = self.spec().memory;
        let overhead = match invoke.device {
            RpcDevice::Dsp => self.spec().dsp.invoke_overhead,
            RpcDevice::Npu => {
                self.spec()
                    .npu
                    .expect("NPU invoke on a chipset without an NPU")
                    .invoke_overhead
            }
        };
        let exec = overhead
            + mem.transfer_span(invoke.in_bytes)
            + invoke.dsp_work
            + mem.transfer_span(invoke.out_bytes);
        let label = invoke.label.clone();
        match invoke.device {
            RpcDevice::Dsp => {
                self.submit_dsp_raw(label, exec, move |m| m.rpc_complete(invoke, on_done))
            }
            RpcDevice::Npu => {
                self.submit_npu_raw(label, exec, move |m| m.rpc_complete(invoke, on_done))
            }
        }
    }

    fn rpc_complete(&mut self, invoke: RpcInvoke, on_done: Box<dyn FnOnce(&mut Machine)>) {
        self.rpc_phase(RpcPhase::CompletionSignal);
        let delay = self.rpc_costs.completion_signal;
        self.after(delay, move |m| m.rpc_return(invoke, on_done));
    }

    fn rpc_return(&mut self, invoke: RpcInvoke, on_done: Box<dyn FnOnce(&mut Machine)>) {
        self.rpc_phase(RpcPhase::IoctlReturn);
        let now = self.now();
        self.trace.record(
            now,
            TraceResource::Axi,
            TraceKind::AxiBurst {
                bytes: invoke.out_bytes,
            },
        );
        self.stats_mut().axi_bytes += invoke.out_bytes;
        // Return path: invalidate output buffer caches + unmarshal.
        let invalidate = self.spec().memory.cache_flush_span(invoke.out_bytes);
        let cycles = self.rpc_costs.ioctl_return_cycles;
        let task = TaskSpec::kernel(format!("ioctl-ret:{}", invoke.label), Work::Cycles(cycles));
        self.submit_cpu(task, move |m| {
            let t = TaskSpec::kernel("cache-invalidate", Work::Span(invalidate));
            m.submit_cpu(t, on_done);
        });
    }

    fn rpc_phase(&mut self, phase: RpcPhase) {
        let now = self.now();
        self.trace
            .record(now, TraceResource::Dsp, TraceKind::Rpc { phase });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aitax_soc::{SocCatalog, SocId};
    use std::cell::Cell;
    use std::rc::Rc;

    fn machine() -> Machine {
        Machine::new(SocCatalog::get(SocId::Sd845), 3)
    }

    fn invoke(label: &str, work_ms: f64) -> RpcInvoke {
        RpcInvoke {
            label: label.into(),
            in_bytes: 150_528,
            out_bytes: 4_004,
            dsp_work: SimSpan::from_ms(work_ms),
            device: RpcDevice::Dsp,
        }
    }

    fn run_one(m: &mut Machine, inv: RpcInvoke) -> f64 {
        let done = Rc::new(Cell::new(f64::NAN));
        let d = done.clone();
        let start = m.now();
        m.fastrpc_invoke(inv, move |mm| d.set((mm.now() - start).as_ms()));
        m.run_until_idle();
        done.get()
    }

    #[test]
    fn first_call_pays_session_setup() {
        let mut m = machine();
        let first = run_one(&mut m, invoke("a", 10.0));
        let second = run_one(&mut m, invoke("b", 10.0));
        let setup = SocCatalog::get(SocId::Sd845).dsp.session_setup.as_ms();
        assert!(
            first > second + setup * 0.9,
            "first {first}ms should include ≈{setup}ms setup over second {second}ms"
        );
        assert!(m.dsp_session_mapped());
    }

    #[test]
    fn warm_call_overhead_is_sub_millisecond() {
        let mut m = machine();
        run_one(&mut m, invoke("warmup", 1.0));
        let total = run_one(&mut m, invoke("steady", 10.0));
        let overhead = total - 10.0;
        assert!(
            (0.1..1.5).contains(&overhead),
            "per-call overhead should be a fraction of a millisecond, got {overhead}ms"
        );
    }

    #[test]
    fn phases_appear_in_fig7_order() {
        let mut m = machine();
        m.set_tracing(true);
        run_one(&mut m, invoke("traced", 2.0));
        let phases: Vec<RpcPhase> = m
            .trace
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                TraceKind::Rpc { phase } => Some(phase),
                _ => None,
            })
            .collect();
        assert_eq!(phases, RpcPhase::ALL.to_vec());
    }

    #[test]
    fn concurrent_invokes_serialize_on_dsp() {
        let mut m = machine();
        run_one(&mut m, invoke("warmup", 0.1));
        let done: Rc<std::cell::RefCell<Vec<f64>>> = Rc::default();
        let start = m.now();
        for i in 0..3 {
            let d = done.clone();
            m.fastrpc_invoke(invoke(&format!("c{i}"), 10.0), move |mm| {
                d.borrow_mut().push((mm.now() - start).as_ms());
            });
        }
        m.run_until_idle();
        let d = done.borrow();
        assert_eq!(d.len(), 3);
        // Each successive call waits for the previous DSP execution.
        assert!(d[1] - d[0] > 9.0, "{d:?}");
        assert!(d[2] - d[1] > 9.0, "{d:?}");
    }

    #[test]
    fn axi_traffic_is_accounted() {
        let mut m = machine();
        run_one(&mut m, invoke("t", 1.0));
        assert_eq!(m.stats().axi_bytes, 150_528 + 4_004);
        assert_eq!(m.stats().rpc_calls, 1);
    }

    #[test]
    fn larger_buffers_cost_more() {
        let mut m1 = machine();
        run_one(&mut m1, invoke("w", 0.1));
        let small = run_one(&mut m1, invoke("small", 5.0));
        let mut m2 = machine();
        run_one(&mut m2, invoke("w", 0.1));
        let big = run_one(
            &mut m2,
            RpcInvoke {
                label: "big".into(),
                in_bytes: 8_000_000,
                out_bytes: 1_000_000,
                dsp_work: SimSpan::from_ms(5.0),
                device: RpcDevice::Dsp,
            },
        );
        assert!(big > small + 0.5, "big {big} vs small {small}");
    }
}
