//! The FastRPC offload driver (paper Figure 7).
//!
//! Offloading to the loosely-coupled compute DSP requires "two trips
//! through the OS kernel with the FastRPC drivers signaling the other side
//! upon receipt/transmission" plus a cache flush "to maintain coherency"
//! (§IV-C). We reproduce the full call flow:
//!
//! ```text
//! user stub ──ioctl──▶ kernel driver ──cache flush──▶ doorbell ──▶ DSP
//!     ▲                                                            │
//!     └──ioctl return ◀── kernel driver ◀── completion signal ◀────┘
//! ```
//!
//! The first invocation of a session additionally pays the DSP
//! process-mapping setup, which is "done once, and we can perform multiple
//! inferences using the same setup" — the amortization curve of Figure 8.

use aitax_des::trace::{RpcPhase, TraceKind, TraceResource};
use aitax_des::{FaultKind, SimSpan, SimTime};

use crate::machine::Machine;
use crate::task::{TaskSpec, Work};

/// How much a memory-pressure storm multiplies the cache-maintenance
/// cost of an RPC while [`FaultKind::CacheFlushStorm`] is active.
const CACHE_STORM_MULTIPLIER: f64 = 8.0;

/// CPU-side costs of one FastRPC round trip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FastRpcCosts {
    /// Cycles to marshal arguments and enter the kernel (user → kernel).
    pub ioctl_entry_cycles: f64,
    /// Cycles to unmarshal results and return to user space.
    pub ioctl_return_cycles: f64,
    /// Latency of ringing the DSP doorbell and waking its dispatcher.
    pub doorbell: SimSpan,
    /// Latency of the DSP-side completion signal reaching the kernel.
    pub completion_signal: SimSpan,
    /// How long the caller waits on the DSP completion signal before
    /// declaring the invocation lost.
    pub rpc_timeout: SimSpan,
    /// How many times a failed invocation is re-issued before the error
    /// is surfaced to the caller.
    pub max_retries: u32,
    /// First retry backoff; doubles per attempt up to `backoff_cap`.
    pub backoff_base: SimSpan,
    /// Upper bound on the exponential backoff.
    pub backoff_cap: SimSpan,
}

impl Default for FastRpcCosts {
    fn default() -> Self {
        FastRpcCosts {
            // ≈105 µs / ≈90 µs at 2.8 GHz: syscall + marshalling +
            // scatter-gather pinning.
            ioctl_entry_cycles: 295_000.0,
            ioctl_return_cycles: 250_000.0,
            doorbell: SimSpan::from_us(15.0),
            completion_signal: SimSpan::from_us(30.0),
            rpc_timeout: SimSpan::from_ms(50.0),
            max_retries: 3,
            backoff_base: SimSpan::from_ms(1.0),
            backoff_cap: SimSpan::from_ms(16.0),
        }
    }
}

/// Why a FastRPC invocation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpcError {
    /// The kernel driver rejected the `ioctl` before reaching the DSP.
    IoctlError,
    /// The DSP completion signal never arrived within the timeout.
    SignalTimeout,
}

/// Result of a FastRPC invocation, delivered to the completion callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpcOutcome {
    /// The call returned to user space with results.
    Ok,
    /// The call failed after exhausting its retry budget.
    Failed(RpcError),
}

impl RpcOutcome {
    /// True for [`RpcOutcome::Ok`].
    pub fn is_ok(self) -> bool {
        self == RpcOutcome::Ok
    }
}

/// Completion callback carrying the invocation outcome.
type RpcCallback = Box<dyn FnOnce(&mut Machine, RpcOutcome)>;

/// Which compute block behind the FastRPC interface executes the call.
///
/// The SD865's tensor accelerator (HTA) lives in the same cDSP subsystem
/// and is reached through the same driver stack, but executes on its own
/// queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RpcDevice {
    /// The HVX compute DSP.
    #[default]
    Dsp,
    /// The dedicated tensor accelerator (SD865-class).
    Npu,
}

/// Fraction of the ioctl marshalling cost a burst-continuation call
/// pays: with buffers pre-pinned and the method handle cached by the
/// preceding call of the burst, the scatter-gather registration and most
/// of the argument marshalling drop out (the NNAPI
/// `ANeuralNetworksBurst` amortization).
pub const BURST_IOCTL_FACTOR: f64 = 0.25;

/// One FastRPC method invocation.
#[derive(Debug, Clone)]
pub struct RpcInvoke {
    /// Label for traces (e.g. the delegated partition name).
    pub label: String,
    /// Bytes shared CPU→DSP (inputs, first-call weights).
    pub in_bytes: u64,
    /// Bytes shared DSP→CPU (outputs).
    pub out_bytes: u64,
    /// Pure method execution time on the device.
    pub dsp_work: SimSpan,
    /// Which block behind the driver executes the call.
    pub device: RpcDevice,
    /// QoS priority carried through the whole offload path: the ioctl
    /// and cache-maintenance kernel tasks order by it on the CPU, and
    /// the device-side job orders by it in the accelerator wait queue.
    /// Zero reproduces the legacy path byte-for-byte.
    pub priority: i8,
    /// Burst continuation: this call re-uses the buffers and method
    /// handle of an immediately preceding call in the same burst, paying
    /// [`BURST_IOCTL_FACTOR`] of the ioctl marshalling cycles. The cache
    /// maintenance, doorbell and signal latencies are physical and stay.
    pub burst: bool,
}

impl Default for RpcInvoke {
    fn default() -> Self {
        RpcInvoke {
            label: String::new(),
            in_bytes: 0,
            out_bytes: 0,
            dsp_work: SimSpan::ZERO,
            device: RpcDevice::Dsp,
            priority: 0,
            burst: false,
        }
    }
}

/// Measured phase boundaries of a completed invocation, for Fig. 7-style
/// reporting.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RpcTimeline {
    /// Invocation submitted.
    pub submitted: SimTime,
    /// Call returned to user space.
    pub returned: SimTime,
}

impl Machine {
    /// Performs a FastRPC invocation, firing `on_done` when the call
    /// returns to user space.
    ///
    /// The first call on a machine also performs the one-time DSP session
    /// setup (process mapping), serialized through the DSP queue.
    pub fn fastrpc_invoke(
        &mut self,
        invoke: RpcInvoke,
        on_done: impl FnOnce(&mut Machine) + 'static,
    ) {
        self.fastrpc_invoke_result(invoke, move |m, _outcome| on_done(m));
    }

    /// Like [`Machine::fastrpc_invoke`], but delivers the [`RpcOutcome`]
    /// so callers can react to failure — the hook `aitax-framework` uses
    /// to fall back to the CPU when an installed
    /// [`FaultPlan`](aitax_des::FaultPlan) breaks the accelerator path.
    ///
    /// Failed attempts are retried with exponential backoff up to
    /// [`FastRpcCosts::max_retries`] times before
    /// [`RpcOutcome::Failed`] is surfaced.
    pub fn fastrpc_invoke_result(
        &mut self,
        invoke: RpcInvoke,
        on_done: impl FnOnce(&mut Machine, RpcOutcome) + 'static,
    ) {
        self.stats_mut().rpc_calls += 1;
        if !self.dsp_session_mapped() {
            let setup = self.spec().dsp.session_setup;
            self.submit_dsp_raw(
                "fastrpc-session-setup",
                setup,
                Machine::set_dsp_session_mapped,
            );
        }
        self.rpc_attempt(invoke, 0, Box::new(on_done));
    }

    fn rpc_attempt(&mut self, invoke: RpcInvoke, attempt: u32, on_done: RpcCallback) {
        self.rpc_phase(RpcPhase::IoctlEntry);
        let mut cycles = self.rpc_costs.ioctl_entry_cycles;
        if invoke.burst {
            cycles *= BURST_IOCTL_FACTOR;
        }
        let entry = TaskSpec::kernel(format!("ioctl:{}", invoke.label), Work::Cycles(cycles))
            .with_priority(invoke.priority);
        self.submit_cpu(entry, move |m| {
            // Decision point: the driver can reject the call right at the
            // user→kernel boundary.
            if m.fault_active(FaultKind::RpcIoctlError) {
                let d = m.degradation_mut();
                d.rpc_io_errors += 1;
                d.faults_injected += 1;
                m.rpc_fail(invoke, attempt, RpcError::IoctlError, on_done);
            } else {
                m.rpc_cache_flush(invoke, attempt, on_done);
            }
        });
    }

    fn rpc_cache_flush(&mut self, invoke: RpcInvoke, attempt: u32, on_done: RpcCallback) {
        self.rpc_phase(RpcPhase::CacheFlush);
        let now = self.now();
        self.trace.record(
            now,
            TraceResource::Axi,
            TraceKind::AxiBurst {
                bytes: invoke.in_bytes,
            },
        );
        self.stats_mut().axi_bytes += invoke.in_bytes;
        let mut flush = self.spec().memory.cache_flush_span(invoke.in_bytes);
        if self.fault_active(FaultKind::CacheFlushStorm) {
            flush = flush * CACHE_STORM_MULTIPLIER;
            let d = self.degradation_mut();
            d.cache_storm_flushes += 1;
            d.faults_injected += 1;
        }
        let task = TaskSpec::kernel(format!("cacheflush:{}", invoke.label), Work::Span(flush))
            .with_priority(invoke.priority);
        self.submit_cpu(task, move |m| m.rpc_doorbell(invoke, attempt, on_done));
    }

    fn rpc_doorbell(&mut self, invoke: RpcInvoke, attempt: u32, on_done: RpcCallback) {
        self.rpc_phase(RpcPhase::DoorbellRing);
        let delay = self.rpc_costs.doorbell;
        self.after(delay, move |m| m.rpc_execute(invoke, attempt, on_done));
    }

    fn rpc_execute(&mut self, invoke: RpcInvoke, attempt: u32, on_done: RpcCallback) {
        self.rpc_phase(RpcPhase::DspExecute);
        // Decision point: does the DSP-side signal path work right now?
        if self.fault_active(FaultKind::DspSignalTimeout) {
            // The doorbell rings into silence: nothing executes and the
            // caller blocks until its timeout expires.
            self.rpc_timeout_then_fail(invoke, attempt, on_done);
            return;
        }
        let dropped = self.fault_active(FaultKind::DspResponseDropped);
        let mem = self.spec().memory;
        let overhead = match invoke.device {
            RpcDevice::Dsp => self.spec().dsp.invoke_overhead,
            RpcDevice::Npu => {
                self.spec()
                    .npu
                    // aitax-allow(panic-path): NPU invokes are only issued on chipsets that declare an NPU
                    .expect("NPU invoke on a chipset without an NPU")
                    .invoke_overhead
            }
        };
        let exec = overhead
            + mem.transfer_span(invoke.in_bytes)
            + invoke.dsp_work
            + mem.transfer_span(invoke.out_bytes);
        let label = invoke.label.clone();
        let prio = invoke.priority;
        if dropped {
            // The job runs (and is visible in the trace) but its
            // completion response is lost: the caller still times out.
            match invoke.device {
                RpcDevice::Dsp => self.submit_dsp_prio(label, exec, prio, |_| {}),
                RpcDevice::Npu => self.submit_npu_prio(label, exec, prio, |_| {}),
            }
            self.rpc_timeout_then_fail(invoke, attempt, on_done);
            return;
        }
        match invoke.device {
            RpcDevice::Dsp => self.submit_dsp_prio(label, exec, prio, move |m| {
                m.rpc_complete(invoke, attempt, on_done)
            }),
            RpcDevice::Npu => self.submit_npu_prio(label, exec, prio, move |m| {
                m.rpc_complete(invoke, attempt, on_done)
            }),
        }
    }

    /// The caller's watchdog: wait out the RPC timeout, then treat the
    /// invocation as lost.
    fn rpc_timeout_then_fail(&mut self, invoke: RpcInvoke, attempt: u32, on_done: RpcCallback) {
        let timeout = self.rpc_costs.rpc_timeout;
        self.after(timeout, move |m| {
            let d = m.degradation_mut();
            d.rpc_timeouts += 1;
            d.faults_injected += 1;
            d.rpc_stall += timeout;
            m.rpc_fail(invoke, attempt, RpcError::SignalTimeout, on_done);
        });
    }

    /// Retry with exponential backoff, or surface the error once the
    /// retry budget is spent.
    fn rpc_fail(&mut self, invoke: RpcInvoke, attempt: u32, err: RpcError, on_done: RpcCallback) {
        let costs = self.rpc_costs;
        if attempt < costs.max_retries {
            let backoff =
                (costs.backoff_base * f64::from(1u32 << attempt.min(16))).min(costs.backoff_cap);
            let d = self.degradation_mut();
            d.rpc_retries += 1;
            d.rpc_stall += backoff;
            self.after(backoff, move |m| {
                m.rpc_attempt(invoke, attempt + 1, on_done)
            });
        } else {
            self.degradation_mut().rpc_giveups += 1;
            on_done(self, RpcOutcome::Failed(err));
        }
    }

    fn rpc_complete(&mut self, invoke: RpcInvoke, attempt: u32, on_done: RpcCallback) {
        self.rpc_phase(RpcPhase::CompletionSignal);
        let delay = self.rpc_costs.completion_signal;
        self.after(delay, move |m| m.rpc_return(invoke, attempt, on_done));
    }

    fn rpc_return(&mut self, invoke: RpcInvoke, _attempt: u32, on_done: RpcCallback) {
        self.rpc_phase(RpcPhase::IoctlReturn);
        let now = self.now();
        self.trace.record(
            now,
            TraceResource::Axi,
            TraceKind::AxiBurst {
                bytes: invoke.out_bytes,
            },
        );
        self.stats_mut().axi_bytes += invoke.out_bytes;
        // Return path: invalidate output buffer caches + unmarshal.
        let invalidate = self.spec().memory.cache_flush_span(invoke.out_bytes);
        let mut cycles = self.rpc_costs.ioctl_return_cycles;
        if invoke.burst {
            cycles *= BURST_IOCTL_FACTOR;
        }
        let prio = invoke.priority;
        let task = TaskSpec::kernel(format!("ioctl-ret:{}", invoke.label), Work::Cycles(cycles))
            .with_priority(prio);
        self.submit_cpu(task, move |m| {
            let t =
                TaskSpec::kernel("cache-invalidate", Work::Span(invalidate)).with_priority(prio);
            m.submit_cpu(t, move |m| on_done(m, RpcOutcome::Ok));
        });
    }

    fn rpc_phase(&mut self, phase: RpcPhase) {
        let now = self.now();
        self.trace
            .record(now, TraceResource::Dsp, TraceKind::Rpc { phase });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aitax_soc::{SocCatalog, SocId};
    use std::cell::Cell;
    use std::rc::Rc;

    fn machine() -> Machine {
        Machine::new(SocCatalog::get(SocId::Sd845), 3)
    }

    fn invoke(label: &str, work_ms: f64) -> RpcInvoke {
        RpcInvoke {
            label: label.into(),
            in_bytes: 150_528,
            out_bytes: 4_004,
            dsp_work: SimSpan::from_ms(work_ms),
            device: RpcDevice::Dsp,
            ..Default::default()
        }
    }

    fn run_one(m: &mut Machine, inv: RpcInvoke) -> f64 {
        let done = Rc::new(Cell::new(f64::NAN));
        let d = done.clone();
        let start = m.now();
        m.fastrpc_invoke(inv, move |mm| d.set((mm.now() - start).as_ms()));
        m.run_until_idle();
        done.get()
    }

    #[test]
    fn first_call_pays_session_setup() {
        let mut m = machine();
        let first = run_one(&mut m, invoke("a", 10.0));
        let second = run_one(&mut m, invoke("b", 10.0));
        let setup = SocCatalog::get(SocId::Sd845).dsp.session_setup.as_ms();
        assert!(
            first > second + setup * 0.9,
            "first {first}ms should include ≈{setup}ms setup over second {second}ms"
        );
        assert!(m.dsp_session_mapped());
    }

    #[test]
    fn warm_call_overhead_is_sub_millisecond() {
        let mut m = machine();
        run_one(&mut m, invoke("warmup", 1.0));
        let total = run_one(&mut m, invoke("steady", 10.0));
        let overhead = total - 10.0;
        assert!(
            (0.1..1.5).contains(&overhead),
            "per-call overhead should be a fraction of a millisecond, got {overhead}ms"
        );
    }

    #[test]
    fn phases_appear_in_fig7_order() {
        let mut m = machine();
        m.set_tracing(true);
        run_one(&mut m, invoke("traced", 2.0));
        let phases: Vec<RpcPhase> = m
            .trace
            .iter()
            .filter_map(|e| match e.kind {
                TraceKind::Rpc { phase } => Some(phase),
                _ => None,
            })
            .collect();
        assert_eq!(phases, RpcPhase::ALL.to_vec());
    }

    #[test]
    fn concurrent_invokes_serialize_on_dsp() {
        let mut m = machine();
        run_one(&mut m, invoke("warmup", 0.1));
        let done: Rc<std::cell::RefCell<Vec<f64>>> = Rc::default();
        let start = m.now();
        for i in 0..3 {
            let d = done.clone();
            m.fastrpc_invoke(invoke(&format!("c{i}"), 10.0), move |mm| {
                d.borrow_mut().push((mm.now() - start).as_ms());
            });
        }
        m.run_until_idle();
        let d = done.borrow();
        assert_eq!(d.len(), 3);
        // Each successive call waits for the previous DSP execution.
        assert!(d[1] - d[0] > 9.0, "{d:?}");
        assert!(d[2] - d[1] > 9.0, "{d:?}");
    }

    #[test]
    fn burst_continuation_amortizes_ioctl_setup() {
        let mut m = machine();
        run_one(&mut m, invoke("warmup", 1.0));
        let full = run_one(&mut m, invoke("full", 10.0));
        let burst = run_one(
            &mut m,
            RpcInvoke {
                burst: true,
                ..invoke("burst", 10.0)
            },
        );
        // The burst continuation skips (1 - BURST_IOCTL_FACTOR) of the
        // entry+return marshalling: ≈0.15 ms at 2.8 GHz.
        let saved = full - burst;
        assert!(
            (0.05..0.5).contains(&saved),
            "burst call should shave ≈0.15ms of ioctl cost, saved {saved}ms"
        );
    }

    #[test]
    fn axi_traffic_is_accounted() {
        let mut m = machine();
        run_one(&mut m, invoke("t", 1.0));
        assert_eq!(m.stats().axi_bytes, 150_528 + 4_004);
        assert_eq!(m.stats().rpc_calls, 1);
    }

    #[test]
    fn sustained_dsp_timeout_fails_after_retries() {
        use aitax_des::FaultPlan;
        let mut m = machine();
        m.install_fault_plan(
            FaultPlan::new(1).sustained(FaultKind::DspSignalTimeout, SimTime::ZERO),
        );
        let outcome = Rc::new(Cell::new(None));
        let o = outcome.clone();
        m.fastrpc_invoke_result(invoke("doomed", 5.0), move |_, out| o.set(Some(out)));
        m.run_until_idle();
        assert_eq!(
            outcome.get(),
            Some(RpcOutcome::Failed(RpcError::SignalTimeout))
        );
        let costs = FastRpcCosts::default();
        let d = m.degradation().clone();
        // One initial attempt plus max_retries re-issues, all timing out.
        assert_eq!(d.rpc_timeouts, u64::from(costs.max_retries) + 1);
        assert_eq!(d.rpc_retries, u64::from(costs.max_retries));
        assert_eq!(d.rpc_giveups, 1);
        // Stall = every timeout plus every backoff interval.
        let backoffs: SimSpan = (0..costs.max_retries)
            .map(|a| (costs.backoff_base * f64::from(1u32 << a)).min(costs.backoff_cap))
            .fold(SimSpan::ZERO, |acc, b| acc + b);
        let expected = costs.rpc_timeout * f64::from(costs.max_retries + 1) + backoffs;
        assert_eq!(d.rpc_stall, expected);
        // The logical invocation counts once despite the retries.
        assert_eq!(m.stats().rpc_calls, 1);
    }

    #[test]
    fn transient_ioctl_error_recovers_via_retry() {
        use aitax_des::FaultPlan;
        let mut m = machine();
        // The driver rejects calls only during the first 200 µs; the
        // first backoff retry lands after the window clears.
        m.install_fault_plan(FaultPlan::new(1).window(
            FaultKind::RpcIoctlError,
            SimTime::ZERO,
            SimTime::ZERO + SimSpan::from_us(200.0),
        ));
        let outcome = Rc::new(Cell::new(None));
        let o = outcome.clone();
        m.fastrpc_invoke_result(invoke("flaky", 2.0), move |_, out| o.set(Some(out)));
        m.run_until_idle();
        assert_eq!(outcome.get(), Some(RpcOutcome::Ok));
        let d = m.degradation();
        assert!(d.rpc_io_errors >= 1, "at least one rejection: {d:?}");
        assert!(d.rpc_retries >= 1);
        assert_eq!(d.rpc_giveups, 0);
    }

    #[test]
    fn dropped_response_still_occupies_dsp() {
        use aitax_des::FaultPlan;
        let mut m = machine();
        m.set_tracing(true);
        m.install_fault_plan(
            FaultPlan::new(1).sustained(FaultKind::DspResponseDropped, SimTime::ZERO),
        );
        let outcome = Rc::new(Cell::new(None));
        let o = outcome.clone();
        m.fastrpc_invoke_result(invoke("lost", 5.0), move |_, out| o.set(Some(out)));
        m.run_until_idle();
        assert_eq!(
            outcome.get(),
            Some(RpcOutcome::Failed(RpcError::SignalTimeout))
        );
        // The work itself ran on the DSP every attempt (visible busy time),
        // even though every response was lost.
        let dsp_execs = m
            .trace
            .exec_intervals()
            .iter()
            .filter(|iv| iv.resource == TraceResource::Dsp && m.trace.resolve(iv.label) == "lost")
            .count();
        assert_eq!(dsp_execs as u64, m.degradation().rpc_timeouts);
    }

    #[test]
    fn cache_storm_inflates_flush_cost() {
        use aitax_des::FaultPlan;
        let mut healthy = machine();
        run_one(&mut healthy, invoke("w", 0.1));
        let clean = run_one(&mut healthy, invoke("probe", 1.0));

        let mut stormy = machine();
        run_one(&mut stormy, invoke("w", 0.1));
        stormy.install_fault_plan(
            FaultPlan::new(1).sustained(FaultKind::CacheFlushStorm, SimTime::ZERO),
        );
        let slow = run_one(&mut stormy, invoke("probe", 1.0));
        assert!(slow > clean, "storm {slow}ms vs clean {clean}ms");
        assert!(stormy.degradation().cache_storm_flushes >= 1);
    }

    #[test]
    fn fault_runs_are_deterministic() {
        use aitax_des::FaultPlan;
        let run = || {
            let mut m = machine();
            m.install_fault_plan(FaultPlan::new(9).window(
                FaultKind::DspSignalTimeout,
                SimTime::ZERO,
                SimTime::ZERO + SimSpan::from_ms(80.0),
            ));
            let outcome = Rc::new(Cell::new(None));
            let o = outcome.clone();
            m.fastrpc_invoke_result(invoke("det", 3.0), move |_, out| o.set(Some(out)));
            m.run_until_idle();
            (outcome.get(), m.degradation().clone(), m.now())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn larger_buffers_cost_more() {
        let mut m1 = machine();
        run_one(&mut m1, invoke("w", 0.1));
        let small = run_one(&mut m1, invoke("small", 5.0));
        let mut m2 = machine();
        run_one(&mut m2, invoke("w", 0.1));
        let big = run_one(
            &mut m2,
            RpcInvoke {
                label: "big".into(),
                in_bytes: 8_000_000,
                out_bytes: 1_000_000,
                dsp_work: SimSpan::from_ms(5.0),
                device: RpcDevice::Dsp,
                ..Default::default()
            },
        );
        assert!(big > small + 0.5, "big {big} vs small {small}");
    }
}
