//! Operating-system model for the `aitax` simulator.
//!
//! This crate provides [`Machine`]: a discrete-event simulated phone — a
//! [`SocSpec`](aitax_soc::SocSpec) brought to life with:
//!
//! * a CFS-flavoured CPU scheduler (per-core run queues, weighted
//!   round-robin time slices, context-switch costs, idle stealing with
//!   cache-warmup migration penalties),
//! * serial FIFO queues for the loosely-coupled accelerators (DSP, GPU) —
//!   the source of the multi-tenancy stalls in Figure 9,
//! * a [`fastrpc`] driver reproducing the Figure 7 offload call flow
//!   (ioctl entry → cache flush → doorbell → DSP execute → completion
//!   signal → ioctl return) with one-time session setup (Figure 8),
//! * interrupt jitter and [`noise`] generators that model the Android
//!   background activity responsible for in-app run-to-run variability
//!   (Figure 11),
//! * power/thermal coupling: a schedutil-style [`dvfs`] governor picks
//!   per-core clocks, the per-rail power model turns execution into watts,
//!   watts heat the chip, and heat throttles frequency (paper §III-D).
//!
//! Work is submitted as [`TaskSpec`]s and sequenced with completion
//! callbacks; `aitax-framework` and `aitax-core` build the ML execution
//! pipeline on top of this interface.
//!
//! # Example
//!
//! ```
//! use aitax_kernel::{Machine, TaskSpec, Work};
//! use aitax_soc::{SocCatalog, SocId};
//! use std::cell::Cell;
//! use std::rc::Rc;
//!
//! let mut m = Machine::new(SocCatalog::get(SocId::Sd845), 42);
//! let done = Rc::new(Cell::new(false));
//! let flag = done.clone();
//! m.submit_cpu(
//!     TaskSpec::foreground("hello", Work::Fp32Flops(1e6)),
//!     move |_m| flag.set(true),
//! );
//! m.run_until_idle();
//! assert!(done.get());
//! ```

pub mod dvfs;
pub mod fastrpc;
pub mod machine;
pub mod noise;
pub mod sched;
pub mod task;

pub use dvfs::DvfsPolicy;
pub use fastrpc::{FastRpcCosts, RpcDevice, RpcError, RpcInvoke, RpcOutcome};
pub use machine::{DegradationStats, GpuJob, Machine, MachineStats};
pub use noise::NoiseConfig;
pub use task::{CoreMask, TaskClass, TaskId, TaskSpec, Work};
