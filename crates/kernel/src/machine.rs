//! The simulated phone: SoC + OS state + event loop.

use std::collections::VecDeque;

use aitax_des::trace::{TraceKind, TraceResource};
use aitax_des::{
    Calendar, FaultKind, FaultPlan, SimRng, SimSpan, SimTime, Symbol, Token, TraceBuffer,
};
use aitax_soc::{SocSpec, ThermalState};

use crate::dvfs::{CoreGov, DvfsPolicy};
use crate::fastrpc::FastRpcCosts;
use crate::task::{CoreMask, TaskClass, TaskId, Work};

/// A completion callback fired by the machine.
pub(crate) type Callback = Box<dyn FnOnce(&mut Machine)>;

/// Counters the machine accumulates while running.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct MachineStats {
    /// Context switches charged across all cores.
    pub context_switches: u64,
    /// Task migrations between cores (idle steals + wandering).
    pub migrations: u64,
    /// Running tasks displaced mid-slice by a higher-priority arrival.
    pub preemptions: u64,
    /// CPU tasks completed.
    pub tasks_completed: u64,
    /// DSP jobs completed.
    pub dsp_jobs: u64,
    /// Total DSP busy time.
    pub dsp_busy: SimSpan,
    /// GPU jobs completed.
    pub gpu_jobs: u64,
    /// Total GPU busy time.
    pub gpu_busy: SimSpan,
    /// NPU jobs completed.
    pub npu_jobs: u64,
    /// Total NPU busy time.
    pub npu_busy: SimSpan,
    /// Bytes that crossed the AXI fabric for offloads.
    pub axi_bytes: u64,
    /// FastRPC invocations issued.
    pub rpc_calls: u64,
}

/// Counters describing how a run degraded under an installed
/// [`FaultPlan`]: every fault the machine realized, every retry and
/// fallback the stack took in response, and the simulated time those
/// responses cost. All-zero (see [`DegradationStats::is_clean`]) when no
/// plan is installed or the plan never fired.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct DegradationStats {
    /// Faults realized at an injection point (any kind).
    pub faults_injected: u64,
    /// FastRPC attempts re-issued after a failure (bounded backoff).
    pub rpc_retries: u64,
    /// FastRPC attempts that timed out waiting on the DSP signal.
    pub rpc_timeouts: u64,
    /// FastRPC attempts rejected at the ioctl boundary.
    pub rpc_io_errors: u64,
    /// FastRPC invocations abandoned after exhausting retries.
    pub rpc_giveups: u64,
    /// Simulated time spent stalled in timeouts and retry backoff.
    pub rpc_stall: SimSpan,
    /// Accelerator partitions re-run on the CPU after RPC give-up.
    pub cpu_fallbacks: u64,
    /// Extra wall time the CPU fallbacks cost over the planned
    /// accelerator execution.
    pub fallback_added: SimSpan,
    /// Thermal emergencies injected.
    pub thermal_emergencies: u64,
    /// Cache flushes amplified by a memory-pressure storm.
    pub cache_storm_flushes: u64,
    /// Background task bursts injected.
    pub background_bursts: u64,
}

impl DegradationStats {
    /// True when the run saw no faults and took no degradation action.
    pub fn is_clean(&self) -> bool {
        *self == DegradationStats::default()
    }
}

pub(crate) struct Task {
    /// Trace label, interned at submission time so slice dispatch never
    /// touches the heap.
    pub label: Symbol,
    pub work_kind: Work,
    /// Remaining work, in the units of `work_kind`.
    pub remaining: f64,
    pub class: TaskClass,
    pub affinity: CoreMask,
    /// QoS priority band (zero = legacy default; see
    /// [`TaskSpec::priority`](crate::TaskSpec::priority)).
    pub priority: i8,
    pub on_done: Option<Callback>,
    /// Extra delay to pay before the next slice (migration penalty).
    pub pending_penalty: SimSpan,
    pub last_core: Option<usize>,
    pub cpu_time: SimSpan,
}

pub(crate) struct Running {
    pub task: TaskId,
    /// When useful work starts (after switch cost + penalties).
    pub work_start: SimTime,
    /// Work units retired per second during this slice.
    pub rate: f64,
    /// Calendar token of the pending `SliceEnd`, so a preemption can
    /// cancel it without disturbing any other scheduled event.
    pub slice_token: Token,
}

#[derive(Default)]
pub(crate) struct CoreState {
    pub running: Option<Running>,
    pub runq: VecDeque<TaskId>,
    pub last_task: Option<TaskId>,
}

impl CoreState {
    pub fn load(&self) -> usize {
        self.runq.len() + usize::from(self.running.is_some())
    }
}

/// A job for a serial FIFO accelerator (DSP or GPU).
pub(crate) struct AccelJob {
    pub label: Symbol,
    pub exec: SimSpan,
    pub on_done: Callback,
    pub trace_id: u64,
    /// QoS priority: higher values order ahead in the wait queue. The
    /// running job is never preempted — the device is non-preemptible —
    /// so priority governs grant order only. Zero (the default) keeps
    /// plain FIFO order byte-identical.
    pub priority: i8,
}

#[derive(Default)]
pub(crate) struct AccelState {
    pub queue: VecDeque<AccelJob>,
    pub running: Option<AccelJob>,
}

/// A GPU compute job.
///
/// The submitter (a GPU delegate) computes the execution span from the
/// [`GpuSpec`](aitax_soc::GpuSpec); the machine provides queueing and
/// launch-overhead semantics.
#[derive(Debug, Clone)]
pub struct GpuJob {
    /// Label for traces.
    pub label: String,
    /// Pure execution time on the GPU (excluding launch overhead).
    pub exec: SimSpan,
}

pub(crate) enum Ev {
    SliceEnd { core: usize },
    DspDone,
    GpuDone,
    NpuDone,
    Timer(Callback),
}

/// A discrete-event simulated phone.
///
/// See the [crate-level docs](crate) for an overview and example.
pub struct Machine {
    pub(crate) spec: &'static SocSpec,
    pub(crate) core_specs: Vec<aitax_soc::CpuCoreSpec>,
    pub(crate) cal: Calendar,
    pub(crate) rng: SimRng,
    /// Structured trace buffer (disabled by default; enable for profiling).
    pub trace: TraceBuffer,
    pub(crate) cores: Vec<CoreState>,
    pub(crate) tasks: Vec<Option<Task>>,
    /// Pending calendar payloads, indexed by [`Token::slot`]. The calendar
    /// recycles slots only after their heap entry pops, so a slot holds at
    /// most one live payload at a time and the table stays dense.
    pub(crate) events: Vec<Option<Ev>>,
    pub(crate) dsp: AccelState,
    pub(crate) dsp_session_mapped: bool,
    pub(crate) gpu: AccelState,
    pub(crate) npu: AccelState,
    pub(crate) thermal: ThermalState,
    pub(crate) governor: Vec<CoreGov>,
    pub(crate) dvfs: DvfsPolicy,
    pub(crate) rpc_costs: FastRpcCosts,
    pub(crate) noise_generation: u64,
    pub(crate) next_obj_id: u64,
    pub(crate) wander_probability: f64,
    pub(crate) fault_plan: Option<FaultPlan>,
    stats: MachineStats,
    degradation: DegradationStats,
}

impl Machine {
    /// Boots a machine from an SoC spec with a deterministic seed.
    ///
    /// The spec is borrowed for the life of the process (specs come from
    /// the static [`SocCatalog`](aitax_soc::SocCatalog)), so booting — and
    /// resetting — a machine never copies Table II data.
    ///
    /// # Panics
    ///
    /// Panics if the spec's power description does not have one core rail
    /// per CPU core.
    pub fn new(spec: &'static SocSpec, seed: u64) -> Self {
        let core_specs = spec.cores();
        assert_eq!(
            spec.power.core_rails.len(),
            core_specs.len(),
            "{}: power spec needs one core rail per CPU core",
            spec.name
        );
        let cores = core_specs.iter().map(|_| CoreState::default()).collect();
        let governor = spec
            .power
            .core_rails
            .iter()
            .map(|r| CoreGov::new(r.nominal().freq_hz))
            .collect();
        let thermal = ThermalState::new(spec.thermal);
        Machine {
            core_specs,
            cores,
            thermal,
            governor,
            dvfs: DvfsPolicy::default(),
            cal: Calendar::new(),
            rng: SimRng::seed_from(seed),
            trace: TraceBuffer::disabled(),
            tasks: Vec::new(),
            events: Vec::new(),
            dsp: AccelState::default(),
            dsp_session_mapped: false,
            gpu: AccelState::default(),
            npu: AccelState::default(),
            rpc_costs: FastRpcCosts::default(),
            noise_generation: 0,
            next_obj_id: 1,
            wander_probability: crate::sched::DEFAULT_WANDER_PROBABILITY,
            fault_plan: None,
            stats: MachineStats::default(),
            degradation: DegradationStats::default(),
            spec,
        }
    }

    /// Resets the machine to the state [`Machine::new`]`(spec, seed)`
    /// would produce, in place — every observable field (clock, RNG
    /// stream, scheduler/accelerator queues, thermal/DVFS state, trace,
    /// counters, object numbering) matches a fresh boot, so a run on a
    /// reset machine is byte-identical to a run on a new one. What
    /// survives is invisible to the simulation: heap capacity in the
    /// calendar slab, run queues, task/event tables and trace columns,
    /// which is what makes repeated short runs allocation-free after the
    /// first.
    pub fn reset(&mut self, seed: u64) {
        self.cal.reset();
        self.rng = SimRng::seed_from(seed);
        self.trace.reset();
        for core in &mut self.cores {
            core.running = None;
            core.runq.clear();
            core.last_task = None;
        }
        self.tasks.clear();
        self.events.clear();
        for accel in [&mut self.dsp, &mut self.gpu, &mut self.npu] {
            accel.queue.clear();
            accel.running = None;
        }
        self.dsp_session_mapped = false;
        self.thermal = ThermalState::new(self.spec.thermal);
        for (gov, rail) in self
            .governor
            .iter_mut()
            .zip(self.spec.power.core_rails.iter())
        {
            *gov = CoreGov::new(rail.nominal().freq_hz);
        }
        self.dvfs = DvfsPolicy::default();
        self.rpc_costs = FastRpcCosts::default();
        self.noise_generation = 0;
        self.next_obj_id = 1;
        self.wander_probability = crate::sched::DEFAULT_WANDER_PROBABILITY;
        self.fault_plan = None;
        self.stats = MachineStats::default();
        self.degradation = DegradationStats::default();
    }

    /// Overrides the per-slice probability that wandering-class tasks
    /// (NNAPI fallback threads) migrate between cores. Zero pins them —
    /// the ablation knob for quantifying how much of the Fig. 5/6
    /// slowdown comes from migrations versus the reference kernels.
    pub fn set_wander_probability(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.wander_probability = p;
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.cal.now()
    }

    /// The SoC this machine models.
    pub fn spec(&self) -> &'static SocSpec {
        self.spec
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &MachineStats {
        &self.stats
    }

    pub(crate) fn stats_mut(&mut self) -> &mut MachineStats {
        &mut self.stats
    }

    /// Degradation counters accumulated under the installed fault plan.
    pub fn degradation(&self) -> &DegradationStats {
        &self.degradation
    }

    /// Mutable access for the layers above the kernel (framework
    /// fallback accounting happens outside this crate).
    pub fn degradation_mut(&mut self) -> &mut DegradationStats {
        &mut self.degradation
    }

    /// Installs a fault plan. Point-in-time faults (thermal emergencies,
    /// background bursts) are realized as timers at their window starts;
    /// window faults (RPC errors, DSP timeouts, cache storms) are pure
    /// queries evaluated at the affected subsystem's decision points, so
    /// an empty plan leaves the event sequence byte-identical to no plan
    /// at all.
    ///
    /// Burst sizes come from a dedicated stream seeded by the plan — not
    /// the machine's RNG — so installing a plan never perturbs workload
    /// randomness.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        let mut fault_rng = SimRng::seed_from(plan.seed() ^ 0x5fa1_7b1a_57ed_c0de);
        let now = self.now();
        for w in plan.windows() {
            if w.start == SimTime::MAX {
                continue;
            }
            let delay = if w.start > now {
                w.start - now
            } else {
                SimSpan::ZERO
            };
            match w.kind {
                FaultKind::ThermalEmergency => {
                    self.after(delay, Machine::inject_thermal_emergency);
                }
                FaultKind::BackgroundBurst => {
                    let count = fault_rng.uniform_u64(3, 8) as usize;
                    let cycles: Vec<f64> = (0..count)
                        .map(|_| fault_rng.uniform(20.0e6, 120.0e6))
                        .collect();
                    self.after(delay, move |m| m.inject_background_burst(&cycles));
                }
                _ => {}
            }
        }
        self.fault_plan = Some(plan);
    }

    /// Whether `kind` is active at the current instant under the
    /// installed plan (always false with no plan).
    pub fn fault_active(&self, kind: FaultKind) -> bool {
        self.fault_plan
            .as_ref()
            .is_some_and(|p| p.active(kind, self.cal.now()))
    }

    /// Realizes a thermal emergency: the skin sensor jumps past the hard
    /// limit and the throttle curve clamps frequency until the chip
    /// cools back down.
    pub fn inject_thermal_emergency(&mut self) {
        self.touch_thermal();
        let now = self.cal.now();
        let emergency_c = self.spec.thermal.hard_limit_c + 7.0;
        self.thermal.force_temp(now, emergency_c);
        self.degradation.thermal_emergencies += 1;
        self.degradation.faults_injected += 1;
    }

    fn inject_background_burst(&mut self, cycles: &[f64]) {
        use crate::task::TaskSpec;
        for (i, &c) in cycles.iter().enumerate() {
            let spec = TaskSpec::background(format!("fault-burst-{i}"), Work::Cycles(c));
            self.submit_cpu(spec, |_| {});
        }
        self.degradation.background_bursts += 1;
        self.degradation.faults_injected += 1;
    }

    /// Current chip temperature in °C.
    pub fn temp_c(&self) -> f64 {
        self.thermal.temp_c()
    }

    /// Overrides the starting chip temperature (the paper cools devices
    /// to ≈33 °C before measuring, §III-D; use this to study what
    /// happens when a benchmark skips that step).
    pub fn set_initial_temp(&mut self, temp_c: f64) {
        self.thermal = aitax_soc::ThermalState::with_temp(self.spec.thermal, temp_c);
    }

    /// Enables or disables structured tracing. Disabling drops recorded
    /// events; interned labels stay valid either way.
    pub fn set_tracing(&mut self, enabled: bool) {
        self.trace.set_enabled(enabled);
    }

    /// The machine's random stream (for drivers layered on top).
    pub fn rng_mut(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Whether the DSP process mapping has been established
    /// (the Fig. 8 one-time setup).
    pub fn dsp_session_mapped(&self) -> bool {
        self.dsp_session_mapped
    }

    /// Number of jobs waiting on (or running on) the DSP.
    pub fn dsp_depth(&self) -> usize {
        self.dsp.queue.len() + usize::from(self.dsp.running.is_some())
    }

    /// Number of jobs waiting on (or running on) the NPU block.
    pub fn npu_depth(&self) -> usize {
        self.npu.queue.len() + usize::from(self.npu.running.is_some())
    }

    pub(crate) fn fresh_obj_id(&mut self) -> u64 {
        let id = self.next_obj_id;
        self.next_obj_id += 1;
        id
    }

    // ---------------------------------------------------------------- time

    /// Registers the payload for a freshly scheduled calendar token.
    pub(crate) fn set_event(&mut self, token: Token, ev: Ev) {
        let slot = token.slot() as usize;
        if self.events.len() <= slot {
            self.events.resize_with(slot + 1, || None);
        }
        self.events[slot] = Some(ev);
    }

    pub(crate) fn take_event(&mut self, token: Token) -> Option<Ev> {
        self.events
            .get_mut(token.slot() as usize)
            .and_then(Option::take)
    }

    /// Runs one event. Returns `false` when the calendar is empty.
    pub fn step(&mut self) -> bool {
        match self.cal.next() {
            None => false,
            Some((_, token)) => {
                if let Some(ev) = self.take_event(token) {
                    self.dispatch(ev);
                }
                true
            }
        }
    }

    /// Runs until no events remain.
    ///
    /// Note: with a noise generator or a free-running camera active the
    /// machine never idles; use [`Machine::run_until`] instead.
    pub fn run_until_idle(&mut self) {
        while self.step() {}
    }

    /// Runs all events up to and including `t`, then advances the clock
    /// to exactly `t`.
    pub fn run_until(&mut self, t: SimTime) {
        while let Some(next) = self.cal.peek_time() {
            if next > t {
                break;
            }
            self.step();
        }
        if self.cal.now() < t {
            self.cal.advance_to(t);
        }
    }

    /// Runs for a span of simulated time.
    pub fn run_for(&mut self, span: SimSpan) {
        let target = self.now() + span;
        self.run_until(target);
    }

    /// Schedules `cb` to run after `delay`.
    pub fn after(&mut self, delay: SimSpan, cb: impl FnOnce(&mut Machine) + 'static) -> Token {
        let token = self.cal.schedule_after(delay);
        self.set_event(token, Ev::Timer(Box::new(cb)));
        token
    }

    /// Cancels a timer scheduled with [`Machine::after`].
    pub fn cancel_timer(&mut self, token: Token) -> bool {
        if self.cal.cancel(token) {
            self.take_event(token);
            true
        } else {
            false
        }
    }

    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::SliceEnd { core } => self.on_slice_end(core),
            Ev::DspDone => self.on_accel_done(AccelKind::Dsp),
            Ev::GpuDone => self.on_accel_done(AccelKind::Gpu),
            Ev::NpuDone => self.on_accel_done(AccelKind::Npu),
            Ev::Timer(cb) => cb(self),
        }
    }

    // ------------------------------------------------- thermal and power

    /// Instantaneous package power in watts: every core rail at its
    /// governor-chosen operating point (active) or leakage floor (idle),
    /// accelerator rails busy or collapsed, plus the uncore floor.
    pub fn current_power_w(&self) -> f64 {
        let p = &self.spec.power;
        let mut w = p.interconnect.uncore_w;
        for (i, rail) in p.core_rails.iter().enumerate() {
            w += if self.cores[i].running.is_some() {
                rail.active_power_w(self.governor[i].freq_hz)
            } else {
                rail.idle_power_w()
            };
        }
        w += if self.dsp.running.is_some() {
            p.dsp.busy_w
        } else {
            p.dsp.idle_power_w()
        };
        w += if self.gpu.running.is_some() {
            p.gpu.busy_w
        } else {
            p.gpu.idle_power_w()
        };
        if let Some(npu) = &p.npu {
            w += if self.npu.running.is_some() {
                npu.busy_w
            } else {
                npu.idle_power_w()
            };
        }
        w
    }

    /// Advances the thermal state to now, heating from the power drawn
    /// since the last update. Call *before* changing busy state so the
    /// elapsed stretch is priced at the state it actually ran in.
    pub(crate) fn touch_thermal(&mut self) {
        let watts = self.current_power_w();
        let now = self.cal.now();
        self.thermal.advance(now, watts);
    }

    /// Current frequency multiplier (thermal throttling).
    pub fn freq_multiplier(&self) -> f64 {
        self.thermal.freq_multiplier()
    }

    // -------------------------------------------------------- accelerators

    /// Submits a job to the compute DSP queue (serial FIFO — the paper's
    /// "only one DSP available" multi-tenancy bottleneck, Fig. 9).
    pub fn submit_dsp_raw(
        &mut self,
        label: impl AsRef<str>,
        exec: SimSpan,
        on_done: impl FnOnce(&mut Machine) + 'static,
    ) {
        self.submit_dsp_prio(label, exec, 0, on_done);
    }

    /// Like [`Machine::submit_dsp_raw`], but with a QoS priority: the job
    /// is inserted ahead of every strictly-lower-priority waiter (FIFO
    /// within a band). Priority zero is exactly `submit_dsp_raw`.
    pub fn submit_dsp_prio(
        &mut self,
        label: impl AsRef<str>,
        exec: SimSpan,
        priority: i8,
        on_done: impl FnOnce(&mut Machine) + 'static,
    ) {
        let trace_id = self.fresh_obj_id();
        let job = AccelJob {
            label: self.trace.intern(label.as_ref()),
            exec,
            on_done: Box::new(on_done),
            trace_id,
            priority,
        };
        Self::accel_enqueue(&mut self.dsp, job);
        self.maybe_start_accel(AccelKind::Dsp);
    }

    /// Priority-ordered insertion into an accelerator wait queue: ahead
    /// of the first strictly-lower-priority waiter, FIFO within a band.
    /// A zero-priority job on an all-zero queue lands at the back — the
    /// legacy FIFO byte-for-byte.
    fn accel_enqueue(state: &mut AccelState, job: AccelJob) {
        if job.priority != 0 {
            if let Some(pos) = state.queue.iter().position(|q| q.priority < job.priority) {
                state.queue.insert(pos, job);
                return;
            }
        }
        state.queue.push_back(job);
    }

    /// Marks the DSP process mapping as established.
    pub(crate) fn set_dsp_session_mapped(&mut self) {
        self.dsp_session_mapped = true;
    }

    /// Submits a job to the GPU queue, charging the launch overhead.
    pub fn submit_gpu(&mut self, job: GpuJob, on_done: impl FnOnce(&mut Machine) + 'static) {
        let exec = self.spec.gpu.launch_overhead + job.exec;
        let trace_id = self.fresh_obj_id();
        self.gpu.queue.push_back(AccelJob {
            label: self.trace.intern(&job.label),
            exec,
            on_done: Box::new(on_done),
            trace_id,
            priority: 0,
        });
        self.maybe_start_accel(AccelKind::Gpu);
    }

    fn accel_resource(kind: AccelKind) -> TraceResource {
        match kind {
            AccelKind::Dsp => TraceResource::Dsp,
            AccelKind::Gpu => TraceResource::Gpu,
            AccelKind::Npu => TraceResource::Npu,
        }
    }

    /// Submits a job to the dedicated NPU block (SD865-class chipsets).
    ///
    /// # Panics
    ///
    /// Panics if the SoC has no NPU.
    pub fn submit_npu_raw(
        &mut self,
        label: impl AsRef<str>,
        exec: SimSpan,
        on_done: impl FnOnce(&mut Machine) + 'static,
    ) {
        self.submit_npu_prio(label, exec, 0, on_done);
    }

    /// Like [`Machine::submit_npu_raw`], but with a QoS priority (see
    /// [`Machine::submit_dsp_prio`]).
    ///
    /// # Panics
    ///
    /// Panics if the SoC has no NPU.
    pub fn submit_npu_prio(
        &mut self,
        label: impl AsRef<str>,
        exec: SimSpan,
        priority: i8,
        on_done: impl FnOnce(&mut Machine) + 'static,
    ) {
        assert!(
            self.spec.npu.is_some(),
            "{} has no NPU block",
            self.spec.name
        );
        let trace_id = self.fresh_obj_id();
        let job = AccelJob {
            label: self.trace.intern(label.as_ref()),
            exec,
            on_done: Box::new(on_done),
            trace_id,
            priority,
        };
        Self::accel_enqueue(&mut self.npu, job);
        self.maybe_start_accel(AccelKind::Npu);
    }

    fn maybe_start_accel(&mut self, kind: AccelKind) {
        let state = match kind {
            AccelKind::Dsp => &mut self.dsp,
            AccelKind::Gpu => &mut self.gpu,
            AccelKind::Npu => &mut self.npu,
        };
        if state.running.is_some() {
            return;
        }
        if state.queue.is_empty() {
            return;
        }
        // The accelerator flips to busy: integrate heat up to this instant
        // at the old power level first.
        self.touch_thermal();
        let state = match kind {
            AccelKind::Dsp => &mut self.dsp,
            AccelKind::Gpu => &mut self.gpu,
            AccelKind::Npu => &mut self.npu,
        };
        let Some(job) = state.queue.pop_front() else {
            return;
        };
        let exec = job.exec;
        let trace_id = job.trace_id;
        let label = job.label;
        state.running = Some(job);
        let token = self.cal.schedule_after(exec);
        self.set_event(
            token,
            match kind {
                AccelKind::Dsp => Ev::DspDone,
                AccelKind::Gpu => Ev::GpuDone,
                AccelKind::Npu => Ev::NpuDone,
            },
        );
        let now = self.cal.now();
        self.trace.record(
            now,
            Self::accel_resource(kind),
            TraceKind::ExecStart {
                task: trace_id,
                label,
            },
        );
    }

    fn on_accel_done(&mut self, kind: AccelKind) {
        // Price the elapsed busy stretch before the block goes idle.
        self.touch_thermal();
        let state = match kind {
            AccelKind::Dsp => &mut self.dsp,
            AccelKind::Gpu => &mut self.gpu,
            AccelKind::Npu => &mut self.npu,
        };
        let job = state
            .running
            .take()
            // aitax-allow(panic-path): accelerator completion events are only scheduled while a job is running
            .expect("accelerator completion without a running job");
        let now = self.cal.now();
        self.trace.record(
            now,
            Self::accel_resource(kind),
            TraceKind::ExecEnd { task: job.trace_id },
        );
        match kind {
            AccelKind::Dsp => {
                self.stats.dsp_jobs += 1;
                self.stats.dsp_busy += job.exec;
            }
            AccelKind::Gpu => {
                self.stats.gpu_jobs += 1;
                self.stats.gpu_busy += job.exec;
            }
            AccelKind::Npu => {
                self.stats.npu_jobs += 1;
                self.stats.npu_busy += job.exec;
            }
        }
        (job.on_done)(self);
        self.maybe_start_accel(kind);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AccelKind {
    Dsp,
    Gpu,
    Npu,
}

#[cfg(test)]
mod tests {
    use super::*;
    use aitax_soc::{SocCatalog, SocId};
    use std::cell::Cell;
    use std::rc::Rc;

    fn machine() -> Machine {
        Machine::new(SocCatalog::get(SocId::Sd845), 7)
    }

    #[test]
    fn timers_fire_in_order() {
        let mut m = machine();
        let log = Rc::new(std::cell::RefCell::new(Vec::new()));
        for (i, ms) in [30.0, 10.0, 20.0].iter().enumerate() {
            let log = log.clone();
            m.after(SimSpan::from_ms(*ms), move |_| log.borrow_mut().push(i));
        }
        m.run_until_idle();
        assert_eq!(*log.borrow(), vec![1, 2, 0]);
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        let mut m = machine();
        let hit = Rc::new(Cell::new(false));
        let h = hit.clone();
        let tok = m.after(SimSpan::from_ms(1.0), move |_| h.set(true));
        assert!(m.cancel_timer(tok));
        m.run_until_idle();
        assert!(!hit.get());
    }

    #[test]
    fn run_until_advances_clock_exactly() {
        let mut m = machine();
        m.after(SimSpan::from_ms(5.0), |_| {});
        m.run_until(SimTime::ZERO + SimSpan::from_ms(2.0));
        assert_eq!(m.now().as_ms(), 2.0);
        m.run_until_idle();
        assert_eq!(m.now().as_ms(), 5.0);
    }

    #[test]
    fn dsp_jobs_serialize_fifo() {
        let mut m = machine();
        let done: Rc<std::cell::RefCell<Vec<(u32, f64)>>> = Rc::default();
        for i in 0..3u32 {
            let done = done.clone();
            m.submit_dsp_raw(format!("job{i}"), SimSpan::from_ms(10.0), move |mm| {
                done.borrow_mut().push((i, mm.now().as_ms()));
            });
        }
        assert_eq!(m.dsp_depth(), 3);
        m.run_until_idle();
        let d = done.borrow();
        assert_eq!(d.len(), 3);
        // Serial FIFO: completions at 10, 20, 30 ms.
        assert_eq!(d[0], (0, 10.0));
        assert_eq!(d[1], (1, 20.0));
        assert_eq!(d[2], (2, 30.0));
        assert_eq!(m.stats().dsp_jobs, 3);
    }

    #[test]
    fn gpu_charges_launch_overhead() {
        let mut m = machine();
        let t = Rc::new(Cell::new(0.0));
        let tc = t.clone();
        m.submit_gpu(
            GpuJob {
                label: "kernel".into(),
                exec: SimSpan::from_ms(2.0),
            },
            move |mm| tc.set(mm.now().as_ms()),
        );
        m.run_until_idle();
        let overhead = SocCatalog::get(SocId::Sd845).gpu.launch_overhead.as_ms();
        assert!((t.get() - (2.0 + overhead)).abs() < 1e-9);
    }

    #[test]
    fn npu_queue_works_on_sd865() {
        let mut m = Machine::new(SocCatalog::get(SocId::Sd865), 5);
        let done = Rc::new(Cell::new(0.0));
        let d = done.clone();
        m.submit_npu_raw("hta-job", SimSpan::from_ms(3.0), move |mm| {
            d.set(mm.now().as_ms())
        });
        m.run_until_idle();
        assert_eq!(done.get(), 3.0);
        assert_eq!(m.stats().npu_jobs, 1);
        assert_eq!(m.npu_depth(), 0);
    }

    #[test]
    fn npu_and_dsp_run_concurrently() {
        // Unlike two DSP jobs, a DSP job and an NPU job overlap.
        let mut m = Machine::new(SocCatalog::get(SocId::Sd865), 5);
        m.submit_dsp_raw("dsp", SimSpan::from_ms(10.0), |_| {});
        m.submit_npu_raw("npu", SimSpan::from_ms(10.0), |_| {});
        m.run_until_idle();
        assert_eq!(m.now().as_ms(), 10.0, "parallel blocks overlap");
    }

    #[test]
    #[should_panic(expected = "has no NPU")]
    fn npu_submit_panics_without_npu() {
        let mut m = Machine::new(SocCatalog::get(SocId::Sd845), 5);
        m.submit_npu_raw("x", SimSpan::from_ms(1.0), |_| {});
    }

    #[test]
    fn accel_trace_records_intervals() {
        let mut m = machine();
        m.set_tracing(true);
        m.submit_dsp_raw("traced", SimSpan::from_ms(1.0), |_| {});
        m.run_until_idle();
        let ivs = m.trace.exec_intervals();
        assert_eq!(ivs.len(), 1);
        assert_eq!(ivs[0].resource, TraceResource::Dsp);
        assert_eq!(m.trace.resolve(ivs[0].label), "traced");
    }
}
