//! Background-activity generators.
//!
//! The paper attributes in-app run-to-run variability (up to ~30% deviation
//! from the median, Fig. 11) to "the Android operating system's scheduling
//! decisions, delays in the interrupt handling from sensor input streams,
//! etc." — i.e. to everything *around* the ML pipeline. This module models
//! that ambient activity: system daemons, binder traffic, UI housekeeping
//! and interrupt servicing that contend with the foreground application.

use aitax_des::trace::{TraceKind, TraceResource};
use aitax_des::SimSpan;

use crate::machine::Machine;
use crate::task::{TaskSpec, Work};

/// Parameters of the ambient background load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseConfig {
    /// Mean time between background bursts (exponentially distributed).
    pub mean_interarrival: SimSpan,
    /// Median burst size in CPU cycles.
    pub median_burst_cycles: f64,
    /// Log-normal spread of burst sizes.
    pub burst_sigma: f64,
    /// Median extra latency injected into interrupt servicing.
    pub irq_jitter_median: SimSpan,
    /// Log-normal spread of interrupt jitter.
    pub irq_jitter_sigma: f64,
}

impl NoiseConfig {
    /// Ambient load of an interactive Android session: periodic daemon
    /// wakeups, binder chatter, UI housekeeping.
    pub fn android_app() -> Self {
        NoiseConfig {
            mean_interarrival: SimSpan::from_ms(2.2),
            median_burst_cycles: 2.4e6, // ≈0.9 ms on a big core
            burst_sigma: 1.05,
            irq_jitter_median: SimSpan::from_us(130.0),
            irq_jitter_sigma: 1.0,
        }
    }

    /// A nearly idle system, as when running a command-line benchmark on a
    /// freshly cooled, screen-off device (paper §III-D methodology).
    pub fn benchmark_quiet() -> Self {
        NoiseConfig {
            mean_interarrival: SimSpan::from_ms(40.0),
            median_burst_cycles: 3.0e5,
            burst_sigma: 0.4,
            irq_jitter_median: SimSpan::from_us(15.0),
            irq_jitter_sigma: 0.3,
        }
    }
}

impl Machine {
    /// Starts ambient background activity. Replaces any previous generator.
    ///
    /// The generator runs until [`Machine::stop_noise`] (or forever), so
    /// drive the machine with [`Machine::run_until`] rather than
    /// `run_until_idle` while noise is active.
    pub fn start_noise(&mut self, config: NoiseConfig) {
        self.noise_generation += 1;
        let generation = self.noise_generation;
        schedule_burst(self, config, generation);
    }

    /// Stops the ambient background generator.
    pub fn stop_noise(&mut self) {
        self.noise_generation += 1;
    }

    /// Samples the extra latency an interrupt experiences right now.
    ///
    /// Callers model sensor pipelines (camera frame delivery) with this;
    /// under the quiet profile it is tens of microseconds, under the app
    /// profile it has a heavy tail.
    pub fn sample_irq_jitter(&mut self, config: &NoiseConfig) -> SimSpan {
        let median = config.irq_jitter_median.as_us();
        let us = self.rng_mut().lognormal(median, config.irq_jitter_sigma);
        let now = self.now();
        let source = self.trace.intern("sensor");
        self.trace
            .record(now, TraceResource::CpuCore(0), TraceKind::Irq { source });
        SimSpan::from_us(us)
    }
}

fn schedule_burst(m: &mut Machine, config: NoiseConfig, generation: u64) {
    let gap_us = m.rng_mut().exponential(config.mean_interarrival.as_us());
    m.after(SimSpan::from_us(gap_us), move |m| {
        if m.noise_generation != generation {
            return;
        }
        let cycles = m
            .rng_mut()
            .lognormal(config.median_burst_cycles, config.burst_sigma);
        m.submit_cpu(
            TaskSpec::background("sys-noise", Work::Cycles(cycles)),
            |_| {},
        );
        schedule_burst(m, config, generation);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use aitax_des::SimTime;
    use aitax_soc::{SocCatalog, SocId};

    fn machine() -> Machine {
        Machine::new(SocCatalog::get(SocId::Sd845), 21)
    }

    #[test]
    fn noise_generates_background_tasks() {
        let mut m = machine();
        m.start_noise(NoiseConfig::android_app());
        m.run_until(SimTime::ZERO + SimSpan::from_ms(200.0));
        assert!(
            m.stats().tasks_completed > 30,
            "expected steady noise, got {} tasks",
            m.stats().tasks_completed
        );
    }

    #[test]
    fn quiet_profile_is_much_quieter() {
        let mut app = machine();
        app.start_noise(NoiseConfig::android_app());
        app.run_until(SimTime::ZERO + SimSpan::from_ms(500.0));
        let busy_app = app.stats().tasks_completed;

        let mut quiet = machine();
        quiet.start_noise(NoiseConfig::benchmark_quiet());
        quiet.run_until(SimTime::ZERO + SimSpan::from_ms(500.0));
        let busy_quiet = quiet.stats().tasks_completed;

        assert!(
            busy_app > busy_quiet * 5,
            "app noise {busy_app} should dwarf quiet noise {busy_quiet}"
        );
    }

    #[test]
    fn stop_noise_halts_generation() {
        let mut m = machine();
        m.start_noise(NoiseConfig::android_app());
        m.run_until(SimTime::ZERO + SimSpan::from_ms(50.0));
        m.stop_noise();
        m.run_until_idle();
        let after_stop = m.stats().tasks_completed;
        m.run_for(SimSpan::from_ms(100.0));
        assert_eq!(m.stats().tasks_completed, after_stop);
    }

    #[test]
    fn irq_jitter_is_positive_and_seed_deterministic() {
        let cfg = NoiseConfig::android_app();
        let mut a = machine();
        let mut b = machine();
        for _ in 0..10 {
            let ja = a.sample_irq_jitter(&cfg);
            let jb = b.sample_irq_jitter(&cfg);
            assert_eq!(ja, jb);
            assert!(ja.as_ns() > 0);
        }
    }

    #[test]
    fn app_jitter_tail_heavier_than_quiet() {
        let mut m = machine();
        let app = NoiseConfig::android_app();
        let quiet = NoiseConfig::benchmark_quiet();
        let mut max_app = SimSpan::ZERO;
        let mut max_quiet = SimSpan::ZERO;
        for _ in 0..200 {
            max_app = max_app.max(m.sample_irq_jitter(&app));
            max_quiet = max_quiet.max(m.sample_irq_jitter(&quiet));
        }
        assert!(max_app > max_quiet * 3.0);
    }
}
