//! A schedutil-flavoured per-core DVFS governor.
//!
//! Linux's `schedutil` picks a core's clock from its tracked utilization
//! (`f = 1.25 · util · f_max`, rounded up to a real operating point) and
//! boosts latency-sensitive work straight to the top — Android adds
//! uclamp floors for the foreground cgroup. This module reproduces that
//! shape: each core keeps an exponentially-weighted busy-fraction
//! estimate; foreground, kernel and NNAPI-fallback dispatches boost to
//! the nominal operating point, while background work runs at whatever
//! point covers its utilization (with the schedutil margin).
//!
//! The governor closes the power loop twice over: the chosen operating
//! point scales the task's retirement rate (time axis), and its
//! frequency is stamped into the trace as
//! [`TraceKind::Dvfs`](aitax_des::trace::TraceKind) so the energy meter
//! prices the interval at the right `C·V²·f` (energy axis). The thermal
//! multiplier caps the effective rate on top of the governor's choice.

use aitax_des::trace::{TraceKind, TraceResource};
use aitax_des::{SimSpan, SimTime};

use crate::machine::Machine;
use crate::task::TaskClass;

/// Tunables of the per-core governor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DvfsPolicy {
    /// Master switch; disabled pins every core at its nominal clock.
    pub enabled: bool,
    /// Headroom multiplier on utilization (schedutil uses 1.25).
    pub margin: f64,
    /// Horizon of the per-core utilization EWMA.
    pub util_tau: SimSpan,
    /// Whether foreground/kernel/NNAPI dispatches boost straight to the
    /// nominal operating point (Android's uclamp-style floor).
    pub boost_foreground: bool,
}

impl Default for DvfsPolicy {
    fn default() -> Self {
        DvfsPolicy {
            enabled: true,
            margin: 1.25,
            util_tau: SimSpan::from_ms(16.0),
            boost_foreground: true,
        }
    }
}

impl DvfsPolicy {
    /// Whether a dispatch of `class` gets the uclamp-style max boost.
    fn boosts(&self, class: TaskClass) -> bool {
        self.boost_foreground
            && matches!(
                class,
                TaskClass::Foreground | TaskClass::KernelWork | TaskClass::NnapiFallback
            )
    }
}

/// Per-core governor state.
#[derive(Debug, Clone)]
pub(crate) struct CoreGov {
    /// EWMA busy-fraction estimate in `[0, 1]`.
    util: f64,
    /// Whether the core has been busy since `last_update`.
    busy: bool,
    last_update: SimTime,
    /// Current frequency as a fraction of nominal.
    pub mult: f64,
    /// Current frequency in Hz.
    pub freq_hz: f64,
}

impl CoreGov {
    pub(crate) fn new(nominal_hz: f64) -> Self {
        CoreGov {
            util: 0.0,
            busy: false,
            last_update: SimTime::ZERO,
            mult: 1.0,
            freq_hz: nominal_hz,
        }
    }
}

impl Machine {
    /// Replaces the DVFS policy (defaults to schedutil with boosting).
    pub fn set_dvfs_policy(&mut self, policy: DvfsPolicy) {
        self.dvfs = policy;
    }

    /// The core's current clock in Hz, as chosen by the governor.
    pub fn core_freq_hz(&self, core: usize) -> f64 {
        self.governor[core].freq_hz
    }

    /// Effective speed multiplier of a core: governor operating point
    /// capped by the thermal throttle.
    pub(crate) fn cpu_speed(&self, core: usize) -> f64 {
        self.governor[core].mult * self.thermal.freq_multiplier()
    }

    /// Folds the elapsed busy/idle stretch into the core's utilization
    /// estimate and records the state the core enters now.
    pub(crate) fn gov_observe(&mut self, core: usize, busy_next: bool) {
        let now = self.cal.now();
        let tau = self.dvfs.util_tau.as_secs();
        let gov = &mut self.governor[core];
        let dt = now.since(gov.last_update).as_secs();
        if dt > 0.0 && tau > 0.0 {
            let alpha = 1.0 - (-dt / tau).exp();
            let sample = if gov.busy { 1.0 } else { 0.0 };
            gov.util += (sample - gov.util) * alpha;
        }
        gov.last_update = now;
        gov.busy = busy_next;
    }

    /// Re-picks the core's operating point for a dispatch of `class`,
    /// stamping a [`TraceKind::Dvfs`] event when the clock changes.
    pub(crate) fn gov_retarget(&mut self, core: usize, class: TaskClass) {
        if !self.dvfs.enabled {
            return;
        }
        let target = if self.dvfs.boosts(class) {
            1.0
        } else {
            (self.governor[core].util * self.dvfs.margin).clamp(0.0, 1.0)
        };
        let rail = self.spec.power.core_rail(core);
        let opp = rail.opp_for_target(target);
        let nominal = rail.nominal().freq_hz;
        let gov = &mut self.governor[core];
        if (opp.freq_hz - gov.freq_hz).abs() < 0.5 {
            return;
        }
        gov.freq_hz = opp.freq_hz;
        gov.mult = opp.freq_hz / nominal;
        let now = self.cal.now();
        self.trace.record(
            now,
            TraceResource::CpuCore(core as u8),
            TraceKind::Dvfs {
                core: core as u8,
                freq_hz: opp.freq_hz as u64,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{CoreMask, TaskSpec, Work};
    use aitax_soc::{SocCatalog, SocId};

    fn machine() -> Machine {
        Machine::new(SocCatalog::get(SocId::Sd845), 3)
    }

    #[test]
    fn foreground_dispatch_boosts_to_nominal() {
        let mut m = machine();
        m.set_tracing(true);
        m.submit_cpu(TaskSpec::foreground("fg", Work::Fp32Flops(1e8)), |_| {});
        m.run_until_idle();
        let nominal = m.spec().power.core_rail(0).nominal().freq_hz;
        assert_eq!(m.core_freq_hz(0), nominal);
    }

    #[test]
    fn background_on_a_cold_core_downclocks() {
        let mut m = machine();
        m.set_tracing(true);
        // Pin to one core so the placement is deterministic.
        m.submit_cpu(
            TaskSpec::background("bg", Work::Cycles(5e6)).with_affinity(CoreMask::of(&[5])),
            |_| {},
        );
        m.run_until_idle();
        let nominal = m.spec().power.core_rail(5).nominal().freq_hz;
        assert!(
            m.core_freq_hz(5) < nominal,
            "idle-history background dispatch should pick a low OPP"
        );
        let dvfs_events = m
            .trace
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::Dvfs { .. }))
            .count();
        assert!(dvfs_events >= 1, "clock change must be traced");
    }

    #[test]
    fn sustained_background_load_ramps_the_clock_up() {
        let mut m = machine();
        // Many sequential background bursts on one core: utilization
        // climbs, and schedutil follows it up the OPP ladder.
        for i in 0..40 {
            m.submit_cpu(
                TaskSpec::background(format!("bg{i}"), Work::Cycles(2e7))
                    .with_affinity(CoreMask::of(&[6])),
                |_| {},
            );
        }
        m.run_until_idle();
        let rail = m.spec().power.core_rail(6);
        assert!(
            m.core_freq_hz(6) > rail.opps[0].freq_hz,
            "sustained load must leave the bottom OPP, got {} Hz",
            m.core_freq_hz(6)
        );
    }

    #[test]
    fn disabled_governor_pins_nominal() {
        let mut m = machine();
        m.set_dvfs_policy(DvfsPolicy {
            enabled: false,
            ..DvfsPolicy::default()
        });
        m.submit_cpu(
            TaskSpec::background("bg", Work::Cycles(1e6)).with_affinity(CoreMask::of(&[4])),
            |_| {},
        );
        m.run_until_idle();
        let nominal = m.spec().power.core_rail(4).nominal().freq_hz;
        assert_eq!(m.core_freq_hz(4), nominal);
    }

    #[test]
    fn governor_slows_background_work_down() {
        // The same background burst takes longer with the governor on —
        // that is the latency price of the energy savings.
        let work = Work::Cycles(5e7);
        let run = |enabled: bool| {
            let mut m = machine();
            m.set_dvfs_policy(DvfsPolicy {
                enabled,
                ..DvfsPolicy::default()
            });
            m.submit_cpu(
                TaskSpec::background("bg", work).with_affinity(CoreMask::of(&[7])),
                |_| {},
            );
            m.run_until_idle();
            m.now()
        };
        assert!(run(true) > run(false));
    }
}
