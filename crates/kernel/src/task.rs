//! Schedulable CPU work.

use aitax_soc::CpuCoreSpec;

/// Identifier of a submitted CPU task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub(crate) u64);

impl TaskId {
    /// Raw id (stable for the lifetime of the [`Machine`](crate::Machine)).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// The amount and kind of work a task performs.
///
/// Rates are taken from the core the task currently occupies, so the same
/// task slows down when it lands on a little core — exactly the behaviour
/// behind the paper's NNAPI-fallback pathology (Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Work {
    /// Floating-point arithmetic, in *effective* FLOPs (the submitter folds
    /// its kernel efficiency into the count).
    Fp32Flops(f64),
    /// 8-bit integer arithmetic, in effective ops.
    Int8Ops(f64),
    /// Scalar/branchy work, in core cycles (drivers, glue, managed code).
    Cycles(f64),
    /// Work of a known wall-clock duration regardless of core speed
    /// (cache-maintenance walks, DMA waits). Still subject to thermal
    /// throttling and scheduling delays.
    Span(aitax_des::SimSpan),
}

impl Work {
    /// The raw magnitude of the work, in its own units (seconds for
    /// [`Work::Span`]).
    pub fn amount(self) -> f64 {
        match self {
            Work::Fp32Flops(x) | Work::Int8Ops(x) | Work::Cycles(x) => x,
            Work::Span(s) => s.as_secs(),
        }
    }

    /// Units of this work a given core retires per second at nominal
    /// frequency.
    pub fn rate_on(self, core: &CpuCoreSpec) -> f64 {
        match self {
            Work::Fp32Flops(_) => core.peak_fp32_flops(),
            Work::Int8Ops(_) => core.peak_int8_ops(),
            Work::Cycles(_) => core.freq_hz,
            Work::Span(_) => 1.0,
        }
    }
}

/// Scheduling class of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskClass {
    /// Interactive/foreground work: prefers big cores.
    Foreground,
    /// Background daemons and batch work: may run anywhere, lower weight.
    Background,
    /// Short kernel/driver work (ioctl handling, IRQ bottom halves).
    KernelWork,
    /// NNAPI CPU-fallback execution: single-threaded, unpinned, and prone
    /// to wandering between cores (paper Fig. 6, annotation 4).
    NnapiFallback,
}

impl TaskClass {
    /// Relative scheduler weight (bigger = more CPU share).
    pub fn weight(self) -> f64 {
        match self {
            TaskClass::Foreground => 1.0,
            TaskClass::Background => 0.4,
            TaskClass::KernelWork => 1.5,
            TaskClass::NnapiFallback => 0.8,
        }
    }

    /// Whether the scheduler should periodically rebalance (wander) this
    /// task across eligible cores even without load imbalance.
    pub fn wanders(self) -> bool {
        matches!(self, TaskClass::NnapiFallback)
    }
}

/// Which cores a task may run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoreMask(u32);

impl CoreMask {
    /// All cores allowed.
    pub const ALL: CoreMask = CoreMask(u32::MAX);

    /// Builds a mask from explicit core indices.
    ///
    /// # Panics
    ///
    /// Panics if the list is empty or an index exceeds 31.
    pub fn of(cores: &[usize]) -> Self {
        assert!(!cores.is_empty(), "core mask cannot be empty");
        let mut bits = 0u32;
        for &c in cores {
            assert!(c < 32, "core index {c} out of range");
            bits |= 1 << c;
        }
        CoreMask(bits)
    }

    /// Whether the mask allows a core index.
    pub fn allows(self, core: usize) -> bool {
        core < 32 && self.0 & (1 << core) != 0
    }

    /// Number of allowed cores (capped at 32).
    pub fn count(self) -> usize {
        self.0.count_ones() as usize
    }
}

/// Everything needed to submit one CPU task.
#[derive(Debug, Clone)]
pub struct TaskSpec {
    /// Human-readable label (appears in traces).
    pub name: String,
    /// The work to perform.
    pub work: Work,
    /// Scheduling class.
    pub class: TaskClass,
    /// Core affinity. `None` lets the class decide (foreground → big
    /// cores, others → all cores).
    pub affinity: Option<CoreMask>,
    /// QoS priority. Zero is the default band every pre-existing workload
    /// runs in; positive priorities order ahead of it in run queues and
    /// may preempt a strictly-lower-priority running task. All-zero
    /// priorities reproduce the plain weighted-round-robin schedule
    /// byte-for-byte.
    pub priority: i8,
}

impl TaskSpec {
    /// A foreground task (big-core affine by default).
    pub fn foreground(name: impl Into<String>, work: Work) -> Self {
        TaskSpec {
            name: name.into(),
            work,
            class: TaskClass::Foreground,
            affinity: None,
            priority: 0,
        }
    }

    /// A background task (runs anywhere).
    pub fn background(name: impl Into<String>, work: Work) -> Self {
        TaskSpec {
            name: name.into(),
            work,
            class: TaskClass::Background,
            affinity: None,
            priority: 0,
        }
    }

    /// A kernel/driver work item.
    pub fn kernel(name: impl Into<String>, work: Work) -> Self {
        TaskSpec {
            name: name.into(),
            work,
            class: TaskClass::KernelWork,
            affinity: None,
            priority: 0,
        }
    }

    /// An NNAPI CPU-fallback execution slice.
    pub fn nnapi_fallback(name: impl Into<String>, work: Work) -> Self {
        TaskSpec {
            name: name.into(),
            work,
            class: TaskClass::NnapiFallback,
            affinity: None,
            priority: 0,
        }
    }

    /// Overrides the affinity.
    pub fn with_affinity(mut self, mask: CoreMask) -> Self {
        self.affinity = Some(mask);
        self
    }

    /// Overrides the QoS priority (see [`TaskSpec::priority`]).
    pub fn with_priority(mut self, priority: i8) -> Self {
        self.priority = priority;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aitax_des::SimSpan;
    use aitax_soc::{ClusterKind, CpuCoreSpec};

    fn core() -> CpuCoreSpec {
        CpuCoreSpec {
            kind: ClusterKind::Big,
            freq_hz: 2e9,
            fp32_flops_per_cycle: 8.0,
            int8_ops_per_cycle: 16.0,
            migration_penalty: SimSpan::from_us(50.0),
        }
    }

    #[test]
    fn work_rates_differ_by_kind() {
        let c = core();
        assert_eq!(Work::Fp32Flops(1.0).rate_on(&c), 16e9);
        assert_eq!(Work::Int8Ops(1.0).rate_on(&c), 32e9);
        assert_eq!(Work::Cycles(1.0).rate_on(&c), 2e9);
    }

    #[test]
    fn mask_membership() {
        let m = CoreMask::of(&[0, 3, 7]);
        assert!(m.allows(0));
        assert!(!m.allows(1));
        assert!(m.allows(7));
        assert_eq!(m.count(), 3);
        assert!(CoreMask::ALL.allows(31));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_mask_panics() {
        CoreMask::of(&[]);
    }

    #[test]
    fn class_weights_ordering() {
        assert!(TaskClass::KernelWork.weight() > TaskClass::Foreground.weight());
        assert!(TaskClass::Foreground.weight() > TaskClass::Background.weight());
        assert!(TaskClass::NnapiFallback.wanders());
        assert!(!TaskClass::Foreground.wanders());
    }

    #[test]
    fn spec_builders_set_class() {
        let s = TaskSpec::background("b", Work::Cycles(10.0));
        assert_eq!(s.class, TaskClass::Background);
        let s = s.with_affinity(CoreMask::of(&[2]));
        assert_eq!(s.affinity, Some(CoreMask::of(&[2])));
    }
}
