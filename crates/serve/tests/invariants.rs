//! Serving invariants, checked through `aitax-testkit`:
//!
//! * attribution conservation on every committed scenario — the pass
//!   charges exactly the latency the mix added, no more, no less;
//! * the admission property: under `Shed { queue_bound }` the
//!   reconstructed queue occupancy never exceeds the bound, for a grid
//!   of bounds and seeds (including the degenerate bound of zero).

use aitax_core::QosClass;
use aitax_framework::Engine;
use aitax_models::zoo::ModelId;
use aitax_serve::{run_report, run_scenario, scenarios, AdmissionPolicy, ServeConfig, TenantSpec};
use aitax_tensor::DType;

#[test]
fn conservation_holds_on_every_scenario() {
    for name in scenarios::NAMES {
        let cfg = scenarios::by_name(name).unwrap();
        let (report, runs) = run_report(&cfg, 2);
        let taxes = report.tenant_taxes(runs.last().unwrap());
        let violations = aitax_testkit::check_attribution_conservation(&taxes);
        assert!(violations.is_empty(), "scenario '{name}': {violations:?}");
        let leak = (report.added_ms - report.attributed_ms).abs();
        assert!(
            leak <= 1e-9 * report.added_ms.abs().max(1.0),
            "scenario '{name}': leak {leak} ms"
        );
    }
}

#[test]
fn conservation_is_seed_independent() {
    for seed in [2, 9, 23] {
        let cfg = scenarios::smoke().seed(seed);
        let (report, runs) = run_report(&cfg, 2);
        let taxes = report.tenant_taxes(runs.last().unwrap());
        let violations = aitax_testkit::check_attribution_conservation(&taxes);
        assert!(violations.is_empty(), "seed {seed}: {violations:?}");
    }
}

/// A deliberately oversubscribed two-tenant scenario: offered load well
/// above service capacity, so backlogs form and admission has work to do.
fn oversubscribed(bound: usize, seed: u64) -> ServeConfig {
    ServeConfig::new(
        "prop",
        vec![
            TenantSpec::new(
                "hot",
                QosClass::Interactive,
                ModelId::MobileNetV1,
                DType::I8,
                Engine::tflite_cpu(2),
                40.0,
                16,
            ),
            TenantSpec::new(
                "bulk",
                QosClass::Background,
                ModelId::SsdMobileNetV2,
                DType::I8,
                Engine::tflite_cpu(2),
                30.0,
                16,
            ),
        ],
    )
    .admission(AdmissionPolicy::Shed { queue_bound: bound })
    .seed(seed)
}

#[test]
fn admission_never_exceeds_the_queue_bound() {
    let mut shed_anywhere = 0u64;
    for bound in [0usize, 1, 2, 4] {
        for seed in [3u64, 9, 17] {
            let cfg = oversubscribed(bound, seed);
            let run = run_scenario(&cfg, None);
            for (spec, t) in cfg.tenants.iter().zip(&run.tenants) {
                // Accounting: every offered request either completed or
                // was shed — admitted requests are never lost.
                assert_eq!(
                    t.completed.len() as u64 + t.shed,
                    spec.requests as u64,
                    "tenant '{}' bound {bound} seed {seed}",
                    spec.label
                );
                let waits: Vec<(f64, f64)> = t
                    .completed
                    .iter()
                    .map(|r| (r.arrival_ms, r.arrival_ms + r.queue_ms))
                    .collect();
                let violations = aitax_testkit::check_queue_bound(&spec.label, &waits, bound);
                assert!(
                    violations.is_empty(),
                    "tenant '{}' bound {bound} seed {seed}: {violations:?}",
                    spec.label
                );
                shed_anywhere += t.shed;
            }
        }
    }
    assert!(
        shed_anywhere > 0,
        "the property test never exercised shedding"
    );
}

#[test]
fn bound_zero_serves_only_idle_arrivals() {
    let cfg = oversubscribed(0, 5);
    let run = run_scenario(&cfg, None);
    for t in &run.tenants {
        assert!(t.shed > 0, "oversubscribed bound-0 run must shed");
        for r in &t.completed {
            assert_eq!(r.queue_ms, 0.0, "bound 0 admits only idle-time arrivals");
        }
    }
}
