//! The contention-attribution pass: solo baselines vs the mix.
//!
//! For a scenario of N tenants we run N+1 independent simulations: each
//! tenant alone (same arrival stream, unbounded admission) and the full
//! mix. The *suffered* tax of a tenant is the summed latency its
//! completed requests gained over the solo baseline; the *caused* tax is
//! that total redistributed to culprits. Direct shares come from the
//! memory-bandwidth arbiter's victim→culprit ledger; the remainder
//! (CPU preemption, accelerator queueing, DVFS side effects — real but
//! not individually metered) is rescaled proportionally so that
//!
//! ```text
//! Σ caused + Σ self-inflicted == Σ suffered        (exactly)
//! ```
//!
//! — the conservation law `aitax-testkit` checks on every scenario. The
//! N+1 runs are independent simulations, so they parallelize over the
//! lab pool and merge in input order: artifact bytes are identical for
//! any `--threads`.

use aitax_core::stage::TaxReport;
use aitax_core::tenant::TenantTax;
use aitax_core::QosClass;
use aitax_lab::DistStats;

use crate::exec::{run_scenario, ScenarioRun};
use crate::tenant::{AdmissionPolicy, ServeConfig};

/// One tenant's attributed outcome (see [`ServeReport`]).
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Tenant label.
    pub label: String,
    /// QoS class.
    pub qos: QosClass,
    /// Model display name.
    pub model: String,
    /// Engine label.
    pub engine: String,
    /// Offered arrival rate (Hz).
    pub rate_hz: f64,
    /// Requests offered.
    pub requests: usize,
    /// Requests completed in the mix.
    pub completed: usize,
    /// Requests shed by admission control in the mix.
    pub shed: u64,
    /// Requests that amortized FastRPC setup over a warm burst.
    pub burst_continuations: u64,
    /// Solo-baseline end-to-end latency distribution.
    pub solo: DistStats,
    /// In-mix end-to-end latency distribution.
    pub multi: DistStats,
    /// In-mix admission/executor queueing distribution.
    pub queue: DistStats,
    /// Mean AI-tax fraction of the tenant's in-mix requests.
    pub tax_fraction: f64,
    /// Latency the mix added to this tenant vs solo (ms, summed).
    pub suffered_ms: f64,
    /// Added latency this tenant imposed on other tenants (ms).
    pub caused_ms: f64,
    /// Added latency this tenant imposed on itself (ms).
    pub self_ms: f64,
}

/// A fully attributed multi-tenant serving result.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Scenario name.
    pub scenario: String,
    /// Chipset label.
    pub soc: String,
    /// Root seed.
    pub seed: u64,
    /// Per-tenant admission queue bound (`None` = unbounded).
    pub queue_bound: Option<usize>,
    /// Per-tenant attributed outcomes, in scenario order.
    pub tenants: Vec<TenantReport>,
    /// Total latency the mix added over the solo baselines (ms).
    pub added_ms: f64,
    /// Total attributed tax (ms) — equals `added_ms` by construction.
    pub attributed_ms: f64,
    /// Requests that queued for a memory-bandwidth slot in the mix.
    pub membw_queued: u64,
}

impl ServeReport {
    /// The per-tenant attribution as core [`TenantTax`] records (the
    /// interface the testkit conservation invariant consumes).
    pub fn tenant_taxes(&self, multi: &ScenarioRun) -> Vec<TenantTax> {
        self.tenants
            .iter()
            .enumerate()
            .map(|(k, t)| TenantTax {
                tenant: t.label.clone(),
                qos: t.qos,
                tax: TaxReport::new(
                    multi.tenants[k]
                        .completed
                        .iter()
                        .map(|r| r.breakdown)
                        .collect(),
                ),
                suffered_ms: t.suffered_ms,
                caused_ms: t.caused_ms,
                self_ms: t.self_ms,
            })
            .collect()
    }
}

/// Runs the N solo baselines and the mix (N+1 independent simulations,
/// parallel over `threads` workers) and attributes the contention.
/// Returns the report plus the raw runs for deeper inspection (the mix
/// run is last).
pub fn run_report(cfg: &ServeConfig, threads: usize) -> (ServeReport, Vec<ScenarioRun>) {
    let n = cfg.tenants.len();
    let jobs: Vec<Option<usize>> = (0..n).map(Some).chain(std::iter::once(None)).collect();
    let runs = aitax_lab::run_tasks(jobs, threads, |j| run_scenario(cfg, *j));
    let report = attribute(cfg, &runs);
    (report, runs)
}

/// Attributes contention given the solo runs and the mix run (as
/// produced by [`run_report`]: solos in tenant order, mix last).
pub fn attribute(cfg: &ServeConfig, runs: &[ScenarioRun]) -> ServeReport {
    let n = cfg.tenants.len();
    assert_eq!(runs.len(), n + 1, "expect N solos + 1 mix");
    let multi = &runs[n];

    // Solo latency by request index (solo runs complete everything).
    let solo_lat: Vec<Vec<f64>> = (0..n)
        .map(|k| {
            let solo = &runs[k].tenants[k];
            let mut by_index = vec![f64::NAN; cfg.tenants[k].requests];
            for r in &solo.completed {
                by_index[r.index] = r.latency_ms;
            }
            by_index
        })
        .collect();

    let suffered: Vec<f64> = (0..n)
        .map(|k| {
            multi.tenants[k]
                .completed
                .iter()
                .map(|r| r.latency_ms - solo_lat[k][r.index])
                .sum()
        })
        .collect();
    let added_ms: f64 = suffered.iter().sum();

    // Direct shares from the arbiter ledger, rescaled so attribution
    // conserves the measured total exactly.
    let mut cross_raw = vec![0.0f64; n];
    for (&(_victim, culprit), &ms) in &multi.blame_ms {
        cross_raw[culprit as usize] += ms;
    }
    let mut self_raw = vec![0.0f64; n];
    for (&victim, &ms) in &multi.self_wait_ms {
        self_raw[victim as usize] += ms;
    }
    let raw_total: f64 = cross_raw.iter().sum::<f64>() + self_raw.iter().sum::<f64>();
    let (mut caused, selfs) = if raw_total > 1e-12 {
        let scale = added_ms / raw_total;
        (
            cross_raw.iter().map(|r| r * scale).collect::<Vec<_>>(),
            self_raw.iter().map(|r| r * scale).collect::<Vec<_>>(),
        )
    } else {
        // No arbiter contention was metered: attribute by each tenant's
        // share of offered busy time (completed requests × solo mean).
        let w: Vec<f64> = (0..n)
            .map(|k| {
                let mean = DistStats::from_ms(
                    &runs[k].tenants[k]
                        .completed
                        .iter()
                        .map(|r| r.latency_ms)
                        .collect::<Vec<_>>(),
                )
                .mean;
                multi.tenants[k].completed.len() as f64 * mean
            })
            .collect();
        let wsum: f64 = w.iter().sum();
        let caused = if wsum > 0.0 {
            w.iter().map(|x| added_ms * x / wsum).collect()
        } else {
            vec![0.0; n]
        };
        (caused, vec![0.0; n])
    };
    // Pin conservation exactly: fold the float residue into the last
    // tenant's caused share.
    let attributed: f64 = caused.iter().sum::<f64>() + selfs.iter().sum::<f64>();
    if n > 0 {
        caused[n - 1] += added_ms - attributed;
    }
    let attributed_ms: f64 = caused.iter().sum::<f64>() + selfs.iter().sum::<f64>();

    let tenants = (0..n)
        .map(|k| {
            let spec = &cfg.tenants[k];
            let mix = &multi.tenants[k];
            let lat = |records: &[crate::exec::RequestRecord]| -> Vec<f64> {
                records.iter().map(|r| r.latency_ms).collect()
            };
            let tax_fraction = if mix.completed.is_empty() {
                0.0
            } else {
                mix.completed
                    .iter()
                    .map(|r| r.breakdown.tax_fraction())
                    .sum::<f64>()
                    / mix.completed.len() as f64
            };
            TenantReport {
                label: spec.label.clone(),
                qos: spec.qos,
                model: spec.model.to_string(),
                engine: spec.engine.label(),
                rate_hz: spec.rate_hz,
                requests: spec.requests,
                completed: mix.completed.len(),
                shed: mix.shed,
                burst_continuations: mix.burst_continuations,
                solo: DistStats::from_ms(&lat(&runs[k].tenants[k].completed)),
                multi: DistStats::from_ms(&lat(&mix.completed)),
                queue: DistStats::from_ms(
                    &mix.completed.iter().map(|r| r.queue_ms).collect::<Vec<_>>(),
                ),
                tax_fraction,
                suffered_ms: suffered[k],
                caused_ms: caused[k],
                self_ms: selfs[k],
            }
        })
        .collect();

    ServeReport {
        scenario: cfg.name.clone(),
        soc: cfg.soc.to_string(),
        seed: cfg.seed,
        queue_bound: match cfg.admission {
            AdmissionPolicy::Unbounded => None,
            AdmissionPolicy::Shed { queue_bound } => Some(queue_bound),
        },
        tenants,
        added_ms,
        attributed_ms,
        membw_queued: multi.membw_queued,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;

    #[test]
    fn attribution_conserves_on_smoke() {
        let cfg = scenarios::by_name("smoke").unwrap().seed(11);
        let (report, _) = run_report(&cfg, 2);
        assert_eq!(report.tenants.len(), 3);
        let attributed: f64 = report.tenants.iter().map(|t| t.caused_ms + t.self_ms).sum();
        let added: f64 = report.tenants.iter().map(|t| t.suffered_ms).sum();
        assert!(
            (attributed - added).abs() <= 1e-9 * added.abs().max(1.0),
            "conservation: {attributed} vs {added}"
        );
        assert_eq!(report.added_ms, added);
    }

    #[test]
    fn thread_counts_do_not_change_the_report() {
        let cfg = scenarios::by_name("smoke").unwrap().seed(4);
        let (a, _) = run_report(&cfg, 1);
        let (b, _) = run_report(&cfg, 4);
        assert_eq!(a.added_ms, b.added_ms);
        for (ta, tb) in a.tenants.iter().zip(&b.tenants) {
            assert_eq!(ta.multi.p99, tb.multi.p99);
            assert_eq!(ta.caused_ms, tb.caused_ms);
        }
    }
}
