//! # aitax-serve — multi-tenant on-device inference serving
//!
//! Phones do not run one model at a time: a camera viewfinder, a photo
//! enhancer and a background indexer all share the same cores, the same
//! accelerator queue and the same DRAM controller. This crate serves
//! *concurrent* tenant pipelines on the deterministic simulator and
//! answers the multi-tenant question the single-pipeline harness cannot:
//! **who pays whose AI tax?**
//!
//! The pieces:
//!
//! - [`tenant`] — tenant specs (model, engine, QoS class, offered load),
//!   admission policies, scenario configs.
//! - [`arrival`] — pure seeded Poisson arrival streams; each tenant's
//!   traffic is a function of `(seed, tenant)` only, so solo and mixed
//!   runs replay identical offered load.
//! - [`exec`] — the serving executor: per-tenant request pipelines with
//!   QoS-priority scheduling, preemption, NNAPI burst execution across
//!   back-to-back requests, a shared memory-bandwidth [arbiter]
//!   (aitax_des::Arbiter), and queue-bound admission control.
//! - [`scenarios`] — the named serve grid (`smoke`, `contention`,
//!   `saturation`).
//! - [`attribution`] — N solo baselines + the mix, diffed per request and
//!   redistributed via the arbiter's victim→culprit ledger, conserving
//!   `Σ caused + Σ self == Σ suffered` exactly.
//! - [`artifact`] — canonical `aitax-serve/v1` JSON/CSV artifacts,
//!   byte-identical across thread counts.
//!
//! ```
//! use aitax_serve::{run_report, scenarios};
//!
//! let cfg = scenarios::smoke().seed(7);
//! let (report, _runs) = run_report(&cfg, 2);
//! let attributed: f64 = report.tenants.iter().map(|t| t.caused_ms + t.self_ms).sum();
//! assert!((attributed - report.added_ms).abs() < 1e-9 * report.added_ms.abs().max(1.0));
//! ```

pub mod arrival;
pub mod artifact;
pub mod attribution;
pub mod exec;
pub mod scenarios;
pub mod tenant;

pub use arrival::{arrival_times, ARRIVAL_EPOCH};
pub use attribution::{attribute, run_report, ServeReport, TenantReport};
pub use exec::{run_scenario, RequestRecord, ScenarioRun, TenantRun};
pub use tenant::{AdmissionPolicy, ServeConfig, TenantSpec};
