//! The serving executor: one deterministic simulation of a tenant mix.
//!
//! Each tenant runs a serial request pipeline (pre-process → inference →
//! post-process) driven by its arrival stream. QoS classes become
//! scheduler priorities on every CPU task and FastRPC invocation, so the
//! kernel's preemption and accelerator-queue ordering arbitrate CPU and
//! offload contention; a [`des::Arbiter`](aitax_des::Arbiter) gates the
//! DRAM/AXI-heavy inference phase behind a small number of memory-channel
//! slots and keeps the victim→culprit blame ledger the attribution pass
//! consumes. Back-to-back requests of one tenant ride an NNAPI-style
//! burst that amortizes FastRPC ioctl setup.
//!
//! Requests are *serial within a tenant* (one app pipeline each): an
//! arrival that finds the tenant busy waits in its admission queue, and
//! arrivals beyond the queue bound are shed.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use aitax_core::stage::StageBreakdown;
use aitax_des::{Acquired, Arbiter, HoldId, SimTime, Ticket};
use aitax_framework::Session;
use aitax_kernel::{Machine, TaskSpec, Work};
use aitax_pipeline::{CostModel, PixelOp, RuntimeKind};
use aitax_soc::SocCatalog;

use crate::arrival::arrival_times;
use crate::tenant::ServeConfig;

/// Memory-channel slots the inference phase contends for: a mobile SoC
/// has two DRAM channels' worth of sustained AI bandwidth before
/// pipelines start queueing on each other.
pub const MEMBW_SLOTS: usize = 2;

/// Slots reserved for interactive-priority requests (memguard-style
/// bandwidth reservation): best-effort and background holds can saturate
/// only `MEMBW_SLOTS - MEMBW_RESERVED` slots, so an interactive pipeline
/// never queues behind two long low-priority bus holds.
pub const MEMBW_RESERVED: usize = 1;

/// One completed request.
#[derive(Debug, Clone)]
pub struct RequestRecord {
    /// Arrival-stream index of the request within its tenant.
    pub index: usize,
    /// Arrival time (ms since run start).
    pub arrival_ms: f64,
    /// Admission-queue + executor wait before processing began.
    pub queue_ms: f64,
    /// End-to-end latency (arrival → outputs delivered).
    pub latency_ms: f64,
    /// Execution-stage spans (`e2e() == latency - queue`).
    pub breakdown: StageBreakdown,
}

/// One tenant's outcomes in a scenario run.
#[derive(Debug, Clone, Default)]
pub struct TenantRun {
    /// Completed requests in completion (= arrival-index) order.
    pub completed: Vec<RequestRecord>,
    /// Arrivals dropped by admission control.
    pub shed: u64,
    /// Requests that rode a warm burst (amortized FastRPC setup).
    pub burst_continuations: u64,
}

/// A finished scenario simulation.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    /// Per-tenant outcomes, indexed like `cfg.tenants`; tenants excluded
    /// from a solo run are empty.
    pub tenants: Vec<TenantRun>,
    /// Memory-bandwidth blame ledger: `(victim, culprit) → ms` of
    /// inference-phase wait the culprit's holds imposed.
    pub blame_ms: BTreeMap<(u32, u32), f64>,
    /// Per-tenant self-contention (waiting behind its own holds), ms.
    pub self_wait_ms: BTreeMap<u32, f64>,
    /// Requests that had to queue for a memory slot.
    pub membw_queued: u64,
}

struct CurReq {
    index: usize,
    arrival: SimTime,
    start: SimTime,
    pre_done: SimTime,
    inf_done: SimTime,
    hold: Option<HoldId>,
}

struct TenantState {
    session: Session,
    priority: i8,
    label: String,
    pre_cycles: f64,
    post_cycles: f64,
    arrivals: Vec<SimTime>,
    queue: VecDeque<usize>,
    busy: bool,
    burst_open: bool,
    cur: Option<CurReq>,
    run: TenantRun,
}

struct World {
    tenants: Vec<Option<TenantState>>,
    membw: Arbiter,
    parked: BTreeMap<Ticket, usize>,
    membw_queued: u64,
    queue_bound: usize,
}

impl World {
    /// Tenant `k`'s live state. Every event handler is scheduled against
    /// an active tenant, and tenant slots are never vacated mid-run.
    fn tenant_mut(&mut self, k: usize) -> &mut TenantState {
        self.tenants[k]
            .as_mut()
            // aitax-allow(panic-path): handlers are only scheduled for active tenants
            .expect("handler targets an inactive tenant")
    }
}

impl TenantState {
    /// The request this handler chain belongs to.
    fn cur_mut(&mut self) -> &mut CurReq {
        self.cur
            .as_mut()
            // aitax-allow(panic-path): a handler chain runs only while its request is in flight
            .expect("handler fired with no request in flight")
    }
}

type WorldRef = Rc<RefCell<World>>;

/// Runs one scenario simulation: the full mix when `only` is `None`, or
/// the solo baseline of tenant `only = Some(k)` (same arrival stream,
/// unbounded admission).
///
/// # Panics
///
/// Panics if a tenant's engine cannot compile its model (scenario
/// construction bugs, e.g. a DSP engine with a float model).
pub fn run_scenario(cfg: &ServeConfig, only: Option<usize>) -> ScenarioRun {
    let soc = SocCatalog::get(cfg.soc);
    let mut m = Machine::new(soc, cfg.seed);
    let cost = CostModel::new(RuntimeKind::Native);

    let tenants: Vec<Option<TenantState>> = cfg
        .tenants
        .iter()
        .enumerate()
        .map(|(k, spec)| {
            if only.is_some_and(|o| o != k) {
                return None;
            }
            let session = Session::compile_cached(spec.engine, spec.model, spec.dtype, cfg.soc)
                // aitax-allow(panic-path): scenario builders pair engines with supported dtypes
                .expect("tenant engine/dtype mismatch");
            let elements = session.graph().input_elements().max(1);
            session.set_priority(spec.qos.priority());
            Some(TenantState {
                session,
                priority: spec.qos.priority(),
                label: spec.label.clone(),
                // Serving inputs arrive model-shaped: type conversion in,
                // top-K out — the paper's "negligible pre-processing"
                // benchmark regime, kept non-zero so the stages exist.
                pre_cycles: cost.cycles(PixelOp::TypeConvert, elements),
                post_cycles: cost.cycles(PixelOp::TopK, 1001).max(1.0),
                arrivals: arrival_times(cfg.seed, k as u64, spec.rate_hz, spec.requests),
                queue: VecDeque::new(),
                busy: false,
                burst_open: false,
                cur: None,
                run: TenantRun::default(),
            })
        })
        .collect();

    let world: WorldRef = Rc::new(RefCell::new(World {
        tenants,
        membw: Arbiter::with_reservation(
            MEMBW_SLOTS,
            MEMBW_RESERVED,
            aitax_core::QosClass::Interactive.priority(),
        ),
        parked: BTreeMap::new(),
        membw_queued: 0,
        queue_bound: if only.is_some() {
            usize::MAX
        } else {
            cfg.admission.queue_bound()
        },
    }));

    // Warmup: one unrecorded invocation per tenant at t=0 pays the DSP
    // session mapping, driver probes and model residency, so recorded
    // requests (which start at ARRIVAL_EPOCH) measure steady-state
    // serving. Arrival times are fixed constants, so solo and multi runs
    // replay identical offered load regardless of warmup contention.
    let active: Vec<usize> = (0..cfg.tenants.len())
        .filter(|&k| world.borrow().tenants[k].is_some())
        .collect();
    for &k in &active {
        let session = world.borrow().tenants[k]
            .as_ref()
            .map(|t| t.session.clone())
            // aitax-allow(panic-path): k was filtered on is_some above
            .unwrap();
        session.invoke(&mut m, |_| {});
    }
    for &k in &active {
        let arrivals = world.borrow().tenants[k]
            .as_ref()
            .map(|t| t.arrivals.clone())
            // aitax-allow(panic-path): k was filtered on is_some above
            .unwrap();
        for (i, &at) in arrivals.iter().enumerate() {
            let w = world.clone();
            m.after(at.since(SimTime::ZERO), move |m| on_arrival(&w, m, k, i));
        }
    }
    m.run_until_idle();

    let mut w = world.borrow_mut();
    let blame_ms = w
        .membw
        .blame()
        .iter()
        .map(|(&k, &s)| (k, s.as_ms()))
        .collect();
    let self_wait_ms = w
        .membw
        .self_wait()
        .iter()
        .map(|(&k, &s)| (k, s.as_ms()))
        .collect();
    ScenarioRun {
        tenants: w
            .tenants
            .iter_mut()
            .map(|t| {
                t.as_mut()
                    .map(|t| std::mem::take(&mut t.run))
                    .unwrap_or_default()
            })
            .collect(),
        blame_ms,
        self_wait_ms,
        membw_queued: w.membw_queued,
    }
}

fn on_arrival(w: &WorldRef, m: &mut Machine, k: usize, i: usize) {
    let start_now = {
        let mut world = w.borrow_mut();
        let bound = world.queue_bound;
        let ts = world.tenants[k]
            .as_mut()
            // aitax-allow(panic-path): arrivals are only scheduled for active tenants
            .expect("arrival for inactive tenant");
        if ts.busy {
            if ts.queue.len() < bound {
                ts.queue.push_back(i);
            } else {
                ts.run.shed += 1;
            }
            false
        } else {
            true
        }
    };
    if start_now {
        start_request(w, m, k, i);
    }
}

fn start_request(w: &WorldRef, m: &mut Machine, k: usize, i: usize) {
    let now = m.now();
    let task = {
        let mut world = w.borrow_mut();
        let ts = world.tenant_mut(k);
        ts.busy = true;
        if ts.burst_open {
            // The burst stayed warm from the previous back-to-back
            // request: this one amortizes its FastRPC setup.
            ts.run.burst_continuations += 1;
        } else {
            ts.session.begin_burst();
            ts.burst_open = true;
        }
        ts.cur = Some(CurReq {
            index: i,
            arrival: ts.arrivals[i],
            start: now,
            pre_done: now,
            inf_done: now,
            hold: None,
        });
        TaskSpec::foreground(format!("{}:pre", ts.label), Work::Cycles(ts.pre_cycles))
            .with_priority(ts.priority)
    };
    let w2 = w.clone();
    m.submit_cpu(task, move |m| on_pre_done(&w2, m, k));
}

fn on_pre_done(w: &WorldRef, m: &mut Machine, k: usize) {
    let now = m.now();
    let granted = {
        let mut world = w.borrow_mut();
        let prio = world.tenant_mut(k).priority;
        match world.membw.acquire(now, k as u32, prio) {
            Acquired::Granted(h) => {
                let cur = world.tenant_mut(k).cur_mut();
                cur.pre_done = now;
                cur.hold = Some(h);
                true
            }
            Acquired::Queued(ticket) => {
                world.tenant_mut(k).cur_mut().pre_done = now;
                world.membw_queued += 1;
                world.parked.insert(ticket, k);
                false
            }
        }
    };
    if granted {
        begin_inference(w, m, k);
    }
}

fn begin_inference(w: &WorldRef, m: &mut Machine, k: usize) {
    let session = w.borrow_mut().tenant_mut(k).session.clone();
    let w2 = w.clone();
    session.invoke(m, move |m| on_inf_done(&w2, m, k));
}

fn on_inf_done(w: &WorldRef, m: &mut Machine, k: usize) {
    let now = m.now();
    let (task, resumed) = {
        let mut world = w.borrow_mut();
        let hold = {
            let cur = world.tenant_mut(k).cur_mut();
            cur.inf_done = now;
            cur.hold
                .take()
                // aitax-allow(panic-path): inference only starts after a grant
                .expect("inference finished without a memory hold")
        };
        let resumed = world.membw.release(now, hold).map(|(ticket, new_hold)| {
            let owner = world
                .parked
                .remove(&ticket)
                // aitax-allow(panic-path): every queued ticket is parked before the next event fires
                .expect("granted ticket has no parked owner");
            world.tenant_mut(owner).cur_mut().hold = Some(new_hold);
            owner
        });
        let ts = world.tenant_mut(k);
        let task = TaskSpec::foreground(format!("{}:post", ts.label), Work::Cycles(ts.post_cycles))
            .with_priority(ts.priority);
        (task, resumed)
    };
    if let Some(owner) = resumed {
        begin_inference(w, m, owner);
    }
    let w2 = w.clone();
    m.submit_cpu(task, move |m| on_post_done(&w2, m, k));
}

fn on_post_done(w: &WorldRef, m: &mut Machine, k: usize) {
    let now = m.now();
    let next = {
        let mut world = w.borrow_mut();
        let ts = world.tenant_mut(k);
        let cur = ts
            .cur
            .take()
            // aitax-allow(panic-path): post-processing only runs for the in-flight request
            .expect("completion without an in-flight request");
        let breakdown = StageBreakdown {
            pre_processing: cur.pre_done.since(cur.start),
            inference: cur.inf_done.since(cur.pre_done),
            post_processing: now.since(cur.inf_done),
            ..StageBreakdown::default()
        };
        ts.run.completed.push(RequestRecord {
            index: cur.index,
            arrival_ms: cur.arrival.since(SimTime::ZERO).as_ms(),
            queue_ms: cur.start.since(cur.arrival).as_ms(),
            latency_ms: now.since(cur.arrival).as_ms(),
            breakdown,
        });
        ts.busy = false;
        let next = ts.queue.pop_front();
        if next.is_none() {
            ts.session.end_burst();
            ts.burst_open = false;
        }
        next
    };
    if let Some(i) = next {
        start_request(w, m, k, i);
    }
}

/// Zero-span guard used by tests: a request's stage spans must add up to
/// its service time.
pub fn breakdown_consistent(r: &RequestRecord) -> bool {
    let service = r.latency_ms - r.queue_ms;
    (r.breakdown.e2e().as_ms() - service).abs() < 1e-6
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;

    #[test]
    fn smoke_scenario_completes_all_requests_without_admission() {
        let cfg = scenarios::by_name("smoke").unwrap().seed(3);
        let cfg = ServeConfig {
            admission: crate::tenant::AdmissionPolicy::Unbounded,
            ..cfg
        };
        let run = run_scenario(&cfg, None);
        for (t, spec) in run.tenants.iter().zip(&cfg.tenants) {
            assert_eq!(t.completed.len(), spec.requests, "{}", spec.label);
            assert_eq!(t.shed, 0);
            for r in &t.completed {
                assert!(r.latency_ms > 0.0);
                assert!(r.queue_ms >= 0.0);
                assert!(breakdown_consistent(r), "{r:?}");
            }
        }
    }

    #[test]
    fn solo_run_touches_only_its_tenant() {
        let cfg = scenarios::by_name("smoke").unwrap().seed(3);
        let run = run_scenario(&cfg, Some(1));
        assert!(run.tenants[0].completed.is_empty());
        assert_eq!(run.tenants[1].completed.len(), cfg.tenants[1].requests);
        assert!(run.tenants[2].completed.is_empty());
    }

    #[test]
    fn runs_are_reproducible() {
        let cfg = scenarios::by_name("smoke").unwrap().seed(9);
        let a = run_scenario(&cfg, None);
        let b = run_scenario(&cfg, None);
        for (ta, tb) in a.tenants.iter().zip(&b.tenants) {
            assert_eq!(ta.completed.len(), tb.completed.len());
            for (ra, rb) in ta.completed.iter().zip(&tb.completed) {
                assert_eq!(ra.latency_ms, rb.latency_ms);
                assert_eq!(ra.queue_ms, rb.queue_ms);
            }
        }
        assert_eq!(a.blame_ms, b.blame_ms);
    }

    #[test]
    fn admission_bound_sheds_overflow() {
        // Saturation scenario: rates far above capacity with a small
        // queue bound must shed without deadlocking.
        let cfg = scenarios::by_name("saturation").unwrap().seed(5);
        let run = run_scenario(&cfg, None);
        let shed: u64 = run.tenants.iter().map(|t| t.shed).sum();
        assert!(shed > 0, "saturation must trigger admission control");
        let done: usize = run.tenants.iter().map(|t| t.completed.len()).sum();
        assert!(done > 0);
    }
}
