//! Pure seeded arrival processes.
//!
//! A tenant's arrival stream is a pure function of `(root seed, tenant
//! index)` — *not* of which other tenants share the device or of any
//! simulation state. That purity is what makes the attribution pass
//! meaningful: the solo baseline and the multi-tenant run replay the
//! exact same offered load, so every latency difference is contention,
//! never traffic noise.

use aitax_des::{SimRng, SimSpan, SimTime};

/// Stream id for arrival processes under the root seed (kept clear of
/// the machine-noise streams other crates derive).
const STREAM_ARRIVAL: u64 = 11;

/// Arrivals start this long into the run, leaving room for per-tenant
/// warmup requests (session setup, DSP mapping) to drain first. A fixed
/// epoch keeps arrival *absolute times* identical between solo and
/// multi-tenant runs even though warmup contention differs.
pub const ARRIVAL_EPOCH: SimSpan = SimSpan::from_ns(1_000_000_000);

/// The absolute arrival times of tenant `k`: a Poisson process of mean
/// rate `rate_hz` starting at [`ARRIVAL_EPOCH`].
pub fn arrival_times(root_seed: u64, k: u64, rate_hz: f64, n: usize) -> Vec<SimTime> {
    assert!(rate_hz > 0.0, "arrival rate must be positive");
    let mut rng = SimRng::seed_from(root_seed).derive2(STREAM_ARRIVAL, k);
    let mean = 1.0 / rate_hz;
    let mut at = SimTime::ZERO + ARRIVAL_EPOCH;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        at += SimSpan::from_secs(rng.exponential(mean));
        out.push(at);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_pure_and_tenant_independent() {
        let a = arrival_times(7, 0, 20.0, 50);
        let b = arrival_times(7, 0, 20.0, 50);
        assert_eq!(a, b, "same (seed, k) must replay identically");
        let other = arrival_times(7, 1, 20.0, 50);
        assert_ne!(a, other, "tenants draw from distinct streams");
    }

    #[test]
    fn mean_interarrival_tracks_rate() {
        let times = arrival_times(3, 2, 50.0, 2000);
        let total = times.last().unwrap().since(times[0]).as_secs();
        let mean = total / (times.len() - 1) as f64;
        assert!(
            (mean - 0.02).abs() < 0.002,
            "50 Hz should average 20ms gaps, got {mean}s"
        );
    }

    #[test]
    fn arrivals_are_monotone_and_past_epoch() {
        let times = arrival_times(1, 0, 100.0, 100);
        assert!(times[0] >= SimTime::ZERO + ARRIVAL_EPOCH);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }
}
